// Churn workload driver: arrival/departure traces with configurable
// hold times, used to measure the dynamic provisioning engine's
// steady-state cost per operation against rebuild-from-scratch.
package main

import (
	"container/heap"
	"math/rand"
	"testing"

	"wavedag/internal/digraph"
	"wavedag/internal/route"
	"wavedag/internal/wdm"
)

// churnOp is one trace event: the arrival of a new request (add=true,
// with its request and arrival sequence number) or the departure of a
// previously arrived one (identified by its sequence number).
type churnOp struct {
	add bool
	seq int
	req route.Request
}

type departure struct {
	t   float64
	seq int
}

type departureHeap []departure

func (h departureHeap) Len() int           { return len(h) }
func (h departureHeap) Less(i, j int) bool { return h[i].t < h[j].t }
func (h departureHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *departureHeap) Push(x any)        { *h = append(*h, x.(departure)) }
func (h *departureHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// churnDriver generates an M/M/∞-style event stream: unit-rate Poisson
// arrivals drawn uniformly from a request pool, each holding for an
// exponential time with the configured mean. With arrival rate 1 the
// steady-state number of live requests concentrates around meanHold,
// so meanHold doubles as the target working-set size.
type churnDriver struct {
	rng      *rand.Rand
	pool     []route.Request
	meanHold float64
	now      float64
	dep      departureHeap
	nextSeq  int
}

func newChurnDriver(pool []route.Request, meanHold float64, seed int64) *churnDriver {
	return &churnDriver{
		rng:      rand.New(rand.NewSource(seed)),
		pool:     pool,
		meanHold: meanHold,
	}
}

// nextOp advances the simulation by one event.
func (d *churnDriver) nextOp() churnOp {
	arrive := d.now + d.rng.ExpFloat64()
	if len(d.dep) > 0 && d.dep[0].t < arrive {
		ev := heap.Pop(&d.dep).(departure)
		d.now = ev.t
		return churnOp{seq: ev.seq}
	}
	d.now = arrive
	seq := d.nextSeq
	d.nextSeq++
	heap.Push(&d.dep, departure{t: arrive + d.rng.ExpFloat64()*d.meanHold, seq: seq})
	return churnOp{add: true, seq: seq, req: d.pool[d.rng.Intn(len(d.pool))]}
}

// churnBenches builds the session-vs-scratch benchmark pair for one
// topology and working-set size. Both sides replay statistically
// identical traces (same driver parameters and seed); the session pays
// incremental maintenance per event, the scratch side re-runs the whole
// one-shot Provision pipeline per event.
func churnBenches(label string, g *digraph.Digraph, liveTarget int, seed int64) []bench {
	pool := route.NewRouter(g).AllToAll()
	session := bench{"churn/session/" + label, func(b *testing.B) {
		b.ReportAllocs()
		net := &wdm.Network{Topology: g}
		s, err := net.NewSession()
		if err != nil {
			b.Fatal(err)
		}
		d := newChurnDriver(pool, float64(liveTarget), seed)
		ids := make(map[int]wdm.SessionID, liveTarget)
		apply := func(op churnOp) {
			if op.add {
				id, err := s.Add(op.req)
				if err != nil {
					b.Fatal(err)
				}
				ids[op.seq] = id
			} else {
				if err := s.Remove(ids[op.seq]); err != nil {
					b.Fatal(err)
				}
				delete(ids, op.seq)
			}
		}
		for s.Len() < liveTarget {
			apply(d.nextOp())
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			apply(d.nextOp())
		}
		b.StopTimer()
		// The engine must still be consistent after the measured churn.
		if err := s.Verify(); err != nil {
			b.Fatal(err)
		}
	}}
	scratch := bench{"churn/scratch/" + label, func(b *testing.B) {
		b.ReportAllocs()
		net := &wdm.Network{Topology: g}
		d := newChurnDriver(pool, float64(liveTarget), seed)
		var live []route.Request
		var seqs []int
		idx := make(map[int]int, liveTarget)
		apply := func(op churnOp) {
			if op.add {
				idx[op.seq] = len(live)
				live = append(live, op.req)
				seqs = append(seqs, op.seq)
				return
			}
			i, last := idx[op.seq], len(live)-1
			live[i], seqs[i] = live[last], seqs[last]
			idx[seqs[i]] = i
			live, seqs = live[:last], seqs[:last]
			delete(idx, op.seq)
		}
		for len(live) < liveTarget {
			apply(d.nextOp())
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			apply(d.nextOp())
			if _, err := net.Provision(live, wdm.RouteShortest); err != nil {
				b.Fatal(err)
			}
		}
	}}
	return []bench{session, scratch}
}
