// Churn workload driver: arrival/departure traces with configurable
// hold times, used to measure the dynamic provisioning engine's
// steady-state cost per operation against rebuild-from-scratch.
package main

import (
	"container/heap"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"wavedag/internal/digraph"
	"wavedag/internal/route"
	"wavedag/internal/wdm"
)

// churnOp is one trace event: the arrival of a new request (add=true,
// with its request and arrival sequence number) or the departure of a
// previously arrived one (identified by its sequence number).
type churnOp struct {
	add bool
	seq int
	req route.Request
}

type departure struct {
	t   float64
	seq int
}

type departureHeap []departure

func (h departureHeap) Len() int           { return len(h) }
func (h departureHeap) Less(i, j int) bool { return h[i].t < h[j].t }
func (h departureHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *departureHeap) Push(x any)        { *h = append(*h, x.(departure)) }
func (h *departureHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// churnDriver generates an M/M/∞-style event stream: unit-rate Poisson
// arrivals drawn uniformly from a request pool, each holding for an
// exponential time with the configured mean. With arrival rate 1 the
// steady-state number of live requests concentrates around meanHold,
// so meanHold doubles as the target working-set size.
type churnDriver struct {
	rng      *rand.Rand
	pool     []route.Request
	meanHold float64
	now      float64
	dep      departureHeap
	nextSeq  int
}

func newChurnDriver(pool []route.Request, meanHold float64, seed int64) *churnDriver {
	return &churnDriver{
		rng:      rand.New(rand.NewSource(seed)),
		pool:     pool,
		meanHold: meanHold,
	}
}

// nextOp advances the simulation by one event.
func (d *churnDriver) nextOp() churnOp {
	arrive := d.now + d.rng.ExpFloat64()
	if len(d.dep) > 0 && d.dep[0].t < arrive {
		ev := heap.Pop(&d.dep).(departure)
		d.now = ev.t
		return churnOp{seq: ev.seq}
	}
	d.now = arrive
	seq := d.nextSeq
	d.nextSeq++
	heap.Push(&d.dep, departure{t: arrive + d.rng.ExpFloat64()*d.meanHold, seq: seq})
	return churnOp{add: true, seq: seq, req: d.pool[d.rng.Intn(len(d.pool))]}
}

// churnBenches builds the session-vs-scratch benchmark pair for one
// topology and working-set size. Both sides replay statistically
// identical traces (same driver parameters and seed); the session pays
// incremental maintenance per event, the scratch side re-runs the whole
// one-shot Provision pipeline per event.
func churnBenches(label string, g *digraph.Digraph, liveTarget int, seed int64) []bench {
	pool := route.NewRouter(g).AllToAll()
	return []bench{churnSessionBench("churn/session/"+label, g, pool, liveTarget, seed),
		churnScratchBench("churn/scratch/"+label, g, pool, liveTarget, seed)}
}

// churnSessionBench measures the per-event cost of a single dynamic
// session replaying the driver's trace.
func churnSessionBench(name string, g *digraph.Digraph, pool []route.Request, liveTarget int, seed int64) bench {
	return bench{name, func(b *testing.B) {
		b.ReportAllocs()
		net := &wdm.Network{Topology: g}
		s, err := net.NewSession()
		if err != nil {
			b.Fatal(err)
		}
		d := newChurnDriver(pool, float64(liveTarget), seed)
		ids := make(map[int]wdm.SessionID, liveTarget)
		apply := func(op churnOp) {
			if op.add {
				id, err := s.Add(op.req)
				if err != nil {
					b.Fatal(err)
				}
				ids[op.seq] = id
			} else {
				if err := s.Remove(ids[op.seq]); err != nil {
					b.Fatal(err)
				}
				delete(ids, op.seq)
			}
		}
		for s.Len() < liveTarget {
			apply(d.nextOp())
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			apply(d.nextOp())
		}
		b.StopTimer()
		// The engine must still be consistent after the measured churn.
		if err := s.Verify(); err != nil {
			b.Fatal(err)
		}
	}}
}

func churnScratchBench(name string, g *digraph.Digraph, pool []route.Request, liveTarget int, seed int64) bench {
	return bench{name, func(b *testing.B) {
		b.ReportAllocs()
		net := &wdm.Network{Topology: g}
		d := newChurnDriver(pool, float64(liveTarget), seed)
		var live []route.Request
		var seqs []int
		idx := make(map[int]int, liveTarget)
		apply := func(op churnOp) {
			if op.add {
				idx[op.seq] = len(live)
				live = append(live, op.req)
				seqs = append(seqs, op.seq)
				return
			}
			i, last := idx[op.seq], len(live)-1
			live[i], seqs[i] = live[last], seqs[last]
			idx[seqs[i]] = i
			live, seqs = live[:last], seqs[:last]
			delete(idx, op.seq)
		}
		for len(live) < liveTarget {
			apply(d.nextOp())
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			apply(d.nextOp())
			if _, err := net.Provision(live, wdm.RouteShortest); err != nil {
				b.Fatal(err)
			}
		}
	}}
}

// shardedChurnBench measures the sharded engine's per-event cost on a
// multi-component topology: the driver's trace is cut into ApplyBatch
// batches (batchSize events each) and the engine fans each batch out to
// its shards on `workers` workers with GOMAXPROCS pinned to the same
// value — the worker-count axis of the BENCH_PR3/PR4 sweeps. Extra
// engine options (sub-shard threshold) ride along. ns/op is per event,
// so events/sec = 1e9/ns_per_op.
func shardedChurnBench(name string, g *digraph.Digraph, pool []route.Request, liveTarget, batchSize, workers int, seed int64, opts ...wdm.ShardedOption) bench {
	return bench{name, func(b *testing.B) {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(workers))
		b.ReportAllocs()
		net := &wdm.Network{Topology: g}
		eng, err := net.NewShardedEngine(append([]wdm.ShardedOption{wdm.WithShardWorkers(workers)}, opts...)...)
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		d := newChurnDriver(pool, float64(liveTarget), seed)
		ids := make(map[int]wdm.ShardedID, liveTarget)
		// Batch staging: removes of a request whose add is still staged in
		// the same batch force an early flush (the id is unknown until the
		// batch applies).
		ops := make([]wdm.BatchOp, 0, batchSize)
		seqs := make([]int, 0, batchSize)
		pending := make(map[int]bool, batchSize)
		results := make([]wdm.BatchResult, 0, batchSize) // pooled across batches
		staged := 0                                      // net live-count delta of the staged ops
		flush := func() {
			if len(ops) == 0 {
				return
			}
			results = eng.ApplyBatchInto(ops, results)
			for k, res := range results {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
				if ops[k].Kind == wdm.BatchAdd {
					ids[seqs[k]] = res.ID
				}
			}
			ops, seqs = ops[:0], seqs[:0]
			staged = 0
			clear(pending)
		}
		stage := func(op churnOp) {
			if op.add {
				pending[op.seq] = true
				ops = append(ops, wdm.AddOp(op.req))
				seqs = append(seqs, op.seq)
				staged++
			} else {
				if pending[op.seq] {
					flush()
				}
				ops = append(ops, wdm.RemoveOp(ids[op.seq]))
				seqs = append(seqs, -1)
				staged--
				delete(ids, op.seq)
			}
			if len(ops) >= batchSize {
				flush()
			}
		}
		for eng.Len()+staged < liveTarget {
			stage(d.nextOp())
		}
		flush()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			stage(d.nextOp())
		}
		flush()
		b.StopTimer()
		if err := eng.Verify(); err != nil {
			b.Fatal(err)
		}
	}}
}

// shardedChurnBenches builds the worker-count sweep for one
// multi-component topology, plus a single-session comparator on the
// same union topology (the sequential baseline the sharding is
// measured against).
func shardedChurnBenches(label string, g *digraph.Digraph, liveTarget, batchSize int, cpus []int, seed int64) []bench {
	// One all-pairs reachability sweep shared by every entry.
	pool := route.NewRouter(g).AllToAll()
	benches := []bench{
		churnSessionBench("churn/union-session/"+label, g, pool, liveTarget, seed),
	}
	for _, c := range cpus {
		benches = append(benches, shardedChurnBench(
			fmt.Sprintf("churn/sharded/%s/cpus=%d", label, c), g, pool, liveTarget, batchSize, c, seed))
	}
	return benches
}

// giantChurnBenches builds the two-level acceptance sweep: a glued
// giant component (≳90% of all vertices — PartitionComponents cannot
// split it) under a locality-heavy trace, swept over the sub-shard
// threshold axis (0 = the PR 3 layout, serialising the component onto
// one session) and the worker-count axis.
func giantChurnBenches(label string, g *digraph.Digraph, pool []route.Request, liveTarget, batchSize int, subshards, cpus []int, seed int64) []bench {
	benches := []bench{
		churnSessionBench("churn/union-session/"+label, g, pool, liveTarget, seed),
	}
	for _, t := range subshards {
		for _, c := range cpus {
			benches = append(benches, shardedChurnBench(
				fmt.Sprintf("churn/sharded/%s/subshard=%d/cpus=%d", label, t, c),
				g, pool, liveTarget, batchSize, c, seed, wdm.WithSubshardThreshold(t)))
		}
	}
	return benches
}

// requestPool converts gen.LocalityRequestPool pairs to requests.
func requestPool(pairs [][2]digraph.Vertex) []route.Request {
	reqs := make([]route.Request, len(pairs))
	for i, p := range pairs {
		reqs[i] = route.Request{Src: p[0], Dst: p[1]}
	}
	return reqs
}

// provisioningMergeBenches measures materialising the merged snapshot
// of a filled two-level engine. The trusted entry is the production
// merge (dipath.FromArcsTrusted translations); the revalidate entry
// adds the full family validation sweep the pre-trusted merge
// effectively paid per call — the delta between the two is the
// satellite win recorded in BENCH_PR4.json.
func provisioningMergeBenches(label string, g *digraph.Digraph, pool []route.Request, liveTarget int, seed int64) []bench {
	build := func(b *testing.B) *wdm.ShardedEngine {
		net := &wdm.Network{Topology: g}
		eng, err := net.NewShardedEngine(wdm.WithSubshardThreshold(64))
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		ops := make([]wdm.BatchOp, 0, liveTarget)
		for len(ops) < liveTarget {
			ops = append(ops, wdm.AddOp(pool[rng.Intn(len(pool))]))
		}
		for _, res := range eng.ApplyBatch(ops) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
		return eng
	}
	return []bench{
		{"sharded/provisioning-merge/" + label, func(b *testing.B) {
			eng := build(b)
			defer eng.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Provisioning(); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"sharded/provisioning-merge-revalidate/" + label, func(b *testing.B) {
			eng := build(b)
			defer eng.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				prov, err := eng.Provisioning()
				if err != nil {
					b.Fatal(err)
				}
				if err := prov.Paths.Validate(g); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
}
