// Query-plane workload driver: N reader goroutines hammer the engine's
// read API while the benchmark loop churns batches through it — the
// head-to-head between the lock-free snapshot reads and the
// mutex-serialised ...Strong reads PR 6 shipped. ns/op is the writer's
// cost per churn event; reader throughput and latency land in Extra as
// "reads/s", "read_p50_ns" and "read_p99_ns".
package main

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wavedag/internal/digraph"
	"wavedag/internal/route"
	"wavedag/internal/wdm"
)

// queryPlaneBenches builds the reader-count sweep for one topology:
// for every N in readerCounts, a mutex entry (readers call the
// ...Strong API and contend with the writer on the engine mutex) and a
// snapshot entry (readers use the lock-free published-snapshot API).
// N=0 isolates the writer's own cost under each mode — both run the
// identical write path, so the pair should agree.
func queryPlaneBenches(label string, g *digraph.Digraph, pool []route.Request, liveTarget, batchSize int, readerCounts []int, seed int64) []bench {
	var benches []bench
	for _, n := range readerCounts {
		for _, mode := range []string{"mutex", "snapshot"} {
			benches = append(benches, queryPlaneBench(
				fmt.Sprintf("qread/%s/%s/readers=%d", mode, label, n),
				mode, g, pool, liveTarget, batchSize, n, seed))
		}
	}
	return benches
}

// queryPlaneBench runs one (mode, readers) cell. Each reader round is
// four queries — Stats, the full load vector, a Path lookup on a
// pre-fill probe id (stale ids must answer ErrUnknownSession), and Pi —
// with every 32nd round timed into a bounded sample buffer for the
// percentiles. The writer replays the same churn trace as the sharded
// churn benchmarks, batched through ApplyBatchInto.
func queryPlaneBench(name, mode string, g *digraph.Digraph, pool []route.Request, liveTarget, batchSize, readers int, seed int64) bench {
	return bench{name, func(b *testing.B) {
		b.ReportAllocs()
		net := &wdm.Network{Topology: g}
		eng, err := net.NewShardedEngine()
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		d := newChurnDriver(pool, float64(liveTarget), seed)
		ids := make(map[int]wdm.ShardedID, liveTarget)
		ops := make([]wdm.BatchOp, 0, batchSize)
		seqs := make([]int, 0, batchSize)
		pending := make(map[int]bool, batchSize)
		results := make([]wdm.BatchResult, 0, batchSize)
		staged := 0
		flush := func() {
			if len(ops) == 0 {
				return
			}
			results = eng.ApplyBatchInto(ops, results)
			for k, res := range results {
				if res.Err != nil {
					b.Fatal(res.Err)
				}
				if ops[k].Kind == wdm.BatchAdd {
					ids[seqs[k]] = res.ID
				}
			}
			ops, seqs = ops[:0], seqs[:0]
			staged = 0
			clear(pending)
		}
		stage := func(op churnOp) {
			if op.add {
				pending[op.seq] = true
				ops = append(ops, wdm.AddOp(op.req))
				seqs = append(seqs, op.seq)
				staged++
			} else {
				if pending[op.seq] {
					flush()
				}
				ops = append(ops, wdm.RemoveOp(ids[op.seq]))
				seqs = append(seqs, -1)
				staged--
				delete(ids, op.seq)
			}
			if len(ops) >= batchSize {
				flush()
			}
		}
		for eng.Len()+staged < liveTarget {
			stage(d.nextOp())
		}
		flush()

		// Stable probe set snapshotted at fill time; churn removes some of
		// these mid-run, so lookups exercise live and dead ids alike.
		probes := make([]wdm.ShardedID, 0, len(ids))
		for _, id := range ids {
			probes = append(probes, id)
		}

		var (
			stop     atomic.Bool
			reads    atomic.Int64
			wg       sync.WaitGroup
			sampleMu sync.Mutex
			samples  []float64
		)
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(1000+r)))
				var buf []int
				local := make([]float64, 0, 4096)
				n := int64(0)
				for i := 0; !stop.Load(); i++ {
					id := probes[rng.Intn(len(probes))]
					timed := i%32 == 0
					var t0 time.Time
					if timed {
						t0 = time.Now()
					}
					var perr error
					if mode == "snapshot" {
						_ = eng.Stats()
						buf = eng.ArcLoadsInto(buf)
						_, perr = eng.Path(id)
						_ = eng.Pi()
					} else {
						_ = eng.StatsStrong()
						buf = eng.ArcLoadsStrong()
						_, perr = eng.PathStrong(id)
						_ = eng.PiStrong()
					}
					if perr != nil && !errors.Is(perr, wdm.ErrUnknownSession) {
						b.Error(perr)
						return
					}
					n += 4
					if timed {
						dt := float64(time.Since(t0).Nanoseconds()) / 4
						if len(local) < cap(local) {
							local = append(local, dt)
						} else {
							local[(i/32)%cap(local)] = dt
						}
					}
				}
				reads.Add(n)
				sampleMu.Lock()
				samples = append(samples, local...)
				sampleMu.Unlock()
			}(r)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			stage(d.nextOp())
		}
		flush()
		b.StopTimer()
		stop.Store(true)
		wg.Wait()
		if readers > 0 && b.Elapsed() > 0 {
			b.ReportMetric(float64(reads.Load())/b.Elapsed().Seconds(), "reads/s")
			if len(samples) > 0 {
				sort.Float64s(samples)
				b.ReportMetric(samples[len(samples)/2], "read_p50_ns")
				b.ReportMetric(samples[len(samples)*99/100], "read_p99_ns")
			}
		}
		if err := eng.Verify(); err != nil {
			b.Fatal(err)
		}
	}}
}
