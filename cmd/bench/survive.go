// Survivability workload driver: churn with live fiber cuts. A
// deterministic MTBF/MTTR fault schedule (gen.FaultSchedule) is
// replayed against the churn trace — each churn event advances the
// fault clock by one unit — so cuts trigger restoration storms while
// arrivals and departures keep flowing. ns/op is per churn event;
// restoration latency, restored%, parked/revived counts and budget
// violations ride along as benchmark metrics (Entry.Extra in the JSON
// snapshot). The MTBF axis sweeps quiet, stressed and storm-heavy
// regimes at a fixed repair time.
package main

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"wavedag/internal/digraph"
	"wavedag/internal/gen"
	"wavedag/internal/route"
	"wavedag/internal/wdm"
)

// faultHorizon is the schedule length in churn events; when a replay
// runs past it, every open cut is healed and the schedule restarts, so
// arbitrarily long benchmark runs stay valid.
const faultHorizon = 100_000

// surviveChurnBench measures a budgeted session's per-event cost under
// interleaved fiber cuts. Arrivals that lost their component to a cut
// are counted as blocked, not failures; budget violations (λ > w
// observed after any fault event) are reported and expected to be 0.
func surviveChurnBench(name string, g *digraph.Digraph, pool []route.Request, liveTarget, budget int, mtbf, mttr float64, seed int64) bench {
	return bench{name, func(b *testing.B) {
		b.ReportAllocs()
		net := &wdm.Network{Topology: g}
		s, err := net.NewSession(wdm.WithWavelengthBudget(budget))
		if err != nil {
			b.Fatal(err)
		}
		events, err := gen.FaultSchedule(g, mtbf, mttr, faultHorizon, seed+1)
		if err != nil {
			b.Fatal(err)
		}
		d := newChurnDriver(pool, float64(liveTarget), seed)
		ids := make(map[int]wdm.SessionID, liveTarget)
		var stormNanos int64
		violations, clock, next := 0, 0.0, 0
		healAll := func() {
			for a := 0; a < g.NumArcs(); a++ {
				if g.ArcFailed(digraph.ArcID(a)) {
					if _, err := s.RestoreArc(digraph.ArcID(a)); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		step := func() {
			for next < len(events) && events[next].At <= clock {
				ev := events[next]
				next++
				if ev.Restore {
					if _, err := s.RestoreArc(ev.Arc); err != nil {
						b.Fatal(err)
					}
				} else {
					start := time.Now()
					if _, err := s.FailArc(ev.Arc); err != nil {
						b.Fatal(err)
					}
					stormNanos += time.Since(start).Nanoseconds()
				}
				if n, err := s.NumLambda(); err != nil {
					b.Fatal(err)
				} else if n > budget {
					violations++
				}
			}
			if next >= len(events) {
				healAll()
				next, clock = 0, 0
			}
			clock++
			op := d.nextOp()
			if op.add {
				id, adm, err := s.TryAdd(op.req)
				if err != nil {
					var nr route.ErrNoRoute
					if errors.As(err, &nr) {
						return // the cut disconnected the pair: blocked
					}
					b.Fatal(err)
				}
				if adm.Accepted {
					ids[op.seq] = id
				}
			} else if id, ok := ids[op.seq]; ok {
				if err := s.Remove(id); err != nil {
					b.Fatal(err)
				}
				delete(ids, op.seq)
			}
		}
		for i := 0; i < liveTarget*2; i++ {
			step()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step()
		}
		b.StopTimer()
		fs := s.FailureStats()
		if fs.Affected > 0 {
			b.ReportMetric(100*float64(fs.Restored)/float64(fs.Affected), "restored%")
		}
		if fs.Cuts > 0 {
			b.ReportMetric(float64(stormNanos)/float64(fs.Cuts)/1e3, "storm_us")
		}
		b.ReportMetric(float64(fs.Parked), "parked")
		b.ReportMetric(float64(fs.Revived), "revived")
		b.ReportMetric(float64(violations), "budget_violations")
		b.ReportMetric(float64(budget), "budget")
		healAll()
		if err := s.Verify(); err != nil {
			b.Fatal(err)
		}
		if n, err := s.NumLambda(); err != nil || n > budget {
			b.Fatalf("λ=%d past budget %d (%v)", n, budget, err)
		}
	}}
}

// surviveShardedBench is the engine counterpart: single-op churn against
// the sharded engine with cuts dispatched through ShardedEngine.FailArc,
// storm latency taken from the engine's own counters.
func surviveShardedBench(name string, g *digraph.Digraph, pool []route.Request, liveTarget, budget, workers int, mtbf, mttr float64, seed int64) bench {
	return bench{name, func(b *testing.B) {
		b.ReportAllocs()
		net := &wdm.Network{Topology: g}
		eng, err := net.NewShardedEngine(
			wdm.WithShardWorkers(workers), wdm.WithEngineWavelengthBudget(budget))
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		events, err := gen.FaultSchedule(g, mtbf, mttr, faultHorizon, seed+1)
		if err != nil {
			b.Fatal(err)
		}
		d := newChurnDriver(pool, float64(liveTarget), seed)
		ids := make(map[int]wdm.ShardedID, liveTarget)
		violations, clock, next := 0, 0.0, 0
		healAll := func() {
			for a := 0; a < g.NumArcs(); a++ {
				if g.ArcFailed(digraph.ArcID(a)) {
					if _, err := eng.RestoreArc(digraph.ArcID(a)); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
		step := func() {
			for next < len(events) && events[next].At <= clock {
				ev := events[next]
				next++
				if ev.Restore {
					if _, err := eng.RestoreArc(ev.Arc); err != nil {
						b.Fatal(err)
					}
				} else if _, err := eng.FailArc(ev.Arc); err != nil {
					b.Fatal(err)
				}
				if n, err := eng.NumLambda(); err != nil {
					b.Fatal(err)
				} else if n > budget {
					violations++
				}
			}
			if next >= len(events) {
				healAll()
				next, clock = 0, 0
			}
			clock++
			op := d.nextOp()
			if op.add {
				id, err := eng.Add(op.req)
				if err != nil {
					var nr route.ErrNoRoute
					if errors.As(err, &nr) || errors.Is(err, wdm.ErrBudgetExceeded) {
						return // blocked arrival: holds nothing
					}
					b.Fatal(err)
				}
				ids[op.seq] = id
			} else if id, ok := ids[op.seq]; ok {
				if err := eng.Remove(id); err != nil {
					b.Fatal(err)
				}
				delete(ids, op.seq)
			}
		}
		for i := 0; i < liveTarget*2; i++ {
			step()
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step()
		}
		b.StopTimer()
		st := eng.Stats()
		affected := st.Plain.Affected + st.Region.Affected + st.Overlay.Affected
		if affected > 0 {
			b.ReportMetric(100*float64(st.Restored())/float64(affected), "restored%")
		}
		if st.Cuts > 0 {
			b.ReportMetric(float64(st.StormNanos)/float64(st.Cuts)/1e3, "storm_us")
		}
		b.ReportMetric(float64(st.Plain.Parked+st.Region.Parked+st.Overlay.Parked), "parked")
		b.ReportMetric(float64(st.Plain.Revived+st.Region.Revived+st.Overlay.Revived), "revived")
		b.ReportMetric(float64(violations), "budget_violations")
		b.ReportMetric(float64(budget), "budget")
		healAll()
		if err := eng.Verify(); err != nil {
			b.Fatal(err)
		}
		if n, err := eng.NumLambda(); err != nil || n > budget {
			b.Fatalf("λ=%d past budget %d (%v)", n, budget, err)
		}
	}}
}

// surviveMTTR is the mean repair time of every sweep, in churn events.
const surviveMTTR = 200

// surviveMTBFAxis is the 3-point MTBF sweep: quiet, stressed and
// storm-heavy cut regimes (mean up time per arc, in churn events).
var surviveMTBFAxis = []struct {
	tag  string
	mtbf float64
}{
	{"quiet", 64000},
	{"stressed", 16000},
	{"storm", 4000},
}

// surviveBenches builds the session-level survivability sweep for one
// topology: the MTBF axis at a fixed MTTR, budget calibrated to the
// offered load (w = π).
func surviveBenches(label string, g *digraph.Digraph, pool []route.Request, liveTarget int, seed int64) []bench {
	pi := offeredPi(g, pool, liveTarget, seed)
	if pi < 2 {
		pi = 2
	}
	var benches []bench
	for _, m := range surviveMTBFAxis {
		benches = append(benches, surviveChurnBench(
			fmt.Sprintf("survive/churn/%s/mtbf=%s", label, m.tag),
			g, pool, liveTarget, pi, m.mtbf, surviveMTTR, seed+300))
	}
	return benches
}

// surviveShardedBenches builds the engine-side sweep on a
// multi-component topology: the stressed MTBF point, one entry per
// worker count.
func surviveShardedBenches(label string, g *digraph.Digraph, pool []route.Request, liveTarget int, cpus []int, seed int64) []bench {
	pi := offeredPi(g, pool, liveTarget, seed)
	if pi < 2 {
		pi = 2
	}
	var benches []bench
	for _, c := range cpus {
		benches = append(benches, surviveShardedBench(
			fmt.Sprintf("survive/sharded/%s/mtbf=stressed/cpus=%d", label, c),
			g, pool, liveTarget, pi, c, 16000, surviveMTTR, seed+400))
	}
	return benches
}
