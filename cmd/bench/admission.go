// Admission workload driver: blocking-probability churn under a
// wavelength budget. The offered load is calibrated from an unbudgeted
// steady-state run (its π), and the budget axis sweeps w ∈ {π/2, π,
// 2π}: well under, at, and well over the offered load. ns/op is per
// event; the accept rate and the actual budget ride along as benchmark
// metrics (Entry.Extra in the JSON snapshot).
package main

import (
	"errors"
	"fmt"
	"runtime"
	"testing"

	"wavedag/internal/digraph"
	"wavedag/internal/route"
	"wavedag/internal/wdm"
)

// offeredPi replays the driver's trace unbudgeted to steady state and
// returns the resulting load π — the offered-load yardstick the budget
// sweep is calibrated against.
func offeredPi(g *digraph.Digraph, pool []route.Request, liveTarget int, seed int64) int {
	net := &wdm.Network{Topology: g}
	s, err := net.NewSession()
	if err != nil {
		fatal(err)
	}
	d := newChurnDriver(pool, float64(liveTarget), seed)
	ids := make(map[int]wdm.SessionID, liveTarget)
	for i := 0; i < liveTarget*3; i++ {
		op := d.nextOp()
		if op.add {
			id, err := s.Add(op.req)
			if err != nil {
				fatal(err)
			}
			ids[op.seq] = id
		} else if id, ok := ids[op.seq]; ok {
			if err := s.Remove(id); err != nil {
				fatal(err)
			}
			delete(ids, op.seq)
		}
	}
	return s.Pi()
}

// admissionChurnBench measures a budgeted session's per-event cost on
// the blocking-probability workload. Departures of rejected arrivals
// are skipped (a blocked request holds nothing); the accept rate over
// the whole run is reported as the "accept%" metric.
func admissionChurnBench(name string, g *digraph.Digraph, pool []route.Request, liveTarget, budget int, seed int64, opts ...wdm.SessionOption) bench {
	return bench{name, func(b *testing.B) {
		b.ReportAllocs()
		net := &wdm.Network{Topology: g}
		s, err := net.NewSession(append([]wdm.SessionOption{wdm.WithWavelengthBudget(budget)}, opts...)...)
		if err != nil {
			b.Fatal(err)
		}
		d := newChurnDriver(pool, float64(liveTarget), seed)
		ids := make(map[int]wdm.SessionID, liveTarget)
		apply := func(op churnOp) {
			if op.add {
				id, adm, err := s.TryAdd(op.req)
				if err != nil {
					b.Fatal(err)
				}
				if adm.Accepted {
					ids[op.seq] = id
				}
			} else if id, ok := ids[op.seq]; ok {
				if err := s.Remove(id); err != nil {
					b.Fatal(err)
				}
				delete(ids, op.seq)
			}
		}
		// Steady state cannot be defined by live count (the budget may cap
		// it below the target); a fixed warm-up of events settles both the
		// session and the blocking behaviour.
		for i := 0; i < liveTarget*2; i++ {
			apply(d.nextOp())
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			apply(d.nextOp())
		}
		b.StopTimer()
		st := s.AdmissionStats()
		if st.Requests > 0 {
			b.ReportMetric(100*float64(st.Accepted)/float64(st.Requests), "accept%")
		}
		b.ReportMetric(float64(budget), "budget")
		if err := s.Verify(); err != nil {
			b.Fatal(err)
		}
		if n, err := s.NumLambda(); err != nil || n > budget {
			b.Fatalf("λ=%d past budget %d (%v)", n, budget, err)
		}
	}}
}

// admissionShardedChurnBench is the sharded-engine counterpart: batched
// events through ApplyBatchInto (pooled results), per-lane admission
// outcomes from EngineStats.
func admissionShardedChurnBench(name string, g *digraph.Digraph, pool []route.Request, liveTarget, batchSize, workers, budget int, seed int64, opts ...wdm.ShardedOption) bench {
	return bench{name, func(b *testing.B) {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(workers))
		b.ReportAllocs()
		net := &wdm.Network{Topology: g}
		eng, err := net.NewShardedEngine(append([]wdm.ShardedOption{
			wdm.WithShardWorkers(workers), wdm.WithEngineWavelengthBudget(budget),
		}, opts...)...)
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		d := newChurnDriver(pool, float64(liveTarget), seed)
		ids := make(map[int]wdm.ShardedID, liveTarget)
		ops := make([]wdm.BatchOp, 0, batchSize)
		seqs := make([]int, 0, batchSize)
		pending := make(map[int]bool, batchSize)
		results := make([]wdm.BatchResult, 0, batchSize)
		flush := func() {
			if len(ops) == 0 {
				return
			}
			results = eng.ApplyBatchInto(ops, results)
			for k, res := range results {
				switch {
				case res.Err == nil:
					if ops[k].Kind == wdm.BatchAdd {
						ids[seqs[k]] = res.ID
					}
				case errors.Is(res.Err, wdm.ErrBudgetExceeded):
					// blocked arrival: holds nothing
				default:
					b.Fatal(res.Err)
				}
			}
			ops, seqs = ops[:0], seqs[:0]
			clear(pending)
		}
		stage := func(op churnOp) {
			if op.add {
				pending[op.seq] = true
				ops = append(ops, wdm.AddOp(op.req))
				seqs = append(seqs, op.seq)
			} else {
				if pending[op.seq] {
					flush()
				}
				id, ok := ids[op.seq]
				if !ok {
					return // the arrival was blocked; no teardown
				}
				ops = append(ops, wdm.RemoveOp(id))
				seqs = append(seqs, -1)
				delete(ids, op.seq)
			}
			if len(ops) >= batchSize {
				flush()
			}
		}
		for i := 0; i < liveTarget*2; i++ {
			stage(d.nextOp())
		}
		flush()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			stage(d.nextOp())
		}
		flush()
		b.StopTimer()
		st := eng.Stats()
		if req := st.Requests(); req > 0 {
			b.ReportMetric(100*float64(st.Accepted())/float64(req), "accept%")
		}
		b.ReportMetric(float64(budget), "budget")
		if err := eng.Verify(); err != nil {
			b.Fatal(err)
		}
		if n, err := eng.NumLambda(); err != nil || n > budget {
			b.Fatalf("λ=%d past budget %d (%v)", n, budget, err)
		}
	}}
}

// admissionRejectCostBenches prices a rejection on both admission
// paths: the Theorem-1 precheck (O(path), touches nothing) against the
// color-then-rollback probe it replaces on cycle-free topologies (the
// WithAdmissionRollbackProbe ablation knob). The probe request is
// chosen to cross a saturated arc, so its conflict neighbourhood is a
// (w+1)-clique and both paths must reject it every time.
func admissionRejectCostBenches(label string, g *digraph.Digraph, pool []route.Request, liveTarget, budget int, seed int64) []bench {
	mk := func(name string, opts ...wdm.SessionOption) bench {
		return bench{name, func(b *testing.B) {
			b.ReportAllocs()
			net := &wdm.Network{Topology: g}
			s, err := net.NewSession(append([]wdm.SessionOption{wdm.WithWavelengthBudget(budget)}, opts...)...)
			if err != nil {
				b.Fatal(err)
			}
			// Fill to steady state, then pick a probe whose shortest route
			// crosses a saturated arc.
			d := newChurnDriver(pool, float64(liveTarget), seed)
			for i := 0; i < liveTarget*2; i++ {
				op := d.nextOp()
				if op.add {
					if _, _, err := s.TryAdd(op.req); err != nil {
						b.Fatal(err)
					}
				}
			}
			probe, found := route.SaturatedRequest(g, s.ArcLoadsInto(nil), pool, budget)
			if !found {
				b.Fatalf("offered load never saturated an arc at budget %d", budget)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, adm, err := s.TryAdd(probe); err != nil {
					b.Fatal(err)
				} else if adm.Accepted {
					b.Fatal("saturated probe was accepted")
				}
			}
		}}
	}
	return []bench{
		mk(fmt.Sprintf("admission/reject-cost/%s/precheck", label)),
		mk(fmt.Sprintf("admission/reject-cost/%s/rollback", label), wdm.WithAdmissionRollbackProbe()),
	}
}

// admissionBenches builds the blocking-probability sweep for one
// topology: the budget axis w ∈ {π/2, π, 2π} calibrated against the
// unbudgeted offered load, for the plain session (default reject and
// retry-alt-route strategies at w=π) plus the reject-cost ablation
// pair.
func admissionBenches(label string, g *digraph.Digraph, pool []route.Request, liveTarget int, seed int64) []bench {
	pi := offeredPi(g, pool, liveTarget, seed)
	if pi < 2 {
		pi = 2
	}
	var benches []bench
	for _, bw := range []struct {
		tag string
		w   int
	}{
		{"pi-half", (pi + 1) / 2},
		{"pi", pi},
		{"2pi", 2 * pi},
	} {
		benches = append(benches, admissionChurnBench(
			fmt.Sprintf("admission/churn/%s/w=%s", label, bw.tag),
			g, pool, liveTarget, bw.w, seed+100))
	}
	benches = append(benches, admissionChurnBench(
		fmt.Sprintf("admission/churn/%s/w=pi/retry-alt-route", label),
		g, pool, liveTarget, pi, seed+100,
		wdm.WithAdmissionStrategyName(wdm.AdmissionRetryAltRoute)))
	benches = append(benches,
		admissionRejectCostBenches(label, g, pool, liveTarget, (pi+1)/2, seed+200)...)
	return benches
}

// admissionShardedBenches builds the engine-side sweep: the same budget
// axis on a multi-component topology, one entry per worker count.
func admissionShardedBenches(label string, g *digraph.Digraph, pool []route.Request, liveTarget, batchSize int, cpus []int, budget int, seed int64, opts ...wdm.ShardedOption) []bench {
	var benches []bench
	for _, c := range cpus {
		benches = append(benches, admissionShardedChurnBench(
			fmt.Sprintf("admission/sharded/%s/w=%d/cpus=%d", label, budget, c),
			g, pool, liveTarget, batchSize, c, budget, seed, opts...))
	}
	return benches
}
