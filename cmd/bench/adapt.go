// Self-tuning layout sweep: the drifting-hotspot workload the adaptive
// plane (hot-region re-splitting, budget re-banding) exists for, on a
// layered stage graph forming one giant biconnected block the seed
// region decomposition cannot cut. Pools replay IN ORDER (unlike the
// churnDriver's uniform draws) so the hotspot actually migrates as the
// benchmark runs; each entry warms through one full pool cycle before
// the timer starts, so the adaptive entries measure the re-split
// steady state ("once drifted"). Snapshots land in BENCH_PR10.json.
package main

import (
	"errors"
	"fmt"
	"testing"

	"wavedag/internal/digraph"
	"wavedag/internal/gen"
	"wavedag/internal/route"
	"wavedag/internal/wdm"
)

// adaptBenches builds the sweep: per-event churn cost under drifting
// vs uniform load, static subshard=64 layout vs the adaptive plane,
// plus the budgeted admission pair (fixed band split vs adaptive
// banding) with accept% and the λ <= w invariant checked at the end.
func adaptBenches(seed int64) []bench {
	topo := gen.LayeredDAG(15, 20, 0.25, 77)
	label := fmt.Sprintf("layered-n=%d", topo.NumVertices())
	const period = 500
	drift := requestPool(gen.DriftingHotspotRequestPool(topo, 30, 0.95, 6000, period, seed))
	uniform := requestPool(gen.DriftingHotspotRequestPool(topo, 30, 0, 6000, period, seed+1))
	cfg := wdm.DefaultAdaptiveConfig()
	cfg.HysteresisBatches = 4
	cfg.ResplitShare = 0.5
	// Keep lanes an order of magnitude larger than the hot window so
	// window traffic stays in-lane after the splits (see
	// BenchmarkAdaptChurn).
	cfg.MinRegionArcs = 256
	base := func() []wdm.ShardedOption {
		return []wdm.ShardedOption{
			wdm.WithSubshardThreshold(64),
			wdm.WithShardSessionOptions(wdm.WithRoutingPolicy(wdm.RouteMinLoad)),
		}
	}
	var benches []bench
	for _, load := range []struct {
		name string
		pool []route.Request
	}{{"drift", drift}, {"uniform", uniform}} {
		for _, adaptive := range []bool{false, true} {
			mode, opts := "static", base()
			if adaptive {
				mode = "adaptive"
				opts = append(opts, wdm.WithRegionResplit(), wdm.WithAdaptiveConfig(cfg))
			}
			benches = append(benches, adaptChurnBench(
				fmt.Sprintf("adapt/churn/%s/load=%s/mode=%s", label, load.name, mode),
				topo, load.pool, 300, 32, opts...))
		}
	}
	const budget = 10
	benches = append(benches,
		adaptAdmissionBench(fmt.Sprintf("adapt/admission/%s/mode=static", label),
			topo, drift, 300, 32, budget, base()...),
		adaptAdmissionBench(fmt.Sprintf("adapt/admission/%s/mode=banded", label),
			topo, drift, 300, 32, budget, append(base(),
				wdm.WithAdaptiveBanding(), wdm.WithRegionResplit(), wdm.WithAdaptiveConfig(cfg))...))
	return benches
}

// adaptChurnBench measures per-event cost replaying the pool in drift
// order: a warmup pass over the whole pool (so every window has been
// hot once and the adaptive layout has settled), then timed remove+add
// batches. ns/op is per event.
func adaptChurnBench(name string, g *digraph.Digraph, pool []route.Request, liveTarget, batchSize int, opts ...wdm.ShardedOption) bench {
	return bench{name, func(b *testing.B) {
		b.ReportAllocs()
		net := &wdm.Network{Topology: g}
		eng, err := net.NewShardedEngine(opts...)
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		ids := make([]wdm.ShardedID, 0, liveTarget)
		next := 0
		for len(ids) < liveTarget {
			id, err := eng.Add(pool[next%len(pool)])
			next++
			if err != nil {
				b.Fatal(err)
			}
			ids = append(ids, id)
		}
		ops := make([]wdm.BatchOp, 0, batchSize)
		slots := make([]int, 0, batchSize/2)
		step := func(i int) {
			k := (i * 17) % len(ids)
			ops = append(ops, wdm.RemoveOp(ids[k]), wdm.AddOp(pool[next%len(pool)]))
			next++
			slots = append(slots, k)
			if len(ops) == batchSize {
				for j, res := range eng.ApplyBatch(ops) {
					if res.Err != nil {
						b.Fatal(res.Err)
					}
					if j%2 == 1 {
						ids[slots[j/2]] = res.ID
					}
				}
				ops, slots = ops[:0], slots[:0]
			}
		}
		for i := 0; next < len(pool); i++ {
			step(i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step(i)
		}
		b.StopTimer()
		if err := eng.Verify(); err != nil {
			b.Fatal(err)
		}
		st := eng.Stats()
		b.ReportMetric(float64(st.Resplits), "resplits")
		b.ReportMetric(float64(st.RegionShards), "lanes")
		b.ReportMetric(float64(st.OverlayLive), "overlay-live")
	}}
}

// adaptAdmissionBench is the budgeted counterpart: blocked arrivals
// hold nothing, accept% comes from EngineStats, and the run fails if
// the merged coloring ever needs more than the budget.
func adaptAdmissionBench(name string, g *digraph.Digraph, pool []route.Request, liveTarget, batchSize, budget int, opts ...wdm.ShardedOption) bench {
	return bench{name, func(b *testing.B) {
		b.ReportAllocs()
		net := &wdm.Network{Topology: g}
		eng, err := net.NewShardedEngine(append([]wdm.ShardedOption{
			wdm.WithEngineWavelengthBudget(budget),
		}, opts...)...)
		if err != nil {
			b.Fatal(err)
		}
		defer eng.Close()
		var ids []wdm.ShardedID
		next := 0
		ops := make([]wdm.BatchOp, 0, batchSize)
		slots := make([]int, 0, batchSize/2)
		results := make([]wdm.BatchResult, 0, batchSize)
		step := func(i int) {
			if len(ids) > 0 {
				k := (i * 17) % len(ids)
				ops = append(ops, wdm.RemoveOp(ids[k]))
				slots = append(slots, k)
			}
			ops = append(ops, wdm.AddOp(pool[next%len(pool)]))
			next++
			if len(ops) >= batchSize {
				results = eng.ApplyBatchInto(ops, results)
				var fresh []wdm.ShardedID
				for j, res := range results {
					switch {
					case res.Err == nil:
						if ops[j].Kind == wdm.BatchAdd {
							fresh = append(fresh, res.ID)
						}
					case errors.Is(res.Err, wdm.ErrBudgetExceeded):
						// blocked arrival: holds nothing
					default:
						b.Fatal(res.Err)
					}
				}
				// Replace the removed slots with fresh arrivals, then
				// grow or shrink toward the live target.
				for _, k := range slots {
					if len(fresh) > 0 {
						ids[k] = fresh[len(fresh)-1]
						fresh = fresh[:len(fresh)-1]
					} else {
						ids[k] = ids[len(ids)-1]
						ids = ids[:len(ids)-1]
					}
				}
				for _, id := range fresh {
					if len(ids) < liveTarget {
						ids = append(ids, id)
					} else {
						ops = append(ops[:0], wdm.RemoveOp(id))
						for _, res := range eng.ApplyBatchInto(ops, results) {
							if res.Err != nil {
								b.Fatal(res.Err)
							}
						}
					}
				}
				ops, slots = ops[:0], slots[:0]
			}
		}
		for i := 0; next < len(pool); i++ {
			step(i)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			step(i)
		}
		b.StopTimer()
		st := eng.Stats()
		if req := st.Requests(); req > 0 {
			b.ReportMetric(100*float64(st.Accepted())/float64(req), "accept%")
		}
		b.ReportMetric(float64(budget), "budget")
		b.ReportMetric(float64(st.Rebands), "rebands")
		b.ReportMetric(float64(st.Resplits), "resplits")
		if err := eng.Verify(); err != nil {
			b.Fatal(err)
		}
		if n, err := eng.NumLambda(); err != nil || n > budget {
			b.Fatalf("λ=%d past budget %d (%v)", n, budget, err)
		}
	}}
}
