// Command bench runs the paper's E1–E12 experiment pipelines plus
// large-instance workloads under the Go benchmark harness and emits a
// JSON snapshot (ns/op, B/op, allocs/op) for the repository's perf
// trajectory (BENCH_PR*.json).
//
// Usage:
//
//	go run ./cmd/bench [-out bench.json] [-benchtime 1s] [-large] [-survive] [-readers 0,4] [-serve] [-adapt]
//
// -survive adds the survivability sweep (fiber-cut churn over a 3-point
// MTBF axis plus the sharded-engine counterpart); its snapshots land in
// BENCH_PR6.json. -readers sets the reader-goroutine axis of the
// query-plane sweep (lock-free snapshot reads vs mutex-serialised
// ...Strong reads under write churn); its snapshots land in
// BENCH_PR7.json. -serve adds the serving front-end sweep (open-loop
// Poisson load at {0.5, 1, 2}× measured capacity, shedding on vs
// blocking backpressure); its snapshots land in BENCH_PR8.json. -adapt
// adds the self-tuning layout sweep (drifting-hotspot churn, static
// subshard layout vs adaptive re-splitting, plus the budgeted
// admission pair with adaptive banding); its snapshots land in
// BENCH_PR10.json.
//
// The E-suite entries mirror bench_test.go so snapshots line up with
// `go test -bench=.`; the large entries (Theorem 1 at n=500/paths=5000,
// a 64-component disjoint union, all-to-all batch routing) only exist
// here — they are the scale targets the hot-path work is sized for.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"wavedag/internal/conflict"
	"wavedag/internal/core"
	"wavedag/internal/digraph"
	"wavedag/internal/gen"
	"wavedag/internal/load"
	"wavedag/internal/route"
	"wavedag/internal/wdm"
)

// Entry is one benchmark measurement of the snapshot. Extra carries
// custom metrics reported via b.ReportMetric (the admission workloads
// record "accept%" and the actual "budget" there); entries without any
// omit the field, so older snapshots diff cleanly.
type Entry struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

func main() {
	testing.Init() // register test.* flags so test.benchtime is settable
	out := flag.String("out", "", "write JSON snapshot to this file (default stdout)")
	benchtime := flag.Duration("benchtime", time.Second, "target run time per benchmark")
	large := flag.Bool("large", true, "include the large-instance workloads")
	survive := flag.Bool("survive", false, "include the survivability (fiber-cut) sweep")
	serveSweep := flag.Bool("serve", false, "include the serving front-end (open-loop overload) sweep")
	adapt := flag.Bool("adapt", false, "include the self-tuning layout (drifting hotspot) sweep")
	cpus := flag.String("cpus", "1,2,4", "comma-separated worker counts for the sharded churn sweep")
	subshard := flag.String("subshard", "0,64", "comma-separated sub-shard thresholds for the giant-component sweep (0 = off)")
	readers := flag.String("readers", "0,4", "comma-separated reader-goroutine counts for the query-plane sweep")
	flag.Parse()

	cpuList, err := parseCPUs(*cpus)
	if err != nil {
		fatal(err)
	}
	subshardList, err := parseInts(*subshard, 0)
	if err != nil {
		fatal(err)
	}
	readerList, err := parseInts(*readers, 0)
	if err != nil {
		fatal(err)
	}

	// testing.Benchmark honours this global.
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fatal(err)
	}

	var entries []Entry
	run := func(name string, f func(b *testing.B)) {
		r := testing.Benchmark(f)
		e := Entry{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			e.Extra = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				e.Extra[k] = v
			}
		}
		entries = append(entries, e)
		fmt.Fprintf(os.Stderr, "%-40s %12.0f ns/op %10d B/op %8d allocs/op\n",
			e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}

	for _, b := range suite(*large, *survive, *serveSweep, *adapt, cpuList, subshardList, readerList) {
		run(b.name, b.fn)
	}

	blob, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fatal(err)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}

// parseCPUs parses the -cpus sweep list ("1,2,4").
func parseCPUs(s string) ([]int, error) {
	return parseInts(s, 1)
}

// parseInts parses a comma-separated integer sweep list with a floor.
func parseInts(s string, min int) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < min {
			return nil, fmt.Errorf("bad sweep entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

type bench struct {
	name string
	fn   func(b *testing.B)
}

// suite builds the benchmark list. Every workload is constructed outside
// the timed loop, exactly as in bench_test.go. cpus is the worker-count
// axis of the sharded churn sweeps; subshards the threshold axis of the
// giant-component sweep; readers the reader-goroutine axis of the
// query-plane sweep; survive adds the fiber-cut sweep; serveSweep the
// serving front-end overload sweep.
func suite(large, survive, serveSweep, adapt bool, cpus, subshards, readers []int) []bench {
	var benches []bench
	add := func(name string, fn func(b *testing.B)) {
		benches = append(benches, bench{name, fn})
	}

	// multiShard glues c disjoint Theorem 1 components into one topology
	// for the sharded engine workloads.
	multiShard := func(c, nInternal int, seed int64) *digraph.Digraph {
		parts := make([]gen.Instance, c)
		for i := range parts {
			g, err := gen.RandomNoInternalCycleDAG(nInternal, 8, 8, 0.2, seed+int64(i))
			if err != nil {
				fatal(err)
			}
			parts[i] = gen.Instance{G: g}
		}
		g, _ := gen.DisjointUnion(parts...)
		return g
	}

	// E1 / Figure 1: exact χ on the pathological staircase.
	for _, k := range []int{8, 12} {
		k := k
		g, fam, err := gen.Fig1Staircase(k)
		if err != nil {
			fatal(err)
		}
		add(fmt.Sprintf("e1/fig1-pathological/k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cg := conflict.FromFamily(g, fam)
				if w := cg.ChromaticNumber(); w != k {
					b.Fatalf("w=%d want %d", w, k)
				}
			}
		})
	}

	// E3 / Theorem 1 on the largest in-suite instance.
	{
		g, err := gen.RandomNoInternalCycleDAG(240, 4, 4, 0.2, 240)
		if err != nil {
			fatal(err)
		}
		fam := gen.RandomWalkFamily(g, 1500, 8, 1500)
		add("e3/theorem1/n=240-paths=1500", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.ColorNoInternalCycle(g, fam); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// E5 / Property 3: π = ω on an UPP-DAG.
	{
		g := gen.RandomUPPDAG(25, 120, 5)
		fam, err := gen.AllSourceSinkFamily(g)
		if err != nil {
			fatal(err)
		}
		add("e5/upp-clique", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pi := load.Pi(g, fam)
				om := conflict.FromFamily(g, fam).CliqueNumber()
				if pi != om {
					b.Fatalf("π=%d ω=%d", pi, om)
				}
			}
		})
	}

	// E7 / Theorem 6 on the replicated Havet instance.
	{
		g, fam := gen.Havet()
		rep := fam.Replicate(8)
		add("e7/theorem6/havet-x8", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.ColorOneInternalCycleUPP(g, rep); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// E10: disjoint multi-cycle unions (DSATUR over components).
	for _, c := range []int{4, 16} {
		c := c
		gh, fh := gen.Havet()
		parts := make([]gen.Instance, c)
		for i := range parts {
			parts[i] = gen.Instance{G: gh, F: fh}
		}
		g, fam := gen.DisjointUnion(parts...)
		add(fmt.Sprintf("e10/multi-cycle/C=%d", c), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cg := conflict.FromFamily(g, fam)
				if w := conflict.CountColors(cg.DSATURColoring()); w < 3 {
					b.Fatalf("w=%d", w)
				}
			}
		})
	}

	// Full RWA pipeline, as in bench_test.go.
	{
		topo, err := gen.RandomNoInternalCycleDAG(40, 6, 6, 0.2, 12)
		if err != nil {
			fatal(err)
		}
		net := &wdm.Network{Topology: topo, Wavelengths: 32}
		reqs := route.AllToAll(topo)
		if len(reqs) > 200 {
			reqs = reqs[:200]
		}
		for _, policy := range []wdm.RoutingPolicy{wdm.RouteShortest, wdm.RouteMinLoad} {
			policy := policy
			add("rwa-pipeline/"+policy.String(), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := net.Provision(reqs, policy); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}

	// Churn (small): dynamic session vs rebuild-from-scratch per event on
	// the RWA-pipeline topology at a 200-path working set.
	{
		topo, err := gen.RandomNoInternalCycleDAG(40, 6, 6, 0.2, 12)
		if err != nil {
			fatal(err)
		}
		benches = append(benches, churnBenches("n=40-paths=200", topo, 200, 7)...)
	}

	// Churn on a χ>π topology (Figure 1 staircase, shortest routes): the
	// instance drifts past the slack gate routinely, so the per-event
	// cost is dominated by how cheaply recolor spikes are absorbed — the
	// workload the warm-start repack targets.
	{
		topo, _, err := gen.Fig1Staircase(12)
		if err != nil {
			fatal(err)
		}
		benches = append(benches, churnBenches("chi-gt-pi-k=12-paths=200", topo, 200, 13)...)
	}

	// giantShard glues p Theorem 1 parts into one giant component and
	// adds one small satellite component, so the giant holds ≳90% of
	// the vertices — the layout component sharding cannot split and the
	// two-level engine exists for.
	giantShard := func(p, nInternal int, seed int64) (*digraph.Digraph, [][]digraph.Vertex) {
		parts := make([]*digraph.Digraph, p)
		for i := range parts {
			g, err := gen.RandomNoInternalCycleDAG(nInternal, 6, 6, 0.2, seed+int64(i))
			if err != nil {
				fatal(err)
			}
			parts[i] = g
		}
		glued, partVerts, err := gen.GlueChain(parts...)
		if err != nil {
			fatal(err)
		}
		sat, err := gen.RandomNoInternalCycleDAG(12, 2, 2, 0.2, seed+1000)
		if err != nil {
			fatal(err)
		}
		// The glued component occupies the first identifiers of the
		// union, so partVerts stays valid on the combined topology.
		g, _ := gen.DisjointUnion(gen.Instance{G: glued}, gen.Instance{G: sat})
		return g, partVerts
	}

	// Admission churn (small): the blocking-probability workload — a
	// hotspot-concentrated overload trace against a budget sweep
	// calibrated to the offered load (w ∈ {π/2, π, 2π}), plus the
	// reject-cost ablation (Theorem-1 precheck vs color-and-rollback).
	{
		topo, err := gen.RandomNoInternalCycleDAG(40, 6, 6, 0.2, 12)
		if err != nil {
			fatal(err)
		}
		pool := requestPool(gen.HotspotRequestPool(topo, 10, 0.7, 4000, 17))
		benches = append(benches, admissionBenches("n=40-paths=200", topo, pool, 200, 19)...)
	}

	// Admission sharded churn (small): the budgeted engine on the
	// 4-component topology, batched events, one entry per worker count.
	{
		g := multiShard(4, 40, 21)
		pool := requestPool(gen.HotspotRequestPool(g, 16, 0.7, 4000, 27))
		pi := offeredPi(g, pool, 400, 29)
		benches = append(benches, admissionShardedBenches(
			"C=4-n=160-paths=400", g, pool, 400, 64, cpus, pi, 29)...)
	}

	// Sharded churn (small): 4-component topology, batched events, one
	// entry per worker count.
	benches = append(benches, shardedChurnBenches(
		"C=4-n=160-paths=400", multiShard(4, 40, 21), 400, 64, cpus, 23)...)

	// Small batches (≤16 events) on the same topology: the regime where
	// the persistent worker pool shaves the per-batch spawn cost PR 3
	// paid (compare against BENCH_PR3-era numbers at batch=256 scaled
	// per event).
	{
		g := multiShard(4, 40, 21)
		pool := route.NewRouter(g).AllToAll()
		for _, c := range cpus {
			benches = append(benches, shardedChurnBench(
				fmt.Sprintf("churn/sharded/C=4-n=160-paths=400/batch=8/cpus=%d", c),
				g, pool, 400, 8, c, 23))
		}
	}

	// Query-plane sweep (small): concurrent readers against the
	// lock-free snapshot API vs the mutex-serialised ...Strong reads
	// while the writer churns 64-event batches — reader QPS, read
	// p50/p99 and writer ns/event, head to head per reader count.
	{
		g := multiShard(4, 40, 21)
		pool := route.NewRouter(g).AllToAll()
		benches = append(benches, queryPlaneBenches(
			"C=4-n=160-paths=400", g, pool, 400, 64, readers, 25)...)
	}

	// Giant-component churn (small): a glued component holding ~90% of
	// the vertices under a 90%-local trace, swept over the sub-shard
	// threshold (0 = PR 3 layout) and worker counts.
	{
		g, partVerts := giantShard(4, 24, 43)
		pool := requestPool(gen.LocalityRequestPool(g, partVerts, 0.9, 4000, 47))
		label := fmt.Sprintf("giant-P=4-n=%d-paths=400", g.NumVertices())
		benches = append(benches, giantChurnBenches(label, g, pool, 400, 64, subshards, cpus, 49)...)
		benches = append(benches, provisioningMergeBenches(label, g, pool, 400, 51)...)
	}

	// Serving front-end sweep: the write coalescer under open-loop
	// Poisson load at {0.5, 1, 2}× its own measured closed-loop
	// capacity, shedding on (bounded queue, shed verdicts) vs off
	// (blocking backpressure), on the 4-component topology.
	if serveSweep {
		g := multiShard(4, 40, 21)
		pool := route.NewRouter(g).AllToAll()
		benches = append(benches, serveBenches("C=4-n=160", g, pool, 71)...)
	}

	if adapt {
		benches = append(benches, adaptBenches(157)...)
	}

	// Survivability sweep: fiber-cut churn on the admission topology
	// over the MTBF axis, plus the engine counterpart on the
	// 4-component topology.
	if survive {
		topo, err := gen.RandomNoInternalCycleDAG(40, 6, 6, 0.2, 12)
		if err != nil {
			fatal(err)
		}
		pool := requestPool(gen.HotspotRequestPool(topo, 10, 0.7, 4000, 17))
		benches = append(benches, surviveBenches("n=40-paths=200", topo, pool, 200, 61)...)

		g := multiShard(4, 40, 21)
		spool := requestPool(gen.HotspotRequestPool(g, 16, 0.7, 4000, 27))
		benches = append(benches, surviveShardedBenches(
			"C=4-n=160-paths=400", g, spool, 400, cpus, 63)...)
	}

	if !large {
		return benches
	}

	// Large 1: Theorem 1 at n=500 internal vertices, 5000 dipaths.
	{
		g, err := gen.RandomNoInternalCycleDAG(500, 8, 8, 0.2, 500)
		if err != nil {
			fatal(err)
		}
		fam := gen.RandomWalkFamily(g, 5000, 8, 5000)
		add("large/theorem1/n=500-paths=5000", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.ColorNoInternalCycle(g, fam); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// Large 2: 64-component disjoint union; the exact solvers shard the
	// conflict graph and fan the components out to the worker pool.
	{
		gh, fh := gen.Havet()
		rep := fh.Replicate(3) // ≥32-vertex components so the pool engages
		parts := make([]gen.Instance, 64)
		for i := range parts {
			parts[i] = gen.Instance{G: gh, F: rep}
		}
		g, fam := gen.DisjointUnion(parts...)
		add("large/multi-cycle/C=64", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cg := conflict.FromFamily(g, fam)
				if chi := cg.ChromaticNumber(); chi < 3 {
					b.Fatalf("χ=%d", chi)
				}
			}
		})
	}

	// Large churn: the ISSUE 2 acceptance workload — steady-state cost
	// per churn event at n=500 internal vertices and a 5000-path working
	// set, session vs full rebuild.
	{
		topo, err := gen.RandomNoInternalCycleDAG(500, 8, 8, 0.2, 500)
		if err != nil {
			fatal(err)
		}
		benches = append(benches, churnBenches("n=500-paths=5000", topo, 5000, 11)...)
	}

	// Large sharded churn: the ISSUE 3 acceptance workload — an
	// 8-component topology totalling ~512 internal vertices and a
	// 5000-path working set, events applied in 256-event batches, swept
	// over the worker-count axis.
	benches = append(benches, shardedChurnBenches(
		"C=8-n=512-paths=5000", multiShard(8, 64, 31), 5000, 256, cpus, 37)...)

	// Large giant-component churn: the ISSUE 4 acceptance workload —
	// one glued component of ~600 vertices (≳95% of the topology) at a
	// 5000-path working set, 90%-local traffic, swept over sub-shard
	// threshold and worker counts.
	{
		g, partVerts := giantShard(8, 64, 53)
		pool := requestPool(gen.LocalityRequestPool(g, partVerts, 0.9, 8000, 57))
		label := fmt.Sprintf("giant-P=8-n=%d-paths=5000", g.NumVertices())
		benches = append(benches, giantChurnBenches(label, g, pool, 5000, 256, subshards, cpus, 59)...)
	}

	// Large 3: all-to-all batch routing through one reusable Router.
	{
		g := gen.LayeredDAG(8, 25, 0.15, 77)
		r := route.NewRouter(g)
		reqs := r.AllToAll()
		add(fmt.Sprintf("large/all-to-all-routing/n=%d-reqs=%d", g.NumVertices(), len(reqs)), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := r.ShortestPaths(reqs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	return benches
}
