// Serving front-end driver: the open-loop overload sweep for the write
// coalescer. Capacity is measured once per topology (closed-loop,
// pipelined submitters under blocking backpressure, so the number is
// engine-bound rather than latency-cap-bound), then each cell offers a
// Poisson arrival stream at {0.5, 1, 2}× that capacity with shedding
// on (bounded queue, shed verdicts with retry-after hints) or off
// (blocking backpressure). ns/op is wall time per offered event — at
// sub-saturation loads it is dominated by the arrival clock itself;
// the serving metrics land in Extra: "offered_eps"/"acked_eps"
// (events per second), "shed_pct", accepted-write "p50_ns"/"p99_ns"
// (submit→ack round trip), and "drain_ms" (graceful drain of whatever
// was still in flight when the offered load stopped).
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wavedag/internal/digraph"
	"wavedag/internal/gen"
	"wavedag/internal/route"
	"wavedag/internal/serve"
	"wavedag/internal/wdm"
)

// serveLatencyCap is the coalescer latency cap used by both the
// capacity probe and the open-loop cells. It is deliberately tighter
// than the server default: the probe's closed-loop writers go idle
// between windows, and a generous cap would bound the measurement by
// the cap instead of the engine.
const serveLatencyCap = 100 * time.Microsecond

// serveBenches builds the serving sweep for one topology. The capacity
// probe runs lazily on first use and is shared by every cell, so all
// six load points are fractions of the same measured number.
func serveBenches(label string, g *digraph.Digraph, pool []route.Request, seed int64) []bench {
	var (
		once     sync.Once
		capacity float64
	)
	measured := func() float64 {
		once.Do(func() { capacity = serveCapacity(g, pool, seed) })
		return capacity
	}
	var benches []bench
	for _, load := range []float64{0.5, 1, 2} {
		for _, shed := range []bool{true, false} {
			mode := "on"
			if !shed {
				mode = "off"
			}
			load, shed := load, shed
			benches = append(benches, bench{
				fmt.Sprintf("serve/%s/load=%gx/shed=%s", label, load, mode),
				func(b *testing.B) {
					serveOpenLoop(b, g, pool, measured()*load, shed, seed)
				},
			})
		}
	}
	return benches
}

// serveCapacity measures the closed-loop saturation throughput of the
// coalescer on this topology: four writers each keep a 64-deep window
// of submissions in flight (add-heavy, removes bounding the working
// set) under blocking backpressure, so the queue never empties and
// batches fill to maxBatch. Returns acked events per second.
func serveCapacity(g *digraph.Digraph, pool []route.Request, seed int64) float64 {
	net := &wdm.Network{Topology: g}
	eng, err := net.NewShardedEngine()
	if err != nil {
		fatal(err)
	}
	srv, err := serve.New(eng,
		serve.WithBlockingBackpressure(),
		serve.WithLatencyCap(serveLatencyCap),
		serve.WithSeed(seed))
	if err != nil {
		fatal(err)
	}
	const (
		writers = 4
		window  = 64
		probe   = 300 * time.Millisecond
	)
	ctx := context.Background()
	var (
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			var ids []wdm.ShardedID
			futures := make([]<-chan serve.Response, 0, window)
			isAdd := make([]bool, 0, window)
			for !stop.Load() {
				futures, isAdd = futures[:0], isAdd[:0]
				for j := 0; j < window; j++ {
					if len(ids) >= 256 {
						id := ids[len(ids)-1]
						ids = ids[:len(ids)-1]
						futures = append(futures, srv.SubmitAsync(ctx, serve.RemoveRequest(id)))
						isAdd = append(isAdd, false)
						continue
					}
					r := pool[rng.Intn(len(pool))]
					futures = append(futures, srv.SubmitAsync(ctx, serve.AddRequest(r.Src, r.Dst)))
					isAdd = append(isAdd, true)
				}
				for k, f := range futures {
					if r := <-f; r.Err == nil && isAdd[k] {
						ids = append(ids, r.ID)
					}
				}
			}
		}(w)
	}
	time.Sleep(probe)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	acked := srv.Stats().Acked
	if err := srv.Shutdown(ctx); err != nil {
		fatal(err)
	}
	if acked == 0 {
		fatal(fmt.Errorf("serve capacity probe acked nothing"))
	}
	eps := float64(acked) / elapsed.Seconds()
	fmt.Fprintf(os.Stderr, "serve: measured closed-loop capacity %.0f acked events/s\n", eps)
	return eps
}

// serveOpenLoop offers b.N events on an open-loop Poisson clock at the
// given rate. With shedding on, overload turns into shed verdicts and
// the clock keeps its pace; with shedding off (blocking backpressure)
// an overloaded server stalls the submitter and the clock falls
// behind — the achieved offered rate is reported as-is, which is the
// honest picture of what each mode does under 2× load.
func serveOpenLoop(b *testing.B, g *digraph.Digraph, pool []route.Request, rate float64, shedding bool, seed int64) {
	net := &wdm.Network{Topology: g}
	eng, err := net.NewShardedEngine()
	if err != nil {
		b.Fatal(err)
	}
	// The queue bound is what converts overload into sheds instead of
	// latency: at ~200k events/s a 256-deep queue is ~1.3ms of queueing
	// worst case, so the accepted-write tail stays within a small
	// constant factor of the uncongested tail while the excess load is
	// shed with hints.
	opts := []serve.Option{
		serve.WithQueueCapacity(256),
		serve.WithLatencyCap(serveLatencyCap),
		serve.WithSeed(seed),
	}
	if !shedding {
		opts = append(opts, serve.WithBlockingBackpressure())
	}
	srv, err := serve.New(eng, opts...)
	if err != nil {
		eng.Close()
		b.Fatal(err)
	}
	arr, err := gen.NewPoissonArrivals(rate, seed+9)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(seed + 17))

	var (
		wg       sync.WaitGroup
		idMu     sync.Mutex
		ids      []wdm.ShardedID
		acked    atomic.Int64
		shedN    atomic.Int64
		sampleMu sync.Mutex
		samples  []float64
	)
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Pace the open-loop clock; skip sleeps too short for the
		// runtime's timer granularity — the average rate is what the
		// Poisson stream sets, not per-gap precision.
		next := start.Add(time.Duration(arr.Next() * float64(time.Second)))
		if d := time.Until(next); d > 50*time.Microsecond {
			time.Sleep(d)
		}
		var req serve.Request
		isAdd := true
		if rng.Float64() < 0.3 {
			idMu.Lock()
			if n := len(ids); n > 0 {
				req, isAdd = serve.RemoveRequest(ids[n-1]), false
				ids = ids[:n-1]
			}
			idMu.Unlock()
		}
		if isAdd {
			r := pool[rng.Intn(len(pool))]
			req = serve.AddRequest(r.Src, r.Dst)
		}
		t0 := time.Now()
		f := srv.SubmitAsync(ctx, req)
		wg.Add(1)
		go func(f <-chan serve.Response, isAdd bool, t0 time.Time) {
			defer wg.Done()
			r := <-f
			switch {
			case r.Err == nil:
				acked.Add(1)
				lat := float64(time.Since(t0).Nanoseconds())
				sampleMu.Lock()
				samples = append(samples, lat)
				sampleMu.Unlock()
				if isAdd {
					idMu.Lock()
					ids = append(ids, r.ID)
					idMu.Unlock()
				}
			case r.Shed():
				shedN.Add(1)
			}
		}(f, isAdd, t0)
	}
	wg.Wait()
	offered := time.Since(start)
	b.StopTimer()
	t0 := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		b.Fatal(err)
	}
	drain := time.Since(t0)
	if err := eng.Verify(); err != nil {
		b.Fatal(err)
	}

	if s := offered.Seconds(); s > 0 {
		b.ReportMetric(float64(b.N)/s, "offered_eps")
		b.ReportMetric(float64(acked.Load())/s, "acked_eps")
	}
	b.ReportMetric(100*float64(shedN.Load())/float64(b.N), "shed_pct")
	if len(samples) > 0 {
		sort.Float64s(samples)
		b.ReportMetric(samples[len(samples)/2], "p50_ns")
		b.ReportMetric(samples[len(samples)*99/100], "p99_ns")
	}
	b.ReportMetric(float64(drain.Nanoseconds())/1e6, "drain_ms")
}
