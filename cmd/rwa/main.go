// Command rwa analyses and colors dipath-family instances in the graphio
// text format (see internal/graphio).
//
// Usage:
//
//	rwa analyze  [file]          # load, internal cycles, UPP, conflict stats
//	rwa color    [file]          # wavelength assignment (strongest theorem)
//	rwa verify   [file]          # re-check a coloring given as a last line "colors c0 c1 ..."
//	rwa gen <instance> [args]    # emit a paper instance (fig1 k | fig3 | gadget k | havet)
//	rwa dot      [file]          # Graphviz export
//
// Files default to stdin.
package main

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"text/tabwriter"

	"wavedag/internal/conflict"
	"wavedag/internal/core"
	"wavedag/internal/cycles"
	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/gen"
	"wavedag/internal/graphio"
	"wavedag/internal/load"
	"wavedag/internal/upp"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "analyze":
		err = withInstance(os.Args[2:], analyze)
	case "color":
		err = withInstance(os.Args[2:], colorCmd)
	case "gen":
		err = genCmd(os.Args[2:])
	case "dot":
		err = withInstance(os.Args[2:], func(g *digraph.Digraph, fam dipath.Family) error {
			_, e := io.WriteString(os.Stdout, g.DOT("instance"))
			return e
		})
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rwa:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: rwa <analyze|color|gen|dot> [args]
  analyze [file]        instance statistics (load, cycles, UPP, conflicts)
  color   [file]        wavelength assignment via the strongest theorem
  gen fig1 <k>          Figure 1 staircase (π=2, w=k)
  gen fig3              Figure 3 instance (π=2, w=3)
  gen gadget <k>        Theorem 2 gadget (conflict C_{2k+1})
  gen havet [h]         Figure 9 Havet instance, family replicated h times
  dot     [file]        Graphviz export`)
}

func withInstance(args []string, fn func(*digraph.Digraph, dipath.Family) error) error {
	in := os.Stdin
	if len(args) > 0 && args[0] != "-" {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	g, fam, err := graphio.Read(in)
	if err != nil {
		return err
	}
	return fn(g, fam)
}

func analyze(g *digraph.Digraph, fam dipath.Family) error {
	if err := fam.Validate(g); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	defer tw.Flush()
	fmt.Fprintf(tw, "vertices\t%d\n", g.NumVertices())
	fmt.Fprintf(tw, "arcs\t%d\n", g.NumArcs())
	fmt.Fprintf(tw, "dipaths\t%d\n", len(fam))
	prof := load.Summarize(g, fam)
	fmt.Fprintf(tw, "load π\t%d\n", prof.Pi)
	fmt.Fprintf(tw, "mean load (used arcs)\t%.2f\n", prof.Mean)
	nCycles := cycles.IndependentCycleCount(g)
	fmt.Fprintf(tw, "internal cycles\t%d\n", nCycles)
	isUPP, wu, wv, err := upp.IsUPP(g)
	if err != nil {
		return err
	}
	if isUPP {
		fmt.Fprintf(tw, "UPP\tyes\n")
	} else {
		fmt.Fprintf(tw, "UPP\tno (two dipaths %d->%d)\n", wu, wv)
	}
	cg := conflict.FromFamily(g, fam)
	fmt.Fprintf(tw, "conflict edges\t%d\n", cg.NumEdges())
	if cg.N() <= 64 {
		fmt.Fprintf(tw, "conflict ω (exact)\t%d\n", cg.CliqueNumber())
		fmt.Fprintf(tw, "conflict χ (exact)\t%d\n", cg.ChromaticNumber())
	} else {
		fmt.Fprintf(tw, "conflict χ (DSATUR ub)\t%d\n", conflict.CountColors(cg.DSATURColoring()))
	}
	switch {
	case nCycles == 0:
		fmt.Fprintf(tw, "guarantee\tw = π (Theorem 1)\n")
	case nCycles == 1 && isUPP:
		fmt.Fprintf(tw, "guarantee\tw ≤ ⌈4π/3⌉ (Theorem 6)\n")
	default:
		fmt.Fprintf(tw, "guarantee\tnone (internal cycles; w/π unbounded in general)\n")
	}
	return nil
}

func colorCmd(g *digraph.Digraph, fam dipath.Family) error {
	res, method, err := core.ColorDAG(g, fam)
	if err != nil {
		return err
	}
	if err := core.Verify(g, fam, res); err != nil {
		return fmt.Errorf("internal error, invalid coloring produced: %w", err)
	}
	fmt.Printf("method %s\nπ %d\nwavelengths %d\n", method, res.Pi, res.NumColors)
	for i, c := range res.Colors {
		fmt.Printf("assign %d %d\n", i, c)
	}
	return nil
}

func genCmd(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("gen: missing instance name")
	}
	intArg := func(idx, dflt int) (int, error) {
		if len(args) <= idx {
			return dflt, nil
		}
		return strconv.Atoi(args[idx])
	}
	var g *digraph.Digraph
	var fam dipath.Family
	var err error
	switch args[0] {
	case "fig1":
		k, e := intArg(1, 4)
		if e != nil {
			return e
		}
		g, fam, err = gen.Fig1Staircase(k)
	case "fig3":
		g, fam = gen.Fig3()
	case "gadget":
		k, e := intArg(1, 3)
		if e != nil {
			return e
		}
		g, fam, err = gen.InternalCycleGadget(k)
	case "havet":
		h, e := intArg(1, 1)
		if e != nil {
			return e
		}
		g, fam = gen.Havet()
		fam = fam.Replicate(h)
	default:
		return fmt.Errorf("gen: unknown instance %q", args[0])
	}
	if err != nil {
		return err
	}
	return graphio.Write(os.Stdout, g, fam)
}
