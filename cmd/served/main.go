// served is the long-running HTTP/JSON front-end over a ShardedEngine:
// the serving process the library becomes. Writes go through the
// internal/serve coalescer — batched under a latency cap, deadline-
// aware, load-shedding with Retry-After hints, transient rejections
// retried server-side — and reads answer lock-free from the engine's
// published snapshots on any connection goroutine. SIGINT/SIGTERM
// triggers the graceful drain: HTTP intake stops, every in-flight
// submission is answered, then the engine closes.
//
// The topology is synthetic (the same generator the benchmarks use),
// making the binary self-contained:
//
//	go run ./cmd/served -addr :8437 -components 4 -budget 8
//
//	curl -s localhost:8437/v1/add -d '{"src":0,"dst":5}'
//	curl -s localhost:8437/v1/stats | jq .server
//
// Endpoints (request/response bodies are JSON):
//
//	POST /v1/add         {"src":v,"dst":v}    -> {"shard":s,"id":i}
//	POST /v1/remove      {"shard":s,"id":i}   -> {"done":true}
//	POST /v1/reroute     {"shard":s,"id":i}   -> {"changed":b}
//	POST /v1/fail-arc    {"arc":a}            -> storm report
//	POST /v1/restore-arc {"arc":a}            -> {"revived":n}
//	GET  /v1/stats                            -> server+engine counters
//	GET  /healthz                             -> 200 ok / 503 draining
//
// Overload maps to HTTP verbatim: shed verdicts are 503 with a
// Retry-After header, budget rejections 429, expired deadlines 504,
// unknown sessions 404, unroutable demands 422.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"wavedag/internal/digraph"
	"wavedag/internal/gen"
	"wavedag/internal/route"
	"wavedag/internal/serve"
	"wavedag/internal/wdm"
)

func main() {
	var (
		addr       = flag.String("addr", ":8437", "listen address")
		components = flag.Int("components", 4, "synthetic topology: number of components")
		internal   = flag.Int("internal", 24, "synthetic topology: internal vertices per component")
		seed       = flag.Int64("seed", 1, "synthetic topology seed")
		budget     = flag.Int("budget", 0, "engine wavelength budget (0 = unlimited)")
		maxBatch   = flag.Int("max-batch", 256, "coalescer max batch size")
		latencyCap = flag.Duration("latency-cap", 500*time.Microsecond, "coalescer latency cap")
		queueCap   = flag.Int("queue-cap", 4096, "submission queue capacity")
		shedDepth  = flag.Int("shed-depth", 0, "queue depth to start shedding at (0 = queue capacity)")
		blocking   = flag.Bool("blocking", false, "block on a full queue instead of shedding")
		retries    = flag.Int("retries", 3, "server-side attempts for transient rejections (1 = off)")
		reqTimeout = flag.Duration("request-timeout", 2*time.Second, "default per-request deadline")
		drainMax   = flag.Duration("drain-timeout", 15*time.Second, "graceful drain budget on shutdown")
	)
	flag.Parse()

	parts := make([]gen.Instance, *components)
	for i := range parts {
		g, err := gen.RandomNoInternalCycleDAG(*internal, 3, 3, 0.25, *seed+int64(i))
		if err != nil {
			log.Fatal(err)
		}
		parts[i] = gen.Instance{G: g}
	}
	g, _ := gen.DisjointUnion(parts...)
	net := &wdm.Network{Topology: g}
	var engOpts []wdm.ShardedOption
	if *budget > 0 {
		engOpts = append(engOpts, wdm.WithEngineWavelengthBudget(*budget))
	}
	eng, err := net.NewShardedEngine(engOpts...)
	if err != nil {
		log.Fatal(err)
	}
	srvOpts := []serve.Option{
		serve.WithMaxBatch(*maxBatch),
		serve.WithLatencyCap(*latencyCap),
		serve.WithQueueCapacity(*queueCap),
	}
	if *shedDepth > 0 {
		srvOpts = append(srvOpts, serve.WithShedDepth(*shedDepth))
	}
	if *blocking {
		srvOpts = append(srvOpts, serve.WithBlockingBackpressure())
	}
	if *retries > 1 {
		srvOpts = append(srvOpts, serve.WithServerRetry(*retries, 200*time.Microsecond, 10*time.Millisecond))
	}
	srv, err := serve.New(eng, srvOpts...)
	if err != nil {
		log.Fatal(err)
	}

	// Plain-path routing with explicit method checks: the module pins
	// go 1.21, where ServeMux method patterns don't exist yet.
	h := &handler{srv: srv, timeout: *reqTimeout}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/add", post(h.add))
	mux.HandleFunc("/v1/remove", post(h.remove))
	mux.HandleFunc("/v1/reroute", post(h.reroute))
	mux.HandleFunc("/v1/fail-arc", post(h.failArc))
	mux.HandleFunc("/v1/restore-arc", post(h.restoreArc))
	mux.HandleFunc("/v1/stats", get(h.stats))
	mux.HandleFunc("/healthz", get(h.healthz))

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	go func() {
		log.Printf("served: listening on %s (%d vertices, %d arcs, budget %d)",
			*addr, g.NumVertices(), g.NumArcs(), *budget)
		if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("served: draining (budget %v)", *drainMax)
	ctx, cancel := context.WithTimeout(context.Background(), *drainMax)
	defer cancel()
	// Stop HTTP intake first so no new submissions arrive mid-drain,
	// then flush the coalescer and close the engine.
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("served: http shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("served: engine drain: %v", err)
	}
	st := srv.Stats()
	log.Printf("served: drained clean=%v submitted=%d acked=%d failed=%d shed=%d expired=%d",
		st.Drained, st.Submitted, st.Acked, st.Failed, st.Shed, st.Expired)
}

type handler struct {
	srv     *serve.Server
	timeout time.Duration
}

func post(h http.HandlerFunc) http.HandlerFunc { return methodOnly(http.MethodPost, h) }
func get(h http.HandlerFunc) http.HandlerFunc  { return methodOnly(http.MethodGet, h) }

func methodOnly(method string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			w.Header().Set("Allow", method)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		h(w, r)
	}
}

type idBody struct {
	Shard int32         `json:"shard"`
	ID    wdm.SessionID `json:"id"`
}

// ctx derives the request context: the client can tighten the default
// deadline with an X-Deadline-Ms header; the deadline travels with the
// submission into the coalescer.
func (h *handler) ctx(r *http.Request) (context.Context, context.CancelFunc) {
	d := h.timeout
	if ms := r.Header.Get("X-Deadline-Ms"); ms != "" {
		if v, err := strconv.Atoi(ms); err == nil && v > 0 {
			d = time.Duration(v) * time.Millisecond
		}
	}
	return context.WithTimeout(r.Context(), d)
}

func decode(w http.ResponseWriter, r *http.Request, into any) bool {
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": "bad request body: " + err.Error()})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// writeOutcome maps a definitive serving outcome onto HTTP.
func writeOutcome(w http.ResponseWriter, resp serve.Response, ok func() any) {
	switch {
	case resp.Err == nil:
		writeJSON(w, http.StatusOK, ok())
	case resp.Shed():
		secs := int(math.Ceil(resp.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		writeJSON(w, http.StatusServiceUnavailable, errBody(resp, "overloaded, retry later"))
	case errors.Is(resp.Err, serve.ErrServerClosed):
		writeJSON(w, http.StatusServiceUnavailable, errBody(resp, "shutting down"))
	case resp.Expired():
		writeJSON(w, http.StatusGatewayTimeout, errBody(resp, "deadline expired"))
	case errors.Is(resp.Err, wdm.ErrBudgetExceeded):
		writeJSON(w, http.StatusTooManyRequests, errBody(resp, "wavelength budget exhausted"))
	case errors.Is(resp.Err, wdm.ErrUnknownSession):
		writeJSON(w, http.StatusNotFound, errBody(resp, "unknown session"))
	case isNoRoute(resp.Err):
		writeJSON(w, http.StatusUnprocessableEntity, errBody(resp, "no route"))
	default:
		writeJSON(w, http.StatusInternalServerError, errBody(resp, "internal error"))
	}
}

func isNoRoute(err error) bool {
	var nr route.ErrNoRoute
	return errors.As(err, &nr)
}

func errBody(resp serve.Response, kind string) map[string]any {
	return map[string]any{"error": resp.Err.Error(), "kind": kind, "attempts": resp.Attempts}
}

func (h *handler) add(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Src digraph.Vertex `json:"src"`
		Dst digraph.Vertex `json:"dst"`
	}
	if !decode(w, r, &body) {
		return
	}
	ctx, cancel := h.ctx(r)
	defer cancel()
	resp := h.srv.Submit(ctx, serve.AddRequest(body.Src, body.Dst))
	writeOutcome(w, resp, func() any {
		return idBody{Shard: resp.ID.Shard, ID: resp.ID.ID}
	})
}

func (h *handler) remove(w http.ResponseWriter, r *http.Request) {
	var body idBody
	if !decode(w, r, &body) {
		return
	}
	ctx, cancel := h.ctx(r)
	defer cancel()
	resp := h.srv.Submit(ctx, serve.RemoveRequest(wdm.ShardedID{Shard: body.Shard, ID: body.ID}))
	writeOutcome(w, resp, func() any { return map[string]any{"done": true} })
}

func (h *handler) reroute(w http.ResponseWriter, r *http.Request) {
	var body idBody
	if !decode(w, r, &body) {
		return
	}
	ctx, cancel := h.ctx(r)
	defer cancel()
	resp := h.srv.Submit(ctx, serve.RerouteRequest(wdm.ShardedID{Shard: body.Shard, ID: body.ID}))
	writeOutcome(w, resp, func() any { return map[string]any{"changed": resp.Changed} })
}

func (h *handler) failArc(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Arc digraph.ArcID `json:"arc"`
	}
	if !decode(w, r, &body) {
		return
	}
	ctx, cancel := h.ctx(r)
	defer cancel()
	resp := h.srv.Submit(ctx, serve.FailArcRequest(body.Arc))
	writeOutcome(w, resp, func() any {
		return map[string]any{
			"affected": resp.Storm.Affected,
			"restored": resp.Storm.Restored,
			"parked":   resp.Storm.Parked,
			"retries":  resp.Storm.Retries,
		}
	})
}

func (h *handler) restoreArc(w http.ResponseWriter, r *http.Request) {
	var body struct {
		Arc digraph.ArcID `json:"arc"`
	}
	if !decode(w, r, &body) {
		return
	}
	ctx, cancel := h.ctx(r)
	defer cancel()
	resp := h.srv.Submit(ctx, serve.RestoreArcRequest(body.Arc))
	writeOutcome(w, resp, func() any { return map[string]any{"revived": resp.Revived} })
}

// stats answers entirely from the lock-free query plane plus the
// server's atomic counters — it never touches the engine mutex or the
// submission queue, so it stays responsive under overload and after
// drain.
func (h *handler) stats(w http.ResponseWriter, r *http.Request) {
	eng := h.srv.Engine()
	writeJSON(w, http.StatusOK, map[string]any{
		"server":      h.srv.Stats(),
		"engine":      eng.Stats(),
		"live":        eng.Len(),
		"dark":        eng.DarkLive(),
		"pi":          eng.Pi(),
		"failed_arcs": eng.NumFailedArcs(),
		"queue_depth": h.srv.QueueDepth(),
	})
}

func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	if h.srv.Stats().Drained {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}
