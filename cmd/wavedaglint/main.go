// Command wavedaglint runs the repository's contract analyzers
// (lockfree, publish, poolpair, errwrap, registry — see internal/lint)
// over the packages matching the given patterns (default ./...).
// Diagnostics print as file:line:col: [contract] message; the exit
// status is 1 when findings exist, 2 when loading fails, 0 when clean.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"wavedag/internal/lint"
)

func main() {
	dir := flag.String("C", ".", "directory to run `go list` from")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: wavedaglint [-C dir] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	c, err := lint.Load(*dir, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := lint.Run(c, lint.Analyzers())
	cwd, _ := os.Getwd()
	for _, d := range diags {
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && len(rel) < len(d.Pos.Filename) {
				d.Pos.Filename = rel
			}
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "wavedaglint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
