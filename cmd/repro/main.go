// Command repro regenerates every experiment of the reproduction (E1–E13
// in DESIGN.md), printing one table per paper figure/theorem with the
// paper-predicted value next to the measured one.
//
// Usage:
//
//	repro            # run everything
//	repro -run e8    # run one experiment (e1..e13)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"
	"time"

	"wavedag/internal/check"
	"wavedag/internal/conflict"
	"wavedag/internal/core"
	"wavedag/internal/cycles"
	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/gen"
	"wavedag/internal/groom"
	"wavedag/internal/load"
	"wavedag/internal/upp"
)

func main() {
	run := flag.String("run", "all", "experiment to run (e1..e13 or all)")
	flag.Parse()
	experiments := []struct {
		id   string
		name string
		fn   func(*tabwriter.Writer) error
	}{
		{"e1", "Figure 1 — pathological staircase: π = 2, w = k", e1},
		{"e2", "Figure 3 — one internal cycle, C5 conflict graph: π = 2, w = 3", e2},
		{"e3", "Theorem 1 — w = π on random internal-cycle-free DAGs", e3},
		{"e4", "Theorem 2 / Figure 5 — gadget: π = 2, w = 3, conflict C_{2k+1}", e4},
		{"e5", "Property 3 — π = ω(conflict graph) on random UPP-DAGs", e5},
		{"e6", "Corollary 5 — no K_{2,3} in UPP conflict graphs", e6},
		{"e7", "Theorem 6 — w ≤ ⌈4π/3⌉ on one-cycle UPP-DAGs", e7},
		{"e8", "Theorem 7 / Figure 9 — Havet replicas reach ⌈4π/3⌉", e8},
		{"e9", "§4 — C5 gadget replicas: w = ⌈5h/2⌉, ratio 5/4", e9},
		{"e10", "§4 remark — C independent internal cycles", e10},
		{"e11", "§1 — rooted trees: w = π", e11},
		{"e12", "Methodology — coloring algorithm shoot-out", e12},
		{"e13", "Concluding remarks — max requests under a wavelength budget", e13},
	}
	any := false
	for _, e := range experiments {
		if *run != "all" && !strings.EqualFold(*run, e.id) {
			continue
		}
		any = true
		fmt.Printf("== %s: %s\n", strings.ToUpper(e.id), e.name)
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		if err := e.fn(tw); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		tw.Flush()
		fmt.Println()
	}
	if !any {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *run)
		os.Exit(2)
	}
}

func e1(tw *tabwriter.Writer) error {
	fmt.Fprintln(tw, "k\tπ (paper: 2)\tw measured\tw paper\tconflict graph")
	for _, k := range []int{2, 3, 4, 5, 6, 8, 10, 12} {
		g, fam, err := gen.Fig1Staircase(k)
		if err != nil {
			return err
		}
		pi := load.Pi(g, fam)
		cg := conflict.FromFamily(g, fam)
		w := cg.ChromaticNumber()
		shape := "K_k"
		if !cg.IsComplete() {
			shape = "NOT complete (!)"
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%s\n", k, pi, w, k, shape)
		if pi != 2 || w != k {
			return fmt.Errorf("E1 mismatch at k=%d: π=%d w=%d", k, pi, w)
		}
	}
	return nil
}

func e2(tw *tabwriter.Writer) error {
	g, fam := gen.Fig3()
	pi := load.Pi(g, fam)
	cg := conflict.FromFamily(g, fam)
	w := cg.ChromaticNumber()
	shape := "C5"
	if !cg.IsCycle() || cg.N() != 5 {
		shape = "NOT C5 (!)"
	}
	fmt.Fprintln(tw, "quantity\tmeasured\tpaper")
	fmt.Fprintf(tw, "π\t%d\t2\n", pi)
	fmt.Fprintf(tw, "w\t%d\t3\n", w)
	fmt.Fprintf(tw, "conflict graph\t%s\tC5\n", shape)
	fmt.Fprintf(tw, "internal cycles\t%d\t1\n", cycles.IndependentCycleCount(g))
	if pi != 2 || w != 3 {
		return fmt.Errorf("E2 mismatch")
	}
	return nil
}

func e3(tw *tabwriter.Writer) error {
	fmt.Fprintln(tw, "internal\tpaths\ttrials\tw=π always\tmax π\tavg time/instance")
	for _, cfg := range []struct{ nInt, paths int }{
		{8, 15}, {15, 40}, {30, 100}, {60, 250}, {120, 600},
	} {
		trials := 20
		maxPi := 0
		start := time.Now()
		for s := 0; s < trials; s++ {
			g, err := gen.RandomNoInternalCycleDAG(cfg.nInt, 3, 3, 0.2, int64(s)*31+int64(cfg.nInt))
			if err != nil {
				return err
			}
			fam := gen.RandomWalkFamily(g, cfg.paths, 8, int64(s)+77)
			res, err := core.ColorNoInternalCycle(g, fam)
			if err != nil {
				return err
			}
			if err := check.WavelengthsWithinLoad(g, fam, res.Colors); err != nil {
				return fmt.Errorf("E3: %w", err)
			}
			if res.Pi > maxPi {
				maxPi = res.Pi
			}
		}
		avg := time.Since(start) / time.Duration(trials)
		fmt.Fprintf(tw, "%d\t%d\t%d\tyes\t%d\t%v\n", cfg.nInt, cfg.paths, trials, maxPi, avg.Round(time.Microsecond))
	}
	return nil
}

func e4(tw *tabwriter.Writer) error {
	fmt.Fprintln(tw, "k\t|P| (2k+1)\tπ (paper: 2)\tw (paper: 3)\tconflict cycle len")
	for _, k := range []int{2, 3, 4, 6, 8, 12} {
		g, fam, err := gen.InternalCycleGadget(k)
		if err != nil {
			return err
		}
		pi := load.Pi(g, fam)
		cg := conflict.FromFamily(g, fam)
		w := cg.ChromaticNumber()
		cyc := "-"
		if cg.IsCycle() {
			cyc = fmt.Sprint(cg.N())
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%s\n", k, len(fam), pi, w, cyc)
		if pi != 2 || w != 3 || !cg.IsCycle() {
			return fmt.Errorf("E4 mismatch at k=%d", k)
		}
	}
	return nil
}

func e5(tw *tabwriter.Writer) error {
	fmt.Fprintln(tw, "n\tarcs tried\ttrials\tπ = ω always\tmax π")
	for _, cfg := range []struct{ n, attempts int }{{10, 30}, {15, 60}, {20, 100}, {30, 200}} {
		trials := 15
		maxPi := 0
		for s := 0; s < trials; s++ {
			g := gen.RandomUPPDAG(cfg.n, cfg.attempts, int64(s)*13+int64(cfg.n))
			fam, err := gen.AllSourceSinkFamily(g)
			if err != nil {
				return err
			}
			fam = append(fam, gen.RandomWalkFamily(g, 20, 6, int64(s)+5)...)
			pi := load.Pi(g, fam)
			om := conflict.FromFamily(g, fam).CliqueNumber()
			if len(fam) > 0 && pi != om {
				return fmt.Errorf("E5: π=%d ω=%d at n=%d seed=%d", pi, om, cfg.n, s)
			}
			if pi > maxPi {
				maxPi = pi
			}
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\tyes\t%d\n", cfg.n, cfg.attempts, trials, maxPi)
	}
	return nil
}

func e6(tw *tabwriter.Writer) error {
	fmt.Fprintln(tw, "n\ttrials\tK_{2,3}-free always")
	for _, n := range []int{10, 15, 20, 30} {
		trials := 15
		for s := 0; s < trials; s++ {
			g := gen.RandomUPPDAG(n, n*5, int64(s)*17+int64(n))
			fam, err := gen.AllSourceSinkFamily(g)
			if err != nil {
				return err
			}
			cg := conflict.FromFamily(g, fam)
			if _, _, found := cg.FindK23(); found {
				return fmt.Errorf("E6: K_{2,3} found at n=%d seed=%d", n, s)
			}
		}
		fmt.Fprintf(tw, "%d\t%d\tyes\n", n, trials)
	}
	return nil
}

func e7(tw *tabwriter.Writer) error {
	fmt.Fprintln(tw, "instance\t|P|\tπ\tw (theorem 6)\t⌈4π/3⌉\twithin bound")
	type inst struct {
		name string
		g    func() (interface{}, dipath.Family)
	}
	gh, fh := gen.Havet()
	workloads := []struct {
		name string
		fam  dipath.Family
	}{
		{"havet base", fh},
		{"havet x3", fh.Replicate(3)},
		{"havet mixed", append(fh.Clone(), fh[0], fh[2], fh[5])},
	}
	for _, wl := range workloads {
		res, err := core.ColorOneInternalCycleUPP(gh, wl.fam)
		if err != nil {
			return err
		}
		bound := (4*res.Pi + 2) / 3
		if err := check.WavelengthsWithinBound(gh, wl.fam, res.Colors, 4, 3); err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\tyes\n", wl.name, len(wl.fam), res.Pi, res.NumColors, bound)
	}
	for k := 2; k <= 5; k++ {
		g, _, err := gen.InternalCycleGadget(k)
		if err != nil {
			return err
		}
		fam, err := gen.AllSourceSinkFamily(g)
		if err != nil {
			return err
		}
		fam = fam.Replicate(2)
		res, err := core.ColorOneInternalCycleUPP(g, fam)
		if err != nil {
			return err
		}
		bound := (4*res.Pi + 2) / 3
		if err := check.WavelengthsWithinBound(g, fam, res.Colors, 4, 3); err != nil {
			return err
		}
		fmt.Fprintf(tw, "gadget k=%d all-pairs x2\t%d\t%d\t%d\t%d\tyes\n", k, len(fam), res.Pi, res.NumColors, bound)
	}
	return nil
}

func e8(tw *tabwriter.Writer) error {
	g, fam := gen.Havet()
	fmt.Fprintln(tw, "h\tπ = 2h\tw measured\t⌈8h/3⌉ (paper)\tindependence LB\tratio w/π")
	for _, h := range []int{1, 2, 3, 4, 5, 6, 8, 10, 12} {
		rep := fam.Replicate(h)
		res, err := core.ColorOneInternalCycleUPP(g, rep)
		if err != nil {
			return err
		}
		lb := check.LowerBoundByIndependence(g, rep)
		want := (8*h + 2) / 3
		if res.NumColors != want || lb != want {
			return fmt.Errorf("E8: h=%d w=%d lb=%d want=%d", h, res.NumColors, lb, want)
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%.3f\n", h, res.Pi, res.NumColors, want, lb, float64(res.NumColors)/float64(res.Pi))
	}
	return nil
}

func e9(tw *tabwriter.Writer) error {
	g, fam, err := gen.InternalCycleGadget(2)
	if err != nil {
		return err
	}
	fmt.Fprintln(tw, "h\tπ = 2h\tχ exact\t⌈5h/2⌉ (paper)\tratio χ/π")
	for _, h := range []int{1, 2, 3, 4} {
		rep := fam.Replicate(h)
		pi := load.Pi(g, rep)
		cg := conflict.FromFamily(g, rep)
		chi := cg.ChromaticNumber()
		want := (5*h + 1) / 2
		if chi != want || pi != 2*h {
			return fmt.Errorf("E9: h=%d χ=%d want=%d", h, chi, want)
		}
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.3f\n", h, pi, chi, want, float64(chi)/float64(pi))
	}
	return nil
}

func e10(tw *tabwriter.Writer) error {
	fmt.Fprintln(tw, "C (cycles)\t|P|\tπ\tw (DSATUR)\tw/π\t⌈(4/3)^C·π⌉ bound")
	gh, fh := gen.Havet()
	for c := 1; c <= 4; c++ {
		parts := make([]gen.Instance, c)
		for i := range parts {
			parts[i] = gen.Instance{G: gh, F: fh}
		}
		g, fam := gen.DisjointUnion(parts...)
		if got := cycles.IndependentCycleCount(g); got != c {
			return fmt.Errorf("E10: expected %d cycles, got %d", c, got)
		}
		pi := load.Pi(g, fam)
		cg := conflict.FromFamily(g, fam)
		w := cg.ChromaticNumber()
		bound := pi
		num, den := 1, 1
		for i := 0; i < c; i++ {
			num *= 4
			den *= 3
		}
		bound = (pi*num + den - 1) / den
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.3f\t%d\n", c, len(fam), pi, w, float64(w)/float64(pi), bound)
	}
	fmt.Fprintln(tw, "# disjoint unions do not compound the ratio; the paper conjectures")
	fmt.Fprintln(tw, "# unbounded w/π for many-cycle UPP-DAGs — still open, not contradicted here.")
	return nil
}

func e11(tw *tabwriter.Writer) error {
	fmt.Fprintln(tw, "n\tworkload\ttrials\tw = π always\tmax π")
	for _, n := range []int{10, 30, 80, 200} {
		trials := 12
		maxPi := 0
		for s := 0; s < trials; s++ {
			g := gen.RandomArborescence(n, int64(s)*7+int64(n))
			r, err := upp.NewRouter(g)
			if err != nil {
				return err
			}
			fam := r.AllPairsFamily()
			if len(fam) > 600 {
				fam = fam[:600]
			}
			res, err := core.ColorNoInternalCycle(g, fam)
			if err != nil {
				return err
			}
			if err := check.WavelengthsWithinLoad(g, fam, res.Colors); err != nil {
				return fmt.Errorf("E11: %w", err)
			}
			if res.Pi > maxPi {
				maxPi = res.Pi
			}
		}
		fmt.Fprintf(tw, "%d\tall-pairs\t%d\tyes\t%d\n", n, trials, maxPi)
	}
	return nil
}

func e12(tw *tabwriter.Writer) error {
	fmt.Fprintln(tw, "instance\tπ\ttheorem1\tgreedy\tdsatur\texact χ\tt(theorem1)\tt(exact)")
	for _, cfg := range []struct {
		nInt, paths int
		seed        int64
	}{
		{10, 20, 1}, {20, 50, 2}, {40, 120, 3},
	} {
		g, err := gen.RandomNoInternalCycleDAG(cfg.nInt, 3, 3, 0.25, cfg.seed)
		if err != nil {
			return err
		}
		fam := gen.RandomWalkFamily(g, cfg.paths, 7, cfg.seed+9)
		pi := load.Pi(g, fam)
		t0 := time.Now()
		res, err := core.ColorNoInternalCycle(g, fam)
		if err != nil {
			return err
		}
		tTheo := time.Since(t0)
		cg := conflict.FromFamily(g, fam)
		greedy := conflict.CountColors(cg.GreedyColoring(nil))
		dsat := conflict.CountColors(cg.DSATURColoring())
		t0 = time.Now()
		chi := cg.ChromaticNumber()
		tExact := time.Since(t0)
		fmt.Fprintf(tw, "n=%d |P|=%d\t%d\t%d\t%d\t%d\t%d\t%v\t%v\n",
			cfg.nInt, len(fam), pi, res.NumColors, greedy, dsat, chi,
			tTheo.Round(time.Microsecond), tExact.Round(time.Microsecond))
		if res.NumColors != chi && pi > 0 {
			return fmt.Errorf("E12: theorem1 %d != χ %d", res.NumColors, chi)
		}
	}
	return nil
}

// e13 runs the concluding-remarks problem: select the maximum number of
// requests satisfiable with a given wavelength budget. On internal-cycle-
// free DAGs Theorem 1 reduces the check to "load ≤ budget", so exact
// selection is a capacity problem; on path graphs the greedy is optimal.
func e13(tw *tabwriter.Writer) error {
	fmt.Fprintln(tw, "instance\t|P|\tbudget w\tgreedy\texact\tpath-optimal")
	// Path graph: intervals, greedy provably optimal.
	pg := digraph.New(12)
	for i := 0; i < 11; i++ {
		pg.MustAddArc(digraph.Vertex(i), digraph.Vertex(i+1))
	}
	pfam, err := gen.SubpathFamily(pg, 18, 71)
	if err != nil {
		return err
	}
	for _, w := range []int{1, 2, 4} {
		onPath, err := groom.MaxOnPath(pg, pfam, w)
		if err != nil {
			return err
		}
		greedy := groom.Greedy(pg, pfam, w)
		exact, complete := groom.Exact(pg, pfam, w, 8_000_000)
		if complete && len(onPath) != len(exact) {
			return fmt.Errorf("E13: path-greedy %d != exact %d at w=%d", len(onPath), len(exact), w)
		}
		mark := fmt.Sprint(len(exact))
		if !complete {
			mark += "*"
		}
		fmt.Fprintf(tw, "path n=12\t%d\t%d\t%d\t%s\t%d\n", len(pfam), w, len(greedy), mark, len(onPath))
	}
	// General internal-cycle-free DAG.
	g, err := gen.RandomNoInternalCycleDAG(15, 3, 3, 0.25, 72)
	if err != nil {
		return err
	}
	fam := gen.RandomWalkFamily(g, 24, 6, 73)
	for _, w := range []int{1, 2, 4} {
		greedy := groom.Greedy(g, fam, w)
		exact, complete := groom.Exact(g, fam, w, 2_000_000)
		mark := fmt.Sprint(len(exact))
		if !complete {
			mark += "*"
		}
		if ok, err := groom.Feasible(g, fam, exact, w); err != nil || !ok {
			return fmt.Errorf("E13: exact selection infeasible at w=%d", w)
		}
		fmt.Fprintf(tw, "dag n=21\t%d\t%d\t%d\t%s\t-\n", len(fam), w, len(greedy), mark)
	}
	return nil
}
