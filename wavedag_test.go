package wavedag_test

import (
	"errors"
	"testing"

	"wavedag"
)

func TestQuickstartFlow(t *testing.T) {
	g := wavedag.NewGraph(4)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 2)
	g.MustAddArc(2, 3)
	fam := wavedag.Family{
		wavedag.MustPath(g, 0, 1, 2),
		wavedag.MustPath(g, 1, 2, 3),
	}
	if pi := wavedag.Load(g, fam); pi != 2 {
		t.Fatalf("π = %d, want 2", pi)
	}
	res, method, err := wavedag.Color(g, fam)
	if err != nil {
		t.Fatal(err)
	}
	if method != wavedag.MethodTheorem1 {
		t.Fatalf("method = %s", method)
	}
	if res.NumColors != 2 {
		t.Fatalf("colors = %d", res.NumColors)
	}
	if err := wavedag.VerifyColoring(g, fam, res); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeConstructions(t *testing.T) {
	g, fam, err := wavedag.PathologicalStaircase(4)
	if err != nil {
		t.Fatal(err)
	}
	if wavedag.Load(g, fam) != 2 {
		t.Fatal("staircase load wrong")
	}
	if !wavedag.HasInternalCycle(g) {
		t.Fatal("staircase must have internal cycles (w > π)")
	}

	g3, fam3 := wavedag.Figure3Instance()
	if wavedag.InternalCycleCount(g3) != 1 || len(fam3) != 5 {
		t.Fatal("Figure 3 instance wrong")
	}

	gH, famH := wavedag.HavetInstance()
	if ok, _, _, _ := wavedag.IsUPP(gH); !ok {
		t.Fatal("Havet graph must be UPP")
	}
	res, err := wavedag.ColorOneInternalCycleUPP(gH, famH)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumColors != 3 {
		t.Fatalf("Havet base coloring = %d colors, want 3", res.NumColors)
	}

	gG, famG, err := wavedag.InternalCycleGadget(3)
	if err != nil {
		t.Fatal(err)
	}
	cg := wavedag.NewConflictGraph(gG, famG)
	if cg.ChromaticNumber() != 3 {
		t.Fatal("gadget χ must be 3")
	}
}

func TestFacadeTheorem1Error(t *testing.T) {
	g, fam := wavedag.Figure3Instance()
	if _, err := wavedag.ColorNoInternalCycle(g, fam); err == nil {
		t.Fatal("internal-cycle graph accepted by Theorem 1")
	}
}

func TestFacadeArcLoads(t *testing.T) {
	g := wavedag.NewGraph(3)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 2)
	fam := wavedag.Family{wavedag.MustPath(g, 0, 1, 2)}
	loads := wavedag.ArcLoads(g, fam)
	if len(loads) != 2 || loads[0] != 1 || loads[1] != 1 {
		t.Fatalf("loads = %v", loads)
	}
}

// TestSessionFacade drives the dynamic provisioning engine through the
// public API: open a session, churn requests, verify, snapshot.
func TestSessionFacade(t *testing.T) {
	g := wavedag.NewGraph(4)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 2)
	g.MustAddArc(2, 3)
	net := &wavedag.Network{Topology: g, Wavelengths: 8}
	s, err := net.NewSession(wavedag.WithRoutingPolicy(wavedag.RouteShortest), wavedag.WithSlack(1))
	if err != nil {
		t.Fatal(err)
	}
	id1, err := s.Add(wavedag.Request{Src: 0, Dst: 3})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Add(wavedag.Request{Src: 1, Dst: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Pi() != 2 {
		t.Fatalf("π = %d, want 2", s.Pi())
	}
	if lambda, err := s.NumLambda(); err != nil || lambda != 2 {
		t.Fatalf("λ = %d (%v), want 2", lambda, err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(id1); err != nil {
		t.Fatal(err)
	}
	if lambda, err := s.NumLambda(); err != nil || lambda != 1 {
		t.Fatalf("λ = %d (%v) after removal, want 1", lambda, err)
	}
	prov, err := s.Provisioning()
	if err != nil {
		t.Fatal(err)
	}
	if len(prov.Paths) != 1 || !prov.Feasible {
		t.Fatalf("snapshot: %d paths, feasible=%v", len(prov.Paths), prov.Feasible)
	}
	if w, err := s.Wavelength(id2); err != nil || w < 0 {
		t.Fatalf("wavelength of live id: %d (%v)", w, err)
	}
	// The incremental layers are also usable standalone.
	dyn := wavedag.NewDynamicConflictGraph(g)
	p := wavedag.MustPath(g, 0, 1, 2)
	slot, err := dyn.AddPath(p)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.LowerBound() != 1 || dyn.NumLive() != 1 {
		t.Fatalf("dyn: lb=%d live=%d", dyn.LowerBound(), dyn.NumLive())
	}
	if err := dyn.RemovePath(slot); err != nil {
		t.Fatal(err)
	}
	ic := wavedag.NewIncrementalColorer(g, 0)
	if _, err := ic.Add(p); err != nil {
		t.Fatal(err)
	}
	if ic.NumLambda() != 1 {
		t.Fatalf("colorer λ = %d", ic.NumLambda())
	}
}

// TestAdmissionFacade exercises the budgeted-admission API through the
// facade: session budgets, the admission registry, the budgeted sharded
// engine with its lane stats, and the online max-request selection
// against its offline oracles.
func TestAdmissionFacade(t *testing.T) {
	// Directed path 0 -> 1 -> 2 -> 3: a Theorem-1 topology.
	g := wavedag.NewGraph(4)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 2)
	g.MustAddArc(2, 3)

	for _, name := range []string{
		wavedag.AdmissionReject, wavedag.AdmissionRetryAltRoute, wavedag.AdmissionDegrade,
	} {
		if _, ok := wavedag.LookupAdmissionStrategy(name); !ok {
			t.Fatalf("built-in admission strategy %q not registered", name)
		}
	}

	net := &wavedag.Network{Topology: g}
	s, err := net.NewSession(wavedag.WithWavelengthBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Add(wavedag.Request{Src: 0, Dst: 3}); err != nil {
		t.Fatal(err)
	}
	_, adm, err := s.TryAdd(wavedag.Request{Src: 1, Dst: 2})
	if err != nil || adm.Accepted {
		t.Fatalf("over-budget request: %+v %v", adm, err)
	}
	if _, err := s.Add(wavedag.Request{Src: 1, Dst: 2}); !errors.Is(err, wavedag.ErrBudgetExceeded) {
		t.Fatalf("Add error = %v, want ErrBudgetExceeded", err)
	}
	if st := s.AdmissionStats(); st.Accepted != 1 || st.Rejected != 2 {
		t.Fatalf("stats %+v", st)
	}

	// Online max-request: at w=1 only disjoint dipaths survive, and the
	// selection can never beat the exact solver.
	fam := wavedag.Family{
		wavedag.MustPath(g, 0, 1, 2),
		wavedag.MustPath(g, 1, 2, 3),
		wavedag.MustPath(g, 2, 3),
	}
	sel, err := wavedag.MaxRequestsOnline(g, fam, 1)
	if err != nil {
		t.Fatal(err)
	}
	exact, _ := wavedag.MaxRequestsExact(g, fam, 1)
	if len(sel) == 0 || len(sel) > len(exact) {
		t.Fatalf("|online| = %d, |exact| = %d", len(sel), len(exact))
	}

	// Budgeted engine: stats carry the budget and the lane shares.
	eng, err := net.NewShardedEngine(wavedag.WithEngineWavelengthBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	results := eng.ApplyBatchInto([]wavedag.BatchOp{
		wavedag.AddOp(wavedag.Request{Src: 0, Dst: 3}),
		wavedag.AddOp(wavedag.Request{Src: 1, Dst: 2}),
	}, nil)
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	if !errors.Is(results[1].Err, wavedag.ErrBudgetExceeded) {
		t.Fatalf("batch rejection = %v", results[1].Err)
	}
	st := eng.Stats()
	if st.Budget != 1 || st.Plain.Accepted != 1 || st.Plain.Rejected != 1 {
		t.Fatalf("engine stats %+v", st)
	}
}

// TestSnapshotFacade exercises the lock-free query plane through the
// facade: the snapshot-backed engine reads, their ...Strong
// counterparts, and a pinned wavedag.EngineSnapshot surviving churn
// and Close.
func TestSnapshotFacade(t *testing.T) {
	g := wavedag.NewGraph(4)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 2)
	g.MustAddArc(2, 3)
	net := &wavedag.Network{Topology: g}
	eng, err := net.NewShardedEngine()
	if err != nil {
		t.Fatal(err)
	}
	id, err := eng.Add(wavedag.Request{Src: 0, Dst: 3})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Len() != 1 || eng.LenStrong() != 1 || eng.Pi() != eng.PiStrong() {
		t.Fatalf("lock-free reads disagree with strong reads: len %d/%d", eng.Len(), eng.LenStrong())
	}
	if w, err := eng.Wavelength(id); err != nil || w < 0 {
		t.Fatalf("Wavelength = %d (%v)", w, err)
	}
	var snap *wavedag.EngineSnapshot = eng.Snapshot()
	defer snap.Release()
	if _, err := eng.Add(wavedag.Request{Src: 1, Dst: 2}); err != nil {
		t.Fatal(err)
	}
	if snap.Len() != 1 || eng.Len() != 2 {
		t.Fatalf("pinned snapshot len %d (want 1), live len %d (want 2)", snap.Len(), eng.Len())
	}
	buf := eng.ArcLoadsInto(nil)
	if len(buf) != 3 {
		t.Fatalf("ArcLoadsInto len = %d", len(buf))
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	final := eng.Snapshot()
	defer final.Release()
	if !final.Closed() || eng.Len() != 2 {
		t.Fatalf("post-Close: closed=%v len=%d", final.Closed(), eng.Len())
	}
}
