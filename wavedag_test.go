package wavedag_test

import (
	"testing"

	"wavedag"
)

func TestQuickstartFlow(t *testing.T) {
	g := wavedag.NewGraph(4)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 2)
	g.MustAddArc(2, 3)
	fam := wavedag.Family{
		wavedag.MustPath(g, 0, 1, 2),
		wavedag.MustPath(g, 1, 2, 3),
	}
	if pi := wavedag.Load(g, fam); pi != 2 {
		t.Fatalf("π = %d, want 2", pi)
	}
	res, method, err := wavedag.Color(g, fam)
	if err != nil {
		t.Fatal(err)
	}
	if method != wavedag.MethodTheorem1 {
		t.Fatalf("method = %s", method)
	}
	if res.NumColors != 2 {
		t.Fatalf("colors = %d", res.NumColors)
	}
	if err := wavedag.VerifyColoring(g, fam, res); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeConstructions(t *testing.T) {
	g, fam, err := wavedag.PathologicalStaircase(4)
	if err != nil {
		t.Fatal(err)
	}
	if wavedag.Load(g, fam) != 2 {
		t.Fatal("staircase load wrong")
	}
	if !wavedag.HasInternalCycle(g) {
		t.Fatal("staircase must have internal cycles (w > π)")
	}

	g3, fam3 := wavedag.Figure3Instance()
	if wavedag.InternalCycleCount(g3) != 1 || len(fam3) != 5 {
		t.Fatal("Figure 3 instance wrong")
	}

	gH, famH := wavedag.HavetInstance()
	if ok, _, _, _ := wavedag.IsUPP(gH); !ok {
		t.Fatal("Havet graph must be UPP")
	}
	res, err := wavedag.ColorOneInternalCycleUPP(gH, famH)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumColors != 3 {
		t.Fatalf("Havet base coloring = %d colors, want 3", res.NumColors)
	}

	gG, famG, err := wavedag.InternalCycleGadget(3)
	if err != nil {
		t.Fatal(err)
	}
	cg := wavedag.NewConflictGraph(gG, famG)
	if cg.ChromaticNumber() != 3 {
		t.Fatal("gadget χ must be 3")
	}
}

func TestFacadeTheorem1Error(t *testing.T) {
	g, fam := wavedag.Figure3Instance()
	if _, err := wavedag.ColorNoInternalCycle(g, fam); err == nil {
		t.Fatal("internal-cycle graph accepted by Theorem 1")
	}
}

func TestFacadeArcLoads(t *testing.T) {
	g := wavedag.NewGraph(3)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 2)
	fam := wavedag.Family{wavedag.MustPath(g, 0, 1, 2)}
	loads := wavedag.ArcLoads(g, fam)
	if len(loads) != 2 || loads[0] != 1 || loads[1] != 1 {
		t.Fatalf("loads = %v", loads)
	}
}

// TestSessionFacade drives the dynamic provisioning engine through the
// public API: open a session, churn requests, verify, snapshot.
func TestSessionFacade(t *testing.T) {
	g := wavedag.NewGraph(4)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 2)
	g.MustAddArc(2, 3)
	net := &wavedag.Network{Topology: g, Wavelengths: 8}
	s, err := net.NewSession(wavedag.WithRoutingPolicy(wavedag.RouteShortest), wavedag.WithSlack(1))
	if err != nil {
		t.Fatal(err)
	}
	id1, err := s.Add(wavedag.Request{Src: 0, Dst: 3})
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Add(wavedag.Request{Src: 1, Dst: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Pi() != 2 {
		t.Fatalf("π = %d, want 2", s.Pi())
	}
	if lambda, err := s.NumLambda(); err != nil || lambda != 2 {
		t.Fatalf("λ = %d (%v), want 2", lambda, err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove(id1); err != nil {
		t.Fatal(err)
	}
	if lambda, err := s.NumLambda(); err != nil || lambda != 1 {
		t.Fatalf("λ = %d (%v) after removal, want 1", lambda, err)
	}
	prov, err := s.Provisioning()
	if err != nil {
		t.Fatal(err)
	}
	if len(prov.Paths) != 1 || !prov.Feasible {
		t.Fatalf("snapshot: %d paths, feasible=%v", len(prov.Paths), prov.Feasible)
	}
	if w, err := s.Wavelength(id2); err != nil || w < 0 {
		t.Fatalf("wavelength of live id: %d (%v)", w, err)
	}
	// The incremental layers are also usable standalone.
	dyn := wavedag.NewDynamicConflictGraph(g)
	p := wavedag.MustPath(g, 0, 1, 2)
	slot, err := dyn.AddPath(p)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.LowerBound() != 1 || dyn.NumLive() != 1 {
		t.Fatalf("dyn: lb=%d live=%d", dyn.LowerBound(), dyn.NumLive())
	}
	if err := dyn.RemovePath(slot); err != nil {
		t.Fatal(err)
	}
	ic := wavedag.NewIncrementalColorer(g, 0)
	if _, err := ic.Add(p); err != nil {
		t.Fatal(err)
	}
	if ic.NumLambda() != 1 {
		t.Fatalf("colorer λ = %d", ic.NumLambda())
	}
}
