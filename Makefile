# Repro/CI targets for the wavedag reproduction. `make verify` is the
# tier-1 gate; `make benchsmoke` compiles and runs every benchmark once
# so the measurement suite cannot silently rot; `make bench` refreshes a
# full perf snapshot (see BENCH_PR1.json for the PR-1 baseline format).

GO ?= go

.PHONY: verify lint fuzzsmoke benchsmoke benchsmoke-sharded benchsmoke-subshard benchsmoke-admission benchsmoke-survive benchsmoke-snapshot benchsmoke-serve benchsmoke-adapt bench test

verify:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...
	$(MAKE) lint

# wavedaglint enforces the concurrency and admission contracts
# (lockfree, publish, poolpair, errwrap, registry — see the "Static
# analysis & invariants" section of the package docs). Exit 1 with
# file:line diagnostics on any violation.
lint:
	$(GO) run ./cmd/wavedaglint ./...

# Ten seconds per fuzz target: enough to exercise the generators and
# the oracles on every CI run without turning the gate into a soak.
fuzzsmoke:
	$(GO) test -run=NONE -fuzz=FuzzTheorem1Precheck -fuzztime=10s ./internal/wdm
	$(GO) test -run=NONE -fuzz=FuzzPartitionRegions -fuzztime=10s ./internal/digraph

test: verify

benchsmoke:
	$(GO) vet ./...
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Sharded-engine smoke: the concurrent churn benchmarks only, at two
# GOMAXPROCS settings, so the batch fan-out path cannot silently rot.
benchsmoke-sharded:
	$(GO) test -run=NONE -bench='Sharded|PoolCalibration' -benchtime=1x -cpu=1,4 ./...

# Two-level smoke: the giant-component churn benchmark (sub-sharding
# off and on) plus the trusted-translation ablation, at two GOMAXPROCS
# settings, so the region/overlay fan-out path cannot silently rot.
benchsmoke-subshard:
	$(GO) test -run=NONE -bench='SubshardChurn|AblationTrustedTranslation' -benchtime=1x -cpu=1,4 ./...

# Admission smoke: the blocking-probability workload (budgeted session
# and sharded engine) plus the reject-cost ablation pair (Theorem-1
# precheck vs color-and-rollback), at two GOMAXPROCS settings.
benchsmoke-admission:
	$(GO) test -run=NONE -bench='AdmissionChurn' -benchtime=1x -cpu=1,4 ./...

# Survivability smoke: churn with interleaved fiber cuts (restoration
# storms, dark parking, revival) on the session and the sharded engine,
# at two GOMAXPROCS settings.
benchsmoke-survive:
	$(GO) test -run=NONE -bench='SurviveChurn' -benchtime=1x -cpu=1,4 ./...

# Query-plane smoke: the lock-free snapshot reads (scalar queries, the
# pooled load-vector copy, per-id lookups) and the four-reader
# concurrent read/write driver against the mutex baseline, at two
# GOMAXPROCS settings, so the snapshot publication path cannot rot.
benchsmoke-snapshot:
	$(GO) test -run=NONE -bench='SnapshotQuery|SnapshotReaders' -benchtime=1x -cpu=1,4 ./...

# Serving front-end smoke: the write coalescer under concurrent
# closed-loop submitters (blocking backpressure) and the shed fast path
# under sustained overload, at two GOMAXPROCS settings, so the
# submission/dispatch path cannot silently rot.
benchsmoke-serve:
	$(GO) test -run=NONE -bench='ServeCoalesce|ServeShedding' -benchtime=1x -cpu=1,4 ./...

# Self-tuning layout smoke: the drifting-hotspot churn benchmark
# (static subshard layout vs adaptive re-splitting, drift and uniform
# load), at two GOMAXPROCS settings, so the re-layout path — cut
# selection, overlay re-promotion, snapshot republication — cannot
# silently rot.
benchsmoke-adapt:
	$(GO) test -run=NONE -bench='AdaptChurn' -benchtime=1x -cpu=1,4 ./...

bench:
	$(GO) run ./cmd/bench -benchtime 1s -out bench-latest.json
