// Package wavedag is a Go library reproducing Bermond & Cosnard,
// "Minimum number of wavelengths equals load in a DAG without internal
// cycle" (IPDPS 2007), together with the surrounding routing-and-
// wavelength-assignment (RWA) machinery the paper's results live in.
//
// # Model
//
// A network is a DAG G; a request is satisfied by a dipath. The load
// π(G,P) of a dipath family P is the maximum number of dipaths through a
// single arc; the wavelength number w(G,P) is the minimum number of
// colors such that arc-sharing dipaths get different colors. Always
// π ≤ w.
//
// # Results implemented
//
//   - Theorem 1: if G has no internal cycle (an undirected cycle avoiding
//     all sources and sinks), then w = π for every family, and
//     ColorNoInternalCycle computes such a coloring in polynomial time.
//   - Theorem 2 / Main Theorem: if G has an internal cycle some family
//     needs w = 3 > 2 = π (gadget available as InternalCycleGadget), so
//     the absence of internal cycles exactly characterises w ≡ π.
//   - Property 3/Corollary 5 (UPP-DAGs — at most one dipath between any
//     two vertices): conflicts have the Helly property, π equals the
//     conflict-graph clique number, and no K_{2,3} occurs.
//   - Theorem 6: on an UPP-DAG with exactly one internal cycle,
//     w ≤ ⌈4π/3⌉, computed by ColorOneInternalCycleUPP.
//   - Theorem 7: the bound is tight (Havet instance, HavetInstance).
//
// # Quick start
//
//	g := wavedag.NewGraph(4)
//	g.MustAddArc(0, 1)
//	g.MustAddArc(1, 2)
//	g.MustAddArc(2, 3)
//	fam := wavedag.Family{
//		wavedag.MustPath(g, 0, 1, 2),
//		wavedag.MustPath(g, 1, 2, 3),
//	}
//	res, method, _ := wavedag.Color(g, fam)
//	fmt.Println(res.NumColors, method) // 2 theorem1
//
// # Performance
//
// The hot paths are engineered for batch workloads:
//
//   - The exact solvers (ChromaticNumber, CliqueNumber, OptimalColoring)
//     and the DSATUR heuristic decompose the conflict graph into
//     connected components first — χ and ω of a disjoint union are the
//     maxima over components — so the exponential searches run on small
//     subproblems, dispatched to a runtime.NumCPU()-bounded worker pool
//     when components are large enough to pay for it. Small components
//     are canonicalized (exact adjacency bitmap) and solver results
//     memoized, so disjoint unions of identical instances — replicated
//     workloads, batched multi-tenant requests — pay for one solve.
//   - Inner loops are allocation-free: candidate sets and palettes are
//     bitsets (Tomita-style MaxClique with word-parallel coloring
//     bounds), the exact-coloring search maintains vertex saturation
//     incrementally instead of recomputing it per node (its workspaces
//     are recycled through a sync.Pool across components), and
//     neighbour iteration uses ConflictGraph.ForEachNeighbor rather
//     than slice-returning Neighbors.
//   - Batch routing goes through NewRouter, which reuses epoch-stamped
//     BFS/Dijkstra state across requests instead of allocating per
//     request; incremental load bookkeeping goes through NewLoadTracker.
//
// # Sessions: the dynamic provisioning engine
//
// One-shot Provision pays the full route→conflict→color pipeline per
// call. Churning workloads — request arrivals and teardowns at steady
// state — instead open a Session (Network.NewSession), which maintains
// every layer incrementally:
//
//   - routing state (Router / UPP tables) persists across requests;
//   - arc loads live in a LoadTracker (O(path) per update, O(1) π);
//   - the conflict graph is mutable: inserting a dipath touches only
//     the paths sharing its arcs (arc-indexed overlap detection), not
//     all n² pairs;
//   - wavelengths are maintained online: a new path is first-fit
//     colored against its neighbourhood, a removal runs a bounded local
//     repair, and only when the count drifts past a configurable slack
//     above the incrementally maintained lower bound does the engine
//     fall back to a full from-scratch recolor (the strongest
//     applicable theorem).
//
// Session.Add/Remove/Reroute are the operations; Session.Verify checks
// the live assignment against the conflict invariant, and
// Session.Provisioning materialises a Provisioning snapshot. Routing
// and coloring are pluggable strategies resolved from registries
// (RegisterRoutingStrategy / RegisterColoringStrategy); the legacy
// RoutingPolicy constants resolve to the built-in strategies, and
// Provision itself is a thin wrapper over a throwaway session with the
// "full" (defer-and-solve-once) coloring strategy. The randomized churn
// equivalence tests pin the session to the one-shot pipeline:
// Verify-clean after every operation, exact π, and λ within the slack
// of the from-scratch answer.
//
// # Sharded engine: concurrency model
//
// A Session is single-threaded. ShardedEngine
// (Network.NewShardedEngine) is the concurrent engine: the topology is
// partitioned into its weakly connected components (one O(V+A) pass,
// compact per-component views — no shard ever copies the full graph)
// and every small component gets its own Session; giant components are
// further sub-sharded (next section). Dipaths cannot cross components,
// so shards share no mutable state: each owns its router, load
// tracker, conflict graph and colorer outright, and the per-event hot
// path takes no locks or atomics.
//
// Ownership and safety rules:
//
//   - All ShardedEngine methods are safe to call from any goroutine:
//     one engine mutex serialises API entry, so batches never
//     interleave. Concurrency happens inside ApplyBatch, which groups
//     the batch by owning shard and fans the shards out to up to
//     GOMAXPROCS workers (WithShardWorkers overrides) from the
//     engine's persistent pool; batches of at most 16 events run
//     inline, where the handoff would cost more than it distributes.
//   - A shard is touched by exactly one worker per batch; events on the
//     same shard apply in input order, events on different shards
//     commute. Merged reports (Provisioning, Verify) assemble in
//     component/shard index order, so results are deterministic
//     regardless of worker scheduling.
//   - The per-shard Sessions must not be driven directly; the engine
//     owns them. Wavelength reports are offset-free across components:
//     components share no arcs, so they color independently from 0 and
//     the global λ is the max over components (two-level components
//     report their region maximum plus their overlay band), and the
//     merged assignment is proper as-is.
//
// # Two-level sharding: giant components
//
// Component sharding alone serialises a topology dominated by one giant
// weakly connected component. ShardedEngine therefore decomposes
// components at or above WithSubshardThreshold vertices (default 64)
// into arc-disjoint regions — the biconnected blocks of the underlying
// undirected graph, computed by Graph.PartitionRegions — and runs one
// sub-session per region plus one serialized overlay lane per
// component. The soundness argument has two halves:
//
//   - Confinement: blocks meet only at cut vertices, so every simple
//     path between two co-region vertices stays inside the region, and
//     any arc joining two co-region vertices belongs to the region.
//     Region-confined requests therefore route on the compact region
//     view over exactly the global search space, and region views
//     preserve relative vertex/arc order, so BFS and min-load Dijkstra
//     return exactly the routes a whole-component session would.
//   - Arc-disjointness: regions partition the arcs, so paths confined
//     to different regions never conflict and region wavelength counts
//     aggregate as a max, exactly like components.
//
// Requests whose endpoints share no region must cross regions; they
// escalate to the component's overlay lane (a session over the whole
// component view), which is serialized per component and reconciled at
// batch boundaries: region path deltas fold into the overlay tracker
// (keeping the component's combined load view — and π — exact) and
// overlay path loads scatter back into the region trackers. Overlay
// wavelengths are reported in a band above the region maximum, so the
// merged assignment stays proper even though overlay paths share arcs
// with region paths; a component's λ is the region maximum plus its
// overlay band.
//
// ApplyBatch runs on a persistent worker pool started at engine
// construction — batches pay no goroutine-spawn cost, however small —
// and Close stops the pool: in-flight batches finish first, later
// mutations fail with ErrEngineClosed, and queries keep answering —
// lock-free — from the final published snapshot (next section). Both
// the sharded dispatcher and the plain Router
// reject infeasible cross-component requests in O(1) from component
// labels (the Router computes them lazily, on its first exhausted
// search) instead of repeating exhausted searches. ApplyBatchInto is
// ApplyBatch with a caller-pooled results buffer — steady-state batch
// loops recycle one slice instead of allocating per call.
//
// # Lock-free query plane
//
// Reads never block writes. At every mutation boundary — each
// ApplyBatch (and single-op Add/Remove), FailArc, RestoreArc, Revive
// and Close — the engine publishes an immutable EngineSnapshot through
// one atomic pointer, rebuilt incrementally: only the shards the event
// touched re-materialise their lookup tables and re-scatter their
// loads; untouched shards share their backing arrays with the previous
// snapshot. The read-only API (Stats, Len, Pi, NumLambda,
// OverlayLambda, DarkLive, NumFailedArcs, ArcLoads/ArcLoadsInto, Path,
// Wavelength, IsDark) answers from the current snapshot without
// touching the engine mutex: scalar queries are one atomic load plus a
// field read, zero allocations; ArcLoadsInto copies into a
// caller-reused buffer, also allocation-free; ArcLoads allocates only
// its returned copy.
//
// The staleness contract: a snapshot is an exact, internally
// consistent image of the engine at a mutation boundary, at most one
// event behind the strong reads — and never behind for the caller that
// applied the event, because publication happens before the mutation
// returns. Queries therefore always agree with each other when asked
// of one pinned snapshot (ShardedEngine.Snapshot, released with
// EngineSnapshot.Release; retired buffers recycle through pools only
// after the last pin drops). Every query also has a ...Strong variant
// that takes the engine mutex and reads live state — the linearizable
// form, and the fallback NumLambda/OverlayLambda use when a non-default
// coloring strategy prices λ lazily (a full solve is too expensive to
// pay at every publication). Provisioning and Verify, which
// materialise merged state, always run under the mutex.
//
// # Admission control & budgets
//
// An unbudgeted engine always accepts and lets λ float; a budgeted one
// is capacity-constrained with measurable blocking — the regime the
// paper's concluding-remarks problem (satisfy a maximum subfamily under
// a wavelength budget) lives in, taken online. WithWavelengthBudget(w)
// turns a Session into an admission-controlled engine: every Add/TryAdd
// decides accept-or-reject before any state mutates.
//
//   - On internal-cycle-free topologies the decision is the Theorem-1
//     precheck: "fits in w wavelengths" is exactly "load ≤ w" there, so
//     admission is an O(path) read of the live load tracker — measured
//     at a fraction of the cost of a provisioning attempt (see the
//     admission/reject-cost benchmark pair) — and it is exact: a
//     request is rejected only when its route genuinely cannot fit.
//     After an accepted add the engine restores λ ≤ w whenever the
//     incremental palette drifted (Theorem 1 guarantees the recolor
//     lands at π ≤ w).
//   - On general DAGs (internal cycles present) the engine falls back
//     to a color-then-rollback probe through the coloring layer: the
//     request is admitted only if it takes a wavelength below w without
//     disturbing the live assignment (one palette repack allowed), and
//     a rejection rolls the insertion back exactly.
//
// What happens to over-budget requests is a pluggable AdmissionStrategy
// resolved from a registry, exactly like routing and coloring: "reject"
// drops them (the default — blocking-probability experiments measure
// this), "retry-alt-route" re-asks a min-load router for a detour
// around the saturated arcs and recovers the request when one fits, and
// "degrade" accepts them as best-effort traffic reported separately
// (suspending the λ ≤ w guarantee while any is live). TryAdd returns
// the Admission decision without an error detour; Add wraps rejections
// in ErrBudgetExceeded; AdmissionStats counts offers, accepts, rejects,
// retries and best-effort admissions.
//
// ShardedEngine takes the budget via WithEngineWavelengthBudget: λ
// aggregates as a max over components and over the arc-disjoint regions
// inside one, so a global budget is exactly a per-shard budget and
// admission stays on the lock-free per-shard hot path. Two-level
// components band the budget — region lanes admit against w minus the
// overlay slice (WithOverlayBudgetSlice, default w/4), the overlay lane
// against its slice — so the banded aggregation can never exceed w.
// Per-lane admission outcomes and traffic shares aggregate into
// EngineStats (LaneStats for plain/region/overlay), making overlay
// pressure observable without a profiler.
//
// The static max-request solvers (MaxRequestsGreedy/Exact/OnPath) have
// an online counterpart, MaxRequestsOnline: dipaths offered one at a
// time against a budgeted session, each irrevocably accepted or
// rejected — always feasible at w, never beating the exact offline
// selection, and carrying a full wavelength assignment rather than just
// a selection.
//
// # Survivability & failures
//
// The engines survive live fiber cuts. Graph.FailArc marks an arc
// failed in place — identifiers, endpoints and adjacency positions are
// all preserved, so live loads, colorings and dipaths stay index-valid
// — and every failure-aware traversal (routing, reachability, live
// component labels) simply skips failed arcs; Graph.RestoreArc heals
// the cut. Session.FailArc is the dynamic entry point: it locates the
// affected live paths through the arc-indexed conflict incidence (no
// family scan), then runs a bounded restoration storm — all affected
// paths are torn down first (the cut kills them simultaneously), then
// rerouted shortest-first, each allowed one min-load detour charged
// against a per-storm retry budget (WithStormRetryBudget; default 2×
// the affected count). Paths the storm cannot restore are parked as
// dark entries: retained under their SessionID, flagged, excluded from
// λ/π and the live view, never silently dropped. Session.RestoreArc
// heals an arc and runs a re-admission sweep that revives dark entries
// oldest-first under the wavelength budget, and Session.Revive (or
// ShardedEngine.Revive, which also sweeps across the two-level lanes)
// runs the same sweep on demand; removals and repairs also re-promote
// best-effort ("degrade"-admitted) traffic to budgeted service once λ
// fits the budget again, restoring the λ ≤ w guarantee.
//
// ShardedEngine.FailArc/RestoreArc dispatch cuts to the owning shard
// (region lane first, then the overlay lane, with the two-level
// reconciliation folding storm-driven path deltas between them), track
// split components incrementally via live component labels — requests
// a cut made unroutable are rejected in O(1) at dispatch — and count
// cuts, affected/restored/parked/revived paths and storm latency into
// EngineStats/LaneStats. FailureStats and StormReport carry the same
// counters at session and per-storm granularity; Session.DarkIDs /
// ShardedEngine.DarkLive expose the parked population. For measurement,
// NewFaultSchedule draws a deterministic MTBF/MTTR alternating-renewal
// cut/repair event stream ([]FaultEvent) over a topology's arcs, the
// workload `go run ./cmd/bench -survive` replays against churn.
//
// # Serving & overload
//
// The library becomes a process through the serving front-end: a
// Server (NewServer) wraps a ShardedEngine's write path behind a
// bounded submission queue and a write coalescer — one dispatcher
// accumulates concurrent Submit calls into ApplyBatch batches under a
// maximum batch size and a latency cap (WithMaxBatch /
// WithLatencyCap), amortising the engine fan-out without asking
// callers to assemble batches themselves. Reads never queue: the
// lock-free query plane already answers from any goroutine.
//
// The serving contract is exactly-one-definitive-response: every
// submission terminates in precisely one of
//
//   - an ack, carrying the engine result (assigned id, reroute
//     outcome, storm report);
//   - a terminal error (no route, unknown session, budget exhaustion
//     after retries, ErrServerClosed, a panic isolated to that one
//     request);
//   - a shed verdict: under overload — queue full or past WithShedDepth
//     — the server refuses new work immediately with ErrShed and a
//     RetryAfter hint derived from the measured per-op service time,
//     keeping accepted-write latency flat instead of letting the queue
//     collapse into seconds of wait (WithBlockingBackpressure trades
//     shedding back for blocking, the measured comparison axis);
//   - a deadline expiry: a context deadline travels with the request
//     and a request that expires while queued is answered with
//     ErrDeadlineExceeded before any engine work is spent on it.
//
// Transient failures retry with jittered exponential backoff, bounded
// and deadline-aware, on either side of the queue: WithServerRetry
// re-coalesces ErrBudgetExceeded rejections inside the server;
// ServeClient.Do resubmits shed verdicts from the caller's side,
// honouring RetryAfter. Permanent errors are never retried
// (IsTransient is the classifier). Shutdown drains gracefully: intake
// stops, the queue and retry backlog flush so every accepted request
// is answered, then the engine closes — queries keep serving from the
// final snapshot. The open-loop Poisson driver (NewPoissonArrivals,
// with a configurable rate ramp) exists to push this machinery past
// saturation honestly; `go run ./cmd/bench -serve` measures sustained
// events/sec, accepted-write p50/p99, shed% and drain time at offered
// loads around measured capacity, and `go run ./cmd/served` is the
// HTTP/JSON binary over the same front-end. The chaos soak
// (concurrent writers + fault storms + budget pressure) pins the
// exactly-once contract under -race.
//
// BENCH_PR1.json records the measured baseline (ns/op, B/op, allocs/op,
// before/after) for the E1–E12 experiment pipelines and the large-
// instance workloads of cmd/bench; BENCH_PR2.json adds the churn
// workloads (session vs rebuild-from-scratch per event, with
// configurable hold times); BENCH_PR3.json adds the sharded-engine
// churn sweep (worker-count axis, batched ApplyBatch events) and the
// warm-start recolor numbers; BENCH_PR4.json adds the giant-component
// churn sweep (sub-shard threshold axis, locality-controlled traffic),
// the small-batch worker-pool numbers and the trusted-translation merge
// cost; BENCH_PR6.json adds the survivability sweep (restoration
// latency, restored%, parked/revived counts and budget violations over
// a 3-point MTBF axis); BENCH_PR8.json adds the serving sweep (offered
// load at {0.5x, 1x, 2x} of measured capacity: throughput, accepted-
// write p50/p99, shed%, drain time, shedding on vs off); `make
// benchsmoke` (and `make benchsmoke-survive`, `make benchsmoke-serve`)
// keeps every benchmark compiling and running.
//
// # Static analysis & invariants
//
// The concurrency and admission contracts documented above are
// mechanically enforced by wavedaglint (cmd/wavedaglint, built on
// internal/lint): a stdlib-only analyzer suite that loads the module
// through `go list -export` and the gc export-data importer — no
// third-party analysis framework. `make lint` runs it over the whole
// repository and fails on any finding. Five analyzers cover the five
// contracts:
//
//   - lockfree: functions annotated //wavedag:lockfree (the snapshot
//     query plane) must not acquire sync primitives, block on
//     channels, allocate, or call in-module code that is not itself
//     annotated; //wavedag:allow-alloc and line-scoped
//     //wavedag:allow-blocking are the audited escape hatches.
//   - publish: a method that mutates engine state under the engine
//     mutex must reach publishLocked() on every return path — early
//     error returns included — so lock-free readers never trail the
//     mutex-guarded truth; //wavedag:readonly marks logically
//     read-only cache refreshes.
//   - poolpair: sync.Pool Get/Put must pair within a function unless
//     the escape is documented with //wavedag:pool-handoff, resources
//     from //wavedag:acquire entry points must be released, and refs
//     counters move only inside //wavedag:refcount lifecycle code.
//   - errwrap: the exported sentinels (ErrShed, ErrBudgetExceeded,
//     ErrEngineClosed, ...) must be wrapped with %w and tested with
//     errors.Is, never compared with == or matched in a switch.
//   - registry: strategy registrations need distinct compile-time
//     constant names, and every constant of a const block annotated
//     //wavedag:registry <RegisterFunc> must have a registered
//     implementation, so documented names cannot drift from the
//     registries.
//
// The analyzers are themselves pinned by golden-file tests over a
// fixture module of seeded violations (internal/lint/testdata), and
// the repository must pass its own suite (TestSelfRunClean). Alongside
// the analyzers, fuzz targets pin the two load-bearing invariants the
// linters cannot see: FuzzTheorem1Precheck replays identical op
// streams through the Theorem-1 admission precheck and the
// color-then-rollback probe on random internal-cycle-free topologies,
// and FuzzPartitionRegions checks the arc-partition and cut-vertex
// contract of the region decomposition on random DAGs.
//
// # Adaptive layout
//
// The layout decisions above — the region partition, the budget band
// split, the topology itself — are made once at construction, from the
// graph alone. Under a workload that drifts (a traffic hotspot that
// migrates across the topology, gen.DriftingHotspotRequestPool), any
// static layout eventually concentrates most events on one serialized
// lane. The adaptive layout plane lets a running engine re-shape
// itself, always at a batch boundary, under the engine mutex, with a
// fresh snapshot published afterwards so the lock-free query plane
// never observes a half-moved layout:
//
//   - Adaptive budget banding (WithAdaptiveBanding, requires an engine
//     budget): every lane maintains pressure gauges — an admission
//     saturation EWMA and, under eager λ accounting, a budget occupancy
//     EWMA, both visible in LaneStats. When a two-level component's
//     overlay lane sustains pressure at the high watermark while its
//     region lanes sit at the low one (or vice versa), the engine moves
//     BandStep wavelengths between the region band and the overlay
//     slice. The shift is applied only after HysteresisBatches
//     consecutive batches of one-sided evidence and never shrinks a
//     band below its lanes' current λ, so an oscillating load cannot
//     thrash the banding and λ ≤ w survives every shift.
//   - Hot-region re-splitting (WithRegionResplit): per-lane event-share
//     EWMAs detect a region lane absorbing more than ResplitShare of
//     its component's traffic. The hot region is re-partitioned by a
//     balanced arc cut (an undirected BFS sweep that grows one side
//     until it holds about half the region's arcs), two fresh lanes
//     adopt the confined lightpaths with their exact routes, and paths
//     the cut severs escalate to the overlay lane (parked dark if its
//     band cannot hold them — never silently dropped). The synthetic
//     halves are no longer biconnected blocks, so region lanes of a
//     re-split component escalate their failed region-confined routes
//     to the overlay instead of rejecting. Re-splitting repeats until
//     no lane dominates, then settles behind the same hysteresis
//     cooldown.
//   - Live capacity adds (ShardedEngine.AddArc): an arc added inside
//     one region joins that region's lane; an arc bridging two regions
//     becomes overlay-owned (and turns the component escalating, since
//     cross-region routes may now exist); an arc joining two components
//     merges them into one, relocating every lightpath of both into a
//     fresh lane. The engine clones the topology on the first add — the
//     caller's Network and previously pinned snapshots are never
//     mutated.
//
// Every re-layout retires its old lanes behind immutable forward maps,
// so ShardedIDs issued before keep resolving (strong and snapshot reads
// alike), and AdaptiveConfig (WithAdaptiveConfig) carries the tuning:
// EWMA alpha, watermarks, hysteresis, re-split share and size floor.
// EngineStats counts re-bands, re-splits and capacity adds. The
// randomized equivalence suite pins every re-layout shape: after any
// mix of churn, cuts, adds and re-layouts the engine's merged
// provisioning must re-admit path-for-path into a from-scratch session
// on the final topology with exactly equal π, a proper merged coloring,
// and λ within the budget. `go run ./cmd/bench -adapt` measures the
// payoff (BENCH_PR10.json): under a drifting hotspot the adaptive
// engine re-localizes traffic that a static layout funnels through its
// overlay lane, and under uniform load the gauges' overhead is noise.
//
// The sub-packages under internal/ hold the implementation; this package
// re-exports the stable API.
package wavedag

import (
	"time"

	"wavedag/internal/conflict"
	"wavedag/internal/core"
	"wavedag/internal/cycles"
	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/gen"
	"wavedag/internal/groom"
	"wavedag/internal/load"
	"wavedag/internal/route"
	"wavedag/internal/serve"
	"wavedag/internal/upp"
	"wavedag/internal/wdm"
)

// Re-exported core types.
type (
	// Graph is a directed multigraph with dense vertex and arc ids.
	Graph = digraph.Digraph
	// Vertex identifies a vertex of a Graph.
	Vertex = digraph.Vertex
	// ArcID identifies an arc of a Graph.
	ArcID = digraph.ArcID
	// Path is a dipath over a Graph.
	Path = dipath.Path
	// Family is an ordered collection of dipaths.
	Family = dipath.Family
	// Result is a wavelength assignment (colors, count, load).
	Result = core.Result
	// Method names the algorithm that produced a Result.
	Method = core.Method
	// ConflictGraph is the undirected conflict graph of a family.
	ConflictGraph = conflict.Graph
	// Network is a WDM network (topology + wavelength capacity).
	Network = wdm.Network
	// Provisioning is a routed and wavelength-assigned request set.
	Provisioning = wdm.Provisioning
	// Request is a source/destination connection demand.
	Request = route.Request
	// Router holds preallocated, reusable routing state for batches of
	// requests over one graph (see NewRouter).
	Router = route.Router
	// LoadTracker maintains arc loads incrementally under path
	// insertion/removal (see NewLoadTracker).
	LoadTracker = load.Tracker
	// Session is a dynamic provisioning run: Add/Remove/Reroute maintain
	// routing, load, conflict and wavelength state incrementally (open
	// one with Network.NewSession).
	Session = wdm.Session
	// SessionID identifies a live request inside a Session.
	SessionID = wdm.SessionID
	// SessionOption configures Network.NewSession.
	SessionOption = wdm.SessionOption
	// RoutingPolicy selects a built-in routing strategy for Provision
	// and WithRoutingPolicy.
	RoutingPolicy = wdm.RoutingPolicy
	// RoutingStrategy is the pluggable request→dipath layer of sessions;
	// register implementations with RegisterRoutingStrategy.
	RoutingStrategy = wdm.RoutingStrategy
	// ColoringStrategy is the pluggable wavelength-maintenance layer of
	// sessions; register implementations with RegisterColoringStrategy.
	ColoringStrategy = wdm.ColoringStrategy
	// DynamicConflictGraph is a mutable conflict graph maintained under
	// dipath insertion/removal (see NewDynamicConflictGraph).
	DynamicConflictGraph = conflict.Dynamic
	// IncrementalColorer maintains a wavelength assignment online over a
	// mutable conflict graph (see NewIncrementalColorer).
	IncrementalColorer = core.Incremental
	// ShardedEngine is the concurrent provisioning engine: one Session
	// per weakly connected component, batches fanned out across shards
	// (open one with Network.NewShardedEngine; see the package docs for
	// the concurrency model).
	ShardedEngine = wdm.ShardedEngine
	// ShardedID identifies a live request inside a ShardedEngine.
	ShardedID = wdm.ShardedID
	// ShardedOption configures Network.NewShardedEngine.
	ShardedOption = wdm.ShardedOption
	// BatchOp is one churn event of ShardedEngine.ApplyBatch (build with
	// AddOp, RemoveOp, RerouteOp).
	BatchOp = wdm.BatchOp
	// BatchResult is the per-op outcome of ShardedEngine.ApplyBatch.
	BatchResult = wdm.BatchResult
	// ComponentView is a compact weakly-connected-component view of a
	// Graph (see Graph.PartitionComponents).
	ComponentView = digraph.ComponentView
	// Regions is the arc-disjoint region decomposition of a Graph — the
	// biconnected blocks of the underlying undirected graph, the
	// substrate of two-level sharding (see Graph.PartitionRegions).
	Regions = digraph.Regions
	// RegionMember is one (region, local id) membership of a vertex in
	// a Regions decomposition.
	RegionMember = digraph.RegionMember
	// EngineStats summarises a ShardedEngine's layout, per-lane traffic
	// shares and admission outcomes (see ShardedEngine.Stats).
	EngineStats = wdm.EngineStats
	// LaneStats aggregates one engine lane flavour's traffic and
	// admission outcomes.
	LaneStats = wdm.LaneStats
	// EngineSnapshot is one atomically-published immutable image of a
	// ShardedEngine at a mutation boundary — the substrate of the
	// lock-free query plane (pin one with ShardedEngine.Snapshot, see
	// the "Lock-free query plane" section).
	EngineSnapshot = wdm.EngineSnapshot
	// Admission is the outcome of one budgeted admission decision (see
	// Session.TryAdd).
	Admission = wdm.Admission
	// AdmissionStats counts a session's cumulative admission outcomes.
	AdmissionStats = wdm.AdmissionStats
	// AdmissionStrategy decides the fate of over-budget requests;
	// register implementations with RegisterAdmissionStrategy.
	AdmissionStrategy = wdm.AdmissionStrategy
	// AdmissionState is per-session admission state built by an
	// AdmissionStrategy.
	AdmissionState = wdm.AdmissionState
	// AdmissionContext is the controlled session view an AdmissionState
	// decides through.
	AdmissionContext = wdm.AdmissionContext
	// BudgetedColoringState is the optional ColoringState extension that
	// gives a custom coloring strategy native budget admission (exact
	// rollback probe + λ enforcement) instead of the generic
	// add-measure-rollback fallback.
	BudgetedColoringState = wdm.BudgetedColoringState
	// OnlineMaxRequests is the online max-request selection: dipaths
	// offered one at a time against a wavelength budget (see
	// NewOnlineMaxRequests).
	OnlineMaxRequests = groom.Online
	// FailureStats counts a session's cumulative failure outcomes: cuts,
	// affected/restored/parked/revived paths, best-effort promotions (see
	// Session.FailureStats and the "Survivability & failures" section).
	FailureStats = wdm.FailureStats
	// StormReport is the outcome of one restoration storm (returned by
	// Session.FailArc / ShardedEngine.FailArc).
	StormReport = wdm.StormReport
	// FaultEvent is one cut or repair of a fault schedule (see
	// NewFaultSchedule).
	FaultEvent = gen.FaultEvent
	// Server is the robust serving front-end over a ShardedEngine:
	// write coalescing, deadlines, load shedding, retry and graceful
	// drain (open one with NewServer; see the "Serving & overload"
	// section).
	Server = serve.Server
	// ServeOption configures NewServer.
	ServeOption = serve.Option
	// ServeRequest is one write submitted to a Server (build with
	// AddRequest, RemoveRequest, RerouteRequest, FailArcRequest,
	// RestoreArcRequest).
	ServeRequest = serve.Request
	// ServeResponse is the definitive outcome of one submitted request.
	ServeResponse = serve.Response
	// ServeClient wraps a Server with client-side retry/backoff for
	// transient outcomes (see NewServeClient).
	ServeClient = serve.Client
	// RetryPolicy bounds a ServeClient's retry loop.
	RetryPolicy = serve.RetryPolicy
	// ServerStats counts a Server's cumulative outcomes: every
	// submission lands in exactly one of acked/failed/shed/expired.
	ServerStats = serve.ServerStats
	// PoissonArrivals is an open-loop (optionally rate-ramped) Poisson
	// arrival stream for overload experiments (see NewPoissonArrivals).
	PoissonArrivals = gen.PoissonArrivals
)

// ErrEngineClosed is returned by mutating ShardedEngine methods after
// Close; queries keep answering, lock-free, from the final published
// snapshot.
var ErrEngineClosed = wdm.ErrEngineClosed

// ErrBudgetExceeded is the sentinel wrapped by Add (and batch results)
// when budget admission rejects a request; TryAdd reports the same
// outcome as a non-error Admission decision.
var ErrBudgetExceeded = wdm.ErrBudgetExceeded

// ErrUnknownSession is the sentinel wrapped by Session and ShardedEngine
// operations handed a SessionID that is not live — never issued, already
// removed, or recycled to a later generation. The failing call mutates
// nothing.
var ErrUnknownSession = wdm.ErrUnknownSession

// ErrShed is the load-shedding verdict of a saturated Server: the
// request was refused before queueing, with a RetryAfter hint in the
// response. Shed outcomes are transient — ServeClient.Do retries them.
var ErrShed = serve.ErrShed

// ErrServerClosed answers submissions after Server.Shutdown began.
var ErrServerClosed = serve.ErrServerClosed

// IsTransient reports whether a serving error is worth retrying after
// backoff (shed verdicts, budget rejections); permanent errors — no
// route, unknown session, expired deadline, closed server — are not.
func IsTransient(err error) bool { return serve.IsTransient(err) }

// Names of the built-in admission strategies.
const (
	AdmissionReject        = wdm.AdmissionReject
	AdmissionRetryAltRoute = wdm.AdmissionRetryAltRoute
	AdmissionDegrade       = wdm.AdmissionDegrade
)

// DefaultSubshardThreshold is the component size (in vertices) at which
// NewShardedEngine switches a component to the two-level region layout.
const DefaultSubshardThreshold = wdm.DefaultSubshardThreshold

// Routing policies accepted by Network.Provision and WithRoutingPolicy.
const (
	RouteShortest = wdm.RouteShortest
	RouteMinLoad  = wdm.RouteMinLoad
	RouteUPP      = wdm.RouteUPP
)

// Names of the built-in coloring strategies.
const (
	ColoringIncremental = wdm.ColoringIncremental
	ColoringFull        = wdm.ColoringFull
)

// Session options, re-exported from the wdm layer.

// WithRoutingStrategy selects a session's routing strategy.
func WithRoutingStrategy(s RoutingStrategy) SessionOption { return wdm.WithRoutingStrategy(s) }

// WithRoutingPolicy selects the routing strategy registered for a
// built-in policy constant.
func WithRoutingPolicy(p RoutingPolicy) SessionOption { return wdm.WithRoutingPolicy(p) }

// WithColoringStrategy selects a session's coloring strategy.
func WithColoringStrategy(s ColoringStrategy) SessionOption { return wdm.WithColoringStrategy(s) }

// WithColoringStrategyName selects a registered coloring strategy by
// name (ColoringIncremental or ColoringFull for the built-ins).
func WithColoringStrategyName(name string) SessionOption {
	return wdm.WithColoringStrategyName(name)
}

// WithSlack sets how many wavelengths the incremental coloring may
// drift above its lower bound before a full recolor is forced.
func WithSlack(slack int) SessionOption { return wdm.WithSlack(slack) }

// WithCapacityHint pre-sizes the session for the expected number of
// simultaneously live requests.
func WithCapacityHint(n int) SessionOption { return wdm.WithCapacityHint(n) }

// WithWavelengthBudget caps a session at w wavelengths: every Add and
// TryAdd runs budget admission before any state mutates (see the
// "Admission control & budgets" section). w <= 0 means unlimited.
func WithWavelengthBudget(w int) SessionOption { return wdm.WithWavelengthBudget(w) }

// WithAdmissionStrategy selects how a budgeted session handles
// over-budget requests (default: reject).
func WithAdmissionStrategy(s AdmissionStrategy) SessionOption {
	return wdm.WithAdmissionStrategy(s)
}

// WithAdmissionStrategyName selects a registered admission strategy by
// name (AdmissionReject, AdmissionRetryAltRoute or AdmissionDegrade for
// the built-ins).
func WithAdmissionStrategyName(name string) SessionOption {
	return wdm.WithAdmissionStrategyName(name)
}

// WithAdmissionRollbackProbe forces the general-DAG color-then-rollback
// admission probe even on internal-cycle-free topologies — the ablation
// axis of the admission benchmarks.
func WithAdmissionRollbackProbe() SessionOption { return wdm.WithAdmissionRollbackProbe() }

// WithStormRetryBudget caps how many detour attempts one restoration
// storm may spend across all its affected paths (n < 0 selects the
// default of twice the affected count; 0 disables detours, leaving only
// each path's primary reroute).
func WithStormRetryBudget(n int) SessionOption { return wdm.WithStormRetryBudget(n) }

// Sharded-engine options and batch constructors, re-exported from the
// wdm layer.

// WithShardWorkers bounds the number of workers ApplyBatch fans shards
// out to (default: runtime.GOMAXPROCS(0)).
func WithShardWorkers(n int) ShardedOption { return wdm.WithShardWorkers(n) }

// WithShardSessionOptions forwards session options to every per-shard
// session of a ShardedEngine.
func WithShardSessionOptions(opts ...SessionOption) ShardedOption {
	return wdm.WithShardSessionOptions(opts...)
}

// WithSubshardThreshold sets the component size (in vertices) at which
// a ShardedEngine decomposes a component into arc-disjoint regions and
// runs it two-level; 0 disables sub-sharding.
func WithSubshardThreshold(n int) ShardedOption { return wdm.WithSubshardThreshold(n) }

// WithEngineWavelengthBudget caps every lane of a ShardedEngine at a
// global wavelength budget of w — per-shard admission with no
// cross-shard coordination, since λ aggregates as a max. w <= 0 means
// unlimited.
func WithEngineWavelengthBudget(w int) ShardedOption {
	return wdm.WithEngineWavelengthBudget(w)
}

// WithOverlayBudgetSlice sets how many of a budgeted engine's
// wavelengths each two-level component reserves for its overlay lane
// (default w/4, at least 1); region lanes admit against the remainder.
func WithOverlayBudgetSlice(k int) ShardedOption { return wdm.WithOverlayBudgetSlice(k) }

// AdaptiveConfig tunes the adaptive layout plane (see the package
// documentation's "Adaptive layout" section); start from
// DefaultAdaptiveConfig.
type AdaptiveConfig = wdm.AdaptiveConfig

// DefaultAdaptiveConfig returns the adaptive plane's calibrated tuning.
func DefaultAdaptiveConfig() AdaptiveConfig { return wdm.DefaultAdaptiveConfig() }

// WithAdaptiveBanding turns on adaptive budget banding: the engine
// shifts wavelengths between a two-level component's region band and
// its overlay slice following the lanes' pressure gauges, behind a
// hysteresis gate. Requires WithEngineWavelengthBudget.
func WithAdaptiveBanding() ShardedOption { return wdm.WithAdaptiveBanding() }

// WithRegionResplit turns on hot-region re-splitting: a region lane
// that sustains more than AdaptiveConfig.ResplitShare of its
// component's events is re-partitioned by a balanced arc cut at a batch
// boundary, with its lightpaths relocated live.
func WithRegionResplit() ShardedOption { return wdm.WithRegionResplit() }

// WithAdaptiveConfig overrides the adaptive plane's tuning knobs; it
// configures but does not enable (combine with WithAdaptiveBanding
// and/or WithRegionResplit).
func WithAdaptiveConfig(cfg AdaptiveConfig) ShardedOption { return wdm.WithAdaptiveConfig(cfg) }

// AddOp returns the batch event provisioning req.
func AddOp(req Request) BatchOp { return wdm.AddOp(req) }

// RemoveOp returns the batch event tearing down id.
func RemoveOp(id ShardedID) BatchOp { return wdm.RemoveOp(id) }

// RerouteOp returns the batch event re-routing id.
func RerouteOp(id ShardedID) BatchOp { return wdm.RerouteOp(id) }

// Strategy registries, re-exported from the wdm layer.

// RegisterRoutingStrategy adds a routing strategy to the registry.
func RegisterRoutingStrategy(s RoutingStrategy) error { return wdm.RegisterRoutingStrategy(s) }

// RegisterColoringStrategy adds a coloring strategy to the registry.
func RegisterColoringStrategy(s ColoringStrategy) error { return wdm.RegisterColoringStrategy(s) }

// LookupRoutingStrategy returns the registered routing strategy named
// name.
func LookupRoutingStrategy(name string) (RoutingStrategy, bool) {
	return wdm.LookupRoutingStrategy(name)
}

// LookupColoringStrategy returns the registered coloring strategy named
// name.
func LookupColoringStrategy(name string) (ColoringStrategy, bool) {
	return wdm.LookupColoringStrategy(name)
}

// RegisterAdmissionStrategy adds an admission strategy to the registry.
func RegisterAdmissionStrategy(s AdmissionStrategy) error {
	return wdm.RegisterAdmissionStrategy(s)
}

// LookupAdmissionStrategy returns the registered admission strategy
// named name.
func LookupAdmissionStrategy(name string) (AdmissionStrategy, bool) {
	return wdm.LookupAdmissionStrategy(name)
}

// AdmissionStrategyNames returns the registered admission strategy
// names, sorted.
func AdmissionStrategyNames() []string { return wdm.AdmissionStrategyNames() }

// RoutingStrategyNames returns the registered routing strategy names,
// sorted.
func RoutingStrategyNames() []string { return wdm.RoutingStrategyNames() }

// ColoringStrategyNames returns the registered coloring strategy names,
// sorted.
func ColoringStrategyNames() []string { return wdm.ColoringStrategyNames() }

// NewDynamicConflictGraph returns an empty mutable conflict graph for
// dipaths of g: AddPath/RemovePath maintain adjacency with arc-indexed
// overlap detection and an O(1) χ/ω lower bound.
func NewDynamicConflictGraph(g *Graph) *DynamicConflictGraph {
	return conflict.NewDynamic(g)
}

// NewIncrementalColorer returns an empty incremental wavelength
// maintainer for dipaths of g; slack <= 0 selects the default drift
// allowance before a full recolor is forced.
func NewIncrementalColorer(g *Graph, slack int) *IncrementalColorer {
	return core.NewIncremental(g, slack)
}

// Methods reported by Color.
const (
	MethodTheorem1 = core.MethodTheorem1
	MethodTheorem6 = core.MethodTheorem6
	MethodDSATUR   = core.MethodDSATUR
)

// NewGraph returns a graph with n unlabeled vertices.
func NewGraph(n int) *Graph { return digraph.New(n) }

// NewPath builds a dipath through the given vertices of g.
func NewPath(g *Graph, vertices ...Vertex) (*Path, error) {
	return dipath.FromVertices(g, vertices...)
}

// MustPath is NewPath but panics on error.
func MustPath(g *Graph, vertices ...Vertex) *Path {
	return dipath.MustFromVertices(g, vertices...)
}

// Load returns π(G,P), the maximum arc load.
func Load(g *Graph, fam Family) int { return load.Pi(g, fam) }

// ArcLoads returns the per-arc load vector.
func ArcLoads(g *Graph, fam Family) []int { return load.ArcLoads(g, fam) }

// HasInternalCycle reports whether the DAG g contains an internal cycle —
// the obstruction to w = π identified by the paper's Main Theorem.
func HasInternalCycle(g *Graph) bool { return cycles.HasInternalCycle(g) }

// InternalCycleCount returns the number of independent internal cycles.
func InternalCycleCount(g *Graph) int { return cycles.IndependentCycleCount(g) }

// IsUPP reports whether g has the unique-dipath property; when not, a
// witness pair with two distinct dipaths is returned.
func IsUPP(g *Graph) (ok bool, from, to Vertex, err error) { return upp.IsUPP(g) }

// Color computes a wavelength assignment for fam on the DAG g using the
// strongest applicable result of the paper: Theorem 1 (w = π) without
// internal cycles, Theorem 6 (w ≤ ⌈4π/3⌉) on one-cycle UPP-DAGs, and the
// DSATUR heuristic otherwise.
func Color(g *Graph, fam Family) (*Result, Method, error) { return core.ColorDAG(g, fam) }

// ColorNoInternalCycle computes a w = π wavelength assignment (Theorem 1).
// It fails with an error when g has an internal cycle.
func ColorNoInternalCycle(g *Graph, fam Family) (*Result, error) {
	return core.ColorNoInternalCycle(g, fam)
}

// ColorOneInternalCycleUPP computes a w ≤ ⌈4π/3⌉ assignment on an
// UPP-DAG with exactly one internal cycle (Theorem 6).
func ColorOneInternalCycleUPP(g *Graph, fam Family) (*Result, error) {
	return core.ColorOneInternalCycleUPP(g, fam)
}

// VerifyColoring checks that res is a proper assignment for fam on g.
func VerifyColoring(g *Graph, fam Family, res *Result) error {
	return core.Verify(g, fam, res)
}

// NewConflictGraph builds the conflict graph of fam over g.
func NewConflictGraph(g *Graph, fam Family) *ConflictGraph {
	return conflict.FromFamily(g, fam)
}

// NewRouter returns a Router over g: routing state (visited stamps,
// predecessor chains, queues, the Dijkstra heap) is allocated once and
// reused across requests, which is the fast path for AllToAll-scale
// batches. A Router is not safe for concurrent use.
func NewRouter(g *Graph) *Router { return route.NewRouter(g) }

// NewLoadTracker returns an empty incremental load tracker for g: Add
// and Remove update per-arc loads in O(path length), and Pi reports the
// current maximum load without rescanning the whole family.
func NewLoadTracker(g *Graph) *LoadTracker { return load.NewTracker(g) }

// NewLoadTrackerFromFamily returns a tracker preloaded with fam.
func NewLoadTrackerFromFamily(g *Graph, fam Family) *LoadTracker {
	return load.NewTrackerFromFamily(g, fam)
}

// NewFaultSchedule draws a deterministic MTBF/MTTR fault process over
// the arcs of g: each arc independently alternates exponentially
// distributed up (mean mtbf) and down (mean mttr) periods out to the
// horizon, and the merged time-sorted cut/repair stream is returned.
// Replaying it in order against FailArc/RestoreArc is always valid.
func NewFaultSchedule(g *Graph, mtbf, mttr, horizon float64, seed int64) ([]FaultEvent, error) {
	return gen.FaultSchedule(g, mtbf, mttr, horizon, seed)
}

// Serving front-end, re-exported from the serve layer (see the
// "Serving & overload" section).

// NewServer starts a serving front-end over eng: submissions coalesce
// into engine batches under a latency cap, with deadlines, load
// shedding, bounded retry and graceful drain. The Server takes over
// eng's write path; Server.Shutdown drains and closes both.
func NewServer(eng *ShardedEngine, opts ...ServeOption) (*Server, error) {
	return serve.New(eng, opts...)
}

// NewServeClient wraps srv with client-side retry: Do resubmits
// transient outcomes (shed verdicts, budget rejections) under the
// policy's attempt budget with jittered backoff, honouring the
// server's RetryAfter hints. A zero policy selects the default.
func NewServeClient(srv *Server, policy RetryPolicy, seed int64) *ServeClient {
	return serve.NewClient(srv, policy, seed)
}

// AddRequest submits a provisioning demand from src to dst.
func AddRequest(src, dst Vertex) ServeRequest { return serve.AddRequest(src, dst) }

// RemoveRequest tears down the request with the given id.
func RemoveRequest(id ShardedID) ServeRequest { return serve.RemoveRequest(id) }

// RerouteRequest re-routes the request with the given id.
func RerouteRequest(id ShardedID) ServeRequest { return serve.RerouteRequest(id) }

// FailArcRequest injects a fiber cut on arc a through the coalescer
// (a barrier op: it flushes the batch under construction first).
func FailArcRequest(a ArcID) ServeRequest { return serve.FailArcRequest(a) }

// RestoreArcRequest repairs the cut on arc a through the coalescer.
func RestoreArcRequest(a ArcID) ServeRequest { return serve.RestoreArcRequest(a) }

// WithMaxBatch caps how many coalesced ops one engine batch may carry.
func WithMaxBatch(n int) ServeOption { return serve.WithMaxBatch(n) }

// WithLatencyCap bounds how long the first request of a batch may wait
// for co-batched company before the batch applies anyway.
func WithLatencyCap(d time.Duration) ServeOption { return serve.WithLatencyCap(d) }

// WithQueueCapacity sets the Server's submission queue bound.
func WithQueueCapacity(n int) ServeOption { return serve.WithQueueCapacity(n) }

// WithShedDepth sets the queue depth at which submissions start
// shedding (default: shed only when the queue is full).
func WithShedDepth(n int) ServeOption { return serve.WithShedDepth(n) }

// WithBlockingBackpressure disables load shedding: submissions to a
// full queue block (bounded by their context) instead of shedding.
func WithBlockingBackpressure() ServeOption { return serve.WithBlockingBackpressure() }

// WithServerRetry retries transient engine rejections inside the
// server: up to attempts total applications per request, re-coalesced
// after jittered exponential backoff between base and max.
func WithServerRetry(attempts int, base, max time.Duration) ServeOption {
	return serve.WithServerRetry(attempts, base, max)
}

// WithServeSeed fixes the Server's backoff-jitter seed, making retry
// schedules deterministic for tests and benchmarks.
func WithServeSeed(seed int64) ServeOption { return serve.WithSeed(seed) }

// NewPoissonArrivals builds an open-loop Poisson arrival stream at the
// given rate (events per unit time), deterministic in seed; SetRamp
// adds a linear rate ramp for overload experiments.
func NewPoissonArrivals(rate float64, seed int64) (*PoissonArrivals, error) {
	return gen.NewPoissonArrivals(rate, seed)
}

// Constructions from the paper, for experimentation and testing.

// PathologicalStaircase returns the Figure 1 instance: k dipaths with
// π = 2 whose conflict graph is complete (w = k).
func PathologicalStaircase(k int) (*Graph, Family, error) { return gen.Fig1Staircase(k) }

// Figure3Instance returns the Figure 3 instance: one internal cycle,
// 5 dipaths, π = 2, w = 3.
func Figure3Instance() (*Graph, Family) { return gen.Fig3() }

// InternalCycleGadget returns the Theorem 2 construction with 2k
// direction changes: π = 2 and w = 3 whenever an internal cycle exists.
func InternalCycleGadget(k int) (*Graph, Family, error) { return gen.InternalCycleGadget(k) }

// HavetInstance returns the Theorem 7 tightness example: an UPP-DAG with
// one internal cycle whose family has π = 2 and w = 3; replicating the
// family h times gives π = 2h and w = ⌈8h/3⌉ = ⌈4π/3⌉.
func HavetInstance() (*Graph, Family) { return gen.Havet() }

// The maximum-request problem from the paper's concluding remarks: given
// a wavelength budget, select as many dipaths as possible that can still
// be satisfied. On internal-cycle-free DAGs Theorem 1 reduces the
// satisfiability test to "load ≤ budget".

// MaxRequestsGreedy selects a feasible subfamily under the wavelength
// budget, shortest dipaths first. Returns the selected indices.
func MaxRequestsGreedy(g *Graph, fam Family, budget int) []int {
	return groom.Greedy(g, fam, budget)
}

// MaxRequestsExact selects a maximum subfamily under the wavelength
// budget by branch and bound; ok=false reports that the search cap was
// hit (the selection is still feasible).
func MaxRequestsExact(g *Graph, fam Family, budget int) ([]int, bool) {
	return groom.Exact(g, fam, budget, 2_000_000)
}

// MaxRequestsOnPath solves the problem exactly in polynomial time when g
// is a directed path graph (the grooming-on-the-path setting the paper
// grew out of).
func MaxRequestsOnPath(g *Graph, fam Family, budget int) ([]int, error) {
	return groom.MaxOnPath(g, fam, budget)
}

// NewOnlineMaxRequests opens an online max-request run at wavelength
// budget w on g: dipaths are offered one at a time (Offer/OfferFamily)
// and each is irrevocably accepted or rejected by a budgeted session —
// the paper's concluding-remarks problem taken online. Extra session
// options (admission strategy, slack) pass through.
func NewOnlineMaxRequests(g *Graph, w int, opts ...SessionOption) (*OnlineMaxRequests, error) {
	return groom.NewOnline(g, w, opts...)
}

// MaxRequestsOnline offers the whole family in index order against a
// fresh budget-w online selection and returns the accepted indices —
// always feasible at w, never larger than MaxRequestsExact's answer.
func MaxRequestsOnline(g *Graph, fam Family, w int) ([]int, error) {
	return groom.OnlineMax(g, fam, w)
}
