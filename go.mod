module wavedag

go 1.21
