package digraph

import "fmt"

// Regions is the arc-disjoint region decomposition of a digraph: the
// biconnected blocks of the underlying undirected multigraph. Arcs
// partition exactly across regions, and two distinct regions meet in at
// most one vertex (a cut vertex), so the decomposition has the two
// structural properties the two-level sharded provisioning engine is
// built on:
//
//   - confinement: every simple path between two vertices of one region
//     stays inside the region (leaving a block and coming back would
//     revisit the cut vertex it left through), so routing over a region
//     view searches exactly the global search space for such pairs;
//   - arc-disjointness: dipaths confined to different regions of one
//     component can never share an arc — an arc joining two vertices of
//     a region belongs to that region, since two blocks share at most
//     one vertex — so they never conflict and wavelength counts
//     aggregate as a max, exactly like disjoint components.
//
// Region views mirror ComponentView's ordering contract: local vertex i
// is the i-th smallest parent vertex of the region and arcs appear in
// parent arc-identifier order, so BFS and (load, hops, vertex)-tie-broken
// Dijkstra over a view produce exactly the routes the parent would for
// region-confined requests.
type Regions struct {
	// Views holds one compact standalone digraph per region, with the
	// identifier translations back to the parent.
	Views []ComponentView
	// ArcRegion maps every parent arc to its owning region; arcs
	// partition, so this is total.
	ArcRegion []int32
	// LocalArc maps every parent arc to its identifier inside its
	// owning region's view (the partition makes one flat array enough).
	LocalArc []ArcID

	// Per-vertex region memberships, CSR-packed: most vertices belong
	// to exactly one region, cut vertices to several, isolated vertices
	// to none.
	memberOff []int32
	members   []RegionMember
}

// RegionMember is one (region, local identifier) membership of a parent
// vertex.
type RegionMember struct {
	Region int32
	Local  Vertex
}

// NumRegions returns the number of regions.
func (r *Regions) NumRegions() int { return len(r.Views) }

// RegionsOf returns v's memberships. The slice is owned by the Regions
// and must not be mutated; it is empty for isolated vertices.
func (r *Regions) RegionsOf(v Vertex) []RegionMember {
	return r.members[r.memberOff[v]:r.memberOff[v+1]]
}

// IsCutVertex reports whether v belongs to more than one region.
func (r *Regions) IsCutVertex(v Vertex) bool {
	return r.memberOff[v+1]-r.memberOff[v] > 1
}

// CommonRegion returns the region containing both u and v, together
// with their identifiers inside that region's view. Two distinct
// vertices lie together in at most one region, so the answer is unique;
// ok=false means every u→v dipath must cross regions (or an endpoint is
// isolated). For u == v the first membership is returned. The cost is
// O(memberships), which is O(1) for non-cut vertices.
func (r *Regions) CommonRegion(u, v Vertex) (region int32, lu, lv Vertex, ok bool) {
	for _, mu := range r.RegionsOf(u) {
		if u == v {
			return mu.Region, mu.Local, mu.Local, true
		}
		for _, mv := range r.RegionsOf(v) {
			if mv.Region == mu.Region {
				return mu.Region, mu.Local, mv.Local, true
			}
		}
	}
	return -1, -1, -1, false
}

// CommonRegionNewest is CommonRegion preferring the highest-numbered
// common region when there is more than one. On a fresh biconnected
// decomposition the two coincide (two vertices share at most one
// region), but SplitRegion leaves every suffix endpoint of a crossing
// arc shared between both halves, and for such boundary pairs only the
// newer half (which owns the arcs between them) can route the pair —
// the older half holds them merely as frontier vertices. Engines
// dispatching onto split layouts use this variant so boundary-pair
// traffic lands on the lane that can serve it instead of escalating.
func (r *Regions) CommonRegionNewest(u, v Vertex) (region int32, lu, lv Vertex, ok bool) {
	// Memberships are CSR-packed in ascending region order, so the
	// reverse scan returns the highest common region it meets first.
	mus := r.RegionsOf(u)
	for i := len(mus) - 1; i >= 0; i-- {
		mu := mus[i]
		if u == v {
			return mu.Region, mu.Local, mu.Local, true
		}
		for _, mv := range r.RegionsOf(v) {
			if mv.Region == mu.Region {
				return mu.Region, mu.Local, mv.Local, true
			}
		}
	}
	return -1, -1, -1, false
}

// PartitionRegions splits g into its arc-disjoint regions — the
// biconnected blocks of the underlying undirected multigraph, computed
// by one iterative Hopcroft–Tarjan pass over the incidence structure
// (parallel arcs form two-vertex blocks; the entry edge is skipped by
// identifier, so parallels register as back edges). A second pass carves
// the compact views out of a single global arc scan, exactly as
// PartitionComponents does, preserving relative vertex and arc order so
// that routing over a view is equivalent to routing over the parent for
// region-confined requests.
//
// The intended input is one weakly connected component (a
// ComponentView's graph); disconnected inputs work too — each component
// decomposes independently.
func (g *Digraph) PartitionRegions() *Regions {
	n := g.NumVertices()
	m := g.NumArcs()

	// Undirected incidence, CSR over half-edges.
	off := make([]int32, n+1)
	for _, a := range g.arcs {
		off[a.Tail+1]++
		off[a.Head+1]++
	}
	for v := 0; v < n; v++ {
		off[v+1] += off[v]
	}
	type halfEdge struct {
		arc ArcID
		to  Vertex
	}
	inc := make([]halfEdge, 2*m)
	fill := append([]int32(nil), off[:n]...)
	for _, a := range g.arcs {
		inc[fill[a.Tail]] = halfEdge{a.ID, a.Head}
		fill[a.Tail]++
		inc[fill[a.Head]] = halfEdge{a.ID, a.Tail}
		fill[a.Head]++
	}

	r := &Regions{
		ArcRegion: make([]int32, m),
		LocalArc:  make([]ArcID, m),
	}
	disc := make([]int32, n) // 0 = undiscovered, else discovery time + 1
	low := make([]int32, n)
	vstamp := make([]int32, n) // last region each vertex was recorded in
	for i := range vstamp {
		vstamp[i] = -1
	}
	type memberPair struct {
		v Vertex
		r int32
	}
	var pairs []memberPair
	var edgeStack []ArcID
	type frame struct {
		v         Vertex
		parentArc ArcID
		i         int32 // next half-edge offset within v's incidence row
	}
	var stack []frame
	var timer, nregions int32

	// popBlock retires the block whose first (deepest) edge is `until`:
	// everything above it on the edge stack belongs to the same block.
	popBlock := func(until ArcID) {
		region := nregions
		nregions++
		for {
			e := edgeStack[len(edgeStack)-1]
			edgeStack = edgeStack[:len(edgeStack)-1]
			r.ArcRegion[e] = region
			a := g.arcs[e]
			for _, v := range [2]Vertex{a.Tail, a.Head} {
				if vstamp[v] != region {
					vstamp[v] = region
					pairs = append(pairs, memberPair{v, region})
				}
			}
			if e == until {
				return
			}
		}
	}

	for s := 0; s < n; s++ {
		if disc[s] != 0 {
			continue
		}
		timer++
		disc[s], low[s] = timer, timer
		stack = append(stack[:0], frame{Vertex(s), -1, off[s]})
		for len(stack) > 0 {
			fr := &stack[len(stack)-1]
			u := fr.v
			if fr.i < off[u+1] {
				he := inc[fr.i]
				fr.i++
				if he.arc == fr.parentArc {
					continue // skip only the entry edge: parallels are back edges
				}
				w := he.to
				switch {
				case disc[w] == 0: // tree edge
					edgeStack = append(edgeStack, he.arc)
					timer++
					disc[w], low[w] = timer, timer
					stack = append(stack, frame{w, he.arc, off[w]})
				case disc[w] < disc[u]: // back edge to an ancestor
					edgeStack = append(edgeStack, he.arc)
					if disc[w] < low[u] {
						low[u] = disc[w]
					}
				}
				// disc[w] > disc[u]: the descendant already pushed this
				// edge from its side; nothing to do.
				continue
			}
			childParent := fr.parentArc
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				continue
			}
			p := &stack[len(stack)-1]
			if low[u] < low[p.v] {
				low[p.v] = low[u]
			}
			if low[u] >= disc[p.v] {
				// p.v separates u's subtree: the edges entered since
				// childParent form one block.
				popBlock(childParent)
			}
		}
	}

	// Per-vertex membership CSR (region order within a vertex follows
	// block discovery order — only the set matters).
	r.memberOff = make([]int32, n+1)
	for _, pr := range pairs {
		r.memberOff[pr.v+1]++
	}
	for v := 0; v < n; v++ {
		r.memberOff[v+1] += r.memberOff[v]
	}
	r.members = make([]RegionMember, len(pairs))
	mfill := append([]int32(nil), r.memberOff[:n]...)
	for _, pr := range pairs {
		r.members[mfill[pr.v]] = RegionMember{Region: pr.r, Local: -1}
		mfill[pr.v]++
	}

	// Vertices in ascending parent order: local ids inherit the
	// parent's relative order within every region.
	r.Views = make([]ComponentView, nregions)
	for i := range r.Views {
		r.Views[i].G = &Digraph{}
	}
	for v := 0; v < n; v++ {
		for i := r.memberOff[v]; i < r.memberOff[v+1]; i++ {
			mb := &r.members[i]
			view := &r.Views[mb.Region]
			mb.Local = view.G.AddVertex(g.labels[v])
			view.ToGlobalVertex = append(view.ToGlobalVertex, Vertex(v))
		}
	}
	// Arcs region by region, each region's arcs in ascending parent
	// order (the CSR below is filled by one ascending scan), so every
	// view keeps the parent's relative arc order. Local endpoints
	// resolve through a region-stamped scratch array — O(1) per lookup
	// even for cut vertices with many memberships, keeping the whole
	// carve at O(V + A) (a membership scan per arc endpoint would go
	// quadratic on hub-dominated components).
	arcOff := make([]int32, nregions+1)
	for _, region := range r.ArcRegion {
		arcOff[region+1]++
	}
	for i := int32(0); i < nregions; i++ {
		arcOff[i+1] += arcOff[i]
	}
	regionArcs := make([]ArcID, m)
	afill := append([]int32(nil), arcOff[:nregions]...)
	for _, a := range g.arcs {
		region := r.ArcRegion[a.ID]
		regionArcs[afill[region]] = a.ID
		afill[region]++
	}
	local := make([]Vertex, n)
	localStamp := make([]int32, n)
	for i := range localStamp {
		localStamp[i] = -1
	}
	for region := int32(0); region < nregions; region++ {
		view := &r.Views[region]
		for lv, gv := range view.ToGlobalVertex {
			local[gv] = Vertex(lv)
			localStamp[gv] = region
		}
		for _, id := range regionArcs[arcOff[region]:arcOff[region+1]] {
			a := g.arcs[id]
			if localStamp[a.Tail] != region || localStamp[a.Head] != region {
				panic("digraph: region arc endpoint outside its region")
			}
			r.LocalArc[id] = ArcID(view.G.NumArcs())
			view.G.MustAddArc(local[a.Tail], local[a.Head])
			view.ToGlobalArc = append(view.ToGlobalArc, id)
		}
	}
	return r
}

// SplitRegion splits region reg in two along a vertex bipartition of its
// view: sideB flags each region-local vertex (length = the view's vertex
// count). Arcs with both endpoints on side B move to a new region
// appended after the existing ones; every other arc stays in reg, whose
// rebuilt view keeps the side-A vertices plus the side-B endpoints of
// cut-crossing arcs — those boundary vertices are then shared by both
// halves, exactly as cut vertices are shared between biconnected blocks.
// Untouched regions keep their views (shared, not copied), identifiers
// and local numbering; only the membership CSR and the split arcs'
// ArcRegion/LocalArc rows change, so the result is a fresh Regions while
// the receiver stays valid for readers holding it.
//
// The split preserves arc-disjointness and totality but NOT confinement:
// a dipath between two same-side vertices may need arcs of the other
// side, so an engine re-splitting a live region must escalate in-region
// routing failures to its component overlay (see the adaptive layout
// plane in wdm). Both views keep the parent view's relative vertex and
// arc order, and failed arcs stay failed in the half that inherits them.
// An error is returned (receiver unchanged) when either side would end
// up with no arcs — such a "split" is a rename, not a re-layout.
func (r *Regions) SplitRegion(reg int, sideB []bool) (*Regions, error) {
	if reg < 0 || reg >= len(r.Views) {
		return nil, fmt.Errorf("digraph: SplitRegion: region %d out of range", reg)
	}
	rv := &r.Views[reg]
	n := rv.G.NumVertices()
	if len(sideB) != n {
		return nil, fmt.Errorf("digraph: SplitRegion: bipartition size %d != %d vertices", len(sideB), n)
	}
	// A vertex joins half A when it is on side A or touches a crossing
	// arc (crossing arcs stay in reg, dragging their B endpoint along as
	// a shared boundary vertex).
	inA := make([]bool, n)
	arcsB := 0
	for _, a := range rv.G.Arcs() {
		if sideB[a.Tail] && sideB[a.Head] {
			arcsB++
		} else {
			inA[a.Tail], inA[a.Head] = true, true
		}
	}
	if arcsB == 0 || arcsB == rv.G.NumArcs() {
		return nil, fmt.Errorf("digraph: SplitRegion: bipartition leaves a side without arcs")
	}

	// Carve the two halves in ascending parent-local order, so both views
	// keep the parent view's relative vertex and arc order.
	var viewA, viewB ComponentView
	viewA.G, viewB.G = &Digraph{}, &Digraph{}
	localA := make([]Vertex, n)
	localB := make([]Vertex, n)
	for v := 0; v < n; v++ {
		if inA[v] {
			localA[v] = viewA.G.AddVertex(rv.G.Label(Vertex(v)))
			viewA.ToGlobalVertex = append(viewA.ToGlobalVertex, rv.ToGlobalVertex[v])
		}
		if sideB[v] {
			localB[v] = viewB.G.AddVertex(rv.G.Label(Vertex(v)))
			viewB.ToGlobalVertex = append(viewB.ToGlobalVertex, rv.ToGlobalVertex[v])
		}
	}
	newIdx := int32(len(r.Views))
	out := &Regions{
		Views:     append(append([]ComponentView(nil), r.Views...), viewB),
		ArcRegion: append([]int32(nil), r.ArcRegion...),
		LocalArc:  append([]ArcID(nil), r.LocalArc...),
	}
	out.Views[reg] = viewA
	vA, vB := &out.Views[reg], &out.Views[len(out.Views)-1]
	for _, a := range rv.G.Arcs() {
		parent := rv.ToGlobalArc[a.ID]
		var view *ComponentView
		var la ArcID
		if sideB[a.Tail] && sideB[a.Head] {
			la = vB.G.MustAddArc(localB[a.Tail], localB[a.Head])
			view = vB
			out.ArcRegion[parent] = newIdx
		} else {
			la = vA.G.MustAddArc(localA[a.Tail], localA[a.Head])
			view = vA
		}
		view.ToGlobalArc = append(view.ToGlobalArc, parent)
		out.LocalArc[parent] = la
		if rv.G.ArcFailed(a.ID) {
			// MustAddArc cannot fail here and FailArc of a just-added live
			// arc cannot either.
			_ = view.G.FailArc(la)
		}
	}

	// Rebuild the membership CSR from the final views (the split region's
	// members changed and boundary vertices gained a membership).
	np := len(r.memberOff) - 1
	out.memberOff = make([]int32, np+1)
	for i := range out.Views {
		for _, gv := range out.Views[i].ToGlobalVertex {
			out.memberOff[gv+1]++
		}
	}
	for v := 0; v < np; v++ {
		out.memberOff[v+1] += out.memberOff[v]
	}
	out.members = make([]RegionMember, out.memberOff[np])
	mfill := append([]int32(nil), out.memberOff[:np]...)
	for i := range out.Views {
		for lv, gv := range out.Views[i].ToGlobalVertex {
			out.members[mfill[gv]] = RegionMember{Region: int32(i), Local: Vertex(lv)}
			mfill[gv]++
		}
	}
	return out, nil
}
