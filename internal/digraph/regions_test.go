package digraph

import (
	"math/rand"
	"testing"
)

// diamondChain builds k diamonds (a->b->d, a->c->d) glued in a chain at
// their tips: d_i == a_{i+1}. Every glue vertex is a cut vertex and each
// diamond is one biconnected block, so the expected decomposition is
// exactly k regions of 4 vertices.
func diamondChain(k int) *Digraph {
	g := New(0)
	prev := g.AddVertex("")
	for i := 0; i < k; i++ {
		b := g.AddVertex("")
		c := g.AddVertex("")
		d := g.AddVertex("")
		g.MustAddArc(prev, b)
		g.MustAddArc(prev, c)
		g.MustAddArc(b, d)
		g.MustAddArc(c, d)
		prev = d
	}
	return g
}

func TestPartitionRegionsDiamondChain(t *testing.T) {
	const k = 5
	g := diamondChain(k)
	r := g.PartitionRegions()
	if r.NumRegions() != k {
		t.Fatalf("NumRegions = %d, want %d", r.NumRegions(), k)
	}
	for i, view := range r.Views {
		if view.G.NumVertices() != 4 || view.G.NumArcs() != 4 {
			t.Fatalf("region %d: %d vertices / %d arcs, want 4/4",
				i, view.G.NumVertices(), view.G.NumArcs())
		}
	}
	// Glue vertices (every diamond tip except the last) are cut vertices.
	for i := 0; i <= k; i++ {
		v := Vertex(3 * i)
		wantCut := i > 0 && i < k
		if r.IsCutVertex(v) != wantCut {
			t.Fatalf("IsCutVertex(%d) = %v, want %v", v, !wantCut, wantCut)
		}
	}
	// Vertices inside one diamond share a region; tips of different
	// diamonds do not.
	if _, _, _, ok := r.CommonRegion(0, 3); !ok {
		t.Fatal("0 and 3 should share the first diamond's region")
	}
	if _, _, _, ok := r.CommonRegion(0, 6); ok {
		t.Fatal("0 and 6 lie in different diamonds but report a common region")
	}
}

func TestPartitionRegionsParallelArcs(t *testing.T) {
	// Parallel arcs u->v form a cycle of the underlying multigraph, so
	// u-v is one biconnected block; a pendant v->w is its own block.
	g := New(3)
	g.MustAddArc(0, 1)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 2)
	r := g.PartitionRegions()
	if r.NumRegions() != 2 {
		t.Fatalf("NumRegions = %d, want 2", r.NumRegions())
	}
	if r.ArcRegion[0] != r.ArcRegion[1] {
		t.Fatal("parallel arcs split across regions")
	}
	if r.ArcRegion[2] == r.ArcRegion[0] {
		t.Fatal("pendant arc merged into the parallel block")
	}
	if !r.IsCutVertex(1) {
		t.Fatal("vertex 1 should be a cut vertex")
	}
}

// TestPartitionRegionsInvariants checks the decomposition contract on
// random DAGs: arcs partition exactly, views translate back faithfully
// in parent order, two regions share at most one vertex, and any arc
// joining two co-region vertices belongs to that region.
func TestPartitionRegionsInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(40)
		m := rng.Intn(3 * n)
		g := New(n)
		for k := 0; k < m; k++ {
			u := rng.Intn(n - 1)
			v := u + 1 + rng.Intn(n-u-1)
			g.MustAddArc(Vertex(u), Vertex(v))
		}
		r := g.PartitionRegions()

		seen := make([]bool, g.NumArcs())
		for ri, view := range r.Views {
			prevArc := ArcID(-1)
			for la, ga := range view.ToGlobalArc {
				if seen[ga] {
					t.Fatalf("trial %d: arc %d in two regions", trial, ga)
				}
				seen[ga] = true
				if r.ArcRegion[ga] != int32(ri) || r.LocalArc[ga] != ArcID(la) {
					t.Fatalf("trial %d: arc translation maps disagree", trial)
				}
				if ga <= prevArc {
					t.Fatalf("trial %d: region %d arcs out of parent order", trial, ri)
				}
				prevArc = ga
				// The view's arc joins the translated endpoints.
				va := view.G.Arc(ArcID(la))
				pa := g.Arc(ga)
				if view.ToGlobalVertex[va.Tail] != pa.Tail || view.ToGlobalVertex[va.Head] != pa.Head {
					t.Fatalf("trial %d: arc endpoints mistranslated", trial)
				}
			}
			prevV := Vertex(-1)
			for _, gv := range view.ToGlobalVertex {
				if gv <= prevV {
					t.Fatalf("trial %d: region %d vertices out of parent order", trial, ri)
				}
				prevV = gv
			}
		}
		for a := 0; a < g.NumArcs(); a++ {
			if !seen[a] {
				t.Fatalf("trial %d: arc %d in no region", trial, a)
			}
		}

		// Two regions share at most one vertex; memberships round-trip.
		type pair struct{ a, b int32 }
		shared := map[pair]Vertex{}
		for v := 0; v < n; v++ {
			ms := r.RegionsOf(Vertex(v))
			for _, m1 := range ms {
				if r.Views[m1.Region].ToGlobalVertex[m1.Local] != Vertex(v) {
					t.Fatalf("trial %d: membership local id mistranslated", trial)
				}
				for _, m2 := range ms {
					if m1.Region >= m2.Region {
						continue
					}
					key := pair{m1.Region, m2.Region}
					if prev, ok := shared[key]; ok && prev != Vertex(v) {
						t.Fatalf("trial %d: regions %d and %d share vertices %d and %d",
							trial, m1.Region, m2.Region, prev, v)
					}
					shared[key] = Vertex(v)
				}
			}
		}

		// Any arc between co-region vertices belongs to that region.
		for _, a := range g.Arcs() {
			region, _, _, ok := r.CommonRegion(a.Tail, a.Head)
			if !ok {
				t.Fatalf("trial %d: arc %d endpoints share no region", trial, a.ID)
			}
			if region != r.ArcRegion[a.ID] {
				t.Fatalf("trial %d: arc %d owned by region %d but endpoints share %d",
					trial, a.ID, r.ArcRegion[a.ID], region)
			}
		}
	}
}

// TestRegionRouteConfinement checks the confinement property the
// sharded engine relies on: for co-region endpoints, BFS over the
// parent yields a route lying entirely inside the region, and BFS over
// the region view yields the identical route.
func TestRegionRouteConfinement(t *testing.T) {
	g := diamondChain(6)
	r := g.PartitionRegions()
	n := g.NumVertices()

	// Parent-side BFS (mirrors route.Router's order: out-arcs in
	// insertion order).
	bfs := func(gr *Digraph, src, dst Vertex) []ArcID {
		prev := make([]ArcID, gr.NumVertices())
		seen := make([]bool, gr.NumVertices())
		for i := range prev {
			prev[i] = -1
		}
		queue := []Vertex{src}
		seen[src] = true
		for head := 0; head < len(queue); head++ {
			for _, a := range gr.OutArcs(queue[head]) {
				h := gr.Arc(a).Head
				if !seen[h] {
					seen[h] = true
					prev[h] = a
					queue = append(queue, h)
				}
			}
		}
		if !seen[dst] {
			return nil
		}
		var arcs []ArcID
		for v := dst; v != src; v = gr.Arc(prev[v]).Tail {
			arcs = append([]ArcID{prev[v]}, arcs...)
		}
		return arcs
	}

	checked := 0
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			region, lu, lv, ok := r.CommonRegion(Vertex(u), Vertex(v))
			if !ok {
				continue
			}
			global := bfs(g, Vertex(u), Vertex(v))
			local := bfs(r.Views[region].G, lu, lv)
			if (global == nil) != (local == nil) {
				t.Fatalf("%d->%d: reachability diverges between parent and region", u, v)
			}
			if global == nil {
				continue
			}
			if len(global) != len(local) {
				t.Fatalf("%d->%d: route lengths diverge", u, v)
			}
			for i := range global {
				if r.ArcRegion[global[i]] != region {
					t.Fatalf("%d->%d: global route leaves the common region", u, v)
				}
				if r.Views[region].ToGlobalArc[local[i]] != global[i] {
					t.Fatalf("%d->%d: region route diverges from the global one", u, v)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no co-region routable pairs exercised")
	}
}
