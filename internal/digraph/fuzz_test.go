package digraph

import "testing"

// FuzzPartitionRegions checks the structural contract the two-level
// engine is built on, on random DAGs (arcs oriented low→high vertex,
// parallel arcs allowed): regions partition the arcs — every arc lies
// in exactly one region with consistent LocalArc/ToGlobalArc and
// endpoint translations — and two regions meet only at vertices
// reported as cut vertices.
func FuzzPartitionRegions(f *testing.F) {
	f.Add([]byte{6, 0, 1, 1, 2, 2, 3, 0, 3, 3, 4, 4, 5, 3, 5})
	f.Add([]byte{4, 0, 1, 0, 1, 1, 2, 2, 3})
	f.Add([]byte{9, 0, 8, 1, 7, 2, 6, 3, 5, 4, 8, 0, 4})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			t.Skip("not enough bytes")
		}
		n := 2 + int(data[0]%20)
		g := New(n)
		for i := 1; i+1 < len(data); i += 2 {
			u := int(data[i]) % n
			v := int(data[i+1]) % n
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u // orient low→high: always a DAG
			}
			if _, err := g.AddArc(Vertex(u), Vertex(v)); err != nil {
				t.Fatal(err)
			}
		}
		r := g.PartitionRegions()

		// Arc partition: every arc in exactly one region, with exact
		// identifier and endpoint translations both ways.
		seen := make([]bool, g.NumArcs())
		total := 0
		for ri, view := range r.Views {
			for la, ga := range view.ToGlobalArc {
				if r.ArcRegion[ga] != int32(ri) {
					t.Fatalf("arc %d listed by region %d but ArcRegion says %d", ga, ri, r.ArcRegion[ga])
				}
				if r.LocalArc[ga] != ArcID(la) {
					t.Fatalf("arc %d: LocalArc=%d but view lists it as %d", ga, r.LocalArc[ga], la)
				}
				if seen[ga] {
					t.Fatalf("arc %d appears in two regions", ga)
				}
				seen[ga] = true
				total++
				want, got := g.Arc(ga), view.G.Arc(ArcID(la))
				if view.ToGlobalVertex[got.Tail] != want.Tail || view.ToGlobalVertex[got.Head] != want.Head {
					t.Fatalf("arc %d endpoints translate to %v->%v, want %v->%v",
						ga, view.ToGlobalVertex[got.Tail], view.ToGlobalVertex[got.Head], want.Tail, want.Head)
				}
			}
		}
		if total != g.NumArcs() {
			t.Fatalf("regions cover %d arcs, graph has %d", total, g.NumArcs())
		}

		// Region views are standalone: their arc counts sum to the
		// parent's (arc-disjointness in the aggregate).
		sum := 0
		for _, view := range r.Views {
			sum += view.G.NumArcs()
		}
		if sum != g.NumArcs() {
			t.Fatalf("region arc counts sum to %d, want %d", sum, g.NumArcs())
		}

		// Cut vertices are exactly the vertices shared by ≥2 regions,
		// and the CSR memberships agree with the views.
		memberships := make([]int, n)
		for _, view := range r.Views {
			for _, gv := range view.ToGlobalVertex {
				memberships[gv]++
			}
		}
		for v := 0; v < n; v++ {
			if shared, cut := memberships[v] > 1, r.IsCutVertex(Vertex(v)); shared != cut {
				t.Fatalf("vertex %d in %d regions but IsCutVertex=%v", v, memberships[v], cut)
			}
			if got := len(r.RegionsOf(Vertex(v))); got != memberships[v] {
				t.Fatalf("vertex %d: RegionsOf lists %d memberships, views list %d", v, got, memberships[v])
			}
		}
	})
}
