package digraph

// ComponentView is one weakly connected component of a digraph,
// materialised as a compact standalone digraph plus the identifier
// translations back to the parent. Local identifiers are dense and
// ordered: vertex i of G is the i-th smallest parent vertex of the
// component, and arcs appear in parent arc-identifier order, so BFS and
// Dijkstra traversals over the view visit neighbours in exactly the
// order they would in the parent — routing over a view is equivalent to
// routing over the parent restricted to the component.
type ComponentView struct {
	G              *Digraph
	ToGlobalVertex []Vertex // local vertex -> parent vertex
	ToGlobalArc    []ArcID  // local arc -> parent arc
}

// ComponentLabels returns, for every vertex, the index of its weakly
// connected component (directions ignored). Components are numbered by
// their smallest vertex, so the labelling is stable across runs —
// the partition contract shard dispatchers rely on. Failed arcs still
// connect: the labelling describes the installed fiber plant, which is
// what the static shard layout is built on.
func (g *Digraph) ComponentLabels() []int32 {
	return g.componentLabels(false)
}

// LiveComponentLabels is ComponentLabels restricted to non-failed arcs:
// the connectivity traffic can actually use right now. When a cut
// splits a component, vertices on opposite sides of the split get
// different labels here while ComponentLabels still agrees — the
// difference is exactly the set of pairs that became unroutable.
func (g *Digraph) LiveComponentLabels() []int32 {
	return g.componentLabels(true)
}

func (g *Digraph) componentLabels(skipFailed bool) []int32 {
	n := g.NumVertices()
	label := make([]int32, n)
	for i := range label {
		label[i] = -1
	}
	queue := make([]Vertex, 0, n)
	var ncomp int32
	for s := 0; s < n; s++ {
		if label[s] >= 0 {
			continue
		}
		label[s] = ncomp
		queue = append(queue[:0], Vertex(s))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, a := range g.out[v] {
				if skipFailed && g.ArcFailed(a) {
					continue
				}
				if h := g.arcs[a].Head; label[h] < 0 {
					label[h] = ncomp
					queue = append(queue, h)
				}
			}
			for _, a := range g.in[v] {
				if skipFailed && g.ArcFailed(a) {
					continue
				}
				if t := g.arcs[a].Tail; label[t] < 0 {
					label[t] = ncomp
					queue = append(queue, t)
				}
			}
		}
		ncomp++
	}
	return label
}

// PartitionComponents splits g into its weakly connected components:
// one compact ComponentView per component (ordered by smallest vertex),
// the vertex→component labelling, and the vertex→local-index
// translation. Everything is built in one O(V+A) pass — per-component
// arc lists are carved out of the single global arc scan, so the cost
// does not multiply with the component count and no view ever holds a
// copy of the full digraph. Dipaths never cross components, which makes
// the views independent substrates: a session per view touches disjoint
// state, the foundation of the sharded provisioning engine.
func (g *Digraph) PartitionComponents() (views []ComponentView, label []int32, localVertex []Vertex) {
	label = g.ComponentLabels()
	n := g.NumVertices()
	ncomp := 0
	for _, l := range label {
		if int(l) >= ncomp {
			ncomp = int(l) + 1
		}
	}
	views = make([]ComponentView, ncomp)
	localVertex = make([]Vertex, n)
	for c := range views {
		views[c].G = &Digraph{}
	}
	// Vertices in ascending parent order: local ids inherit the parent's
	// relative order within the component.
	for v := 0; v < n; v++ {
		view := &views[label[v]]
		localVertex[v] = view.G.AddVertex(g.labels[v])
		view.ToGlobalVertex = append(view.ToGlobalVertex, Vertex(v))
	}
	// Arcs in ascending parent order, one pass: adjacency lists of every
	// view keep the parent's relative arc order.
	for _, a := range g.arcs {
		view := &views[label[a.Tail]]
		view.G.MustAddArc(localVertex[a.Tail], localVertex[a.Head])
		view.ToGlobalArc = append(view.ToGlobalArc, a.ID)
	}
	return views, label, localVertex
}
