package digraph

// Fiber-cut primitive tests: FailArc/RestoreArc bookkeeping, the
// topology epoch, failure-aware live component labels, and Clone
// carrying failure state.

import "testing"

func TestFailRestoreArc(t *testing.T) {
	g := New(3)
	a0 := g.MustAddArc(0, 1)
	a1 := g.MustAddArc(1, 2)
	if g.NumFailedArcs() != 0 || g.ArcFailed(a0) {
		t.Fatalf("fresh graph reports failures")
	}
	if err := g.FailArc(a0); err != nil {
		t.Fatal(err)
	}
	if !g.ArcFailed(a0) || g.ArcFailed(a1) || g.NumFailedArcs() != 1 {
		t.Fatalf("failure state wrong after one cut")
	}
	// Double cut, unknown arc, and restore of an intact arc are errors.
	if err := g.FailArc(a0); err == nil {
		t.Fatal("double cut accepted")
	}
	if err := g.FailArc(ArcID(99)); err == nil {
		t.Fatal("unknown arc cut accepted")
	}
	if err := g.RestoreArc(a1); err == nil {
		t.Fatal("restore of intact arc accepted")
	}
	if err := g.RestoreArc(ArcID(-1)); err == nil {
		t.Fatal("negative arc restore accepted")
	}
	if err := g.RestoreArc(a0); err != nil {
		t.Fatal(err)
	}
	if g.ArcFailed(a0) || g.NumFailedArcs() != 0 {
		t.Fatalf("failure state wrong after repair")
	}
	// Identifiers, endpoints and adjacency positions survive a cut.
	if err := g.FailArc(a1); err != nil {
		t.Fatal(err)
	}
	if arc := g.Arc(a1); arc.Tail != 1 || arc.Head != 2 {
		t.Fatalf("cut arc lost endpoints: %d->%d", arc.Tail, arc.Head)
	}
	if g.NumArcs() != 2 {
		t.Fatalf("cut changed arc count: %d", g.NumArcs())
	}
}

func TestTopologyEpoch(t *testing.T) {
	g := New(3)
	e0 := g.TopologyEpoch()
	a := g.MustAddArc(0, 1)
	if g.TopologyEpoch() == e0 {
		t.Fatal("AddArc did not bump the epoch")
	}
	e1 := g.TopologyEpoch()
	if err := g.FailArc(a); err != nil {
		t.Fatal(err)
	}
	if g.TopologyEpoch() == e1 {
		t.Fatal("FailArc did not bump the epoch")
	}
	e2 := g.TopologyEpoch()
	if err := g.RestoreArc(a); err != nil {
		t.Fatal(err)
	}
	if g.TopologyEpoch() == e2 {
		t.Fatal("RestoreArc did not bump the epoch")
	}
}

func TestLiveComponentLabels(t *testing.T) {
	// 0 -> 1 -> 2 plus an isolated 3: one chain component, one singleton.
	g := New(4)
	g.MustAddArc(0, 1)
	bridge := g.MustAddArc(1, 2)
	same := func(labels []int32, u, v Vertex) bool { return labels[u] == labels[v] }

	live := g.LiveComponentLabels()
	if !same(live, 0, 2) || same(live, 0, 3) {
		t.Fatalf("intact labels wrong: %v", live)
	}
	if err := g.FailArc(bridge); err != nil {
		t.Fatal(err)
	}
	// Static labels ignore failures (shard layout is stable); live
	// labels see the split.
	static := g.ComponentLabels()
	if !same(static, 0, 2) {
		t.Fatalf("static labels saw the cut: %v", static)
	}
	live = g.LiveComponentLabels()
	if same(live, 0, 2) || !same(live, 0, 1) {
		t.Fatalf("live labels missed the split: %v", live)
	}
	if err := g.RestoreArc(bridge); err != nil {
		t.Fatal(err)
	}
	live = g.LiveComponentLabels()
	if !same(live, 0, 2) {
		t.Fatalf("live labels missed the repair: %v", live)
	}
}

func TestCloneCarriesFailures(t *testing.T) {
	g := New(3)
	a0 := g.MustAddArc(0, 1)
	g.MustAddArc(1, 2)
	if err := g.FailArc(a0); err != nil {
		t.Fatal(err)
	}
	c := g.Clone()
	if !c.ArcFailed(a0) || c.NumFailedArcs() != 1 {
		t.Fatal("clone dropped failure state")
	}
	if c.TopologyEpoch() != g.TopologyEpoch() {
		t.Fatal("clone dropped the epoch")
	}
	// Clones diverge independently.
	if err := c.RestoreArc(a0); err != nil {
		t.Fatal(err)
	}
	if !g.ArcFailed(a0) || c.ArcFailed(a0) {
		t.Fatal("clone shares failure state with the original")
	}
}
