package digraph

import (
	"math/rand"
	"testing"
)

// buildMultiComponent returns a digraph with several known components:
// a 3-path, an isolated vertex, and a diamond.
func buildMultiComponent(t *testing.T) *Digraph {
	t.Helper()
	g := New(9)
	// Component of {0,1,2}: 0->1->2.
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 2)
	// Vertex 3 isolated.
	// Component of {4,5,6,7}: diamond 4->5, 4->6, 5->7, 6->7.
	g.MustAddArc(4, 5)
	g.MustAddArc(4, 6)
	g.MustAddArc(5, 7)
	g.MustAddArc(6, 7)
	// Component of {8} joined to {0,1,2} against arc direction: 8->0.
	g.MustAddArc(8, 0)
	return g
}

func TestComponentLabels(t *testing.T) {
	g := buildMultiComponent(t)
	label := g.ComponentLabels()
	want := []int32{0, 0, 0, 1, 2, 2, 2, 2, 0} // 8 joins component 0 weakly
	for v, l := range label {
		if l != want[v] {
			t.Fatalf("label[%d] = %d, want %d (all %v)", v, l, want[v], label)
		}
	}
}

func TestPartitionComponents(t *testing.T) {
	g := buildMultiComponent(t)
	views, label, localVertex := g.PartitionComponents()
	if len(views) != 3 {
		t.Fatalf("got %d components, want 3", len(views))
	}
	totalV, totalA := 0, 0
	for c, view := range views {
		totalV += view.G.NumVertices()
		totalA += view.G.NumArcs()
		if len(view.ToGlobalVertex) != view.G.NumVertices() {
			t.Fatalf("component %d: %d vertex translations for %d vertices",
				c, len(view.ToGlobalVertex), view.G.NumVertices())
		}
		if len(view.ToGlobalArc) != view.G.NumArcs() {
			t.Fatalf("component %d: %d arc translations for %d arcs",
				c, len(view.ToGlobalArc), view.G.NumArcs())
		}
		// Round trips: local -> global -> local, and every translated arc
		// joins the translated endpoints.
		for lv, gv := range view.ToGlobalVertex {
			if label[gv] != int32(c) {
				t.Fatalf("component %d holds vertex %d labelled %d", c, gv, label[gv])
			}
			if localVertex[gv] != Vertex(lv) {
				t.Fatalf("localVertex[%d] = %d, want %d", gv, localVertex[gv], lv)
			}
		}
		for la, ga := range view.ToGlobalArc {
			larc, garc := view.G.Arc(ArcID(la)), g.Arc(ga)
			if view.ToGlobalVertex[larc.Tail] != garc.Tail || view.ToGlobalVertex[larc.Head] != garc.Head {
				t.Fatalf("component %d arc %d translates to %d but endpoints differ", c, la, ga)
			}
		}
	}
	if totalV != g.NumVertices() || totalA != g.NumArcs() {
		t.Fatalf("partition covers %d/%d vertices and %d/%d arcs",
			totalV, g.NumVertices(), totalA, g.NumArcs())
	}
}

// TestPartitionPreservesArcOrder pins the order contract: within a
// component, both vertices and adjacency lists keep the parent's
// relative order, so order-sensitive traversals (BFS tie-breaking) are
// equivalent on the view and on the parent.
func TestPartitionPreservesArcOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := New(30)
	for i := 0; i < 60; i++ {
		u, v := rng.Intn(30), rng.Intn(30)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u // keep it a DAG
		}
		g.MustAddArc(Vertex(u), Vertex(v))
	}
	views, _, localVertex := g.PartitionComponents()
	for _, view := range views {
		for lv := 0; lv < view.G.NumVertices(); lv++ {
			gv := view.ToGlobalVertex[lv]
			out := view.G.OutArcs(Vertex(lv))
			gout := g.OutArcs(gv)
			if len(out) != len(gout) {
				t.Fatalf("vertex %d: %d local out-arcs, %d global", gv, len(out), len(gout))
			}
			for i, la := range out {
				if view.ToGlobalArc[la] != gout[i] {
					t.Fatalf("vertex %d out-arc %d: local order diverges from parent", gv, i)
				}
				if head := view.G.Arc(la).Head; head != localVertex[g.Arc(gout[i]).Head] {
					t.Fatalf("vertex %d out-arc %d: head mismatch", gv, i)
				}
			}
		}
	}
}
