package digraph

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(0)
	if g.NumVertices() != 0 || g.NumArcs() != 0 {
		t.Fatalf("empty graph has n=%d m=%d", g.NumVertices(), g.NumArcs())
	}
	if len(g.Sources()) != 0 || len(g.Sinks()) != 0 {
		t.Fatalf("empty graph has sources/sinks")
	}
}

func TestAddVertexAssignsDenseIDs(t *testing.T) {
	g := New(0)
	for i := 0; i < 5; i++ {
		v := g.AddVertex("")
		if int(v) != i {
			t.Fatalf("vertex id = %d, want %d", v, i)
		}
	}
	if g.NumVertices() != 5 {
		t.Fatalf("n = %d, want 5", g.NumVertices())
	}
}

func TestAddArcBasics(t *testing.T) {
	g := New(3)
	a, err := g.AddArc(0, 1)
	if err != nil {
		t.Fatalf("AddArc: %v", err)
	}
	if a != 0 {
		t.Fatalf("first arc id = %d, want 0", a)
	}
	b, err := g.AddArc(1, 2)
	if err != nil {
		t.Fatalf("AddArc: %v", err)
	}
	if b != 1 {
		t.Fatalf("second arc id = %d, want 1", b)
	}
	if got := g.Arc(a); got.Tail != 0 || got.Head != 1 {
		t.Fatalf("arc 0 = %+v", got)
	}
	if g.OutDegree(0) != 1 || g.InDegree(1) != 1 || g.InDegree(2) != 1 {
		t.Fatalf("degrees wrong: out0=%d in1=%d in2=%d", g.OutDegree(0), g.InDegree(1), g.InDegree(2))
	}
}

func TestAddArcRejectsSelfLoop(t *testing.T) {
	g := New(2)
	if _, err := g.AddArc(1, 1); err == nil {
		t.Fatal("self-loop accepted")
	}
}

func TestAddArcRejectsOutOfRange(t *testing.T) {
	g := New(2)
	if _, err := g.AddArc(-1, 0); err == nil {
		t.Fatal("negative tail accepted")
	}
	if _, err := g.AddArc(0, 2); err == nil {
		t.Fatal("out-of-range head accepted")
	}
}

func TestMustAddArcPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddArc did not panic on bad input")
		}
	}()
	g := New(1)
	g.MustAddArc(0, 5)
}

func TestParallelArcsAllowed(t *testing.T) {
	g := New(2)
	g.MustAddArc(0, 1)
	g.MustAddArc(0, 1)
	if g.NumArcs() != 2 {
		t.Fatalf("m = %d, want 2", g.NumArcs())
	}
	if got := g.ArcsBetween(0, 1); len(got) != 2 {
		t.Fatalf("ArcsBetween = %v, want two arcs", got)
	}
}

func TestSourcesAndSinks(t *testing.T) {
	// 0 -> 1 -> 2, 3 isolated.
	g := New(4)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 2)
	srcs, sinks := g.Sources(), g.Sinks()
	wantSrc := []Vertex{0, 3}
	wantSink := []Vertex{2, 3}
	if len(srcs) != 2 || srcs[0] != wantSrc[0] || srcs[1] != wantSrc[1] {
		t.Fatalf("sources = %v, want %v", srcs, wantSrc)
	}
	if len(sinks) != 2 || sinks[0] != wantSink[0] || sinks[1] != wantSink[1] {
		t.Fatalf("sinks = %v, want %v", sinks, wantSink)
	}
	if !g.IsSource(0) || g.IsSource(1) || !g.IsSink(2) || g.IsSink(1) {
		t.Fatal("IsSource/IsSink disagree with Sources/Sinks")
	}
}

func TestArcBetween(t *testing.T) {
	g := New(3)
	id := g.MustAddArc(0, 1)
	if got, ok := g.ArcBetween(0, 1); !ok || got != id {
		t.Fatalf("ArcBetween(0,1) = %d,%v", got, ok)
	}
	if _, ok := g.ArcBetween(1, 0); ok {
		t.Fatal("ArcBetween(1,0) found nonexistent arc")
	}
	if _, ok := g.ArcBetween(-1, 0); ok {
		t.Fatal("ArcBetween(-1,0) found arc for invalid vertex")
	}
}

func TestLabels(t *testing.T) {
	g := New(0)
	v := g.AddVertex("a")
	if g.Label(v) != "a" || g.VertexName(v) != "a" {
		t.Fatalf("label = %q name = %q", g.Label(v), g.VertexName(v))
	}
	w := g.AddVertex("")
	if g.VertexName(w) != "v1" {
		t.Fatalf("default name = %q, want v1", g.VertexName(w))
	}
	g.SetLabel(w, "b")
	if g.Label(w) != "b" {
		t.Fatalf("after SetLabel, label = %q", g.Label(w))
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New(2)
	g.MustAddArc(0, 1)
	c := g.Clone()
	c.AddVertex("x")
	c.MustAddArc(0, 2)
	if g.NumVertices() != 2 || g.NumArcs() != 1 {
		t.Fatalf("mutating clone changed original: n=%d m=%d", g.NumVertices(), g.NumArcs())
	}
	if !Equal(g, g.Clone()) {
		t.Fatal("clone not Equal to original")
	}
}

func TestInducedSubgraph(t *testing.T) {
	// 0->1->2->3 plus 0->2; keep {1,2,3}.
	g := New(4)
	g.MustAddArc(0, 1)
	a12 := g.MustAddArc(1, 2)
	a23 := g.MustAddArc(2, 3)
	g.MustAddArc(0, 2)
	sub, n2o, a2o, err := g.InducedSubgraph([]Vertex{1, 2, 3})
	if err != nil {
		t.Fatalf("InducedSubgraph: %v", err)
	}
	if sub.NumVertices() != 3 || sub.NumArcs() != 2 {
		t.Fatalf("sub n=%d m=%d, want 3,2", sub.NumVertices(), sub.NumArcs())
	}
	if n2o[0] != 1 || n2o[1] != 2 || n2o[2] != 3 {
		t.Fatalf("newToOld = %v", n2o)
	}
	if a2o[0] != a12 || a2o[1] != a23 {
		t.Fatalf("arcNewToOld = %v, want [%d %d]", a2o, a12, a23)
	}
}

func TestInducedSubgraphRejectsDuplicates(t *testing.T) {
	g := New(3)
	if _, _, _, err := g.InducedSubgraph([]Vertex{0, 0}); err == nil {
		t.Fatal("duplicate vertices accepted")
	}
	if _, _, _, err := g.InducedSubgraph([]Vertex{7}); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
}

func TestDOTOutput(t *testing.T) {
	g := New(2)
	g.SetLabel(0, "src")
	g.MustAddArc(0, 1)
	dot := g.DOT("T")
	for _, want := range []string{"digraph T {", `"src" -> "v1";`, "}"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, dot)
		}
	}
	if !strings.Contains(g.DOT(""), "digraph G {") {
		t.Fatal("empty name did not default to G")
	}
}

func TestStringMentionsArcs(t *testing.T) {
	g := New(2)
	g.MustAddArc(0, 1)
	s := g.String()
	if !strings.Contains(s, "v0->v1") {
		t.Fatalf("String() = %q", s)
	}
}

func TestEqualDistinguishesGraphs(t *testing.T) {
	g := New(3)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 2)
	h := New(3)
	h.MustAddArc(1, 2)
	h.MustAddArc(0, 1) // same arcs, different insertion order
	if !Equal(g, h) {
		t.Fatal("Equal should ignore insertion order")
	}
	h2 := New(3)
	h2.MustAddArc(0, 1)
	h2.MustAddArc(0, 2)
	if Equal(g, h2) {
		t.Fatal("Equal confused different arc sets")
	}
	if Equal(g, New(4)) {
		t.Fatal("Equal confused different vertex counts")
	}
}

func TestVerticesAndArcsCopies(t *testing.T) {
	g := New(2)
	g.MustAddArc(0, 1)
	vs := g.Vertices()
	if len(vs) != 2 || vs[0] != 0 || vs[1] != 1 {
		t.Fatalf("Vertices = %v", vs)
	}
	arcs := g.Arcs()
	arcs[0].Tail = 99 // must not affect graph
	if g.Arc(0).Tail != 0 {
		t.Fatal("Arcs() returned aliased storage")
	}
}

// Property: for random arc insertions the sum of out-degrees and the sum
// of in-degrees both equal the number of arcs.
func TestDegreeSumProperty(t *testing.T) {
	f := func(pairs []struct{ T, H uint8 }) bool {
		g := New(16)
		for _, p := range pairs {
			t, h := Vertex(p.T%16), Vertex(p.H%16)
			if t == h {
				continue
			}
			g.MustAddArc(t, h)
		}
		outSum, inSum := 0, 0
		for v := 0; v < g.NumVertices(); v++ {
			outSum += g.OutDegree(Vertex(v))
			inSum += g.InDegree(Vertex(v))
		}
		return outSum == g.NumArcs() && inSum == g.NumArcs()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SortedArcIDs is a permutation of all arc ids and is sorted.
func TestSortedArcIDsProperty(t *testing.T) {
	f := func(pairs []struct{ T, H uint8 }) bool {
		g := New(8)
		for _, p := range pairs {
			t, h := Vertex(p.T%8), Vertex(p.H%8)
			if t == h {
				continue
			}
			g.MustAddArc(t, h)
		}
		ids := g.SortedArcIDs()
		if len(ids) != g.NumArcs() {
			return false
		}
		seen := make(map[ArcID]bool)
		for i, id := range ids {
			if seen[id] {
				return false
			}
			seen[id] = true
			if i > 0 {
				a, b := g.Arc(ids[i-1]), g.Arc(id)
				if a.Tail > b.Tail || (a.Tail == b.Tail && a.Head > b.Head) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
