// Package digraph implements the directed-graph substrate used throughout
// wavedag: a compact digraph with dense integer vertex and arc identifiers,
// constant-time degree queries, and deterministic iteration order.
//
// The representation is tuned for the algorithms of Bermond & Cosnard
// (IPDPS 2007): arcs carry stable identifiers so that dipaths, loads and
// colorings can be indexed by arc, and the in/out adjacency is kept in
// insertion order so that repeated runs are reproducible.
package digraph

import (
	"fmt"
	"sort"
	"strings"
)

// Vertex identifies a vertex of a Digraph. Identifiers are dense:
// the vertices of a graph with n vertices are exactly 0..n-1.
type Vertex int

// ArcID identifies an arc of a Digraph. Identifiers are dense:
// the arcs of a graph with m arcs are exactly 0..m-1.
type ArcID int

// Arc is a directed edge from Tail to Head.
type Arc struct {
	ID   ArcID
	Tail Vertex
	Head Vertex
}

// Digraph is a mutable directed multigraph. The zero value is an empty
// graph ready to use. Vertices and arcs can only be added, never removed;
// algorithms that need deletion work on index subsets instead, which keeps
// identifiers stable.
//
// Arcs can, however, be failed and restored in place (FailArc /
// RestoreArc): a failed arc keeps its identifier, its endpoints and its
// position in every adjacency list — loads, colorings and dipaths
// indexed by arc stay valid — but failure-aware traversals (the routing
// layer, LiveComponentLabels) skip it. This is the fiber-cut model of
// the survivability engine: a cut removes capacity, never renames
// anything.
type Digraph struct {
	labels []string
	arcs   []Arc
	out    [][]ArcID // out[v] = arcs with Tail v, in insertion order
	in     [][]ArcID // in[v] = arcs with Head v, in insertion order

	failed    []bool // failed[a] = arc a is cut; nil until the first cut
	numFailed int
	topoEpoch uint64 // bumped by AddArc/FailArc/RestoreArc; see TopologyEpoch
}

// New returns an empty digraph with n unlabeled vertices.
func New(n int) *Digraph {
	g := &Digraph{}
	for i := 0; i < n; i++ {
		g.AddVertex("")
	}
	return g
}

// AddVertex adds a vertex with the given label (may be empty) and returns
// its identifier.
func (g *Digraph) AddVertex(label string) Vertex {
	v := Vertex(len(g.labels))
	g.labels = append(g.labels, label)
	g.out = append(g.out, nil)
	g.in = append(g.in, nil)
	return v
}

// AddArc adds an arc from tail to head and returns its identifier.
// Self-loops are rejected because every graph in this module is a DAG.
// Parallel arcs are permitted (the model is a multigraph).
func (g *Digraph) AddArc(tail, head Vertex) (ArcID, error) {
	if err := g.checkVertex(tail); err != nil {
		return -1, fmt.Errorf("digraph: bad tail: %w", err)
	}
	if err := g.checkVertex(head); err != nil {
		return -1, fmt.Errorf("digraph: bad head: %w", err)
	}
	if tail == head {
		return -1, fmt.Errorf("digraph: self-loop %d->%d not allowed", tail, head)
	}
	id := ArcID(len(g.arcs))
	g.arcs = append(g.arcs, Arc{ID: id, Tail: tail, Head: head})
	g.out[tail] = append(g.out[tail], id)
	g.in[head] = append(g.in[head], id)
	if g.failed != nil {
		g.failed = append(g.failed, false)
	}
	g.topoEpoch++
	return id, nil
}

// ── Arc failure (fiber cuts) ───────────────────────────────────────────

// FailArc marks the arc as failed (a fiber cut). The arc keeps its
// identifier and adjacency position — only failure-aware traversals
// treat it as absent. Failing an arc that is out of range or already
// failed is an error.
func (g *Digraph) FailArc(id ArcID) error {
	if id < 0 || int(id) >= len(g.arcs) {
		return fmt.Errorf("digraph: arc %d out of range [0,%d)", id, len(g.arcs))
	}
	if g.failed == nil {
		g.failed = make([]bool, len(g.arcs))
	}
	if g.failed[id] {
		return fmt.Errorf("digraph: arc %d is already failed", id)
	}
	g.failed[id] = true
	g.numFailed++
	g.topoEpoch++
	return nil
}

// RestoreArc clears the failure mark set by FailArc. Restoring an arc
// that is out of range or not failed is an error.
func (g *Digraph) RestoreArc(id ArcID) error {
	if id < 0 || int(id) >= len(g.arcs) {
		return fmt.Errorf("digraph: arc %d out of range [0,%d)", id, len(g.arcs))
	}
	if g.failed == nil || !g.failed[id] {
		return fmt.Errorf("digraph: arc %d is not failed", id)
	}
	g.failed[id] = false
	g.numFailed--
	g.topoEpoch++
	return nil
}

// ArcFailed reports whether the arc is currently failed. Out-of-range
// identifiers report false.
func (g *Digraph) ArcFailed(id ArcID) bool {
	return g.failed != nil && id >= 0 && int(id) < len(g.failed) && g.failed[id]
}

// NumFailedArcs reports how many arcs are currently failed.
func (g *Digraph) NumFailedArcs() int { return g.numFailed }

// TopologyEpoch is a counter bumped by every AddArc, FailArc and
// RestoreArc. Derived structures (component snapshots, routers) record
// the epoch they were computed at and recompute when it moves.
func (g *Digraph) TopologyEpoch() uint64 { return g.topoEpoch }

// MustAddArc is AddArc but panics on error. It is intended for
// constructions whose vertex arguments are correct by construction
// (generators and tests).
func (g *Digraph) MustAddArc(tail, head Vertex) ArcID {
	id, err := g.AddArc(tail, head)
	if err != nil {
		panic(err)
	}
	return id
}

func (g *Digraph) checkVertex(v Vertex) error {
	if v < 0 || int(v) >= len(g.labels) {
		return fmt.Errorf("vertex %d out of range [0,%d)", v, len(g.labels))
	}
	return nil
}

// NumVertices reports the number of vertices.
func (g *Digraph) NumVertices() int { return len(g.labels) }

// NumArcs reports the number of arcs.
//wavedag:lockfree
func (g *Digraph) NumArcs() int { return len(g.arcs) }

// Arc returns the arc with the given identifier.
//wavedag:lockfree
func (g *Digraph) Arc(id ArcID) Arc { return g.arcs[id] }

// Label returns the label of v (empty if none was assigned).
func (g *Digraph) Label(v Vertex) string { return g.labels[v] }

// SetLabel assigns a label to v.
func (g *Digraph) SetLabel(v Vertex, label string) { g.labels[v] = label }

// VertexName returns the label of v, or "v<idx>" when unlabeled.
// It is the human-facing name used by String and DOT exports.
func (g *Digraph) VertexName(v Vertex) string {
	if g.labels[v] != "" {
		return g.labels[v]
	}
	return fmt.Sprintf("v%d", v)
}

// OutArcs returns the identifiers of the arcs leaving v, in insertion
// order. The returned slice is owned by the graph and must not be mutated.
func (g *Digraph) OutArcs(v Vertex) []ArcID { return g.out[v] }

// InArcs returns the identifiers of the arcs entering v, in insertion
// order. The returned slice is owned by the graph and must not be mutated.
func (g *Digraph) InArcs(v Vertex) []ArcID { return g.in[v] }

// OutDegree reports the number of arcs leaving v.
func (g *Digraph) OutDegree(v Vertex) int { return len(g.out[v]) }

// InDegree reports the number of arcs entering v.
func (g *Digraph) InDegree(v Vertex) int { return len(g.in[v]) }

// IsSource reports whether v has in-degree 0.
func (g *Digraph) IsSource(v Vertex) bool { return len(g.in[v]) == 0 }

// IsSink reports whether v has out-degree 0.
func (g *Digraph) IsSink(v Vertex) bool { return len(g.out[v]) == 0 }

// Sources returns the vertices with in-degree 0, in increasing order.
func (g *Digraph) Sources() []Vertex {
	var s []Vertex
	for v := range g.labels {
		if g.IsSource(Vertex(v)) {
			s = append(s, Vertex(v))
		}
	}
	return s
}

// Sinks returns the vertices with out-degree 0, in increasing order.
func (g *Digraph) Sinks() []Vertex {
	var s []Vertex
	for v := range g.labels {
		if g.IsSink(Vertex(v)) {
			s = append(s, Vertex(v))
		}
	}
	return s
}

// ArcBetween returns the identifier of an arc tail->head if at least one
// exists. When parallel arcs exist it returns the first inserted one.
//wavedag:lockfree
func (g *Digraph) ArcBetween(tail, head Vertex) (ArcID, bool) {
	if tail < 0 || int(tail) >= len(g.labels) {
		return -1, false
	}
	for _, id := range g.out[tail] {
		if g.arcs[id].Head == head {
			return id, true
		}
	}
	return -1, false
}

// ArcsBetween returns all arcs tail->head (parallel arcs included).
func (g *Digraph) ArcsBetween(tail, head Vertex) []ArcID {
	var ids []ArcID
	if tail < 0 || int(tail) >= len(g.labels) {
		return nil
	}
	for _, id := range g.out[tail] {
		if g.arcs[id].Head == head {
			ids = append(ids, id)
		}
	}
	return ids
}

// Clone returns a deep copy of the graph. Vertex and arc identifiers are
// preserved.
func (g *Digraph) Clone() *Digraph {
	c := &Digraph{
		labels:    append([]string(nil), g.labels...),
		arcs:      append([]Arc(nil), g.arcs...),
		out:       make([][]ArcID, len(g.out)),
		in:        make([][]ArcID, len(g.in)),
		failed:    append([]bool(nil), g.failed...),
		numFailed: g.numFailed,
		topoEpoch: g.topoEpoch,
	}
	for v := range g.out {
		c.out[v] = append([]ArcID(nil), g.out[v]...)
		c.in[v] = append([]ArcID(nil), g.in[v]...)
	}
	return c
}

// InducedSubgraph returns the subgraph induced by keep, together with the
// mapping newToOld from new vertex identifiers to the originals and the
// mapping arcNewToOld from new arc identifiers to the originals. Vertices
// appear in the new graph in the order given by keep (duplicates are
// rejected).
func (g *Digraph) InducedSubgraph(keep []Vertex) (sub *Digraph, newToOld []Vertex, arcNewToOld []ArcID, err error) {
	oldToNew := make(map[Vertex]Vertex, len(keep))
	sub = New(0)
	for _, v := range keep {
		if e := g.checkVertex(v); e != nil {
			return nil, nil, nil, e
		}
		if _, dup := oldToNew[v]; dup {
			return nil, nil, nil, fmt.Errorf("digraph: duplicate vertex %d in induced subgraph", v)
		}
		oldToNew[v] = sub.AddVertex(g.labels[v])
		newToOld = append(newToOld, v)
	}
	for _, a := range g.arcs {
		nt, okT := oldToNew[a.Tail]
		nh, okH := oldToNew[a.Head]
		if okT && okH {
			id, e := sub.AddArc(nt, nh)
			if e != nil {
				return nil, nil, nil, e
			}
			_ = id
			arcNewToOld = append(arcNewToOld, a.ID)
		}
	}
	return sub, newToOld, arcNewToOld, nil
}

// String renders the graph as one "tail->head" pair per arc, ordered by
// arc identifier; useful in tests and error messages.
func (g *Digraph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph(n=%d, m=%d)", g.NumVertices(), g.NumArcs())
	for _, a := range g.arcs {
		fmt.Fprintf(&b, " %s->%s", g.VertexName(a.Tail), g.VertexName(a.Head))
	}
	return b.String()
}

// DOT renders the graph in Graphviz dot syntax. Arcs are emitted in
// identifier order so the output is deterministic.
func (g *Digraph) DOT(name string) string {
	if name == "" {
		name = "G"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", name)
	for v := 0; v < g.NumVertices(); v++ {
		fmt.Fprintf(&b, "  %q;\n", g.VertexName(Vertex(v)))
	}
	for _, a := range g.arcs {
		fmt.Fprintf(&b, "  %q -> %q;\n", g.VertexName(a.Tail), g.VertexName(a.Head))
	}
	b.WriteString("}\n")
	return b.String()
}

// Arcs returns a copy of all arcs in identifier order.
func (g *Digraph) Arcs() []Arc { return append([]Arc(nil), g.arcs...) }

// Vertices returns all vertex identifiers in increasing order.
func (g *Digraph) Vertices() []Vertex {
	vs := make([]Vertex, g.NumVertices())
	for i := range vs {
		vs[i] = Vertex(i)
	}
	return vs
}

// SortedArcIDs returns the arc identifiers sorted by (tail, head, id);
// useful for canonical comparisons between graphs in tests.
func (g *Digraph) SortedArcIDs() []ArcID {
	ids := make([]ArcID, len(g.arcs))
	for i := range ids {
		ids[i] = ArcID(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := g.arcs[ids[i]], g.arcs[ids[j]]
		if a.Tail != b.Tail {
			return a.Tail < b.Tail
		}
		if a.Head != b.Head {
			return a.Head < b.Head
		}
		return a.ID < b.ID
	})
	return ids
}

// Equal reports whether g and h have the same vertex count and the same
// multiset of (tail, head) arcs. Labels are ignored.
func Equal(g, h *Digraph) bool {
	if g.NumVertices() != h.NumVertices() || g.NumArcs() != h.NumArcs() {
		return false
	}
	gi, hi := g.SortedArcIDs(), h.SortedArcIDs()
	for k := range gi {
		a, b := g.arcs[gi[k]], h.arcs[hi[k]]
		if a.Tail != b.Tail || a.Head != b.Head {
			return false
		}
	}
	return true
}
