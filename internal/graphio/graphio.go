// Package graphio serialises digraphs and dipath families in a small
// line-oriented text format, so instances can be stored, exchanged and
// fed to the command-line tools.
//
// Format (one record per line, '#' starts a comment):
//
//	digraph <n>          -- header, n vertices (ids 0..n-1)
//	label <v> <text>     -- optional vertex label
//	arc <tail> <head>    -- one arc, in id order
//	path <v0> <v1> ...   -- one dipath, as its vertex sequence
//
// Writers emit records in that order; readers accept them in any order
// as long as the header comes first and paths come after their arcs.
package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
)

// Write serialises g and fam (fam may be nil) to w.
func Write(w io.Writer, g *digraph.Digraph, fam dipath.Family) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "digraph %d\n", g.NumVertices())
	for v := 0; v < g.NumVertices(); v++ {
		if l := g.Label(digraph.Vertex(v)); l != "" {
			fmt.Fprintf(bw, "label %d %s\n", v, l)
		}
	}
	for _, a := range g.Arcs() {
		fmt.Fprintf(bw, "arc %d %d\n", a.Tail, a.Head)
	}
	for _, p := range fam {
		parts := make([]string, p.NumVertices())
		for i, v := range p.Vertices() {
			parts[i] = strconv.Itoa(int(v))
		}
		fmt.Fprintf(bw, "path %s\n", strings.Join(parts, " "))
	}
	return bw.Flush()
}

// Read parses a digraph and dipath family from r.
func Read(r io.Reader) (*digraph.Digraph, dipath.Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var g *digraph.Digraph
	var fam dipath.Family
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "digraph":
			if g != nil {
				return nil, nil, fmt.Errorf("graphio: line %d: duplicate header", lineNo)
			}
			if len(fields) != 2 {
				return nil, nil, fmt.Errorf("graphio: line %d: want 'digraph <n>'", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, nil, fmt.Errorf("graphio: line %d: bad vertex count %q", lineNo, fields[1])
			}
			g = digraph.New(n)
		case "label":
			if g == nil {
				return nil, nil, fmt.Errorf("graphio: line %d: label before header", lineNo)
			}
			if len(fields) < 3 {
				return nil, nil, fmt.Errorf("graphio: line %d: want 'label <v> <text>'", lineNo)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil || v < 0 || v >= g.NumVertices() {
				return nil, nil, fmt.Errorf("graphio: line %d: bad vertex %q", lineNo, fields[1])
			}
			g.SetLabel(digraph.Vertex(v), strings.Join(fields[2:], " "))
		case "arc":
			if g == nil {
				return nil, nil, fmt.Errorf("graphio: line %d: arc before header", lineNo)
			}
			if len(fields) != 3 {
				return nil, nil, fmt.Errorf("graphio: line %d: want 'arc <tail> <head>'", lineNo)
			}
			t, err1 := strconv.Atoi(fields[1])
			h, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, nil, fmt.Errorf("graphio: line %d: bad arc endpoints", lineNo)
			}
			if _, err := g.AddArc(digraph.Vertex(t), digraph.Vertex(h)); err != nil {
				return nil, nil, fmt.Errorf("graphio: line %d: %w", lineNo, err)
			}
		case "path":
			if g == nil {
				return nil, nil, fmt.Errorf("graphio: line %d: path before header", lineNo)
			}
			if len(fields) < 2 {
				return nil, nil, fmt.Errorf("graphio: line %d: empty path", lineNo)
			}
			verts := make([]digraph.Vertex, len(fields)-1)
			for i, f := range fields[1:] {
				v, err := strconv.Atoi(f)
				if err != nil {
					return nil, nil, fmt.Errorf("graphio: line %d: bad vertex %q", lineNo, f)
				}
				verts[i] = digraph.Vertex(v)
			}
			p, err := dipath.FromVertices(g, verts...)
			if err != nil {
				return nil, nil, fmt.Errorf("graphio: line %d: %w", lineNo, err)
			}
			fam = append(fam, p)
		default:
			return nil, nil, fmt.Errorf("graphio: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if g == nil {
		return nil, nil, fmt.Errorf("graphio: missing 'digraph <n>' header")
	}
	return g, fam, nil
}
