package graphio

import (
	"bytes"
	"strings"
	"testing"

	"wavedag/internal/digraph"
	"wavedag/internal/gen"
)

func TestRoundTrip(t *testing.T) {
	g, fam := gen.Fig3()
	var buf bytes.Buffer
	if err := Write(&buf, g, fam); err != nil {
		t.Fatal(err)
	}
	g2, fam2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !digraph.Equal(g, g2) {
		t.Fatal("graph did not round-trip")
	}
	if len(fam2) != len(fam) {
		t.Fatalf("family size %d, want %d", len(fam2), len(fam))
	}
	for i := range fam {
		if !fam[i].Equal(fam2[i]) {
			t.Fatalf("path %d: %v != %v", i, fam[i], fam2[i])
		}
	}
	// Labels preserved.
	if g2.Label(0) != "a1" {
		t.Fatalf("label lost: %q", g2.Label(0))
	}
}

func TestRoundTripHavet(t *testing.T) {
	g, fam := gen.Havet()
	var buf bytes.Buffer
	if err := Write(&buf, g, fam); err != nil {
		t.Fatal(err)
	}
	g2, fam2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !digraph.Equal(g, g2) || len(fam2) != 8 {
		t.Fatal("Havet instance did not round-trip")
	}
}

func TestReadCommentsAndBlanks(t *testing.T) {
	in := `
# a tiny instance
digraph 3

arc 0 1
# chain
arc 1 2
path 0 1 2
`
	g, fam, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumArcs() != 2 || len(fam) != 1 {
		t.Fatalf("parsed n=%d m=%d paths=%d", g.NumVertices(), g.NumArcs(), len(fam))
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"no header", "arc 0 1\n"},
		{"double header", "digraph 2\ndigraph 2\n"},
		{"bad count", "digraph x\n"},
		{"negative count", "digraph -1\n"},
		{"short header", "digraph\n"},
		{"label before header", "label 0 a\n"},
		{"label bad vertex", "digraph 1\nlabel 9 a\n"},
		{"label short", "digraph 1\nlabel 0\n"},
		{"arc short", "digraph 2\narc 0\n"},
		{"arc bad int", "digraph 2\narc a b\n"},
		{"arc out of range", "digraph 2\narc 0 5\n"},
		{"path before header", "path 0 1\n"},
		{"path empty", "digraph 2\npath\n"},
		{"path bad vertex", "digraph 2\narc 0 1\npath 0 x\n"},
		{"path missing arc", "digraph 3\narc 0 1\npath 1 2\n"},
		{"unknown record", "digraph 1\nfrob 1\n"},
		{"empty input", ""},
	}
	for _, c := range cases {
		if _, _, err := Read(strings.NewReader(c.in)); err == nil {
			t.Fatalf("%s: accepted", c.name)
		}
	}
}

func TestWriteEmptyFamily(t *testing.T) {
	g := digraph.New(2)
	g.MustAddArc(0, 1)
	var buf bytes.Buffer
	if err := Write(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	g2, fam, err := Read(&buf)
	if err != nil || len(fam) != 0 || g2.NumArcs() != 1 {
		t.Fatalf("empty-family round trip failed: %v", err)
	}
}

func TestLabelWithSpaces(t *testing.T) {
	g := digraph.New(1)
	g.SetLabel(0, "the root")
	var buf bytes.Buffer
	if err := Write(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	g2, _, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Label(0) != "the root" {
		t.Fatalf("label = %q", g2.Label(0))
	}
}
