package core

import (
	"errors"
	"testing"

	"wavedag/internal/conflict"
	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/gen"
	"wavedag/internal/load"
)

// requireTheorem6 runs ColorOneInternalCycleUPP and asserts validity and
// the ⌈4π/3⌉ bound.
func requireTheorem6(t *testing.T, g *digraph.Digraph, fam dipath.Family) *Result {
	t.Helper()
	res, err := ColorOneInternalCycleUPP(g, fam)
	if err != nil {
		t.Fatalf("ColorOneInternalCycleUPP: %v", err)
	}
	if err := Verify(g, fam, res); err != nil {
		t.Fatalf("coloring invalid: %v", err)
	}
	pi := load.Pi(g, fam)
	bound := (4*pi + 2) / 3
	if pi >= 1 && res.NumColors > bound {
		t.Fatalf("used %d colors, bound ⌈4π/3⌉ = %d (π = %d)", res.NumColors, bound, pi)
	}
	return res
}

func TestTheorem6HavetBase(t *testing.T) {
	g, fam := gen.Havet()
	res := requireTheorem6(t, g, fam)
	// π = 2, so the bound is ⌈8/3⌉ = 3; the instance genuinely needs 3.
	if res.NumColors != 3 {
		t.Fatalf("NumColors = %d, want 3", res.NumColors)
	}
}

// Theorem 7: the replicated Havet instance reaches the bound exactly:
// π = 2h and the optimal w is ⌈8h/3⌉; our constructive coloring must
// stay within ⌈4π/3⌉ = ⌈8h/3⌉, hence is optimal on this instance.
func TestTheorem6HavetReplicated(t *testing.T) {
	g, fam := gen.Havet()
	for h := 1; h <= 8; h++ {
		rep := fam.Replicate(h)
		res := requireTheorem6(t, g, rep)
		pi := 2 * h
		want := (8*h + 2) / 3
		if res.Pi != pi {
			t.Fatalf("h=%d: π = %d, want %d", h, res.Pi, pi)
		}
		// The conflict-graph independence number is 3, so ⌈8h/3⌉ colors
		// are necessary; the theorem guarantees ⌈8h/3⌉ are sufficient.
		if res.NumColors != want {
			t.Fatalf("h=%d: NumColors = %d, want exactly %d", h, res.NumColors, want)
		}
	}
}

func TestTheorem6InternalCycleGadget(t *testing.T) {
	for k := 2; k <= 6; k++ {
		g, fam, err := gen.InternalCycleGadget(k)
		if err != nil {
			t.Fatal(err)
		}
		res := requireTheorem6(t, g, fam)
		// π = 2, odd conflict cycle: w = 3 needed; bound is 3.
		if res.NumColors != 3 {
			t.Fatalf("k=%d: NumColors = %d, want 3", k, res.NumColors)
		}
	}
}

// The C5 gadget replicated h times: π = 2h, the paper notes w = ⌈5h/2⌉
// (ratio 5/4 < 4/3); our algorithm must stay within ⌈4π/3⌉ and produce a
// valid coloring, though it need not achieve the optimum ⌈5h/2⌉.
func TestTheorem6GadgetReplicated(t *testing.T) {
	g, fam, err := gen.InternalCycleGadget(2)
	if err != nil {
		t.Fatal(err)
	}
	for h := 1; h <= 6; h++ {
		rep := fam.Replicate(h)
		res := requireTheorem6(t, g, rep)
		if res.Pi != 2*h {
			t.Fatalf("h=%d: π = %d", h, res.Pi)
		}
		opt := (5*h + 1) / 2
		if res.NumColors < opt {
			t.Fatalf("h=%d: NumColors = %d below the proven optimum %d", h, res.NumColors, opt)
		}
	}
}

func TestTheorem6FallsBackToTheorem1(t *testing.T) {
	// No internal cycle: ColorOneInternalCycleUPP should delegate and give
	// exactly π colors.
	g := gen.RandomArborescence(20, 5)
	fam := gen.RandomWalkFamily(g, 25, 6, 6)
	res := requireTheorem6(t, g, fam)
	pi := load.Pi(g, fam)
	if pi > 0 && res.NumColors != pi {
		t.Fatalf("delegation lost optimality: %d colors for π=%d", res.NumColors, pi)
	}
}

func TestTheorem6RejectsNonUPP(t *testing.T) {
	// Fig3's graph has one internal cycle but is not UPP (two b->d routes).
	g, fam := gen.Fig3()
	_, err := ColorOneInternalCycleUPP(g, fam)
	if !errors.Is(err, ErrNotUPP) {
		t.Fatalf("err = %v, want ErrNotUPP", err)
	}
}

func TestTheorem6RejectsMultipleCycles(t *testing.T) {
	g1, f1 := gen.Havet()
	g2, f2 := gen.Havet()
	g, f := gen.DisjointUnion(gen.Instance{G: g1, F: f1}, gen.Instance{G: g2, F: f2})
	if _, err := ColorOneInternalCycleUPP(g, f); err == nil {
		t.Fatal("two internal cycles accepted")
	}
}

func TestTheorem6RejectsCyclicDigraph(t *testing.T) {
	g := digraph.New(2)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 0)
	if _, err := ColorOneInternalCycleUPP(g, nil); err == nil {
		t.Fatal("cyclic digraph accepted")
	}
}

func TestTheorem6EmptyFamily(t *testing.T) {
	g, _ := gen.Havet()
	res, err := ColorOneInternalCycleUPP(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pi != 0 || res.NumColors > 1 {
		t.Fatalf("res = %+v", res)
	}
}

// Mixed workloads on the Havet graph: all-pairs routed demands plus the
// tight family, exercising padding (load(a,b) < π) and nontrivial
// permutation structure.
func TestTheorem6MixedWorkloads(t *testing.T) {
	g, fam := gen.Havet()
	all, err := gen.AllSourceSinkFamily(g)
	if err != nil {
		t.Fatal(err)
	}
	mixed := append(fam.Clone(), all...)
	requireTheorem6(t, g, mixed)

	// Uneven replication: three copies of one dipath, one of the others.
	uneven := fam.Clone()
	uneven = append(uneven, fam[0], fam[0], fam[3])
	requireTheorem6(t, g, uneven)
}

func TestTheorem6GadgetWorkloads(t *testing.T) {
	for k := 2; k <= 5; k++ {
		g, _, err := gen.InternalCycleGadget(k)
		if err != nil {
			t.Fatal(err)
		}
		all, err := gen.AllSourceSinkFamily(g)
		if err != nil {
			t.Fatal(err)
		}
		requireTheorem6(t, g, all)
		requireTheorem6(t, g, all.Replicate(3))
	}
}

// Cross-validate against the exact chromatic number on small instances:
// theorem6's coloring can use more than χ but never more than ⌈4π/3⌉,
// and never fewer than χ.
func TestTheorem6VsExact(t *testing.T) {
	g, fam := gen.Havet()
	workloads := []dipath.Family{
		fam,
		fam.Replicate(2),
		append(fam.Clone(), fam[0], fam[2]),
	}
	for i, w := range workloads {
		res := requireTheorem6(t, g, w)
		cg := conflict.FromFamily(g, w)
		chi := cg.ChromaticNumber()
		if res.NumColors < chi {
			t.Fatalf("workload %d: impossible coloring with %d < χ = %d", i, res.NumColors, chi)
		}
	}
}

func TestColorDAGDispatch(t *testing.T) {
	// Theorem 1 branch.
	g1, err := gen.RandomNoInternalCycleDAG(10, 2, 2, 0.2, 1)
	if err != nil {
		t.Fatal(err)
	}
	f1 := gen.RandomWalkFamily(g1, 15, 5, 2)
	res, method, err := ColorDAG(g1, f1)
	if err != nil || method != MethodTheorem1 {
		t.Fatalf("method = %s, err = %v", method, err)
	}
	if err := Verify(g1, f1, res); err != nil {
		t.Fatal(err)
	}

	// Theorem 6 branch.
	g2, f2 := gen.Havet()
	res, method, err = ColorDAG(g2, f2)
	if err != nil || method != MethodTheorem6 {
		t.Fatalf("method = %s, err = %v", method, err)
	}
	if err := Verify(g2, f2, res); err != nil {
		t.Fatal(err)
	}

	// DSATUR fallback: one internal cycle but not UPP.
	g3, f3 := gen.Fig3()
	res, method, err = ColorDAG(g3, f3)
	if err != nil || method != MethodDSATUR {
		t.Fatalf("method = %s, err = %v", method, err)
	}
	if err := Verify(g3, f3, res); err != nil {
		t.Fatal(err)
	}

	// Invalid family propagates an error.
	other := digraph.New(2)
	other.MustAddArc(0, 1)
	bad := dipath.Family{dipath.MustFromVertices(other, 0, 1)}
	if _, _, err := ColorDAG(digraph.New(2), bad); err == nil {
		t.Fatal("invalid family accepted")
	}
}
