package core

import (
	"fmt"
	"slices"

	"wavedag/internal/conflict"
	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
)

// DefaultSlack is the recoloring slack used when a caller passes a
// non-positive value: the incremental coloring is allowed to drift this
// many wavelengths above the incremental lower bound before a full
// recolor is forced.
const DefaultSlack = 2

// defaultRecolorBudget bounds the local repair on removal: only color
// classes at most this large are candidates for being recolored away.
const defaultRecolorBudget = 4

// warmRecolorBudget bounds how many consecutive slack-gate crossings on
// a hard (χ>π) instance may be answered by the warm repack alone before
// the cold from-scratch pipeline must run again. Only the cold pipeline
// can discover that χ dropped as the family churned, so the budget is
// the staleness bound on the ceiling; between cold probes, a gate
// crossing costs O(Σ degree) instead of a conflict-graph rebuild plus
// theorem run.
const warmRecolorBudget = 8

// Incremental maintains a proper wavelength assignment for a mutable
// dipath family — the coloring layer of the dynamic provisioning engine.
// It owns a conflict.Dynamic and keeps three invariants across Add and
// Remove:
//
//   - the assignment is always proper (Verify-clean against a snapshot);
//   - NumLambda counts the distinct wavelengths in use exactly;
//   - NumLambda ≤ LowerBound() + slack whenever the one-shot pipeline
//     (ColorDAG) can achieve that — when it cannot (e.g. Theorem 6
//     instances where χ > π), the full recolor result itself becomes the
//     ceiling and recoloring is suppressed until the incremental state
//     drifts above it.
//
// Mechanics: a new path is first-fit colored against its conflict
// neighbourhood (a palette scratch reset via a touched-list, so the cost
// is O(degree) not O(n)); a removal frees the slot's color and then runs
// a bounded local repair that tries to recolor the highest color classes
// away while they are small; when NumLambda still drifts past the slack,
// a warm-start repack reseeds the coloring from the surviving color
// classes (class-grouped greedy, never more colors than the seed), and
// only when that cannot reach the gate — and, on certified-hard
// instances, only every warmRecolorBudget-th crossing — is the whole
// live family recolored from scratch through ColorDAG, the strongest
// applicable theorem, and the incremental state rebuilt from its
// answer.
type Incremental struct {
	g   *digraph.Digraph
	dyn *conflict.Dynamic

	colors  []int   // slot -> wavelength; -1 = free slot
	classes [][]int // wavelength -> live slots using it (unordered)
	posIn   []int   // slot -> index in classes[colors[slot]]
	numUsed int     // distinct wavelengths in use

	slack         int
	recolorBudget int

	// used/touched is the first-fit palette scratch.
	used    []bool
	touched []int

	fullRecolors  int
	warmRecolors  int
	warmSinceCold int // warm re-arms of the ceiling since the last cold run
	// futileNum is the NumLambda of the most recent recolor (cold, or a
	// budgeted warm re-arm on an already-certified-hard instance) that
	// could not reach lb+slack; 0 = none. futileLB is the lower bound at
	// that recolor: a drop below it triggers another recolor attempt —
	// warm first, and within the budget the warm answer re-anchors the
	// ceiling at the new lower bound, so the cold pipeline retries only
	// when the budget or the TTL runs out. futileTTL is the number of
	// removals before the ceiling expires outright.
	futileNum int
	futileLB  int
	futileTTL int

	// warm-recolor scratch, reused across recolors.
	warmOrder []int
	classIdx  []int
}

// NewIncremental returns an empty incremental colorer for dipaths of g.
// slack <= 0 selects DefaultSlack.
func NewIncremental(g *digraph.Digraph, slack int) *Incremental {
	if slack <= 0 {
		slack = DefaultSlack
	}
	return &Incremental{
		g:             g,
		dyn:           conflict.NewDynamic(g),
		slack:         slack,
		recolorBudget: defaultRecolorBudget,
	}
}

// Dynamic exposes the underlying mutable conflict graph (read-only use).
func (ic *Incremental) Dynamic() *conflict.Dynamic { return ic.dyn }

// GrowArcs extends the conflict layer's arc space to n arcs (see
// conflict.Dynamic.GrowArcs). Coloring state is per-slot, not per-arc,
// so the assignment, the palette and the drift ceiling are unaffected.
func (ic *Incremental) GrowArcs(n int) { ic.dyn.GrowArcs(n) }

// NumLambda returns the number of distinct wavelengths currently in use.
func (ic *Incremental) NumLambda() int { return ic.numUsed }

// LowerBound returns the incremental χ lower bound (max arc load).
func (ic *Incremental) LowerBound() int { return ic.dyn.LowerBound() }

// Slack returns the configured recoloring slack.
func (ic *Incremental) Slack() int { return ic.slack }

// FullRecolors returns how many times the slack gate forced a full
// from-scratch recoloring — the measure of how incremental the run was.
func (ic *Incremental) FullRecolors() int { return ic.fullRecolors }

// WarmRecolors returns how many times a drift past the slack gate was
// absorbed by the warm-start repack (reseeding from the surviving color
// classes) without paying the from-scratch pipeline.
func (ic *Incremental) WarmRecolors() int { return ic.warmRecolors }

// Wavelength returns the wavelength of slot s, or -1 when s is free.
func (ic *Incremental) Wavelength(s int) int {
	if s < 0 || s >= len(ic.colors) {
		return -1
	}
	return ic.colors[s]
}

// Add inserts p into the conflict graph, first-fit colors it, and
// returns its slot. A full recolor is triggered only when the number of
// wavelengths drifts past the slack gate.
func (ic *Incremental) Add(p *dipath.Path) (int, error) {
	s, err := ic.dyn.AddPath(p)
	if err != nil {
		return -1, err
	}
	ic.ensureSlot(s)
	ic.setColor(s, ic.firstFit(s, ic.dyn.NumSlots()))
	ic.maybeFullRecolor()
	return s, nil
}

// Remove deletes the dipath in slot s, repairs locally, and recolors
// fully only if the slack gate fires (the lower bound may have dropped).
func (ic *Incremental) Remove(s int) error {
	if s < 0 || s >= len(ic.colors) || ic.colors[s] < 0 {
		return fmt.Errorf("core: slot %d is not colored", s)
	}
	ic.clearColor(s)
	if err := ic.dyn.RemovePath(s); err != nil {
		return err
	}
	ic.localRepair()
	// Removals only ever make the instance easier, so they erode the
	// futile ceiling: after enough of them the from-scratch pipeline is
	// given another chance even if the lower bound has not moved.
	if ic.futileNum > 0 {
		if ic.futileTTL--; ic.futileTTL <= 0 {
			ic.futileNum = 0
		}
	}
	ic.maybeFullRecolor()
	return nil
}

// Colors returns the wavelengths of the given slots, parallel to slots.
func (ic *Incremental) Colors(slots []int) []int {
	out := make([]int, len(slots))
	for i, s := range slots {
		out[i] = ic.Wavelength(s)
	}
	return out
}

// ensureSlot grows the per-slot tables to cover slot s.
func (ic *Incremental) ensureSlot(s int) {
	for len(ic.colors) <= s {
		ic.colors = append(ic.colors, -1)
		ic.posIn = append(ic.posIn, 0)
	}
	// The palette scratch must fit any feasible color: at most one per
	// live slot, plus one for the first-fit overflow probe.
	for len(ic.used) <= ic.dyn.NumSlots()+1 {
		ic.used = append(ic.used, false)
	}
}

// firstFit returns the smallest color < limit not used by any conflict
// neighbour of s. The scratch reset is O(degree) via the touched-list.
func (ic *Incremental) firstFit(s, limit int) int {
	ic.touched = ic.touched[:0]
	ic.dyn.ForEachConflict(s, func(t int) {
		if c := ic.colors[t]; c >= 0 && c < limit && !ic.used[c] {
			ic.used[c] = true
			ic.touched = append(ic.touched, c)
		}
	})
	c := 0
	for c < limit && ic.used[c] {
		c++
	}
	for _, t := range ic.touched {
		ic.used[t] = false
	}
	if c >= limit {
		return -1
	}
	return c
}

// setColor assigns color c to slot s and updates the class bookkeeping.
func (ic *Incremental) setColor(s, c int) {
	for len(ic.classes) <= c {
		ic.classes = append(ic.classes, nil)
	}
	ic.colors[s] = c
	if len(ic.classes[c]) == 0 {
		ic.numUsed++
	}
	ic.posIn[s] = len(ic.classes[c])
	ic.classes[c] = append(ic.classes[c], s)
}

// clearColor removes slot s from its color class (swap-delete).
func (ic *Incremental) clearColor(s int) {
	c := ic.colors[s]
	class := ic.classes[c]
	i, last := ic.posIn[s], len(class)-1
	class[i] = class[last]
	ic.posIn[class[i]] = i
	ic.classes[c] = class[:last]
	ic.colors[s] = -1
	if last == 0 {
		ic.numUsed--
	}
}

// localRepair is the bounded recoloring pass after a removal: while the
// highest wavelength's class has at most recolorBudget members, try to
// first-fit each member into a strictly lower wavelength; a class that
// empties gives the wavelength back. Members that cannot move stay put,
// so the assignment remains proper throughout.
func (ic *Incremental) localRepair() {
	// The removal may have emptied an interior color class; re-densify
	// first (repair moves below only ever drain the top class, so no new
	// interior holes appear afterwards).
	ic.compactPalette()
	for {
		cmax := len(ic.classes) - 1
		for cmax >= 0 && len(ic.classes[cmax]) == 0 {
			cmax--
		}
		ic.classes = ic.classes[:cmax+1]
		if cmax < 1 || len(ic.classes[cmax]) > ic.recolorBudget {
			return
		}
		moved := true
		for len(ic.classes[cmax]) > 0 && moved {
			moved = false
			for _, s := range ic.classes[cmax] {
				if c := ic.firstFit(s, cmax); c >= 0 {
					ic.clearColor(s)
					ic.setColor(s, c)
					moved = true
					break // class slice mutated; restart the scan
				}
			}
		}
		if len(ic.classes[cmax]) > 0 {
			return // stuck members keep the wavelength alive
		}
	}
}

// compactPalette keeps the palette dense (every used wavelength index is
// < NumLambda) by renaming the top color class into the lowest empty
// color. A wholesale relabel is always proper: members of one class are
// pairwise non-adjacent and the target color is used by nobody. Without
// this, a removal that empties an interior class would leave live
// wavelength indices above the reported count, making Feasible checks
// against a channel budget misleading.
func (ic *Incremental) compactPalette() {
	for {
		cmax := len(ic.classes) - 1
		for cmax >= 0 && len(ic.classes[cmax]) == 0 {
			cmax--
		}
		ic.classes = ic.classes[:cmax+1]
		hole := -1
		for c := 0; c < cmax; c++ {
			if len(ic.classes[c]) == 0 {
				hole = c
				break
			}
		}
		if hole < 0 {
			return
		}
		members := append([]int(nil), ic.classes[cmax]...)
		for _, s := range members {
			ic.clearColor(s)
			ic.setColor(s, hole)
		}
	}
}

// maybeFullRecolor enforces the slack gate: when the number of
// wavelengths in use exceeds LowerBound()+slack, fullRecolor runs — a
// warm class-seeded repack first, the from-scratch pipeline when the
// repack cannot certify enough. If even a recolor cannot reach the gate
// (χ > π instances), its answer becomes the ceiling (futileNum) and
// further recolors are suppressed while the ceiling is plausibly still
// current. Three things invalidate it: the incremental state drifting
// above the ceiling, the lower bound dropping below the one recorded at
// the futile attempt (within the warm budget the retry is answered by
// another warm repack that re-anchors the ceiling; past the budget by
// the cold pipeline), and — because χ never increases under removals
// but the other two signals may miss a shrinking family — a TTL of
// removals (a fraction of the family size at the futile recolor), which
// bounds both how stale the ceiling can get and how often a hard
// instance re-pays the full pipeline.
func (ic *Incremental) maybeFullRecolor() {
	lb := ic.dyn.LowerBound()
	if ic.numUsed <= lb+ic.slack {
		ic.futileNum = 0
		return
	}
	// The ceiling carries slack headroom: a futile recolor happens at
	// whatever the churn's current size is, and without headroom the very
	// next arrival would cross the fresh ceiling and recolor again —
	// steady add/remove oscillation on a hard instance would degenerate
	// to rebuild-per-event.
	if ic.futileNum > 0 && ic.numUsed <= ic.futileNum+ic.slack && lb >= ic.futileLB {
		return
	}
	ic.fullRecolor()
}

// warmRecolor re-greedy-colors the live family seeded by the surviving
// color classes: slots are re-colored first-fit in class-grouped order
// (largest class first). Processing a proper coloring class by class,
// greedy provably never uses more colors than the seed — by induction,
// a slot in the i-th processed class sees blocked colors only from the
// first i-1 classes — and in practice packs the palette well below it,
// because every first-fit runs against the full current neighbourhood
// instead of the arrival-order prefix that produced the drift. Cost is
// O(Σ degree) over the live conflict graph, versus the cold pipeline's
// conflict-graph rebuild plus theorem run, so drifts it absorbs cost a
// repair, not a spike.
func (ic *Incremental) warmRecolor() {
	if ic.numUsed == 0 {
		return
	}
	// Snapshot the class-grouped order before tearing the classes down.
	ic.classIdx = ic.classIdx[:0]
	for c := range ic.classes {
		if len(ic.classes[c]) > 0 {
			ic.classIdx = append(ic.classIdx, c)
		}
	}
	slices.SortStableFunc(ic.classIdx, func(a, b int) int {
		return len(ic.classes[b]) - len(ic.classes[a])
	})
	ic.warmOrder = ic.warmOrder[:0]
	for _, c := range ic.classIdx {
		ic.warmOrder = append(ic.warmOrder, ic.classes[c]...)
	}
	limit := ic.numUsed // greedy over class groups is guaranteed to fit
	for _, s := range ic.warmOrder {
		ic.colors[s] = -1
	}
	// Truncate the classes in place (warmOrder already snapshotted their
	// members) so setColor refills the existing backing arrays — the
	// repack stays allocation-free.
	for _, c := range ic.classIdx {
		ic.classes[c] = ic.classes[c][:0]
	}
	ic.numUsed = 0
	for _, s := range ic.warmOrder {
		ic.setColor(s, ic.firstFit(s, limit))
	}
	// First-fit leaves no palette holes: a color is used only when every
	// lower one was blocked by an already-colored slot, so density holds
	// without a compaction pass. The warmRecolors counter is maintained
	// by fullRecolor, which alone knows whether this pass absorbed the
	// drift or fell through to the cold pipeline.
}

// fullRecolor reassigns every live slot from a from-scratch ColorDAG run
// (falling back to DSATUR on the conflict snapshot if the pipeline
// errors, which keeps the session alive on adversarial inputs).
func (ic *Incremental) fullRecolor() {
	// Warm start: reseed from the surviving color classes first. When the
	// repack alone brings the count back through the slack gate — or back
	// under a still-plausible futile ceiling — the drift is absorbed for
	// O(Σ degree) and the from-scratch pipeline is skipped entirely.
	ic.warmRecolor()
	lb := ic.dyn.LowerBound()
	switch {
	case ic.numUsed <= lb+ic.slack:
		// The repack reached the gate — as good an answer as the pipeline
		// could certify, so it does not count against the staleness budget.
		ic.futileNum = 0
		ic.warmSinceCold = 0
		ic.warmRecolors++
		return
	case ic.futileNum > 0 && lb >= ic.futileLB && ic.numUsed <= ic.futileNum+ic.slack && ic.warmSinceCold < warmRecolorBudget:
		// Back under the standing ceiling on warm work alone; still a
		// warm-only answer, so it spends budget like a re-arm does.
		ic.warmSinceCold++
		ic.warmRecolors++
		return
	case ic.futileNum > 0 && ic.warmSinceCold < warmRecolorBudget:
		// Certified-hard instance (a cold run already failed to reach the
		// gate) whose ceiling the drift escaped: the warm answer is recent
		// enough to stand in for the pipeline — re-arm the ceiling from it
		// (the repack is proper, so χ ≤ numUsed is a genuine certificate)
		// and defer the cold probe. Only the cold pipeline can discover
		// that χ itself dropped, hence the budget. Without a standing
		// ceiling the cold pipeline runs instead: on instances it can
		// color within lb+slack, a warm re-arm here would let λ sit above
		// the from-scratch answer past the slack guarantee.
		ic.warmSinceCold++
		ic.warmRecolors++
		ic.armCeiling(lb)
		return
	}
	ic.coldRecolor()
}

// coldRecolor is the from-scratch tail of fullRecolor: run the
// strongest applicable theorem over the live family and rebuild the
// incremental bookkeeping from its answer.
func (ic *Incremental) coldRecolor() {
	ic.warmSinceCold = 0
	slots := ic.dyn.LiveSlots()
	fam := make(dipath.Family, len(slots))
	for i, s := range slots {
		fam[i] = ic.dyn.Path(s)
	}
	var colors []int
	// The live paths were validated when conflict.Dynamic admitted them,
	// so the cold run skips the per-call family revalidation too.
	if res, _, err := ColorDAGPrevalidated(ic.g, fam); err == nil {
		colors = res.Colors
	} else {
		snap, _ := ic.dyn.Snapshot()
		colors = snap.DSATURColoring()
	}
	// Rebuild the class bookkeeping from the fresh assignment, then
	// re-densify: Theorem 6 colorings can skip indices (a permutation
	// cycle's freed base color may go unused), and the palette-density
	// invariant must hold for Wavelength/Feasible consumers.
	for _, s := range slots {
		ic.colors[s] = -1
	}
	ic.classes = ic.classes[:0]
	ic.numUsed = 0
	for i, s := range slots {
		ic.setColor(s, colors[i])
	}
	ic.compactPalette()
	ic.fullRecolors++
	if lb := ic.dyn.LowerBound(); ic.numUsed > lb+ic.slack {
		ic.armCeiling(lb)
	} else {
		ic.futileNum = 0
	}
}

// EnsureAtMost tries to bring the live assignment to at most limit
// wavelengths: the warm class-seeded repack first (O(Σ degree)), the
// from-scratch pipeline when the repack is not enough. It returns the
// resulting count, which still exceeds limit exactly when even the
// strongest applicable theorem needs more colors. On internal-cycle-
// free graphs the cold pipeline achieves λ = π (Theorem 1), so the call
// is guaranteed to succeed whenever π ≤ limit — the invariant the
// budgeted session's Theorem-1 admission precheck maintains.
func (ic *Incremental) EnsureAtMost(limit int) int {
	if ic.numUsed <= limit {
		return ic.numUsed
	}
	ic.warmRecolor()
	if ic.numUsed <= limit {
		ic.warmRecolors++
		return ic.numUsed
	}
	ic.coldRecolor()
	return ic.numUsed
}

// AddUnderLimit inserts p only when it can take a wavelength below
// limit: first-fit against the live neighbourhood, then — when the
// palette is fragmented — one warm class-seeded repack and a retry.
// On rejection the conflict insertion is rolled back, so no dipath is
// admitted: the live family is exactly as before (the repack may have
// permuted colors, but never onto more wavelengths). This is the
// general-DAG budget admission probe: unlike the Theorem-1 load test it
// costs up to O(Σ degree), but it never disturbs the λ ≤ limit
// invariant of the paths already admitted. limit <= 0 means unlimited
// and behaves like Add.
func (ic *Incremental) AddUnderLimit(p *dipath.Path, limit int) (slot int, ok bool, err error) {
	if limit <= 0 {
		s, err := ic.Add(p)
		return s, err == nil, err
	}
	s, err := ic.dyn.AddPath(p)
	if err != nil {
		return -1, false, err
	}
	ic.ensureSlot(s)
	c := ic.firstFit(s, limit)
	if c < 0 && ic.numUsed > 0 {
		// All limit colors are blocked by neighbours; a repack of the live
		// assignment (s is still uncolored, so it does not participate) may
		// compact the palette enough to free one.
		ic.warmRecolor()
		c = ic.firstFit(s, limit)
	}
	if c < 0 {
		if err := ic.dyn.RemovePath(s); err != nil {
			return -1, false, err
		}
		return -1, false, nil
	}
	ic.setColor(s, c)
	ic.maybeFullRecolor()
	return s, true, nil
}

// armCeiling records the current (proper, hence χ-certifying) count as
// the futile ceiling at lower bound lb, with the removal TTL that
// bounds its staleness.
func (ic *Incremental) armCeiling(lb int) {
	ic.futileNum, ic.futileLB = ic.numUsed, lb
	if ic.futileTTL = ic.dyn.NumLive() / 4; ic.futileTTL < 8 {
		ic.futileTTL = 8
	}
}
