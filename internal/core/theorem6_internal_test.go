package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestSimpleCycleDecomposition verifies the Eulerian decomposition on
// random left/right bundle assignments: every non-fixed wavelength
// appears in exactly one cycle, and within each cycle no bundle owns two
// left colors (the simple-cycle guarantee deviation D1 relies on).
func TestSimpleCycleDecomposition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pi := 2 + rng.Intn(12)
		nBundles := 1 + rng.Intn(4)
		// Left sides: a random assignment of colors to bundles with each
		// bundle owning a contiguous share; rights: a permutation of the
		// same multiset (each bundle has equally many lefts and rights).
		leftBundle := make([]int, pi)
		for c := range leftBundle {
			leftBundle[c] = rng.Intn(nBundles)
		}
		rightBundle := append([]int(nil), leftBundle...)
		rng.Shuffle(pi, func(i, j int) {
			rightBundle[i], rightBundle[j] = rightBundle[j], rightBundle[i]
		})
		cycles, err := simpleCycleDecomposition(pi, leftBundle, rightBundle)
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		for _, cyc := range cycles {
			if len(cyc) < 2 {
				return false
			}
			bundlesInCycle := map[int]bool{}
			for _, c := range cyc {
				if seen[c] {
					return false // color in two cycles
				}
				seen[c] = true
				b := leftBundle[c]
				if bundlesInCycle[b] {
					return false // bundle visited twice: cycle not simple
				}
				bundlesInCycle[b] = true
			}
			// Transition consistency: the bundle taking element j on its
			// left hands element j+1 out of its right, i.e. the right
			// owner of cyc[j+1] is the left owner of cyc[j].
			for j, c := range cyc {
				next := cyc[(j+1)%len(cyc)]
				if leftBundle[c] != rightBundle[next] {
					return false
				}
			}
		}
		// Exactly the non-fixed colors are covered.
		for c := 0; c < pi; c++ {
			fixed := leftBundle[c] == rightBundle[c]
			if fixed == seen[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSimpleCycleDecompositionAllFixed(t *testing.T) {
	left := []int{0, 1, 0}
	right := []int{0, 1, 0}
	cycles, err := simpleCycleDecomposition(3, left, right)
	if err != nil || len(cycles) != 0 {
		t.Fatalf("all-fixed case: %v, %v", cycles, err)
	}
}

// TestMaximalIndependentSets checks the Bron–Kerbosch enumeration on a
// known graph: C5 has exactly 5 maximal independent sets (the 5 edges of
// the complement... i.e. the 5 non-adjacent pairs).
func TestMaximalIndependentSets(t *testing.T) {
	n := 5
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = map[int]bool{}
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		adj[i][j] = true
		adj[j][i] = true
	}
	allowed := make([]bool, n)
	for i := range allowed {
		allowed[i] = true
	}
	sets := maximalIndependentSets(n, adj, allowed)
	if len(sets) != 5 {
		t.Fatalf("C5 has 5 maximal independent sets, got %d: %v", len(sets), sets)
	}
	for _, s := range sets {
		if len(s) != 2 {
			t.Fatalf("C5 maximal independent sets are pairs, got %v", s)
		}
		if adj[s[0]][s[1]] {
			t.Fatalf("set %v not independent", s)
		}
	}
	// Restriction: allowing only vertices {0,1,2} of C5 (path 0-1-2):
	// maximal sets {0,2} and {1}.
	allowed = []bool{true, true, true, false, false}
	sets = maximalIndependentSets(n, adj, allowed)
	if len(sets) != 2 {
		t.Fatalf("restricted enumeration: %v", sets)
	}
}

func TestMaximalIndependentSetsEmptyGraph(t *testing.T) {
	adj := []map[int]bool{{}, {}, {}}
	sets := maximalIndependentSets(3, adj, []bool{true, true, true})
	if len(sets) != 1 || len(sets[0]) != 3 {
		t.Fatalf("edgeless graph has one maximal independent set (everything): %v", sets)
	}
	if got := maximalIndependentSets(3, adj, []bool{false, false, false}); len(got) != 0 {
		// With nothing allowed, BK returns the empty set as "maximal";
		// accept either none or a single empty set.
		if !(len(got) == 1 && len(got[0]) == 0) {
			t.Fatalf("nothing allowed: %v", got)
		}
	}
}

// TestAssignClasses solves a small weighted coloring directly: a
// triangle of classes with demands (2,1,1) needs 4 colors.
func TestAssignClasses(t *testing.T) {
	members := [][]int{{0, 1}, {2}, {3}} // demands 2,1,1
	adj := []map[int]bool{
		{1: true, 2: true},
		{0: true, 2: true},
		{0: true, 1: true},
	}
	forbidden := []map[int]bool{{}, {}, {}}
	assigned := make([][]int, 3)
	if !assignClasses(members, forbidden, adj, assigned, 4) {
		t.Fatal("triangle with demands 2,1,1 must fit in 4 colors")
	}
	used := map[int]int{}
	for ci, set := range assigned {
		if len(set) != len(members[ci]) {
			t.Fatalf("class %d received %d colors, want %d", ci, len(set), len(members[ci]))
		}
		for _, c := range set {
			if c < 0 || c >= 4 {
				t.Fatalf("color %d out of palette", c)
			}
			used[c]++
		}
	}
	// Classes are pairwise adjacent: all colors distinct overall.
	for c, k := range used {
		if k > 1 {
			t.Fatalf("color %d reused across adjacent classes", c)
		}
	}
	// Infeasible with 3 colors.
	assigned = make([][]int, 3)
	if assignClasses(members, forbidden, adj, assigned, 3) {
		t.Fatal("demands 2,1,1 on a triangle cannot fit in 3 colors")
	}
	// Forbidden colors respected.
	forbidden = []map[int]bool{{0: true, 1: true}, {}, {}}
	assigned = make([][]int, 3)
	if !assignClasses(members, forbidden, adj, assigned, 4) {
		t.Fatal("feasible with class-0 forbidden {0,1}")
	}
	sort.Ints(assigned[0])
	if assigned[0][0] != 2 || assigned[0][1] != 3 {
		t.Fatalf("class 0 must get {2,3}, got %v", assigned[0])
	}
}
