// Package core implements the two constructive results of Bermond &
// Cosnard, "Minimum number of wavelengths equals load in a DAG without
// internal cycle" (IPDPS 2007):
//
//   - Theorem 1: on a DAG without internal cycle, every family of dipaths
//     can be colored with exactly π(G,P) wavelengths
//     (ColorNoInternalCycle);
//   - Theorem 6: on an UPP-DAG with exactly one internal cycle, every
//     family can be colored with at most ⌈4π/3⌉ wavelengths
//     (ColorOneInternalCycleUPP).
//
// ColorDAG dispatches between them and falls back to the DSATUR heuristic
// on DAGs outside both hypotheses (where, by the paper's Figure 1, no
// function of π can bound w in general).
package core

import (
	"errors"
	"fmt"

	"wavedag/internal/conflict"
	"wavedag/internal/cycles"
	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/load"
	"wavedag/internal/upp"
)

// ErrInternalCycle is returned by ColorNoInternalCycle when the input DAG
// contains an internal cycle, violating Theorem 1's hypothesis.
var ErrInternalCycle = errors.New("core: DAG contains an internal cycle")

// ErrNotUPP is returned by ColorOneInternalCycleUPP when the input digraph
// is not an UPP-DAG.
var ErrNotUPP = errors.New("core: digraph is not an UPP-DAG")

// Result is a wavelength assignment for a dipath family.
type Result struct {
	// Colors[i] is the wavelength of family[i]; wavelengths are dense
	// integers starting at 0.
	Colors []int
	// NumColors is the number of distinct wavelengths used.
	NumColors int
	// Pi is the load π(G,P) of the instance.
	Pi int
}

func newResult(colors []int, pi int) *Result {
	return &Result{Colors: colors, NumColors: conflict.CountColors(colors), Pi: pi}
}

// Method identifies which algorithm produced a coloring.
type Method string

// Methods reported by ColorDAG and the incremental engine.
const (
	MethodTheorem1 Method = "theorem1" // exact, w = π
	MethodTheorem6 Method = "theorem6" // w ≤ ⌈4π/3⌉
	MethodDSATUR   Method = "dsatur"   // heuristic fallback
	// MethodIncremental marks colorings maintained online by an
	// Incremental colorer (first-fit + bounded repair + slack-gated
	// full recolor) rather than computed by a one-shot theorem.
	MethodIncremental Method = "incremental"
)

// ColorDAG colors fam on the DAG g with the strongest applicable result:
// Theorem 1 when g has no internal cycle, Theorem 6 when g is UPP with
// exactly one internal cycle, DSATUR otherwise.
func ColorDAG(g *digraph.Digraph, fam dipath.Family) (*Result, Method, error) {
	if err := fam.Validate(g); err != nil {
		return nil, "", err
	}
	return ColorDAGPrevalidated(g, fam)
}

// ColorDAGPrevalidated is ColorDAG for families whose paths are already
// known to be valid dipaths of g — routing output, session-held slot
// tables — and skips the O(total path length) revalidation that
// dominated the one-shot pipeline when run per call. The theorem
// dispatch is otherwise identical; feeding it paths built against a
// different graph may panic instead of returning an error.
func ColorDAGPrevalidated(g *digraph.Digraph, fam dipath.Family) (*Result, Method, error) {
	count := cycles.IndependentCycleCount(g)
	if count == 0 {
		res, err := colorNoInternalCycle(g, fam)
		return res, MethodTheorem1, err
	}
	if count == 1 {
		if ok, _, _, err := upp.IsUPP(g); err == nil && ok {
			res, err := colorOneInternalCycleUPP(g, fam)
			return res, MethodTheorem6, err
		}
	}
	cg := conflict.FromFamily(g, fam)
	colors := cg.DSATURColoring()
	return newResult(colors, load.Pi(g, fam)), MethodDSATUR, nil
}

// Verify checks that res is a proper wavelength assignment for fam on g
// (conflicting dipaths have different wavelengths).
func Verify(g *digraph.Digraph, fam dipath.Family, res *Result) error {
	if res == nil {
		return fmt.Errorf("core: nil result")
	}
	if len(res.Colors) != len(fam) {
		return fmt.Errorf("core: %d colors for %d dipaths", len(res.Colors), len(fam))
	}
	cg := conflict.FromFamily(g, fam)
	return cg.ValidateColoring(res.Colors)
}
