package core

import (
	"fmt"

	"wavedag/internal/cycles"
	"wavedag/internal/dag"
	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
)

// ColorNoInternalCycle colors fam with exactly π(G,P) wavelengths on a
// DAG g without internal cycle — the constructive proof of Theorem 1.
//
// The inductive argument of the paper is replayed iteratively. Arcs are
// ordered by the topological index of their tails (dag.ArcPeelingOrder):
// deleting them in that order always deletes an arc whose tail is a
// source, so re-inserting them in reverse rebuilds the graph the way the
// induction unwinds. Because the deleted arc's tail is a source, the arc
// is the first arc of every dipath containing it, and each dipath's alive
// portion is always a suffix of its arc list.
//
// At each re-insertion of an arc e, the dipaths through e (the family Q0
// of the proof) must end up with pairwise distinct wavelengths. Their
// alive suffixes (P0) are recolored until distinct by the paper's
// alternating-chain procedure: pick two suffixes sharing a color α,
// pick a color β unused by P0, flip one of them to β, then alternately
// flip the conflicting color classes. On a DAG without internal cycle the
// chain never revisits a dipath (case B) and never reaches the anchored
// dipath (case C), so every chain terminates and strictly increases the
// number of colors used by P0.
//
// Single-vertex dipaths carry no load and are assigned wavelength 0.
// The returned coloring uses exactly π colors when π ≥ 1.
func ColorNoInternalCycle(g *digraph.Digraph, fam dipath.Family) (*Result, error) {
	if err := fam.Validate(g); err != nil {
		return nil, err
	}
	return colorNoInternalCycle(g, fam)
}

// colorNoInternalCycle is ColorNoInternalCycle for pre-validated
// families (ColorDAG validates once; session-internal families were
// validated at construction).
func colorNoInternalCycle(g *digraph.Digraph, fam dipath.Family) (*Result, error) {
	if !dag.IsDAG(g) {
		return nil, dag.ErrCyclic
	}
	if cycles.HasInternalCycle(g) {
		return nil, ErrInternalCycle
	}
	st, err := newPeelState(g, fam)
	if err != nil {
		return nil, err
	}
	// Replay the peeling order backwards: the last-deleted arc is the
	// first re-inserted.
	for k := len(st.peel) - 1; k >= 0; k-- {
		if err := st.insertArc(st.peel[k]); err != nil {
			return nil, err
		}
	}
	colors := st.colors
	for i := range colors {
		if colors[i] < 0 { // single-vertex dipaths
			colors[i] = 0
		}
	}
	return newResult(colors, st.palette), nil
}

// peelState carries the incremental coloring of the suffix family.
type peelState struct {
	g    *digraph.Digraph
	fam  dipath.Family
	peel []digraph.ArcID // deletion order; re-inserted in reverse

	peelPos []int // peelPos[arc] = index of arc in peel

	// pathsOnArcAll[a] = indices of family members containing arc a.
	pathsOnArcAll [][]int
	// active[a] = indices of family members whose alive suffix contains a.
	active [][]int
	// start[p] = index into fam[p].Arcs() of the first alive arc
	// (len(arcs) when the whole dipath is still deleted).
	start []int
	// colors[p] = current wavelength of the alive suffix, -1 if dead.
	colors []int
	// palette = number of wavelengths available = max arc load seen.
	palette int
	// scratch marks for chain flips, reset per chain via generation counter.
	flipGen  []int
	chainGen int
	// Generation-stamped color marks shared by findDuplicate,
	// colorUnusedBy and insertArc — the zero-allocation replacement for
	// the per-call map[int]bool palettes these used to build. colorGen[c]
	// is valid when it equals colorMark; colorBy[c] is the path that
	// marked c this generation.
	colorGen  []int
	colorBy   []int
	colorMark int
}

// markColors starts a fresh color-marking generation.
func (st *peelState) markColors() { st.colorMark++ }

func (st *peelState) markColor(c, p int) { st.colorGen[c] = st.colorMark; st.colorBy[c] = p }

func (st *peelState) colorMarked(c int) bool { return st.colorGen[c] == st.colorMark }

func newPeelState(g *digraph.Digraph, fam dipath.Family) (*peelState, error) {
	peel, err := dag.ArcPeelingOrder(g)
	if err != nil {
		return nil, err
	}
	st := &peelState{
		g:             g,
		fam:           fam,
		peel:          peel,
		peelPos:       make([]int, g.NumArcs()),
		pathsOnArcAll: dipath.ArcIncidence(g, fam),
		active:        make([][]int, g.NumArcs()),
		start:         make([]int, len(fam)),
		colors:        make([]int, len(fam)),
		flipGen:       make([]int, len(fam)),
		colorGen:      make([]int, len(fam)+1),
		colorBy:       make([]int, len(fam)+1),
	}
	// active[a] fills up to the arc's full incidence list; carve the
	// per-arc slices out of one exactly-sized backing array.
	total := 0
	for _, paths := range st.pathsOnArcAll {
		total += len(paths)
	}
	activeBacking := make([]int, total)
	offset := 0
	for a, paths := range st.pathsOnArcAll {
		st.active[a] = activeBacking[offset : offset : offset+len(paths)]
		offset += len(paths)
	}
	for i, a := range peel {
		st.peelPos[a] = i
	}
	for p, path := range fam {
		st.start[p] = path.NumArcs() // everything deleted initially
		st.colors[p] = -1
		// Invariant behind the suffix representation: along any dipath the
		// peel positions of its arcs strictly increase (tails appear in
		// topological order).
		arcs := path.Arcs()
		for i := 1; i < len(arcs); i++ {
			if st.peelPos[arcs[i-1]] >= st.peelPos[arcs[i]] {
				return nil, fmt.Errorf("core: internal error: peel positions not increasing along dipath %d", p)
			}
		}
	}
	return st, nil
}

// insertArc re-inserts arc e, extending every dipath through it and
// recoloring so that all of them receive pairwise distinct wavelengths.
func (st *peelState) insertArc(e digraph.ArcID) error {
	q0 := st.pathsOnArcAll[e]
	if len(q0) == 0 {
		return nil
	}
	pi0 := len(q0) // load of e at insertion time: every dipath through e restarts here
	if pi0 > st.palette {
		st.palette = pi0
	}
	// P0 of the proof: the alive (non-empty) suffixes of the dipaths of Q0.
	var alive []int
	for _, p := range q0 {
		if st.start[p] < st.fam[p].NumArcs() {
			alive = append(alive, p)
		}
	}
	// Recolor until the alive suffixes have pairwise distinct colors.
	for {
		dupA, dupB, ok := st.findDuplicate(alive)
		if !ok {
			break
		}
		beta, err := st.colorUnusedBy(alive)
		if err != nil {
			return err
		}
		if err := st.runChain(dupA, dupB, beta); err != nil {
			return err
		}
	}
	// Extend: every dipath of Q0 now starts at e; dead ones need fresh
	// colors distinct from the alive ones and from each other.
	st.markColors()
	for _, p := range alive {
		st.markColor(st.colors[p], p)
	}
	next := 0
	for _, p := range q0 {
		idx := st.fam[p].ArcIndex(e)
		if st.start[p] != idx+1 {
			return fmt.Errorf("core: internal error: dipath %d suffix start %d, expected %d", p, st.start[p], idx+1)
		}
		st.start[p] = idx
		st.active[e] = append(st.active[e], p)
		if st.colors[p] >= 0 {
			continue // alive suffix keeps its color
		}
		for next < st.palette && st.colorMarked(next) {
			next++
		}
		if next >= st.palette {
			return fmt.Errorf("core: internal error: palette %d exhausted at arc %d", st.palette, e)
		}
		st.colors[p] = next
		st.markColor(next, p)
	}
	return nil
}

// findDuplicate returns two distinct paths of the set sharing a color.
func (st *peelState) findDuplicate(paths []int) (int, int, bool) {
	st.markColors()
	for _, p := range paths {
		c := st.colors[p]
		if st.colorMarked(c) {
			return st.colorBy[c], p, true
		}
		st.markColor(c, p)
	}
	return -1, -1, false
}

// colorUnusedBy returns a palette color not used by any path of the set.
func (st *peelState) colorUnusedBy(paths []int) (int, error) {
	st.markColors()
	for _, p := range paths {
		st.markColor(st.colors[p], p)
	}
	for c := 0; c < st.palette; c++ {
		if !st.colorMarked(c) {
			return c, nil
		}
	}
	return -1, fmt.Errorf("core: internal error: no free color in palette of %d for %d anchored dipaths", st.palette, len(paths))
}

// runChain performs the alternating recoloring of the proof of Theorem 1:
// anchor keeps its color α, mover is flipped from α to β, and conflicting
// color classes are flipped alternately until the coloring is proper
// again. Reaching the anchor is the proof's case C and certifies an
// internal cycle — impossible here, reported as an error for defence in
// depth.
func (st *peelState) runChain(anchor, mover, beta int) error {
	alpha := st.colors[mover]
	st.chainGen++
	st.flipGen[mover] = st.chainGen
	st.colors[mover] = beta
	frontier := []int{mover}
	conflictColor, newColor := beta, alpha
	for len(frontier) > 0 {
		var next []int
		for _, p := range frontier {
			arcs := st.fam[p].Arcs()
			for _, a := range arcs[st.start[p]:] {
				for _, q := range st.active[a] {
					if q == p || st.colors[q] != conflictColor {
						continue
					}
					if st.flipGen[q] == st.chainGen {
						// Flipped earlier in this chain: by the case-B
						// argument it can no longer conflict; skip.
						continue
					}
					if q == anchor {
						return fmt.Errorf("core: recoloring chain reached the anchored dipath (case C): %w", ErrInternalCycle)
					}
					st.flipGen[q] = st.chainGen
					st.colors[q] = newColor
					next = append(next, q)
				}
			}
		}
		frontier = next
		conflictColor, newColor = newColor, conflictColor
	}
	return nil
}
