package core

import (
	"fmt"

	"wavedag/internal/conflict"
	"wavedag/internal/cycles"
	"wavedag/internal/dag"
	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/load"
	"wavedag/internal/upp"
)

// ColorOneInternalCycleUPP colors fam with at most ⌈4π/3⌉ wavelengths on
// an UPP-DAG g with exactly one internal cycle — the constructive proof
// of Theorem 6 of the paper.
//
// The algorithm follows the paper:
//
//  1. pick the arc (a,b) of the unique internal cycle with maximum load,
//     and pad the family with copies of the dipath [a,b] until
//     load(a,b) = π;
//  2. split (a,b) into (a,s) and (t,b) (fresh sink s and source t); every
//     dipath through (a,b) splits into a left part [x…a,s] and a right
//     part [t,b…y]. The split graph has no internal cycle, so Theorem 1
//     colors the split family with exactly π wavelengths;
//  3. the left parts all share (a,s) and the right parts all share (t,b),
//     so each side uses each of the π wavelengths exactly once. Following
//     left-color → right-color induces a permutation of the wavelengths
//     whose cycle decomposition C1 ∪ C2 ∪ … drives the re-merge: fixed
//     points keep their color; each longer cycle spends one extra color γ
//     (its first member takes γ, the others their left colors); 2-cycles
//     are paired so two of them share one extra color, and a leftover
//     2-cycle is absorbed into a longer cycle when one exists;
//  4. a non-through dipath whose color now collides with a re-merged
//     through-dipath is repaired with the extra color of the group.
//
// Deviation D1 (see DESIGN.md): the paper treats the through-dipaths as
// having pairwise distinct routes, which its Facts 1–2 rely on; families
// with replicated dipaths — exactly what the Theorem 7 tightness
// construction produces — violate that. We therefore group through-
// dipaths into *bundles* of identical routes and exploit two freedoms the
// paper leaves implicit: (i) within a bundle the pairing between left
// and right parts is arbitrary, so every wavelength whose left part and
// right part belong to the same bundle is made a conflict-free fixed
// point, and (ii) the remaining transitions form an Eulerian multigraph
// over bundles, which always decomposes into *simple* directed cycles, so
// each permutation cycle visits every bundle at most once and the
// uniqueness/disjointness facts apply route-wise again. Any residual
// collision (possible only through same-side route overlaps) is resolved
// by a bounded exact search within the ⌈4π/3⌉ palette.
func ColorOneInternalCycleUPP(g *digraph.Digraph, fam dipath.Family) (*Result, error) {
	if err := fam.Validate(g); err != nil {
		return nil, err
	}
	return colorOneInternalCycleUPP(g, fam)
}

// colorOneInternalCycleUPP is ColorOneInternalCycleUPP for pre-validated
// families (ColorDAG validates once; session-internal families were
// validated at construction).
func colorOneInternalCycleUPP(g *digraph.Digraph, fam dipath.Family) (*Result, error) {
	if !dag.IsDAG(g) {
		return nil, dag.ErrCyclic
	}
	switch n := cycles.IndependentCycleCount(g); {
	case n == 0:
		// Degenerate but legal: Theorem 1 applies directly and is stronger.
		return colorNoInternalCycle(g, fam)
	case n > 1:
		return nil, fmt.Errorf("core: %d independent internal cycles, Theorem 6 needs exactly 1", n)
	}
	if ok, u, v, err := upp.IsUPP(g); err != nil {
		return nil, err
	} else if !ok {
		return nil, fmt.Errorf("core: two dipaths from %d to %d: %w", u, v, ErrNotUPP)
	}

	// One incremental tracker answers both load questions (π and the
	// most-loaded cycle arc) in a single pass over the family.
	tracker := load.NewTrackerFromFamily(g, fam)
	pi := tracker.Pi()
	if pi == 0 {
		colors := make([]int, len(fam))
		return newResult(colors, 0), nil
	}

	cyc, ok := cycles.FindInternalCycle(g)
	if !ok {
		return nil, fmt.Errorf("core: internal error: cycle count 1 but no cycle found")
	}
	abArc, abLoad, err := tracker.MaxAmong(cyc.ArcIDs())
	if err != nil {
		return nil, err
	}
	ab := g.Arc(abArc)

	// Step 1: pad with copies of [a,b] so that load(a,b) = π.
	work := fam.Clone()
	pad := dipath.MustFromVertices(g, ab.Tail, ab.Head)
	for i := abLoad; i < pi; i++ {
		work = append(work, pad)
	}

	// Step 2: build the split graph G̃ and the split family.
	sg, arcMap, arcAS, arcTB := splitGraph(g, abArc)
	split, origin, throughs, err := splitFamily(sg, work, abArc, arcMap, arcAS, arcTB)
	if err != nil {
		return nil, err
	}
	if cycles.HasInternalCycle(sg) {
		return nil, fmt.Errorf("core: internal error: split graph still has an internal cycle")
	}
	base, err := ColorNoInternalCycle(sg, split)
	if err != nil {
		return nil, fmt.Errorf("core: coloring split graph: %w", err)
	}
	if base.Pi != pi {
		return nil, fmt.Errorf("core: internal error: split load %d != %d", base.Pi, pi)
	}

	// Step 3 (bundle-aware, deviation D1): group through-dipaths by route.
	bundleOf := map[string]int{}
	var bundleMembers [][]int // bundle -> through indices
	throughBundle := make([]int, len(throughs))
	for ti, th := range throughs {
		key := work[th.work].String()
		b, seen := bundleOf[key]
		if !seen {
			b = len(bundleMembers)
			bundleOf[key] = b
			bundleMembers = append(bundleMembers, nil)
		}
		bundleMembers[b] = append(bundleMembers[b], ti)
		throughBundle[ti] = b
	}
	// Left and right parts each use every wavelength exactly once.
	leftBundle := make([]int, pi)  // color -> bundle owning it on the left
	rightBundle := make([]int, pi) // color -> bundle owning it on the right
	for i := range leftBundle {
		leftBundle[i], rightBundle[i] = -1, -1
	}
	for ti, th := range throughs {
		lc, rc := base.Colors[th.left], base.Colors[th.right]
		if lc < 0 || lc >= pi || rc < 0 || rc >= pi || leftBundle[lc] != -1 || rightBundle[rc] != -1 {
			return nil, fmt.Errorf("core: internal error: split part colors not bijective")
		}
		leftBundle[lc] = throughBundle[ti]
		rightBundle[rc] = throughBundle[ti]
	}

	// Dispense bundle members as finals are decided.
	memberQueue := make([][]int, len(bundleMembers))
	for b := range bundleMembers {
		memberQueue[b] = append([]int(nil), bundleMembers[b]...)
	}
	takeMember := func(b int) (int, error) {
		if len(memberQueue[b]) == 0 {
			return -1, fmt.Errorf("core: internal error: bundle %d exhausted", b)
		}
		ti := memberQueue[b][0]
		memberQueue[b] = memberQueue[b][1:]
		return ti, nil
	}

	finalColors := make([]int, len(work))
	for i := range finalColors {
		finalColors[i] = -1
	}
	// Non-through dipaths keep their split color.
	for si, oi := range origin {
		if oi >= 0 {
			finalColors[oi] = base.Colors[si]
		}
	}

	// Fixed points: wavelengths whose left and right sides live in the
	// same bundle. The merged dipath keeps the wavelength and cannot
	// conflict (no dipath of that color crosses either side of the route).
	for c := 0; c < pi; c++ {
		if leftBundle[c] == rightBundle[c] {
			ti, err := takeMember(leftBundle[c])
			if err != nil {
				return nil, err
			}
			finalColors[throughs[ti].work] = c
		}
	}

	// Remaining wavelengths induce an Eulerian multigraph over bundles:
	// color c is an edge rightBundle(c) -> leftBundle(c). Decompose it
	// into simple cycles so each permutation cycle meets each bundle once.
	colorCycles, err := simpleCycleDecomposition(pi, leftBundle, rightBundle)
	if err != nil {
		return nil, err
	}

	var longCycles, twoCycles [][]int
	for _, cycle := range colorCycles {
		if len(cycle) == 2 {
			twoCycles = append(twoCycles, cycle)
		} else {
			longCycles = append(longCycles, cycle)
		}
	}

	type repairGroup struct {
		gamma   int   // the extra color of the group
		members []int // work indices of re-merged through-dipaths to check
	}
	var groups []repairGroup
	nextExtra := pi
	assignCycle := func(cycle []int, gammaFor0 int) (*repairGroup, error) {
		grp := &repairGroup{gamma: gammaFor0}
		for j, c := range cycle {
			ti, err := takeMember(leftBundle[c])
			if err != nil {
				return nil, err
			}
			wi := throughs[ti].work
			if j == 0 {
				finalColors[wi] = gammaFor0
			} else {
				finalColors[wi] = c
			}
			grp.members = append(grp.members, wi)
		}
		return grp, nil
	}

	// Long cycles: first member takes a fresh γ, the rest their left color.
	var lastLong *repairGroup
	lastLongFreed := -1
	for _, cycle := range longCycles {
		gamma := nextExtra
		nextExtra++
		grp, err := assignCycle(cycle, gamma)
		if err != nil {
			return nil, err
		}
		groups = append(groups, *grp)
		lastLong = &groups[len(groups)-1]
		lastLongFreed = cycle[0]
	}
	// 2-cycles: pair them two by two; each pair shares one extra color.
	for len(twoCycles) >= 2 {
		c1, c2 := twoCycles[0], twoCycles[1]
		twoCycles = twoCycles[2:]
		gamma := nextExtra
		nextExtra++
		grp1, err := assignCycle(c1, gamma)
		if err != nil {
			return nil, err
		}
		// Both members of the second 2-cycle keep their left colors.
		grp := repairGroup{gamma: gamma, members: grp1.members}
		for _, c := range c2 {
			ti, err := takeMember(leftBundle[c])
			if err != nil {
				return nil, err
			}
			wi := throughs[ti].work
			finalColors[wi] = c
			grp.members = append(grp.members, wi)
		}
		groups = append(groups, grp)
	}
	// Leftover single 2-cycle.
	if len(twoCycles) == 1 {
		c := twoCycles[0]
		if lastLong != nil {
			// Absorb into the last long cycle: one member keeps its left
			// color, the other takes the freed first color of that cycle.
			ti1, err := takeMember(leftBundle[c[0]])
			if err != nil {
				return nil, err
			}
			ti2, err := takeMember(leftBundle[c[1]])
			if err != nil {
				return nil, err
			}
			w1, w2 := throughs[ti1].work, throughs[ti2].work
			finalColors[w1] = c[0]
			finalColors[w2] = lastLongFreed
			lastLong.members = append(lastLong.members, w1, w2)
		} else {
			gamma := nextExtra
			nextExtra++
			grp, err := assignCycle(c, gamma)
			if err != nil {
				return nil, err
			}
			groups = append(groups, *grp)
		}
	}

	// Step 4: repairs. First the paper's move — push a colliding
	// non-through dipath onto the group's γ — applied when it stays
	// proper; residual collisions go to a bounded exact search.
	bound := ceilDiv(4*pi, 3)
	if nextExtra > bound {
		return nil, fmt.Errorf("core: internal error: construction spent %d colors, bound ⌈4π/3⌉ = %d", nextExtra, bound)
	}
	inc := dipath.ArcIncidence(g, work)
	isThrough := make([]bool, len(work))
	for _, th := range throughs {
		isThrough[th.work] = true
	}
	conflictsOf := func(qi int) bool {
		for _, a := range work[qi].Arcs() {
			for _, oi := range inc[a] {
				if oi != qi && finalColors[oi] == finalColors[qi] {
					return true
				}
			}
		}
		return false
	}
	for _, grp := range groups {
		for _, wi := range grp.members {
			for _, a := range work[wi].Arcs() {
				for _, qi := range inc[a] {
					if qi == wi || isThrough[qi] || finalColors[qi] != finalColors[wi] {
						continue
					}
					old := finalColors[qi]
					finalColors[qi] = grp.gamma
					if conflictsOf(qi) {
						finalColors[qi] = old // leave for the search below
					}
				}
			}
		}
	}
	if err := repairSearch(work, inc, isThrough, finalColors, bound); err != nil {
		return nil, fmt.Errorf("core: theorem 6 repair: %w", err)
	}

	// Sanity: the merged coloring must be proper and within the bound.
	colors := finalColors[:len(fam)]
	res := newResult(append([]int(nil), colors...), pi)
	if err := Verify(g, fam, res); err != nil {
		return nil, fmt.Errorf("core: internal error: Theorem 6 coloring invalid: %w", err)
	}
	if res.NumColors > bound {
		return nil, fmt.Errorf("core: internal error: used %d colors, bound ⌈4π/3⌉ = %d", res.NumColors, bound)
	}
	return res, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// simpleCycleDecomposition decomposes the transition multigraph — one
// edge rightBundle(c) -> leftBundle(c) per non-fixed wavelength c — into
// simple directed cycles and returns each as its wavelength sequence
// (x_1, …, x_p) where the member of bundle leftBundle(x_j) takes left
// color x_j and hands over to x_{j+1}. The multigraph has equal in- and
// out-degree at every bundle, so the decomposition always exists.
func simpleCycleDecomposition(pi int, leftBundle, rightBundle []int) ([][]int, error) {
	type edge struct {
		to    int // leftBundle(color)
		color int
		used  bool
	}
	out := map[int][]*edge{} // rightBundle -> outgoing transitions
	remaining := 0
	for c := 0; c < pi; c++ {
		if leftBundle[c] == rightBundle[c] {
			continue // fixed point
		}
		out[rightBundle[c]] = append(out[rightBundle[c]], &edge{to: leftBundle[c], color: c})
		remaining++
	}
	nextUnused := func(b int) *edge {
		for _, e := range out[b] {
			if !e.used {
				return e
			}
		}
		return nil
	}
	var cyclesOut [][]int
	for b := range out {
		for {
			first := nextUnused(b)
			if first == nil {
				break
			}
			// Walk until a bundle repeats, peeling off simple cycles.
			type step struct {
				from int
				e    *edge
			}
			var walk []step
			pos := map[int]int{b: 0}
			cur := b
			e := first
			for {
				e.used = true
				remaining--
				walk = append(walk, step{from: cur, e: e})
				cur = e.to
				if p, seen := pos[cur]; seen {
					// Extract walk[p:] as a simple cycle.
					var colors []int
					for _, s := range walk[p:] {
						colors = append(colors, s.e.color)
					}
					cyclesOut = append(cyclesOut, colors)
					walk = walk[:p]
					// Unmark positions beyond p.
					pos = map[int]int{}
					for i, s := range walk {
						pos[s.from] = i
					}
					if len(walk) == 0 {
						break
					}
					cur = walk[len(walk)-1].e.to
					pos[cur] = len(walk)
					e = nextUnused(cur)
					if e == nil {
						return nil, fmt.Errorf("core: internal error: transition multigraph not Eulerian")
					}
					continue
				}
				pos[cur] = len(walk)
				e = nextUnused(cur)
				if e == nil {
					return nil, fmt.Errorf("core: internal error: transition multigraph not Eulerian")
				}
			}
		}
	}
	if remaining != 0 {
		return nil, fmt.Errorf("core: internal error: %d transitions left undecomposed", remaining)
	}
	// Each cycle's wavelength sequence currently lists the handed-over
	// colors in walk order; the member of leftBundle(x_j) has left color
	// x_j, which is exactly what assignCycle consumes.
	return cyclesOut, nil
}

// through records the split indices of a dipath of the work family that
// traverses the split arc.
type through struct {
	work  int // index in the padded work family
	left  int // index of [x…a,s] in the split family
	right int // index of [t,b…y] in the split family
}

// splitGraph returns G̃: g with arc ab removed and two fresh vertices s
// (new sink, fed by a) and t (new source, feeding b). arcMap maps old arc
// ids to new ones (-1 for ab).
func splitGraph(g *digraph.Digraph, ab digraph.ArcID) (sg *digraph.Digraph, arcMap []digraph.ArcID, arcAS, arcTB digraph.ArcID) {
	sg = digraph.New(0)
	for v := 0; v < g.NumVertices(); v++ {
		sg.AddVertex(g.Label(digraph.Vertex(v)))
	}
	s := sg.AddVertex("s*")
	t := sg.AddVertex("t*")
	arcMap = make([]digraph.ArcID, g.NumArcs())
	for _, a := range g.Arcs() {
		if a.ID == ab {
			arcMap[a.ID] = -1
			continue
		}
		arcMap[a.ID] = sg.MustAddArc(a.Tail, a.Head)
	}
	arcAS = sg.MustAddArc(g.Arc(ab).Tail, s)
	arcTB = sg.MustAddArc(t, g.Arc(ab).Head)
	return sg, arcMap, arcAS, arcTB
}

// splitFamily maps the work family onto the split graph. origin[si] is the
// work index of a non-through split path, or -1 when the split path is a
// left/right part of a through dipath (recorded in throughs instead).
func splitFamily(sg *digraph.Digraph, work dipath.Family, ab digraph.ArcID, arcMap []digraph.ArcID, arcAS, arcTB digraph.ArcID) (dipath.Family, []int, []through, error) {
	var split dipath.Family
	var origin []int
	var throughs []through
	for wi, p := range work {
		j := p.ArcIndex(ab)
		if j < 0 {
			arcs := make([]digraph.ArcID, p.NumArcs())
			for i, a := range p.Arcs() {
				arcs[i] = arcMap[a]
			}
			np, err := dipath.FromArcs(sg, arcs...)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("core: mapping dipath %d: %w", wi, err)
			}
			split = append(split, np)
			origin = append(origin, wi)
			continue
		}
		var leftArcs []digraph.ArcID
		for _, a := range p.Arcs()[:j] {
			leftArcs = append(leftArcs, arcMap[a])
		}
		leftArcs = append(leftArcs, arcAS)
		left, err := dipath.FromArcs(sg, leftArcs...)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: left part of dipath %d: %w", wi, err)
		}
		rightArcs := []digraph.ArcID{arcTB}
		for _, a := range p.Arcs()[j+1:] {
			rightArcs = append(rightArcs, arcMap[a])
		}
		right, err := dipath.FromArcs(sg, rightArcs...)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: right part of dipath %d: %w", wi, err)
		}
		split = append(split, left, right)
		origin = append(origin, -1, -1)
		throughs = append(throughs, through{work: wi, left: len(split) - 2, right: len(split) - 1})
	}
	return split, origin, throughs, nil
}

// repairSearch resolves the remaining color collisions exactly: when any
// non-through dipath still conflicts, ALL non-through dipaths are
// recolored from scratch within the palette [0, bound), keeping the
// through finals fixed. The search runs on the quotient by identical
// routes — each class of replicated dipaths needs a set of
// `multiplicity` colors, adjacent classes get disjoint sets, and colors
// of adjacent through-dipaths are forbidden — which collapses the twin
// symmetry of replicated tightness families (deviation D1 in DESIGN.md).
func repairSearch(work dipath.Family, inc [][]int, isThrough []bool, finalColors []int, bound int) error {
	conflictFree := true
scan:
	for a := range inc {
		byColor := map[int]bool{}
		for _, qi := range inc[a] {
			if byColor[finalColors[qi]] {
				conflictFree = false
				break scan
			}
			byColor[finalColors[qi]] = true
		}
	}
	if conflictFree {
		return nil
	}
	// Stage 1: quotient solver with through finals fixed. Exact and fast
	// when the non-through dipaths form few route classes (the replicated
	// tightness families), where per-path search would drown in symmetry.
	if repairQuotient(work, inc, func(qi int) bool { return !isThrough[qi] }, finalColors, bound, 12) {
		return nil
	}
	// Stage 2: per-path DSATUR-backtracking completion with through
	// finals fixed — effective on heterogeneous workloads.
	cg := conflict.NewGraph(len(work))
	for a := range inc {
		paths := inc[a]
		for i := 0; i < len(paths); i++ {
			for j := i + 1; j < len(paths); j++ {
				if err := cg.AddEdge(paths[i], paths[j]); err != nil {
					return err
				}
			}
		}
	}
	partial := make([]int, len(work))
	for qi := range work {
		if isThrough[qi] {
			partial[qi] = finalColors[qi]
		} else {
			partial[qi] = -1
		}
	}
	if colors, ok := cg.CompleteColoring(partial, bound); ok {
		copy(finalColors, colors)
		return nil
	}
	// Stage 3: the construction's finals were not completable at all
	// (non-through dipaths can interact with whole bundles). The theorem
	// guarantees some coloring within the bound exists; find one with the
	// through finals free as well.
	if repairQuotient(work, inc, func(int) bool { return true }, finalColors, bound, 12) {
		return nil
	}
	if colors, err := cg.OptimalColoring(); err == nil && conflict.CountColors(colors) <= bound {
		copy(finalColors, colors)
		return nil
	}
	return fmt.Errorf("no proper recoloring within %d colors found", bound)
}

// repairQuotient recolors the dipaths selected by movable using the
// class-quotient search, treating every other dipath's color as fixed.
// It reports whether a proper assignment within [0, bound) was found and
// applied. The search is attempted only when the movable dipaths form at
// most maxClasses route classes — the regime the group/pattern solver is
// built for.
func repairQuotient(work dipath.Family, inc [][]int, movable func(int) bool, finalColors []int, bound, maxClasses int) bool {
	classIdx := map[string]int{}
	var members [][]int
	classOf := make([]int, len(work))
	for qi := range work {
		classOf[qi] = -1
		if !movable(qi) {
			continue
		}
		key := work[qi].String()
		ci, ok := classIdx[key]
		if !ok {
			ci = len(members)
			classIdx[key] = ci
			members = append(members, nil)
		}
		members[ci] = append(members[ci], qi)
		classOf[qi] = ci
	}
	nClasses := len(members)
	if nClasses == 0 || nClasses > maxClasses {
		return false
	}
	forbidden := make([]map[int]bool, nClasses)
	adj := make([]map[int]bool, nClasses)
	for ci := range forbidden {
		forbidden[ci] = map[int]bool{}
		adj[ci] = map[int]bool{}
	}
	for a := range inc {
		paths := inc[a]
		for i := 0; i < len(paths); i++ {
			for j := i + 1; j < len(paths); j++ {
				p, q := paths[i], paths[j]
				cp, cq := classOf[p], classOf[q]
				switch {
				case cp >= 0 && cq >= 0 && cp != cq:
					adj[cp][cq] = true
					adj[cq][cp] = true
				case cp >= 0 && cq < 0:
					forbidden[cp][finalColors[q]] = true
				case cq >= 0 && cp < 0:
					forbidden[cq][finalColors[p]] = true
				}
			}
		}
	}
	assigned := make([][]int, nClasses)
	if !assignClasses(members, forbidden, adj, assigned, bound) {
		return false
	}
	for ci, colors := range assigned {
		for k, qi := range members[ci] {
			finalColors[qi] = colors[k]
		}
	}
	return true
}

// assignClasses solves the class set-coloring exactly by searching over
// (color group, pattern) counts rather than individual colors:
//
//   - colors with the same forbidden-signature are interchangeable, so
//     they form groups (through finals sharing a neighbourhood collapse
//     into one group, fresh extras into another);
//   - within a group, a color may serve any independent set of allowed
//     classes, and serving a maximal one is never worse, so the choice
//     per group reduces to "how many of its colors use each maximal
//     pattern" — a tiny integer distribution problem.
//
// This collapses both the color symmetry and the member symmetry of
// replicated families; the search is depth-first over groups with a
// coverage-feasibility bound.
func assignClasses(members [][]int, forbidden, adj []map[int]bool, assigned [][]int, bound int) bool {
	n := len(members)
	demand := make([]int, n)
	for i := range members {
		demand[i] = len(members[i])
	}
	// Group colors by forbidden-signature.
	sigOf := func(col int) string {
		s := make([]byte, n)
		for ci := 0; ci < n; ci++ {
			if forbidden[ci][col] {
				s[ci] = '1'
			} else {
				s[ci] = '0'
			}
		}
		return string(s)
	}
	groupIdx := map[string]int{}
	var groupColors [][]int
	var groupAllowed [][]bool // group -> class -> usable
	for col := 0; col < bound; col++ {
		sig := sigOf(col)
		gi, ok := groupIdx[sig]
		if !ok {
			gi = len(groupColors)
			groupIdx[sig] = gi
			groupColors = append(groupColors, nil)
			allowed := make([]bool, n)
			for ci := 0; ci < n; ci++ {
				allowed[ci] = sig[ci] == '0'
			}
			groupAllowed = append(groupAllowed, allowed)
		}
		groupColors[gi] = append(groupColors[gi], col)
	}
	// Maximal independent patterns per group.
	patterns := make([][][]int, len(groupColors))
	for gi := range groupColors {
		patterns[gi] = maximalIndependentSets(n, adj, groupAllowed[gi])
	}
	// maxServe[gi][ci]: 1 when some pattern of the group serves the class.
	maxServe := make([][]int, len(groupColors))
	for gi := range patterns {
		maxServe[gi] = make([]int, n)
		for _, p := range patterns[gi] {
			for _, ci := range p {
				maxServe[gi][ci] = 1
			}
		}
	}
	remaining := append([]int(nil), demand...)
	// chosen[gi] = pattern counts for group gi.
	chosen := make([][]int, len(groupColors))
	var nodes int
	const nodeCap = 4000000

	// future[gi][ci] = total coverage classes ci can still receive from
	// groups gi.. onward (for pruning).
	future := make([][]int, len(groupColors)+1)
	future[len(groupColors)] = make([]int, n)
	for gi := len(groupColors) - 1; gi >= 0; gi-- {
		future[gi] = make([]int, n)
		for ci := 0; ci < n; ci++ {
			future[gi][ci] = future[gi+1][ci] + maxServe[gi][ci]*len(groupColors[gi])
		}
	}

	var solveGroup func(gi int) bool
	solveGroup = func(gi int) bool {
		if nodes++; nodes > nodeCap {
			return false
		}
		if gi == len(groupColors) {
			for ci := 0; ci < n; ci++ {
				if remaining[ci] > 0 {
					return false
				}
			}
			return true
		}
		for ci := 0; ci < n; ci++ {
			if remaining[ci] > future[gi][ci] {
				return false // cannot be covered any more
			}
		}
		pats := patterns[gi]
		counts := make([]int, len(pats))
		budget := len(groupColors[gi])
		// Distribute budget colors over patterns (stars and bars DFS).
		var distribute func(pi, left int) bool
		distribute = func(pi, left int) bool {
			if nodes++; nodes > nodeCap {
				return false
			}
			if pi == len(pats) {
				if ok := solveGroup(gi + 1); ok {
					chosen[gi] = append([]int(nil), counts...)
					return true
				}
				return false
			}
			// Try the largest useful count first: patterns serving hot
			// classes get filled greedily, which matches the structure of
			// tight instances.
			maxUseful := left
			for k := maxUseful; k >= 0; k-- {
				counts[pi] = k
				for _, ci := range pats[pi] {
					remaining[ci] -= k
				}
				if distribute(pi+1, left-k) {
					return true
				}
				for _, ci := range pats[pi] {
					remaining[ci] += k
				}
				counts[pi] = 0
			}
			return false
		}
		return distribute(0, budget)
	}
	if !solveGroup(0) {
		return false
	}
	// Materialise: walk groups, deal colors to patterns, patterns to
	// classes; each class keeps the first `demand` colors it receives.
	sets := make([][]int, n)
	for gi, counts := range chosen {
		next := 0
		for pi, k := range counts {
			for t := 0; t < k; t++ {
				col := groupColors[gi][next]
				next++
				for _, ci := range patterns[gi][pi] {
					if len(sets[ci]) < demand[ci] {
						sets[ci] = append(sets[ci], col)
					}
				}
			}
		}
	}
	for ci := 0; ci < n; ci++ {
		if len(sets[ci]) < demand[ci] {
			return false // cannot happen if the search accounting is right
		}
		assigned[ci] = sets[ci]
	}
	return true
}

// maximalIndependentSets enumerates the maximal independent sets of the
// class quotient graph restricted to the allowed classes — equivalently
// the maximal cliques of the complement — via Bron–Kerbosch with
// pivoting (output-sensitive). The output is capped at 4096 sets; hitting
// the cap makes the downstream search incomplete but still sound.
func maximalIndependentSets(n int, adj []map[int]bool, allowed []bool) [][]int {
	var verts []int
	for ci := 0; ci < n; ci++ {
		if allowed[ci] {
			verts = append(verts, ci)
		}
	}
	// Complement adjacency (non-adjacency in the quotient) restricted to
	// the allowed vertices.
	conn := func(u, v int) bool { return u != v && !adj[u][v] }
	const cap = 4096
	var out [][]int
	var bk func(r, p, x []int)
	bk = func(r, p, x []int) {
		if len(out) >= cap {
			return
		}
		if len(p) == 0 && len(x) == 0 {
			out = append(out, append([]int(nil), r...))
			return
		}
		// Pivot: vertex of p ∪ x with most complement-neighbours in p.
		pivot, best := -1, -1
		for _, cand := range [][]int{p, x} {
			for _, u := range cand {
				c := 0
				for _, v := range p {
					if conn(u, v) {
						c++
					}
				}
				if c > best {
					pivot, best = u, c
				}
			}
		}
		var candidates []int
		for _, v := range p {
			if pivot < 0 || !conn(pivot, v) {
				candidates = append(candidates, v)
			}
		}
		for _, v := range candidates {
			var np, nx []int
			for _, u := range p {
				if conn(v, u) {
					np = append(np, u)
				}
			}
			for _, u := range x {
				if conn(v, u) {
					nx = append(nx, u)
				}
			}
			bk(append(r, v), np, nx)
			// Move v from p to x.
			for i, u := range p {
				if u == v {
					p = append(p[:i:i], p[i+1:]...)
					break
				}
			}
			x = append(x, v)
		}
	}
	bk(nil, verts, nil)
	return out
}
