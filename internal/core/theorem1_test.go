package core

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"wavedag/internal/conflict"
	"wavedag/internal/dag"
	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/gen"
	"wavedag/internal/load"
)

// requireTheorem1 runs ColorNoInternalCycle and asserts validity and
// w = π (for π >= 1).
func requireTheorem1(t *testing.T, g *digraph.Digraph, fam dipath.Family) *Result {
	t.Helper()
	res, err := ColorNoInternalCycle(g, fam)
	if err != nil {
		t.Fatalf("ColorNoInternalCycle: %v", err)
	}
	if err := Verify(g, fam, res); err != nil {
		t.Fatalf("coloring invalid: %v", err)
	}
	pi := load.Pi(g, fam)
	if res.Pi != pi {
		t.Fatalf("reported π = %d, want %d", res.Pi, pi)
	}
	if pi >= 1 && res.NumColors != pi {
		t.Fatalf("used %d colors, want exactly π = %d", res.NumColors, pi)
	}
	return res
}

func TestTheorem1EmptyFamily(t *testing.T) {
	g := digraph.New(3)
	g.MustAddArc(0, 1)
	res, err := ColorNoInternalCycle(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Colors) != 0 || res.Pi != 0 {
		t.Fatalf("res = %+v", res)
	}
}

func TestTheorem1SingleArc(t *testing.T) {
	g := digraph.New(2)
	g.MustAddArc(0, 1)
	fam := dipath.Family{dipath.MustFromVertices(g, 0, 1)}
	res := requireTheorem1(t, g, fam)
	if res.Colors[0] != 0 {
		t.Fatalf("colors = %v", res.Colors)
	}
}

func TestTheorem1PathGraphStack(t *testing.T) {
	// k identical dipaths on a path graph: π = k, all colors distinct.
	g := digraph.New(5)
	for i := 0; i < 4; i++ {
		g.MustAddArc(digraph.Vertex(i), digraph.Vertex(i+1))
	}
	base := dipath.MustFromVertices(g, 0, 1, 2, 3, 4)
	for k := 1; k <= 6; k++ {
		fam := dipath.Family{base}.Replicate(k)
		res := requireTheorem1(t, g, fam)
		if res.NumColors != k {
			t.Fatalf("k=%d: colors=%d", k, res.NumColors)
		}
	}
}

func TestTheorem1IntervalFamily(t *testing.T) {
	// Dipaths on a path graph are intervals; w = π is the classic
	// interval-graph coloring fact, here recovered as a special case.
	g := digraph.New(8)
	for i := 0; i < 7; i++ {
		g.MustAddArc(digraph.Vertex(i), digraph.Vertex(i+1))
	}
	fam := dipath.Family{
		dipath.MustFromVertices(g, 0, 1, 2, 3),
		dipath.MustFromVertices(g, 2, 3, 4),
		dipath.MustFromVertices(g, 3, 4, 5, 6),
		dipath.MustFromVertices(g, 1, 2, 3, 4, 5),
		dipath.MustFromVertices(g, 5, 6, 7),
		dipath.MustFromVertices(g, 0, 1),
		dipath.MustFromVertices(g, 6, 7),
	}
	requireTheorem1(t, g, fam)
}

func TestTheorem1OutTree(t *testing.T) {
	// Rooted trees are internal-cycle-free; the paper's §1 notes w = π for
	// them (E11).
	g := gen.RandomArborescence(40, 3)
	fam := gen.RandomWalkFamily(g, 60, 8, 4)
	requireTheorem1(t, g, fam)
}

func TestTheorem1SingleVertexPathsColored(t *testing.T) {
	g := digraph.New(3)
	g.MustAddArc(0, 1)
	fam := dipath.Family{
		dipath.MustFromVertices(g, 2),
		dipath.MustFromVertices(g, 0, 1),
	}
	res, err := ColorNoInternalCycle(g, fam)
	if err != nil {
		t.Fatal(err)
	}
	if res.Colors[0] < 0 || res.Colors[1] < 0 {
		t.Fatalf("colors = %v", res.Colors)
	}
}

func TestTheorem1RejectsInternalCycle(t *testing.T) {
	g, fam := gen.Fig3()
	_, err := ColorNoInternalCycle(g, fam)
	if !errors.Is(err, ErrInternalCycle) {
		t.Fatalf("err = %v, want ErrInternalCycle", err)
	}
}

func TestTheorem1RejectsCyclicDigraph(t *testing.T) {
	g := digraph.New(2)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 0)
	_, err := ColorNoInternalCycle(g, nil)
	if !errors.Is(err, dag.ErrCyclic) {
		t.Fatalf("err = %v, want ErrCyclic", err)
	}
}

func TestTheorem1RejectsForeignPaths(t *testing.T) {
	g := digraph.New(3)
	g.MustAddArc(0, 1)
	other := digraph.New(3)
	other.MustAddArc(1, 2)
	fam := dipath.Family{dipath.MustFromVertices(other, 1, 2)}
	if _, err := ColorNoInternalCycle(g, fam); err == nil {
		t.Fatal("foreign path accepted")
	}
}

// The diamond forces the recoloring machinery: paths meeting at the sink
// side arcs must be untangled.
func TestTheorem1Diamond(t *testing.T) {
	g := digraph.New(4)
	g.MustAddArc(0, 1)
	g.MustAddArc(0, 2)
	g.MustAddArc(1, 3)
	g.MustAddArc(2, 3)
	fam := dipath.Family{
		dipath.MustFromVertices(g, 0, 1, 3),
		dipath.MustFromVertices(g, 0, 2, 3),
		dipath.MustFromVertices(g, 0, 1),
		dipath.MustFromVertices(g, 1, 3),
		dipath.MustFromVertices(g, 0, 2),
		dipath.MustFromVertices(g, 2, 3),
	}
	requireTheorem1(t, g, fam)
}

func TestTheorem1RandomNoInternalCycleDAGs(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		g, err := gen.RandomNoInternalCycleDAG(10+int(seed%7), 3, 3, 0.25, seed)
		if err != nil {
			t.Fatal(err)
		}
		fam := gen.RandomWalkFamily(g, 25, 6, seed*7+1)
		requireTheorem1(t, g, fam)
	}
}

func TestTheorem1LargeRandom(t *testing.T) {
	g, err := gen.RandomNoInternalCycleDAG(120, 12, 12, 0.1, 42)
	if err != nil {
		t.Fatal(err)
	}
	fam := gen.RandomWalkFamily(g, 400, 10, 43)
	requireTheorem1(t, g, fam)
}

// Property-based: for any seeded random internal-cycle-free instance the
// algorithm uses exactly π colors and the coloring is proper.
func TestTheorem1Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nInt := 4 + rng.Intn(14)
		g, err := gen.RandomNoInternalCycleDAG(nInt, 1+rng.Intn(4), 1+rng.Intn(4), rng.Float64()*0.4, seed)
		if err != nil {
			return false
		}
		fam := gen.RandomWalkFamily(g, 5+rng.Intn(40), 1+rng.Intn(8), seed+1)
		res, err := ColorNoInternalCycle(g, fam)
		if err != nil {
			return false
		}
		if Verify(g, fam, res) != nil {
			return false
		}
		pi := load.Pi(g, fam)
		return pi == 0 || res.NumColors == pi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// The exact chromatic number must agree with π on internal-cycle-free
// instances (cross-validation against the independent exact solver).
func TestTheorem1AgreesWithExactChi(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		g, err := gen.RandomNoInternalCycleDAG(8, 2, 2, 0.3, seed)
		if err != nil {
			t.Fatal(err)
		}
		fam := gen.RandomWalkFamily(g, 14, 5, seed+100)
		pi := load.Pi(g, fam)
		if pi == 0 {
			continue
		}
		cg := conflict.FromFamily(g, fam)
		if chi := cg.ChromaticNumber(); chi != pi {
			t.Fatalf("seed %d: χ = %d, π = %d — Theorem 1 contradicted?!", seed, chi, pi)
		}
		requireTheorem1(t, g, fam)
	}
}

// Shrinking/peeling invariant stress: families where many dipaths start
// at the same source arc (forcing the fresh-color branch) and families of
// single-arc dipaths.
func TestTheorem1SingleArcFamilies(t *testing.T) {
	g := digraph.New(6)
	arcs := [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 4}, {4, 3}, {3, 5}}
	for _, a := range arcs {
		g.MustAddArc(digraph.Vertex(a[0]), digraph.Vertex(a[1]))
	}
	var fam dipath.Family
	for _, a := range arcs {
		fam = append(fam, dipath.MustFromVertices(g, digraph.Vertex(a[0]), digraph.Vertex(a[1])))
		fam = append(fam, dipath.MustFromVertices(g, digraph.Vertex(a[0]), digraph.Vertex(a[1])))
	}
	res := requireTheorem1(t, g, fam)
	if res.NumColors != 2 {
		t.Fatalf("NumColors = %d, want 2", res.NumColors)
	}
}

func TestVerifyRejectsBadResults(t *testing.T) {
	g := digraph.New(3)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 2)
	fam := dipath.Family{
		dipath.MustFromVertices(g, 0, 1, 2),
		dipath.MustFromVertices(g, 1, 2),
	}
	if err := Verify(g, fam, nil); err == nil {
		t.Fatal("nil result verified")
	}
	if err := Verify(g, fam, &Result{Colors: []int{0}}); err == nil {
		t.Fatal("short result verified")
	}
	if err := Verify(g, fam, &Result{Colors: []int{0, 0}}); err == nil {
		t.Fatal("conflicting coloring verified")
	}
	if err := Verify(g, fam, &Result{Colors: []int{0, 1}}); err != nil {
		t.Fatalf("good coloring rejected: %v", err)
	}
}
