package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wavedag/internal/check"
	"wavedag/internal/conflict"
	"wavedag/internal/dipath"
	"wavedag/internal/gen"
	"wavedag/internal/load"
	"wavedag/internal/upp"
)

// randomOneCycleWorkload builds a random dipath family on a random
// one-internal-cycle UPP-DAG (the Theorem 2 gadget with random size) by
// sampling routable pairs and replicating some of them.
func randomOneCycleWorkload(seed int64) (*gen.Instance, error) {
	rng := rand.New(rand.NewSource(seed))
	k := 2 + rng.Intn(5)
	g, _, err := gen.InternalCycleGadget(k)
	if err != nil {
		return nil, err
	}
	router, err := upp.NewRouter(g)
	if err != nil {
		return nil, err
	}
	all := router.AllPairsFamily()
	var fam dipath.Family
	for _, p := range all {
		if p.NumArcs() == 0 {
			continue
		}
		reps := 0
		switch rng.Intn(4) {
		case 0:
			reps = 0
		case 1:
			reps = 1
		case 2:
			reps = 2
		case 3:
			reps = 1 + rng.Intn(4)
		}
		for r := 0; r < reps; r++ {
			fam = append(fam, p)
		}
	}
	return &gen.Instance{G: g, F: fam}, nil
}

// Property: on random one-cycle UPP workloads, Theorem 6 always produces
// a proper coloring within ⌈4π/3⌉, and never below the exact χ on small
// instances.
func TestTheorem6PropertyRandomWorkloads(t *testing.T) {
	f := func(seed int64) bool {
		inst, err := randomOneCycleWorkload(seed)
		if err != nil {
			return false
		}
		res, err := ColorOneInternalCycleUPP(inst.G, inst.F)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := check.WavelengthsWithinBound(inst.G, inst.F, res.Colors, 4, 3); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if len(inst.F) <= 24 && len(inst.F) > 0 {
			cg := conflict.FromFamily(inst.G, inst.F)
			if res.NumColors < cg.ChromaticNumber() {
				t.Logf("seed %d: impossible %d < χ", seed, res.NumColors)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: on random Havet workloads (random subfamilies with random
// replication), Theorem 6 stays within bound and valid.
func TestTheorem6PropertyHavetWorkloads(t *testing.T) {
	g, base := gen.Havet()
	router, err := upp.NewRouter(g)
	if err != nil {
		t.Fatal(err)
	}
	all := router.AllPairsFamily()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var fam dipath.Family
		for _, p := range base {
			for r := rng.Intn(4); r > 0; r-- {
				fam = append(fam, p)
			}
		}
		for _, p := range all {
			if p.NumArcs() > 0 && rng.Intn(3) == 0 {
				fam = append(fam, p)
			}
		}
		res, err := ColorOneInternalCycleUPP(g, fam)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return check.WavelengthsWithinBound(g, fam, res.Colors, 4, 3) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: π ≤ w for every algorithm on every random instance (the
// trivial direction, guarded across the whole dispatcher).
func TestColorDAGPiLowerBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := gen.RandomDAG(4+rng.Intn(20), rng.Intn(50), seed)
		fam, err := gen.SubpathFamily(g, rng.Intn(25), seed+1)
		if err != nil {
			return false
		}
		res, _, err := ColorDAG(g, fam)
		if err != nil {
			return false
		}
		return check.PiLowerBoundsColors(g, fam, res.Colors) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Padding invariant: Theorem 6's answer is insensitive to pre-padding by
// the caller — adding copies of the split arc's dipath to the input must
// keep the output within the (possibly larger) bound and proper.
func TestTheorem6PaddingInsensitive(t *testing.T) {
	g, fam := gen.Havet()
	// Arc b1->c1 is on the internal cycle.
	withPad := fam.Clone()
	withPad = append(withPad, dipath.MustFromVertices(g, 1, 2), dipath.MustFromVertices(g, 1, 2))
	res, err := ColorOneInternalCycleUPP(g, withPad)
	if err != nil {
		t.Fatal(err)
	}
	if err := check.WavelengthsWithinBound(g, withPad, res.Colors, 4, 3); err != nil {
		t.Fatal(err)
	}
	if pi := load.Pi(g, withPad); pi != 4 {
		t.Fatalf("π = %d, want 4", pi)
	}
}
