package core

import (
	"math/rand"
	"testing"

	"wavedag/internal/check"
	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/load"
)

// diamondChain builds a chain of d diamonds: s_i -> {a_i, b_i} -> s_{i+1}.
// Every undirected cycle passes through some s_i, which is a "junction"
// with both in- and out-degree positive for 0 < i < d... so to keep the
// graph internal-cycle-free each diamond is fed by its own source and
// drained by its own sink, with the junctions connected through them.
//
// Concretely: junction j_i has a private source feeding it and a private
// sink draining it; the diamond between j_i and j_{i+1} would create an
// internal cycle, so instead the two parallel branches a_i, b_i connect a
// source-side fork to a sink-side join: fork_i -> {a_i, b_i} -> join_i,
// where fork_i is a source and join_i is a sink. Paths overlap on the
// branch arcs only.
func diamondChain(d int) (*digraph.Digraph, dipath.Family) {
	g := digraph.New(0)
	var fam dipath.Family
	for i := 0; i < d; i++ {
		fork := g.AddVertex("")
		a := g.AddVertex("")
		b := g.AddVertex("")
		join := g.AddVertex("")
		g.MustAddArc(fork, a)
		g.MustAddArc(fork, b)
		g.MustAddArc(a, join)
		g.MustAddArc(b, join)
		// Heavy overlapping demand through both branches.
		fam = append(fam,
			dipath.MustFromVertices(g, fork, a, join),
			dipath.MustFromVertices(g, fork, a, join),
			dipath.MustFromVertices(g, fork, b, join),
			dipath.MustFromVertices(g, fork, a),
			dipath.MustFromVertices(g, a, join),
			dipath.MustFromVertices(g, fork, b),
			dipath.MustFromVertices(g, b, join),
		)
	}
	return g, fam
}

func TestTheorem1DiamondChainStress(t *testing.T) {
	for _, d := range []int{1, 5, 25, 100} {
		g, fam := diamondChain(d)
		res, err := ColorNoInternalCycle(g, fam)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if err := check.WavelengthsWithinLoad(g, fam, res.Colors); err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if pi := load.Pi(g, fam); pi != 3 {
			t.Fatalf("d=%d: π = %d, want 3", d, pi)
		}
	}
}

// Long alternating overlap chains exercise the alternating-chain
// recoloring repeatedly: many paths overlapping pairwise along a shared
// spine, colored in an order that forces swaps.
func TestTheorem1OverlapLadderStress(t *testing.T) {
	const n = 200
	g := digraph.New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddArc(digraph.Vertex(i), digraph.Vertex(i+1))
	}
	rng := rand.New(rand.NewSource(12345))
	var fam dipath.Family
	// Sliding windows of random lengths: heavy pairwise overlap.
	for i := 0; i < 300; i++ {
		lo := rng.Intn(n - 2)
		hi := lo + 1 + rng.Intn(minInt(20, n-lo-1))
		verts := make([]digraph.Vertex, 0, hi-lo+1)
		for v := lo; v <= hi; v++ {
			verts = append(verts, digraph.Vertex(v))
		}
		fam = append(fam, dipath.MustFromVertices(g, verts...))
	}
	res, err := ColorNoInternalCycle(g, fam)
	if err != nil {
		t.Fatal(err)
	}
	if err := check.WavelengthsWithinLoad(g, fam, res.Colors); err != nil {
		t.Fatal(err)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// A deep binary out-tree with all root-to-node paths: the multicast
// shape at scale.
func TestTheorem1BinaryTreeStress(t *testing.T) {
	const depth = 9 // 2^10 - 1 vertices
	n := 1<<(depth+1) - 1
	g := digraph.New(n)
	for v := 0; 2*v+2 < n; v++ {
		g.MustAddArc(digraph.Vertex(v), digraph.Vertex(2*v+1))
		g.MustAddArc(digraph.Vertex(v), digraph.Vertex(2*v+2))
	}
	var fam dipath.Family
	for v := 1; v < n; v += 7 { // sample of root-to-node paths
		verts := []digraph.Vertex{}
		for u := v; ; u = (u - 1) / 2 {
			verts = append(verts, digraph.Vertex(u))
			if u == 0 {
				break
			}
		}
		for i, j := 0, len(verts)-1; i < j; i, j = i+1, j-1 {
			verts[i], verts[j] = verts[j], verts[i]
		}
		fam = append(fam, dipath.MustFromVertices(g, verts...))
	}
	res, err := ColorNoInternalCycle(g, fam)
	if err != nil {
		t.Fatal(err)
	}
	if err := check.WavelengthsWithinLoad(g, fam, res.Colors); err != nil {
		t.Fatal(err)
	}
	// On an out-tree the load is attained at the root arcs; sanity-check
	// that the palette matches the heavier root subtree.
	if res.NumColors != load.Pi(g, fam) {
		t.Fatalf("w = %d, π = %d", res.NumColors, load.Pi(g, fam))
	}
}
