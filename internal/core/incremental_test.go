package core

import (
	"math/rand"
	"testing"

	"wavedag/internal/dipath"
	"wavedag/internal/gen"
	"wavedag/internal/load"
	"wavedag/internal/route"
)

// checkIncrementalInvariants snapshots the colorer's state and asserts
// the three Incremental invariants: proper coloring, exact distinct
// count, and the slack gate (lower bound + slack, unless the from-
// scratch pipeline itself could not reach it).
func checkIncrementalInvariants(t *testing.T, op int, ic *Incremental) {
	t.Helper()
	snap, slots := ic.Dynamic().Snapshot()
	colors := ic.Colors(slots)
	if err := snap.ValidateColoring(colors); err != nil {
		t.Fatalf("op %d: coloring invalid: %v", op, err)
	}
	distinct := make(map[int]bool)
	for _, c := range colors {
		distinct[c] = true
		// The palette is kept dense (compactPalette), so every live
		// wavelength index is below the reported count — a Feasible
		// check against a channel budget can trust NumLambda.
		if c >= ic.NumLambda() {
			t.Fatalf("op %d: wavelength index %d >= NumLambda %d (palette not dense)",
				op, c, ic.NumLambda())
		}
	}
	if len(distinct) != ic.NumLambda() {
		t.Fatalf("op %d: NumLambda = %d, want %d", op, ic.NumLambda(), len(distinct))
	}
	fam := ic.Dynamic().Family()
	if lb, pi := ic.LowerBound(), load.Pi(ic.Dynamic().Graph(), fam); lb != pi {
		t.Fatalf("op %d: lower bound %d, want π = %d", op, lb, pi)
	}
}

// TestIncrementalChurn drives the colorer through random add/remove ops
// on a Theorem 1 topology, where the full pipeline achieves w = π, so
// NumLambda must stay within lb+slack after every operation.
func TestIncrementalChurn(t *testing.T) {
	g, err := gen.RandomNoInternalCycleDAG(20, 4, 4, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	pool := gen.RandomWalkFamily(g, 80, 7, 31)
	rng := rand.New(rand.NewSource(9))
	const slack = 2
	ic := NewIncremental(g, slack)

	var live []int
	for op := 0; op < 600; op++ {
		if len(live) == 0 || (rng.Intn(3) != 0 && len(live) < 50) {
			s, err := ic.Add(pool[rng.Intn(len(pool))])
			if err != nil {
				t.Fatalf("op %d: Add: %v", op, err)
			}
			live = append(live, s)
		} else {
			k := rng.Intn(len(live))
			if err := ic.Remove(live[k]); err != nil {
				t.Fatalf("op %d: Remove: %v", op, err)
			}
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		checkIncrementalInvariants(t, op, ic)
		// Theorem 1 applies to this DAG, so a full recolor always reaches
		// the lower bound and the slack gate is a hard invariant.
		if ic.NumLambda() > ic.LowerBound()+slack {
			t.Fatalf("op %d: λ = %d drifted past lb %d + slack %d",
				op, ic.NumLambda(), ic.LowerBound(), slack)
		}
	}
	if ic.FullRecolors() == 0 {
		t.Log("churn never triggered a full recolor (slack never exceeded)")
	}
}

// TestIncrementalHardInstance runs churn on the Figure 1 staircase,
// where χ greatly exceeds π: the colorer must stay proper and the
// futile-recolor suppression must prevent a full recolor per operation.
func TestIncrementalHardInstance(t *testing.T) {
	g, fam, err := gen.Fig1Staircase(10)
	if err != nil {
		t.Fatal(err)
	}
	ic := NewIncremental(g, 1)
	var live []int
	for rep := 0; rep < 3; rep++ {
		for _, p := range fam {
			s, err := ic.Add(p)
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, s)
		}
	}
	checkIncrementalInvariants(t, len(live), ic)
	// The staircase conflict graph (one copy) is complete on 10 vertices
	// with π = 2: λ must reach χ = 10 even though lb+slack is 3·2+1.
	if ic.NumLambda() < 10 {
		t.Fatalf("λ = %d below χ of the replicated staircase", ic.NumLambda())
	}
	recolorsAfterFill := ic.FullRecolors()
	// Steady-state adds/removes must not thrash full recolors: the
	// suppression records the pipeline's own answer as the ceiling.
	rng := rand.New(rand.NewSource(3))
	for op := 0; op < 60; op++ {
		k := rng.Intn(len(live))
		if err := ic.Remove(live[k]); err != nil {
			t.Fatal(err)
		}
		s, err := ic.Add(fam[rng.Intn(len(fam))])
		if err != nil {
			t.Fatal(err)
		}
		live[k] = s
		checkIncrementalInvariants(t, op, ic)
	}
	if thrash := ic.FullRecolors() - recolorsAfterFill; thrash > 20 {
		t.Fatalf("futile-recolor suppression failed: %d full recolors in 60 steady-state ops", thrash)
	}
}

// warmChurn drives ic through count random add/remove ops with shortest
// routes over g's reachable pairs, checking the colorer invariants every
// checkEvery ops.
func warmChurn(t *testing.T, ic *Incremental, r *route.Router, count, liveCap, checkEvery int, seed int64) {
	t.Helper()
	pool := r.AllToAll()
	rng := rand.New(rand.NewSource(seed))
	var live []int
	for op := 0; op < count; op++ {
		if len(live) == 0 || (rng.Intn(3) != 0 && len(live) < liveCap) {
			req := pool[rng.Intn(len(pool))]
			p, err := r.ShortestPath(req.Src, req.Dst)
			if err != nil {
				t.Fatal(err)
			}
			s, err := ic.Add(p)
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, s)
		} else {
			k := rng.Intn(len(live))
			if err := ic.Remove(live[k]); err != nil {
				t.Fatal(err)
			}
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		if op%checkEvery == 0 {
			checkIncrementalInvariants(t, op, ic)
		}
	}
	checkIncrementalInvariants(t, count, ic)
}

// TestIncrementalWarmRecolor pins the warm-start repack. On a drifting
// Theorem 1 churn trace nearly every slack-gate crossing must be
// absorbed by the repack (cold pipeline runs strictly rarer than warm
// passes); on a χ>π trace (shortest routes over the Figure 1 staircase
// topology) the warm pass must engage and still leave every invariant
// the cold path guaranteed — properness, dense palette, exact count —
// intact after each operation.
func TestIncrementalWarmRecolor(t *testing.T) {
	g, err := gen.RandomNoInternalCycleDAG(20, 4, 4, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	ic := NewIncremental(g, 1)
	warmChurn(t, ic, route.NewRouter(g), 4000, 80, 50, 9)
	if ic.WarmRecolors() == 0 {
		t.Fatal("drift churn never exercised the warm repack")
	}
	if ic.FullRecolors() >= ic.WarmRecolors() {
		t.Fatalf("warm start absorbed nothing on a Theorem 1 trace: %d cold vs %d warm",
			ic.FullRecolors(), ic.WarmRecolors())
	}

	sg, _, err := gen.Fig1Staircase(10)
	if err != nil {
		t.Fatal(err)
	}
	sic := NewIncremental(sg, 1)
	warmChurn(t, sic, route.NewRouter(sg), 4000, 60, 25, 3)
	if sic.WarmRecolors() == 0 {
		t.Fatal("χ>π churn never exercised the warm repack")
	}
	// WarmRecolors counts only absorbed drifts (no cold run), so strict
	// dominance means the repack genuinely replaced cold pipeline runs.
	if sic.FullRecolors() >= sic.WarmRecolors() {
		t.Fatalf("warm start absorbed nothing on the χ>π trace: %d cold vs %d warm",
			sic.FullRecolors(), sic.WarmRecolors())
	}
}

// TestIncrementalSingleVertexPaths exercises zero-arc paths, which
// conflict with nothing and must still receive a wavelength.
func TestIncrementalSingleVertexPaths(t *testing.T) {
	g, _, err := gen.Fig1Staircase(4)
	if err != nil {
		t.Fatal(err)
	}
	ic := NewIncremental(g, 0)
	p := dipath.MustFromVertices(g, 0)
	s1, err := ic.Add(p)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ic.Add(p)
	if err != nil {
		t.Fatal(err)
	}
	if ic.Wavelength(s1) != 0 || ic.Wavelength(s2) != 0 {
		t.Fatalf("single-vertex paths should share wavelength 0: %d, %d",
			ic.Wavelength(s1), ic.Wavelength(s2))
	}
	if ic.NumLambda() != 1 {
		t.Fatalf("λ = %d, want 1", ic.NumLambda())
	}
	if err := ic.Remove(s1); err != nil {
		t.Fatal(err)
	}
	if err := ic.Remove(s1); err == nil {
		t.Fatal("double remove accepted")
	}
	if ic.NumLambda() != 1 {
		t.Fatalf("λ = %d after removal, want 1", ic.NumLambda())
	}
}

// TestIncrementalTheorem6Recolor churns on the replicated Havet
// instance (one-internal-cycle UPP-DAG), so slack-gated full recolors
// go through the Theorem 6 construction — whose colorings can skip
// palette indices — and checks the engine re-densifies them (the
// invariant helper asserts every live index < NumLambda).
func TestIncrementalTheorem6Recolor(t *testing.T) {
	g, fam := gen.Havet()
	rep := fam.Replicate(4)
	ic := NewIncremental(g, 1)
	var live []int
	for _, p := range rep {
		s, err := ic.Add(p)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, s)
	}
	checkIncrementalInvariants(t, len(live), ic)
	rng := rand.New(rand.NewSource(8))
	for op := 0; op < 120; op++ {
		k := rng.Intn(len(live))
		if err := ic.Remove(live[k]); err != nil {
			t.Fatal(err)
		}
		s, err := ic.Add(rep[rng.Intn(len(rep))])
		if err != nil {
			t.Fatal(err)
		}
		live[k] = s
		checkIncrementalInvariants(t, op, ic)
	}
	if ic.FullRecolors() == 0 {
		t.Log("churn never left the slack gate (no Theorem 6 recolor exercised)")
	}
}

// TestIncrementalAddUnderLimit drives the budget admission probe
// through random offers at a tight limit: every accepted path must be
// colored below the limit, every rejection must leave the live family —
// and the λ ≤ limit invariant — exactly as before, and the invariants
// of the colorer must hold throughout.
func TestIncrementalAddUnderLimit(t *testing.T) {
	g, err := gen.RandomNoInternalCycleDAG(20, 4, 4, 0.3, 61)
	if err != nil {
		t.Fatal(err)
	}
	pool := gen.RandomWalkFamily(g, 80, 7, 62)
	rng := rand.New(rand.NewSource(63))
	for _, limit := range []int{1, 2, 4} {
		ic := NewIncremental(g, 2)
		var live []int
		accepted, rejected := 0, 0
		for op := 0; op < 400; op++ {
			if len(live) == 0 || rng.Intn(3) != 0 {
				p := pool[rng.Intn(len(pool))]
				before := ic.Dynamic().NumLive()
				s, ok, err := ic.AddUnderLimit(p, limit)
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					if c := ic.Wavelength(s); c < 0 || c >= limit {
						t.Fatalf("limit %d: accepted path colored %d", limit, c)
					}
					live = append(live, s)
					accepted++
				} else {
					if ic.Dynamic().NumLive() != before {
						t.Fatalf("limit %d: rejection changed the live count", limit)
					}
					rejected++
				}
				if ic.NumLambda() > limit {
					t.Fatalf("limit %d: λ = %d after probe", limit, ic.NumLambda())
				}
			} else {
				i := rng.Intn(len(live))
				if err := ic.Remove(live[i]); err != nil {
					t.Fatal(err)
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
				// Removal repair may recolor; re-enforce the budget the way
				// the budgeted session does.
				if ic.EnsureAtMost(limit) > limit {
					t.Fatalf("limit %d: EnsureAtMost failed on a Theorem-1 topology", limit)
				}
			}
			checkIncrementalInvariants(t, op, ic)
		}
		if accepted == 0 || rejected == 0 {
			t.Fatalf("limit %d: degenerate run (accepted %d, rejected %d)", limit, accepted, rejected)
		}
	}
}

// TestIncrementalEnsureAtMost checks that a drifted assignment is
// brought back under a limit the cold pipeline can certify: on a
// Theorem-1 topology EnsureAtMost(π) must always succeed, and a limit
// below π must fail while leaving the assignment proper.
func TestIncrementalEnsureAtMost(t *testing.T) {
	g, err := gen.RandomNoInternalCycleDAG(18, 3, 3, 0.3, 71)
	if err != nil {
		t.Fatal(err)
	}
	pool := gen.RandomWalkFamily(g, 60, 7, 72)
	ic := NewIncremental(g, 8) // generous slack: let first-fit drift
	for _, p := range pool {
		if _, err := ic.Add(p); err != nil {
			t.Fatal(err)
		}
	}
	pi := ic.LowerBound()
	if got := ic.EnsureAtMost(pi); got != pi {
		t.Fatalf("EnsureAtMost(π=%d) = %d on a Theorem-1 topology", pi, got)
	}
	checkIncrementalInvariants(t, -1, ic)
	if pi > 1 {
		if got := ic.EnsureAtMost(pi - 1); got <= pi-1 {
			t.Fatalf("EnsureAtMost(π-1) = %d, below the load lower bound %d", got, pi)
		}
		checkIncrementalInvariants(t, -2, ic)
	}
}
