package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"wavedag/internal/digraph"
	"wavedag/internal/gen"
	"wavedag/internal/route"
	"wavedag/internal/wdm"
)

// testNetwork builds a small multi-component network with its all-pairs
// request pool.
func testNetwork(t testing.TB, comps int, seed int64) (*wdm.Network, []route.Request) {
	t.Helper()
	parts := make([]gen.Instance, comps)
	for i := range parts {
		g, err := gen.RandomNoInternalCycleDAG(12, 3, 3, 0.25, seed+int64(i))
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = gen.Instance{G: g}
	}
	g, _ := gen.DisjointUnion(parts...)
	net := &wdm.Network{Topology: g}
	pool := route.NewRouter(g).AllToAll()
	if len(pool) == 0 {
		t.Fatal("empty request pool")
	}
	return net, pool
}

func testServer(t testing.TB, comps int, seed int64, engOpts []wdm.ShardedOption, srvOpts ...Option) (*Server, []route.Request) {
	t.Helper()
	net, pool := testNetwork(t, comps, seed)
	eng, err := net.NewShardedEngine(engOpts...)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng, srvOpts...)
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Shutdown(context.Background()) })
	return srv, pool
}

// checkBalance asserts the definitive-response ledger: every submission
// accounted for in exactly one outcome bucket.
func checkBalance(t *testing.T, st ServerStats) {
	t.Helper()
	if st.Submitted != st.Acked+st.Failed+st.Shed+st.Expired {
		t.Fatalf("outcome ledger unbalanced: submitted %d != acked %d + failed %d + shed %d + expired %d",
			st.Submitted, st.Acked, st.Failed, st.Shed, st.Expired)
	}
}

func TestServeAckRoundTrip(t *testing.T) {
	srv, pool := testServer(t, 3, 41, nil)
	ctx := context.Background()

	var ids []wdm.ShardedID
	for i := 0; i < 10; i++ {
		resp := srv.Submit(ctx, AddRequest(pool[i%len(pool)].Src, pool[i%len(pool)].Dst))
		if resp.Err != nil {
			t.Fatalf("add %d: %v", i, resp.Err)
		}
		ids = append(ids, resp.ID)
	}
	if got := srv.Engine().Len(); got != 10 {
		t.Fatalf("engine live = %d, want 10", got)
	}
	if resp := srv.Submit(ctx, RerouteRequest(ids[0])); resp.Err != nil {
		t.Fatalf("reroute: %v", resp.Err)
	}
	for _, id := range ids[:5] {
		if resp := srv.Submit(ctx, RemoveRequest(id)); resp.Err != nil {
			t.Fatalf("remove %v: %v", id, resp.Err)
		}
	}
	if got := srv.Engine().Len(); got != 5 {
		t.Fatalf("engine live = %d, want 5", got)
	}
	if err := srv.Engine().Verify(); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Acked != 16 || st.Failed != 0 {
		t.Fatalf("stats = %+v, want 16 acks", st)
	}
	checkBalance(t, st)
}

// TestServeCoalesces checks that concurrent submissions actually share
// engine batches: with a generous latency cap, 64 async submissions
// must land in far fewer than 64 ApplyBatchInto calls.
func TestServeCoalesces(t *testing.T) {
	srv, pool := testServer(t, 3, 43, nil,
		WithLatencyCap(20*time.Millisecond), WithMaxBatch(256))
	ctx := context.Background()

	const n = 64
	futures := make([]<-chan Response, n)
	for i := 0; i < n; i++ {
		futures[i] = srv.SubmitAsync(ctx, AddRequest(pool[i%len(pool)].Src, pool[i%len(pool)].Dst))
	}
	for i, f := range futures {
		if resp := <-f; resp.Err != nil {
			t.Fatalf("add %d: %v", i, resp.Err)
		}
	}
	st := srv.Stats()
	if st.BatchedOps != n {
		t.Fatalf("batched ops = %d, want %d", st.BatchedOps, n)
	}
	if st.Batches >= n/2 {
		t.Fatalf("no coalescing: %d ops in %d batches", st.BatchedOps, st.Batches)
	}
}

func TestServeDeadlineExpiredBeforeEngineWork(t *testing.T) {
	srv, pool := testServer(t, 2, 47, nil)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	resp := srv.Submit(ctx, AddRequest(pool[0].Src, pool[0].Dst))
	if !errors.Is(resp.Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", resp.Err)
	}
	if !resp.Expired() {
		t.Fatal("Expired() = false on a deadline response")
	}
	if resp.Attempts != 0 {
		t.Fatalf("expired request consumed %d engine attempts", resp.Attempts)
	}
	st := srv.Stats()
	if st.Expired != 1 {
		t.Fatalf("expired = %d, want 1", st.Expired)
	}
	if srv.Engine().Len() != 0 {
		t.Fatal("expired request reached the engine")
	}
	checkBalance(t, st)
}

// stalledServer builds a Server whose dispatcher is NOT running, so
// queue occupancy is fully test-controlled. Only the submission-side
// paths (shed verdicts, blocking backpressure) may be exercised.
func stalledServer(t *testing.T, queueCap, shedDepth int, blocking bool) *Server {
	t.Helper()
	cfg := config{
		maxBatch:   256,
		latencyCap: 500 * time.Microsecond,
		queueCap:   queueCap,
		shedDepth:  shedDepth,
		blocking:   blocking,
		retryMax:   1,
	}
	s := &Server{
		cfg:      cfg,
		queue:    make(chan *pending, queueCap),
		rng:      rand.New(rand.NewSource(1)),
		drainReq: make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.perOpNanos.Store(1000)
	return s
}

func TestServeShedsAtDepth(t *testing.T) {
	srv := stalledServer(t, 4, 2, false)
	ctx := context.Background()
	req := AddRequest(0, 1)

	for i := 0; i < 2; i++ {
		select {
		case resp := <-srv.SubmitAsync(ctx, req):
			t.Fatalf("submission %d completed while dispatcher stalled: %+v", i, resp)
		default: // queued, as expected
		}
	}
	resp := <-srv.SubmitAsync(ctx, req)
	if !resp.Shed() {
		t.Fatalf("err = %v, want ErrShed", resp.Err)
	}
	if resp.RetryAfter <= 0 {
		t.Fatal("shed verdict without a RetryAfter hint")
	}
	if !IsTransient(resp.Err) {
		t.Fatal("shed verdict classified permanent")
	}
	st := srv.Stats()
	if st.Shed != 1 || st.Submitted != 3 {
		t.Fatalf("stats = %+v, want 1 shed of 3", st)
	}
}

func TestServeBlockingBackpressure(t *testing.T) {
	srv := stalledServer(t, 1, 1, true)
	req := AddRequest(0, 1)

	select {
	case resp := <-srv.SubmitAsync(context.Background(), req):
		t.Fatalf("first submission completed while dispatcher stalled: %+v", resp)
	default:
	}
	// Queue full, dispatcher stalled: a blocking submission must wait,
	// then abandon with the context's error — never a silent drop.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	resp := <-srv.SubmitAsync(ctx, req)
	if !errors.Is(resp.Err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context deadline", resp.Err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("blocking submission returned before its context expired")
	}
	if st := srv.Stats(); st.Shed != 0 {
		t.Fatalf("blocking mode shed %d requests", st.Shed)
	}
}

// TestServeServerRetry exercises the server-side backoff path: an add
// rejected by the wavelength budget retries after the blocking session
// is removed, acking without the client ever seeing the transient error.
func TestServeServerRetry(t *testing.T) {
	srv, pool := testServer(t, 1, 53,
		[]wdm.ShardedOption{wdm.WithEngineWavelengthBudget(1)},
		WithServerRetry(8, 200*time.Microsecond, 5*time.Millisecond),
		WithSeed(7),
	)
	ctx := context.Background()

	first := srv.Submit(ctx, AddRequest(pool[0].Src, pool[0].Dst))
	if first.Err != nil {
		t.Fatalf("first add: %v", first.Err)
	}
	// Occupies the whole budget: the same demand again must bounce off
	// ErrBudgetExceeded until the remove lands, then retry through.
	blocked := srv.SubmitAsync(ctx, AddRequest(pool[0].Src, pool[0].Dst))
	if resp := srv.Submit(ctx, RemoveRequest(first.ID)); resp.Err != nil {
		t.Fatalf("remove: %v", resp.Err)
	}
	resp := <-blocked
	if resp.Err != nil {
		t.Fatalf("retried add failed: %v", resp.Err)
	}
	if resp.Attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2 (must have retried)", resp.Attempts)
	}
	st := srv.Stats()
	if st.Retried == 0 {
		t.Fatal("no server-side retries recorded")
	}
	checkBalance(t, st)
}

// TestServeRetryExhaustion: when the transient condition never clears,
// the bounded attempt budget must surface the underlying error — not
// retry forever, and never mask it as success.
func TestServeRetryExhaustion(t *testing.T) {
	srv, pool := testServer(t, 1, 59,
		[]wdm.ShardedOption{wdm.WithEngineWavelengthBudget(1)},
		WithServerRetry(3, 100*time.Microsecond, time.Millisecond),
		WithSeed(7),
	)
	ctx := context.Background()
	if resp := srv.Submit(ctx, AddRequest(pool[0].Src, pool[0].Dst)); resp.Err != nil {
		t.Fatalf("first add: %v", resp.Err)
	}
	resp := srv.Submit(ctx, AddRequest(pool[0].Src, pool[0].Dst))
	if !errors.Is(resp.Err, wdm.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded after exhaustion", resp.Err)
	}
	if resp.Attempts != 3 {
		t.Fatalf("attempts = %d, want exactly the budget of 3", resp.Attempts)
	}
}

func TestServePermanentErrorsNotRetried(t *testing.T) {
	srv, _ := testServer(t, 1, 61, nil,
		WithServerRetry(5, 100*time.Microsecond, time.Millisecond))
	resp := srv.Submit(context.Background(), RemoveRequest(wdm.ShardedID{Shard: 0, ID: 1 << 40}))
	if resp.Err == nil {
		t.Fatal("remove of a never-issued id acked")
	}
	if IsTransient(resp.Err) {
		t.Fatalf("unknown-session error classified transient: %v", resp.Err)
	}
	if resp.Attempts != 1 {
		t.Fatalf("permanent error consumed %d attempts, want 1", resp.Attempts)
	}
	if st := srv.Stats(); st.Retried != 0 {
		t.Fatalf("permanent error retried %d times", st.Retried)
	}
}

// TestServePanicIsolation: a panic while applying a batch must fail
// exactly the offending request; its batch-mates get real results and
// the server keeps serving.
func TestServePanicIsolation(t *testing.T) {
	net, pool := testNetwork(t, 2, 67)
	eng, err := net.NewShardedEngine()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng, WithLatencyCap(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	marker := pool[0]
	srv.testApplyHook = func(ops []wdm.BatchOp) {
		for _, op := range ops {
			if op.Kind == wdm.BatchAdd && op.Req == marker {
				panic("injected fault")
			}
		}
	}

	ctx := context.Background()
	mf := srv.SubmitAsync(ctx, AddRequest(marker.Src, marker.Dst))
	var others []<-chan Response
	for i := 1; i <= 4; i++ {
		others = append(others, srv.SubmitAsync(ctx, AddRequest(pool[i%len(pool)].Src, pool[i%len(pool)].Dst)))
	}
	resp := <-mf
	var pe ErrPanic
	if !errors.As(resp.Err, &pe) {
		t.Fatalf("marker err = %v, want ErrPanic", resp.Err)
	}
	for i, f := range others {
		if r := <-f; r.Err != nil {
			t.Fatalf("batch-mate %d failed: %v", i, r.Err)
		}
	}
	// The server must still be fully alive.
	srv.testApplyHook = nil
	if r := srv.Submit(ctx, AddRequest(pool[1].Src, pool[1].Dst)); r.Err != nil {
		t.Fatalf("post-panic submit: %v", r.Err)
	}
	st := srv.Stats()
	if st.Panics == 0 {
		t.Fatal("panic not recorded")
	}
	if err := eng.Verify(); err != nil {
		t.Fatal(err)
	}
	checkBalance(t, st)
}

// TestServeBarrierOps routes fiber cuts and repairs through the
// coalescer: they must apply as barriers between batches and report
// their storm/revival results through the future.
func TestServeBarrierOps(t *testing.T) {
	srv, pool := testServer(t, 1, 71, nil, WithLatencyCap(10*time.Millisecond))
	ctx := context.Background()

	ids := make(map[wdm.ShardedID]bool)
	for i := 0; i < 12; i++ {
		resp := srv.Submit(ctx, AddRequest(pool[i%len(pool)].Src, pool[i%len(pool)].Dst))
		if resp.Err != nil {
			t.Fatalf("add: %v", resp.Err)
		}
		ids[resp.ID] = true
	}
	// Cut the arc carrying the most traffic, interleaved with more
	// writes so the barrier actually splits a batch.
	loads := srv.Engine().ArcLoads()
	arc, best := 0, -1
	for a, l := range loads {
		if l > best {
			arc, best = a, l
		}
	}
	pre := srv.SubmitAsync(ctx, AddRequest(pool[3].Src, pool[3].Dst))
	cut := srv.SubmitAsync(ctx, FailArcRequest(digraph.ArcID(arc)))
	post := srv.SubmitAsync(ctx, AddRequest(pool[5].Src, pool[5].Dst))
	if r := <-pre; r.Err != nil {
		t.Fatalf("pre-cut add: %v", r.Err)
	}
	cutResp := <-cut
	if cutResp.Err != nil {
		t.Fatalf("fail-arc: %v", cutResp.Err)
	}
	if cutResp.Storm.Affected < best {
		t.Fatalf("storm affected %d, want >= %d (paths on the cut arc)", cutResp.Storm.Affected, best)
	}
	if cutResp.Storm.Affected != cutResp.Storm.Restored+cutResp.Storm.Parked {
		t.Fatalf("storm report unbalanced: %+v", cutResp.Storm)
	}
	if r := <-post; r.Err != nil {
		t.Fatalf("post-cut add: %v", r.Err)
	}
	if got := srv.Engine().NumFailedArcs(); got != 1 {
		t.Fatalf("failed arcs = %d, want 1", got)
	}
	rest := srv.Submit(ctx, RestoreArcRequest(digraph.ArcID(arc)))
	if rest.Err != nil {
		t.Fatalf("restore-arc: %v", rest.Err)
	}
	if got := srv.Engine().NumFailedArcs(); got != 0 {
		t.Fatalf("failed arcs = %d after restore, want 0", got)
	}
	if rest.Revived != cutResp.Storm.Parked {
		t.Fatalf("revived %d, want the %d parked by the cut", rest.Revived, cutResp.Storm.Parked)
	}
	if err := srv.Engine().Verify(); err != nil {
		t.Fatal(err)
	}
	checkBalance(t, srv.Stats())
}

// TestServeGracefulDrain: Shutdown must flush every queued request to a
// definitive response before closing the engine, reads must keep
// answering from the final snapshot, and later submissions must get
// ErrServerClosed. Shutdown is idempotent.
func TestServeGracefulDrain(t *testing.T) {
	net, pool := testNetwork(t, 3, 73)
	eng, err := net.NewShardedEngine()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng, WithLatencyCap(5*time.Millisecond), WithQueueCapacity(1024))
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	const n = 200
	futures := make([]<-chan Response, n)
	for i := 0; i < n; i++ {
		futures[i] = srv.SubmitAsync(ctx, AddRequest(pool[i%len(pool)].Src, pool[i%len(pool)].Dst))
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	acked := 0
	for i, f := range futures {
		select {
		case resp := <-f:
			if resp.Err == nil {
				acked++
			} else if !errors.Is(resp.Err, ErrServerClosed) {
				t.Fatalf("request %d: unexpected drain outcome %v", i, resp.Err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d never got a definitive response", i)
		}
	}
	if acked != int(srv.Stats().Acked) {
		t.Fatalf("acks seen %d, stats say %d", acked, srv.Stats().Acked)
	}
	// Every ack made it into the engine before Close froze it.
	if got := eng.Len(); got != acked {
		t.Fatalf("engine live = %d, want %d (all drain acks applied)", got, acked)
	}
	// Reads answer post-Close from the final snapshot.
	if st := eng.Stats(); st.Accepted() != acked {
		t.Fatalf("post-close stats accepted = %d, want %d", st.Accepted(), acked)
	}
	// Post-drain submissions are definitively rejected.
	if resp := srv.Submit(ctx, AddRequest(pool[0].Src, pool[0].Dst)); !errors.Is(resp.Err, ErrServerClosed) {
		t.Fatalf("post-drain submit err = %v, want ErrServerClosed", resp.Err)
	}
	// Idempotent, including concurrently.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := srv.Shutdown(context.Background()); err != nil {
				t.Errorf("repeat shutdown: %v", err)
			}
		}()
	}
	wg.Wait()
	st := srv.Stats()
	if !st.Drained {
		t.Fatal("Drained flag unset after shutdown")
	}
	checkBalance(t, st)
}

// TestServeDrainRacesSubmitters: submissions racing Shutdown from many
// goroutines must each still get exactly one definitive response.
func TestServeDrainRacesSubmitters(t *testing.T) {
	net, pool := testNetwork(t, 2, 79)
	eng, err := net.NewShardedEngine()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	responses := make([]int, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				resp := srv.Submit(ctx, AddRequest(pool[(w*perWriter+i)%len(pool)].Src, pool[(w*perWriter+i)%len(pool)].Dst))
				if resp.Err == nil || errors.Is(resp.Err, ErrServerClosed) || resp.Shed() {
					responses[w]++
				} else {
					t.Errorf("writer %d: unexpected outcome %v", w, resp.Err)
				}
			}
		}(w)
	}
	time.Sleep(2 * time.Millisecond)
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	total := 0
	for _, n := range responses {
		total += n
	}
	if total != writers*perWriter {
		t.Fatalf("definitive responses = %d, want %d", total, writers*perWriter)
	}
	checkBalance(t, srv.Stats())
}

func TestServeClientRetriesShed(t *testing.T) {
	srv := stalledServer(t, 1, 1, false)
	// One queued request saturates the stalled server (shed depth 1);
	// every later submission sheds, so Do must spend its full attempt
	// budget and surface the shed verdict.
	srv.queue <- &pending{req: AddRequest(0, 1), done: make(chan Response, 1)}

	client := NewClient(srv, RetryPolicy{MaxAttempts: 3, Base: 100 * time.Microsecond, Max: time.Millisecond}, 5)
	resp := client.Do(context.Background(), AddRequest(0, 1))
	if !resp.Shed() {
		t.Fatalf("err = %v, want ErrShed after exhausting retries", resp.Err)
	}
	if resp.Attempts != 3 {
		t.Fatalf("client attempts = %d, want 3", resp.Attempts)
	}
}

func TestServeClientAcksFirstTry(t *testing.T) {
	srv, pool := testServer(t, 1, 83, nil)
	client := NewClient(srv, RetryPolicy{}, 9)
	resp := client.Do(context.Background(), AddRequest(pool[0].Src, pool[0].Dst))
	if resp.Err != nil {
		t.Fatalf("Do: %v", resp.Err)
	}
	if resp.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", resp.Attempts)
	}
}

// TestServeCloseRacesDrain: an external engine Close racing the
// server's in-flight drain must stay safe — double-Close returns
// cleanly, every queued request still gets a definitive response
// (acked before the Close won, or ErrEngineClosed after), and the
// query plane keeps answering from the final snapshot.
func TestServeCloseRacesDrain(t *testing.T) {
	for round := 0; round < 5; round++ {
		net, pool := testNetwork(t, 2, 90+int64(round))
		eng, err := net.NewShardedEngine()
		if err != nil {
			t.Fatal(err)
		}
		srv, err := New(eng, WithLatencyCap(100*time.Microsecond))
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		const n = 120
		futures := make([]<-chan Response, n)
		for i := 0; i < n; i++ {
			futures[i] = srv.SubmitAsync(ctx, AddRequest(pool[i%len(pool)].Src, pool[i%len(pool)].Dst))
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); eng.Close() }()
		go func() {
			defer wg.Done()
			if err := srv.Shutdown(ctx); err != nil {
				t.Errorf("shutdown: %v", err)
			}
		}()
		acked := 0
		for i, f := range futures {
			select {
			case resp := <-f:
				switch {
				case resp.Err == nil:
					acked++
				case errors.Is(resp.Err, wdm.ErrEngineClosed):
				default:
					t.Fatalf("round %d request %d: %v", round, i, resp.Err)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("round %d request %d never resolved", round, i)
			}
		}
		wg.Wait()
		if got := eng.Len(); got != acked {
			t.Fatalf("round %d: final live %d, want %d acks", round, got, acked)
		}
		if err := eng.Close(); err != nil {
			t.Fatalf("round %d: close after drain race: %v", round, err)
		}
		checkBalance(t, srv.Stats())
	}
}

func TestServeOptionValidation(t *testing.T) {
	net, _ := testNetwork(t, 1, 89)
	eng, err := net.NewShardedEngine()
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for name, opt := range map[string]Option{
		"batch0":      WithMaxBatch(0),
		"cap0":        WithLatencyCap(0),
		"queue0":      WithQueueCapacity(0),
		"shed0":       WithShedDepth(0),
		"retry0":      WithServerRetry(0, time.Millisecond, time.Second),
		"retry-base0": WithServerRetry(3, 0, time.Second),
		"retry-inv":   WithServerRetry(3, time.Second, time.Millisecond),
	} {
		if _, err := New(eng, opt); err == nil {
			t.Errorf("%s: invalid option accepted", name)
		}
	}
}
