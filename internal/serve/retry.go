package serve

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// RetryPolicy bounds a Client's retry loop: at most MaxAttempts total
// submissions per request, waiting between attempts the larger of the
// server's RetryAfter hint and a jittered exponential backoff starting
// at Base (doubling per attempt, capped at Max).
type RetryPolicy struct {
	MaxAttempts int
	Base        time.Duration
	Max         time.Duration
}

// DefaultRetryPolicy is the Client's policy when none is set: 4
// attempts, 1ms first backoff, 50ms ceiling.
var DefaultRetryPolicy = RetryPolicy{MaxAttempts: 4, Base: time.Millisecond, Max: 50 * time.Millisecond}

// Client wraps a Server with the caller-side half of the retry
// contract: Do resubmits transient failures (shed verdicts, budget
// rejections the server did not absorb) under the policy's attempt
// budget, honoring RetryAfter hints, and returns the first permanent
// outcome. Safe for concurrent use.
type Client struct {
	srv    *Server
	policy RetryPolicy

	mu  sync.Mutex
	rng *rand.Rand
}

// NewClient builds a Client over srv. A zero policy means
// DefaultRetryPolicy. seed fixes the backoff jitter.
func NewClient(srv *Server, policy RetryPolicy, seed int64) *Client {
	if policy.MaxAttempts == 0 {
		policy = DefaultRetryPolicy
	}
	if policy.MaxAttempts < 1 {
		policy.MaxAttempts = 1
	}
	if policy.Base <= 0 {
		policy.Base = DefaultRetryPolicy.Base
	}
	if policy.Max < policy.Base {
		policy.Max = policy.Base
	}
	return &Client{srv: srv, policy: policy, rng: rand.New(rand.NewSource(seed))}
}

// Do submits req, retrying transient outcomes with jittered backoff
// until an ack, a permanent error, the attempt budget, or ctx expires.
// The returned Response's Attempts field is rewritten to the total
// submission count this call consumed (client attempts, not just the
// last submission's server-side count).
func (c *Client) Do(ctx context.Context, req Request) Response {
	var resp Response
	for attempt := 1; ; attempt++ {
		resp = c.srv.Submit(ctx, req)
		resp.Attempts = attempt
		if resp.Err == nil || !IsTransient(resp.Err) || attempt >= c.policy.MaxAttempts {
			return resp
		}
		wait := c.backoff(attempt)
		if resp.RetryAfter > wait {
			wait = resp.RetryAfter
		}
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			resp.Err = ctx.Err()
			return resp
		}
	}
}

// backoff returns the full-jitter exponential delay for the given
// completed attempt count: uniform in (0, min(Base·2^(attempt-1), Max)].
func (c *Client) backoff(attempt int) time.Duration {
	d := c.policy.Base << uint(attempt-1)
	if d > c.policy.Max || d <= 0 {
		d = c.policy.Max
	}
	c.mu.Lock()
	j := time.Duration(c.rng.Int63n(int64(d))) + 1
	c.mu.Unlock()
	return j
}
