// Package serve is the robust write-path front-end for a long-running
// provisioning service: a Server wraps a wdm.ShardedEngine and turns
// concurrent, individually-submitted mutation requests into the batched
// ApplyBatchInto calls the engine's fan-out is built for, while keeping
// every caller's experience definitive under overload.
//
// The core is a write coalescer: a bounded MPSC submission queue feeds
// a single dispatcher goroutine that accumulates requests into batches
// under a maximum batch size and a latency cap (the first queued
// request never waits longer than the cap before its batch applies).
// Each submission carries a completion future, so every caller gets
// exactly one definitive response: an ack (with the engine result), a
// terminal error, a deadline expiry, or a shed verdict.
//
// Around the coalescer sits the robustness layer:
//
//   - Deadlines: a request's context deadline travels with it; requests
//     that expire while queued are answered with ErrDeadlineExceeded
//     before any engine work is spent on them, and requests whose
//     estimated queue wait already overruns the deadline are shed at
//     submission.
//   - Load shedding: once the queue depth crosses the shed threshold
//     (or the queue is full), Submit answers immediately with ErrShed
//     and a retry-after hint derived from the coalescer's measured
//     per-op service time — the caller learns when capacity is likely,
//     instead of piling onto a saturated queue. WithBlockingBackpressure
//     disables shedding (submitters block on the full queue instead),
//     which is the collapse-comparison axis of the -serve benchmarks.
//   - Retry: transient failures (wdm.ErrBudgetExceeded) can be retried
//     server-side with jittered exponential backoff under a bounded
//     attempt budget (WithServerRetry); permanent errors (no route,
//     unknown session) are never retried. The Client type provides the
//     matching client-side loop for shed verdicts.
//   - Panic isolation: a panic while applying a batch fails only the
//     requests of that batch — the dispatcher recovers, re-applies the
//     batch one op at a time (each op under its own recover, so exactly
//     the panicking op fails with ErrPanic), and keeps serving.
//   - Graceful drain: Shutdown stops intake (later Submits answer
//     ErrServerClosed), flushes the queue and the retry backlog so
//     every in-flight request gets its definitive response, then
//     closes the engine. Reads keep answering from the engine's final
//     published snapshot.
//
// Reads never enter the queue: the engine's lock-free query plane
// (Stats, Pi, Len, Path, ...) already serves them from any goroutine
// with zero coordination, so the Server only fronts the write path.
package serve

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"wavedag/internal/digraph"
	"wavedag/internal/route"
	"wavedag/internal/wdm"
)

// Sentinel errors of the serving contract.
var (
	// ErrShed is the verdict for a request dropped by load shedding:
	// the coalescer is saturated and queueing the request would only
	// grow the backlog. Shed responses carry a RetryAfter hint; shed
	// errors are transient — Client retries them with backoff.
	ErrShed = errors.New("serve: overloaded, request shed")

	// ErrServerClosed answers submissions after Shutdown began. It is
	// permanent: the serving process is going away.
	ErrServerClosed = errors.New("serve: server closed")

	// ErrDeadlineExceeded answers requests whose deadline expired while
	// they waited in the queue — no engine work was spent on them. It
	// wraps context.DeadlineExceeded, so errors.Is against either works.
	ErrDeadlineExceeded = fmt.Errorf("serve: deadline expired before engine work: %w", context.DeadlineExceeded)
)

// ErrPanic is the definitive response of a request whose engine
// application panicked. The panic is confined to that one request: the
// dispatcher recovers, fails the request with this error and keeps
// serving everything else.
type ErrPanic struct{ Value any }

func (e ErrPanic) Error() string { return fmt.Sprintf("serve: handler panicked: %v", e.Value) }

// IsTransient reports whether err is worth retrying after backoff:
// shed verdicts and budget rejections clear when load or occupancy
// drops; everything else (no route, unknown session, expired deadline,
// closed server, panics) is permanent for the request that saw it.
func IsTransient(err error) bool {
	return errors.Is(err, ErrShed) || errors.Is(err, wdm.ErrBudgetExceeded)
}

// OpKind selects a Request's operation.
type OpKind uint8

// Request operations. Add/Remove/Reroute coalesce into engine batches;
// FailArc/RestoreArc are barrier ops — the dispatcher flushes the
// batch under construction, applies them individually (they reconcile
// across every lane of the owning component), and resumes coalescing.
const (
	OpAdd OpKind = iota
	OpRemove
	OpReroute
	OpFailArc
	OpRestoreArc
)

func (k OpKind) String() string {
	switch k {
	case OpAdd:
		return "add"
	case OpRemove:
		return "remove"
	case OpReroute:
		return "reroute"
	case OpFailArc:
		return "fail-arc"
	case OpRestoreArc:
		return "restore-arc"
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Request is one write submitted to the Server.
type Request struct {
	Kind  OpKind
	Route route.Request // OpAdd
	ID    wdm.ShardedID // OpRemove, OpReroute
	Arc   digraph.ArcID // OpFailArc, OpRestoreArc
}

// AddRequest submits a provisioning demand from src to dst.
func AddRequest(src, dst digraph.Vertex) Request {
	return Request{Kind: OpAdd, Route: route.Request{Src: src, Dst: dst}}
}

// RemoveRequest tears down the request with the given id.
func RemoveRequest(id wdm.ShardedID) Request { return Request{Kind: OpRemove, ID: id} }

// RerouteRequest re-routes the request with the given id.
func RerouteRequest(id wdm.ShardedID) Request { return Request{Kind: OpReroute, ID: id} }

// FailArcRequest injects a fiber cut on arc a.
func FailArcRequest(a digraph.ArcID) Request { return Request{Kind: OpFailArc, Arc: a} }

// RestoreArcRequest repairs the cut on arc a.
func RestoreArcRequest(a digraph.ArcID) Request { return Request{Kind: OpRestoreArc, Arc: a} }

// Response is the definitive outcome of one submitted request. Exactly
// one Response is delivered per submission — acked, failed, shed or
// expired, the caller always learns which.
type Response struct {
	// ID is the assigned id on an acked OpAdd (echoed back for
	// OpRemove/OpReroute).
	ID wdm.ShardedID
	// Changed reports whether an acked OpReroute moved the path.
	Changed bool
	// Storm is the restoration-storm report of an acked OpFailArc.
	Storm wdm.StormReport
	// Revived is the revival count of an acked OpRestoreArc.
	Revived int
	// Err is nil on an ack; otherwise the definitive failure — a
	// terminal engine error, ErrShed, ErrDeadlineExceeded,
	// ErrServerClosed or an ErrPanic.
	Err error
	// RetryAfter is the backoff hint accompanying ErrShed: the
	// estimated time for the backlog to drain below the shed threshold.
	RetryAfter time.Duration
	// Attempts counts the engine applications this request consumed,
	// including server-side retries (0 when the request never reached
	// the engine — shed, expired or closed at submission).
	Attempts int
}

// Shed reports whether the response is a shed verdict.
func (r Response) Shed() bool { return errors.Is(r.Err, ErrShed) }

// Expired reports whether the response is a deadline expiry.
func (r Response) Expired() bool { return errors.Is(r.Err, context.DeadlineExceeded) }

// ServerStats counts the server's cumulative outcomes. Every submission
// lands in exactly one of Acked, Failed, Shed or Expired, so
// Submitted == Acked + Failed + Shed + Expired whenever the server is
// idle or drained.
type ServerStats struct {
	Submitted int64 // requests entering Submit
	Acked     int64 // definitive success responses
	Failed    int64 // definitive error responses (terminal engine errors, panics, closed)
	Shed      int64 // load-shed verdicts
	Expired   int64 // deadline expiries before engine work
	Retried   int64 // server-side retry attempts consumed
	Panics    int64 // batch applications that panicked (isolated)
	Batches   int64 // engine batches applied
	BatchedOps int64 // ops applied through batches (BatchedOps/Batches = mean coalesce size)
	Drained   bool  // Shutdown completed: queue flushed, engine closed
}

// config collects the Server options.
type config struct {
	maxBatch    int
	latencyCap  time.Duration
	queueCap    int
	shedDepth   int
	blocking    bool
	retryMax    int           // server-side attempts per request (1 = no retry)
	retryBase   time.Duration // first backoff step
	retryCapped time.Duration // backoff ceiling
	seed        int64
}

// Option configures New.
type Option func(*config) error

// WithMaxBatch caps how many coalesced ops one engine batch may carry
// (default 256).
func WithMaxBatch(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("serve: max batch must be >= 1, got %d", n)
		}
		c.maxBatch = n
		return nil
	}
}

// WithLatencyCap bounds how long the first request of a batch may wait
// for co-batched company before the batch applies anyway (default
// 500µs). Lower caps trade coalescing for latency.
func WithLatencyCap(d time.Duration) Option {
	return func(c *config) error {
		if d <= 0 {
			return fmt.Errorf("serve: latency cap must be > 0, got %v", d)
		}
		c.latencyCap = d
		return nil
	}
}

// WithQueueCapacity sets the submission queue bound (default 4096).
// A full queue sheds (or, under WithBlockingBackpressure, blocks).
func WithQueueCapacity(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("serve: queue capacity must be >= 1, got %d", n)
		}
		c.queueCap = n
		return nil
	}
}

// WithShedDepth sets the queue depth at which submissions start
// shedding (default: the queue capacity — shed only when full).
// Lower thresholds shed earlier and keep accepted-write latency flat
// deeper into overload.
func WithShedDepth(n int) Option {
	return func(c *config) error {
		if n < 1 {
			return fmt.Errorf("serve: shed depth must be >= 1, got %d", n)
		}
		c.shedDepth = n
		return nil
	}
}

// WithBlockingBackpressure disables load shedding: a submission to a
// full queue blocks until space frees (or its context cancels) instead
// of shedding. Queued requests still expire against their deadlines.
// This is the no-shedding axis of the overload benchmarks — expect tail
// latency to collapse past saturation.
func WithBlockingBackpressure() Option {
	return func(c *config) error {
		c.blocking = true
		return nil
	}
}

// WithServerRetry lets the dispatcher retry transient engine failures
// (wdm.ErrBudgetExceeded) server-side: up to attempts total engine
// applications per request, re-coalesced after a jittered exponential
// backoff starting at base (doubling per attempt, capped at max).
// Retries respect the request's deadline; permanent errors are never
// retried. attempts <= 1 disables server-side retry (the default).
func WithServerRetry(attempts int, base, max time.Duration) Option {
	return func(c *config) error {
		if attempts < 1 {
			return fmt.Errorf("serve: retry attempts must be >= 1, got %d", attempts)
		}
		if base <= 0 || max < base {
			return fmt.Errorf("serve: retry backoff needs 0 < base <= max, got %v and %v", base, max)
		}
		c.retryMax = attempts
		c.retryBase = base
		c.retryCapped = max
		return nil
	}
}

// WithSeed fixes the dispatcher's backoff-jitter seed, making retry
// schedules deterministic for tests and benchmarks.
func WithSeed(seed int64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// pending is one queued submission: the request, its completion future
// and the deadline/retry bookkeeping that travels with it.
type pending struct {
	req      Request
	done     chan Response
	deadline time.Time // zero = none
	attempts int       // engine applications consumed so far
	retryAt  time.Time // backlog ordering key while waiting out a backoff
	heapIdx  int
}

// Server is the robust write front-end over a ShardedEngine. All
// methods are safe for concurrent use. The Server owns the engine's
// write path: driving the engine's mutating API directly while a
// Server is attached forfeits the ordering the coalescer provides
// (reads are fine — they are lock-free).
type Server struct {
	eng *wdm.ShardedEngine
	cfg config

	queue chan *pending
	rng   *rand.Rand // dispatcher-only: backoff jitter

	// Intake gate: every enqueue happens under intakeMu.RLock with
	// draining re-checked inside, and Shutdown flips draining under the
	// write lock — so once Shutdown releases it, no submission can slip
	// into the queue behind the dispatcher's final flush. Without the
	// gate, a submitter could pass the draining check, lose the CPU,
	// and enqueue after the drain emptied the queue: a request that
	// never gets its response.
	intakeMu sync.RWMutex
	draining atomic.Bool
	drainReq chan struct{} // signals the dispatcher to drain
	done     chan struct{} // dispatcher exited: queue flushed, engine closed
	closeErr error         // engine Close result, readable after done

	// Calibration for shed hints: EWMA of the coalescer's per-op
	// service time in nanoseconds (atomic — Submit reads it lock-free).
	perOpNanos atomic.Int64

	submitted atomic.Int64
	acked     atomic.Int64
	failed    atomic.Int64
	shed      atomic.Int64
	expired   atomic.Int64
	retried   atomic.Int64
	panics    atomic.Int64
	batches   atomic.Int64
	batchedOps atomic.Int64

	// Dispatcher-owned scratch.
	batch   []*pending
	ops     []wdm.BatchOp
	results []wdm.BatchResult
	backlog retryHeap

	// testApplyHook, when set (tests only, before the dispatcher
	// starts), runs inside the recover scope before every engine
	// application with the ops about to apply — a panicking hook
	// exercises the isolation path exactly like an engine panic.
	testApplyHook func(ops []wdm.BatchOp)
}

// New starts a Server over eng. The Server takes over eng's write
// path; call Shutdown to drain and close both.
func New(eng *wdm.ShardedEngine, opts ...Option) (*Server, error) {
	cfg := config{
		maxBatch:   256,
		latencyCap: 500 * time.Microsecond,
		queueCap:   4096,
		retryMax:   1,
		retryBase:  200 * time.Microsecond,
		retryCapped: 10 * time.Millisecond,
		seed:       1,
	}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.shedDepth == 0 || cfg.shedDepth > cfg.queueCap {
		cfg.shedDepth = cfg.queueCap
	}
	s := &Server{
		eng:      eng,
		cfg:      cfg,
		queue:    make(chan *pending, cfg.queueCap),
		rng:      rand.New(rand.NewSource(cfg.seed)),
		drainReq: make(chan struct{}),
		done:     make(chan struct{}),
		batch:    make([]*pending, 0, cfg.maxBatch),
		ops:      make([]wdm.BatchOp, 0, cfg.maxBatch),
	}
	s.perOpNanos.Store(2_000) // prior until the first batch calibrates it
	go s.dispatch()
	return s, nil
}

// Engine returns the wrapped engine, for its lock-free read API. The
// write path belongs to the Server.
func (s *Server) Engine() *wdm.ShardedEngine { return s.eng }

// Stats returns the server's cumulative outcome counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Submitted:  s.submitted.Load(),
		Acked:      s.acked.Load(),
		Failed:     s.failed.Load(),
		Shed:       s.shed.Load(),
		Expired:    s.expired.Load(),
		Retried:    s.retried.Load(),
		Panics:     s.panics.Load(),
		Batches:    s.batches.Load(),
		BatchedOps: s.batchedOps.Load(),
		Drained:    s.drained(),
	}
}

func (s *Server) drained() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// QueueDepth returns the current submission-queue occupancy.
func (s *Server) QueueDepth() int { return len(s.queue) }

// retryAfterHint estimates how long the backlog needs to drain below
// the shed threshold: queued ops ahead of the caller times the
// calibrated per-op service time, floored at one latency cap (the
// soonest any new batch can complete).
func (s *Server) retryAfterHint() time.Duration {
	d := time.Duration(int64(len(s.queue))*s.perOpNanos.Load()) * time.Nanosecond
	if d < s.cfg.latencyCap {
		d = s.cfg.latencyCap
	}
	return d
}

// Submit hands a request to the coalescer and blocks until its
// definitive response: ack, terminal error, shed verdict or deadline
// expiry. The context's deadline travels with the request (expired
// requests are answered without engine work); context cancellation
// does not revoke a request already queued — the response still
// arrives, and the caller can discard it.
func (s *Server) Submit(ctx context.Context, req Request) Response {
	return <-s.SubmitAsync(ctx, req)
}

// SubmitAsync is Submit without the wait: the returned channel
// delivers exactly one Response. The shed/closed verdicts are decided
// synchronously (the channel is already loaded on return).
func (s *Server) SubmitAsync(ctx context.Context, req Request) <-chan Response {
	s.submitted.Add(1)
	p := &pending{req: req, done: make(chan Response, 1)}
	if dl, ok := ctx.Deadline(); ok {
		p.deadline = dl
	}
	// The whole enqueue runs under the intake read-lock (see intakeMu):
	// once Shutdown flips draining under the write lock, no submission
	// can reach the queue behind the final flush, so every accepted
	// request is guaranteed its definitive response. While we hold the
	// read-lock the dispatcher cannot have begun draining (drainReq
	// closes after the write lock), so a blocking send always has a
	// live consumer on the other end.
	s.intakeMu.RLock()
	defer s.intakeMu.RUnlock()
	if s.draining.Load() {
		s.failed.Add(1)
		p.done <- Response{Err: ErrServerClosed}
		return p.done
	}
	if !s.cfg.blocking {
		// Shed before queueing: a saturated queue, or a deadline the
		// backlog already overruns, gets an immediate verdict with a
		// backoff hint instead of a doomed wait.
		hint := s.retryAfterHint()
		if len(s.queue) >= s.cfg.shedDepth || (!p.deadline.IsZero() && time.Now().Add(hint).After(p.deadline) && len(s.queue) >= s.cfg.maxBatch) {
			s.shed.Add(1)
			p.done <- Response{Err: ErrShed, RetryAfter: hint}
			return p.done
		}
		select {
		case s.queue <- p:
		default:
			s.shed.Add(1)
			p.done <- Response{Err: ErrShed, RetryAfter: hint}
		}
		return p.done
	}
	// Blocking backpressure: wait for queue space, still bounded by the
	// caller's context so a stuck transport can abandon the submission
	// (the request is then never enqueued and the verdict is the
	// context's error).
	select {
	case s.queue <- p:
	case <-ctx.Done():
		s.expired.Add(1)
		p.done <- Response{Err: fmt.Errorf("serve: abandoned while blocked on full queue: %w", ctx.Err())}
	}
	return p.done
}

// Shutdown gracefully drains the server: intake stops (later Submits
// answer ErrServerClosed), the queue and the retry backlog flush so
// every accepted request receives its definitive response, and the
// engine closes — reads keep answering from its final snapshot.
// Shutdown returns the engine's Close error once the drain completes,
// or ctx's error if it expires first (the drain keeps running and
// still closes the engine; a second Shutdown call re-waits).
// Shutdown is idempotent and safe to call concurrently.
func (s *Server) Shutdown(ctx context.Context) error {
	// Flip draining under the intake write lock: when the lock
	// releases, every in-flight enqueue has finished and every later
	// submission sees the flag — the dispatcher's final flush observes
	// a queue no new request can enter.
	s.intakeMu.Lock()
	first := !s.draining.Swap(true)
	s.intakeMu.Unlock()
	if first {
		close(s.drainReq)
	}
	select {
	case <-s.done:
		return s.closeErr
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ── Dispatcher ─────────────────────────────────────────────────────────

// dispatch is the single coalescer goroutine: it accumulates queued
// requests into batches under the max-batch/latency-cap policy,
// applies them, completes the futures, and services the retry backlog.
// On drain it flushes everything, closes the engine and exits.
func (s *Server) dispatch() {
	defer close(s.done)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		// Wait for work: the first queued request, a due retry, or the
		// drain signal. An armed backlog bounds the wait.
		var first *pending
		if due := s.backlogWait(); due >= 0 {
			timer.Reset(due)
			select {
			case first = <-s.queue:
			case <-timer.C:
			case <-s.drainReq:
				s.drain()
				return
			}
			stopTimer(timer)
		} else {
			select {
			case first = <-s.queue:
			case <-s.drainReq:
				s.drain()
				return
			}
		}
		s.collect(first, timer)
		s.applyBatch(false)
	}
}

// backlogWait returns the wait until the earliest backlog retry is
// due, or -1 when the backlog is empty.
func (s *Server) backlogWait() time.Duration {
	if len(s.backlog) == 0 {
		return -1
	}
	d := time.Until(s.backlog[0].retryAt)
	if d < 0 {
		d = 0
	}
	return d
}

// collect fills s.batch: due retries first (they have already waited),
// then queued requests, up to maxBatch, waiting out the latency cap
// from the first request's pickup when the queue runs dry early.
func (s *Server) collect(first *pending, timer *time.Timer) {
	s.batch = s.batch[:0]
	now := time.Now()
	for len(s.backlog) > 0 && !s.backlog[0].retryAt.After(now) && len(s.batch) < s.cfg.maxBatch {
		s.batch = append(s.batch, heap.Pop(&s.backlog).(*pending))
	}
	if first != nil {
		s.batch = append(s.batch, first)
	}
	capAt := now.Add(s.cfg.latencyCap)
	for len(s.batch) < s.cfg.maxBatch {
		select {
		case p := <-s.queue:
			s.batch = append(s.batch, p)
			continue
		default:
		}
		// Queue momentarily empty: wait out the remainder of the
		// latency cap for co-batched company, or drain immediately.
		wait := time.Until(capAt)
		if wait <= 0 {
			return
		}
		timer.Reset(wait)
		select {
		case p := <-s.queue:
			stopTimer(timer)
			s.batch = append(s.batch, p)
		case <-timer.C:
			return
		case <-s.drainReq:
			stopTimer(timer)
			return // drain() flushes; finish this batch first
		}
	}
}

func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

// drain flushes everything still owed a response: queued requests in
// arrival order, then the whole retry backlog (their backoffs are
// forfeited — each gets one final engine attempt), then closes the
// engine. Every future completes before the engine does.
func (s *Server) drain() {
	for {
		s.batch = s.batch[:0]
		for len(s.backlog) > 0 && len(s.batch) < s.cfg.maxBatch {
			s.batch = append(s.batch, heap.Pop(&s.backlog).(*pending))
		}
		for len(s.batch) < s.cfg.maxBatch {
			select {
			case p := <-s.queue:
				s.batch = append(s.batch, p)
				continue
			default:
			}
			break
		}
		if len(s.batch) == 0 && len(s.backlog) == 0 {
			break
		}
		s.applyBatch(true)
	}
	s.closeErr = s.eng.Close()
}

// applyBatch applies s.batch: expired requests answer first (no engine
// work), barrier ops (FailArc/RestoreArc) split the batch, and the
// coalesced runs go through ApplyBatchInto under panic isolation.
// final suppresses retry scheduling (drain: last attempt).
func (s *Server) applyBatch(final bool) {
	now := time.Now()
	run := s.batch[:0] // reuse: compacted non-expired requests, in order
	for _, p := range s.batch {
		if !p.deadline.IsZero() && now.After(p.deadline) {
			s.expired.Add(1)
			p.done <- Response{Err: ErrDeadlineExceeded, Attempts: p.attempts}
			continue
		}
		run = append(run, p)
	}
	// Apply maximal coalesced segments between barrier ops.
	seg := 0
	for i, p := range run {
		if p.req.Kind == OpFailArc || p.req.Kind == OpRestoreArc {
			s.applyCoalesced(run[seg:i], final)
			s.applyBarrier(p)
			seg = i + 1
		}
	}
	s.applyCoalesced(run[seg:], final)
	s.batch = s.batch[:0]
}

// applyBarrier applies one FailArc/RestoreArc individually; these
// reconcile across lanes inside the engine and cannot ride a batch.
func (s *Server) applyBarrier(p *pending) {
	p.attempts++
	resp := func() (r Response) {
		defer func() {
			if v := recover(); v != nil {
				s.panics.Add(1)
				r = Response{Err: ErrPanic{Value: v}}
			}
		}()
		switch p.req.Kind {
		case OpFailArc:
			rep, err := s.eng.FailArc(p.req.Arc)
			return Response{Storm: rep, Err: err}
		default:
			n, err := s.eng.RestoreArc(p.req.Arc)
			return Response{Revived: n, Err: err}
		}
	}()
	resp.Attempts = p.attempts
	s.complete(p, resp)
}

// applyCoalesced turns the pendings into one engine batch, applies it
// (isolating panics), and routes each result to its future or — for
// transient failures with retry budget left — to the backlog.
func (s *Server) applyCoalesced(ps []*pending, final bool) {
	if len(ps) == 0 {
		return
	}
	s.ops = s.ops[:0]
	for _, p := range ps {
		switch p.req.Kind {
		case OpAdd:
			s.ops = append(s.ops, wdm.AddOp(p.req.Route))
		case OpRemove:
			s.ops = append(s.ops, wdm.RemoveOp(p.req.ID))
		default:
			s.ops = append(s.ops, wdm.RerouteOp(p.req.ID))
		}
		p.attempts++
	}
	t0 := time.Now()
	results, panicked := s.applyEngine(s.ops)
	if panicked {
		// The batch application panicked. Re-run op by op, each under
		// its own recover: exactly the panicking request fails with
		// ErrPanic, its batch-mates get their real results.
		s.panics.Add(1)
		results = s.applySingly(ps)
	}
	s.observeBatch(len(ps), time.Since(t0))
	now := time.Now()
	for i, p := range ps {
		res := results[i]
		if !final && res.Err != nil && p.attempts < s.cfg.retryMax && IsTransient(res.Err) {
			at := now.Add(s.backoff(p.attempts))
			if p.deadline.IsZero() || at.Before(p.deadline) {
				s.retried.Add(1)
				p.retryAt = at
				heap.Push(&s.backlog, p)
				continue
			}
		}
		s.complete(p, Response{ID: res.ID, Changed: res.Changed, Err: res.Err, Attempts: p.attempts})
	}
}

// applyEngine runs one ApplyBatchInto under a recover; panicked=true
// means results are invalid and the batch must re-run singly.
func (s *Server) applyEngine(ops []wdm.BatchOp) (results []wdm.BatchResult, panicked bool) {
	defer func() {
		if v := recover(); v != nil {
			panicked = true
		}
	}()
	if s.testApplyHook != nil {
		s.testApplyHook(ops)
	}
	s.results = s.eng.ApplyBatchInto(ops, s.results)
	return s.results, false
}

// applySingly is the panic-isolation slow path: every op applies alone,
// under its own recover.
func (s *Server) applySingly(ps []*pending) []wdm.BatchResult {
	out := make([]wdm.BatchResult, len(ps))
	for i, p := range ps {
		out[i] = func() (r wdm.BatchResult) {
			defer func() {
				if v := recover(); v != nil {
					r = wdm.BatchResult{Err: ErrPanic{Value: v}}
				}
			}()
			if s.testApplyHook != nil {
				op := [1]wdm.BatchOp{{Kind: wdm.BatchKind(p.req.Kind), Req: p.req.Route, ID: p.req.ID}}
				s.testApplyHook(op[:])
			}
			switch p.req.Kind {
			case OpAdd:
				id, err := s.eng.Add(p.req.Route)
				return wdm.BatchResult{ID: id, Err: err}
			case OpRemove:
				return wdm.BatchResult{ID: p.req.ID, Err: s.eng.Remove(p.req.ID)}
			default:
				changed, err := s.eng.Reroute(p.req.ID)
				return wdm.BatchResult{ID: p.req.ID, Changed: changed, Err: err}
			}
		}()
	}
	return out
}

// complete delivers a definitive response and counts it.
func (s *Server) complete(p *pending, resp Response) {
	if resp.Err == nil {
		s.acked.Add(1)
	} else {
		s.failed.Add(1)
	}
	p.done <- resp
}

// observeBatch folds one batch's per-op service time into the EWMA the
// shed hints are derived from (α = 1/8).
func (s *Server) observeBatch(ops int, elapsed time.Duration) {
	s.batches.Add(1)
	s.batchedOps.Add(int64(ops))
	if ops == 0 {
		return
	}
	per := elapsed.Nanoseconds() / int64(ops)
	old := s.perOpNanos.Load()
	s.perOpNanos.Store(old + (per-old)/8)
}

// backoff returns the jittered exponential server-side retry delay for
// a request about to spend attempt+1: base·2^(attempt-1), capped, with
// full jitter (uniform in (0, d]) so synchronized rejections decorrelate.
func (s *Server) backoff(attempt int) time.Duration {
	d := s.cfg.retryBase << uint(attempt-1)
	if d > s.cfg.retryCapped || d <= 0 {
		d = s.cfg.retryCapped
	}
	return time.Duration(s.rng.Int63n(int64(d))) + 1
}

// ── Retry backlog ──────────────────────────────────────────────────────

// retryHeap orders backed-off requests by due time.
type retryHeap []*pending

func (h retryHeap) Len() int            { return len(h) }
func (h retryHeap) Less(i, j int) bool  { return h[i].retryAt.Before(h[j].retryAt) }
func (h retryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].heapIdx = i; h[j].heapIdx = j }
func (h *retryHeap) Push(x any)         { p := x.(*pending); p.heapIdx = len(*h); *h = append(*h, p) }
func (h *retryHeap) Pop() any           { old := *h; n := len(old); x := old[n-1]; old[n-1] = nil; *h = old[:n-1]; return x }
