package serve

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"wavedag/internal/wdm"
)

// BenchmarkServeCoalesce measures the closed-loop submit→ack round
// trip through the coalescer under concurrent submitters with blocking
// backpressure (nothing sheds): every RunParallel goroutine drives an
// add-heavy mix with removes bounding its working set. "ops/batch"
// reports how much coalescing the dispatcher achieved at this
// parallelism.
func BenchmarkServeCoalesce(b *testing.B) {
	srv, pool := testServer(b, 4, 71, nil,
		WithBlockingBackpressure(), WithLatencyCap(100*time.Microsecond), WithSeed(71))
	ctx := context.Background()
	var worker atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(71 + worker.Add(1)))
		var ids []wdm.ShardedID
		for pb.Next() {
			if len(ids) >= 32 {
				id := ids[len(ids)-1]
				ids = ids[:len(ids)-1]
				if resp := srv.Submit(ctx, RemoveRequest(id)); resp.Err != nil {
					b.Error(resp.Err)
					return
				}
				continue
			}
			r := pool[rng.Intn(len(pool))]
			resp := srv.Submit(ctx, AddRequest(r.Src, r.Dst))
			if resp.Err != nil {
				b.Error(resp.Err)
				return
			}
			ids = append(ids, resp.ID)
		}
	})
	b.StopTimer()
	if st := srv.Stats(); st.Batches > 0 {
		b.ReportMetric(float64(st.BatchedOps)/float64(st.Batches), "ops/batch")
	}
	if err := srv.Shutdown(ctx); err != nil {
		b.Fatal(err)
	}
	if err := srv.Engine().Verify(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkServeShedding measures the submission path under sustained
// overload against a deliberately tiny queue: each iteration submits
// asynchronously into a 256-deep in-flight ring, so the queue runs at
// its shed threshold and most verdicts are sheds — the cost being
// measured is the shed fast path plus the amortised future round trip.
// "shed_pct" reports the overload split.
func BenchmarkServeShedding(b *testing.B) {
	srv, pool := testServer(b, 4, 73, nil,
		WithQueueCapacity(64), WithShedDepth(48), WithLatencyCap(100*time.Microsecond), WithSeed(73))
	ctx := context.Background()
	rng := rand.New(rand.NewSource(73))
	const ring = 256
	futures := make([]<-chan Response, 0, ring)
	var acked, shed int64
	settle := func() {
		for _, f := range futures {
			switch r := <-f; {
			case r.Err == nil:
				acked++
			case r.Shed():
				shed++
			default:
				b.Error(r.Err)
			}
		}
		futures = futures[:0]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := pool[rng.Intn(len(pool))]
		futures = append(futures, srv.SubmitAsync(ctx, AddRequest(r.Src, r.Dst)))
		if len(futures) == ring {
			settle()
		}
	}
	settle()
	b.StopTimer()
	if total := acked + shed; total > 0 {
		b.ReportMetric(100*float64(shed)/float64(total), "shed_pct")
	}
	if err := srv.Shutdown(ctx); err != nil {
		b.Fatal(err)
	}
	if err := srv.Engine().Verify(); err != nil {
		b.Fatal(err)
	}
}
