package serve

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"wavedag/internal/gen"
	"wavedag/internal/route"
	"wavedag/internal/wdm"
)

// isNoRoute reports whether err is a routing failure — expected when a
// cut leaves a source/destination pair disconnected.
func isNoRoute(err error) bool {
	var nr route.ErrNoRoute
	return errors.As(err, &nr)
}

// TestServeChaosSoak is the serving contract under fire: concurrent
// writers push add/remove traffic through retrying clients on ramped
// open-loop Poisson arrival clocks (gen.PoissonArrivals) while a
// fault injector replays a gen.FaultSchedule of fiber cuts and repairs
// through the same coalescer, the wavelength budget forces transient
// rejections, and shedding is armed. At the end, every submission must
// have received exactly one definitive response, the engine must
// Verify clean, and the live/dark occupancy must equal the acked
// add/remove ledger and the engine's own failure accounting. Runs in
// the default test tier, so it is exercised under -race at -cpu=1,4
// in CI.
func TestServeChaosSoak(t *testing.T) {
	const (
		comps     = 3
		writers   = 4
		opsEach   = 200
		addFrac   = 0.7
		budget    = 6
		mtbf, mttr = 4.0, 1.0
		horizon   = 12.0
	)
	net, pool := testNetwork(t, comps, 97)
	eng, err := net.NewShardedEngine(wdm.WithEngineWavelengthBudget(budget))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(eng,
		WithQueueCapacity(256),
		WithShedDepth(192),
		WithLatencyCap(200*time.Microsecond),
		WithServerRetry(3, 100*time.Microsecond, 2*time.Millisecond),
		WithSeed(5),
	)
	if err != nil {
		eng.Close()
		t.Fatal(err)
	}

	faults, err := gen.FaultSchedule(net.Topology, mtbf, mttr, horizon, 23)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fault schedule: %d events", len(faults))

	var (
		mu           sync.Mutex
		liveIDs      []wdm.ShardedID
		ackedAdds    int
		ackedRemoves int
		ackedCuts    int
		ackedRepairs int
	)
	popID := func(r *rand.Rand) (wdm.ShardedID, bool) {
		mu.Lock()
		defer mu.Unlock()
		if len(liveIDs) == 0 {
			return wdm.ShardedID{}, false
		}
		i := r.Intn(len(liveIDs))
		id := liveIDs[i]
		liveIDs[i] = liveIDs[len(liveIDs)-1]
		liveIDs = liveIDs[:len(liveIDs)-1]
		return id, true
	}

	ctx := context.Background()
	var wg sync.WaitGroup

	// Fault injector: the schedule's cuts and repairs ride the same
	// coalescer as the writes (barrier ops), in schedule order.
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := NewClient(srv, RetryPolicy{MaxAttempts: 4, Base: 200 * time.Microsecond, Max: 2 * time.Millisecond}, 31)
		for _, ev := range faults {
			var req Request
			if ev.Restore {
				req = RestoreArcRequest(ev.Arc)
			} else {
				req = FailArcRequest(ev.Arc)
			}
			resp := client.Do(ctx, req)
			switch {
			case resp.Err == nil:
				mu.Lock()
				if ev.Restore {
					ackedRepairs++
				} else {
					ackedCuts++
				}
				mu.Unlock()
			case resp.Shed():
				// Definitive verdict; the schedule stays valid only if
				// applied in full, so a dropped event ends the replay
				// (alternating cut/repair on the same arc must not skip).
				t.Logf("fault replay stopped at shed event")
				return
			default:
				t.Errorf("fault event %+v: %v", ev, resp.Err)
				return
			}
		}
	}()

	responses := make([]int, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			client := NewClient(srv, RetryPolicy{MaxAttempts: 3, Base: 200 * time.Microsecond, Max: 2 * time.Millisecond}, int64(w))
			// Open-loop Poisson pacing with a rate ramp: each writer's
			// clock accelerates 2k→20k events/s over the first 50ms, so
			// the aggregate offered load climbs past what the coalescer
			// absorbs and the shed/retry paths genuinely engage. When
			// the clock falls behind (Do blocks through retries) the
			// backlog fires as a burst — open-loop overload, not a
			// polite closed loop.
			arr, aerr := gen.NewPoissonArrivals(2000, int64(500+w))
			if aerr != nil {
				t.Error(aerr)
				return
			}
			if aerr := arr.SetRamp(0, 0.05, 20000); aerr != nil {
				t.Error(aerr)
				return
			}
			start := time.Now()
			for i := 0; i < opsEach; i++ {
				next := start.Add(time.Duration(arr.Next() * float64(time.Second)))
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				dctx, cancel := context.WithTimeout(ctx, 2*time.Second)
				if rng.Float64() < addFrac {
					req := pool[rng.Intn(len(pool))]
					resp := client.Do(dctx, AddRequest(req.Src, req.Dst))
					switch {
					case resp.Err == nil:
						mu.Lock()
						ackedAdds++
						liveIDs = append(liveIDs, resp.ID)
						mu.Unlock()
					case errors.Is(resp.Err, wdm.ErrBudgetExceeded), resp.Shed(), resp.Expired(), isNoRoute(resp.Err):
						// Definitive negative verdicts, all expected
						// under budget pressure, overload and cuts.
					default:
						t.Errorf("writer %d add: %v", w, resp.Err)
					}
					responses[w]++
				} else if id, ok := popID(rng); ok {
					resp := client.Do(dctx, RemoveRequest(id))
					switch {
					case resp.Err == nil:
						mu.Lock()
						ackedRemoves++
						mu.Unlock()
					case resp.Shed(), resp.Expired():
						// The id is consumed either way; a shed remove
						// just leaks the session into the final live set.
						mu.Lock()
						liveIDs = append(liveIDs, id)
						mu.Unlock()
					default:
						t.Errorf("writer %d remove %v: %v", w, id, resp.Err)
					}
					responses[w]++
				} else {
					responses[w]++ // nothing to remove yet counts as a no-op turn
				}
				cancel()
			}
		}(w)
	}
	wg.Wait()

	// Exactly-one-definitive-response: every writer turn completed, and
	// the server's outcome ledger balances.
	for w, n := range responses {
		if n != opsEach {
			t.Fatalf("writer %d: %d definitive turns, want %d", w, n, opsEach)
		}
	}
	st := srv.Stats()
	checkBalance(t, st)
	t.Logf("soak stats: %+v", st)

	// The conflict invariant survived the storm interleaving.
	if err := eng.Verify(); err != nil {
		t.Fatal(err)
	}

	// Live/dark occupancy must equal the acked ledger: acked adds minus
	// acked removes, split between live and parked-dark entries.
	es := eng.Stats()
	expect := ackedAdds - ackedRemoves
	if got := eng.Len() + eng.DarkLive(); got != expect {
		t.Fatalf("live %d + dark %d = %d, want acked adds %d - acked removes %d = %d",
			eng.Len(), eng.DarkLive(), eng.Len()+eng.DarkLive(), ackedAdds, ackedRemoves, expect)
	}
	// The engine's failure accounting matches what the server acked.
	if es.Cuts != ackedCuts || es.Restores != ackedRepairs {
		t.Fatalf("engine saw %d cuts / %d restores, server acked %d / %d",
			es.Cuts, es.Restores, ackedCuts, ackedRepairs)
	}
	if laneDark := es.Plain.Dark + es.Region.Dark + es.Overlay.Dark; laneDark != eng.DarkLive() {
		t.Fatalf("lane dark sum %d != DarkLive %d", laneDark, eng.DarkLive())
	}
	if aff := es.Plain.Affected + es.Region.Affected + es.Overlay.Affected; aff !=
		es.Plain.Restored+es.Region.Restored+es.Overlay.Restored+es.Plain.Parked+es.Region.Parked+es.Overlay.Parked {
		t.Fatalf("failure ledger unbalanced: affected %d != restored+parked", aff)
	}

	// Graceful drain: everything already acked, so Shutdown just closes;
	// queries keep answering from the final snapshot.
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if got := eng.Len() + eng.DarkLive(); got != expect {
		t.Fatalf("post-close occupancy %d, want %d", got, expect)
	}
	if resp := srv.Submit(ctx, AddRequest(pool[0].Src, pool[0].Dst)); !errors.Is(resp.Err, ErrServerClosed) {
		t.Fatalf("post-shutdown submit: %v", resp.Err)
	}
}
