// Package lint is the repository's custom static-analysis driver: a
// stdlib-only reimplementation of the load/typecheck/analyze pipeline
// (no golang.org/x/tools — the module has zero dependencies and the
// builder may be offline). Packages are enumerated by shelling out to
// `go list -export -json -deps`, which also compiles export data for
// every dependency; imports are resolved by feeding those export files
// to importer.ForCompiler("gc", lookup); the analyzed packages
// themselves are parsed from source and type-checked with go/types.
//
// The analyzers (lockfree, publish, poolpair, errwrap, registry)
// mechanically enforce the engine contracts that PRs 2–8 established by
// convention and review; see the package documentation in wavedag.go
// ("Static analysis & invariants") for the contract statements and the
// //wavedag: directive syntax.
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// listPackage is the subset of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
	DepOnly    bool
}

// Package is one type-checked package of the analyzed module.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// exportLookup resolves import paths to gc export-data files produced
// by `go list -export`. It satisfies the lookup signature of
// importer.ForCompiler.
type exportLookup map[string]string

func (m exportLookup) open(path string) (io.ReadCloser, error) {
	file, ok := m[path]
	if !ok || file == "" {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(file)
}

// unsafeAwareImporter wraps the gc importer so that the special package
// unsafe (which has no export file) resolves to types.Unsafe.
type unsafeAwareImporter struct{ inner types.ImporterFrom }

func (u unsafeAwareImporter) Import(path string) (*types.Package, error) {
	return u.ImportFrom(path, "", 0)
}

func (u unsafeAwareImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.inner.ImportFrom(path, dir, mode)
}

// Load enumerates the packages matching patterns (relative to dir),
// parses and type-checks every non-standard-library one, and returns
// the indexed Corpus the analyzers run over. Standard-library
// dependencies are loaded from export data only.
func Load(dir string, patterns ...string) (*Corpus, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-export", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list failed: %v\n%s", err, errBuf.String())
	}

	var targets []*listPackage
	exports := exportLookup{}
	dec := json.NewDecoder(&out)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.Standard {
			targets = append(targets, lp)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("lint: no packages matched %v", patterns)
	}

	fset := token.NewFileSet()
	imp := unsafeAwareImporter{
		inner: importer.ForCompiler(fset, "gc", exports.open).(types.ImporterFrom),
	}
	c := newCorpus(fset)
	for _, lp := range targets {
		pkg, err := check(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		c.Packages = append(c.Packages, pkg)
		c.modulePaths[lp.ImportPath] = true
	}
	c.index()
	return c, nil
}

// check parses and type-checks one module package from source.
func check(fset *token.FileSet, imp types.ImporterFrom, lp *listPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
