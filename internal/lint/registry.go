package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// registryAnalyzer enforces the strategy-registry contract: every
// statically registered strategy must carry a distinct compile-time
// constant name (a Name() method that returns a string literal or
// constant — a computed name can collide at init time, where the
// registry can only panic), and every constant of a const block
// annotated "//wavedag:registry <RegisterFunc>" must have a registered
// implementation, so the documented names never drift from the
// registry contents.
//
// Registration points are discovered structurally: any function named
// Register* taking a single interface with a Name() string method and
// returning error. Registered types are resolved from direct calls
// (Register(myStrategy{})) and from the init-loop idiom (ranging over
// a []Strategy{...} literal). Forwarding wrappers that pass through an
// interface value they did not construct are skipped — the analyzer
// checks what it can see statically, the registries reject the rest at
// runtime.
var registryAnalyzer = &Analyzer{
	Name: "registry",
	Doc:  "strategy registrations need distinct constant names; registry constants need implementations",
	Run:  runRegistry,
}

func runRegistry(c *Corpus, report func(pos token.Pos, format string, args ...any)) {
	// Registration points, by canonical key; grouped by function name
	// so annotated const blocks match re-exported wrappers too.
	regFuncs := map[string]string{} // funcKey -> function name
	for key, fi := range c.funcs {
		if isRegistrationFunc(fi) {
			regFuncs[key] = fi.Obj.Name()
		}
	}
	if len(regFuncs) == 0 && len(c.constBlocks) == 0 {
		return
	}

	// registered[funcName][name] = first registration position
	registered := map[string]map[string]token.Pos{}

	for _, fi := range c.decls {
		if fi.Decl.Body == nil {
			continue
		}
		info := fi.Pkg.Info
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			f := callee(info, call)
			if f == nil {
				return true
			}
			funcName, isReg := regFuncs[funcKey(f)]
			if !isReg {
				return true
			}
			for _, concrete := range resolveRegistrants(c, fi, call, call.Args[0]) {
				name, pos, ok := resolveStrategyName(c, concrete)
				if !ok {
					report(call.Pos(), "%s registers %s, whose Name() is not a compile-time constant; registry names must be literal",
						funcName, concrete.Obj().Name())
					continue
				}
				_ = pos
				if registered[funcName] == nil {
					registered[funcName] = map[string]token.Pos{}
				}
				if first, dup := registered[funcName][name]; dup {
					report(call.Pos(), "%s registers duplicate name %q (first registered at %s)",
						funcName, name, c.Fset.Position(first))
					continue
				}
				registered[funcName][name] = call.Pos()
			}
			return true
		})
	}

	for _, cb := range c.constBlocks {
		names := registered[cb.Arg]
		for _, spec := range cb.Decl.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, id := range vs.Names {
				if i >= len(vs.Values) {
					continue
				}
				val, ok := constStringValue(cb.Pkg.Info, vs.Values[i])
				if !ok {
					report(id.Pos(), "registry constant %s is not a string constant", id.Name)
					continue
				}
				if _, exists := names[val]; !exists {
					report(id.Pos(), "registry constant %s = %q has no implementation registered via %s",
						id.Name, val, cb.Arg)
				}
			}
		}
	}
}

// isRegistrationFunc matches func RegisterX(s SomeInterface) error
// where SomeInterface has a Name() string method.
func isRegistrationFunc(fi *FuncInfo) bool {
	if fi.Decl.Recv != nil || len(fi.Obj.Name()) <= len("Register") ||
		fi.Obj.Name()[:len("Register")] != "Register" {
		return false
	}
	sig, ok := fi.Obj.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	if !isErrorType(sig.Results().At(0).Type()) {
		return false
	}
	iface, ok := sig.Params().At(0).Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	for i := 0; i < iface.NumMethods(); i++ {
		m := iface.Method(i)
		if m.Name() != "Name" {
			continue
		}
		msig := m.Type().(*types.Signature)
		if msig.Params().Len() == 0 && msig.Results().Len() == 1 {
			if b, ok := msig.Results().At(0).Type().(*types.Basic); ok && b.Kind() == types.String {
				return true
			}
		}
	}
	return false
}

// resolveRegistrants maps a registration argument to the concrete
// strategy types it carries: a direct composite literal (&X{} / X{}),
// or a range variable over a []Iface{...} literal whose loop encloses
// the call. An untraceable interface value yields nothing.
func resolveRegistrants(c *Corpus, fi *FuncInfo, call *ast.CallExpr, arg ast.Expr) []*types.Named {
	info := fi.Pkg.Info
	arg = unparen(arg)
	if tv, ok := info.Types[arg]; ok && !types.IsInterface(tv.Type) {
		if n := namedOf(tv.Type); n != nil {
			return []*types.Named{n}
		}
		return nil
	}
	id, ok := arg.(*ast.Ident)
	if !ok {
		return nil
	}
	var found []*types.Named
	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if call.Pos() < rs.Body.Pos() || call.End() > rs.Body.End() {
			return true // the call is not inside this loop
		}
		v, ok := rs.Value.(*ast.Ident)
		if !ok || v.Name != id.Name {
			return true
		}
		lit, ok := unparen(rs.X).(*ast.CompositeLit)
		if !ok {
			return true
		}
		found = found[:0] // innermost enclosing loop wins
		for _, elt := range lit.Elts {
			if tv, ok := info.Types[unparen(elt)]; ok {
				if n := namedOf(tv.Type); n != nil {
					found = append(found, n)
				}
			}
		}
		return true
	})
	return found
}

func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// resolveStrategyName evaluates the concrete type's Name() method to
// its compile-time constant value.
func resolveStrategyName(c *Corpus, n *types.Named) (string, token.Pos, bool) {
	if n.Obj().Pkg() == nil {
		return "", token.NoPos, false
	}
	fi := c.funcs[n.Obj().Pkg().Path()+"."+n.Obj().Name()+".Name"]
	if fi == nil || fi.Decl.Body == nil || len(fi.Decl.Body.List) != 1 {
		return "", token.NoPos, false
	}
	ret, ok := fi.Decl.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return "", token.NoPos, false
	}
	val, ok := constStringValue(fi.Pkg.Info, ret.Results[0])
	if !ok {
		return "", fi.Decl.Pos(), false
	}
	return val, fi.Decl.Pos(), true
}
