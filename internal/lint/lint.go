package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Directive names. Directives are magic comments of the form
// "//wavedag:<name> [args]" (no space after //, like //go:build). A
// directive in a declaration's doc comment applies to the declaration;
// a directive trailing a statement applies to that source line.
const (
	// DirLockfree marks a function as part of the lock-free read
	// plane: it must not block, allocate, or call in-module functions
	// that are not themselves marked lock-free.
	DirLockfree = "lockfree"
	// DirAllowAlloc waives the allocation checks of DirLockfree for
	// one function (grow paths, translation buffers).
	DirAllowAlloc = "allow-alloc"
	// DirAllowBlocking, on a line, waives the blocking/callee checks
	// of DirLockfree for the calls on that line (documented fallbacks
	// to a mutex-serialised path).
	DirAllowBlocking = "allow-blocking"
	// DirPoolHandoff waives the Get/Put pairing check: the function
	// hands the pooled or pinned object to its caller (or to a
	// published structure) instead of returning it itself.
	DirPoolHandoff = "pool-handoff"
	// DirAcquire, with the release method name as argument, marks a
	// function whose callers pin a refcounted resource: every caller
	// must call the named release method or carry DirPoolHandoff.
	DirAcquire = "acquire"
	// DirRefcount marks a function as part of the audited refcount
	// core; manipulating a "refs" counter anywhere else is a finding.
	DirRefcount = "refcount"
	// DirReadonly marks a method as logically read-only (it may
	// refresh an internal cache); the publish analyzer does not count
	// calls to it as mutations.
	DirReadonly = "readonly"
	// DirRegistry, on a const block with the registration function
	// name as argument, requires every constant of the block to have
	// a registered implementation.
	DirRegistry = "registry"
)

const directivePrefix = "//wavedag:"

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Position
	Contract string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Contract, d.Message)
}

// Analyzer is one corpus-wide check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(c *Corpus, report func(pos token.Pos, format string, args ...any))
}

// Analyzers returns the full suite in a fixed order.
func Analyzers() []*Analyzer {
	return []*Analyzer{lockfreeAnalyzer, publishAnalyzer, poolpairAnalyzer, errwrapAnalyzer, registryAnalyzer}
}

// Run executes the analyzers over the corpus and returns the findings
// sorted by position then message.
func Run(c *Corpus, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		name := a.Name
		a.Run(c, func(pos token.Pos, format string, args ...any) {
			diags = append(diags, Diagnostic{
				Pos:      c.Fset.Position(pos),
				Contract: name,
				Message:  fmt.Sprintf(format, args...),
			})
		})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Contract != b.Contract {
			return a.Contract < b.Contract
		}
		return a.Message < b.Message
	})
	return diags
}

// FuncInfo is one function or method declaration of the corpus, with
// its parsed directives.
type FuncInfo struct {
	Pkg        *Package
	Decl       *ast.FuncDecl
	Obj        *types.Func
	Directives map[string]string
}

// Has reports whether the function carries the directive.
func (fi *FuncInfo) Has(dir string) bool {
	_, ok := fi.Directives[dir]
	return ok
}

// constBlock is a const declaration carrying a //wavedag:registry
// directive.
type constBlock struct {
	Pkg  *Package
	Decl *ast.GenDecl
	Arg  string // registration function name
}

type lineKey struct {
	file string
	line int
}

// Corpus is the set of type-checked module packages plus the
// cross-package indexes the analyzers share: the function/method
// declaration table keyed by canonical name (annotation propagation
// works across per-package type-check runs, where *types.Func
// identities differ), the line-directive table, and the annotated
// const blocks.
type Corpus struct {
	Fset     *token.FileSet
	Packages []*Package

	modulePaths map[string]bool
	funcs       map[string]*FuncInfo
	decls       []*FuncInfo
	lineDirs    map[lineKey]map[string]string
	constBlocks []constBlock
}

func newCorpus(fset *token.FileSet) *Corpus {
	return &Corpus{
		Fset:        fset,
		modulePaths: map[string]bool{},
		funcs:       map[string]*FuncInfo{},
		lineDirs:    map[lineKey]map[string]string{},
	}
}

// parseDirective splits a "//wavedag:name args" comment.
func parseDirective(text string) (name, args string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		return rest[:i], strings.TrimSpace(rest[i+1:]), true
	}
	return rest, "", true
}

func directivesFromDoc(doc *ast.CommentGroup) map[string]string {
	if doc == nil {
		return nil
	}
	var dirs map[string]string
	for _, cm := range doc.List {
		if name, args, ok := parseDirective(cm.Text); ok {
			if dirs == nil {
				dirs = map[string]string{}
			}
			dirs[name] = args
		}
	}
	return dirs
}

// index builds the cross-package tables after all packages are loaded.
func (c *Corpus) index() {
	for _, p := range c.Packages {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, cm := range cg.List {
					name, args, ok := parseDirective(cm.Text)
					if !ok {
						continue
					}
					pos := c.Fset.Position(cm.Pos())
					key := lineKey{pos.Filename, pos.Line}
					if c.lineDirs[key] == nil {
						c.lineDirs[key] = map[string]string{}
					}
					c.lineDirs[key][name] = args
				}
			}
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					obj, _ := p.Info.Defs[d.Name].(*types.Func)
					if obj == nil {
						continue
					}
					fi := &FuncInfo{Pkg: p, Decl: d, Obj: obj, Directives: directivesFromDoc(d.Doc)}
					if key := funcKey(obj); key != "" {
						c.funcs[key] = fi
					}
					c.decls = append(c.decls, fi)
				case *ast.GenDecl:
					if d.Tok != token.CONST {
						continue
					}
					if dirs := directivesFromDoc(d.Doc); dirs != nil {
						if arg, ok := dirs[DirRegistry]; ok {
							c.constBlocks = append(c.constBlocks, constBlock{Pkg: p, Decl: d, Arg: arg})
						}
					}
				}
			}
		}
	}
}

// funcKey canonicalises a function or concrete method to a string that
// is stable across per-package type-check runs. Interface methods (no
// concrete receiver) yield "".
func funcKey(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		n, isNamed := t.(*types.Named)
		if !isNamed || n.Obj().Pkg() == nil {
			return ""
		}
		return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + f.Name()
	}
	if f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path() + "." + f.Name()
}

// FuncFor resolves a callee object to its declaration in the corpus,
// or nil for out-of-module (or dynamic) callees.
func (c *Corpus) FuncFor(f *types.Func) *FuncInfo {
	if f == nil {
		return nil
	}
	key := funcKey(f)
	if key == "" {
		return nil
	}
	return c.funcs[key]
}

// inModule reports whether the object belongs to one of the analyzed
// module packages (as opposed to the standard library).
func (c *Corpus) inModule(obj types.Object) bool {
	return obj != nil && obj.Pkg() != nil && c.modulePaths[obj.Pkg().Path()]
}

// lineWaiver reports whether the line holding pos carries the named
// directive.
func (c *Corpus) lineWaiver(pos token.Pos, dir string) bool {
	p := c.Fset.Position(pos)
	dirs, ok := c.lineDirs[lineKey{p.Filename, p.Line}]
	if !ok {
		return false
	}
	_, ok = dirs[dir]
	return ok
}

// ── Shared AST/type helpers ────────────────────────────────────────────

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// callee resolves the static callee of a call, or nil for dynamic
// calls (interface methods resolve to their *types.Func — callers that
// care distinguish via isInterfaceCall).
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f // package-qualified call
		}
	}
	return nil
}

// isInterfaceCall reports whether the call dispatches through an
// interface method table.
func isInterfaceCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return false
	}
	t := s.Recv()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	return types.IsInterface(t)
}

// isConversion reports whether the "call" is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// builtinName returns the builtin's name when the call invokes one
// ("make", "append", ...), else "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// stdObjCall reports whether the call's static callee is the method or
// function pkgPath.name (receiver type name checked when recvName is
// non-empty).
func stdObjCall(info *types.Info, call *ast.CallExpr, pkgPath, recvName, name string) bool {
	f := callee(info, call)
	if f == nil || f.Name() != name || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return false
	}
	if recvName == "" {
		return true
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == recvName
}

// lockMethods are the sync primitives whose acquisition the lockfree
// contract bans.
var lockMethods = map[string]map[string]bool{
	"Mutex":     {"Lock": true, "TryLock": true, "Unlock": true},
	"RWMutex":   {"Lock": true, "TryLock": true, "Unlock": true, "RLock": true, "TryRLock": true, "RUnlock": true},
	"WaitGroup": {"Wait": true},
	"Cond":      {"Wait": true},
	"Once":      {"Do": true},
}

// isLockCall reports whether the call acquires (or manipulates) a sync
// lock primitive.
func isLockCall(info *types.Info, call *ast.CallExpr) bool {
	f := callee(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	names, ok := lockMethods[n.Obj().Name()]
	return ok && names[f.Name()]
}

// rootIdent walks selector/index/star/paren chains to the base
// identifier, or nil when the expression is not rooted in one (calls,
// literals, ...).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// recvName returns the declared receiver identifier of a method, or
// "" for functions and anonymous receivers.
func recvName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 || len(d.Recv.List[0].Names) == 0 {
		return ""
	}
	return d.Recv.List[0].Names[0].Name
}
