package lint_test

import (
	"flag"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"wavedag/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the fixture golden file")

// fixtureDiagnostics lints the fixture module and returns its
// diagnostics with filenames relativized to the fixture root.
func fixtureDiagnostics(t *testing.T) []string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "fixture"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := lint.Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	var lines []string
	for _, d := range lint.Run(c, lint.Analyzers()) {
		lines = append(lines, strings.ReplaceAll(d.String(), dir+string(filepath.Separator), ""))
	}
	return lines
}

// TestFixtureGolden pins every analyzer's behavior on the fixture
// module: each seeded violation must be reported at the expected
// position, and the clean functions must stay silent. Regenerate with
// go test ./internal/lint -run TestFixtureGolden -update.
func TestFixtureGolden(t *testing.T) {
	got := strings.Join(fixtureDiagnostics(t), "\n") + "\n"
	golden := filepath.Join("testdata", "fixture.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("fixture diagnostics diverged from golden file\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestFixtureCoverage asserts, independently of exact golden content,
// that every analyzer both fires on its seeded violation and stays
// quiet on the package's clean code.
func TestFixtureCoverage(t *testing.T) {
	lines := fixtureDiagnostics(t)
	mustFire := []string{"[lockfree]", "[publish]", "[poolpair]", "[errwrap]", "[registry]"}
	for _, contract := range mustFire {
		found := false
		for _, l := range lines {
			if strings.Contains(l, contract) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s diagnostic on the fixture module; seeded violation missed", contract)
		}
	}
	mustStaySilent := []string{"Val", "Good(", "Deferred", "Balanced", "Handoff", "GoodCaller", "Waived", "Grow"}
	for _, l := range lines {
		for _, clean := range mustStaySilent {
			if strings.Contains(l, clean) {
				t.Errorf("diagnostic mentions clean fixture function %s: %s", clean, l)
			}
		}
	}
}

// TestSelfRunClean runs the full analyzer suite over this repository:
// the codebase must satisfy its own contracts.
func TestSelfRunClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-repo lint in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	c, err := lint.Load(root, "./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	for _, d := range lint.Run(c, lint.Analyzers()) {
		t.Errorf("self-run finding: %s", d)
	}
}

// TestDriverExitCodes runs the wavedaglint command itself: exit 0 and
// no output on a clean tree is the make-lint contract, exit 1 with
// file:line diagnostics on the fixture module is the failure contract.
func TestDriverExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping command build in -short mode")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "wavedaglint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/wavedaglint")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building wavedaglint: %v\n%s", err, out)
	}

	fixture := filepath.Join(root, "internal", "lint", "testdata", "src", "fixture")
	cmd := exec.Command(bin, "-C", fixture, "./...")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("on fixture violations: want exit 1, got %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "lockfree.go:") {
		t.Errorf("fixture run output lacks file:line diagnostics:\n%s", out)
	}

	cmd = exec.Command(bin, "-C", root, "./...")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Errorf("self-run: want exit 0, got %v\n%s", err, out)
	}
}
