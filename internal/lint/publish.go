package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// publishAnalyzer enforces the snapshot staleness contract: on any
// type that owns a sync.Mutex and a publishLocked method (the sharded
// engine), every method that takes the mutex and mutates state rooted
// at the receiver must reach publishLocked() — directly, through a
// method that always publishes, or through a deferred call — on every
// return path, so lock-free readers never observe a mutation that was
// not followed by a publication.
//
// Mutation is detected syntactically but transitively: a method is a
// mutator when it assigns through its receiver (or through locals
// derived from it, range variables included) or calls another
// in-module mutator method on a receiver-derived value; the module-
// wide fixpoint makes `g.FailArc(a)` on the aliased topology or
// `rs.sess.FailArc(...)` on an owned session count. Methods annotated
// //wavedag:readonly (logically read-only cache refreshes) are
// excluded. Two documented approximations: a mutating call whose
// error result is immediately checked is trusted to have mutated
// nothing on its error branch (the repo-wide no-mutation-on-error
// convention) — but mutations from earlier calls still demand
// publication there — and dynamic interface calls are invisible (the
// concrete session/digraph chains carry the real mutations).
var publishAnalyzer = &Analyzer{
	Name: "publish",
	Doc:  "mutations under the engine mutex must reach publishLocked() on every return path",
	Run:  runPublish,
}

func runPublish(c *Corpus, report func(pos token.Pos, format string, args ...any)) {
	m := newMutability(c)
	for _, fi := range c.decls {
		if fi.Decl.Body == nil || fi.Decl.Recv == nil {
			continue
		}
		recvT := recvNamed(fi.Obj)
		if recvT == nil || !m.engineTypes[recvT.Obj()] {
			continue
		}
		facts := m.facts[fi]
		if facts == nil || !facts.locks {
			continue
		}
		w := &pubWalker{c: c, m: m, fi: fi, derived: facts.derived, report: report}
		st, terminated := w.stmts(fi.Decl.Body.List, pubState{})
		if !terminated {
			w.checkReturn(fi.Decl.Body.Rbrace, st)
		}
	}
}

// recvNamed returns the (pointer-stripped) named receiver type of a
// method.
func recvNamed(f *types.Func) *types.Named {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// methodFacts is what the fixpoints need to know about one method.
type methodFacts struct {
	derived     map[string]bool // receiver + locals aliased from it
	directWrite bool            // assigns through the receiver
	locks       bool            // takes a sync lock on receiver state
	calls       []*FuncInfo     // in-module concrete calls on derived-rooted receivers
}

// mutability holds the module-wide mutator and publisher fixpoints.
type mutability struct {
	c           *Corpus
	engineTypes map[*types.TypeName]bool
	facts       map[*FuncInfo]*methodFacts
	mutator     map[*FuncInfo]bool
	publisher   map[*FuncInfo]bool
}

func newMutability(c *Corpus) *mutability {
	m := &mutability{
		c:           c,
		engineTypes: map[*types.TypeName]bool{},
		facts:       map[*FuncInfo]*methodFacts{},
		mutator:     map[*FuncInfo]bool{},
		publisher:   map[*FuncInfo]bool{},
	}
	m.findEngineTypes()
	for _, fi := range c.decls {
		if fi.Decl.Recv != nil && fi.Decl.Body != nil {
			m.facts[fi] = collectFacts(c, fi)
		}
	}
	m.fixpointMutators()
	m.fixpointPublishers()
	return m
}

// findEngineTypes records every named struct owning a sync mutex field
// and a publishLocked method.
func (m *mutability) findEngineTypes() {
	for _, p := range m.c.Packages {
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok {
				continue
			}
			st, ok := tn.Type().Underlying().(*types.Struct)
			if !ok {
				continue
			}
			hasMutex := false
			for i := 0; i < st.NumFields(); i++ {
				if ft, ok := st.Field(i).Type().(*types.Named); ok {
					if ft.Obj().Pkg() != nil && ft.Obj().Pkg().Path() == "sync" {
						if fn := ft.Obj().Name(); fn == "Mutex" || fn == "RWMutex" {
							hasMutex = true
						}
					}
				}
			}
			if hasMutex && m.c.funcs[p.ImportPath+"."+name+".publishLocked"] != nil {
				m.engineTypes[tn] = true
			}
		}
	}
}

// collectFacts derives, flow-insensitively, the receiver-aliased local
// set of a method, then records its direct writes, lock acquisitions
// and derived-rooted in-module calls (closure bodies included: the
// engine's fan-out closures run synchronously under the same lock).
func collectFacts(c *Corpus, fi *FuncInfo) *methodFacts {
	f := &methodFacts{derived: map[string]bool{}}
	rn := recvName(fi.Decl)
	if rn == "" || rn == "_" {
		return f
	}
	f.derived[rn] = true
	info := fi.Pkg.Info

	derivedRoot := func(e ast.Expr) bool {
		id := rootIdent(e)
		return id != nil && f.derived[id.Name]
	}
	// Alias propagation to a fixed point (aliases can chain through
	// statements in any syntactic order inside closures).
	for changed := true; changed; {
		changed = false
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				if x.Tok != token.DEFINE {
					return true
				}
				for i, lhs := range x.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || f.derived[id.Name] {
						continue
					}
					if i < len(x.Rhs) && derivedRoot(x.Rhs[i]) {
						f.derived[id.Name] = true
						changed = true
					}
				}
			case *ast.RangeStmt:
				if x.Tok == token.DEFINE && derivedRoot(x.X) {
					for _, e := range []ast.Expr{x.Key, x.Value} {
						if id, ok := e.(*ast.Ident); ok && !f.derived[id.Name] {
							f.derived[id.Name] = true
							changed = true
						}
					}
				}
			}
			return true
		})
	}

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range x.Lhs {
				if isStateWrite(lhs, f.derived) {
					f.directWrite = true
				}
			}
		case *ast.IncDecStmt:
			if isStateWrite(x.X, f.derived) {
				f.directWrite = true
			}
		case *ast.CallExpr:
			if isLockCall(info, x) {
				if sel, ok := unparen(x.Fun).(*ast.SelectorExpr); ok && derivedRoot(sel.X) {
					f.locks = true
				}
				return true
			}
			if sel, ok := unparen(x.Fun).(*ast.SelectorExpr); ok && derivedRoot(sel.X) {
				if fn := callee(info, x); fn != nil && c.inModule(fn) {
					if target := c.FuncFor(fn); target != nil {
						f.calls = append(f.calls, target)
					}
				}
			}
		}
		return true
	})
	return f
}

// isStateWrite reports whether assigning to lhs writes state reachable
// from the derived set: a selector, index or dereference rooted at a
// derived identifier. Rebinding a derived local itself is not a state
// write.
func isStateWrite(lhs ast.Expr, derived map[string]bool) bool {
	if _, ok := lhs.(*ast.Ident); ok {
		return false
	}
	id := rootIdent(lhs)
	return id != nil && derived[id.Name]
}

func (m *mutability) fixpointMutators() {
	for changed := true; changed; {
		changed = false
		for fi, f := range m.facts {
			if m.mutator[fi] || fi.Has(DirReadonly) {
				continue
			}
			if f.directWrite {
				m.mutator[fi] = true
				changed = true
				continue
			}
			for _, callee := range f.calls {
				if m.mutator[callee] {
					m.mutator[fi] = true
					changed = true
					break
				}
			}
		}
	}
}

// fixpointPublishers computes the methods that publish on every return
// path, so calling one of them counts as publication at the caller.
func (m *mutability) fixpointPublishers() {
	for changed := true; changed; {
		changed = false
		for fi, f := range m.facts {
			if m.publisher[fi] || fi.Decl.Body == nil {
				continue
			}
			w := &pubWalker{c: m.c, m: m, fi: fi, derived: f.derived, silent: true}
			// A publisher must end every path published-after-mutation;
			// seed the walk as if a mutation just happened.
			st, terminated := w.stmts(fi.Decl.Body.List, pubState{mutated: true})
			ok := !w.sawUnpublishedReturn
			if !terminated && !(st.published || st.deferred || !st.mutated) {
				ok = false
			}
			if ok {
				m.publisher[fi] = true
				changed = true
			}
		}
	}
}

// isMutatorCall reports whether the call invokes an in-module mutator
// method on a derived-rooted receiver.
func (m *mutability) isMutatorCall(info *types.Info, call *ast.CallExpr, derived map[string]bool) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if id := rootIdent(sel.X); id == nil || !derived[id.Name] {
		return false
	}
	fn := callee(info, call)
	if fn == nil || !m.c.inModule(fn) {
		return false
	}
	target := m.c.FuncFor(fn)
	return target != nil && m.mutator[target]
}

// isPublishCall reports whether the call publishes: publishLocked
// itself, or a method that publishes on all paths, on a derived root.
func (m *mutability) isPublishCall(info *types.Info, call *ast.CallExpr, derived map[string]bool) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if id := rootIdent(sel.X); id == nil || !derived[id.Name] {
		return false
	}
	if sel.Sel.Name == "publishLocked" {
		return true
	}
	fn := callee(info, call)
	if fn == nil {
		return false
	}
	target := m.c.FuncFor(fn)
	return target != nil && m.publisher[target]
}

// ── Path-sensitive walk ────────────────────────────────────────────────

// pubState tracks one control-flow path: has engine state mutated
// since the last publication, and is a publication deferred to run at
// every return from here on.
type pubState struct {
	mutated   bool
	published bool
	deferred  bool
}

func (s pubState) ok() bool { return !s.mutated || s.published || s.deferred }

// errGuard remembers that the previous statement ran a mutating call
// whose error result is in errName; on the `if errName != nil` branch
// the call is trusted to have mutated nothing (earlier mutations still
// count — the guarded state is the pre-call one, not a clean one).
type errGuard struct {
	errName string
	pre     pubState
}

type pubWalker struct {
	c       *Corpus
	m       *mutability
	fi      *FuncInfo
	derived map[string]bool
	report  func(pos token.Pos, format string, args ...any)

	silent               bool // publisher fixpoint probe: record, don't report
	sawUnpublishedReturn bool
}

func (w *pubWalker) checkReturn(pos token.Pos, st pubState) {
	if st.ok() {
		return
	}
	w.sawUnpublishedReturn = true
	if !w.silent {
		w.report(pos, "%s mutates engine state under the mutex but returns without reaching publishLocked()",
			w.fi.Obj.Name())
	}
}

// classify folds the call and write events of an expression subtree
// (closure bodies included — fan-out closures run synchronously) into
// the state, and reports whether the subtree contains a mutating call
// usable as an error-guard source.
func (w *pubWalker) classify(n ast.Node, st pubState) (pubState, bool) {
	if n == nil {
		return st, false
	}
	info := w.fi.Pkg.Info
	sawMutatorCall := false
	ast.Inspect(n, func(node ast.Node) bool {
		switch x := node.(type) {
		case *ast.CallExpr:
			if w.m.isPublishCall(info, x, w.derived) {
				st.mutated = true
				st.published = true
				return true
			}
			if w.m.isMutatorCall(info, x, w.derived) {
				st.mutated = true
				st.published = false
				sawMutatorCall = true
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if isStateWrite(lhs, w.derived) {
					st.mutated = true
					st.published = false
				}
			}
		case *ast.IncDecStmt:
			if isStateWrite(x.X, w.derived) {
				st.mutated = true
				st.published = false
			}
		}
		return true
	})
	return st, sawMutatorCall
}

func (w *pubWalker) stmts(list []ast.Stmt, st pubState) (pubState, bool) {
	var pending *errGuard
	for _, s := range list {
		var terminated bool
		st, terminated, pending = w.stmt(s, st, pending)
		if terminated {
			return st, true
		}
	}
	return st, false
}

// stmt advances the state across one statement. It returns the state
// after the statement, whether the statement always leaves the
// function, and the error-guard available to the next statement.
func (w *pubWalker) stmt(s ast.Stmt, st pubState, pending *errGuard) (pubState, bool, *errGuard) {
	info := w.fi.Pkg.Info
	switch x := s.(type) {
	case *ast.ReturnStmt:
		st, _ = w.classify(x, st)
		w.checkReturn(x.Pos(), st)
		return st, true, nil

	case *ast.ExprStmt:
		if call, ok := unparen(x.X).(*ast.CallExpr); ok {
			if id, isIdent := unparen(call.Fun).(*ast.Ident); isIdent && id.Name == "panic" {
				return st, true, nil
			}
		}
		st, _ = w.classify(x.X, st)
		return st, false, nil

	case *ast.AssignStmt:
		pre := st
		var mutCall bool
		st, mutCall = w.classify(x, st)
		if mutCall && len(x.Rhs) == 1 {
			if errName := lastErrorVar(info, x.Lhs); errName != "" {
				return st, false, &errGuard{errName: errName, pre: pre}
			}
		}
		return st, false, nil

	case *ast.DeferStmt:
		if w.deferPublishes(x.Call) {
			st.deferred = true
		}
		return st, false, nil

	case *ast.IfStmt:
		var guard *errGuard
		if x.Init != nil {
			st, _, guard = w.stmt(x.Init, st, nil)
		} else {
			guard = pending
		}
		thenSt := st
		if guard != nil && condTestsError(x.Cond, guard.errName) {
			// The guarded branch trusts the erroring call to have
			// mutated nothing; it resumes from the pre-call state.
			thenSt = guard.pre
		} else {
			thenSt, _ = w.classify(x.Cond, thenSt)
			st = thenSt
		}
		thenOut, thenTerm := w.stmts(x.Body.List, thenSt)
		elseOut, elseTerm := st, false
		switch e := x.Else.(type) {
		case *ast.BlockStmt:
			elseOut, elseTerm = w.stmts(e.List, st)
		case *ast.IfStmt:
			elseOut, elseTerm, _ = w.stmt(e, st, nil)
		}
		return mergeBranch(thenOut, thenTerm, elseOut, elseTerm)

	case *ast.BlockStmt:
		out, term := w.stmts(x.List, st)
		return out, term, nil

	case *ast.ForStmt:
		if x.Init != nil {
			st, _, _ = w.stmt(x.Init, st, nil)
		}
		st, _ = w.classify(x.Cond, st)
		bodyOut, _ := w.stmts(x.Body.List, st)
		return loopMerge(st, bodyOut), false, nil

	case *ast.RangeStmt:
		st, _ = w.classify(x.X, st)
		bodyOut, _ := w.stmts(x.Body.List, st)
		return loopMerge(st, bodyOut), false, nil

	case *ast.SwitchStmt:
		if x.Init != nil {
			st, _, _ = w.stmt(x.Init, st, nil)
		}
		st, _ = w.classify(x.Tag, st)
		return w.caseClauses(x.Body, st)

	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			st, _, _ = w.stmt(x.Init, st, nil)
		}
		return w.caseClauses(x.Body, st)

	case *ast.LabeledStmt:
		return w.stmt(x.Stmt, st, pending)

	case *ast.BranchStmt:
		// break/continue/goto leave this statement list; treat as
		// terminating so unreachable tails are not merged in.
		return st, true, nil

	case *ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.GoStmt, *ast.SelectStmt:
		out, _ := w.classify(x, st)
		return out, false, nil
	}
	out, _ := w.classify(s, st)
	return out, false, nil
}

// caseClauses merges the bodies of a switch; a missing default keeps
// the fall-through (no clause taken) path alive.
func (w *pubWalker) caseClauses(body *ast.BlockStmt, st pubState) (pubState, bool, *errGuard) {
	outs := []pubState{}
	hasDefault := false
	allTerm := true
	for _, clause := range body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		clauseSt := st
		for _, e := range cc.List {
			clauseSt, _ = w.classify(e, clauseSt)
		}
		out, term := w.stmts(cc.Body, clauseSt)
		if !term {
			outs = append(outs, out)
			allTerm = false
		}
	}
	if !hasDefault {
		outs = append(outs, st)
		allTerm = false
	}
	if allTerm {
		return st, true, nil
	}
	merged := outs[0]
	for _, o := range outs[1:] {
		merged = mergeStates(merged, o)
	}
	return merged, false, nil
}

// deferPublishes reports whether a deferred call guarantees a
// publication at function exit: publishLocked (or a publisher) either
// directly or as an unconditional statement of a deferred closure.
func (w *pubWalker) deferPublishes(call *ast.CallExpr) bool {
	info := w.fi.Pkg.Info
	if w.m.isPublishCall(info, call, w.derived) {
		return true
	}
	lit, ok := unparen(call.Fun).(*ast.FuncLit)
	if !ok {
		return false
	}
	for _, s := range lit.Body.List {
		if es, ok := s.(*ast.ExprStmt); ok {
			if inner, ok := unparen(es.X).(*ast.CallExpr); ok && w.m.isPublishCall(info, inner, w.derived) {
				return true
			}
		}
	}
	return false
}

func mergeBranch(a pubState, aTerm bool, b pubState, bTerm bool) (pubState, bool, *errGuard) {
	switch {
	case aTerm && bTerm:
		return a, true, nil
	case aTerm:
		return b, false, nil
	case bTerm:
		return a, false, nil
	}
	return mergeStates(a, b), false, nil
}

func mergeStates(a, b pubState) pubState {
	return pubState{
		mutated:   a.mutated || b.mutated,
		published: a.published && b.published,
		deferred:  a.deferred && b.deferred,
	}
}

// loopMerge accounts for a loop body that may run zero times.
func loopMerge(pre, body pubState) pubState {
	return pubState{
		mutated:   pre.mutated || body.mutated,
		published: pre.published && body.published,
		deferred:  pre.deferred,
	}
}

// lastErrorVar returns the name of the trailing error-typed assignee
// of an assignment, or "".
func lastErrorVar(info *types.Info, lhs []ast.Expr) string {
	if len(lhs) == 0 {
		return ""
	}
	id, ok := lhs[len(lhs)-1].(*ast.Ident)
	if !ok || id.Name == "_" {
		return ""
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if obj == nil || obj.Type() == nil {
		return ""
	}
	if named, ok := obj.Type().(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
		return id.Name
	}
	return ""
}

// condTestsError matches `<errName> != nil`.
func condTestsError(cond ast.Expr, errName string) bool {
	be, ok := unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.NEQ {
		return false
	}
	x, xOk := unparen(be.X).(*ast.Ident)
	y, yOk := unparen(be.Y).(*ast.Ident)
	if xOk && x.Name == errName && yOk && y.Name == "nil" {
		return true
	}
	return yOk && y.Name == errName && xOk && x.Name == "nil"
}
