package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// errwrapAnalyzer enforces the sentinel-error discipline: package-level
// error sentinels (ErrShed, ErrBudgetExceeded, ErrEngineClosed,
// ErrUnknownSession, ...) must be matched with errors.Is — never with
// == or != (or a switch case), which break the moment a layer wraps
// the error — and an fmt.Errorf that forwards a sentinel must wrap it
// with %w so errors.Is keeps seeing it through the new layer.
var errwrapAnalyzer = &Analyzer{
	Name: "errwrap",
	Doc:  "sentinel errors must be wrapped with %w and tested via errors.Is, never ==/!=",
	Run:  runErrwrap,
}

func runErrwrap(c *Corpus, report func(pos token.Pos, format string, args ...any)) {
	sentinels := map[types.Object]bool{}
	for _, p := range c.Packages {
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			v, ok := scope.Lookup(name).(*types.Var)
			if !ok || !isErrorType(v.Type()) {
				continue
			}
			if strings.HasPrefix(name, "Err") || strings.HasPrefix(name, "err") {
				sentinels[v] = true
			}
		}
	}

	isSentinel := func(info *types.Info, e ast.Expr) (types.Object, bool) {
		var id *ast.Ident
		switch x := unparen(e).(type) {
		case *ast.Ident:
			id = x
		case *ast.SelectorExpr:
			id = x.Sel
		default:
			return nil, false
		}
		obj := info.Uses[id]
		return obj, obj != nil && sentinels[obj]
	}

	for _, p := range c.Packages {
		info := p.Info
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.BinaryExpr:
					if x.Op != token.EQL && x.Op != token.NEQ {
						return true
					}
					for _, side := range []ast.Expr{x.X, x.Y} {
						if obj, ok := isSentinel(info, side); ok {
							report(x.Pos(), "sentinel %s compared with %s; use errors.Is", obj.Name(), x.Op)
						}
					}
				case *ast.SwitchStmt:
					if x.Tag == nil {
						return true
					}
					for _, clause := range x.Body.List {
						cc, ok := clause.(*ast.CaseClause)
						if !ok {
							continue
						}
						for _, e := range cc.List {
							if obj, ok := isSentinel(info, e); ok {
								report(e.Pos(), "sentinel %s matched in a switch case; use errors.Is", obj.Name())
							}
						}
					}
				case *ast.CallExpr:
					if !stdObjCall(info, x, "fmt", "", "Errorf") || len(x.Args) < 2 {
						return true
					}
					format, ok := constStringValue(info, x.Args[0])
					if !ok {
						return true
					}
					wraps := strings.Contains(format, "%w")
					for _, arg := range x.Args[1:] {
						if obj, isS := isSentinel(info, arg); isS && !wraps {
							report(x.Pos(), "fmt.Errorf forwards sentinel %s without %%w; errors.Is will not see it", obj.Name())
						}
					}
				}
				return true
			})
		}
	}
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "error" && n.Obj().Pkg() == nil
}

func constStringValue(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
