// Package registry exercises the strategy-registry checker: two clean
// loop-registered strategies, a strategy with a computed name, a
// duplicate name, and an annotated const block with one orphan.
package registry

import "fmt"

type Strategy interface {
	Name() string
}

var strategies = map[string]Strategy{}

// RegisterStrategy adds s to the registry.
func RegisterStrategy(s Strategy) error {
	if _, dup := strategies[s.Name()]; dup {
		return fmt.Errorf("registry: duplicate %q", s.Name())
	}
	strategies[s.Name()] = s
	return nil
}

// Names of the built-in strategies.
//
//wavedag:registry RegisterStrategy
const (
	NameAlpha   = "alpha"
	NameBeta    = "beta"
	NameMissing = "missing"
)

type alpha struct{}

func (alpha) Name() string { return NameAlpha }

type beta struct{}

func (beta) Name() string { return NameBeta }

var suffix = "x"

type computed struct{}

func (computed) Name() string { return "computed-" + suffix }

type dupAlpha struct{}

func (dupAlpha) Name() string { return NameAlpha }

func init() {
	for _, s := range []Strategy{alpha{}, beta{}} {
		if err := RegisterStrategy(s); err != nil {
			panic(err)
		}
	}
	if err := RegisterStrategy(computed{}); err != nil {
		panic(err)
	}
	if err := RegisterStrategy(dupAlpha{}); err != nil {
		panic(err)
	}
}
