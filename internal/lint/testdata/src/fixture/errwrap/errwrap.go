// Package errwrap exercises the sentinel-wrapping checker: proper
// errors.Is plus %w wrapping, a == comparison, a switch on the error
// value, and an fmt.Errorf that swallows the sentinel chain.
package errwrap

import (
	"errors"
	"fmt"
)

var ErrShed = errors.New("shed")
var ErrClosed = errors.New("closed")

// Good wraps with %w and tests with errors.Is.
func Good(err error) error {
	if errors.Is(err, ErrShed) {
		return fmt.Errorf("request dropped: %w", ErrShed)
	}
	return nil
}

// BadCompare tests a sentinel with ==.
func BadCompare(err error) bool {
	return err == ErrShed
}

// BadSwitch matches a sentinel in a switch case.
func BadSwitch(err error) int {
	switch err {
	case ErrClosed:
		return 1
	}
	return 0
}

// BadWrap forwards a sentinel with %v, breaking the errors.Is chain.
func BadWrap() error {
	return fmt.Errorf("engine: %v", ErrClosed)
}
