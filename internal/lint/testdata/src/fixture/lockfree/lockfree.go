// Package lockfree exercises the wavedag:lockfree contract checker
// with one clean reader, one function violating every rule class, and
// both waiver forms.
package lockfree

import "sync"

type T struct {
	mu  sync.Mutex
	val int
	buf []int
}

// Val is a clean annotated reader.
//
//wavedag:lockfree
func (t *T) Val() int { return t.val }

// helper carries no annotation, so lock-free code may not call it.
func helper() int { return 1 }

// Bad locks, allocates, and calls unannotated in-module code.
//
//wavedag:lockfree
func (t *T) Bad() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := make([]int, 4)
	_ = s
	return helper()
}

// Grow allocates, with the function-level escape hatch.
//
//wavedag:lockfree
//wavedag:allow-alloc (grow path)
func (t *T) Grow() {
	t.buf = append(t.buf, 1)
}

// Waived blocks on a channel, with a line-scoped waiver.
//
//wavedag:lockfree
func Waived(ch chan int) int {
	return <-ch //wavedag:allow-blocking (documented fallback)
}

// Blocks receives from a channel with no waiver.
//
//wavedag:lockfree
func Blocks(ch chan int) int {
	return <-ch
}
