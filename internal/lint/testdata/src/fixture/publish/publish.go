// Package publish exercises the publish-on-mutate contract checker: a
// mutex-guarded engine with a publishLocked method, one method that
// publishes on every path, one that publishes via defer, and one that
// leaks a mutation through an early return.
package publish

import (
	"errors"
	"sync"
)

var errTooBig = errors.New("too big")

type Engine struct {
	mu     sync.Mutex
	seq    int
	snap   int
	closed bool
}

func (e *Engine) publishLocked() { e.snap = e.seq }

// Good mutates and publishes on every return path.
func (e *Engine) Good(n int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.seq += n
	e.publishLocked()
	return nil
}

// Deferred publishes through a defer registered before the mutation.
func (e *Engine) Deferred(n int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	defer e.publishLocked()
	e.seq += n
}

// Bad returns early after mutating, without publishing.
func (e *Engine) Bad(n int) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.seq += n
	if n > 10 {
		return errTooBig
	}
	e.publishLocked()
	return nil
}

// Seq reads under the mutex without mutating; no publish needed.
func (e *Engine) Seq() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.seq
}
