// Package poolpair exercises the pool/reference pairing checker:
// balanced Get/Put, a documented handoff, a leak, an acquire/release
// protocol with one good and one forgetful caller, and a refs-counter
// touch outside the annotated lifecycle functions.
package poolpair

import (
	"sync"
	"sync/atomic"
)

var bufs = sync.Pool{New: func() any { return new([]byte) }}

type snap struct {
	refs atomic.Int32
}

// Balanced gets and puts in the same function.
func Balanced() {
	b := bufs.Get().(*[]byte)
	bufs.Put(b)
}

// Handoff gets without putting; ownership passes to the caller.
//
//wavedag:pool-handoff
func Handoff() *[]byte {
	return bufs.Get().(*[]byte)
}

// Leak gets without putting and without a documented handoff.
func Leak() *[]byte {
	return bufs.Get().(*[]byte)
}

// Acquire hands out a snap the caller must Release.
//
//wavedag:acquire Release
func Acquire() *snap {
	s := &snap{}
	s.incref()
	return s
}

//wavedag:refcount
func (s *snap) incref() { s.refs.Add(1) }

// Release drops the caller's reference.
//
//wavedag:refcount
func (s *snap) Release() { s.refs.Add(-1) }

// GoodCaller releases what it acquires.
func GoodCaller() {
	s := Acquire()
	s.Release()
}

// BadCaller forgets to Release.
func BadCaller() *snap {
	return Acquire()
}

// BadRef bumps the refs counter outside a refcount function.
func BadRef(s *snap) {
	s.refs.Add(1)
}
