package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// poolpairAnalyzer enforces the buffer-recycling discipline of the
// snapshot plane (and of any other sync.Pool user):
//
//   - a function that calls (*sync.Pool).Get must also call
//     (*sync.Pool).Put, unless it carries //wavedag:pool-handoff — the
//     documented ownership transfer (the snapshot publication path
//     hands pooled tables to the published snapshot, which returns
//     them through reclaim when the last reference drops);
//   - a function annotated "//wavedag:acquire <Release>" pins a
//     refcounted resource for its caller: every calling function must
//     invoke the named release method or itself carry
//     //wavedag:pool-handoff (it passes the pin on);
//   - manipulating a reference counter — an Add/Store/Swap/CAS on an
//     atomic field named "refs" — is confined to functions annotated
//     //wavedag:refcount, keeping the acquire/release pairing
//     auditable in one place.
var poolpairAnalyzer = &Analyzer{
	Name: "poolpair",
	Doc:  "sync.Pool Get/Put and snapshot ref acquire/release must pair (or document their handoff)",
	Run:  runPoolpair,
}

func runPoolpair(c *Corpus, report func(pos token.Pos, format string, args ...any)) {
	// Acquire-annotated functions, keyed for call-site resolution.
	type acquireInfo struct {
		release string
	}
	acquires := map[string]acquireInfo{}
	for key, fi := range c.funcs {
		if rel, ok := fi.Directives[DirAcquire]; ok {
			if rel == "" {
				report(fi.Decl.Pos(), "%s: //wavedag:acquire needs the release method name as argument", fi.Obj.Name())
				continue
			}
			acquires[key] = acquireInfo{release: rel}
		}
	}

	for _, fi := range c.decls {
		if fi.Decl.Body == nil {
			continue
		}
		info := fi.Pkg.Info
		name := fi.Obj.Name()
		handoff := fi.Has(DirPoolHandoff)
		refcount := fi.Has(DirRefcount)

		var getPos []token.Pos
		hasPut := false
		// pin site -> release method demanded
		type pinSite struct {
			pos     token.Pos
			release string
			callee  string
		}
		var pins []pinSite
		released := map[string]bool{}

		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if stdObjCall(info, call, "sync", "Pool", "Get") {
				getPos = append(getPos, call.Pos())
			}
			if stdObjCall(info, call, "sync", "Pool", "Put") {
				hasPut = true
			}
			if f := callee(info, call); f != nil {
				if ai, ok := acquires[funcKey(f)]; ok && c.FuncFor(f) != fi {
					pins = append(pins, pinSite{pos: call.Pos(), release: ai.release, callee: f.Name()})
				}
			}
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
				released[sel.Sel.Name] = true
				if !refcount && isRefsCounterOp(info, sel) {
					report(call.Pos(), "%s manipulates a refs counter outside the //wavedag:refcount core", name)
				}
			}
			return true
		})

		if len(getPos) > 0 && !hasPut && !handoff {
			report(getPos[0], "%s calls sync.Pool.Get without a matching Put and no //wavedag:pool-handoff", name)
		}
		if !handoff {
			for _, p := range pins {
				if !released[p.release] {
					report(p.pos, "%s pins a resource via %s but never calls %s (and has no //wavedag:pool-handoff)",
						name, p.callee, p.release)
				}
			}
		}
	}
}

// isRefsCounterOp matches <expr>.refs.{Add,Store,Swap,CompareAndSwap}
// where refs is a sync/atomic integer field.
func isRefsCounterOp(info *types.Info, sel *ast.SelectorExpr) bool {
	switch sel.Sel.Name {
	case "Add", "Store", "Swap", "CompareAndSwap":
	default:
		return false
	}
	inner, ok := unparen(sel.X).(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != "refs" {
		return false
	}
	tv, ok := info.Types[inner]
	if !ok {
		return false
	}
	t := tv.Type
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync/atomic" {
		return false
	}
	switch n.Obj().Name() {
	case "Int32", "Int64", "Uint32", "Uint64":
		return true
	}
	return false
}
