package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockfreeAnalyzer enforces the snapshot read-path contract: a function
// annotated //wavedag:lockfree must answer from immutable published
// state — it must not acquire a lock (or otherwise block: channel
// operations, WaitGroup.Wait, select), must not reach an in-module
// function that is not itself annotated lock-free (transitive
// closure), and must not contain allocating constructs (make/new,
// append, slice/map composite literals, address-taken composite
// literals, closures). Plain value struct literals are permitted: they
// stay on the stack. Calls into the standard library are trusted
// (sync lock primitives excepted) — error construction on failure
// paths is the intended use. Escape hatches: //wavedag:allow-alloc on
// the function waives the allocation checks (grow paths, translation
// buffers); //wavedag:allow-blocking trailing a line waives the
// blocking/callee checks for that line (documented fallbacks to a
// mutex-serialised strong read).
var lockfreeAnalyzer = &Analyzer{
	Name: "lockfree",
	Doc:  "functions marked //wavedag:lockfree must not block, allocate, or call unannotated in-module code",
	Run:  runLockfree,
}

func runLockfree(c *Corpus, report func(pos token.Pos, format string, args ...any)) {
	for _, fi := range c.decls {
		if fi.Has(DirLockfree) && fi.Decl.Body != nil {
			checkLockfreeBody(c, fi, report)
		}
	}
}

func checkLockfreeBody(c *Corpus, fi *FuncInfo, report func(pos token.Pos, format string, args ...any)) {
	allowAlloc := fi.Has(DirAllowAlloc)
	info := fi.Pkg.Info
	name := fi.Obj.Name()

	blockingWaived := func(pos token.Pos) bool { return c.lineWaiver(pos, DirAllowBlocking) }

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			checkLockfreeCall(c, info, name, x, allowAlloc, blockingWaived, report)
		case *ast.CompositeLit:
			if allowAlloc {
				return true
			}
			if tv, ok := info.Types[x]; ok {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					report(x.Pos(), "%s is lock-free but builds a %s literal (heap allocation)", name, tv.Type.Underlying().String())
				}
			}
		case *ast.UnaryExpr:
			switch x.Op {
			case token.AND:
				if _, isLit := unparen(x.X).(*ast.CompositeLit); isLit && !allowAlloc {
					report(x.Pos(), "%s is lock-free but takes the address of a composite literal (heap allocation)", name)
				}
			case token.ARROW:
				if !blockingWaived(x.Pos()) {
					report(x.Pos(), "%s is lock-free but receives from a channel", name)
				}
			}
		case *ast.FuncLit:
			if !allowAlloc {
				report(x.Pos(), "%s is lock-free but declares a closure (heap allocation)", name)
			}
			return false // do not descend: the closure runs elsewhere
		case *ast.SendStmt:
			if !blockingWaived(x.Pos()) {
				report(x.Pos(), "%s is lock-free but sends on a channel", name)
			}
		case *ast.SelectStmt:
			if !blockingWaived(x.Pos()) {
				report(x.Pos(), "%s is lock-free but contains a select statement", name)
			}
		case *ast.GoStmt:
			report(x.Pos(), "%s is lock-free but starts a goroutine", name)
		}
		return true
	})
}

func checkLockfreeCall(c *Corpus, info *types.Info, name string, call *ast.CallExpr, allowAlloc bool, waived func(token.Pos) bool, report func(pos token.Pos, format string, args ...any)) {
	if isConversion(info, call) {
		return
	}
	switch builtinName(info, call) {
	case "":
		// not a builtin; fall through to callee checks
	case "make", "new":
		if !allowAlloc {
			report(call.Pos(), "%s is lock-free but calls %s (heap allocation)", name, builtinName(info, call))
		}
		return
	case "append":
		if !allowAlloc {
			report(call.Pos(), "%s is lock-free but calls append (potential growth allocation)", name)
		}
		return
	default:
		return // len, cap, copy, panic, clear, ... are fine
	}

	if isLockCall(info, call) {
		if !waived(call.Pos()) {
			report(call.Pos(), "%s is lock-free but acquires a sync lock primitive", name)
		}
		return
	}
	if isInterfaceCall(info, call) {
		if !waived(call.Pos()) {
			report(call.Pos(), "%s is lock-free but makes a dynamic interface call (callee unverifiable)", name)
		}
		return
	}
	f := callee(info, call)
	if f == nil {
		// Calling a func-typed value: the target is unverifiable.
		if !waived(call.Pos()) {
			report(call.Pos(), "%s is lock-free but calls through a function value (callee unverifiable)", name)
		}
		return
	}
	if !c.inModule(f) {
		return // standard library (non-lock) calls are trusted
	}
	target := c.FuncFor(f)
	if target == nil || !target.Has(DirLockfree) {
		if !waived(call.Pos()) {
			report(call.Pos(), "%s is lock-free but calls in-module %s, which is not marked //wavedag:lockfree", name, f.Name())
		}
	}
}
