package route

import (
	"errors"
	"testing"

	"wavedag/internal/digraph"
	"wavedag/internal/gen"
	"wavedag/internal/load"
)

// TestRouterMatchesFreeFunctions checks that the state-reusing Router
// produces exactly the routes of the one-shot free functions across a
// batch (the free functions are themselves thin Router wrappers, so this
// guards the epoch-stamp reuse between consecutive searches).
func TestRouterMatchesFreeFunctions(t *testing.T) {
	g, err := gen.RandomNoInternalCycleDAG(25, 5, 5, 0.25, 51)
	if err != nil {
		t.Fatal(err)
	}
	reqs := AllToAll(g)
	if len(reqs) == 0 {
		t.Fatal("no requests")
	}
	r := NewRouter(g)

	// Shortest: route the whole batch twice through one router and once
	// per-request through fresh state; all must agree arc-for-arc.
	batch1, err := r.ShortestPaths(reqs)
	if err != nil {
		t.Fatal(err)
	}
	batch2, err := r.ShortestPaths(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, req := range reqs {
		fresh, err := ShortestPath(g, req.Src, req.Dst)
		if err != nil {
			t.Fatal(err)
		}
		if !batch1[i].Equal(fresh) || !batch2[i].Equal(fresh) {
			t.Fatalf("request %d (%d->%d): router route %v / %v, fresh %v",
				i, req.Src, req.Dst, batch1[i], batch2[i], fresh)
		}
	}

	// Min-load: deterministic across runs and between router and wrapper.
	a, err := r.MinLoadSequential(reqs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MinLoadSequential(g, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if !a[i].Equal(b[i]) {
			t.Fatalf("min-load request %d: router %v, wrapper %v", i, a[i], b[i])
		}
	}
	if load.Pi(g, a) != load.Pi(g, b) {
		t.Fatalf("min-load π mismatch: %d vs %d", load.Pi(g, a), load.Pi(g, b))
	}
}

// TestRouterAllToAllMatchesReachability cross-checks the router's
// epoch-stamped reachability sweeps against the straightforward BFS.
func TestRouterAllToAllMatchesReachability(t *testing.T) {
	g := gen.RandomDAG(30, 70, 61)
	reqs := NewRouter(g).AllToAll()
	seen := map[[2]digraph.Vertex]bool{}
	for _, req := range reqs {
		seen[[2]digraph.Vertex{req.Src, req.Dst}] = true
	}
	n := g.NumVertices()
	count := 0
	for u := 0; u < n; u++ {
		reach := reachableSet(g, digraph.Vertex(u))
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			if reach[v] {
				count++
				if !seen[[2]digraph.Vertex{digraph.Vertex(u), digraph.Vertex(v)}] {
					t.Fatalf("missing request %d->%d", u, v)
				}
			}
		}
	}
	if count != len(reqs) {
		t.Fatalf("router produced %d requests, reachability says %d", len(reqs), count)
	}
}

// TestRouterMulticastMatchesWrapper checks the Router multicast against
// the free function and the BFS-tree property.
func TestRouterMulticastMatchesWrapper(t *testing.T) {
	g := gen.RandomDAG(25, 60, 71)
	origin := digraph.Vertex(0)
	var dests []digraph.Vertex
	reach := reachableSet(g, origin)
	for v := 1; v < g.NumVertices(); v++ {
		if reach[v] {
			dests = append(dests, digraph.Vertex(v))
		}
	}
	if len(dests) == 0 {
		t.Skip("origin reaches nothing in this random graph")
	}
	r := NewRouter(g)
	a, err := r.Multicast(origin, dests)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Multicast(g, origin, dests)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dests {
		if !a[i].Equal(b[i]) {
			t.Fatalf("dest %d: router %v, wrapper %v", dests[i], a[i], b[i])
		}
		if a[i].First() != origin || a[i].Last() != dests[i] {
			t.Fatalf("dest %d: route %v has wrong endpoints", dests[i], a[i])
		}
	}
}

// TestRouterCrossComponentO1 pins the O(1) infeasibility rejection:
// after one exhausted search has labeled the components, a
// cross-component request must fail with ErrNoRoute without starting
// another search — the epoch stamp (bumped by every BFS/Dijkstra
// visit) is the expansion probe, and allocs/op bound the whole call to
// the error value itself.
func TestRouterCrossComponentO1(t *testing.T) {
	// Two disjoint directed paths: 0->1->2 and 3->4->5.
	g := digraph.New(6)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 2)
	g.MustAddArc(3, 4)
	g.MustAddArc(4, 5)
	r := NewRouter(g)

	// Warm the router so lazily allocated state is in place.
	if _, err := r.ShortestPath(0, 2); err != nil {
		t.Fatal(err)
	}
	tr := load.NewTracker(g)
	if _, err := r.MinLoadPath(Request{0, 2}, tr); err != nil {
		t.Fatal(err)
	}
	// The first infeasible request pays one exhausted search and labels
	// the components; everything after it must be O(1).
	if _, err := r.ShortestPath(0, 5); err == nil {
		t.Fatal("cross-component pair routed")
	}

	check := func(name string, run func() error) {
		t.Helper()
		before := r.epoch
		err := run()
		var noRoute ErrNoRoute
		if !errors.As(err, &noRoute) {
			t.Fatalf("%s: got %v, want ErrNoRoute", name, err)
		}
		if r.epoch != before {
			t.Fatalf("%s: search expansion detected (epoch %d -> %d)", name, before, r.epoch)
		}
		allocs := testing.AllocsPerRun(100, func() { _ = run() })
		if allocs > 1 {
			t.Fatalf("%s: %v allocs/op on the rejection path, want <= 1 (the error)", name, allocs)
		}
	}
	check("ShortestPath", func() error {
		_, err := r.ShortestPath(0, 5)
		return err
	})
	check("MinLoadPath", func() error {
		_, err := r.MinLoadPath(Request{0, 5}, tr)
		return err
	})

	// Routable requests still route after rejected ones.
	if _, err := r.ShortestPath(3, 5); err != nil {
		t.Fatal(err)
	}
}

// TestRouterCrossComponentAfterGrowth checks the O(1) rejection is a
// construction-time snapshot with a safe fallback: arcs added after
// NewRouter can merge components, and the router must then find the new
// route by search instead of trusting the stale labels.
func TestRouterCrossComponentAfterGrowth(t *testing.T) {
	g := digraph.New(4)
	g.MustAddArc(0, 1)
	g.MustAddArc(2, 3)
	r := NewRouter(g)
	if _, err := r.ShortestPath(0, 3); err == nil {
		t.Fatal("disconnected pair routed")
	}
	g.MustAddArc(1, 2) // bridges the components after construction
	p, err := r.ShortestPath(0, 3)
	if err != nil {
		t.Fatalf("bridged pair not routed past the stale labels: %v", err)
	}
	if p.NumArcs() != 3 {
		t.Fatalf("route %v, want 0->1->2->3", p)
	}
	tr := load.NewTracker(g)
	if _, err := r.MinLoadPath(Request{0, 3}, tr); err != nil {
		t.Fatalf("min-load bridged pair not routed: %v", err)
	}

	// Vertex growth: an unreachable new vertex must produce a clean
	// ErrNoRoute — the rejection guard must not index past the label
	// snapshot. (The Dijkstra scratch arrays are probed through a
	// router that has not warmed them yet: their sizing at first use is
	// a pre-existing preallocation contract, not the guard's.)
	r2 := NewRouter(g)
	v := g.AddVertex("")
	g.MustAddArc(v, 0)
	if _, err := r.ShortestPath(0, v); err == nil {
		t.Fatal("unreachable grown vertex routed")
	}
	if _, err := r2.MinLoadPath(Request{0, v}, load.NewTracker(g)); err == nil {
		t.Fatal("min-load unreachable grown vertex routed")
	}
}
