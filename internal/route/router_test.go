package route

import (
	"testing"

	"wavedag/internal/digraph"
	"wavedag/internal/gen"
	"wavedag/internal/load"
)

// TestRouterMatchesFreeFunctions checks that the state-reusing Router
// produces exactly the routes of the one-shot free functions across a
// batch (the free functions are themselves thin Router wrappers, so this
// guards the epoch-stamp reuse between consecutive searches).
func TestRouterMatchesFreeFunctions(t *testing.T) {
	g, err := gen.RandomNoInternalCycleDAG(25, 5, 5, 0.25, 51)
	if err != nil {
		t.Fatal(err)
	}
	reqs := AllToAll(g)
	if len(reqs) == 0 {
		t.Fatal("no requests")
	}
	r := NewRouter(g)

	// Shortest: route the whole batch twice through one router and once
	// per-request through fresh state; all must agree arc-for-arc.
	batch1, err := r.ShortestPaths(reqs)
	if err != nil {
		t.Fatal(err)
	}
	batch2, err := r.ShortestPaths(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, req := range reqs {
		fresh, err := ShortestPath(g, req.Src, req.Dst)
		if err != nil {
			t.Fatal(err)
		}
		if !batch1[i].Equal(fresh) || !batch2[i].Equal(fresh) {
			t.Fatalf("request %d (%d->%d): router route %v / %v, fresh %v",
				i, req.Src, req.Dst, batch1[i], batch2[i], fresh)
		}
	}

	// Min-load: deterministic across runs and between router and wrapper.
	a, err := r.MinLoadSequential(reqs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MinLoadSequential(g, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if !a[i].Equal(b[i]) {
			t.Fatalf("min-load request %d: router %v, wrapper %v", i, a[i], b[i])
		}
	}
	if load.Pi(g, a) != load.Pi(g, b) {
		t.Fatalf("min-load π mismatch: %d vs %d", load.Pi(g, a), load.Pi(g, b))
	}
}

// TestRouterAllToAllMatchesReachability cross-checks the router's
// epoch-stamped reachability sweeps against the straightforward BFS.
func TestRouterAllToAllMatchesReachability(t *testing.T) {
	g := gen.RandomDAG(30, 70, 61)
	reqs := NewRouter(g).AllToAll()
	seen := map[[2]digraph.Vertex]bool{}
	for _, req := range reqs {
		seen[[2]digraph.Vertex{req.Src, req.Dst}] = true
	}
	n := g.NumVertices()
	count := 0
	for u := 0; u < n; u++ {
		reach := reachableSet(g, digraph.Vertex(u))
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			if reach[v] {
				count++
				if !seen[[2]digraph.Vertex{digraph.Vertex(u), digraph.Vertex(v)}] {
					t.Fatalf("missing request %d->%d", u, v)
				}
			}
		}
	}
	if count != len(reqs) {
		t.Fatalf("router produced %d requests, reachability says %d", len(reqs), count)
	}
}

// TestRouterMulticastMatchesWrapper checks the Router multicast against
// the free function and the BFS-tree property.
func TestRouterMulticastMatchesWrapper(t *testing.T) {
	g := gen.RandomDAG(25, 60, 71)
	origin := digraph.Vertex(0)
	var dests []digraph.Vertex
	reach := reachableSet(g, origin)
	for v := 1; v < g.NumVertices(); v++ {
		if reach[v] {
			dests = append(dests, digraph.Vertex(v))
		}
	}
	if len(dests) == 0 {
		t.Skip("origin reaches nothing in this random graph")
	}
	r := NewRouter(g)
	a, err := r.Multicast(origin, dests)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Multicast(g, origin, dests)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dests {
		if !a[i].Equal(b[i]) {
			t.Fatalf("dest %d: router %v, wrapper %v", dests[i], a[i], b[i])
		}
		if a[i].First() != origin || a[i].Last() != dests[i] {
			t.Fatalf("dest %d: route %v has wrong endpoints", dests[i], a[i])
		}
	}
}
