// Package route solves the routing half of the RWA (Routing and
// Wavelength Assignment) problem: turning requests (ordered vertex pairs)
// into dipaths. The paper's results take the dipaths as given; this
// package supplies the standard ways of producing them — shortest
// dipaths, load-balancing sequential routing, unique routing on UPP-DAGs,
// and multicast routing (one origin, many destinations), for which the
// literature cited by the paper ([2] Beauquier–Hell–Pérennes) shows
// w = π always holds.
package route

import (
	"fmt"

	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/upp"
)

// Request is a connection demand from Src to Dst.
type Request struct {
	Src, Dst digraph.Vertex
}

// ErrNoRoute is returned when a request cannot be satisfied.
type ErrNoRoute struct{ Req Request }

func (e ErrNoRoute) Error() string {
	return fmt.Sprintf("route: no dipath from %d to %d", e.Req.Src, e.Req.Dst)
}

// ShortestPath returns a dipath from src to dst minimising the number of
// arcs (BFS). Among equally short routes the one exploring smaller arc
// identifiers first wins, so results are deterministic.
func ShortestPath(g *digraph.Digraph, src, dst digraph.Vertex) (*dipath.Path, error) {
	n := g.NumVertices()
	if src < 0 || dst < 0 || int(src) >= n || int(dst) >= n {
		return nil, fmt.Errorf("route: vertex out of range")
	}
	if src == dst {
		return dipath.FromVertices(g, src)
	}
	prevArc := make([]digraph.ArcID, n)
	for i := range prevArc {
		prevArc[i] = -1
	}
	queue := []digraph.Vertex{src}
	visited := make([]bool, n)
	visited[src] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range g.OutArcs(v) {
			h := g.Arc(a).Head
			if visited[h] {
				continue
			}
			visited[h] = true
			prevArc[h] = a
			if h == dst {
				return assemble(g, src, dst, prevArc)
			}
			queue = append(queue, h)
		}
	}
	return nil, ErrNoRoute{Request{src, dst}}
}

func assemble(g *digraph.Digraph, src, dst digraph.Vertex, prevArc []digraph.ArcID) (*dipath.Path, error) {
	var rev []digraph.ArcID
	for v := dst; v != src; {
		a := prevArc[v]
		if a < 0 {
			return nil, fmt.Errorf("route: internal error: broken predecessor chain")
		}
		rev = append(rev, a)
		v = g.Arc(a).Tail
	}
	arcs := make([]digraph.ArcID, len(rev))
	for i := range rev {
		arcs[i] = rev[len(rev)-1-i]
	}
	return dipath.FromArcs(g, arcs...)
}

// ShortestPaths routes every request by shortest dipath; it fails on the
// first unroutable request.
func ShortestPaths(g *digraph.Digraph, reqs []Request) (dipath.Family, error) {
	fam := make(dipath.Family, 0, len(reqs))
	for _, r := range reqs {
		p, err := ShortestPath(g, r.Src, r.Dst)
		if err != nil {
			return nil, err
		}
		fam = append(fam, p)
	}
	return fam, nil
}

// MinLoadSequential routes the requests one by one, each time choosing a
// dipath minimising the resulting maximum arc load (ties broken by hop
// count, then by deterministic arc order). It is the classic online
// load-balancing heuristic for the routing phase of RWA.
func MinLoadSequential(g *digraph.Digraph, reqs []Request) (dipath.Family, error) {
	loads := make([]int, g.NumArcs())
	fam := make(dipath.Family, 0, len(reqs))
	for _, r := range reqs {
		p, err := bottleneckPath(g, r, loads)
		if err != nil {
			return nil, err
		}
		for _, a := range p.Arcs() {
			loads[a]++
		}
		fam = append(fam, p)
	}
	return fam, nil
}

// bottleneckPath finds a dipath src->dst minimising (max load along the
// path, then hops) via lexicographic Dijkstra on a DAG-sized graph.
func bottleneckPath(g *digraph.Digraph, r Request, loads []int) (*dipath.Path, error) {
	n := g.NumVertices()
	if r.Src < 0 || r.Dst < 0 || int(r.Src) >= n || int(r.Dst) >= n {
		return nil, fmt.Errorf("route: vertex out of range")
	}
	if r.Src == r.Dst {
		return dipath.FromVertices(g, r.Src)
	}
	const inf = int(^uint(0) >> 1)
	bestLoad := make([]int, n)
	bestHops := make([]int, n)
	prevArc := make([]digraph.ArcID, n)
	done := make([]bool, n)
	for v := range bestLoad {
		bestLoad[v], bestHops[v], prevArc[v] = inf, inf, -1
	}
	bestLoad[r.Src], bestHops[r.Src] = 0, 0
	for {
		// Extract the unfinished vertex with the lexicographically
		// smallest (load, hops); linear scan is fine at these sizes.
		u := digraph.Vertex(-1)
		for v := 0; v < n; v++ {
			if done[v] || bestLoad[v] == inf {
				continue
			}
			if u < 0 || bestLoad[v] < bestLoad[u] ||
				(bestLoad[v] == bestLoad[u] && bestHops[v] < bestHops[u]) {
				u = digraph.Vertex(v)
			}
		}
		if u < 0 {
			return nil, ErrNoRoute{r}
		}
		if u == r.Dst {
			return assemble(g, r.Src, r.Dst, prevArc)
		}
		done[u] = true
		for _, a := range g.OutArcs(u) {
			h := g.Arc(a).Head
			if done[h] {
				continue
			}
			nl := bestLoad[u]
			if loads[a]+1 > nl {
				nl = loads[a] + 1
			}
			nh := bestHops[u] + 1
			if nl < bestLoad[h] || (nl == bestLoad[h] && nh < bestHops[h]) {
				bestLoad[h], bestHops[h], prevArc[h] = nl, nh, a
			}
		}
	}
}

// UPPRoutes routes the requests on an UPP-DAG, where each request has at
// most one possible dipath (so routing and wavelength assignment
// decouple, as the paper's introduction notes).
func UPPRoutes(g *digraph.Digraph, reqs []Request) (dipath.Family, error) {
	r, err := upp.NewRouter(g)
	if err != nil {
		return nil, err
	}
	fam := make(dipath.Family, 0, len(reqs))
	for _, req := range reqs {
		p, ok := r.Route(req.Src, req.Dst)
		if !ok {
			return nil, ErrNoRoute{req}
		}
		fam = append(fam, p)
	}
	return fam, nil
}

// Multicast routes a one-to-many instance: dipaths from origin to every
// destination along a BFS tree, so the routes form an out-arborescence.
// Arborescences have no cycles at all, hence no internal cycles, and
// Theorem 1 applies: the multicast instance always satisfies w = π,
// matching the known multicast result the paper cites ([2]).
func Multicast(g *digraph.Digraph, origin digraph.Vertex, dests []digraph.Vertex) (dipath.Family, error) {
	n := g.NumVertices()
	if origin < 0 || int(origin) >= n {
		return nil, fmt.Errorf("route: origin out of range")
	}
	prevArc := make([]digraph.ArcID, n)
	for i := range prevArc {
		prevArc[i] = -1
	}
	visited := make([]bool, n)
	visited[origin] = true
	queue := []digraph.Vertex{origin}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range g.OutArcs(v) {
			h := g.Arc(a).Head
			if !visited[h] {
				visited[h] = true
				prevArc[h] = a
				queue = append(queue, h)
			}
		}
	}
	fam := make(dipath.Family, 0, len(dests))
	for _, d := range dests {
		if d < 0 || int(d) >= n || (!visited[d] && d != origin) {
			return nil, ErrNoRoute{Request{origin, d}}
		}
		p, err := assemble(g, origin, d, prevArc)
		if d == origin {
			p, err = dipath.FromVertices(g, origin)
		}
		if err != nil {
			return nil, err
		}
		fam = append(fam, p)
	}
	return fam, nil
}

// AllToAll returns the request list {(u,v) : u != v, v reachable from u}
// for the all-to-all instance discussed in the paper's conclusion.
func AllToAll(g *digraph.Digraph) []Request {
	var reqs []Request
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		reach := reachableSet(g, digraph.Vertex(u))
		for v := 0; v < n; v++ {
			if u != v && reach[v] {
				reqs = append(reqs, Request{digraph.Vertex(u), digraph.Vertex(v)})
			}
		}
	}
	return reqs
}

func reachableSet(g *digraph.Digraph, src digraph.Vertex) []bool {
	seen := make([]bool, g.NumVertices())
	seen[src] = true
	queue := []digraph.Vertex{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range g.OutArcs(v) {
			h := g.Arc(a).Head
			if !seen[h] {
				seen[h] = true
				queue = append(queue, h)
			}
		}
	}
	return seen
}
