// Package route solves the routing half of the RWA (Routing and
// Wavelength Assignment) problem: turning requests (ordered vertex pairs)
// into dipaths. The paper's results take the dipaths as given; this
// package supplies the standard ways of producing them — shortest
// dipaths, load-balancing sequential routing, unique routing on UPP-DAGs,
// and multicast routing (one origin, many destinations), for which the
// literature cited by the paper ([2] Beauquier–Hell–Pérennes) shows
// w = π always holds.
//
// Batch workloads should construct a Router, which preallocates and
// reuses all search state across requests; the free functions below are
// convenience wrappers that build a throwaway Router per call.
package route

import (
	"fmt"

	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/upp"
)

// Request is a connection demand from Src to Dst.
type Request struct {
	Src, Dst digraph.Vertex
}

// ErrNoRoute is returned when a request cannot be satisfied.
type ErrNoRoute struct{ Req Request }

func (e ErrNoRoute) Error() string {
	return fmt.Sprintf("route: no dipath from %d to %d", e.Req.Src, e.Req.Dst)
}

// ShortestPath returns a dipath from src to dst minimising the number of
// arcs (BFS). Among equally short routes the one exploring smaller arc
// identifiers first wins, so results are deterministic.
func ShortestPath(g *digraph.Digraph, src, dst digraph.Vertex) (*dipath.Path, error) {
	return NewRouter(g).ShortestPath(src, dst)
}

// ShortestPaths routes every request by shortest dipath; it fails on the
// first unroutable request.
func ShortestPaths(g *digraph.Digraph, reqs []Request) (dipath.Family, error) {
	return NewRouter(g).ShortestPaths(reqs)
}

// MinLoadSequential routes the requests one by one, each time choosing a
// dipath minimising the resulting maximum arc load (ties broken by hop
// count, then by deterministic arc order). It is the classic online
// load-balancing heuristic for the routing phase of RWA.
func MinLoadSequential(g *digraph.Digraph, reqs []Request) (dipath.Family, error) {
	return NewRouter(g).MinLoadSequential(reqs)
}

// UPPRoutes routes the requests on an UPP-DAG, where each request has at
// most one possible dipath (so routing and wavelength assignment
// decouple, as the paper's introduction notes).
func UPPRoutes(g *digraph.Digraph, reqs []Request) (dipath.Family, error) {
	r, err := upp.NewRouter(g)
	if err != nil {
		return nil, err
	}
	fam := make(dipath.Family, 0, len(reqs))
	for _, req := range reqs {
		p, ok := r.Route(req.Src, req.Dst)
		if !ok {
			return nil, ErrNoRoute{req}
		}
		fam = append(fam, p)
	}
	return fam, nil
}

// Multicast routes a one-to-many instance: dipaths from origin to every
// destination along a BFS tree, so the routes form an out-arborescence.
// Arborescences have no cycles at all, hence no internal cycles, and
// Theorem 1 applies: the multicast instance always satisfies w = π,
// matching the known multicast result the paper cites ([2]).
func Multicast(g *digraph.Digraph, origin digraph.Vertex, dests []digraph.Vertex) (dipath.Family, error) {
	return NewRouter(g).Multicast(origin, dests)
}

// AllToAll returns the request list {(u,v) : u != v, v reachable from u}
// for the all-to-all instance discussed in the paper's conclusion.
func AllToAll(g *digraph.Digraph) []Request {
	return NewRouter(g).AllToAll()
}

// reachableSet returns the set of vertices reachable from src.
func reachableSet(g *digraph.Digraph, src digraph.Vertex) []bool {
	seen := make([]bool, g.NumVertices())
	seen[src] = true
	queue := make([]digraph.Vertex, 1, g.NumVertices())
	queue[0] = src
	for head := 0; head < len(queue); head++ {
		for _, a := range g.OutArcs(queue[head]) {
			if g.ArcFailed(a) {
				continue
			}
			h := g.Arc(a).Head
			if !seen[h] {
				seen[h] = true
				queue = append(queue, h)
			}
		}
	}
	return seen
}
