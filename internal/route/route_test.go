package route

import (
	"errors"
	"testing"

	"wavedag/internal/core"
	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/gen"
	"wavedag/internal/load"
)

// grid builds a small layered DAG with two parallel routes of different
// lengths between 0 and 4: 0->1->4 (short) and 0->2->3->4 (long).
func twoRoutes() *digraph.Digraph {
	g := digraph.New(5)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 4)
	g.MustAddArc(0, 2)
	g.MustAddArc(2, 3)
	g.MustAddArc(3, 4)
	return g
}

func TestShortestPath(t *testing.T) {
	g := twoRoutes()
	p, err := ShortestPath(g, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumArcs() != 2 {
		t.Fatalf("shortest path has %d arcs, want 2", p.NumArcs())
	}
	if err := p.Validate(g); err != nil {
		t.Fatal(err)
	}
	self, err := ShortestPath(g, 3, 3)
	if err != nil || self.NumArcs() != 0 {
		t.Fatalf("self route = %v, %v", self, err)
	}
}

func TestShortestPathErrors(t *testing.T) {
	g := twoRoutes()
	if _, err := ShortestPath(g, 4, 0); err == nil {
		t.Fatal("backwards route found")
	}
	var nr ErrNoRoute
	_, err := ShortestPath(g, 1, 2)
	if !errors.As(err, &nr) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
	if nr.Error() == "" {
		t.Fatal("empty error text")
	}
	if _, err := ShortestPath(g, -1, 2); err == nil {
		t.Fatal("invalid src accepted")
	}
	if _, err := ShortestPath(g, 0, 9); err == nil {
		t.Fatal("invalid dst accepted")
	}
}

func TestShortestPaths(t *testing.T) {
	g := twoRoutes()
	fam, err := ShortestPaths(g, []Request{{0, 4}, {0, 3}, {2, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fam) != 3 {
		t.Fatalf("family size %d", len(fam))
	}
	if err := fam.Validate(g); err != nil {
		t.Fatal(err)
	}
	if _, err := ShortestPaths(g, []Request{{0, 4}, {4, 0}}); err == nil {
		t.Fatal("unroutable request accepted")
	}
}

func TestMinLoadSequentialBalances(t *testing.T) {
	g := twoRoutes()
	// Two identical requests: shortest routing stacks both on 0->1->4
	// (load 2); min-load routing must split them (load 1).
	reqs := []Request{{0, 4}, {0, 4}}
	short, err := ShortestPaths(g, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if pi := load.Pi(g, short); pi != 2 {
		t.Fatalf("shortest routing load = %d, want 2", pi)
	}
	balanced, err := MinLoadSequential(g, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if pi := load.Pi(g, balanced); pi != 1 {
		t.Fatalf("min-load routing load = %d, want 1", pi)
	}
	if err := balanced.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestMinLoadSequentialErrors(t *testing.T) {
	g := twoRoutes()
	if _, err := MinLoadSequential(g, []Request{{1, 2}}); err == nil {
		t.Fatal("unroutable request accepted")
	}
	if _, err := MinLoadSequential(g, []Request{{-1, 0}}); err == nil {
		t.Fatal("invalid vertex accepted")
	}
	self, err := MinLoadSequential(g, []Request{{2, 2}})
	if err != nil || self[0].NumArcs() != 0 {
		t.Fatal("self request mishandled")
	}
}

func TestUPPRoutes(t *testing.T) {
	g, _, err := gen.InternalCycleGadget(3)
	if err != nil {
		t.Fatal(err)
	}
	// a1 (vertex 0) to d1 (vertex 3) is unique.
	fam, err := UPPRoutes(g, []Request{{0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fam) != 1 || fam[0].NumArcs() != 3 {
		t.Fatalf("route = %v", fam[0])
	}
	if _, err := UPPRoutes(g, []Request{{3, 0}}); err == nil {
		t.Fatal("unroutable request accepted")
	}
	// Non-UPP topology rejected.
	d := digraph.New(4)
	d.MustAddArc(0, 1)
	d.MustAddArc(0, 2)
	d.MustAddArc(1, 3)
	d.MustAddArc(2, 3)
	if _, err := UPPRoutes(d, []Request{{0, 3}}); err == nil {
		t.Fatal("non-UPP topology accepted")
	}
}

func TestMulticastIsOptimal(t *testing.T) {
	// Multicast on any DAG: routes form an out-tree, so w = π by
	// Theorem 1 (reproducing the multicast equality of [2]).
	g := gen.RandomDAG(30, 80, 17)
	origin := digraph.Vertex(0)
	var dests []digraph.Vertex
	for v := 1; v < 30; v++ {
		if reachableSet(g, origin)[v] {
			dests = append(dests, digraph.Vertex(v))
		}
	}
	if len(dests) < 3 {
		t.Skip("random graph too sparse for a meaningful multicast")
	}
	fam, err := Multicast(g, origin, dests)
	if err != nil {
		t.Fatal(err)
	}
	if err := fam.Validate(g); err != nil {
		t.Fatal(err)
	}
	// The multicast routes live on a BFS out-tree. Restrict the topology
	// to the arcs actually used: the restriction has no cycle at all, so
	// Theorem 1 applies and gives exactly π wavelengths.
	tree := digraph.New(g.NumVertices())
	seen := map[[2]digraph.Vertex]bool{}
	for _, p := range fam {
		vs := p.Vertices()
		for i := 0; i+1 < len(vs); i++ {
			key := [2]digraph.Vertex{vs[i], vs[i+1]}
			if !seen[key] {
				seen[key] = true
				tree.MustAddArc(vs[i], vs[i+1])
			}
		}
	}
	treeFam := make(dipath.Family, len(fam))
	for i, p := range fam {
		treeFam[i] = dipath.MustFromVertices(tree, p.Vertices()...)
	}
	res, err := core.ColorNoInternalCycle(tree, treeFam)
	if err != nil {
		t.Fatalf("multicast tree should be internal-cycle-free: %v", err)
	}
	pi := load.Pi(tree, treeFam)
	if pi >= 1 && res.NumColors != pi {
		t.Fatalf("multicast: %d wavelengths for load %d", res.NumColors, pi)
	}
}

func TestMulticastErrors(t *testing.T) {
	g := twoRoutes()
	if _, err := Multicast(g, -1, nil); err == nil {
		t.Fatal("bad origin accepted")
	}
	if _, err := Multicast(g, 1, []digraph.Vertex{2}); err == nil {
		t.Fatal("unreachable destination accepted")
	}
	fam, err := Multicast(g, 0, []digraph.Vertex{4, 3, 0})
	if err != nil {
		t.Fatal(err)
	}
	if fam[2].NumArcs() != 0 {
		t.Fatal("origin destination should give the single-vertex path")
	}
}

func TestAllToAll(t *testing.T) {
	g := twoRoutes()
	reqs := AllToAll(g)
	// Reachable ordered pairs: from 0: 1,2,3,4; from 1: 4; from 2: 3,4;
	// from 3: 4. Total 8.
	if len(reqs) != 8 {
		t.Fatalf("all-to-all size = %d, want 8", len(reqs))
	}
	for _, r := range reqs {
		if _, err := ShortestPath(g, r.Src, r.Dst); err != nil {
			t.Fatalf("unroutable request %v in all-to-all", r)
		}
	}
}

// TestSaturatedRequest pins the admission-benchmark probe finder: it
// returns a request whose shortest route crosses an arc at load >= w,
// and reports not-found when no pool entry does.
func TestSaturatedRequest(t *testing.T) {
	g := digraph.New(4)
	g.MustAddArc(0, 1)         // arc 0
	g.MustAddArc(1, 3)         // arc 1
	g.MustAddArc(0, 2)         // arc 2
	g.MustAddArc(2, 3)         // arc 3
	loads := []int{2, 2, 0, 0} // the 0->1->3 branch carries load 2
	pool := []Request{{Src: 0, Dst: 2}, {Src: 0, Dst: 3}, {Src: 2, Dst: 3}}
	req, ok := SaturatedRequest(g, loads, pool, 2)
	if !ok || req != (Request{Src: 0, Dst: 3}) {
		t.Fatalf("probe = %+v ok=%v, want the 0->3 request (BFS routes it over the loaded branch)", req, ok)
	}
	if _, ok := SaturatedRequest(g, loads, pool, 3); ok {
		t.Fatal("found a probe at w=3 with max load 2")
	}
	if _, ok := SaturatedRequest(g, []int{0, 0, 0, 0}, pool, 1); ok {
		t.Fatal("found a probe on an unloaded graph")
	}
}
