package route

// Failure-aware routing tests: every search skips failed arcs, the
// epoch-stamped component snapshot refreshes after cuts and repairs,
// and disconnection reports ErrNoRoute instead of a stale route.

import (
	"errors"
	"testing"

	"wavedag/internal/digraph"
	"wavedag/internal/load"
)

// failDiamond builds s -> {a, b} -> t with the s->a->t branch one hop
// shorter bias-free (both branches are 2 hops, arc order prefers a).
func failDiamond() (*digraph.Digraph, [4]digraph.ArcID) {
	g := digraph.New(4)
	sa := g.MustAddArc(0, 1)
	at := g.MustAddArc(1, 3)
	sb := g.MustAddArc(0, 2)
	bt := g.MustAddArc(2, 3)
	return g, [4]digraph.ArcID{sa, at, sb, bt}
}

func TestShortestPathSkipsFailedArcs(t *testing.T) {
	g, arcs := failDiamond()
	r := NewRouter(g)
	p, err := r.ShortestPath(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Arcs()[0] != arcs[0] {
		t.Fatalf("expected the s->a branch first, got %v", p.Arcs())
	}
	if err := g.FailArc(arcs[0]); err != nil {
		t.Fatal(err)
	}
	p, err = r.ShortestPath(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range p.Arcs() {
		if g.ArcFailed(a) {
			t.Fatalf("route crosses failed arc %d", a)
		}
	}
	// Cut the other branch too: the pair is disconnected, and after the
	// first exhausted search the router answers from live labels.
	if err := g.FailArc(arcs[2]); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		var nr ErrNoRoute
		if _, err := r.ShortestPath(0, 3); !errors.As(err, &nr) {
			t.Fatalf("attempt %d: %v, want ErrNoRoute", i, err)
		}
	}
	// Repair must invalidate the snapshot (epoch bump): routes return.
	if err := g.RestoreArc(arcs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ShortestPath(0, 3); err != nil {
		t.Fatalf("post-repair route: %v", err)
	}
}

func TestMinLoadPathSkipsFailedArcs(t *testing.T) {
	g, arcs := failDiamond()
	r := NewRouter(g)
	tr := load.NewTracker(g)
	if err := g.FailArc(arcs[2]); err != nil {
		t.Fatal(err)
	}
	p, err := r.MinLoadPath(Request{Src: 0, Dst: 3}, tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range p.Arcs() {
		if g.ArcFailed(a) {
			t.Fatalf("min-load route crosses failed arc %d", a)
		}
	}
	if err := g.FailArc(arcs[0]); err != nil {
		t.Fatal(err)
	}
	var nr ErrNoRoute
	if _, err := r.MinLoadPath(Request{Src: 0, Dst: 3}, tr); !errors.As(err, &nr) {
		t.Fatalf("disconnected min-load: %v, want ErrNoRoute", err)
	}
}

func TestReachableSetSkipsFailedArcs(t *testing.T) {
	g, arcs := failDiamond()
	if err := g.FailArc(arcs[0]); err != nil {
		t.Fatal(err)
	}
	if err := g.FailArc(arcs[2]); err != nil {
		t.Fatal(err)
	}
	reqs := AllToAll(g)
	for _, req := range reqs {
		if req.Src == 0 && (req.Dst == 1 || req.Dst == 2 || req.Dst == 3) {
			t.Fatalf("AllToAll offered unreachable pair %v", req)
		}
	}
}
