package route

import (
	"fmt"

	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/load"
)

// Router holds preallocated search state for routing many requests over
// one digraph. The free functions of this package allocate fresh BFS
// state per request — O(requests·n) churn on AllToAll-scale batches —
// whereas a Router allocates once and reuses: the visited set is an
// epoch-stamped array (reset is a counter bump, not a clear), and the
// predecessor, queue and Dijkstra arrays are recycled across calls.
//
// A Router is not safe for concurrent use; create one per goroutine.
type Router struct {
	g *digraph.Digraph

	// comp labels every vertex with its live weakly connected component
	// (failed arcs excluded), so infeasible cross-component requests
	// are rejected in O(1) instead of by an exhausted search (no dipath
	// crosses components). The labels are computed lazily, the first
	// time a search exhausts — one-shot routers never pay the O(V+A)
	// labeling pass, persistent routers converge to O(1) rejection.
	// compEpoch records the graph's topology epoch the labels were
	// computed at: arcs added, failed or restored later change live
	// connectivity, so a moved epoch falls back to the full search
	// until the next exhausted search refreshes the snapshot.
	comp      []int32
	compEpoch uint64

	// BFS state, valid where stamp[v] == epoch.
	epoch   int
	stamp   []int
	prevArc []digraph.ArcID
	queue   []digraph.Vertex

	// Lexicographic (load, hops) Dijkstra state for bottleneck routing.
	bestLoad []int
	bestHops []int
	done     []bool
	heap     []heapItem // reusable binary heap (lazy deletion)
}

// heapItem is a (priority, vertex) entry of the bottleneck Dijkstra heap.
type heapItem struct {
	load, hops int
	v          digraph.Vertex
}

func (r *Router) heapPush(it heapItem) {
	r.heap = append(r.heap, it)
	i := len(r.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !heapLess(r.heap[i], r.heap[p]) {
			break
		}
		r.heap[i], r.heap[p] = r.heap[p], r.heap[i]
		i = p
	}
}

func (r *Router) heapPop() heapItem {
	top := r.heap[0]
	last := len(r.heap) - 1
	r.heap[0] = r.heap[last]
	r.heap = r.heap[:last]
	i := 0
	for {
		l, rt := 2*i+1, 2*i+2
		smallest := i
		if l < last && heapLess(r.heap[l], r.heap[smallest]) {
			smallest = l
		}
		if rt < last && heapLess(r.heap[rt], r.heap[smallest]) {
			smallest = rt
		}
		if smallest == i {
			break
		}
		r.heap[i], r.heap[smallest] = r.heap[smallest], r.heap[i]
		i = smallest
	}
	return top
}

func heapLess(a, b heapItem) bool {
	if a.load != b.load {
		return a.load < b.load
	}
	if a.hops != b.hops {
		return a.hops < b.hops
	}
	return a.v < b.v // deterministic order among equal priorities
}

// NewRouter returns a router over g.
func NewRouter(g *digraph.Digraph) *Router {
	n := g.NumVertices()
	return &Router{
		g:       g,
		stamp:   make([]int, n),
		prevArc: make([]digraph.ArcID, n),
		queue:   make([]digraph.Vertex, 0, n),
		epoch:   0,
	}
}

// Graph returns the digraph the router routes over.
func (r *Router) Graph() *digraph.Digraph { return r.g }

// rejectCrossComponent reports whether the request provably has no
// route because its endpoints lie in different weakly connected
// components, per the lazily maintained label snapshot (see the comp
// field). False when no current snapshot exists — callers then search.
func (r *Router) rejectCrossComponent(src, dst digraph.Vertex) bool {
	return r.comp != nil &&
		r.compEpoch == r.g.TopologyEpoch() &&
		int(src) < len(r.comp) && int(dst) < len(r.comp) &&
		r.comp[src] != r.comp[dst]
}

// noteExhausted records that a search just exhausted without reaching
// its destination: the live component labels are (re)computed — at most
// the cost of the search that already ran — so the next infeasible
// request on this router is rejected in O(1) instead of by another
// search.
func (r *Router) noteExhausted() {
	if r.comp == nil || r.compEpoch != r.g.TopologyEpoch() || len(r.comp) != r.g.NumVertices() {
		r.comp = r.g.LiveComponentLabels()
		r.compEpoch = r.g.TopologyEpoch()
	}
}

// visit begins a new search: previous visited marks become stale in O(1).
func (r *Router) visit() {
	r.epoch++
	r.queue = r.queue[:0]
}

func (r *Router) seen(v digraph.Vertex) bool { return r.stamp[v] == r.epoch }

func (r *Router) mark(v digraph.Vertex, via digraph.ArcID) {
	r.stamp[v] = r.epoch
	r.prevArc[v] = via
}

// ShortestPath returns a dipath from src to dst minimising the number of
// arcs (BFS), identical to the free ShortestPath but allocation-free up
// to the returned path.
func (r *Router) ShortestPath(src, dst digraph.Vertex) (*dipath.Path, error) {
	g := r.g
	n := g.NumVertices()
	if src < 0 || dst < 0 || int(src) >= n || int(dst) >= n {
		return nil, fmt.Errorf("route: vertex out of range")
	}
	if src == dst {
		return dipath.FromVertices(g, src)
	}
	if r.rejectCrossComponent(src, dst) {
		// No dipath crosses weakly connected components: the exhausted
		// BFS below would reach the same answer, in O(component) per
		// call instead of O(1).
		return nil, ErrNoRoute{Request{src, dst}}
	}
	r.visit()
	r.mark(src, -1)
	r.queue = append(r.queue, src)
	for head := 0; head < len(r.queue); head++ {
		v := r.queue[head]
		for _, a := range g.OutArcs(v) {
			if g.ArcFailed(a) {
				continue
			}
			h := g.Arc(a).Head
			if r.seen(h) {
				continue
			}
			r.mark(h, a)
			if h == dst {
				return r.assemble(src, dst)
			}
			r.queue = append(r.queue, h)
		}
	}
	r.noteExhausted()
	return nil, ErrNoRoute{Request{src, dst}}
}

// assemble rebuilds the dipath dst←src from the epoch-valid predecessor
// chain.
func (r *Router) assemble(src, dst digraph.Vertex) (*dipath.Path, error) {
	g := r.g
	count := 0
	for v := dst; v != src; {
		a := r.prevArc[v]
		if !r.seen(v) || a < 0 {
			return nil, fmt.Errorf("route: internal error: broken predecessor chain")
		}
		count++
		v = g.Arc(a).Tail
	}
	arcs := make([]digraph.ArcID, count)
	for v, i := dst, count-1; v != src; i-- {
		a := r.prevArc[v]
		arcs[i] = a
		v = g.Arc(a).Tail
	}
	return dipath.FromArcs(g, arcs...)
}

// ShortestPaths routes every request by shortest dipath, reusing the
// router's state across requests; it fails on the first unroutable
// request.
func (r *Router) ShortestPaths(reqs []Request) (dipath.Family, error) {
	fam := make(dipath.Family, 0, len(reqs))
	for _, req := range reqs {
		p, err := r.ShortestPath(req.Src, req.Dst)
		if err != nil {
			return nil, err
		}
		fam = append(fam, p)
	}
	return fam, nil
}

// MinLoadSequential routes the requests one by one, each time choosing a
// dipath minimising the resulting maximum arc load (ties broken by hop
// count, then by deterministic arc order). Loads accumulate in an
// incremental load.Tracker; the Dijkstra arrays are reused per request.
func (r *Router) MinLoadSequential(reqs []Request) (dipath.Family, error) {
	t := load.NewTracker(r.g)
	fam := make(dipath.Family, 0, len(reqs))
	for _, req := range reqs {
		p, err := r.MinLoadPath(req, t)
		if err != nil {
			return nil, err
		}
		t.Add(p)
		fam = append(fam, p)
	}
	return fam, nil
}

// MinLoadPath returns a dipath for req minimising (maximum arc load
// along the path against the loads tracked by t, then hop count) via
// lexicographic Dijkstra. It does not modify t — callers owning a
// long-lived Tracker (wdm sessions, MinLoadSequential) add the chosen
// path themselves.
func (r *Router) MinLoadPath(req Request, t *load.Tracker) (*dipath.Path, error) {
	g := r.g
	n := g.NumVertices()
	if req.Src < 0 || req.Dst < 0 || int(req.Src) >= n || int(req.Dst) >= n {
		return nil, fmt.Errorf("route: vertex out of range")
	}
	if req.Src == req.Dst {
		return dipath.FromVertices(g, req.Src)
	}
	if r.rejectCrossComponent(req.Src, req.Dst) {
		// Same O(1) rejection as ShortestPath: no dipath crosses
		// components, so the Dijkstra below could only exhaust itself.
		return nil, ErrNoRoute{req}
	}
	if r.bestLoad == nil {
		r.bestLoad = make([]int, n)
		r.bestHops = make([]int, n)
		r.done = make([]bool, n)
	}
	const inf = int(^uint(0) >> 1)
	for v := 0; v < n; v++ {
		r.bestLoad[v], r.bestHops[v], r.done[v] = inf, inf, false
	}
	r.visit() // reuse the epoch-stamped prevArc as the predecessor store
	r.mark(req.Src, -1)
	r.bestLoad[req.Src], r.bestHops[req.Src] = 0, 0
	r.heap = r.heap[:0]
	r.heapPush(heapItem{0, 0, req.Src})
	for len(r.heap) > 0 {
		// Extract the unfinished vertex with the lexicographically
		// smallest (load, hops); stale heap entries (whose priority no
		// longer matches the vertex's best) are skipped lazily.
		it := r.heapPop()
		u := it.v
		if r.done[u] || it.load != r.bestLoad[u] || it.hops != r.bestHops[u] {
			continue
		}
		if u == req.Dst {
			return r.assemble(req.Src, req.Dst)
		}
		r.done[u] = true
		for _, a := range g.OutArcs(u) {
			if g.ArcFailed(a) {
				continue
			}
			h := g.Arc(a).Head
			if r.done[h] {
				continue
			}
			nl := r.bestLoad[u]
			if t.Load(a)+1 > nl {
				nl = t.Load(a) + 1
			}
			nh := r.bestHops[u] + 1
			if nl < r.bestLoad[h] || (nl == r.bestLoad[h] && nh < r.bestHops[h]) {
				r.bestLoad[h], r.bestHops[h] = nl, nh
				r.mark(h, a)
				r.heapPush(heapItem{nl, nh, h})
			}
		}
	}
	r.noteExhausted()
	return nil, ErrNoRoute{req}
}

// Multicast routes a one-to-many instance: dipaths from origin to every
// destination along a BFS tree, so the routes form an out-arborescence.
func (r *Router) Multicast(origin digraph.Vertex, dests []digraph.Vertex) (dipath.Family, error) {
	g := r.g
	n := g.NumVertices()
	if origin < 0 || int(origin) >= n {
		return nil, fmt.Errorf("route: origin out of range")
	}
	r.visit()
	r.mark(origin, -1)
	r.queue = append(r.queue, origin)
	for head := 0; head < len(r.queue); head++ {
		v := r.queue[head]
		for _, a := range g.OutArcs(v) {
			if g.ArcFailed(a) {
				continue
			}
			h := g.Arc(a).Head
			if !r.seen(h) {
				r.mark(h, a)
				r.queue = append(r.queue, h)
			}
		}
	}
	fam := make(dipath.Family, 0, len(dests))
	for _, d := range dests {
		if d < 0 || int(d) >= n || !r.seen(d) {
			return nil, ErrNoRoute{Request{origin, d}}
		}
		var p *dipath.Path
		var err error
		if d == origin {
			p, err = dipath.FromVertices(g, origin)
		} else {
			p, err = r.assemble(origin, d)
		}
		if err != nil {
			return nil, err
		}
		fam = append(fam, p)
	}
	return fam, nil
}

// AllToAll returns the request list {(u,v) : u != v, v reachable from u},
// reusing the router's BFS state for the n reachability sweeps.
func (r *Router) AllToAll() []Request {
	g := r.g
	n := g.NumVertices()
	var reqs []Request
	for u := 0; u < n; u++ {
		src := digraph.Vertex(u)
		r.visit()
		r.mark(src, -1)
		r.queue = append(r.queue, src)
		for head := 0; head < len(r.queue); head++ {
			v := r.queue[head]
			for _, a := range g.OutArcs(v) {
				if g.ArcFailed(a) {
					continue
				}
				h := g.Arc(a).Head
				if !r.seen(h) {
					r.mark(h, a)
					r.queue = append(r.queue, h)
				}
			}
		}
		for v := 0; v < n; v++ {
			if v != u && r.seen(digraph.Vertex(v)) {
				reqs = append(reqs, Request{src, digraph.Vertex(v)})
			}
		}
	}
	return reqs
}

// SaturatedRequest returns the first request of pool whose shortest
// route crosses an arc carrying loads[a] >= w — the probe the admission
// reject-cost benchmarks re-offer: together with the w paths on that
// arc it forms a (w+1)-clique in the conflict graph, so every admission
// path must keep rejecting it. ok is false when the offered load never
// saturated an arc of a routable pool entry.
func SaturatedRequest(g *digraph.Digraph, loads []int, pool []Request, w int) (Request, bool) {
	r := NewRouter(g)
	for _, req := range pool {
		p, err := r.ShortestPath(req.Src, req.Dst)
		if err != nil {
			continue
		}
		for _, a := range p.Arcs() {
			if loads[a] >= w {
				return req, true
			}
		}
	}
	return Request{}, false
}
