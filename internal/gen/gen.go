// Package gen constructs the instances of the Bermond–Cosnard paper —
// every figure is a (graph, dipath family) pair with a provable (π, w) —
// together with random generators for DAG classes (general, internal-
// cycle-free, UPP, arborescences, layered) and dipath families used by
// the property tests and the experiment harness.
//
// All generators are deterministic given their seed.
package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"wavedag/internal/dag"
	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/upp"
)

// Fig1Staircase builds the pathological example of Figure 1 for k >= 2
// requests: k dipaths that pairwise share an arc (so the conflict graph is
// K_k and w = k) while every arc carries at most 2 dipaths (π = 2).
//
// The construction realises the paper's staircase combinatorially: for
// every pair i < j there is a dedicated "meeting" arc e_{ij} traversed by
// exactly dipaths i and j; dipath i traverses its meeting arcs in the
// DAG-consistent order e_{1i}, …, e_{i-1,i}, e_{i,i+1}, …, e_{i,k},
// with private connector arcs in between.
func Fig1Staircase(k int) (*digraph.Digraph, dipath.Family, error) {
	if k < 2 {
		return nil, nil, fmt.Errorf("gen: staircase needs k >= 2, got %d", k)
	}
	g := digraph.New(0)
	// Meeting gadget per pair {i<j}: u_{ij} -> v_{ij}.
	type gadget struct{ u, v digraph.Vertex }
	gadgets := make(map[[2]int]gadget)
	// Create gadgets in increasing i+j order so vertex ids follow a
	// topological order (connectors always go to strictly larger i+j).
	for s := 3; s <= 2*k-1; s++ {
		for i := 1; i < k+1; i++ {
			j := s - i
			if j <= i || j > k {
				continue
			}
			u := g.AddVertex(fmt.Sprintf("u%d_%d", i, j))
			v := g.AddVertex(fmt.Sprintf("v%d_%d", i, j))
			g.MustAddArc(u, v)
			gadgets[[2]int{i, j}] = gadget{u, v}
		}
	}
	var fam dipath.Family
	for i := 1; i <= k; i++ {
		// Meeting arcs of dipath i, in traversal order.
		var order [][2]int
		for j := 1; j < i; j++ {
			order = append(order, [2]int{j, i})
		}
		for j := i + 1; j <= k; j++ {
			order = append(order, [2]int{i, j})
		}
		verts := []digraph.Vertex{}
		for t, key := range order {
			gd := gadgets[key]
			if t > 0 {
				// Private connector from previous gadget's head.
				prev := gadgets[order[t-1]]
				g.MustAddArc(prev.v, gd.u)
			}
			if t == 0 {
				verts = append(verts, gd.u)
			}
			verts = append(verts, gd.u, gd.v)
		}
		// Dedup the doubled first u.
		verts = verts[1:]
		p, err := dipath.FromVertices(g, verts...)
		if err != nil {
			return nil, nil, fmt.Errorf("gen: staircase path %d: %w", i, err)
		}
		fam = append(fam, p)
	}
	return g, fam, nil
}

// Fig3 builds the example of Figure 3: a DAG with a single internal cycle
// (the triangle b, c, d) and 5 dipaths with π = 2 whose conflict graph is
// the 5-cycle, hence w = 3.
func Fig3() (*digraph.Digraph, dipath.Family) {
	g := digraph.New(0)
	a := g.AddVertex("a1")
	b := g.AddVertex("b1")
	c := g.AddVertex("c1")
	d := g.AddVertex("d1")
	e := g.AddVertex("e1")
	g.MustAddArc(a, b)
	g.MustAddArc(b, c)
	g.MustAddArc(c, d)
	g.MustAddArc(d, e)
	g.MustAddArc(b, d) // the second b->d route closing the internal cycle
	fam := dipath.Family{
		dipath.MustFromVertices(g, a, b, c),
		dipath.MustFromVertices(g, b, c, d),
		dipath.MustFromVertices(g, c, d, e),
		dipath.MustFromVertices(g, b, d, e),
		dipath.MustFromVertices(g, a, b, d),
	}
	return g, fam
}

// InternalCycleGadget builds the Theorem 2 construction (Figure 5) for
// k >= 2: an UPP-DAG whose unique internal cycle has 2k direction
// changes, and a family of 2k+1 dipaths with π = 2 whose conflict graph
// is the odd cycle C_{2k+1}, hence w = 3.
//
// Vertices: a_i, b_i, c_i, d_i (i = 1..k); arcs a_i->b_i, b_i->c_i,
// b_i->c_{i-1}, c_i->d_i (indices mod k). Family: {a1 b1 c1; b1 c1 d1} ∪
// {a_i b_i c_{i-1} d_{i-1} : i = 1..k} ∪ {a_i b_i c_i d_i : i = 2..k}.
func InternalCycleGadget(k int) (*digraph.Digraph, dipath.Family, error) {
	if k < 2 {
		return nil, nil, fmt.Errorf("gen: internal cycle gadget needs k >= 2, got %d", k)
	}
	g := digraph.New(0)
	a := make([]digraph.Vertex, k)
	b := make([]digraph.Vertex, k)
	c := make([]digraph.Vertex, k)
	d := make([]digraph.Vertex, k)
	for i := 0; i < k; i++ {
		a[i] = g.AddVertex(fmt.Sprintf("a%d", i+1))
		b[i] = g.AddVertex(fmt.Sprintf("b%d", i+1))
		c[i] = g.AddVertex(fmt.Sprintf("c%d", i+1))
		d[i] = g.AddVertex(fmt.Sprintf("d%d", i+1))
	}
	prev := func(i int) int { return (i + k - 1) % k }
	for i := 0; i < k; i++ {
		g.MustAddArc(a[i], b[i])
		g.MustAddArc(b[i], c[i])
		g.MustAddArc(b[i], c[prev(i)])
		g.MustAddArc(c[i], d[i])
	}
	fam := dipath.Family{
		dipath.MustFromVertices(g, a[0], b[0], c[0]),
		dipath.MustFromVertices(g, b[0], c[0], d[0]),
	}
	for i := 0; i < k; i++ {
		fam = append(fam, dipath.MustFromVertices(g, a[i], b[i], c[prev(i)], d[prev(i)]))
	}
	for i := 1; i < k; i++ {
		fam = append(fam, dipath.MustFromVertices(g, a[i], b[i], c[i], d[i]))
	}
	return g, fam, nil
}

// Havet builds Frédéric Havet's tightness example for Theorem 7
// (Figure 9): an UPP-DAG with exactly one internal cycle and 8 dipaths
// with π = 2 whose conflict graph is the 8-cycle plus antipodal chords
// (the Wagner graph), with independence number 3, hence w = 3 and —
// after replicating every dipath h times — π = 2h, w = ⌈8h/3⌉ = ⌈4π/3⌉.
func Havet() (*digraph.Digraph, dipath.Family) {
	g := digraph.New(0)
	a1 := g.AddVertex("a1")
	b1 := g.AddVertex("b1")
	c1 := g.AddVertex("c1")
	d1 := g.AddVertex("d1")
	a2 := g.AddVertex("a2")
	b2 := g.AddVertex("b2")
	c2 := g.AddVertex("c2")
	d2 := g.AddVertex("d2")
	a1p := g.AddVertex("a1'")
	a2p := g.AddVertex("a2'")
	d1p := g.AddVertex("d1'")
	d2p := g.AddVertex("d2'")
	g.MustAddArc(a1, b1)
	g.MustAddArc(b1, c1)
	g.MustAddArc(c1, d1)
	g.MustAddArc(a2, b2)
	g.MustAddArc(b2, c2)
	g.MustAddArc(c2, d2)
	g.MustAddArc(b1, c2)
	g.MustAddArc(b2, c1)
	g.MustAddArc(a1p, b1)
	g.MustAddArc(a2p, b2)
	g.MustAddArc(c1, d1p)
	g.MustAddArc(c2, d2p)
	// The prime rotation matters: pairing primed starts with primed ends
	// everywhere would give the bipartite cube graph (χ = 2) instead of
	// the Wagner graph (χ = 3).
	fam := dipath.Family{
		dipath.MustFromVertices(g, a1, b1, c1, d1p),
		dipath.MustFromVertices(g, a1, b1, c2, d2),
		dipath.MustFromVertices(g, a2, b2, c2, d2),
		dipath.MustFromVertices(g, a2, b2, c1, d1),
		dipath.MustFromVertices(g, a1p, b1, c1, d1),
		dipath.MustFromVertices(g, a1p, b1, c2, d2p),
		dipath.MustFromVertices(g, a2p, b2, c2, d2p),
		dipath.MustFromVertices(g, a2p, b2, c1, d1p),
	}
	return g, fam
}

// Instance bundles a digraph with a dipath family over it; generators
// that produce both return an Instance-compatible pair.
type Instance struct {
	G *digraph.Digraph
	F dipath.Family
}

// DisjointUnion glues the given (graph, family) instances side by side
// with no connecting arcs; the loads, conflicts and internal cycles are
// the unions of the parts. Used by the multi-cycle experiment E10.
func DisjointUnion(parts ...Instance) (*digraph.Digraph, dipath.Family) {
	g := digraph.New(0)
	var fam dipath.Family
	for _, part := range parts {
		offset := digraph.Vertex(g.NumVertices())
		for v := 0; v < part.G.NumVertices(); v++ {
			g.AddVertex(part.G.Label(digraph.Vertex(v)))
		}
		for _, a := range part.G.Arcs() {
			g.MustAddArc(a.Tail+offset, a.Head+offset)
		}
		for _, p := range part.F {
			verts := make([]digraph.Vertex, p.NumVertices())
			for i, v := range p.Vertices() {
				verts[i] = v + offset
			}
			fam = append(fam, dipath.MustFromVertices(g, verts...))
		}
	}
	return g, fam
}

// GlueChain glues the parts into one weakly connected "giant" component
// by identifying the first sink of each part with the first source of
// the next. Parts meet at single vertices, so every glue point is a cut
// vertex of the result: PartitionComponents cannot split the glued
// graph, but PartitionRegions decomposes it into arc-disjoint regions
// no larger than the parts — the workload family the two-level sharded
// engine exists for. The result stays a DAG (all arcs respect the part
// order), though glue vertices become internal, so parts' cycles
// through them turn into internal cycles of the whole.
//
// It returns the glued graph and, per part, the global identifiers of
// that part's vertices (consecutive parts share their glue vertex, so
// the slices overlap in one element). Parts must each have a source and
// a sink.
func GlueChain(parts ...*digraph.Digraph) (*digraph.Digraph, [][]digraph.Vertex, error) {
	if len(parts) == 0 {
		return nil, nil, fmt.Errorf("gen: GlueChain needs at least one part")
	}
	g := digraph.New(0)
	partVerts := make([][]digraph.Vertex, len(parts))
	glue := digraph.Vertex(-1) // previous part's first sink, in global ids
	for i, part := range parts {
		srcs, sinks := part.Sources(), part.Sinks()
		if len(srcs) == 0 || len(sinks) == 0 {
			return nil, nil, fmt.Errorf("gen: GlueChain part %d needs a source and a sink", i)
		}
		toGlobal := make([]digraph.Vertex, part.NumVertices())
		for v := range toGlobal {
			if i > 0 && digraph.Vertex(v) == srcs[0] {
				toGlobal[v] = glue // identify with the previous part's sink
			} else {
				toGlobal[v] = g.AddVertex(part.Label(digraph.Vertex(v)))
			}
		}
		for _, a := range part.Arcs() {
			g.MustAddArc(toGlobal[a.Tail], toGlobal[a.Head])
		}
		partVerts[i] = toGlobal
		glue = toGlobal[sinks[0]]
	}
	return g, partVerts, nil
}

// LocalityRequestPool draws a pool of routable (src, dst) pairs over g
// with a controlled locality mix: about frac of the entries have both
// endpoints inside one vertex group, the rest cross groups. Groups
// typically come from GlueChain's part lists, making frac the fraction
// of region-confined traffic a two-level sharded engine can fan out —
// the locality axis of the giant-component churn benchmarks. If either
// class is empty the other fills the pool; a graph with no routable
// pairs at all yields an empty pool.
func LocalityRequestPool(g *digraph.Digraph, groups [][]digraph.Vertex, frac float64, size int, seed int64) [][2]digraph.Vertex {
	// Group memberships per vertex (glue vertices belong to two).
	member := make([][]int, g.NumVertices())
	for gi, vs := range groups {
		for _, v := range vs {
			member[v] = append(member[v], gi)
		}
	}
	shareGroup := func(u, v digraph.Vertex) bool {
		for _, a := range member[u] {
			for _, b := range member[v] {
				if a == b {
					return true
				}
			}
		}
		return false
	}
	n := g.NumVertices()
	var local, cross [][2]digraph.Vertex
	seen := make([]bool, n)
	queue := make([]digraph.Vertex, 0, n)
	for u := 0; u < n; u++ {
		for i := range seen {
			seen[i] = false
		}
		src := digraph.Vertex(u)
		seen[src] = true
		queue = append(queue[:0], src)
		for head := 0; head < len(queue); head++ {
			for _, a := range g.OutArcs(queue[head]) {
				if h := g.Arc(a).Head; !seen[h] {
					seen[h] = true
					queue = append(queue, h)
				}
			}
		}
		for v := 0; v < n; v++ {
			if v == u || !seen[v] {
				continue
			}
			pair := [2]digraph.Vertex{src, digraph.Vertex(v)}
			if shareGroup(src, digraph.Vertex(v)) {
				local = append(local, pair)
			} else {
				cross = append(cross, pair)
			}
		}
	}
	if len(local) == 0 && len(cross) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	pool := make([][2]digraph.Vertex, 0, size)
	for i := 0; i < size; i++ {
		pick := local
		if len(local) == 0 || (rng.Float64() >= frac && len(cross) > 0) {
			pick = cross
		}
		pool = append(pool, pick[rng.Intn(len(pick))])
	}
	return pool
}

// HotspotRequestPool draws a pool of routable (src, dst) pairs whose
// traffic concentrates on a few hot endpoints: about hotFrac of the
// entries have both endpoints in the hot set — the hotCount vertices
// with the largest combined reach (vertices reachable from them plus
// vertices that reach them), i.e. the ones whose pairs funnel through
// the topology's spine — and the rest are drawn uniformly from all
// routable pairs. Replaying such a pool against a finite wavelength
// budget drives the hot arcs past any budget long before the cold ones:
// the overload regime the admission-control benchmarks sweep. If too
// few hot pairs are routable the uniform class fills the pool; a graph
// with no routable pairs yields an empty pool.
func HotspotRequestPool(g *digraph.Digraph, hotCount int, hotFrac float64, size int, seed int64) [][2]digraph.Vertex {
	n := g.NumVertices()
	outReach := make([]int, n)
	inReach := make([]int, n)
	var all [][2]digraph.Vertex
	seen := make([]bool, n)
	queue := make([]digraph.Vertex, 0, n)
	for u := 0; u < n; u++ {
		for i := range seen {
			seen[i] = false
		}
		src := digraph.Vertex(u)
		seen[src] = true
		queue = append(queue[:0], src)
		for head := 0; head < len(queue); head++ {
			for _, a := range g.OutArcs(queue[head]) {
				if h := g.Arc(a).Head; !seen[h] {
					seen[h] = true
					queue = append(queue, h)
				}
			}
		}
		for v := 0; v < n; v++ {
			if v == u || !seen[v] {
				continue
			}
			outReach[u]++
			inReach[v]++
			all = append(all, [2]digraph.Vertex{src, digraph.Vertex(v)})
		}
	}
	if len(all) == 0 {
		return nil
	}
	// Hot set: top hotCount vertices by combined reach.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := outReach[order[a]]+inReach[order[a]], outReach[order[b]]+inReach[order[b]]
		if ra != rb {
			return ra > rb
		}
		return order[a] < order[b]
	})
	if hotCount > n {
		hotCount = n
	}
	hotSet := make([]bool, n)
	for _, v := range order[:hotCount] {
		hotSet[v] = true
	}
	var hot [][2]digraph.Vertex
	for _, pair := range all {
		if hotSet[pair[0]] && hotSet[pair[1]] {
			hot = append(hot, pair)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	pool := make([][2]digraph.Vertex, 0, size)
	for i := 0; i < size; i++ {
		pick := all
		if len(hot) > 0 && rng.Float64() < hotFrac {
			pick = hot
		}
		pool = append(pool, pick[rng.Intn(len(pick))])
	}
	return pool
}

// DriftingHotspotRequestPool draws a pool of routable (src, dst) pairs
// whose hotspot moves: the pool is cut into periods of k entries, and
// within period p about hotFrac of the entries have both endpoints in a
// window of hotCount consecutive vertex ids starting at (p*hotCount)
// mod NumVertices — each period the window slides on, so the traffic
// concentration migrates across the topology as the pool replays. Hot
// pairs are adjacent (arc-endpoint) pairs of the window when it has
// internal arcs — neighbourhood traffic any layout containing the arc
// can serve — and fall back to the window's routable pairs, then to
// uniform, as the window thins out. The remaining entries are uniform
// over all routable pairs.
// Replaying such a pool against a statically partitioned engine keeps
// relighting a different partition: the workload the adaptive layout
// plane (hot-region re-splitting, budget re-banding) is built for,
// while HotspotRequestPool is the static special case any fixed layout
// can be pre-tuned to. A graph with no routable pairs yields an empty
// pool; k <= 0 means the hotspot never moves.
func DriftingHotspotRequestPool(g *digraph.Digraph, hotCount int, hotFrac float64, size, k int, seed int64) [][2]digraph.Vertex {
	n := g.NumVertices()
	var all [][2]digraph.Vertex
	seen := make([]bool, n)
	queue := make([]digraph.Vertex, 0, n)
	for u := 0; u < n; u++ {
		for i := range seen {
			seen[i] = false
		}
		src := digraph.Vertex(u)
		seen[src] = true
		queue = append(queue[:0], src)
		for head := 0; head < len(queue); head++ {
			for _, a := range g.OutArcs(queue[head]) {
				if h := g.Arc(a).Head; !seen[h] {
					seen[h] = true
					queue = append(queue, h)
				}
			}
		}
		for v := 0; v < n; v++ {
			if v != u && seen[v] {
				all = append(all, [2]digraph.Vertex{src, digraph.Vertex(v)})
			}
		}
	}
	if len(all) == 0 {
		return nil
	}
	if hotCount > n {
		hotCount = n
	}
	if hotCount < 1 {
		hotCount = 1
	}
	// Hot pairs per window start, computed lazily: starts repeat once the
	// window wraps, so long pools reuse the scans.
	hotCache := make(map[int][][2]digraph.Vertex)
	hotFor := func(start int) [][2]digraph.Vertex {
		if hot, ok := hotCache[start]; ok {
			return hot
		}
		inWin := func(v digraph.Vertex) bool {
			d := (int(v) - start + n) % n
			return d < hotCount
		}
		var hot [][2]digraph.Vertex
		for _, a := range g.Arcs() {
			if a.Tail != a.Head && inWin(a.Tail) && inWin(a.Head) && !g.ArcFailed(a.ID) {
				hot = append(hot, [2]digraph.Vertex{a.Tail, a.Head})
			}
		}
		if len(hot) == 0 {
			for _, pair := range all {
				if inWin(pair[0]) && inWin(pair[1]) {
					hot = append(hot, pair)
				}
			}
		}
		hotCache[start] = hot
		return hot
	}
	rng := rand.New(rand.NewSource(seed))
	pool := make([][2]digraph.Vertex, 0, size)
	for i := 0; i < size; i++ {
		start := 0
		if k > 0 {
			start = (i / k * hotCount) % n
		}
		pick := all
		if hot := hotFor(start); len(hot) > 0 && rng.Float64() < hotFrac {
			pick = hot
		}
		pool = append(pool, pick[rng.Intn(len(pick))])
	}
	return pool
}

// RandomDAG returns a DAG on n vertices with m arcs drawn uniformly among
// the forward pairs of the identity topological order (parallel arcs are
// avoided when possible).
func RandomDAG(n, m int, seed int64) *digraph.Digraph {
	rng := rand.New(rand.NewSource(seed))
	g := digraph.New(n)
	if n < 2 {
		return g
	}
	seen := make(map[[2]int]bool, m)
	maxArcs := n * (n - 1) / 2
	for added := 0; added < m && len(seen) < maxArcs; {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-u-1)
		key := [2]int{u, v}
		if seen[key] {
			continue
		}
		seen[key] = true
		g.MustAddArc(digraph.Vertex(u), digraph.Vertex(v))
		added++
	}
	return g
}

// RandomNoInternalCycleDAG returns a DAG with nInternal internal vertices
// (indegree and outdegree both positive), nSources sources and nSinks
// sinks, and no internal cycle: the arcs among internal vertices form a
// random forest, every internal vertex is fed by at least one source-side
// arc and drained by at least one sink-side arc, and extra arcs incident
// to sources and sinks are sprinkled with probability extraP.
//
// The returned graph satisfies Theorem 1's hypothesis by construction:
// the sub-digraph induced on internal vertices is a forest, so no
// internal cycle exists.
func RandomNoInternalCycleDAG(nInternal, nSources, nSinks int, extraP float64, seed int64) (*digraph.Digraph, error) {
	if nInternal < 0 || nSources < 1 || nSinks < 1 {
		return nil, fmt.Errorf("gen: need nInternal >= 0, nSources >= 1, nSinks >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	g := digraph.New(0)
	internal := make([]digraph.Vertex, nInternal)
	for i := range internal {
		internal[i] = g.AddVertex(fmt.Sprintf("i%d", i))
	}
	sources := make([]digraph.Vertex, nSources)
	for i := range sources {
		sources[i] = g.AddVertex(fmt.Sprintf("s%d", i))
	}
	sinks := make([]digraph.Vertex, nSinks)
	for i := range sinks {
		sinks[i] = g.AddVertex(fmt.Sprintf("t%d", i))
	}
	// Random forest on internal vertices; vertex ids double as the
	// topological order, so orient each tree edge low -> high.
	for i := 1; i < nInternal; i++ {
		if rng.Float64() < 0.8 {
			j := rng.Intn(i)
			g.MustAddArc(internal[j], internal[i])
		}
	}
	// Make every internal vertex genuinely internal.
	for _, v := range internal {
		if g.InDegree(v) == 0 {
			g.MustAddArc(sources[rng.Intn(nSources)], v)
		}
		if g.OutDegree(v) == 0 {
			g.MustAddArc(v, sinks[rng.Intn(nSinks)])
		}
	}
	// Extra arcs incident to sources and sinks: they can never lie on an
	// internal cycle because one endpoint is a source or a sink of g.
	for _, s := range sources {
		for _, v := range internal {
			if rng.Float64() < extraP {
				if _, dup := g.ArcBetween(s, v); !dup {
					g.MustAddArc(s, v)
				}
			}
		}
		for _, t := range sinks {
			if rng.Float64() < extraP {
				if _, dup := g.ArcBetween(s, t); !dup {
					g.MustAddArc(s, t)
				}
			}
		}
	}
	for _, v := range internal {
		for _, t := range sinks {
			if rng.Float64() < extraP {
				if _, dup := g.ArcBetween(v, t); !dup {
					g.MustAddArc(v, t)
				}
			}
		}
	}
	return g, nil
}

// RandomUPPDAG grows a DAG on n vertices by attempting `attempts` random
// forward arcs and keeping those that preserve the unique-dipath
// property. The result is always UPP.
func RandomUPPDAG(n, attempts int, seed int64) *digraph.Digraph {
	rng := rand.New(rand.NewSource(seed))
	g := digraph.New(n)
	if n < 2 {
		return g
	}
	for t := 0; t < attempts; t++ {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-u-1)
		if _, dup := g.ArcBetween(digraph.Vertex(u), digraph.Vertex(v)); dup {
			continue
		}
		// A new arc u->v preserves UPP iff no dipath u⇝v exists yet and,
		// for every pair (x, y) with x⇝u and v⇝y, no dipath x⇝y exists.
		counts, err := upp.PathCounts(g)
		if err != nil {
			panic(err) // forward arcs cannot create directed cycles
		}
		if counts[u][v] > 0 {
			continue
		}
		ok := true
		for x := 0; x <= u && ok; x++ {
			if counts[x][u] == 0 {
				continue
			}
			for y := v; y < n; y++ {
				if counts[v][y] > 0 && counts[x][y] > 0 {
					ok = false
					break
				}
			}
		}
		if ok {
			g.MustAddArc(digraph.Vertex(u), digraph.Vertex(v))
		}
	}
	return g
}

// RandomArborescence returns a uniformly random recursive out-tree on n
// vertices rooted at vertex 0 (each vertex i > 0 picks a parent < i).
func RandomArborescence(n int, seed int64) *digraph.Digraph {
	rng := rand.New(rand.NewSource(seed))
	g := digraph.New(n)
	for i := 1; i < n; i++ {
		g.MustAddArc(digraph.Vertex(rng.Intn(i)), digraph.Vertex(i))
	}
	return g
}

// LayeredDAG returns a DAG with `layers` layers of `width` vertices;
// each arc between consecutive layers is present with probability p.
// Layered DAGs model the stage graphs of pipelined computations and the
// virtual topologies of the optical examples.
func LayeredDAG(layers, width int, p float64, seed int64) *digraph.Digraph {
	rng := rand.New(rand.NewSource(seed))
	g := digraph.New(layers * width)
	at := func(l, i int) digraph.Vertex { return digraph.Vertex(l*width + i) }
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				if rng.Float64() < p {
					g.MustAddArc(at(l, i), at(l+1, j))
				}
			}
		}
	}
	return g
}

// RandomWalkFamily samples `count` dipaths of g: each starts at a random
// vertex and extends by random out-arcs for up to maxLen arcs. Paths of
// zero arcs are discarded, so the family may be smaller than count when g
// has isolated vertices.
func RandomWalkFamily(g *digraph.Digraph, count, maxLen int, seed int64) dipath.Family {
	rng := rand.New(rand.NewSource(seed))
	var fam dipath.Family
	n := g.NumVertices()
	if n == 0 || maxLen < 1 {
		return fam
	}
	for t := 0; t < count; t++ {
		v := digraph.Vertex(rng.Intn(n))
		verts := []digraph.Vertex{v}
		for len(verts) <= maxLen {
			outs := g.OutArcs(verts[len(verts)-1])
			if len(outs) == 0 {
				break
			}
			a := g.Arc(outs[rng.Intn(len(outs))])
			verts = append(verts, a.Head)
		}
		if len(verts) < 2 {
			continue
		}
		fam = append(fam, dipath.MustFromVertices(g, verts...))
	}
	return fam
}

// AllSourceSinkFamily routes one dipath per (source, sink) pair of an UPP
// DAG when the pair is connected; it errors when g is not UPP.
func AllSourceSinkFamily(g *digraph.Digraph) (dipath.Family, error) {
	r, err := upp.NewRouter(g)
	if err != nil {
		return nil, err
	}
	var fam dipath.Family
	for _, s := range g.Sources() {
		for _, t := range g.Sinks() {
			if p, ok := r.Route(s, t); ok && p.NumArcs() > 0 {
				fam = append(fam, p)
			}
		}
	}
	return fam, nil
}

// SubpathFamily samples `count` random subpaths of random maximal dipaths
// of the DAG g: a workload of "requests already routed", exercising
// arbitrary overlap patterns. All returned paths have at least one arc.
func SubpathFamily(g *digraph.Digraph, count int, seed int64) (dipath.Family, error) {
	if !dag.IsDAG(g) {
		return nil, dag.ErrCyclic
	}
	rng := rand.New(rand.NewSource(seed))
	var fam dipath.Family
	n := g.NumVertices()
	if n == 0 {
		return fam, nil
	}
	for t := 0; t < count*4 && len(fam) < count; t++ {
		v := digraph.Vertex(rng.Intn(n))
		verts := []digraph.Vertex{v}
		for {
			outs := g.OutArcs(verts[len(verts)-1])
			if len(outs) == 0 {
				break
			}
			verts = append(verts, g.Arc(outs[rng.Intn(len(outs))]).Head)
		}
		if len(verts) < 2 {
			continue
		}
		i := rng.Intn(len(verts) - 1)
		j := i + 1 + rng.Intn(len(verts)-i-1)
		fam = append(fam, dipath.MustFromVertices(g, verts[i:j+1]...))
	}
	return fam, nil
}
