package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"wavedag/internal/digraph"
)

// FaultEvent is one entry of a fault schedule: at time At the arc is
// cut (Restore false) or repaired (Restore true). Times are in
// arbitrary simulation units — the engine only cares about the order.
type FaultEvent struct {
	Restore bool
	Arc     digraph.ArcID
	At      float64
}

// FaultSchedule draws an alternating-renewal fiber fault process over
// the arcs of g: each arc independently cycles up-down with
// exponentially distributed up times (mean mtbf) and down times (mean
// mttr), sampled out to the horizon. The merged, time-sorted event
// stream is returned; per arc every restore follows its cut, so
// replaying the schedule in order against FailArc/RestoreArc is always
// valid. Deterministic given the seed.
func FaultSchedule(g *digraph.Digraph, mtbf, mttr, horizon float64, seed int64) ([]FaultEvent, error) {
	if mtbf <= 0 || mttr <= 0 {
		return nil, fmt.Errorf("gen: fault schedule needs mtbf > 0 and mttr > 0, got %g and %g", mtbf, mttr)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("gen: fault schedule needs horizon > 0, got %g", horizon)
	}
	rng := rand.New(rand.NewSource(seed))
	var events []FaultEvent
	for a := 0; a < g.NumArcs(); a++ {
		t := rng.ExpFloat64() * mtbf
		for t < horizon {
			events = append(events, FaultEvent{Arc: digraph.ArcID(a), At: t})
			t += rng.ExpFloat64() * mttr
			if t >= horizon {
				break
			}
			events = append(events, FaultEvent{Restore: true, Arc: digraph.ArcID(a), At: t})
			t += rng.ExpFloat64() * mtbf
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	return events, nil
}
