package gen

import (
	"math"
	"testing"
)

func TestPoissonArrivalsDeterministic(t *testing.T) {
	a, err := NewPoissonArrivals(100, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewPoissonArrivals(100, 7)
	ta, tb := a.Times(1000), b.Times(1000)
	for i := range ta {
		if ta[i] != tb[i] {
			t.Fatalf("seeded streams diverge at %d: %v vs %v", i, ta[i], tb[i])
		}
	}
	c, _ := NewPoissonArrivals(100, 8)
	tc := c.Times(1000)
	same := 0
	for i := range ta {
		if ta[i] == tc[i] {
			same++
		}
	}
	if same == len(ta) {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestPoissonArrivalsMonotone(t *testing.T) {
	p, err := NewPoissonArrivals(50, 3)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for i := 0; i < 5000; i++ {
		ti := p.Next()
		if ti <= prev {
			t.Fatalf("arrival %d not increasing: %v after %v", i, ti, prev)
		}
		prev = ti
	}
}

// TestPoissonArrivalsRate checks the empirical rate of a homogeneous
// stream against the configured one. With n = 20000 arrivals the
// total-time estimator has relative stddev 1/sqrt(n) ≈ 0.7%, so a 5%
// tolerance is ~7 sigma — deterministic in the fixed seed anyway.
func TestPoissonArrivalsRate(t *testing.T) {
	const rate, n = 200.0, 20000
	p, err := NewPoissonArrivals(rate, 11)
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for i := 0; i < n; i++ {
		last = p.Next()
	}
	got := float64(n) / last
	if math.Abs(got-rate)/rate > 0.05 {
		t.Fatalf("empirical rate %v, want ~%v", got, rate)
	}
}

// TestPoissonArrivalsRamp checks the thinned non-homogeneous stream:
// during a 10→1000 events/s ramp over [0, 10), early windows must be
// sparse and late windows dense, and the post-ramp region must run at
// the target rate.
func TestPoissonArrivalsRamp(t *testing.T) {
	p, err := NewPoissonArrivals(10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetRamp(0, 10, 1000); err != nil {
		t.Fatal(err)
	}
	// Count arrivals per unit-time bucket until t=14.
	counts := make([]int, 14)
	for {
		ti := p.Next()
		if ti >= 14 {
			break
		}
		counts[int(ti)]++
	}
	// Bucket 0 has mean ~59.5 (integral of the ramp over [0,1)); bucket
	// 9 has mean ~950.5. Require a strong gradient rather than exact
	// means, plus near-target density after the ramp.
	if counts[0] >= counts[9]/3 {
		t.Fatalf("ramp gradient missing: bucket0=%d bucket9=%d", counts[0], counts[9])
	}
	for b := 10; b < 14; b++ {
		if counts[b] < 800 || counts[b] > 1200 {
			t.Fatalf("post-ramp bucket %d has %d arrivals, want ~1000", b, counts[b])
		}
	}
}

func TestPoissonArrivalsValidation(t *testing.T) {
	if _, err := NewPoissonArrivals(0, 1); err == nil {
		t.Fatal("rate 0 accepted")
	}
	if _, err := NewPoissonArrivals(-5, 1); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := NewPoissonArrivals(math.Inf(1), 1); err == nil {
		t.Fatal("infinite rate accepted")
	}
	p, _ := NewPoissonArrivals(1, 1)
	if err := p.SetRamp(5, 5, 10); err == nil {
		t.Fatal("empty ramp window accepted")
	}
	if err := p.SetRamp(0, 10, 0); err == nil {
		t.Fatal("zero target rate accepted")
	}
	if err := p.SetRamp(0, 10, math.Inf(1)); err == nil {
		t.Fatal("infinite target rate accepted")
	}
}
