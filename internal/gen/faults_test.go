package gen

import (
	"testing"

	"wavedag/internal/digraph"
)

func TestFaultScheduleValidAndDeterministic(t *testing.T) {
	g, err := RandomNoInternalCycleDAG(20, 4, 4, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	ev1, err := FaultSchedule(g, 50, 10, 500, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev1) == 0 {
		t.Fatal("empty schedule at mtbf far below the horizon")
	}
	// Time-sorted, and per arc strictly alternating cut/restore starting
	// with a cut — exactly what a FailArc/RestoreArc replay requires.
	down := make(map[digraph.ArcID]bool)
	last := 0.0
	for i, ev := range ev1 {
		if ev.At < last {
			t.Fatalf("event %d out of order: %g after %g", i, ev.At, last)
		}
		last = ev.At
		if ev.Restore == !down[ev.Arc] {
			t.Fatalf("event %d: restore=%v on arc %d while down=%v", i, ev.Restore, ev.Arc, down[ev.Arc])
		}
		down[ev.Arc] = !ev.Restore
		if ev.At < 0 || ev.At >= 500 {
			t.Fatalf("event %d outside horizon: %g", i, ev.At)
		}
	}
	// Deterministic given the seed; different seeds diverge.
	ev2, err := FaultSchedule(g, 50, 10, 500, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev1) != len(ev2) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(ev1), len(ev2))
	}
	for i := range ev1 {
		if ev1[i] != ev2[i] {
			t.Fatalf("same seed diverged at event %d", i)
		}
	}
	// Parameter validation.
	if _, err := FaultSchedule(g, 0, 10, 500, 1); err == nil {
		t.Fatal("mtbf=0 accepted")
	}
	if _, err := FaultSchedule(g, 50, -1, 500, 1); err == nil {
		t.Fatal("negative mttr accepted")
	}
	if _, err := FaultSchedule(g, 50, 10, 0, 1); err == nil {
		t.Fatal("zero horizon accepted")
	}
}
