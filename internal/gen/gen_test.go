package gen

import (
	"math/rand"
	"testing"

	"wavedag/internal/conflict"
	"wavedag/internal/cycles"
	"wavedag/internal/dag"
	"wavedag/internal/digraph"
	"wavedag/internal/load"
	"wavedag/internal/upp"
)

func TestFig1Staircase(t *testing.T) {
	for k := 2; k <= 7; k++ {
		g, fam, err := Fig1Staircase(k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !dag.IsDAG(g) {
			t.Fatalf("k=%d: staircase is not a DAG", k)
		}
		if err := fam.Validate(g); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(fam) != k {
			t.Fatalf("k=%d: family size %d", k, len(fam))
		}
		if pi := load.Pi(g, fam); pi != 2 {
			t.Fatalf("k=%d: π = %d, want 2", k, pi)
		}
		cg := conflict.FromFamily(g, fam)
		if !cg.IsComplete() {
			t.Fatalf("k=%d: conflict graph is not complete", k)
		}
		if chi := cg.ChromaticNumber(); chi != k {
			t.Fatalf("k=%d: w = %d, want %d", k, chi, k)
		}
	}
}

func TestFig1StaircaseRejectsSmallK(t *testing.T) {
	if _, _, err := Fig1Staircase(1); err == nil {
		t.Fatal("k=1 accepted")
	}
}

func TestFig3Instance(t *testing.T) {
	g, fam := Fig3()
	if !dag.IsDAG(g) {
		t.Fatal("not a DAG")
	}
	if err := fam.Validate(g); err != nil {
		t.Fatal(err)
	}
	if pi := load.Pi(g, fam); pi != 2 {
		t.Fatalf("π = %d, want 2", pi)
	}
	if !cycles.HasInternalCycle(g) || cycles.IndependentCycleCount(g) != 1 {
		t.Fatal("Figure 3 graph must have exactly one internal cycle")
	}
	cg := conflict.FromFamily(g, fam)
	if !cg.IsCycle() || cg.N() != 5 {
		t.Fatal("conflict graph must be C5")
	}
	if chi := cg.ChromaticNumber(); chi != 3 {
		t.Fatalf("w = %d, want 3", chi)
	}
}

func TestInternalCycleGadget(t *testing.T) {
	for k := 2; k <= 8; k++ {
		g, fam, err := InternalCycleGadget(k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if !dag.IsDAG(g) {
			t.Fatalf("k=%d: not a DAG", k)
		}
		if err := fam.Validate(g); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if len(fam) != 2*k+1 {
			t.Fatalf("k=%d: family size %d, want %d", k, len(fam), 2*k+1)
		}
		if pi := load.Pi(g, fam); pi != 2 {
			t.Fatalf("k=%d: π = %d, want 2", k, pi)
		}
		// UPP with exactly one internal cycle of length 2k.
		if ok, u, v, _ := upp.IsUPP(g); !ok {
			t.Fatalf("k=%d: gadget not UPP (witness %d,%d)", k, u, v)
		}
		if got := cycles.IndependentCycleCount(g); got != 1 {
			t.Fatalf("k=%d: internal cycle count = %d", k, got)
		}
		cg := conflict.FromFamily(g, fam)
		if !cg.IsCycle() {
			t.Fatalf("k=%d: conflict graph not a cycle (m=%d, n=%d)", k, cg.NumEdges(), cg.N())
		}
		if chi := cg.ChromaticNumber(); chi != 3 {
			t.Fatalf("k=%d: w = %d, want 3 (odd conflict cycle)", k, chi)
		}
	}
	if _, _, err := InternalCycleGadget(1); err == nil {
		t.Fatal("k=1 accepted")
	}
}

func TestHavetInstance(t *testing.T) {
	g, fam := Havet()
	if !dag.IsDAG(g) {
		t.Fatal("not a DAG")
	}
	if err := fam.Validate(g); err != nil {
		t.Fatal(err)
	}
	if ok, _, _, _ := upp.IsUPP(g); !ok {
		t.Fatal("Havet graph must be UPP")
	}
	if got := cycles.IndependentCycleCount(g); got != 1 {
		t.Fatalf("internal cycle count = %d, want 1", got)
	}
	if pi := load.Pi(g, fam); pi != 2 {
		t.Fatalf("π = %d, want 2", pi)
	}
	cg := conflict.FromFamily(g, fam)
	if cg.N() != 8 || cg.NumEdges() != 12 {
		t.Fatalf("conflict graph n=%d m=%d, want 8,12", cg.N(), cg.NumEdges())
	}
	if alpha := cg.IndependenceNumber(); alpha != 3 {
		t.Fatalf("α = %d, want 3", alpha)
	}
	if chi := cg.ChromaticNumber(); chi != 3 {
		t.Fatalf("w = %d, want 3", chi)
	}
	// Degree sequence of C8 + antipodal chords: 3-regular.
	for v := 0; v < cg.N(); v++ {
		if cg.Degree(v) != 3 {
			t.Fatalf("conflict graph not 3-regular at %d", v)
		}
	}
}

// Theorem 7: replicating the Havet family h times gives π = 2h and
// w = ⌈8h/3⌉ (checked exactly for small h via the exact solver).
func TestHavetReplicationRatio(t *testing.T) {
	g, fam := Havet()
	for h := 1; h <= 3; h++ {
		rep := fam.Replicate(h)
		pi := load.Pi(g, rep)
		if pi != 2*h {
			t.Fatalf("h=%d: π = %d, want %d", h, pi, 2*h)
		}
		cg := conflict.FromFamily(g, rep)
		chi := cg.ChromaticNumber()
		want := (8*h + 2) / 3
		if chi != want {
			t.Fatalf("h=%d: w = %d, want ⌈8h/3⌉ = %d", h, chi, want)
		}
	}
}

func TestDisjointUnion(t *testing.T) {
	g1, f1 := Fig3()
	g2, f2 := Havet()
	g, f := DisjointUnion(Instance{g1, f1}, Instance{g2, f2})
	if g.NumVertices() != g1.NumVertices()+g2.NumVertices() {
		t.Fatal("vertex count wrong")
	}
	if g.NumArcs() != g1.NumArcs()+g2.NumArcs() {
		t.Fatal("arc count wrong")
	}
	if len(f) != len(f1)+len(f2) {
		t.Fatal("family size wrong")
	}
	if err := f.Validate(g); err != nil {
		t.Fatal(err)
	}
	if got := cycles.IndependentCycleCount(g); got != 2 {
		t.Fatalf("cycle count = %d, want 2", got)
	}
	if pi := load.Pi(g, f); pi != 2 {
		t.Fatalf("π = %d, want 2", pi)
	}
}

func TestRandomDAG(t *testing.T) {
	g := RandomDAG(20, 40, 1)
	if !dag.IsDAG(g) {
		t.Fatal("RandomDAG returned a cyclic digraph")
	}
	if g.NumVertices() != 20 || g.NumArcs() != 40 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumArcs())
	}
	// Determinism.
	h := RandomDAG(20, 40, 1)
	if !digraph.Equal(g, h) {
		t.Fatal("RandomDAG not deterministic")
	}
	// Saturation: more arcs than possible.
	tiny := RandomDAG(3, 100, 2)
	if tiny.NumArcs() != 3 {
		t.Fatalf("saturated graph has %d arcs, want 3", tiny.NumArcs())
	}
	if RandomDAG(1, 5, 3).NumArcs() != 0 {
		t.Fatal("single-vertex graph must have no arcs")
	}
}

func TestRandomNoInternalCycleDAG(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		g, err := RandomNoInternalCycleDAG(12, 3, 3, 0.3, seed)
		if err != nil {
			t.Fatal(err)
		}
		if !dag.IsDAG(g) {
			t.Fatalf("seed %d: cyclic", seed)
		}
		if cycles.HasInternalCycle(g) {
			t.Fatalf("seed %d: internal cycle present", seed)
		}
		// Internal vertices really are internal.
		for v := 0; v < 12; v++ {
			u := digraph.Vertex(v)
			if g.InDegree(u) == 0 || g.OutDegree(u) == 0 {
				t.Fatalf("seed %d: designated internal vertex %d is a source or sink", seed, v)
			}
		}
	}
	if _, err := RandomNoInternalCycleDAG(5, 0, 1, 0.1, 1); err == nil {
		t.Fatal("zero sources accepted")
	}
}

func TestRandomUPPDAG(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := RandomUPPDAG(15, 60, seed)
		if !dag.IsDAG(g) {
			t.Fatalf("seed %d: cyclic", seed)
		}
		if ok, u, v, err := upp.IsUPP(g); err != nil || !ok {
			t.Fatalf("seed %d: not UPP (witness %d,%d, err %v)", seed, u, v, err)
		}
	}
	if RandomUPPDAG(1, 10, 0).NumArcs() != 0 {
		t.Fatal("tiny UPP graph should be empty")
	}
}

func TestRandomArborescence(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := RandomArborescence(17, seed)
		root, ok := dag.IsArborescence(g)
		if !ok || root != 0 {
			t.Fatalf("seed %d: not an arborescence rooted at 0", seed)
		}
		// Arborescences are UPP and have no cycle at all.
		if ok, _, _, _ := upp.IsUPP(g); !ok {
			t.Fatalf("seed %d: arborescence not UPP", seed)
		}
		if cycles.HasInternalCycle(g) {
			t.Fatalf("seed %d: arborescence has an internal cycle", seed)
		}
	}
}

func TestLayeredDAG(t *testing.T) {
	g := LayeredDAG(4, 3, 0.7, 5)
	if !dag.IsDAG(g) {
		t.Fatal("layered graph cyclic")
	}
	if g.NumVertices() != 12 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// All arcs go between consecutive layers.
	for _, a := range g.Arcs() {
		if int(a.Head)/3-int(a.Tail)/3 != 1 {
			t.Fatalf("arc %v skips layers", a)
		}
	}
}

func TestRandomWalkFamily(t *testing.T) {
	g := RandomDAG(25, 60, 9)
	fam := RandomWalkFamily(g, 30, 6, 10)
	if err := fam.Validate(g); err != nil {
		t.Fatal(err)
	}
	for _, p := range fam {
		if p.NumArcs() < 1 || p.NumArcs() > 6 {
			t.Fatalf("walk length %d out of [1,6]", p.NumArcs())
		}
	}
	if len(RandomWalkFamily(digraph.New(0), 5, 3, 1)) != 0 {
		t.Fatal("empty graph should yield empty family")
	}
	if len(RandomWalkFamily(g, 5, 0, 1)) != 0 {
		t.Fatal("maxLen 0 should yield empty family")
	}
}

func TestAllSourceSinkFamily(t *testing.T) {
	g, _, err := InternalCycleGadget(3)
	if err != nil {
		t.Fatal(err)
	}
	fam, err := AllSourceSinkFamily(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := fam.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Each a_i reaches d_i and d_{i-1}: 2 per source, 3 sources... k=3:
	// sources a1..a3, sinks d1..d3, each a_i reaches exactly {d_i, d_i-1}.
	if len(fam) != 6 {
		t.Fatalf("family size = %d, want 6", len(fam))
	}
	// Non-UPP graph is rejected.
	d := digraph.New(4)
	d.MustAddArc(0, 1)
	d.MustAddArc(0, 2)
	d.MustAddArc(1, 3)
	d.MustAddArc(2, 3)
	if _, err := AllSourceSinkFamily(d); err == nil {
		t.Fatal("non-UPP graph accepted")
	}
}

func TestSubpathFamily(t *testing.T) {
	g := RandomDAG(20, 50, 4)
	fam, err := SubpathFamily(g, 25, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := fam.Validate(g); err != nil {
		t.Fatal(err)
	}
	for _, p := range fam {
		if p.NumArcs() < 1 {
			t.Fatal("zero-arc subpath produced")
		}
	}
	cyc := digraph.New(2)
	cyc.MustAddArc(0, 1)
	cyc.MustAddArc(1, 0)
	if _, err := SubpathFamily(cyc, 5, 1); err == nil {
		t.Fatal("cyclic graph accepted")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	_ = rng
	a := RandomUPPDAG(12, 40, 7)
	b := RandomUPPDAG(12, 40, 7)
	if !digraph.Equal(a, b) {
		t.Fatal("RandomUPPDAG not deterministic")
	}
	c, _ := RandomNoInternalCycleDAG(8, 2, 2, 0.2, 7)
	d, _ := RandomNoInternalCycleDAG(8, 2, 2, 0.2, 7)
	if !digraph.Equal(c, d) {
		t.Fatal("RandomNoInternalCycleDAG not deterministic")
	}
}

func TestGlueChain(t *testing.T) {
	parts := make([]*digraph.Digraph, 4)
	total := 0
	for i := range parts {
		g, err := RandomNoInternalCycleDAG(10, 2, 2, 0.25, int64(60+i))
		if err != nil {
			t.Fatal(err)
		}
		parts[i] = g
		total += g.NumVertices()
	}
	g, partVerts, err := GlueChain(parts...)
	if err != nil {
		t.Fatal(err)
	}
	// Three glue points merge one vertex pair each.
	if got, want := g.NumVertices(), total-(len(parts)-1); got != want {
		t.Fatalf("glued graph has %d vertices, want %d", got, want)
	}
	// One weakly connected component: the layout PartitionComponents
	// cannot split...
	labels := g.ComponentLabels()
	for _, l := range labels {
		if l != 0 {
			t.Fatal("glued graph is not weakly connected")
		}
	}
	// ...but PartitionRegions can: at least one region per part, and no
	// region spans two non-adjacent parts.
	regions := g.PartitionRegions()
	if regions.NumRegions() < len(parts) {
		t.Fatalf("only %d regions for %d glued parts", regions.NumRegions(), len(parts))
	}
	// The glued graph must stay a DAG.
	if _, err := dag.TopoSort(g); err != nil {
		t.Fatalf("glued graph is not a DAG: %v", err)
	}
	// Part vertex lists translate faithfully: every part arc exists
	// between the translated endpoints.
	for i, part := range parts {
		for _, a := range part.Arcs() {
			if _, ok := g.ArcBetween(partVerts[i][a.Tail], partVerts[i][a.Head]); !ok {
				t.Fatalf("part %d arc %d->%d missing after gluing", i, a.Tail, a.Head)
			}
		}
	}
	// Vertices of non-adjacent parts never share a region.
	if _, _, _, ok := regions.CommonRegion(partVerts[0][0], partVerts[3][0]); ok {
		t.Fatal("vertices of parts 0 and 3 share a region")
	}
}

func TestLocalityRequestPoolEmpty(t *testing.T) {
	// A graph with no routable pairs yields an empty pool, not a panic.
	if pool := LocalityRequestPool(digraph.New(5), nil, 0.9, 10, 1); len(pool) != 0 {
		t.Fatalf("pool over an arcless graph has %d entries", len(pool))
	}
}

// TestHotspotRequestPool checks the overload generator: all entries are
// routable, roughly hotFrac of them live inside the hot set, and the
// hot set's pairs do concentrate load on a few arcs relative to the
// uniform pool.
func TestHotspotRequestPool(t *testing.T) {
	g, err := RandomNoInternalCycleDAG(40, 6, 6, 0.2, 81)
	if err != nil {
		t.Fatal(err)
	}
	const size = 2000
	pool := HotspotRequestPool(g, 6, 0.8, size, 82)
	if len(pool) != size {
		t.Fatalf("pool has %d entries, want %d", len(pool), size)
	}
	// Every pair must be routable.
	reach := func(src, dst digraph.Vertex) bool {
		seen := make([]bool, g.NumVertices())
		queue := []digraph.Vertex{src}
		seen[src] = true
		for head := 0; head < len(queue); head++ {
			if queue[head] == dst {
				return true
			}
			for _, a := range g.OutArcs(queue[head]) {
				if h := g.Arc(a).Head; !seen[h] {
					seen[h] = true
					queue = append(queue, h)
				}
			}
		}
		return false
	}
	for i, p := range pool {
		if p[0] == p[1] || !reach(p[0], p[1]) {
			t.Fatalf("entry %d: pair %v not routable", i, p)
		}
	}
	// Concentration: the most frequent (src, dst) pair must appear far
	// more often than under the uniform pool (hot pairs are drawn from a
	// tiny candidate set).
	count := make(map[[2]digraph.Vertex]int)
	for _, p := range pool {
		count[p]++
	}
	maxHot := 0
	for _, c := range count {
		if c > maxHot {
			maxHot = c
		}
	}
	uniform := HotspotRequestPool(g, 6, 0, size, 83)
	countU := make(map[[2]digraph.Vertex]int)
	for _, p := range uniform {
		countU[p]++
	}
	maxU := 0
	for _, c := range countU {
		if c > maxU {
			maxU = c
		}
	}
	if maxHot < 2*maxU {
		t.Fatalf("hot pool does not concentrate: max pair count %d (hot) vs %d (uniform)", maxHot, maxU)
	}
	// Degenerate graphs yield an empty pool, not a panic.
	if p := HotspotRequestPool(digraph.New(5), 3, 0.8, 10, 84); len(p) != 0 {
		t.Fatalf("pool over an arcless graph has %d entries", len(p))
	}
}

// TestDriftingHotspotRequestPool checks the moving-hotspot generator:
// all entries are routable, and the hot endpoint window actually drifts
// — consecutive periods concentrate on different vertex windows.
func TestDriftingHotspotRequestPool(t *testing.T) {
	g, err := RandomNoInternalCycleDAG(40, 6, 6, 0.2, 91)
	if err != nil {
		t.Fatal(err)
	}
	const size, k, hotCount = 4000, 500, 8
	pool := DriftingHotspotRequestPool(g, hotCount, 0.9, size, k, 92)
	if len(pool) != size {
		t.Fatalf("pool has %d entries, want %d", len(pool), size)
	}
	reach := func(src, dst digraph.Vertex) bool {
		seen := make([]bool, g.NumVertices())
		queue := []digraph.Vertex{src}
		seen[src] = true
		for head := 0; head < len(queue); head++ {
			if queue[head] == dst {
				return true
			}
			for _, a := range g.OutArcs(queue[head]) {
				if h := g.Arc(a).Head; !seen[h] {
					seen[h] = true
					queue = append(queue, h)
				}
			}
		}
		return false
	}
	for i, p := range pool {
		if p[0] == p[1] || !reach(p[0], p[1]) {
			t.Fatalf("entry %d: pair %v not routable", i, p)
		}
	}
	// Drift: each period's window holds hotCount consecutive vertex ids,
	// so the per-period set of endpoints inside the period's window must
	// change as the window slides. Compare the in-window hit counts of
	// period 0's window across periods: it should dominate in period 0
	// and fade once the window has moved past it.
	n := g.NumVertices()
	inWin := func(v digraph.Vertex, start int) bool {
		return (int(v)-start+n)%n < hotCount
	}
	hits := func(period, start int) int {
		c := 0
		for _, p := range pool[period*k : (period+1)*k] {
			if inWin(p[0], start) && inWin(p[1], start) {
				c++
			}
		}
		return c
	}
	if h0, h2 := hits(0, 0), hits(2, 0); h0 < 2*h2+1 {
		t.Fatalf("hotspot did not drift: window-0 hits %d in period 0 vs %d in period 2", h0, h2)
	}
	if h2 := hits(2, (2*hotCount)%n); h2 < k/4 {
		t.Fatalf("period 2 does not concentrate on its own window: %d/%d hits", h2, k)
	}
	// k <= 0 pins the hotspot; degenerate graphs yield an empty pool.
	pinned := DriftingHotspotRequestPool(g, hotCount, 0.9, 1000, 0, 93)
	if len(pinned) != 1000 {
		t.Fatalf("pinned pool has %d entries", len(pinned))
	}
	if p := DriftingHotspotRequestPool(digraph.New(5), 3, 0.8, 10, 4, 94); len(p) != 0 {
		t.Fatalf("pool over an arcless graph has %d entries", len(p))
	}
}
