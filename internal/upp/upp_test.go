package upp

import (
	"testing"

	"wavedag/internal/conflict"
	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/load"
)

// line returns 0->1->2->3 (UPP: a path graph).
func line() *digraph.Digraph {
	g := digraph.New(4)
	for i := 0; i < 3; i++ {
		g.MustAddArc(digraph.Vertex(i), digraph.Vertex(i+1))
	}
	return g
}

// diamond is the canonical non-UPP DAG: two dipaths 0->1->3 and 0->2->3.
func diamond() *digraph.Digraph {
	g := digraph.New(4)
	g.MustAddArc(0, 1)
	g.MustAddArc(0, 2)
	g.MustAddArc(1, 3)
	g.MustAddArc(2, 3)
	return g
}

// fig9 builds the UPP-DAG of Figure 9 (Havet's example): two 4-vertex
// chains a_i->b_i->c_i->d_i sharing the middle via cross arcs b1->c2 and
// b2->c1, with extra endpoints a1',a2',d1',d2' so the 8 dipaths below are
// routable. Layout (12 vertices):
//
//	0=a1 1=b1 2=c1 3=d1 4=a2 5=b2 6=c2 7=d2 8=a1' 9=a2' 10=d1' 11=d2'
//
// Arcs: a1->b1, b1->c1, c1->d1, a2->b2, b2->c2, c2->d2, b1->c2, b2->c1,
// a1'->b1, a2'->b2, c1->d1', c2->d2'.
func fig9() *digraph.Digraph {
	g := digraph.New(12)
	g.MustAddArc(0, 1)  // a1 b1
	g.MustAddArc(1, 2)  // b1 c1
	g.MustAddArc(2, 3)  // c1 d1
	g.MustAddArc(4, 5)  // a2 b2
	g.MustAddArc(5, 6)  // b2 c2
	g.MustAddArc(6, 7)  // c2 d2
	g.MustAddArc(1, 6)  // b1 c2
	g.MustAddArc(5, 2)  // b2 c1
	g.MustAddArc(8, 1)  // a1' b1
	g.MustAddArc(9, 5)  // a2' b2
	g.MustAddArc(2, 10) // c1 d1'
	g.MustAddArc(6, 11) // c2 d2'
	return g
}

// fig9Family returns the 8 dipaths of Figure 9 whose conflict graph is C8
// plus antipodal chords (the Wagner graph V8). The d-side primes are
// rotated relative to the a-side primes — the straight pairing (primed
// start with primed end everywhere) would give the bipartite cube graph
// with χ = 2 instead of the paper's χ = 3.
func fig9Family(g *digraph.Digraph) dipath.Family {
	return dipath.Family{
		dipath.MustFromVertices(g, 0, 1, 2, 10), // a1  b1 c1 d1'
		dipath.MustFromVertices(g, 0, 1, 6, 7),  // a1  b1 c2 d2
		dipath.MustFromVertices(g, 4, 5, 6, 7),  // a2  b2 c2 d2
		dipath.MustFromVertices(g, 4, 5, 2, 3),  // a2  b2 c1 d1
		dipath.MustFromVertices(g, 8, 1, 2, 3),  // a1' b1 c1 d1
		dipath.MustFromVertices(g, 8, 1, 6, 11), // a1' b1 c2 d2'
		dipath.MustFromVertices(g, 9, 5, 6, 11), // a2' b2 c2 d2'
		dipath.MustFromVertices(g, 9, 5, 2, 10), // a2' b2 c1 d1'
	}
}

func TestPathCountsLine(t *testing.T) {
	counts, err := PathCounts(line())
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			want := uint8(0)
			if u <= v {
				want = 1
			}
			if counts[u][v] != want {
				t.Fatalf("counts[%d][%d] = %d, want %d", u, v, counts[u][v], want)
			}
		}
	}
}

func TestPathCountsDiamondSaturates(t *testing.T) {
	counts, err := PathCounts(diamond())
	if err != nil {
		t.Fatal(err)
	}
	if counts[0][3] != 2 {
		t.Fatalf("counts[0][3] = %d, want 2 (saturated)", counts[0][3])
	}
}

func TestPathCountsRejectsCycle(t *testing.T) {
	g := digraph.New(2)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 0)
	if _, err := PathCounts(g); err == nil {
		t.Fatal("cycle accepted")
	}
	if _, _, _, err := IsUPP(g); err == nil {
		t.Fatal("IsUPP accepted a cycle")
	}
	if _, err := NewRouter(g); err == nil {
		t.Fatal("NewRouter accepted a cycle")
	}
}

func TestIsUPP(t *testing.T) {
	if ok, _, _, err := IsUPP(line()); err != nil || !ok {
		t.Fatalf("line should be UPP: %v %v", ok, err)
	}
	ok, u, v, err := IsUPP(diamond())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("diamond is not UPP")
	}
	if u != 0 || v != 3 {
		t.Fatalf("witness = (%d,%d), want (0,3)", u, v)
	}
	if ok, _, _, _ := IsUPP(fig9()); !ok {
		t.Fatal("Figure 9 graph must be UPP")
	}
}

func TestRouter(t *testing.T) {
	r, err := NewRouter(fig9())
	if err != nil {
		t.Fatal(err)
	}
	p, ok := r.Route(0, 7) // a1 -> d2 via b1, c2
	if !ok {
		t.Fatal("route a1->d2 not found")
	}
	want := []digraph.Vertex{0, 1, 6, 7}
	if p.NumVertices() != 4 {
		t.Fatalf("route = %v", p)
	}
	for i, v := range want {
		if p.Vertex(i) != v {
			t.Fatalf("route = %v, want %v", p, want)
		}
	}
	if _, ok := r.Route(3, 0); ok {
		t.Fatal("backwards route found")
	}
	if _, ok := r.Route(-1, 2); ok {
		t.Fatal("invalid vertex routed")
	}
	self, ok := r.Route(2, 2)
	if !ok || self.NumArcs() != 0 {
		t.Fatal("self route should be the single-vertex path")
	}
}

func TestNewRouterRejectsNonUPP(t *testing.T) {
	if _, err := NewRouter(diamond()); err == nil {
		t.Fatal("diamond accepted by NewRouter")
	}
}

func TestAllPairsFamily(t *testing.T) {
	r, err := NewRouter(line())
	if err != nil {
		t.Fatal(err)
	}
	f := r.AllPairsFamily()
	// Pairs (u,v) with u<v on a 4-path: 6 dipaths.
	if len(f) != 6 {
		t.Fatalf("all-pairs family size = %d, want 6", len(f))
	}
	g := line()
	if err := f.Validate(g); err != nil {
		t.Fatal(err)
	}
	// Load of arc 1->2 is 1*... pairs crossing it: u in {0,1}, v in {2,3} = 4.
	if pi := load.Pi(g, f); pi != 4 {
		t.Fatalf("π(all-pairs on P4) = %d, want 4", pi)
	}
}

// Property 3: on the Figure 9 UPP instance the load equals the clique
// number of the conflict graph.
func TestLoadEqualsCliqueOnFig9(t *testing.T) {
	g := fig9()
	f := fig9Family(g)
	if err := f.Validate(g); err != nil {
		t.Fatal(err)
	}
	pi := load.Pi(g, f)
	cg := conflict.FromFamily(g, f)
	if om := cg.CliqueNumber(); om != pi {
		t.Fatalf("π = %d but ω = %d; Property 3 violated", pi, om)
	}
	if pi != 2 {
		t.Fatalf("π(fig9) = %d, want 2", pi)
	}
}

func TestFig9ConflictGraphShape(t *testing.T) {
	g := fig9()
	f := fig9Family(g)
	cg := conflict.FromFamily(g, f)
	if cg.N() != 8 || cg.NumEdges() != 12 {
		t.Fatalf("conflict graph n=%d m=%d, want 8 and 12 (C8 + 4 chords)", cg.N(), cg.NumEdges())
	}
	if got := cg.IndependenceNumber(); got != 3 {
		t.Fatalf("α = %d, want 3", got)
	}
	if got := cg.ChromaticNumber(); got != 3 {
		t.Fatalf("χ = %d, want 3 (w = 3 with π = 2)", got)
	}
	// Corollary 5: no K_{2,3}.
	if _, _, ok := cg.FindK23(); ok {
		t.Fatal("K_{2,3} found in an UPP conflict graph")
	}
}

func TestHellyIntersection(t *testing.T) {
	g := line()
	p1 := dipath.MustFromVertices(g, 0, 1, 2)
	p2 := dipath.MustFromVertices(g, 1, 2, 3)
	p3 := dipath.MustFromVertices(g, 0, 1, 2, 3)
	common, err := HellyIntersection(g, []*dipath.Path{p1, p2, p3})
	if err != nil {
		t.Fatal(err)
	}
	if len(common) != 1 || common[0] != 1 {
		t.Fatalf("common = %v, want [1]", common)
	}
	// Non-conflicting pair is rejected.
	q := dipath.MustFromVertices(g, 2, 3)
	if _, err := HellyIntersection(g, []*dipath.Path{p1, q}); err == nil {
		t.Fatal("non-conflicting pair accepted")
	}
	if _, err := HellyIntersection(g, nil); err == nil {
		t.Fatal("empty set accepted")
	}
}

func TestHellyViolationDetected(t *testing.T) {
	// In a non-UPP graph three paths can pairwise intersect with empty
	// common intersection. Build a theta-like DAG:
	// 0->1->2->3->4 with chords 1->3' path... use two parallel routes.
	g := digraph.New(6)
	g.MustAddArc(0, 1)                           // e0
	g.MustAddArc(1, 2)                           // e1
	g.MustAddArc(2, 3)                           // e2
	g.MustAddArc(3, 4)                           // e3
	g.MustAddArc(1, 3)                           // e4 (chord, second b->d route)
	g.MustAddArc(4, 5)                           // e5
	pA := dipath.MustFromVertices(g, 0, 1, 2)    // e0 e1
	pB := dipath.MustFromVertices(g, 1, 2, 3, 4) // e1 e2 e3
	pC := dipath.MustFromVertices(g, 0, 1, 3, 4) // e0 e4 e3 — meets pA on e0, pB on e3
	for _, pair := range [][2]*dipath.Path{{pA, pB}, {pA, pC}, {pB, pC}} {
		if !pair[0].SharesArc(pair[1]) {
			t.Fatal("test construction broken: paths must pairwise conflict")
		}
	}
	if _, err := HellyIntersection(g, []*dipath.Path{pA, pB, pC}); err == nil {
		t.Fatal("Helly violation not detected in non-UPP instance")
	}
}

func TestVerifyHellyPropertyFig9(t *testing.T) {
	g := fig9()
	f := fig9Family(g)
	// π = 2 on Figure 9, so by Property 3 there is no pairwise-conflicting
	// triple at all: the verification must pass vacuously.
	checked, err := VerifyHellyProperty(g, f)
	if err != nil {
		t.Fatalf("Helly property violated on Figure 9: %v", err)
	}
	if checked != 0 {
		t.Fatalf("π=2 family cannot have conflicting triples, checked=%d", checked)
	}
	// Replicating the family twice creates genuine triples (two copies of
	// one path plus a conflicting neighbour); Helly must still hold.
	rep := f.Replicate(2)
	checked, err = VerifyHellyProperty(g, rep)
	if err != nil {
		t.Fatalf("Helly property violated on replicated Figure 9: %v", err)
	}
	if checked == 0 {
		t.Fatal("replicated family must contain conflicting triples")
	}
}

func TestVerifyHellyPropertyLine(t *testing.T) {
	g := line()
	f := dipath.Family{
		dipath.MustFromVertices(g, 0, 1, 2),
		dipath.MustFromVertices(g, 0, 1, 2, 3),
		dipath.MustFromVertices(g, 1, 2, 3),
	}
	checked, err := VerifyHellyProperty(g, f)
	if err != nil {
		t.Fatalf("Helly violated on a path graph: %v", err)
	}
	if checked != 1 {
		t.Fatalf("checked = %d, want 1 triple", checked)
	}
}

func TestCheckCrossing(t *testing.T) {
	// Figure 8's legal configuration: build a small UPP grid-like DAG.
	// P1: 0->1->2, P2: 3->4->5 (disjoint).
	// Q1 meets P1 then P2; Q2 meets P1 after Q1 and P2 before Q1.
	g := digraph.New(10)
	g.MustAddArc(0, 1) // P1 arc 0
	g.MustAddArc(1, 2) // P1 arc 1
	g.MustAddArc(3, 4) // P2 arc 2
	g.MustAddArc(4, 5) // P2 arc 3
	// Q1: 6->0->1->... must share arcs. Simplest: let Q1 traverse P1's
	// first arc then jump to P2's second arc via a connector.
	g.MustAddArc(1, 4)                           // connector arc 4
	q1 := dipath.MustFromVertices(g, 0, 1, 4, 5) // shares arc0 with P1, arc3 with P2
	g.MustAddArc(2, 3)                           // connector arc 5
	q2 := dipath.MustFromVertices(g, 1, 2, 3, 4) // shares arc1 with P1, arc2 with P2
	p1 := dipath.MustFromVertices(g, 0, 1, 2)
	p2 := dipath.MustFromVertices(g, 3, 4, 5)
	if err := CheckCrossing(g, p1, p2, q1, q2); err != nil {
		t.Fatalf("legal crossing flagged: %v", err)
	}
	// Violation: same meeting order on both paths.
	gBad := digraph.New(8)
	gBad.MustAddArc(0, 1)                            // P1 a0
	gBad.MustAddArc(1, 2)                            // P1 a1
	gBad.MustAddArc(3, 4)                            // P2 a2
	gBad.MustAddArc(4, 5)                            // P2 a3
	gBad.MustAddArc(1, 3)                            // connector
	q1b := dipath.MustFromVertices(gBad, 0, 1, 3, 4) // a0 then a2
	gBad.MustAddArc(2, 4)                            // connector
	q2b := dipath.MustFromVertices(gBad, 1, 2, 4, 5) // a1 then a3
	p1b := dipath.MustFromVertices(gBad, 0, 1, 2)
	p2b := dipath.MustFromVertices(gBad, 3, 4, 5)
	if err := CheckCrossing(gBad, p1b, p2b, q1b, q2b); err == nil {
		t.Fatal("crossing-lemma violation not detected")
	}
	// Precondition failures.
	if err := CheckCrossing(g, p1, p1, q1, q2); err == nil {
		t.Fatal("non-disjoint P1,P2 accepted")
	}
	if err := CheckCrossing(g, p1, p2, q1, q1); err == nil {
		t.Fatal("non-disjoint Q1,Q2 accepted")
	}
	short := dipath.MustFromVertices(g, 6)
	if err := CheckCrossing(g, p1, p2, q1, short); err == nil {
		t.Fatal("non-intersecting quadruple accepted")
	}
}
