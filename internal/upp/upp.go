// Package upp implements the Unique diPath Property machinery of §4 of
// Bermond & Cosnard (IPDPS 2007). A DAG is an UPP-DAG when between any
// ordered pair of vertices there is at most one dipath. For UPP-DAGs the
// paper proves the Helly property of dipath conflicts (Property 3), from
// which the load equals the clique number of the conflict graph, and the
// crossing lemma (Lemma 4) that forbids K_{2,3} in conflict graphs
// (Corollary 5).
package upp

import (
	"fmt"

	"wavedag/internal/dag"
	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
)

// PathCounts returns counts[u][v] = number of distinct dipaths from u to v
// saturated at 2 (0, 1, or 2 meaning "two or more"). counts[v][v] = 1
// (the empty dipath). Saturation keeps the DP overflow-free on dense DAGs.
func PathCounts(g *digraph.Digraph) ([][]uint8, error) {
	order, err := dag.TopoSort(g)
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()
	counts := make([][]uint8, n)
	for i := range counts {
		counts[i] = make([]uint8, n)
	}
	// Process targets in reverse topological order: counts[u][v] =
	// Σ_{(u,x)} counts[x][v], saturating at 2.
	for i := n - 1; i >= 0; i-- {
		u := order[i]
		counts[u][u] = 1
		for _, a := range g.OutArcs(u) {
			x := g.Arc(a).Head
			for v := 0; v < n; v++ {
				if counts[x][v] == 0 {
					continue
				}
				s := counts[u][v] + counts[x][v]
				if s > 2 {
					s = 2
				}
				counts[u][v] = s
			}
		}
	}
	return counts, nil
}

// IsUPP reports whether the DAG g has the unique dipath property. When it
// does not, a witness pair (u, v) with at least two distinct dipaths is
// returned.
func IsUPP(g *digraph.Digraph) (bool, digraph.Vertex, digraph.Vertex, error) {
	counts, err := PathCounts(g)
	if err != nil {
		return false, -1, -1, err
	}
	for u := 0; u < g.NumVertices(); u++ {
		for v := 0; v < g.NumVertices(); v++ {
			if counts[u][v] >= 2 {
				return false, digraph.Vertex(u), digraph.Vertex(v), nil
			}
		}
	}
	return true, -1, -1, nil
}

// Router answers unique-dipath routing queries on an UPP-DAG. Build one
// with NewRouter; construction fails when the graph is not UPP, so every
// successful Route answer is the unique dipath for its request.
type Router struct {
	g      *digraph.Digraph
	counts [][]uint8
}

// NewRouter verifies the UPP property and returns a Router.
func NewRouter(g *digraph.Digraph) (*Router, error) {
	counts, err := PathCounts(g)
	if err != nil {
		return nil, err
	}
	for u := 0; u < g.NumVertices(); u++ {
		for v := 0; v < g.NumVertices(); v++ {
			if counts[u][v] >= 2 {
				return nil, fmt.Errorf("upp: graph is not UPP, two dipaths from %d to %d", u, v)
			}
		}
	}
	return &Router{g: g, counts: counts}, nil
}

// Route returns the unique dipath from u to v, or ok=false when v is not
// reachable from u. For u == v it returns the single-vertex path.
func (r *Router) Route(u, v digraph.Vertex) (*dipath.Path, bool) {
	n := r.g.NumVertices()
	if u < 0 || v < 0 || int(u) >= n || int(v) >= n || r.counts[u][v] == 0 {
		return nil, false
	}
	vertices := []digraph.Vertex{u}
	for cur := u; cur != v; {
		next := digraph.Vertex(-1)
		for _, a := range r.g.OutArcs(cur) {
			h := r.g.Arc(a).Head
			if r.counts[h][v] > 0 {
				next = h
				break // UPP guarantees exactly one such arc
			}
		}
		if next < 0 {
			return nil, false // unreachable despite positive count: impossible
		}
		vertices = append(vertices, next)
		cur = next
	}
	p, err := dipath.FromVertices(r.g, vertices...)
	if err != nil {
		return nil, false
	}
	return p, true
}

// AllPairsFamily returns the family of unique dipaths for every ordered
// pair (u, v), u != v, with v reachable from u — the "all-to-all"
// instance the paper's concluding remarks discuss.
func (r *Router) AllPairsFamily() dipath.Family {
	var f dipath.Family
	n := r.g.NumVertices()
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u == v {
				continue
			}
			if p, ok := r.Route(digraph.Vertex(u), digraph.Vertex(v)); ok {
				f = append(f, p)
			}
		}
	}
	return f
}

// HellyIntersection verifies Property 3 on a concrete set of dipaths of an
// UPP-DAG: if the dipaths are pairwise in conflict (share an arc), their
// common arc intersection is non-empty and forms a dipath. It returns the
// common arcs in traversal order of the first path. An error is returned
// when the paths are pairwise intersecting yet have empty or non-path
// intersection — which would disprove UPP.
func HellyIntersection(g *digraph.Digraph, paths []*dipath.Path) ([]digraph.ArcID, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("upp: empty path set")
	}
	for i := 0; i < len(paths); i++ {
		for j := i + 1; j < len(paths); j++ {
			if !paths[i].SharesArc(paths[j]) {
				return nil, fmt.Errorf("upp: paths %d and %d are not in conflict", i, j)
			}
		}
	}
	// Intersect arc sets, preserving order along paths[0].
	common := paths[0].Arcs()
	for _, p := range paths[1:] {
		set := make(map[digraph.ArcID]bool, p.NumArcs())
		for _, a := range p.Arcs() {
			set[a] = true
		}
		var kept []digraph.ArcID
		for _, a := range common {
			if set[a] {
				kept = append(kept, a)
			}
		}
		common = kept
	}
	if len(common) == 0 {
		return nil, fmt.Errorf("upp: pairwise-conflicting paths with empty common intersection (Helly violated; graph not UPP)")
	}
	// The common arcs must be consecutive on paths[0] (they form a dipath).
	first := paths[0].ArcIndex(common[0])
	for k, a := range common {
		if paths[0].Arc(first+k) != a {
			return nil, fmt.Errorf("upp: common intersection is not contiguous (Helly violated; graph not UPP)")
		}
	}
	return common, nil
}

// VerifyHellyProperty samples every pairwise-intersecting triple of the
// family and checks HellyIntersection on it; it is the test harness for
// Property 3. Returns the number of triples checked.
func VerifyHellyProperty(g *digraph.Digraph, f dipath.Family) (int, error) {
	checked := 0
	for i := 0; i < len(f); i++ {
		for j := i + 1; j < len(f); j++ {
			if !f[i].SharesArc(f[j]) {
				continue
			}
			for k := j + 1; k < len(f); k++ {
				if !f[i].SharesArc(f[k]) || !f[j].SharesArc(f[k]) {
					continue
				}
				if _, err := HellyIntersection(g, []*dipath.Path{f[i], f[j], f[k]}); err != nil {
					return checked, fmt.Errorf("upp: triple (%d,%d,%d): %w", i, j, k, err)
				}
				checked++
			}
		}
	}
	return checked, nil
}

// CheckCrossing verifies the crossing lemma (Lemma 4) on a quadruple:
// P1, P2 arc-disjoint; Q1, Q2 arc-disjoint, each Qi intersecting both Pj.
// If Q1 meets P1 before Q2 (in P1's traversal order), then Q2 must meet
// P2 before Q1. It returns an error when the lemma is violated (i.e. the
// digraph cannot be UPP).
func CheckCrossing(g *digraph.Digraph, p1, p2, q1, q2 *dipath.Path) error {
	if p1.SharesArc(p2) {
		return fmt.Errorf("upp: P1 and P2 are not arc-disjoint")
	}
	if q1.SharesArc(q2) {
		return fmt.Errorf("upp: Q1 and Q2 are not arc-disjoint")
	}
	firstMeet := func(p, q *dipath.Path) (int, bool) {
		for i, a := range p.Arcs() {
			if q.ContainsArc(a) {
				return i, true
			}
		}
		return -1, false
	}
	q1onP1, ok1 := firstMeet(p1, q1)
	q2onP1, ok2 := firstMeet(p1, q2)
	q1onP2, ok3 := firstMeet(p2, q1)
	q2onP2, ok4 := firstMeet(p2, q2)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return fmt.Errorf("upp: each Qi must intersect both Pj")
	}
	if q1onP1 < q2onP1 && !(q2onP2 < q1onP2) {
		return fmt.Errorf("upp: crossing lemma violated (Q1 before Q2 on P1 but not Q2 before Q1 on P2)")
	}
	if q2onP1 < q1onP1 && !(q1onP2 < q2onP2) {
		return fmt.Errorf("upp: crossing lemma violated (Q2 before Q1 on P1 but not Q1 before Q2 on P2)")
	}
	return nil
}
