package load

import (
	"testing"
	"testing/quick"

	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
)

// line returns 0->1->2->3->4.
func line() *digraph.Digraph {
	g := digraph.New(5)
	for i := 0; i < 4; i++ {
		g.MustAddArc(digraph.Vertex(i), digraph.Vertex(i+1))
	}
	return g
}

func TestArcLoadsAndPi(t *testing.T) {
	g := line()
	f := dipath.Family{
		dipath.MustFromVertices(g, 0, 1, 2),
		dipath.MustFromVertices(g, 1, 2, 3),
		dipath.MustFromVertices(g, 1, 2),
	}
	loads := ArcLoads(g, f)
	want := []int{1, 3, 1, 0}
	for a, w := range want {
		if loads[a] != w {
			t.Fatalf("load[%d] = %d, want %d", a, loads[a], w)
		}
	}
	if Pi(g, f) != 3 {
		t.Fatalf("Pi = %d, want 3", Pi(g, f))
	}
}

func TestPiEmptyFamily(t *testing.T) {
	g := line()
	if Pi(g, nil) != 0 {
		t.Fatal("Pi of empty family not 0")
	}
	if Pi(digraph.New(3), nil) != 0 {
		t.Fatal("Pi of arc-less graph not 0")
	}
}

func TestSingleVertexPathsCarryNoLoad(t *testing.T) {
	g := line()
	f := dipath.Family{dipath.MustFromVertices(g, 2)}
	if Pi(g, f) != 0 {
		t.Fatal("single-vertex path carried load")
	}
}

func TestMaxLoadedArc(t *testing.T) {
	g := line()
	f := dipath.Family{
		dipath.MustFromVertices(g, 0, 1, 2),
		dipath.MustFromVertices(g, 1, 2, 3),
	}
	arc, l, ok := MaxLoadedArc(g, f)
	if !ok || arc != 1 || l != 2 {
		t.Fatalf("MaxLoadedArc = %d,%d,%v", arc, l, ok)
	}
	if _, _, ok := MaxLoadedArc(digraph.New(2), nil); ok {
		t.Fatal("MaxLoadedArc ok on arc-less graph")
	}
	// Tie broken toward the smallest id.
	f2 := dipath.Family{dipath.MustFromVertices(g, 0, 1), dipath.MustFromVertices(g, 2, 3)}
	arc2, _, _ := MaxLoadedArc(g, f2)
	if arc2 != 0 {
		t.Fatalf("tie-break arc = %d, want 0", arc2)
	}
}

func TestMaxLoadedArcAmong(t *testing.T) {
	g := line()
	f := dipath.Family{
		dipath.MustFromVertices(g, 0, 1, 2), // arcs 0,1
		dipath.MustFromVertices(g, 1, 2),    // arc 1
	}
	arc, l, err := MaxLoadedArcAmong(g, f, []digraph.ArcID{0, 2, 3})
	if err != nil || arc != 0 || l != 1 {
		t.Fatalf("MaxLoadedArcAmong = %d,%d,%v", arc, l, err)
	}
	if _, _, err := MaxLoadedArcAmong(g, f, nil); err == nil {
		t.Fatal("empty candidates accepted")
	}
	if _, _, err := MaxLoadedArcAmong(g, f, []digraph.ArcID{99}); err == nil {
		t.Fatal("out-of-range candidate accepted")
	}
}

func TestHistogram(t *testing.T) {
	g := line()
	f := dipath.Family{
		dipath.MustFromVertices(g, 0, 1, 2),
		dipath.MustFromVertices(g, 1, 2, 3),
	}
	h := Histogram(g, f)
	// loads: arc0=1, arc1=2, arc2=1, arc3=0
	want := []int{1, 2, 1}
	if len(h) != len(want) {
		t.Fatalf("histogram = %v", h)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("hist[%d] = %d, want %d", i, h[i], want[i])
		}
	}
}

func TestSummarize(t *testing.T) {
	g := line()
	f := dipath.Family{
		dipath.MustFromVertices(g, 0, 1, 2),
		dipath.MustFromVertices(g, 1, 2, 3),
	}
	p := Summarize(g, f)
	if p.Pi != 2 || p.UsedArcs != 3 || p.TotalArc != 4 {
		t.Fatalf("profile = %+v", p)
	}
	if p.Mean < 1.33 || p.Mean > 1.34 {
		t.Fatalf("mean = %v", p.Mean)
	}
	if p.Median != 1 {
		t.Fatalf("median = %d", p.Median)
	}
	empty := Summarize(g, nil)
	if empty.Pi != 0 || empty.UsedArcs != 0 || empty.Mean != 0 {
		t.Fatalf("empty profile = %+v", empty)
	}
}

// Property: replicating a family h times multiplies every arc load by h,
// hence Pi as well — the scaling used by the tightness constructions of
// Theorems 6 and 7.
func TestReplicationScalesLoad(t *testing.T) {
	g := line()
	base := dipath.Family{
		dipath.MustFromVertices(g, 0, 1, 2),
		dipath.MustFromVertices(g, 1, 2, 3),
		dipath.MustFromVertices(g, 3, 4),
	}
	f := func(hRaw uint8) bool {
		h := int(hRaw%7) + 1
		rep := base.Replicate(h)
		if Pi(g, rep) != h*Pi(g, base) {
			return false
		}
		la, lb := ArcLoads(g, base), ArcLoads(g, rep)
		for a := range la {
			if lb[a] != h*la[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
