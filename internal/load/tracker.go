package load

import (
	"fmt"

	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
)

// Tracker maintains the arc-load vector of a mutable dipath collection
// incrementally: adding or removing a dipath costs O(len(path)) instead
// of the O(|family|·len) full recomputation of ArcLoads. Selection
// searches (groom), split-arc choices (Theorem 6) and sequential routing
// all hammer on "what is the load now?" after small mutations — the
// Tracker is the shared answer.
//
// π (the maximum load) is maintained exactly on Add; Remove only marks it
// stale, and the next Pi call rescans lazily. The zero value is not
// usable; construct with NewTracker or NewTrackerFromFamily.
type Tracker struct {
	loads   []int
	pi      int
	piStale bool // a removal may have lowered the max
	total   int  // number of tracked dipaths
}

// NewTracker returns an empty tracker for the arcs of g.
func NewTracker(g *digraph.Digraph) *Tracker {
	return &Tracker{loads: make([]int, g.NumArcs())}
}

// NewTrackerFromFamily returns a tracker preloaded with every dipath of f.
func NewTrackerFromFamily(g *digraph.Digraph, f dipath.Family) *Tracker {
	t := NewTracker(g)
	for _, p := range f {
		t.Add(p)
	}
	return t
}

// Add accounts one more traversal of every arc of p.
func (t *Tracker) Add(p *dipath.Path) {
	for _, a := range p.Arcs() {
		t.loads[a]++
		if t.loads[a] > t.pi {
			t.pi = t.loads[a]
		}
	}
	t.total++
}

// Remove un-accounts p; it must have been Added before (loads never go
// negative — a mismatch panics, as it means the caller's bookkeeping is
// broken and every later answer would be wrong).
func (t *Tracker) Remove(p *dipath.Path) {
	for _, a := range p.Arcs() {
		if t.loads[a] == 0 {
			panic(fmt.Sprintf("load: Remove of untracked path over arc %d", a))
		}
		if t.loads[a] == t.pi {
			t.piStale = true
		}
		t.loads[a]--
	}
	t.total--
}

// AddArc accounts one more traversal of arc a alone. It is the unit the
// sharded engine's cross-lane reconciliation works in: a tracker
// mirroring a path owned by another lane's session bumps exactly the
// arcs it shares, while the path count stays with the owning tracker
// (NumPaths is unaffected).
func (t *Tracker) AddArc(a digraph.ArcID) {
	t.loads[a]++
	if t.loads[a] > t.pi {
		t.pi = t.loads[a]
	}
}

// RemoveArc un-accounts one traversal of arc a (see AddArc); the arc
// must currently carry load.
func (t *Tracker) RemoveArc(a digraph.ArcID) {
	if t.loads[a] == 0 {
		panic(fmt.Sprintf("load: RemoveArc of unloaded arc %d", a))
	}
	if t.loads[a] == t.pi {
		t.piStale = true
	}
	t.loads[a]--
}

// GrowArcs extends the tracker's arc space to n arcs; the new arcs
// start unloaded. It is the live-capacity hook: an engine adding a
// fiber to a running topology grows every tracker over that graph
// before any path may traverse the new arc. Shrinking is not supported;
// n at or below the current arc count is a no-op.
func (t *Tracker) GrowArcs(n int) {
	for len(t.loads) < n {
		t.loads = append(t.loads, 0)
	}
}

// Load returns the current load of arc a.
func (t *Tracker) Load(a digraph.ArcID) int { return t.loads[a] }

// FitsAdditional reports whether adding p would keep every arc it
// traverses at load at most w — the Theorem-1 admission test: on an
// internal-cycle-free DAG a family fits in w wavelengths exactly when
// its load is at most w, so a session that kept π ≤ w so far can decide
// a new request in O(len(path)) without touching any state. w <= 0
// always fits (no budget).
func (t *Tracker) FitsAdditional(p *dipath.Path, w int) bool {
	if w <= 0 {
		return true
	}
	for _, a := range p.Arcs() {
		if t.loads[a]+1 > w {
			return false
		}
	}
	return true
}

// NumPaths returns the number of dipaths currently tracked.
func (t *Tracker) NumPaths() int { return t.total }

// Pi returns the current maximum arc load. It is logically read-only:
// the write below only refreshes the lazily maintained π cache after
// removals, never the tracked loads themselves.
//
//wavedag:readonly
func (t *Tracker) Pi() int {
	if t.piStale {
		t.pi = 0
		for _, l := range t.loads {
			if l > t.pi {
				t.pi = l
			}
		}
		t.piStale = false
	}
	return t.pi
}

// Loads returns a copy of the current load vector.
func (t *Tracker) Loads() []int { return append([]int(nil), t.loads...) }

// LoadsInto copies the current load vector into dst, reusing its
// capacity (growing it only when too small), and returns the resized
// slice — the allocation-free form of Loads for callers that poll the
// vector in a loop.
func (t *Tracker) LoadsInto(dst []int) []int {
	if cap(dst) < len(t.loads) {
		dst = make([]int, len(t.loads))
	} else {
		dst = dst[:len(t.loads)]
	}
	copy(dst, t.loads)
	return dst
}

// ScatterLoads writes the tracker's per-arc loads into dst under the
// given identifier translation: dst[ids[a]] = Load(a) for every local
// arc a. Shard-local trackers over component views report into one
// global load vector this way — no per-shard copies, no intermediate
// allocation. ids must be at least as long as the tracker's arc space
// and index into dst.
func (t *Tracker) ScatterLoads(dst []int, ids []digraph.ArcID) {
	for a, l := range t.loads {
		dst[ids[a]] = l
	}
}

// MaxAmong returns the arc of maximum current load restricted to the
// candidate set, breaking ties toward the smallest identifier.
func (t *Tracker) MaxAmong(candidates []digraph.ArcID) (digraph.ArcID, int, error) {
	if len(candidates) == 0 {
		return -1, 0, fmt.Errorf("load: empty candidate set")
	}
	best, bestLoad := candidates[0], -1
	for _, a := range candidates {
		if a < 0 || int(a) >= len(t.loads) {
			return -1, 0, fmt.Errorf("load: candidate arc %d out of range", a)
		}
		if t.loads[a] > bestLoad || (t.loads[a] == bestLoad && a < best) {
			best, bestLoad = a, t.loads[a]
		}
	}
	return best, bestLoad, nil
}
