package load

import (
	"math/rand"
	"testing"

	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/gen"
)

func TestTrackerMatchesArcLoads(t *testing.T) {
	g, err := gen.RandomNoInternalCycleDAG(20, 4, 4, 0.25, 11)
	if err != nil {
		t.Fatal(err)
	}
	fam := gen.RandomWalkFamily(g, 60, 7, 12)
	tr := NewTrackerFromFamily(g, fam)
	want := ArcLoads(g, fam)
	got := tr.Loads()
	for a := range want {
		if got[a] != want[a] {
			t.Fatalf("arc %d: tracker load %d, ArcLoads %d", a, got[a], want[a])
		}
	}
	if tr.Pi() != Pi(g, fam) {
		t.Fatalf("tracker π=%d, Pi=%d", tr.Pi(), Pi(g, fam))
	}
	if tr.NumPaths() != len(fam) {
		t.Fatalf("tracker holds %d paths, want %d", tr.NumPaths(), len(fam))
	}
}

func TestTrackerAddRemoveRoundTrip(t *testing.T) {
	g, err := gen.RandomNoInternalCycleDAG(15, 3, 3, 0.3, 21)
	if err != nil {
		t.Fatal(err)
	}
	fam := gen.RandomWalkFamily(g, 40, 6, 22)
	tr := NewTracker(g)
	rng := rand.New(rand.NewSource(23))

	// Random add/remove walk; after every step the tracker must agree
	// with a recomputation from scratch over the current multiset.
	var current dipath.Family
	for step := 0; step < 200; step++ {
		if len(current) == 0 || rng.Intn(2) == 0 {
			p := fam[rng.Intn(len(fam))]
			tr.Add(p)
			current = append(current, p)
		} else {
			i := rng.Intn(len(current))
			tr.Remove(current[i])
			current[i] = current[len(current)-1]
			current = current[:len(current)-1]
		}
		if tr.Pi() != Pi(g, current) {
			t.Fatalf("step %d: tracker π=%d, recomputed %d", step, tr.Pi(), Pi(g, current))
		}
		if tr.NumPaths() != len(current) {
			t.Fatalf("step %d: tracker count %d, want %d", step, tr.NumPaths(), len(current))
		}
	}
	// Drain completely: loads must return to zero.
	for _, p := range current {
		tr.Remove(p)
	}
	for a, l := range tr.Loads() {
		if l != 0 {
			t.Fatalf("arc %d: residual load %d after drain", a, l)
		}
	}
	if tr.Pi() != 0 {
		t.Fatalf("π=%d after drain", tr.Pi())
	}
}

func TestTrackerMaxAmongMatchesMaxLoadedArcAmong(t *testing.T) {
	g, err := gen.RandomNoInternalCycleDAG(18, 3, 3, 0.3, 31)
	if err != nil {
		t.Fatal(err)
	}
	fam := gen.RandomWalkFamily(g, 50, 6, 32)
	tr := NewTrackerFromFamily(g, fam)
	candidates := g.SortedArcIDs()
	if len(candidates) > 10 {
		candidates = candidates[3:10]
	}
	wantArc, wantLoad, err := MaxLoadedArcAmong(g, fam, candidates)
	if err != nil {
		t.Fatal(err)
	}
	gotArc, gotLoad, err := tr.MaxAmong(candidates)
	if err != nil {
		t.Fatal(err)
	}
	if gotArc != wantArc || gotLoad != wantLoad {
		t.Fatalf("MaxAmong = (%d,%d), MaxLoadedArcAmong = (%d,%d)", gotArc, gotLoad, wantArc, wantLoad)
	}
	if _, _, err := tr.MaxAmong(nil); err == nil {
		t.Fatal("empty candidate set accepted")
	}
}

// TestTrackerFitsAdditional pins the Theorem-1 admission probe to the
// mutating ground truth: FitsAdditional(p, w) must agree with "Add(p),
// check π ≤ w, Remove(p)" whenever the pre-add load already fits the
// budget, and it must never mutate the tracker.
func TestTrackerFitsAdditional(t *testing.T) {
	g, err := gen.RandomNoInternalCycleDAG(15, 3, 3, 0.3, 51)
	if err != nil {
		t.Fatal(err)
	}
	fam := gen.RandomWalkFamily(g, 60, 6, 52)
	rng := rand.New(rand.NewSource(53))
	for _, w := range []int{1, 2, 3, 5} {
		tr := NewTracker(g)
		var live dipath.Family
		for step := 0; step < 150; step++ {
			p := fam[rng.Intn(len(fam))]
			before := tr.Loads()
			fits := tr.FitsAdditional(p, w)
			for a, l := range tr.Loads() {
				if l != before[a] {
					t.Fatalf("w=%d step %d: FitsAdditional mutated arc %d", w, step, a)
				}
			}
			tr.Add(p)
			if fits != (tr.Pi() <= w) {
				t.Fatalf("w=%d step %d: FitsAdditional=%v but post-add π=%d", w, step, fits, tr.Pi())
			}
			if !fits {
				tr.Remove(p) // keep the π ≤ w invariant the probe assumes
			} else {
				live = append(live, p)
			}
			if len(live) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(live))
				tr.Remove(live[i])
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
	}
	// No budget always fits.
	tr := NewTrackerFromFamily(g, fam)
	for _, p := range fam {
		if !tr.FitsAdditional(p, 0) {
			t.Fatal("w=0 (unlimited) rejected a path")
		}
	}
}

func TestTrackerRemoveUntrackedPanics(t *testing.T) {
	g, err := gen.RandomNoInternalCycleDAG(10, 2, 2, 0.3, 41)
	if err != nil {
		t.Fatal(err)
	}
	fam := gen.RandomWalkFamily(g, 5, 5, 42)
	var withArcs *dipath.Path
	for _, p := range fam {
		if p.NumArcs() > 0 {
			withArcs = p
			break
		}
	}
	if withArcs == nil {
		t.Skip("no multi-arc path generated")
	}
	tr := NewTracker(g)
	defer func() {
		if recover() == nil {
			t.Fatal("Remove of untracked path did not panic")
		}
	}()
	tr.Remove(withArcs)
}

// TestTrackerArcUnits checks the single-arc accounting the sharded
// engine's cross-lane reconciliation uses: AddArc/RemoveArc must agree
// with whole-path Add/Remove on loads and π, without touching the path
// count.
func TestTrackerArcUnits(t *testing.T) {
	g, err := gen.RandomNoInternalCycleDAG(15, 3, 3, 0.3, 5)
	if err != nil {
		t.Fatal(err)
	}
	fam := gen.RandomWalkFamily(g, 30, 6, 9)
	whole := NewTracker(g)
	arcs := NewTracker(g)
	for _, p := range fam {
		whole.Add(p)
		for _, a := range p.Arcs() {
			arcs.AddArc(a)
		}
	}
	if arcs.NumPaths() != 0 {
		t.Fatalf("AddArc moved NumPaths to %d", arcs.NumPaths())
	}
	if whole.Pi() != arcs.Pi() {
		t.Fatalf("π diverges: whole %d, per-arc %d", whole.Pi(), arcs.Pi())
	}
	for a := 0; a < g.NumArcs(); a++ {
		if whole.Load(digraph.ArcID(a)) != arcs.Load(digraph.ArcID(a)) {
			t.Fatalf("arc %d: loads diverge", a)
		}
	}
	for _, p := range fam[:len(fam)/2] {
		whole.Remove(p)
		for _, a := range p.Arcs() {
			arcs.RemoveArc(a)
		}
	}
	if whole.Pi() != arcs.Pi() {
		t.Fatalf("π diverges after removals: whole %d, per-arc %d", whole.Pi(), arcs.Pi())
	}
}
