// Package load computes arc loads of dipath families: load(e) is the
// number of dipaths traversing arc e, and π(G,P) — written Pi here — is
// the maximum load over all arcs. π is the trivial lower bound on the
// number of wavelengths w(G,P); the central question of Bermond & Cosnard
// (IPDPS 2007) is when w = π.
package load

import (
	"fmt"
	"sort"

	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
)

// ArcLoads returns load[a] for every arc identifier a of g.
func ArcLoads(g *digraph.Digraph, f dipath.Family) []int {
	loads := make([]int, g.NumArcs())
	for _, p := range f {
		for _, a := range p.Arcs() {
			loads[a]++
		}
	}
	return loads
}

// Pi returns π(G,P), the maximum arc load (0 for empty families or
// arc-less graphs).
func Pi(g *digraph.Digraph, f dipath.Family) int {
	maxLoad := 0
	for _, l := range ArcLoads(g, f) {
		if l > maxLoad {
			maxLoad = l
		}
	}
	return maxLoad
}

// MaxLoadedArc returns an arc of maximum load and that load. When several
// arcs attain the maximum the smallest identifier is returned; ok is false
// when the graph has no arcs.
func MaxLoadedArc(g *digraph.Digraph, f dipath.Family) (arc digraph.ArcID, load int, ok bool) {
	loads := ArcLoads(g, f)
	if len(loads) == 0 {
		return -1, 0, false
	}
	arc, load = 0, loads[0]
	for a := 1; a < len(loads); a++ {
		if loads[a] > load {
			arc, load = digraph.ArcID(a), loads[a]
		}
	}
	return arc, load, true
}

// MaxLoadedArcAmong returns the arc of maximum load restricted to the
// candidate set, breaking ties toward the smallest identifier. It is used
// by the Theorem 6 algorithm, which needs the most loaded arc of the
// unique internal cycle.
func MaxLoadedArcAmong(g *digraph.Digraph, f dipath.Family, candidates []digraph.ArcID) (digraph.ArcID, int, error) {
	if len(candidates) == 0 {
		return -1, 0, fmt.Errorf("load: empty candidate set")
	}
	loads := ArcLoads(g, f)
	best, bestLoad := candidates[0], -1
	for _, a := range candidates {
		if a < 0 || int(a) >= len(loads) {
			return -1, 0, fmt.Errorf("load: candidate arc %d out of range", a)
		}
		if loads[a] > bestLoad || (loads[a] == bestLoad && a < best) {
			best, bestLoad = a, loads[a]
		}
	}
	return best, bestLoad, nil
}

// Histogram returns hist[l] = number of arcs with load exactly l,
// for l in 0..π.
func Histogram(g *digraph.Digraph, f dipath.Family) []int {
	loads := ArcLoads(g, f)
	pi := 0
	for _, l := range loads {
		if l > pi {
			pi = l
		}
	}
	hist := make([]int, pi+1)
	for _, l := range loads {
		hist[l]++
	}
	return hist
}

// Profile summarises the load distribution of a family.
type Profile struct {
	Pi       int     // maximum load
	Mean     float64 // mean load over arcs with positive load
	UsedArcs int     // number of arcs with positive load
	TotalArc int     // number of arcs of the graph
	Median   int     // median load among used arcs (0 when none)
}

// Summarize computes a Profile for (g, f).
func Summarize(g *digraph.Digraph, f dipath.Family) Profile {
	loads := ArcLoads(g, f)
	var used []int
	sum := 0
	for _, l := range loads {
		if l > 0 {
			used = append(used, l)
			sum += l
		}
	}
	p := Profile{TotalArc: g.NumArcs(), UsedArcs: len(used)}
	for _, l := range used {
		if l > p.Pi {
			p.Pi = l
		}
	}
	if len(used) > 0 {
		p.Mean = float64(sum) / float64(len(used))
		sort.Ints(used)
		p.Median = used[len(used)/2]
	}
	return p
}
