// Package groom implements the maximum-request problem posed in the
// concluding remarks of Bermond & Cosnard (IPDPS 2007): given a
// wavelength budget w, select a maximum subfamily of dipaths that can be
// satisfied with w wavelengths.
//
// On a DAG without internal cycle Theorem 1 turns satisfiability into a
// pure capacity condition — a subfamily fits in w wavelengths exactly
// when its load is at most w — so the problem becomes maximum dipath
// selection under arc capacities. The package provides:
//
//   - Feasible: the Theorem 1 satisfiability test (load ≤ w);
//   - MaxOnPath: an exact polynomial algorithm for path graphs
//     (the k-track interval scheduling greedy, as in the grooming-on-the-
//     path line of work the paper grew out of);
//   - Greedy: a capacity-aware greedy for general DAGs;
//   - Exact: branch-and-bound for experiment-scale instances.
package groom

import (
	"fmt"
	"sort"

	"wavedag/internal/cycles"
	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/load"
)

// Feasible reports whether the subfamily of fam indexed by sel can be
// satisfied with w wavelengths on the internal-cycle-free DAG g. By
// Theorem 1 this holds exactly when the selection's load is at most w.
// An error is returned when g has an internal cycle (the equivalence —
// and hence this reduction — fails there).
func Feasible(g *digraph.Digraph, fam dipath.Family, sel []int, w int) (bool, error) {
	if cycles.HasInternalCycle(g) {
		return false, fmt.Errorf("groom: graph has an internal cycle; load ≤ w no longer implies satisfiability")
	}
	t := load.NewTracker(g)
	for _, i := range sel {
		if i < 0 || i >= len(fam) {
			return false, fmt.Errorf("groom: selection index %d out of range", i)
		}
		t.Add(fam[i])
	}
	return t.Pi() <= w, nil
}

// MaxOnPath solves the problem exactly when g is a directed path graph
// (vertices 0..n-1, arcs i -> i+1): dipaths are intervals, and the
// maximum selection with every arc used at most w times is the k-track
// interval scheduling problem. The greedy by right endpoint with
// tightest-track assignment is optimal. Returns the selected indices in
// increasing order.
func MaxOnPath(g *digraph.Digraph, fam dipath.Family, w int) ([]int, error) {
	if w < 0 {
		return nil, fmt.Errorf("groom: negative wavelength budget")
	}
	// Verify the path-graph shape and map each dipath to an interval
	// [first, last) over arc positions.
	n := g.NumVertices()
	if g.NumArcs() != n-1 {
		return nil, fmt.Errorf("groom: not a path graph (%d arcs for %d vertices)", g.NumArcs(), n)
	}
	for i := 0; i < n-1; i++ {
		if _, ok := g.ArcBetween(digraph.Vertex(i), digraph.Vertex(i+1)); !ok {
			return nil, fmt.Errorf("groom: not a path graph (missing arc %d->%d)", i, i+1)
		}
	}
	type ival struct{ lo, hi, idx int } // [lo, hi) over vertex positions
	ivals := make([]ival, 0, len(fam))
	for i, p := range fam {
		if err := p.Validate(g); err != nil {
			return nil, err
		}
		if p.NumArcs() == 0 {
			continue // zero-arc dipaths cost nothing; selected at the end
		}
		ivals = append(ivals, ival{int(p.First()), int(p.Last()), i})
	}
	sort.Slice(ivals, func(a, b int) bool {
		if ivals[a].hi != ivals[b].hi {
			return ivals[a].hi < ivals[b].hi
		}
		return ivals[a].lo > ivals[b].lo // tightest interval first on ties
	})
	if w == 0 {
		var sel []int
		for i, p := range fam {
			if p.NumArcs() == 0 {
				sel = append(sel, i)
			}
		}
		return sel, nil
	}
	// tracks[t] = right endpoint of the last interval on track t.
	tracks := make([]int, w)
	for t := range tracks {
		tracks[t] = -1 << 30
	}
	var sel []int
	for _, iv := range ivals {
		// Best fit: the track whose last end is largest but ≤ iv.lo.
		best := -1
		for t := range tracks {
			if tracks[t] <= iv.lo && (best < 0 || tracks[t] > tracks[best]) {
				best = t
			}
		}
		if best >= 0 {
			tracks[best] = iv.hi
			sel = append(sel, iv.idx)
		}
	}
	for i, p := range fam {
		if p.NumArcs() == 0 {
			sel = append(sel, i)
		}
	}
	sort.Ints(sel)
	return sel, nil
}

// Greedy selects dipaths for a general DAG under arc capacity w: dipaths
// are considered shortest-first (fewest arcs block the least capacity)
// and accepted when every arc still has room. Zero-arc dipaths are
// always accepted. The result is feasible but not necessarily maximal in
// cardinality.
func Greedy(g *digraph.Digraph, fam dipath.Family, w int) []int {
	order := make([]int, len(fam))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		la, lb := fam[order[a]].NumArcs(), fam[order[b]].NumArcs()
		if la != lb {
			return la < lb
		}
		return order[a] < order[b]
	})
	t := load.NewTracker(g)
	var sel []int
	for _, i := range order {
		ok := true
		for _, a := range fam[i].Arcs() {
			if t.Load(a) >= w {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		t.Add(fam[i])
		sel = append(sel, i)
	}
	sort.Ints(sel)
	return sel
}

// Exact finds a maximum selection under arc capacity w by branch and
// bound (include/exclude per dipath, bounding with remaining count).
// Intended for experiment-scale instances; nodeCap limits the search and
// ok=false reports that the cap was hit (the returned selection is still
// feasible and at least as large as Greedy's).
func Exact(g *digraph.Digraph, fam dipath.Family, w int, nodeCap int) (sel []int, ok bool) {
	best := Greedy(g, fam, w)
	t := load.NewTracker(g)
	// Order dipaths by length ascending — cheap ones first maximizes
	// early lower bounds.
	order := make([]int, len(fam))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return fam[order[a]].NumArcs() < fam[order[b]].NumArcs()
	})
	var cur []int
	nodes := 0
	complete := true
	var rec func(k int)
	rec = func(k int) {
		nodes++
		if nodes > nodeCap {
			complete = false
			return
		}
		if len(cur)+len(order)-k <= len(best) {
			return // even taking everything left cannot beat best
		}
		if k == len(order) {
			if len(cur) > len(best) {
				best = append(best[:0:0], cur...)
			}
			return
		}
		i := order[k]
		fits := true
		for _, a := range fam[i].Arcs() {
			if t.Load(a) >= w {
				fits = false
				break
			}
		}
		if fits {
			t.Add(fam[i])
			cur = append(cur, i)
			rec(k + 1)
			cur = cur[:len(cur)-1]
			t.Remove(fam[i])
			rec(k + 1)
		} else {
			rec(k + 1)
		}
	}
	rec(0)
	sort.Ints(best)
	return best, complete
}
