package groom

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wavedag/internal/core"
	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/gen"
	"wavedag/internal/load"
)

// pathGraph returns the directed path 0 -> 1 -> ... -> n-1.
func pathGraph(n int) *digraph.Digraph {
	g := digraph.New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddArc(digraph.Vertex(i), digraph.Vertex(i+1))
	}
	return g
}

func interval(g *digraph.Digraph, lo, hi int) *dipath.Path {
	verts := make([]digraph.Vertex, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		verts = append(verts, digraph.Vertex(v))
	}
	return dipath.MustFromVertices(g, verts...)
}

func TestFeasible(t *testing.T) {
	g := pathGraph(4)
	fam := dipath.Family{interval(g, 0, 2), interval(g, 1, 3), interval(g, 0, 3)}
	ok, err := Feasible(g, fam, []int{0, 1, 2}, 3)
	if err != nil || !ok {
		t.Fatalf("load 3 within w=3 rejected: %v %v", ok, err)
	}
	ok, err = Feasible(g, fam, []int{0, 1, 2}, 2)
	if err != nil || ok {
		t.Fatalf("load 3 accepted at w=2")
	}
	if _, err := Feasible(g, fam, []int{7}, 2); err == nil {
		t.Fatal("bad index accepted")
	}
	// Internal-cycle graph: reduction invalid, must error.
	g3, fam3 := gen.Fig3()
	if _, err := Feasible(g3, fam3, []int{0}, 2); err == nil {
		t.Fatal("internal-cycle graph accepted")
	}
}

func TestMaxOnPathSimple(t *testing.T) {
	g := pathGraph(6)
	fam := dipath.Family{
		interval(g, 0, 2), // A
		interval(g, 1, 3), // B
		interval(g, 3, 5), // C
		interval(g, 0, 5), // D (long, conflicts with everything)
	}
	// w = 1: optimal is {A, C} (B overlaps A, D overlaps all).
	sel, err := MaxOnPath(g, fam, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("w=1 selection = %v, want 2 dipaths", sel)
	}
	// w = 2: all but one can fit: {A,B,C} has load 2; adding D makes arc
	// 1->2 load 3. Optimum 3.
	sel, err = MaxOnPath(g, fam, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 3 {
		t.Fatalf("w=2 selection = %v, want 3 dipaths", sel)
	}
	// w = 3: everything fits.
	sel, err = MaxOnPath(g, fam, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 4 {
		t.Fatalf("w=3 selection = %v, want all", sel)
	}
}

func TestMaxOnPathZeroBudget(t *testing.T) {
	g := pathGraph(4)
	fam := dipath.Family{
		interval(g, 0, 1),
		dipath.MustFromVertices(g, 2), // zero-arc: always satisfiable
	}
	sel, err := MaxOnPath(g, fam, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 1 || sel[0] != 1 {
		t.Fatalf("w=0 selection = %v, want just the zero-arc dipath", sel)
	}
	if _, err := MaxOnPath(g, fam, -1); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestMaxOnPathRejectsNonPath(t *testing.T) {
	g := digraph.New(3)
	g.MustAddArc(0, 1)
	if _, err := MaxOnPath(g, nil, 1); err == nil {
		t.Fatal("non-path accepted (missing arcs)")
	}
	d := digraph.New(3)
	d.MustAddArc(0, 1)
	d.MustAddArc(0, 2)
	if _, err := MaxOnPath(d, nil, 1); err == nil {
		t.Fatal("branching graph accepted")
	}
}

// MaxOnPath must agree with the exact branch-and-bound on random
// interval instances (cross-validation of the greedy's optimality).
func TestMaxOnPathMatchesExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(8)
		g := pathGraph(n)
		var fam dipath.Family
		for i := 0; i < 4+rng.Intn(10); i++ {
			lo := rng.Intn(n - 1)
			hi := lo + 1 + rng.Intn(n-lo-1)
			fam = append(fam, interval(g, lo, hi))
		}
		w := 1 + rng.Intn(3)
		greedySel, err := MaxOnPath(g, fam, w)
		if err != nil {
			return false
		}
		exactSel, complete := Exact(g, fam, w, 1_000_000)
		if !complete {
			return true // skip rare capped cases
		}
		if ok, err := Feasible(g, fam, greedySel, w); err != nil || !ok {
			return false
		}
		return len(greedySel) == len(exactSel)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyFeasibleAndMonotone(t *testing.T) {
	g, err := gen.RandomNoInternalCycleDAG(20, 4, 4, 0.25, 9)
	if err != nil {
		t.Fatal(err)
	}
	fam := gen.RandomWalkFamily(g, 60, 6, 10)
	prev := -1
	for w := 0; w <= 6; w++ {
		sel := Greedy(g, fam, w)
		ok, err := Feasible(g, fam, sel, w)
		if err != nil || !ok {
			t.Fatalf("w=%d: greedy selection infeasible: %v", w, err)
		}
		if len(sel) < prev {
			t.Fatalf("w=%d: selection shrank from %d to %d with more capacity", w, prev, len(sel))
		}
		prev = len(sel)
	}
	// With w = π everything fits.
	pi := load.Pi(g, fam)
	if sel := Greedy(g, fam, pi); len(sel) != len(fam) {
		t.Fatalf("w=π must fit everything: %d of %d", len(sel), len(fam))
	}
}

func TestExactBeatsOrMatchesGreedy(t *testing.T) {
	g, err := gen.RandomNoInternalCycleDAG(12, 3, 3, 0.3, 21)
	if err != nil {
		t.Fatal(err)
	}
	fam := gen.RandomWalkFamily(g, 25, 5, 22)
	for w := 1; w <= 3; w++ {
		greedy := Greedy(g, fam, w)
		exact, complete := Exact(g, fam, w, 2_000_000)
		if !complete {
			t.Skipf("w=%d: node cap hit", w)
		}
		if len(exact) < len(greedy) {
			t.Fatalf("w=%d: exact %d < greedy %d", w, len(exact), len(greedy))
		}
		if ok, err := Feasible(g, fam, exact, w); err != nil || !ok {
			t.Fatalf("w=%d: exact selection infeasible", w)
		}
	}
}

// End-to-end with Theorem 1: select with budget w, then the selected
// subfamily must actually color with ≤ w wavelengths.
func TestSelectionsColorWithinBudget(t *testing.T) {
	g, err := gen.RandomNoInternalCycleDAG(15, 3, 3, 0.25, 31)
	if err != nil {
		t.Fatal(err)
	}
	fam := gen.RandomWalkFamily(g, 40, 6, 32)
	for w := 1; w <= 4; w++ {
		sel := Greedy(g, fam, w)
		sub := make(dipath.Family, 0, len(sel))
		for _, i := range sel {
			sub = append(sub, fam[i])
		}
		res, err := core.ColorNoInternalCycle(g, sub)
		if err != nil {
			t.Fatal(err)
		}
		if res.NumColors > w {
			t.Fatalf("w=%d: selection needed %d wavelengths", w, res.NumColors)
		}
	}
}
