package groom

import (
	"fmt"

	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/wdm"
)

// Online is the online counterpart of the static maximum-request
// problem: dipaths are offered one at a time against a wavelength
// budget w, and each is irrevocably accepted or rejected by a budgeted
// wdm.Session — on an internal-cycle-free DAG that is the O(path)
// Theorem-1 admission test, so the online selection runs in O(total
// path length) where the static Exact search is exponential. The
// accepted set is always Feasible at w (the static oracle the
// randomized tests pin it to), and the session behind it carries a full
// provisioning — wavelengths included — not just a selection.
//
// Greedy and Exact remain the offline baselines: Online never beats
// Exact and, being arrival-ordered, may fall short of Greedy's
// shortest-first ordering; the gap is the price of online admission.
type Online struct {
	sess     *wdm.Session
	budget   int
	offers   int
	accepted []int           // offer indices, ascending
	ids      []wdm.SessionID // parallel to accepted
}

// NewOnline opens an online max-request run at wavelength budget w on
// g. Extra session options (admission strategy, slack, capacity hints)
// pass through to the underlying budgeted session; the budget itself is
// fixed by w and must be positive (an unlimited budget has no
// max-request problem to solve).
func NewOnline(g *digraph.Digraph, w int, opts ...wdm.SessionOption) (*Online, error) {
	if w < 1 {
		return nil, fmt.Errorf("groom: online selection needs a budget >= 1, got %d", w)
	}
	net := &wdm.Network{Topology: g}
	sess, err := net.NewSession(append(opts[:len(opts):len(opts)], wdm.WithWavelengthBudget(w))...)
	if err != nil {
		return nil, err
	}
	return &Online{sess: sess, budget: w}, nil
}

// Offer presents the next dipath; it reports whether the session
// admitted it. Rejections leave all prior acceptances (and their
// wavelengths) untouched. The max-request problem selects among the
// offered dipaths themselves, so an admission strategy that would
// provision a *different* route (retry-alt-route) does not count as
// acceptance here: the substituted path is torn back down and the offer
// reports rejected — the Feasible-at-w oracle always holds for the
// accepted offers as given.
func (o *Online) Offer(p *dipath.Path) (bool, error) {
	idx := o.offers
	id, adm, err := o.sess.TryAddPath(p)
	if err != nil {
		return false, err
	}
	o.offers++
	if !adm.Accepted {
		return false, nil
	}
	if got, perr := o.sess.Path(id); perr != nil || !got.Equal(p) {
		if perr != nil {
			return false, perr
		}
		if rerr := o.sess.Remove(id); rerr != nil {
			return false, rerr
		}
		return false, nil
	}
	o.accepted = append(o.accepted, idx)
	o.ids = append(o.ids, id)
	return true, nil
}

// OfferFamily offers every dipath of fam in order and returns the
// accepted indices (ascending — offer order is index order).
func (o *Online) OfferFamily(fam dipath.Family) ([]int, error) {
	for _, p := range fam {
		if _, err := o.Offer(p); err != nil {
			return nil, err
		}
	}
	return o.Accepted(), nil
}

// Accepted returns the accepted offer indices in ascending order.
func (o *Online) Accepted() []int {
	return append([]int(nil), o.accepted...)
}

// SessionIDs returns the session ids of the accepted offers, parallel
// to Accepted — the handle for tearing accepted requests back down
// (Session().Remove) when the selection churns.
func (o *Online) SessionIDs() []wdm.SessionID {
	return append([]wdm.SessionID(nil), o.ids...)
}

// Offers returns how many dipaths have been offered so far.
func (o *Online) Offers() int { return o.offers }

// Len returns how many offers were accepted.
func (o *Online) Len() int { return len(o.accepted) }

// Budget returns the wavelength budget.
func (o *Online) Budget() int { return o.budget }

// Session exposes the budgeted session carrying the accepted set —
// its Provisioning holds the accepted dipaths with their wavelengths,
// in acceptance order.
func (o *Online) Session() *wdm.Session { return o.sess }

// OnlineMax runs the whole family through a fresh online selection at
// budget w and returns the accepted indices — the one-shot form the
// cross-check tests drive against Greedy and Exact.
func OnlineMax(g *digraph.Digraph, fam dipath.Family, w int) ([]int, error) {
	o, err := NewOnline(g, w)
	if err != nil {
		return nil, err
	}
	return o.OfferFamily(fam)
}
