package groom

// Randomized cross-checks between the max-request solvers: Greedy must
// always be Feasible, Exact must dominate Greedy and agree with the
// polynomial MaxOnPath on path graphs, and the online selection (a
// budgeted session) must stay Feasible, below Exact, and must never
// reject an offer the Theorem-1 test admits. These are the oracles
// groom.Online is pinned to.

import (
	"math/rand"
	"testing"

	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/gen"
	"wavedag/internal/load"
	"wavedag/internal/wdm"
)

const exactNodeCap = 4_000_000

// randomInstance draws a Theorem-1 (internal-cycle-free) topology and a
// small walk family — small enough for Exact to complete.
func randomInstance(t *testing.T, seed int64, paths int) (*digraph.Digraph, dipath.Family) {
	t.Helper()
	g, err := gen.RandomNoInternalCycleDAG(12, 3, 3, 0.3, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g, gen.RandomWalkFamily(g, paths, 6, seed+1)
}

func allIndices(n int) []int {
	sel := make([]int, n)
	for i := range sel {
		sel[i] = i
	}
	return sel
}

func TestGreedyAlwaysFeasible(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g, fam := randomInstance(t, 100+seed, 30)
		for _, w := range []int{1, 2, 3, 5} {
			sel := Greedy(g, fam, w)
			ok, err := Feasible(g, fam, sel, w)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("seed %d w %d: Greedy selection infeasible", seed, w)
			}
		}
	}
}

func TestGreedyAtMostExact(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g, fam := randomInstance(t, 200+seed, 14)
		for _, w := range []int{1, 2, 3} {
			greedy := Greedy(g, fam, w)
			exact, complete := Exact(g, fam, w, exactNodeCap)
			if !complete {
				t.Fatalf("seed %d w %d: Exact hit the node cap on a 14-path instance", seed, w)
			}
			if ok, err := Feasible(g, fam, exact, w); err != nil || !ok {
				t.Fatalf("seed %d w %d: Exact selection infeasible (%v)", seed, w, err)
			}
			if len(greedy) > len(exact) {
				t.Fatalf("seed %d w %d: |Greedy|=%d > |Exact|=%d", seed, w, len(greedy), len(exact))
			}
		}
	}
}

// randomIntervals draws an interval family over the directed path graph
// on n vertices.
func randomIntervals(g *digraph.Digraph, n, count int, rng *rand.Rand) dipath.Family {
	fam := make(dipath.Family, 0, count)
	for i := 0; i < count; i++ {
		lo := rng.Intn(n - 1)
		hi := lo + 1 + rng.Intn(n-lo-1)
		verts := make([]digraph.Vertex, 0, hi-lo+1)
		for v := lo; v <= hi; v++ {
			verts = append(verts, digraph.Vertex(v))
		}
		fam = append(fam, dipath.MustFromVertices(g, verts...))
	}
	return fam
}

func TestExactMatchesMaxOnPath(t *testing.T) {
	const n = 10
	g := pathGraph(n)
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(300 + seed))
		fam := randomIntervals(g, n, 12, rng)
		for _, w := range []int{1, 2, 3} {
			exact, complete := Exact(g, fam, w, exactNodeCap)
			if !complete {
				t.Fatalf("seed %d w %d: Exact hit the node cap", seed, w)
			}
			onPath, err := MaxOnPath(g, fam, w)
			if err != nil {
				t.Fatal(err)
			}
			if ok, err := Feasible(g, fam, onPath, w); err != nil || !ok {
				t.Fatalf("seed %d w %d: MaxOnPath selection infeasible (%v)", seed, w, err)
			}
			if len(exact) != len(onPath) {
				t.Fatalf("seed %d w %d: |Exact|=%d but |MaxOnPath|=%d", seed, w, len(exact), len(onPath))
			}
		}
	}
}

func TestOnlineFeasibleAndBelowExact(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g, fam := randomInstance(t, 400+seed, 14)
		for _, w := range []int{1, 2, 3} {
			sel, err := OnlineMax(g, fam, w)
			if err != nil {
				t.Fatal(err)
			}
			if ok, err := Feasible(g, fam, sel, w); err != nil || !ok {
				t.Fatalf("seed %d w %d: online accepted set infeasible (%v)", seed, w, err)
			}
			exact, complete := Exact(g, fam, w, exactNodeCap)
			if complete && len(sel) > len(exact) {
				t.Fatalf("seed %d w %d: |Online|=%d > |Exact|=%d", seed, w, len(sel), len(exact))
			}
		}
	}
}

// TestOnlineNeverRejectsTheorem1Admissible replays every offer against
// a shadow load tracker: whenever the Theorem-1 test (load+1 ≤ w on
// every arc of the offer) admits at offer time, the online session must
// have accepted — the acceptance criterion that the precheck is exact,
// not merely sound.
func TestOnlineNeverRejectsTheorem1Admissible(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g, fam := randomInstance(t, 500+seed, 40)
		for _, w := range []int{1, 2, 4} {
			o, err := NewOnline(g, w)
			if err != nil {
				t.Fatal(err)
			}
			shadow := load.NewTracker(g)
			for i, p := range fam {
				admissible := shadow.FitsAdditional(p, w)
				ok, err := o.Offer(p)
				if err != nil {
					t.Fatal(err)
				}
				if admissible && !ok {
					t.Fatalf("seed %d w %d: offer %d admissible by Theorem 1 but rejected", seed, w, i)
				}
				if !admissible && ok {
					t.Fatalf("seed %d w %d: offer %d accepted past the load budget", seed, w, i)
				}
				if ok {
					shadow.Add(p)
				}
			}
			if o.Offers() != len(fam) || o.Len() != len(o.Accepted()) {
				t.Fatalf("seed %d w %d: offer bookkeeping inconsistent", seed, w)
			}
			// The session behind the selection must be coherent: a proper
			// assignment within the budget.
			if err := o.Session().Verify(); err != nil {
				t.Fatalf("seed %d w %d: %v", seed, w, err)
			}
			if n, err := o.Session().NumLambda(); err != nil || n > w {
				t.Fatalf("seed %d w %d: λ=%d past the budget (%v)", seed, w, n, err)
			}
		}
	}
}

// TestOnlineMatchesMaxOnPathOrder checks the path-graph regime: offers
// arriving in MaxOnPath's optimal order (right endpoint ascending) must
// reproduce the optimal cardinality — online admission loses nothing
// when the arrival order happens to be the greedy-optimal one.
func TestOnlineMatchesMaxOnPathOrder(t *testing.T) {
	const n = 10
	g := pathGraph(n)
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(600 + seed))
		fam := randomIntervals(g, n, 12, rng)
		for _, w := range []int{1, 2, 3} {
			opt, err := MaxOnPath(g, fam, w)
			if err != nil {
				t.Fatal(err)
			}
			// Re-offer in right-endpoint order.
			order := allIndices(len(fam))
			for i := range order {
				for j := i + 1; j < len(order); j++ {
					if fam[order[j]].Last() < fam[order[i]].Last() {
						order[i], order[j] = order[j], order[i]
					}
				}
			}
			o, err := NewOnline(g, w)
			if err != nil {
				t.Fatal(err)
			}
			count := 0
			for _, i := range order {
				ok, err := o.Offer(fam[i])
				if err != nil {
					t.Fatal(err)
				}
				if ok {
					count++
				}
			}
			if count != len(opt) {
				t.Fatalf("seed %d w %d: online in optimal order accepted %d, MaxOnPath %d",
					seed, w, count, len(opt))
			}
		}
	}
}

// TestOnlineRouteSubstitutingStrategy pins the Offer contract under an
// admission strategy that would provision a different route: the
// max-request problem selects the offered dipaths themselves, so a
// retry-alt-route substitution must count as a rejection and the
// accepted set must stay Feasible for the paths as offered.
func TestOnlineRouteSubstitutingStrategy(t *testing.T) {
	g := digraph.New(4)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 3)
	g.MustAddArc(0, 2)
	g.MustAddArc(2, 3)
	o, err := NewOnline(g, 1, wdm.WithAdmissionStrategyName(wdm.AdmissionRetryAltRoute))
	if err != nil {
		t.Fatal(err)
	}
	p := dipath.MustFromVertices(g, 0, 1, 3)
	if ok, err := o.Offer(p); err != nil || !ok {
		t.Fatalf("first offer: %v %v", ok, err)
	}
	// The same dipath again is over budget; the strategy would commit
	// the 0->2->3 detour, which is not the offered path — Offer must
	// report rejection and leave the session holding only the original.
	if ok, err := o.Offer(p); err != nil || ok {
		t.Fatalf("substituted offer counted as accepted: %v %v", ok, err)
	}
	if o.Len() != 1 || o.Session().Len() != 1 {
		t.Fatalf("accepted %d, session holds %d", o.Len(), o.Session().Len())
	}
	fam := dipath.Family{p, p}
	if ok, err := Feasible(g, fam, o.Accepted(), 1); err != nil || !ok {
		t.Fatalf("accepted set infeasible: %v %v", ok, err)
	}
}
