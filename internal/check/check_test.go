package check

import (
	"testing"

	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/gen"
)

func chain() (*digraph.Digraph, dipath.Family) {
	g := digraph.New(4)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 2)
	g.MustAddArc(2, 3)
	fam := dipath.Family{
		dipath.MustFromVertices(g, 0, 1, 2),
		dipath.MustFromVertices(g, 1, 2, 3),
		dipath.MustFromVertices(g, 2, 3),
	}
	return g, fam
}

func TestColoringAcceptsProper(t *testing.T) {
	g, fam := chain()
	if err := Coloring(g, fam, []int{0, 1, 0}); err != nil {
		t.Fatal(err)
	}
}

func TestColoringRejects(t *testing.T) {
	g, fam := chain()
	if err := Coloring(g, fam, []int{0, 0, 1}); err == nil {
		t.Fatal("conflict on arc 1->2 not caught")
	}
	if err := Coloring(g, fam, []int{0, 1}); err == nil {
		t.Fatal("length mismatch not caught")
	}
	if err := Coloring(g, fam, []int{0, -1, 1}); err == nil {
		t.Fatal("uncolored path not caught")
	}
}

func TestWavelengthsWithinLoad(t *testing.T) {
	g, fam := chain()
	// π = 2 here (arc 1->2 carries two paths). Exactly 2 colors: OK.
	if err := WavelengthsWithinLoad(g, fam, []int{0, 1, 0}); err != nil {
		t.Fatal(err)
	}
	// 3 colors: valid coloring but not tight — must be rejected.
	if err := WavelengthsWithinLoad(g, fam, []int{0, 1, 2}); err == nil {
		t.Fatal("non-tight coloring accepted as Theorem-1-tight")
	}
}

func TestWavelengthsWithinBound(t *testing.T) {
	g, fam := gen.Havet()
	// π = 2, bound ⌈8/3⌉ = 3.
	colors := make([]int, len(fam))
	for i := range colors {
		colors[i] = i // 8 distinct colors: proper but over the bound
	}
	if err := WavelengthsWithinBound(g, fam, colors, 4, 3); err == nil {
		t.Fatal("8 colors accepted against bound 3")
	}
	// A genuine 3-coloring of the Wagner conflict graph:
	// cycle order R0 R1 R2 R3 R4 R5 R6 R7 with chords i—i±(cycle),
	// independent classes {0,2,5}, {1,3,6}, {4,7}.
	good := []int{0, 1, 0, 1, 2, 0, 1, 2}
	if err := WavelengthsWithinBound(g, fam, good, 4, 3); err != nil {
		t.Fatalf("valid 3-coloring rejected: %v", err)
	}
}

func TestLowerBoundByIndependence(t *testing.T) {
	g, fam := gen.Havet()
	// α = 3, |P| = 8: bound ⌈8/3⌉ = 3.
	if got := LowerBoundByIndependence(g, fam); got != 3 {
		t.Fatalf("bound = %d, want 3", got)
	}
	if got := LowerBoundByIndependence(g, nil); got != 0 {
		t.Fatalf("empty bound = %d", got)
	}
	rep := fam.Replicate(3)
	if got := LowerBoundByIndependence(g, rep); got != 8 {
		t.Fatalf("replicated bound = %d, want 8", got)
	}
}

func TestPiLowerBoundsColors(t *testing.T) {
	g, fam := chain()
	if err := PiLowerBoundsColors(g, fam, []int{0, 1, 0}); err != nil {
		t.Fatal(err)
	}
	// An improper coloring is rejected before the bound check.
	if err := PiLowerBoundsColors(g, fam, []int{0, 0, 0}); err == nil {
		t.Fatal("improper coloring accepted")
	}
}
