// Package check centralises the verification predicates used by tests,
// benchmarks and the experiment harness: coloring validity, bound
// assertions and witness extraction. Keeping them in one place ensures
// the experiments are judged by code independent of the algorithms under
// test.
package check

import (
	"fmt"

	"wavedag/internal/conflict"
	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/load"
)

// Coloring verifies that colors is a proper wavelength assignment for fam
// on g: one non-negative wavelength per dipath, arc-sharing dipaths
// differently colored. It reports the first violation with a witness.
func Coloring(g *digraph.Digraph, fam dipath.Family, colors []int) error {
	if len(colors) != len(fam) {
		return fmt.Errorf("check: %d colors for %d dipaths", len(colors), len(fam))
	}
	for i, c := range colors {
		if c < 0 {
			return fmt.Errorf("check: dipath %d uncolored", i)
		}
	}
	inc := dipath.ArcIncidence(g, fam)
	for a, paths := range inc {
		byColor := make(map[int]int, len(paths))
		for _, p := range paths {
			if q, clash := byColor[colors[p]]; clash {
				return fmt.Errorf("check: dipaths %d and %d share arc %d and wavelength %d", q, p, a, colors[p])
			}
			byColor[colors[p]] = p
		}
	}
	return nil
}

// WavelengthsWithinLoad verifies Theorem 1's conclusion on a concrete
// coloring: the number of wavelengths equals the load π (when π >= 1).
func WavelengthsWithinLoad(g *digraph.Digraph, fam dipath.Family, colors []int) error {
	if err := Coloring(g, fam, colors); err != nil {
		return err
	}
	pi := load.Pi(g, fam)
	used := conflict.CountColors(colors)
	if pi >= 1 && used != pi {
		return fmt.Errorf("check: %d wavelengths used, want exactly π = %d", used, pi)
	}
	return nil
}

// WavelengthsWithinBound verifies w <= ⌈num/den · π⌉ for a coloring (the
// Theorem 6 check uses num=4, den=3).
func WavelengthsWithinBound(g *digraph.Digraph, fam dipath.Family, colors []int, num, den int) error {
	if err := Coloring(g, fam, colors); err != nil {
		return err
	}
	pi := load.Pi(g, fam)
	if pi == 0 {
		return nil
	}
	bound := (num*pi + den - 1) / den
	if used := conflict.CountColors(colors); used > bound {
		return fmt.Errorf("check: %d wavelengths used, bound ⌈%d/%d·π⌉ = %d (π = %d)", used, num, den, bound, pi)
	}
	return nil
}

// LowerBoundByIndependence returns the lower bound ⌈|P| / α⌉ on the
// number of wavelengths, where α is the independence number of the
// conflict graph — the argument Theorem 7 uses for its tight instance.
func LowerBoundByIndependence(g *digraph.Digraph, fam dipath.Family) int {
	if len(fam) == 0 {
		return 0
	}
	cg := conflict.FromFamily(g, fam)
	alpha := cg.IndependenceNumber()
	if alpha == 0 {
		return 0
	}
	return (len(fam) + alpha - 1) / alpha
}

// PiLowerBoundsColors confirms π ≤ (number of wavelengths) for any proper
// coloring — the trivial direction of the equality.
func PiLowerBoundsColors(g *digraph.Digraph, fam dipath.Family, colors []int) error {
	if err := Coloring(g, fam, colors); err != nil {
		return err
	}
	pi := load.Pi(g, fam)
	if used := conflict.CountColors(colors); used < pi {
		return fmt.Errorf("check: impossible: %d wavelengths below π = %d", used, pi)
	}
	return nil
}
