package conflict

import (
	"fmt"

	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
)

// Dynamic is a mutable conflict graph over a fixed digraph: a set of
// dipaths that can be inserted and removed one at a time while the
// adjacency ("shares an arc") relation, vertex degrees, and a χ/ω lower
// bound are maintained incrementally. It is the conflict layer of the
// dynamic provisioning engine (wdm.Session): a one-shot FromFamily +
// full solve per request arrival would pay the whole pipeline again,
// whereas Dynamic pays only for the paths the new dipath actually
// touches.
//
// Dipaths occupy slots, small dense integers handed out by AddPath and
// recycled by RemovePath; adjacency rows are bitsets over slots, so the
// neighbour iteration the incremental coloring hammers on is the same
// word-parallel forEach the static Graph uses.
//
// Insertion is arc-indexed: the per-arc incidence lists record which
// live slots traverse each arc, so inserting a path costs
// O(len(path) + paths sharing its arcs) rather than the O(n·len)
// all-pairs scan. The incidence lists double as an arc-load table, from
// which LowerBound maintains max-arc-load in O(1) amortised per update:
// the dipaths through the most loaded arc pairwise conflict, so
// maxload ≤ ω ≤ χ.
//
// A Dynamic is not safe for concurrent use.
type Dynamic struct {
	g     *digraph.Digraph
	words int // words per adjacency row at the current capacity

	rows  []row          // rows[s] = neighbourhood bitset of slot s
	deg   []int          // deg[s] = live neighbours of slot s
	paths []*dipath.Path // paths[s] = dipath in slot s; nil = free
	free  []int          // recycled slots
	live  int            // number of occupied slots

	arcPaths  [][]int // arc -> live slots traversing it (unordered)
	loadCount []int   // loadCount[l] = arcs with exactly load l (l >= 1)
	maxLoad   int     // max over arcs of len(arcPaths[a])
}

// NewDynamic returns an empty mutable conflict graph for dipaths of g.
func NewDynamic(g *digraph.Digraph) *Dynamic {
	return &Dynamic{
		g:        g,
		arcPaths: make([][]int, g.NumArcs()),
	}
}

// Graph returns the digraph the tracked dipaths live on.
func (d *Dynamic) Graph() *digraph.Digraph { return d.g }

// NumLive returns the number of dipaths currently tracked.
func (d *Dynamic) NumLive() int { return d.live }

// NumSlots returns the slot-space high-water mark: every live slot is
// < NumSlots(). Palettes and per-slot tables should be sized by it.
func (d *Dynamic) NumSlots() int { return len(d.paths) }

// Path returns the dipath in slot s, or nil when the slot is free.
func (d *Dynamic) Path(s int) *dipath.Path {
	if s < 0 || s >= len(d.paths) {
		return nil
	}
	return d.paths[s]
}

// Degree returns the number of live dipaths conflicting with slot s.
func (d *Dynamic) Degree(s int) int { return d.deg[s] }

// HasConflict reports whether the dipaths in slots s and t share an arc.
func (d *Dynamic) HasConflict(s, t int) bool {
	if s < 0 || t < 0 || s >= len(d.paths) || t >= len(d.paths) || s == t {
		return false
	}
	return d.rows[s].get(t)
}

// ForEachConflict calls f on every live slot whose dipath shares an arc
// with slot s, in increasing slot order, without allocating.
func (d *Dynamic) ForEachConflict(s int, f func(t int)) {
	d.rows[s].forEach(f)
}

// ArcLoad returns the number of live dipaths traversing arc a.
func (d *Dynamic) ArcLoad(a digraph.ArcID) int { return len(d.arcPaths[a]) }

// ForEachOnArc calls f on every live slot whose dipath traverses arc a.
// The order is unspecified (the incidence buckets are maintained by
// swap-removal); f must not mutate d. This is the arc-indexed incidence
// the survivability layer uses to find the paths hit by a fiber cut in
// O(affected) instead of O(live).
func (d *Dynamic) ForEachOnArc(a digraph.ArcID, f func(slot int)) {
	if int(a) >= len(d.arcPaths) {
		return
	}
	for _, s := range d.arcPaths[a] {
		f(s)
	}
}

// GrowArcs extends the per-arc incidence to cover n arcs. No live
// dipath traverses an arc that did not exist when it was validated, so
// loads, adjacency and the lower bound are all unchanged — the new
// buckets start empty. Live-capacity hook; see load.Tracker.GrowArcs.
// n at or below the current arc count is a no-op.
func (d *Dynamic) GrowArcs(n int) {
	for len(d.arcPaths) < n {
		d.arcPaths = append(d.arcPaths, nil)
	}
}

// LowerBound returns the maximum arc load of the live dipaths — the
// paths through that arc form a clique, so this bounds both the clique
// number ω and the chromatic number χ of the conflict graph from below.
// It is maintained incrementally (a load histogram), so the call is O(1).
func (d *Dynamic) LowerBound() int { return d.maxLoad }

// AddPath inserts p and returns its slot. The cost is O(len(p)) plus
// one bitset update per live dipath sharing an arc with p.
func (d *Dynamic) AddPath(p *dipath.Path) (int, error) {
	if p == nil {
		return -1, fmt.Errorf("conflict: nil dipath")
	}
	if err := p.Validate(d.g); err != nil {
		return -1, err
	}
	s := d.takeSlot()
	for _, a := range p.Arcs() {
		bucket := d.arcPaths[a]
		for _, t := range bucket {
			if !d.rows[s].get(t) {
				d.rows[s].set(t)
				d.rows[t].set(s)
				d.deg[s]++
				d.deg[t]++
			}
		}
		d.arcPaths[a] = append(bucket, s)
		d.bumpLoad(len(bucket) + 1)
	}
	d.paths[s] = p
	d.live++
	return s, nil
}

// RemovePath deletes the dipath in slot s; the slot is recycled. The
// cost mirrors AddPath: O(len(path) + conflicting paths).
func (d *Dynamic) RemovePath(s int) error {
	if s < 0 || s >= len(d.paths) || d.paths[s] == nil {
		return fmt.Errorf("conflict: slot %d is not live", s)
	}
	p := d.paths[s]
	for _, a := range p.Arcs() {
		bucket := d.arcPaths[a]
		for i, t := range bucket {
			if t == s {
				bucket[i] = bucket[len(bucket)-1]
				d.arcPaths[a] = bucket[:len(bucket)-1]
				break
			}
		}
		d.dropLoad(len(bucket) - 1)
	}
	rs := d.rows[s]
	rs.forEach(func(t int) {
		d.rows[t].clear(s)
		d.deg[t]--
	})
	rs.zero()
	d.deg[s] = 0
	d.paths[s] = nil
	d.free = append(d.free, s)
	d.live--
	return nil
}

// bumpLoad records an arc moving from load l-1 to load l.
func (d *Dynamic) bumpLoad(l int) {
	for len(d.loadCount) <= l {
		d.loadCount = append(d.loadCount, 0)
	}
	if l > 1 {
		d.loadCount[l-1]--
	}
	d.loadCount[l]++
	if l > d.maxLoad {
		d.maxLoad = l
	}
}

// dropLoad records an arc moving from load l+1 to load l.
func (d *Dynamic) dropLoad(l int) {
	d.loadCount[l+1]--
	if l > 0 {
		d.loadCount[l]++
	}
	for d.maxLoad > 0 && d.loadCount[d.maxLoad] == 0 {
		d.maxLoad--
	}
}

// takeSlot returns a free slot, growing the adjacency structure
// (capacity doubling, so growth is amortised O(1) per insertion) when
// none is available.
func (d *Dynamic) takeSlot() int {
	if n := len(d.free); n > 0 {
		s := d.free[n-1]
		d.free = d.free[:n-1]
		return s
	}
	s := len(d.paths)
	if s >= d.words*64 {
		d.grow(s + 1)
	}
	d.paths = append(d.paths, nil)
	d.deg = append(d.deg, 0)
	d.rows = append(d.rows, newRow(d.words*64))
	return s
}

// grow widens every adjacency row to cover at least minSlots slots.
// Rows are reallocated individually (they are appended over time, so
// unlike the static Graph they do not share one backing array).
func (d *Dynamic) grow(minSlots int) {
	words := (minSlots + 63) / 64
	if w := 2 * d.words; w > words {
		words = w // capacity doubling
	}
	if words < 1 {
		words = 1
	}
	for i, r := range d.rows {
		nr := make(row, words)
		copy(nr, r)
		d.rows[i] = nr
	}
	d.words = words
}

// LiveSlots returns the live slots in increasing order.
func (d *Dynamic) LiveSlots() []int {
	out := make([]int, 0, d.live)
	for s, p := range d.paths {
		if p != nil {
			out = append(out, s)
		}
	}
	return out
}

// Family returns the live dipaths in increasing slot order.
func (d *Dynamic) Family() dipath.Family {
	fam := make(dipath.Family, 0, d.live)
	for _, p := range d.paths {
		if p != nil {
			fam = append(fam, p)
		}
	}
	return fam
}

// Snapshot compacts the live slots into a static Graph (vertex i of the
// result is slots[i]) for the one-shot solvers — the full-recolor
// fallback of the incremental coloring and the invariant checks.
func (d *Dynamic) Snapshot() (*Graph, []int) {
	slots := d.LiveSlots()
	pos := make([]int, len(d.paths))
	for i, s := range slots {
		pos[s] = i
	}
	g := NewGraph(len(slots))
	for i, s := range slots {
		// Adjacency rows only ever hold live slots (RemovePath clears the
		// removed slot from every neighbour), so pos[t] is always valid.
		d.rows[s].forEach(func(t int) {
			if j := pos[t]; j > i {
				g.rows[i].set(j)
				g.rows[j].set(i)
				g.deg[i]++
				g.deg[j]++
			}
		})
	}
	return g, slots
}
