package conflict

import (
	"math/rand"
	"testing"

	"wavedag/internal/gen"
	"wavedag/internal/load"
)

// TestDynamicMatchesFromFamily drives a Dynamic through random
// insertions and removals and checks after every operation that its
// compacted snapshot is exactly the static conflict graph of the live
// family, and that the incremental lower bound equals the true load π.
func TestDynamicMatchesFromFamily(t *testing.T) {
	g, err := gen.RandomNoInternalCycleDAG(18, 4, 4, 0.3, 7)
	if err != nil {
		t.Fatal(err)
	}
	pool := gen.RandomWalkFamily(g, 60, 6, 99)
	rng := rand.New(rand.NewSource(42))

	d := NewDynamic(g)
	type liveEntry struct {
		slot int
		fam  int // index into pool
	}
	var liveSet []liveEntry

	check := func(opNum int) {
		t.Helper()
		snap, slots := d.Snapshot()
		if len(slots) != d.NumLive() || d.NumLive() != len(liveSet) {
			t.Fatalf("op %d: live bookkeeping mismatch: %d slots, %d live, %d entries",
				opNum, len(slots), d.NumLive(), len(liveSet))
		}
		// Build the family in increasing slot order (Snapshot's order).
		fam := d.Family()
		want := FromFamily(g, fam)
		if snap.N() != want.N() {
			t.Fatalf("op %d: snapshot has %d vertices, want %d", opNum, snap.N(), want.N())
		}
		for u := 0; u < want.N(); u++ {
			if snap.Degree(u) != want.Degree(u) {
				t.Fatalf("op %d: degree(%d) = %d, want %d", opNum, u, snap.Degree(u), want.Degree(u))
			}
			for v := u + 1; v < want.N(); v++ {
				if snap.HasEdge(u, v) != want.HasEdge(u, v) {
					t.Fatalf("op %d: edge (%d,%d) = %v, want %v",
						opNum, u, v, snap.HasEdge(u, v), want.HasEdge(u, v))
				}
			}
		}
		if lb, pi := d.LowerBound(), load.Pi(g, fam); lb != pi {
			t.Fatalf("op %d: lower bound %d, want π = %d", opNum, lb, pi)
		}
	}

	for op := 0; op < 400; op++ {
		if len(liveSet) == 0 || (rng.Intn(3) != 0 && len(liveSet) < 40) {
			fi := rng.Intn(len(pool))
			slot, err := d.AddPath(pool[fi])
			if err != nil {
				t.Fatalf("op %d: AddPath: %v", op, err)
			}
			liveSet = append(liveSet, liveEntry{slot, fi})
		} else {
			k := rng.Intn(len(liveSet))
			if err := d.RemovePath(liveSet[k].slot); err != nil {
				t.Fatalf("op %d: RemovePath: %v", op, err)
			}
			liveSet[k] = liveSet[len(liveSet)-1]
			liveSet = liveSet[:len(liveSet)-1]
		}
		if op%7 == 0 || op > 380 {
			check(op)
		}
	}
	check(400)
}

// TestDynamicSlotRecycling checks slots are reused and stale adjacency
// never leaks into a recycled slot.
func TestDynamicSlotRecycling(t *testing.T) {
	g, fam, err := gen.Fig1Staircase(6)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDynamic(g)
	s0, err := d.AddPath(fam[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddPath(fam[1]); err != nil {
		t.Fatal(err)
	}
	if err := d.RemovePath(s0); err != nil {
		t.Fatal(err)
	}
	s2, err := d.AddPath(fam[2])
	if err != nil {
		t.Fatal(err)
	}
	if s2 != s0 {
		t.Fatalf("slot not recycled: got %d, want %d", s2, s0)
	}
	// fam[2] of the staircase conflicts with fam[1]; the recycled slot's
	// adjacency must be exactly that, nothing stale.
	if d.Degree(s2) != 1 {
		t.Fatalf("recycled slot degree = %d, want 1", d.Degree(s2))
	}
	if err := d.RemovePath(s2); err != nil {
		t.Fatal(err)
	}
	if err := d.RemovePath(s2); err == nil {
		t.Fatal("double remove accepted")
	}
	if _, err := d.AddPath(nil); err == nil {
		t.Fatal("nil path accepted")
	}
}

// TestDynamicGrowth pushes past several capacity doublings.
func TestDynamicGrowth(t *testing.T) {
	g, fam, err := gen.Fig1Staircase(12)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDynamic(g)
	// The staircase conflict graph is complete: after inserting k copies
	// of the family every pair of slots sharing the ladder arc conflicts.
	total := 0
	for rep := 0; rep < 20; rep++ {
		for _, p := range fam {
			if _, err := d.AddPath(p); err != nil {
				t.Fatal(err)
			}
			total++
		}
	}
	if d.NumLive() != total || d.NumSlots() != total {
		t.Fatalf("live = %d, slots = %d, want %d", d.NumLive(), d.NumSlots(), total)
	}
	snap, _ := d.Snapshot()
	want := FromFamily(g, d.Family())
	if snap.NumEdges() != want.NumEdges() {
		t.Fatalf("edges = %d, want %d", snap.NumEdges(), want.NumEdges())
	}
	if lb := d.LowerBound(); lb != load.Pi(g, d.Family()) {
		t.Fatalf("lower bound %d, want %d", lb, load.Pi(g, d.Family()))
	}
}
