package conflict

import (
	"math"
	"math/rand"
	"testing"
)

// randomGraph returns a seeded G(n,p) graph, optionally assembled as a
// disjoint union of blocks so the component machinery gets exercised.
func randomBlockGraph(t *testing.T, n int, p float64, blocks int, seed int64) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(n)
	if blocks < 1 {
		blocks = 1
	}
	per := (n + blocks - 1) / blocks
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if u/per != v/per {
				continue // different blocks never connect
			}
			if rng.Float64() < p {
				if err := g.AddEdge(u, v); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return g
}

// TestEquivalenceRandom cross-checks every optimized solver against the
// retained reference implementations on seeded random instances — the
// acceptance gate for the bitset/sharding rewrite.
func TestEquivalenceRandom(t *testing.T) {
	cases := []struct {
		n      int
		p      float64
		blocks int
		seed   int64
	}{
		{12, 0.3, 1, 1},
		{16, 0.5, 1, 2},
		{20, 0.2, 1, 3},
		{18, 0.7, 1, 4},
		{24, 0.4, 3, 5},
		{30, 0.5, 5, 6},
		{40, 0.3, 8, 7},
		{25, 0.9, 2, 8},
		{32, 0.15, 4, 9},
		{21, 0.6, 7, 10},
	}
	for _, tc := range cases {
		g := randomBlockGraph(t, tc.n, tc.p, tc.blocks, tc.seed)

		// χ: sharded bitset search vs whole-graph reference.
		chi := g.ChromaticNumber()
		refChi := g.refChromaticNumber()
		if chi != refChi {
			t.Errorf("n=%d seed=%d: χ=%d, reference %d", tc.n, tc.seed, chi, refChi)
		}
		// The optimal coloring must be proper and use exactly χ colors.
		colors, err := g.OptimalColoring()
		if err != nil {
			t.Fatalf("n=%d seed=%d: %v", tc.n, tc.seed, err)
		}
		if err := g.ValidateColoring(colors); err != nil {
			t.Errorf("n=%d seed=%d: optimal coloring improper: %v", tc.n, tc.seed, err)
		}
		if got := CountColors(colors); got != refChi {
			t.Errorf("n=%d seed=%d: optimal coloring uses %d colors, χ=%d", tc.n, tc.seed, got, refChi)
		}

		// ω: sharded clique vs reference, and the clique must be real.
		clique := g.MaxClique()
		refClique := g.refMaxClique()
		if len(clique) != len(refClique) {
			t.Errorf("n=%d seed=%d: ω=%d, reference %d", tc.n, tc.seed, len(clique), len(refClique))
		}
		for i := 0; i < len(clique); i++ {
			for j := i + 1; j < len(clique); j++ {
				if !g.HasEdge(clique[i], clique[j]) {
					t.Errorf("n=%d seed=%d: returned clique not a clique (%d,%d)", tc.n, tc.seed, clique[i], clique[j])
				}
			}
		}

		// DSATUR: the sharded run must reproduce the global run exactly.
		sharded := g.DSATURColoring()
		global := g.dsaturConnected()
		for v := range sharded {
			if sharded[v] != global[v] {
				t.Errorf("n=%d seed=%d: DSATUR sharded[%d]=%d, global %d", tc.n, tc.seed, v, sharded[v], global[v])
				break
			}
		}

		// Greedy: touched-list reset vs the original full reset.
		greedy := g.GreedyColoring(nil)
		refGreedy := g.refGreedyColoring(nil)
		for v := range greedy {
			if greedy[v] != refGreedy[v] {
				t.Errorf("n=%d seed=%d: greedy[%d]=%d, reference %d", tc.n, tc.seed, v, greedy[v], refGreedy[v])
				break
			}
		}

		// kColoring: workspace search and reference must agree on
		// feasibility for every k around χ.
		for k := refChi - 1; k <= refChi+1; k++ {
			if k < 0 {
				continue
			}
			_, ok := g.kColoring(k)
			_, refOK := g.refKColoring(k)
			if ok != refOK {
				t.Errorf("n=%d seed=%d k=%d: kColoring ok=%v, reference %v", tc.n, tc.seed, k, ok, refOK)
			}
		}
	}
}

// TestParallelComponentSolveMatchesSequential forces the worker pool on
// (regardless of host CPU count) and checks that concurrent component
// solves agree with the whole-graph reference. Run with -race this also
// exercises the pool for data races.
func TestParallelComponentSolveMatchesSequential(t *testing.T) {
	old := parallelWorkers
	parallelWorkers = 4
	defer func() { parallelWorkers = old }()

	// Blocks of ~20 vertices clear parallelThreshold.
	g := randomBlockGraph(t, 80, 0.5, 4, 77)
	if chi, ref := g.ChromaticNumber(), g.refChromaticNumber(); chi != ref {
		t.Fatalf("parallel χ=%d, reference %d", chi, ref)
	}
	if om, ref := g.CliqueNumber(), len(g.refMaxClique()); om != ref {
		t.Fatalf("parallel ω=%d, reference %d", om, ref)
	}
	colors, err := g.OptimalColoring()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.ValidateColoring(colors); err != nil {
		t.Fatal(err)
	}
	sharded, global := g.DSATURColoring(), g.dsaturConnected()
	for v := range sharded {
		if sharded[v] != global[v] {
			t.Fatalf("parallel DSATUR[%d]=%d, global %d", v, sharded[v], global[v])
		}
	}
}

func TestComponentsDecomposition(t *testing.T) {
	// Hand-built: {0,1,2} triangle, {3,4} edge, {5} isolated.
	g := NewGraph(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	comps := g.Components()
	want := [][]int{{0, 1, 2}, {3, 4}, {5}}
	if len(comps) != len(want) {
		t.Fatalf("got %d components, want %d", len(comps), len(want))
	}
	for ci := range want {
		if len(comps[ci]) != len(want[ci]) {
			t.Fatalf("component %d = %v, want %v", ci, comps[ci], want[ci])
		}
		for i := range want[ci] {
			if comps[ci][i] != want[ci][i] {
				t.Fatalf("component %d = %v, want %v", ci, comps[ci], want[ci])
			}
		}
	}
	if w := g.ChromaticNumber(); w != 3 {
		t.Fatalf("χ of triangle ∪ edge ∪ vertex = %d, want 3", w)
	}
	if w := g.CliqueNumber(); w != 3 {
		t.Fatalf("ω = %d, want 3", w)
	}
}

func TestComponentsPartitionRandom(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomBlockGraph(t, 40, 0.1, 6, 100+seed)
		comps := g.Components()
		seen := make([]bool, g.N())
		for _, comp := range comps {
			for i, v := range comp {
				if seen[v] {
					t.Fatalf("seed=%d: vertex %d in two components", seed, v)
				}
				seen[v] = true
				if i > 0 && comp[i-1] >= v {
					t.Fatalf("seed=%d: component not sorted: %v", seed, comp)
				}
			}
		}
		for v, s := range seen {
			if !s {
				t.Fatalf("seed=%d: vertex %d missing from decomposition", seed, v)
			}
		}
		// No edge crosses components.
		label := make([]int, g.N())
		for ci, comp := range comps {
			for _, v := range comp {
				label[v] = ci
			}
		}
		for u := 0; u < g.N(); u++ {
			for _, v := range g.Neighbors(u) {
				if label[u] != label[v] {
					t.Fatalf("seed=%d: edge (%d,%d) crosses components", seed, u, v)
				}
			}
		}
	}
}

func TestSubgraphInduced(t *testing.T) {
	g := randomBlockGraph(t, 20, 0.4, 1, 42)
	verts := []int{2, 3, 7, 11, 13, 19}
	sub := g.Subgraph(verts)
	if sub.N() != len(verts) {
		t.Fatalf("subgraph has %d vertices, want %d", sub.N(), len(verts))
	}
	for i, v := range verts {
		for j, u := range verts {
			if sub.HasEdge(i, j) != g.HasEdge(v, u) {
				t.Fatalf("subgraph edge (%d,%d) = %v, graph edge (%d,%d) = %v",
					i, j, sub.HasEdge(i, j), v, u, g.HasEdge(v, u))
			}
		}
	}
}

func TestCountColorsSemantics(t *testing.T) {
	cases := []struct {
		colors []int
		want   int
	}{
		{nil, 0},
		{[]int{0}, 1},
		{[]int{0, 0, 0}, 1},
		{[]int{0, 1, 2, 1}, 3},
		{[]int{-1, 0, -1}, 2},           // uncolored markers count as a value
		{[]int{1 << 30, 0, 1 << 30}, 2}, // sparse palette takes the map path
		{[]int{5, 5, 7, 9, 1 << 20, 7}, 4},
		{[]int{math.MinInt, math.MaxInt}, 2},    // span overflows int
		{[]int{-3, math.MaxInt}, 2},             // span wraps negative
		{[]int{math.MinInt, 0, math.MinInt}, 2}, // negative extreme alone
	}
	for _, tc := range cases {
		if got := CountColors(tc.colors); got != tc.want {
			t.Errorf("CountColors(%v) = %d, want %d", tc.colors, got, tc.want)
		}
	}
}

func TestForEachNeighborMatchesNeighbors(t *testing.T) {
	g := randomBlockGraph(t, 30, 0.3, 1, 7)
	for v := 0; v < g.N(); v++ {
		want := g.Neighbors(v)
		var got []int
		g.ForEachNeighbor(v, func(u int) { got = append(got, u) })
		if len(got) != len(want) {
			t.Fatalf("v=%d: ForEachNeighbor yields %v, Neighbors %v", v, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("v=%d: ForEachNeighbor yields %v, Neighbors %v", v, got, want)
			}
		}
	}
}
