// Package conflict builds and analyses conflict graphs of dipath families.
//
// The conflict graph of (G, P) has one vertex per dipath of P, two
// vertices adjacent exactly when the dipaths share an arc. The minimum
// number of wavelengths w(G,P) is the chromatic number χ of this graph,
// and the load π(G,P) is sandwiched between nothing and the clique number
// ω (π ≤ w always; π = ω for UPP-DAGs, Property 3 of the paper).
//
// The package supplies the combinatorial baselines the experiments
// compare against: greedy and DSATUR heuristics, exact χ and ω by
// branch-and-bound, independence number, and the K_{2,3} test of
// Corollary 5.
package conflict

import (
	"fmt"
	"math/bits"

	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
)

// Graph is a simple undirected graph on vertices 0..n-1 stored as an
// adjacency matrix of bitset rows; n is the number of dipaths in typical
// use, so the quadratic footprint is the right trade-off for the O(1)
// adjacency tests the solvers hammer on.
type Graph struct {
	n    int
	rows []row // rows[v] = neighbourhood bitset of v
	deg  []int
}

type row []uint64

func newRow(n int) row { return make(row, (n+63)/64) }

func (r row) set(i int)      { r[i/64] |= 1 << (uint(i) % 64) }
func (r row) clear(i int)    { r[i/64] &^= 1 << (uint(i) % 64) }
func (r row) get(i int) bool { return r[i/64]&(1<<(uint(i)%64)) != 0 }

// copyFrom overwrites r with src; the rows must have equal length.
func (r row) copyFrom(src row) { copy(r, src) }

// intersectInto sets r = a ∧ b.
func (r row) intersectInto(a, b row) {
	for w := range r {
		r[w] = a[w] & b[w]
	}
}

// subtractInto sets r = a &^ b (a minus b).
func (r row) subtractInto(a, b row) {
	for w := range r {
		r[w] = a[w] &^ b[w]
	}
}

// zero clears every bit.
func (r row) zero() {
	for w := range r {
		r[w] = 0
	}
}

// empty reports whether no bit is set.
func (r row) empty() bool {
	for _, w := range r {
		if w != 0 {
			return false
		}
	}
	return true
}

// popcount returns the number of set bits.
func (r row) popcount() int {
	total := 0
	for _, w := range r {
		total += bits.OnesCount64(w)
	}
	return total
}

// firstSet returns the index of the lowest set bit, or -1 when empty.
func (r row) firstSet() int {
	for wi, w := range r {
		if w != 0 {
			return wi*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// forEach calls f on every set bit index in increasing order. It is the
// allocation-free replacement for materialising neighbour slices in the
// solvers' inner loops.
func (r row) forEach(f func(i int)) {
	for wi, w := range r {
		base := wi * 64
		for w != 0 {
			f(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// NewGraph returns an edgeless undirected graph with n vertices. All
// adjacency rows share one backing array, so construction costs three
// allocations regardless of n.
func NewGraph(n int) *Graph {
	g := &Graph{n: n, rows: make([]row, n), deg: make([]int, n)}
	words := (n + 63) / 64
	backing := make(row, n*words)
	for i := range g.rows {
		g.rows[i] = backing[i*words : (i+1)*words]
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the undirected edge {u, v}; self-loops are rejected and
// re-inserting an existing edge is a no-op.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || v < 0 || u >= g.n || v >= g.n {
		return fmt.Errorf("conflict: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("conflict: self-loop at %d", u)
	}
	if g.rows[u].get(v) {
		return nil
	}
	g.rows[u].set(v)
	g.rows[v].set(u)
	g.deg[u]++
	g.deg[v]++
	return nil
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.n || v >= g.n || u == v {
		return false
	}
	return g.rows[u].get(v)
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int { return g.deg[v] }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, d := range g.deg {
		total += d
	}
	return total / 2
}

// Neighbors returns the neighbours of v in increasing order. It allocates
// a fresh slice per call; hot paths should prefer ForEachNeighbor.
func (g *Graph) Neighbors(v int) []int {
	ns := make([]int, 0, g.deg[v])
	g.rows[v].forEach(func(u int) { ns = append(ns, u) })
	return ns
}

// ForEachNeighbor calls f on every neighbour of v in increasing order
// without allocating. It is the iteration primitive of every solver in
// this package.
func (g *Graph) ForEachNeighbor(v int, f func(u int)) {
	g.rows[v].forEach(f)
}

// Complement returns the complement graph.
func (g *Graph) Complement() *Graph {
	c := NewGraph(g.n)
	for u := 0; u < g.n; u++ {
		for v := u + 1; v < g.n; v++ {
			if !g.rows[u].get(v) {
				if err := c.AddEdge(u, v); err != nil {
					panic(err)
				}
			}
		}
	}
	return c
}

// FromFamily builds the conflict graph of the family f over g: vertices
// are family indices, edges join arc-sharing dipaths.
func FromFamily(g *digraph.Digraph, f dipath.Family) *Graph {
	cg := NewGraph(len(f))
	// Bucket paths by arc so construction is output-sensitive rather than
	// all-pairs-times-length.
	inc := dipath.ArcIncidence(g, f)
	for a, paths := range inc {
		for i := 0; i < len(paths); i++ {
			pi := paths[i]
			for j := i + 1; j < len(paths); j++ {
				// Inlined AddEdge (this pairwise loop is the construction
				// hot path): indices come from the family, so only the
				// self-loop guard can fire — a dipath listed twice on one
				// arc, which AddEdge used to reject loudly.
				pj := paths[j]
				if pi == pj {
					panic(fmt.Sprintf("conflict: dipath %d traverses arc %d twice", pi, a))
				}
				if !cg.rows[pi].get(pj) {
					cg.rows[pi].set(pj)
					cg.rows[pj].set(pi)
					cg.deg[pi]++
					cg.deg[pj]++
				}
			}
		}
	}
	return cg
}

// IsCycle reports whether g is a single cycle C_n (connected, 2-regular,
// n >= 3) — the shape of the conflict graphs of Figures 3 and 5.
func (g *Graph) IsCycle() bool {
	if g.n < 3 {
		return false
	}
	for v := 0; v < g.n; v++ {
		if g.deg[v] != 2 {
			return false
		}
	}
	// Connectivity: walk from 0.
	seen := make([]bool, g.n)
	stack := make([]int, 1, g.n)
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		g.rows[v].forEach(func(u int) {
			if !seen[u] {
				seen[u] = true
				count++
				stack = append(stack, u)
			}
		})
	}
	return count == g.n
}

// IsComplete reports whether g is the complete graph K_n.
func (g *Graph) IsComplete() bool {
	for v := 0; v < g.n; v++ {
		if g.deg[v] != g.n-1 {
			return false
		}
	}
	return true
}

// FindK23 searches for an induced K_{2,3}: two non-adjacent vertices
// u1,u2 and three pairwise non-adjacent vertices w1,w2,w3, with every u
// adjacent to every w. Corollary 5 of the paper states conflict graphs of
// UPP-DAGs contain none (its proof takes the three dipaths of the 3-side
// pairwise disjoint and the two dipaths of the 2-side disjoint, i.e. the
// five vertices induce exactly K_{2,3}). It returns the five vertices
// (2-side first) when found.
func (g *Graph) FindK23() ([2]int, [3]int, bool) {
	for u1 := 0; u1 < g.n; u1++ {
		for u2 := u1 + 1; u2 < g.n; u2++ {
			if g.rows[u1].get(u2) {
				continue
			}
			var common []int
			for w := 0; w < g.n; w++ {
				if w == u1 || w == u2 {
					continue
				}
				if g.rows[u1].get(w) && g.rows[u2].get(w) {
					common = append(common, w)
				}
			}
			// Need 3 pairwise non-adjacent common neighbours.
			for i := 0; i < len(common); i++ {
				for j := i + 1; j < len(common); j++ {
					if g.rows[common[i]].get(common[j]) {
						continue
					}
					for k := j + 1; k < len(common); k++ {
						if g.rows[common[i]].get(common[k]) || g.rows[common[j]].get(common[k]) {
							continue
						}
						return [2]int{u1, u2}, [3]int{common[i], common[j], common[k]}, true
					}
				}
			}
		}
	}
	return [2]int{}, [3]int{}, false
}
