package conflict

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompleteColoringFromScratch(t *testing.T) {
	g := cycleGraph(5)
	partial := []int{-1, -1, -1, -1, -1}
	colors, ok := g.CompleteColoring(partial, 3)
	if !ok {
		t.Fatal("C5 is 3-colorable")
	}
	if err := g.ValidateColoring(colors); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.CompleteColoring(partial, 2); ok {
		t.Fatal("C5 is not 2-colorable")
	}
}

func TestCompleteColoringRespectsFixed(t *testing.T) {
	g := cycleGraph(4)
	// Opposite vertices fixed to the SAME color: completable at k=2.
	partial := []int{0, -1, 0, -1}
	colors, ok := g.CompleteColoring(partial, 2)
	if !ok {
		t.Fatal("completion exists")
	}
	if colors[0] != 0 || colors[2] != 0 {
		t.Fatalf("fixed colors changed: %v", colors)
	}
	if err := g.ValidateColoring(colors); err != nil {
		t.Fatal(err)
	}
	// Opposite vertices fixed to DIFFERENT colors leave no color for
	// their common neighbours at k=2: must fail.
	partial = []int{0, -1, 1, -1}
	if _, ok := g.CompleteColoring(partial, 2); ok {
		t.Fatal("infeasible completion accepted")
	}
	// The same fixed part completes at k=3.
	if colors, ok := g.CompleteColoring(partial, 3); !ok || g.ValidateColoring(colors) != nil {
		t.Fatal("k=3 completion should exist")
	}
	// Adjacent same-colored fixed vertices are rejected outright.
	partial = []int{0, 0, -1, -1}
	if _, ok := g.CompleteColoring(partial, 3); ok {
		t.Fatal("improper fixed part accepted")
	}
}

func TestCompleteColoringBadInputs(t *testing.T) {
	g := cycleGraph(3)
	if _, ok := g.CompleteColoring([]int{0, -1}, 3); ok {
		t.Fatal("length mismatch accepted")
	}
	if _, ok := g.CompleteColoring([]int{5, -1, -1}, 3); ok {
		t.Fatal("fixed color outside palette accepted")
	}
}

func TestCompleteColoringNothingToDo(t *testing.T) {
	g := cycleGraph(3)
	partial := []int{0, 1, 2}
	colors, ok := g.CompleteColoring(partial, 3)
	if !ok {
		t.Fatal("already-complete coloring rejected")
	}
	for i := range partial {
		if colors[i] != partial[i] {
			t.Fatal("complete coloring was altered")
		}
	}
}

// Property: completing a random partial proper coloring with k = χ always
// keeps the fixed part and yields a proper coloring whenever it reports ok;
// and with k = χ and an empty fixed part it always reports ok.
func TestCompleteColoringProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(3+rng.Intn(10), rng.Float64(), rng)
		chi := g.ChromaticNumber()
		// From scratch at k = χ must succeed.
		blank := make([]int, g.N())
		for i := range blank {
			blank[i] = -1
		}
		colors, ok := g.CompleteColoring(blank, chi)
		if !ok || g.ValidateColoring(colors) != nil || CountColors(colors) > chi {
			return false
		}
		// Fix a random subset of an optimal coloring; completion must
		// succeed and respect it.
		opt, err := g.OptimalColoring()
		if err != nil {
			return false
		}
		partial := make([]int, g.N())
		for v := range partial {
			if rng.Intn(2) == 0 {
				partial[v] = opt[v]
			} else {
				partial[v] = -1
			}
		}
		colors, ok = g.CompleteColoring(partial, chi)
		if !ok {
			return false
		}
		for v := range partial {
			if partial[v] >= 0 && colors[v] != partial[v] {
				return false
			}
		}
		return g.ValidateColoring(colors) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
