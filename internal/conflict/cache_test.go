package conflict

import (
	"testing"

	"wavedag/internal/gen"
)

// TestComponentCacheCorrectness solves a disjoint union of identical
// instances twice (cold and warm cache) and checks the answers agree
// with the single-instance ground truth.
func TestComponentCacheCorrectness(t *testing.T) {
	cacheReset()
	gh, fh := gen.Havet()
	single := FromFamily(gh, fh)
	wantChi := single.ChromaticNumber()
	wantOmega := single.CliqueNumber()
	wantDSATUR := CountColors(single.DSATURColoring())

	parts := make([]gen.Instance, 16)
	for i := range parts {
		parts[i] = gen.Instance{G: gh, F: fh}
	}
	g, fam := gen.DisjointUnion(parts...)
	union := FromFamily(g, fam)

	for pass := 0; pass < 2; pass++ {
		if chi := union.ChromaticNumber(); chi != wantChi {
			t.Fatalf("pass %d: union χ = %d, single χ = %d", pass, chi, wantChi)
		}
		if om := union.CliqueNumber(); om != wantOmega {
			t.Fatalf("pass %d: union ω = %d, single ω = %d", pass, om, wantOmega)
		}
		colors := union.DSATURColoring()
		if err := union.ValidateColoring(colors); err != nil {
			t.Fatalf("pass %d: DSATUR invalid: %v", pass, err)
		}
		if w := CountColors(colors); w != wantDSATUR {
			t.Fatalf("pass %d: union DSATUR = %d, single = %d", pass, w, wantDSATUR)
		}
		clique := union.MaxClique()
		for i := 0; i < len(clique); i++ {
			for j := i + 1; j < len(clique); j++ {
				if !union.HasEdge(clique[i], clique[j]) {
					t.Fatalf("pass %d: MaxClique returned a non-clique", pass)
				}
			}
		}
	}
	if cacheLen() == 0 {
		t.Fatal("identical components left no cache entries")
	}
}

// TestComponentCacheDedupWithinCall checks a single call over many
// identical components produces one cache entry per (kind, shape), not
// one per component — the per-call dedup shares a single solve.
func TestComponentCacheDedupWithinCall(t *testing.T) {
	cacheReset()
	gh, fh := gen.Havet()
	parts := make([]gen.Instance, 8)
	for i := range parts {
		parts[i] = gen.Instance{G: gh, F: fh}
	}
	g, fam := gen.DisjointUnion(parts...)
	union := FromFamily(g, fam)
	_, err := union.OptimalColoring()
	if err != nil {
		t.Fatal(err)
	}
	// All components are identical: exactly one χ entry (plus whatever
	// the DSATUR upper bound seeded — it runs inside the χ solve on the
	// same subgraph, not through solveComponents, so just one entry).
	if n := cacheLen(); n != 1 {
		t.Fatalf("cache has %d entries after one solve over identical components, want 1", n)
	}
}

// TestComponentCacheKindSeparation checks χ and ω results do not
// collide in the cache even though they key the same subgraph, and that
// DSATUR — polynomial, cheaper than the key itself — stays out of the
// global memo (it still shares solves within one call).
func TestComponentCacheKindSeparation(t *testing.T) {
	cacheReset()
	gh, fh := gen.Havet()
	parts := []gen.Instance{{G: gh, F: fh}, {G: gh, F: fh}}
	g, fam := gen.DisjointUnion(parts...)
	union := FromFamily(g, fam)
	if _, err := union.OptimalColoring(); err != nil {
		t.Fatal(err)
	}
	after1 := cacheLen()
	if after1 == 0 {
		t.Fatal("χ solve left no cache entry")
	}
	union.DSATURColoring()
	if cacheLen() != after1 {
		t.Fatalf("DSATUR polluted the exact-solver memo: %d -> %d entries", after1, cacheLen())
	}
	union.MaxClique()
	if cacheLen() <= after1 {
		t.Fatalf("ω reused the χ namespace: still %d entries", cacheLen())
	}
}

// TestCanonKey checks the canonicalization: identical subgraphs share a
// key, different adjacency does not.
func TestCanonKey(t *testing.T) {
	a := NewGraph(4)
	b := NewGraph(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}} {
		if err := a.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if canonKey(a) != canonKey(b) {
		t.Fatal("identical graphs got different keys")
	}
	if err := b.AddEdge(0, 3); err != nil {
		t.Fatal(err)
	}
	if canonKey(a) == canonKey(b) {
		t.Fatal("different graphs share a key")
	}
}

// TestCacheOverflowReset fills the cache past its bound and checks the
// partial eviction keeps it bounded without wiping the whole memo.
func TestCacheOverflowReset(t *testing.T) {
	cacheReset()
	for i := 0; i < cacheMaxEntries+10; i++ {
		cachePut(solveChi, 3, string(rune(i))+"x", []int{0, 1, 2})
	}
	n := cacheLen()
	if n > cacheMaxEntries {
		t.Fatalf("cache grew to %d entries, bound is %d", n, cacheMaxEntries)
	}
	if n < cacheMaxEntries/2 {
		t.Fatalf("eviction dropped too much: %d entries left of %d", n, cacheMaxEntries)
	}
	cacheReset()
	if cacheLen() != 0 {
		t.Fatal("reset did not clear")
	}
}
