package conflict

import (
	"fmt"
	"sort"
	"sync"
)

// ValidateColoring checks that colors is a proper coloring of g: one
// non-negative color per vertex, adjacent vertices differently colored.
func (g *Graph) ValidateColoring(colors []int) error {
	if len(colors) != g.n {
		return fmt.Errorf("conflict: %d colors for %d vertices", len(colors), g.n)
	}
	for v, c := range colors {
		if c < 0 {
			return fmt.Errorf("conflict: vertex %d uncolored (color %d)", v, c)
		}
	}
	var bad error
	for u := 0; u < g.n && bad == nil; u++ {
		uu := u
		g.rows[u].forEach(func(v int) {
			if v > uu && bad == nil && colors[uu] == colors[v] {
				bad = fmt.Errorf("conflict: adjacent vertices %d and %d share color %d", uu, v, colors[uu])
			}
		})
	}
	return bad
}

// CountColors returns the number of distinct colors in a coloring. The
// common case — dense non-negative palettes — is counted with a slice;
// arbitrary integers fall back to a map.
func CountColors(colors []int) int {
	if len(colors) == 0 {
		return 0
	}
	minC, maxC := colors[0], colors[0]
	for _, c := range colors {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	// span > 0 also rejects int overflow of maxC-minC (a wrapped diff is
	// always ≤ 0 after +1), steering extreme palettes to the map path.
	if span := maxC - minC + 1; span > 0 && span <= 4*len(colors)+64 {
		seen := make([]bool, span)
		count := 0
		for _, c := range colors {
			if !seen[c-minC] {
				seen[c-minC] = true
				count++
			}
		}
		return count
	}
	seen := make(map[int]bool, len(colors))
	for _, c := range colors {
		seen[c] = true
	}
	return len(seen)
}

// GreedyColoring colors the vertices first-fit in the given order (the
// identity order when order is nil) and returns the color classes as a
// slice parallel to the vertices. The feasibility scratch is reset via a
// touched-list, so each vertex costs O(deg) rather than O(n).
func (g *Graph) GreedyColoring(order []int) []int {
	if order == nil {
		order = make([]int, g.n)
		for i := range order {
			order[i] = i
		}
	}
	colors := make([]int, g.n)
	for i := range colors {
		colors[i] = -1
	}
	used := make([]bool, g.n+1)
	touched := make([]int, 0, 64)
	for _, v := range order {
		touched = touched[:0]
		g.rows[v].forEach(func(u int) {
			if c := colors[u]; c >= 0 && !used[c] {
				used[c] = true
				touched = append(touched, c)
			}
		})
		c := 0
		for used[c] {
			c++
		}
		colors[v] = c
		for _, t := range touched {
			used[t] = false
		}
	}
	return colors
}

// DSATURColoring runs the DSATUR heuristic: repeatedly color the vertex
// with the largest color-saturation (ties: largest degree, then smallest
// id) with the smallest feasible color. Saturation never crosses a
// component boundary, so the global run restricted to a component equals
// the run on that component alone — the heuristic is therefore sharded
// through Components like the exact solvers (identical output, quadratic
// selection cost paid per component instead of globally).
func (g *Graph) DSATURColoring() []int {
	comps := g.Components()
	if len(comps) <= 1 {
		return g.dsaturConnected()
	}
	results := solveComponents(g, comps, solveDSATUR, func(sub *Graph) []int {
		return sub.dsaturConnected()
	})
	colors := make([]int, g.n)
	for ci, comp := range comps {
		for i, v := range comp {
			colors[v] = results[ci][i]
		}
	}
	return colors
}

func (g *Graph) dsaturConnected() []int {
	colors := make([]int, g.n)
	for i := range colors {
		colors[i] = -1
	}
	satRows := make([]row, g.n) // bit c set = neighbor colored c
	satCount := make([]int, g.n)
	words := (g.n + 64) / 64        // room for colors 0..g.n
	backing := make(row, g.n*words) // one backing array for all saturation rows
	for i := range satRows {
		satRows[i] = backing[i*words : (i+1)*words]
	}
	for done := 0; done < g.n; done++ {
		best, bestSat, bestDeg := -1, -1, -1
		for v := 0; v < g.n; v++ {
			if colors[v] >= 0 {
				continue
			}
			if satCount[v] > bestSat || (satCount[v] == bestSat && g.deg[v] > bestDeg) {
				best, bestSat, bestDeg = v, satCount[v], g.deg[v]
			}
		}
		c := 0
		for satRows[best].get(c) {
			c++
		}
		colors[best] = c
		g.rows[best].forEach(func(u int) {
			if colors[u] < 0 && !satRows[u].get(c) {
				satRows[u].set(c)
				satCount[u]++
			}
		})
	}
	return colors
}

// MaxClique returns a maximum clique of g (exact, branch-and-bound with a
// greedy-coloring upper bound in the style of Tomita's MCQ). The graph is
// decomposed into connected components first — ω of a disjoint union is
// the max over components. Components are visited largest first, so any
// component no larger than the best clique found so far is skipped
// outright; complete components are answered without a search; and small
// components go through the canonical component cache, so a disjoint
// union of identical instances searches once and reuses the clique.
func (g *Graph) MaxClique() []int {
	if g.n == 0 {
		return nil
	}
	comps := g.Components()
	if len(comps) == 1 {
		return g.maxCliqueConnected()
	}
	// Largest components first: their cliques raise the size bound that
	// lets smaller components be skipped without a search. Insertion sort
	// avoids sort.Slice's reflection cost on the tiny common case.
	bySize := make([]int, len(comps))
	for i := range bySize {
		bySize[i] = i
	}
	for i := 1; i < len(bySize); i++ {
		for j := i; j > 0 && len(comps[bySize[j]]) > len(comps[bySize[j-1]]); j-- {
			bySize[j], bySize[j-1] = bySize[j-1], bySize[j]
		}
	}
	var best []int // in original vertex ids
	pos := make([]int, g.n)
	for _, ci := range bySize {
		comp := comps[ci]
		if len(comp) <= len(best) {
			break // sorted by size: nothing later can beat the best
		}
		// A connected component whose vertices all have degree |comp|-1
		// is complete: the component is its own maximum clique.
		complete := true
		for _, v := range comp {
			if g.deg[v] != len(comp)-1 {
				complete = false
				break
			}
		}
		if complete {
			best = append(best[:0:0], comp...)
			continue
		}
		var local []int // clique in component-local indices
		if len(comp) <= cacheMaxVertices {
			sub := g.componentSubgraph(comp, pos)
			local = cachedSolve(solveOmega, sub, func(sub *Graph) []int {
				return sub.maxCliqueConnected()
			})
		} else {
			// Too large to canonicalize: search with the best-so-far as a
			// pruning floor (the cross-component bound the cached path
			// gets from skipping whole components).
			sub := g.componentSubgraph(comp, pos)
			local = sub.maxCliqueConnectedFloor(len(best))
		}
		if len(local) > len(best) {
			best = best[:0]
			for _, i := range local {
				best = append(best, comp[i])
			}
		}
	}
	sort.Ints(best)
	return best
}

// maxCliqueConnected is the exact search on the whole graph.
func (g *Graph) maxCliqueConnected() []int {
	return g.maxCliqueConnectedFloor(0)
}

// maxCliqueConnectedFloor is maxCliqueConnected with an external pruning
// floor: subtrees that cannot beat floor are cut. When the true maximum
// clique is no larger than floor the result may be smaller than the
// maximum — callers discard results not exceeding their floor.
func (g *Graph) maxCliqueConnectedFloor(floor int) []int {
	n := g.n
	if n == 0 {
		return nil
	}
	if n == 1 {
		return []int{0}
	}
	// Cliques and near-cliques (the Figure 1 staircase conflict graphs)
	// are the worst case for the search but trivial to recognise.
	if g.IsComplete() {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	s := newMCSolver(g)
	s.floor = floor
	s.search()
	return s.clique()
}

// mcFrame is the per-depth scratch of the clique search.
type mcFrame struct {
	rem, avail, uncolored, next row
	verts, cols                 []int
}

// mcSolver holds the shared state of the Tomita-style maximum-clique
// search: the degree-descending vertex permutation, the permuted
// adjacency bitsets, and lazily grown per-depth scratch frames (the
// recursion depth is bounded by the largest clique plus one, far below n
// in practice). One solver serves many searches — in particular one per
// connected component — so the expensive setup is paid once.
type mcSolver struct {
	g      *Graph
	n      int
	words  int
	order  []int // permuted index -> vertex
	pos    []int // vertex -> permuted index
	adj    []row // permuted adjacency
	frames []*mcFrame
	cand0  row // scratch for the initial candidate set of a search
	best   []int
	cur    []int
	floor  int // external pruning bound: cliques ≤ floor are worthless
}

func newMCSolver(g *Graph) *mcSolver {
	n := g.n
	s := &mcSolver{g: g, n: n, words: (n + 63) / 64}
	// Renumber vertices by decreasing degree so the ascending bit-scan of
	// the coloring visits high-degree vertices first (better early
	// bounds). Counting sort: degrees are < n, and filling ascending ids
	// per bucket breaks ties toward the smaller vertex.
	bucketStart := make([]int, n+1)
	for _, d := range g.deg {
		bucketStart[d]++
	}
	acc := 0
	for d := n; d >= 0; d-- {
		c := bucketStart[d]
		bucketStart[d] = acc
		acc += c
	}
	s.order = make([]int, n)
	s.pos = make([]int, n)
	for v := 0; v < n; v++ {
		i := bucketStart[g.deg[v]]
		bucketStart[g.deg[v]]++
		s.order[i] = v
		s.pos[v] = i
	}
	adjBacking := make(row, n*s.words)
	s.adj = make([]row, n)
	for i := range s.adj {
		s.adj[i] = adjBacking[i*s.words : (i+1)*s.words]
	}
	for v := 0; v < n; v++ {
		pv := s.pos[v]
		g.rows[v].forEach(func(u int) { s.adj[pv].set(s.pos[u]) })
	}
	s.cand0 = newRow(n)
	s.cur = make([]int, 0, n)
	return s
}

// clique returns the best clique found so far in original vertex ids.
func (s *mcSolver) clique() []int {
	clique := make([]int, len(s.best))
	for i, pv := range s.best {
		clique[i] = s.order[pv]
	}
	sort.Ints(clique)
	return clique
}

// search explores all vertices, keeping any previously found best
// clique as the pruning bound.
func (s *mcSolver) search() {
	s.cand0.zero()
	for i := 0; i < s.n; i++ {
		s.cand0.set(i)
	}
	if len(s.best) == 0 && s.n > 0 {
		s.best = []int{0}
	}
	s.expand(0, s.cand0)
}

func (s *mcSolver) getFrame(d int) *mcFrame {
	for len(s.frames) <= d {
		backing := make(row, 4*s.words)
		ints := make([]int, 2*s.n)
		s.frames = append(s.frames, &mcFrame{
			rem:       backing[:s.words],
			avail:     backing[s.words : 2*s.words],
			uncolored: backing[2*s.words : 3*s.words],
			next:      backing[3*s.words : 4*s.words],
			verts:     ints[:0:s.n],
			cols:      ints[s.n : s.n : 2*s.n],
		})
	}
	return s.frames[d]
}

func (s *mcSolver) expand(d int, cand row) {
	if cand.empty() {
		if len(s.cur) > len(s.best) {
			s.best = append(s.best[:0:0], s.cur...)
		}
		return
	}
	f := s.getFrame(d)
	// Greedy coloring of cand: peel off independent color classes.
	f.verts = f.verts[:0]
	f.cols = f.cols[:0]
	f.uncolored.copyFrom(cand)
	c := 0
	for !f.uncolored.empty() {
		f.avail.copyFrom(f.uncolored)
		for {
			v := f.avail.firstSet()
			if v < 0 {
				break
			}
			f.avail.clear(v)
			f.uncolored.clear(v)
			f.verts = append(f.verts, v)
			f.cols = append(f.cols, c)
			f.avail.subtractInto(f.avail, s.adj[v])
		}
		c++
	}
	// Visit candidates highest color first so the bound prunes early;
	// f.rem tracks the not-yet-visited (lower-colored) candidates.
	f.rem.copyFrom(cand)
	for i := len(f.verts) - 1; i >= 0; i-- {
		v := f.verts[i]
		bound := len(s.best) // s.best can grow inside the recursion
		if s.floor > bound {
			bound = s.floor
		}
		if len(s.cur)+f.cols[i]+1 <= bound {
			return // all remaining candidates have smaller bounds
		}
		f.rem.clear(v)
		f.next.intersectInto(f.rem, s.adj[v])
		s.cur = append(s.cur, v)
		s.expand(d+1, f.next)
		s.cur = s.cur[:len(s.cur)-1]
	}
}

// CliqueNumber returns ω(g).
func (g *Graph) CliqueNumber() int { return len(g.MaxClique()) }

// IndependenceNumber returns α(g) = ω(complement).
func (g *Graph) IndependenceNumber() int { return g.Complement().CliqueNumber() }

// ChromaticNumber computes χ(g) exactly by iterative-deepening
// branch-and-bound over connected components: it starts from the clique
// lower bound and the DSATUR upper bound per component and searches for a
// k-coloring for each k in between. Exponential in the worst case;
// intended for experiment-scale graphs.
func (g *Graph) ChromaticNumber() int {
	colors, _ := g.OptimalColoring()
	return CountColors(colors)
}

// OptimalColoring returns a coloring with exactly χ(g) colors. The graph
// is solved one connected component at a time (χ of a disjoint union is
// the max over components), with components dispatched to a bounded
// worker pool when the decomposition is non-trivial; see Components.
func (g *Graph) OptimalColoring() ([]int, error) {
	if g.n == 0 {
		return nil, nil
	}
	comps := g.Components()
	if len(comps) == 1 {
		return g.optimalColoringConnected(), nil
	}
	results := solveComponents(g, comps, solveChi, func(sub *Graph) []int {
		return sub.optimalColoringConnected()
	})
	colors := make([]int, g.n)
	for ci, comp := range comps {
		for i, v := range comp {
			colors[v] = results[ci][i]
		}
	}
	return colors, nil
}

// optimalColoringConnected runs the branch-and-bound on g as a whole.
func (g *Graph) optimalColoringConnected() []int {
	if g.n == 0 {
		return nil
	}
	lower := g.maxCliqueConnectedSize()
	upperColors := g.dsaturConnected()
	upper := CountColors(upperColors)
	if lower == upper {
		return upperColors
	}
	ws := acquireColorWS(g, upper)
	defer releaseColorWS(ws)
	for k := lower; k < upper; k++ {
		if colors, ok := ws.kColoring(k); ok {
			return colors
		}
	}
	return upperColors
}

func (g *Graph) maxCliqueConnectedSize() int { return len(g.maxCliqueConnected()) }

// colorWS is the reusable search workspace of the exact coloring
// routines. It maintains, incrementally under assign/unassign, each
// vertex's saturation bitset (colors used by colored neighbours) and the
// per-(vertex,color) count of colored neighbours, so the DSATUR-style
// most-constrained-vertex selection reads preexisting state instead of
// allocating and recomputing a palette row per candidate per search node.
//
// Workspaces are pooled (acquireColorWS/releaseColorWS): per-component
// exact solves on sharded graphs used to pay ~5 allocations per
// component; a pooled workspace is rebound to the next (graph, k) pair
// and only reallocates when it has to grow.
type colorWS struct {
	g          *Graph
	k          int   // palette capacity the workspace was sized for
	words      int   // words per saturation row
	colors     []int // current assignment; -1 = uncolored
	satRows    []row // satRows[v] bit c: some colored neighbour of v has color c
	satBacking row   // one backing array for all saturation rows
	satCount   []int // popcount of satRows[v]
	nbrCount   []int // nbrCount[v*k+c]: colored neighbours of v with color c
}

// init (re)binds the workspace to g with palette capacity k, growing
// the backing arrays only when needed, and leaves it all-uncolored.
func (ws *colorWS) init(g *Graph, k int) {
	if k < 1 {
		k = 1
	}
	n := g.n
	words := (k + 63) / 64
	ws.g, ws.k, ws.words = g, k, words
	if cap(ws.colors) < n {
		ws.colors = make([]int, n)
	} else {
		ws.colors = ws.colors[:n]
	}
	if cap(ws.satCount) < n {
		ws.satCount = make([]int, n)
	} else {
		ws.satCount = ws.satCount[:n]
	}
	if cap(ws.nbrCount) < n*k {
		ws.nbrCount = make([]int, n*k)
	} else {
		ws.nbrCount = ws.nbrCount[:n*k]
	}
	if cap(ws.satBacking) < n*words {
		ws.satBacking = make(row, n*words)
	} else {
		ws.satBacking = ws.satBacking[:n*words]
	}
	if cap(ws.satRows) < n {
		ws.satRows = make([]row, n)
	} else {
		ws.satRows = ws.satRows[:n]
	}
	for v := 0; v < n; v++ {
		ws.satRows[v] = ws.satBacking[v*words : (v+1)*words]
	}
	ws.reset()
}

// colorWSPool recycles workspaces across solves (and goroutines: the
// component worker pool acquires per solve).
var colorWSPool = sync.Pool{New: func() any { return new(colorWS) }}

// acquireColorWS takes a workspace for one solve; the caller returns
// it through releaseColorWS when the solve finishes.
//
//wavedag:pool-handoff
func acquireColorWS(g *Graph, k int) *colorWS {
	ws := colorWSPool.Get().(*colorWS)
	ws.init(g, k)
	return ws
}

func releaseColorWS(ws *colorWS) {
	ws.g = nil // drop the graph reference while pooled
	colorWSPool.Put(ws)
}

// reset returns the workspace to the all-uncolored state.
func (ws *colorWS) reset() {
	for v := range ws.colors {
		ws.colors[v] = -1
		ws.satCount[v] = 0
		ws.satRows[v].zero()
	}
	for i := range ws.nbrCount {
		ws.nbrCount[i] = 0
	}
}

// assign colors v with c, updating neighbour saturation.
func (ws *colorWS) assign(v, c int) {
	ws.colors[v] = c
	g, k := ws.g, ws.k
	g.rows[v].forEach(func(u int) {
		idx := u*k + c
		ws.nbrCount[idx]++
		if ws.nbrCount[idx] == 1 {
			ws.satRows[u].set(c)
			ws.satCount[u]++
		}
	})
}

// unassign removes v's color, updating neighbour saturation.
func (ws *colorWS) unassign(v int) {
	c := ws.colors[v]
	ws.colors[v] = -1
	g, k := ws.g, ws.k
	g.rows[v].forEach(func(u int) {
		idx := u*k + c
		ws.nbrCount[idx]--
		if ws.nbrCount[idx] == 0 {
			ws.satRows[u].clear(c)
			ws.satCount[u]--
		}
	})
}

// mostSaturated returns the uncolored vertex with maximum saturation,
// ties broken by degree then smallest id; -1 when everything is colored.
func (ws *colorWS) mostSaturated() int {
	g := ws.g
	best, bestSat, bestDeg := -1, -1, -1
	for v := 0; v < g.n; v++ {
		if ws.colors[v] >= 0 {
			continue
		}
		if ws.satCount[v] > bestSat || (ws.satCount[v] == bestSat && g.deg[v] > bestDeg) {
			best, bestSat, bestDeg = v, ws.satCount[v], g.deg[v]
		}
	}
	return best
}

// kColoring searches for a proper coloring with at most k colors using
// DSATUR-ordered backtracking with symmetry breaking (a vertex may use at
// most one brand-new color). Requires k <= the capacity the workspace was
// built with.
func (ws *colorWS) kColoring(k int) ([]int, bool) {
	if k > ws.k {
		return nil, false
	}
	ws.reset()
	g := ws.g
	var assign func(done, maxUsed int) bool
	assign = func(done, maxUsed int) bool {
		if done == g.n {
			return true
		}
		best := ws.mostSaturated()
		if ws.satCount[best] >= k {
			return false // saturated vertex has no color left
		}
		limit := maxUsed + 1 // symmetry breaking: at most one new color
		if limit > k {
			limit = k
		}
		sat := ws.satRows[best]
		for c := 0; c < limit; c++ {
			if sat.get(c) {
				continue
			}
			ws.assign(best, c)
			nextMax := maxUsed
			if c == maxUsed {
				nextMax++
			}
			if assign(done+1, nextMax) {
				return true
			}
			ws.unassign(best)
		}
		return false
	}
	if assign(0, 0) {
		return append([]int(nil), ws.colors...), true
	}
	return nil, false
}

// kColoring searches for a proper coloring of g with at most k colors.
func (g *Graph) kColoring(k int) ([]int, bool) {
	ws := acquireColorWS(g, k)
	defer releaseColorWS(ws)
	return ws.kColoring(k)
}

// CompleteColoring extends a partial coloring (-1 marks uncolored
// vertices, other entries are fixed) to a proper coloring with colors in
// [0, k), using DSATUR-ordered backtracking with a node cap. It returns
// the completed coloring, or ok=false when none was found within the cap
// (which does not prove infeasibility).
func (g *Graph) CompleteColoring(partial []int, k int) ([]int, bool) {
	if len(partial) != g.n || k < 0 {
		return nil, false
	}
	ws := acquireColorWS(g, k)
	defer releaseColorWS(ws)
	uncolored := 0
	for v, c := range partial {
		if c >= k {
			return nil, false // fixed color out of palette
		}
		if c < 0 {
			uncolored++
			continue
		}
		if ws.satRows[v].get(c) {
			return nil, false // fixed part already improper
		}
		ws.assign(v, c)
	}
	var nodes int
	const nodeCap = 2000000
	var assign func(left int) bool
	assign = func(left int) bool {
		if left == 0 {
			return true
		}
		if nodes++; nodes > nodeCap {
			return false
		}
		best := ws.mostSaturated()
		if ws.satCount[best] >= k {
			return false // saturated vertex has no color left
		}
		sat := ws.satRows[best]
		for c := 0; c < k; c++ {
			if sat.get(c) {
				continue
			}
			ws.assign(best, c)
			if assign(left - 1) {
				return true
			}
			ws.unassign(best)
		}
		return false
	}
	if !assign(uncolored) {
		return nil, false
	}
	return append([]int(nil), ws.colors...), true
}
