package conflict

import (
	"fmt"
	"sort"
)

// ValidateColoring checks that colors is a proper coloring of g: one
// non-negative color per vertex, adjacent vertices differently colored.
func (g *Graph) ValidateColoring(colors []int) error {
	if len(colors) != g.n {
		return fmt.Errorf("conflict: %d colors for %d vertices", len(colors), g.n)
	}
	for v, c := range colors {
		if c < 0 {
			return fmt.Errorf("conflict: vertex %d uncolored (color %d)", v, c)
		}
	}
	for u := 0; u < g.n; u++ {
		for v := u + 1; v < g.n; v++ {
			if g.rows[u].get(v) && colors[u] == colors[v] {
				return fmt.Errorf("conflict: adjacent vertices %d and %d share color %d", u, v, colors[u])
			}
		}
	}
	return nil
}

// CountColors returns the number of distinct colors in a coloring.
func CountColors(colors []int) int {
	seen := make(map[int]bool, len(colors))
	for _, c := range colors {
		seen[c] = true
	}
	return len(seen)
}

// GreedyColoring colors the vertices first-fit in the given order (the
// identity order when order is nil) and returns the color classes as a
// slice parallel to the vertices.
func (g *Graph) GreedyColoring(order []int) []int {
	if order == nil {
		order = make([]int, g.n)
		for i := range order {
			order[i] = i
		}
	}
	colors := make([]int, g.n)
	for i := range colors {
		colors[i] = -1
	}
	used := make([]bool, g.n+1)
	for _, v := range order {
		for i := range used {
			used[i] = false
		}
		for _, u := range g.Neighbors(v) {
			if colors[u] >= 0 {
				used[colors[u]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[v] = c
	}
	return colors
}

// DSATURColoring runs the DSATUR heuristic: repeatedly color the vertex
// with the largest color-saturation (ties: largest degree, then smallest
// id) with the smallest feasible color.
func (g *Graph) DSATURColoring() []int {
	colors := make([]int, g.n)
	for i := range colors {
		colors[i] = -1
	}
	satRows := make([]row, g.n) // bit c set = neighbor colored c
	satCount := make([]int, g.n)
	for i := range satRows {
		satRows[i] = newRow(g.n + 1)
	}
	for done := 0; done < g.n; done++ {
		best, bestSat, bestDeg := -1, -1, -1
		for v := 0; v < g.n; v++ {
			if colors[v] >= 0 {
				continue
			}
			if satCount[v] > bestSat || (satCount[v] == bestSat && g.deg[v] > bestDeg) {
				best, bestSat, bestDeg = v, satCount[v], g.deg[v]
			}
		}
		c := 0
		for satRows[best].get(c) {
			c++
		}
		colors[best] = c
		for _, u := range g.Neighbors(best) {
			if colors[u] < 0 && !satRows[u].get(c) {
				satRows[u].set(c)
				satCount[u]++
			}
		}
	}
	return colors
}

// MaxClique returns a maximum clique of g (exact, branch-and-bound with a
// greedy-coloring upper bound in the style of Tomita's MCQ). Intended for
// the instance sizes of the experiments (hundreds of vertices when sparse).
func (g *Graph) MaxClique() []int {
	if g.n == 0 {
		return nil
	}
	// Order vertices by decreasing degree for better early bounds.
	order := make([]int, g.n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return g.deg[order[i]] > g.deg[order[j]] })

	best := []int{order[0]}
	var cur []int

	var expand func(cand []int)
	expand = func(cand []int) {
		if len(cand) == 0 {
			if len(cur) > len(best) {
				best = append(best[:0:0], cur...)
			}
			return
		}
		// Greedy coloring of cand gives an upper bound: a clique can take
		// at most one vertex per color class.
		colorOf := make(map[int]int, len(cand))
		numColors := 0
		for _, v := range cand {
			used := map[int]bool{}
			for _, u := range cand {
				if u == v {
					break
				}
				if g.rows[v].get(u) {
					used[colorOf[u]] = true
				}
			}
			c := 0
			for used[c] {
				c++
			}
			colorOf[v] = c
			if c+1 > numColors {
				numColors = c + 1
			}
		}
		// Visit candidates in decreasing color so pruning kicks in early.
		sorted := append([]int(nil), cand...)
		sort.Slice(sorted, func(i, j int) bool { return colorOf[sorted[i]] > colorOf[sorted[j]] })
		for i, v := range sorted {
			// Upper bound: remaining candidates can add at most
			// colorOf[v]+1 vertices.
			if len(cur)+colorOf[v]+1 <= len(best) {
				return
			}
			var next []int
			for _, u := range sorted[i+1:] {
				if g.rows[v].get(u) {
					next = append(next, u)
				}
			}
			cur = append(cur, v)
			expand(next)
			cur = cur[:len(cur)-1]
		}
	}
	expand(order)
	sort.Ints(best)
	return best
}

// CliqueNumber returns ω(g).
func (g *Graph) CliqueNumber() int { return len(g.MaxClique()) }

// IndependenceNumber returns α(g) = ω(complement).
func (g *Graph) IndependenceNumber() int { return g.Complement().CliqueNumber() }

// ChromaticNumber computes χ(g) exactly by iterative-deepening
// branch-and-bound: it starts from the clique lower bound and the DSATUR
// upper bound and searches for a k-coloring for each k in between.
// Exponential in the worst case; intended for experiment-scale graphs.
func (g *Graph) ChromaticNumber() int {
	colors, _ := g.OptimalColoring()
	return CountColors(colors)
}

// OptimalColoring returns a coloring with exactly χ(g) colors.
func (g *Graph) OptimalColoring() ([]int, error) {
	if g.n == 0 {
		return nil, nil
	}
	lower := g.CliqueNumber()
	upperColors := g.DSATURColoring()
	upper := CountColors(upperColors)
	if lower == upper {
		return upperColors, nil
	}
	for k := lower; k < upper; k++ {
		if colors, ok := g.kColoring(k); ok {
			return colors, nil
		}
	}
	return upperColors, nil
}

// CompleteColoring extends a partial coloring (-1 marks uncolored
// vertices, other entries are fixed) to a proper coloring with colors in
// [0, k), using DSATUR-ordered backtracking with a node cap. It returns
// the completed coloring, or ok=false when none was found within the cap
// (which does not prove infeasibility).
func (g *Graph) CompleteColoring(partial []int, k int) ([]int, bool) {
	if len(partial) != g.n {
		return nil, false
	}
	colors := append([]int(nil), partial...)
	uncolored := 0
	for v, c := range colors {
		if c >= k {
			return nil, false // fixed color out of palette
		}
		if c < 0 {
			colors[v] = -1
			uncolored++
		} else {
			for _, u := range g.Neighbors(v) {
				if colors[u] == colors[v] && u != v && partial[u] >= 0 {
					return nil, false // fixed part already improper
				}
			}
		}
	}
	var nodes int
	const nodeCap = 2000000
	var assign func(left int) bool
	assign = func(left int) bool {
		if left == 0 {
			return true
		}
		if nodes++; nodes > nodeCap {
			return false
		}
		// DSATUR MRV: most saturated uncolored vertex, ties by degree.
		best, bestSat, bestDeg := -1, -1, -1
		var bestUsed row
		for v := 0; v < g.n; v++ {
			if colors[v] >= 0 {
				continue
			}
			used := newRow(k)
			sat := 0
			for _, u := range g.Neighbors(v) {
				if c := colors[u]; c >= 0 && !used.get(c) {
					used.set(c)
					sat++
				}
			}
			if sat > bestSat || (sat == bestSat && g.deg[v] > bestDeg) {
				best, bestSat, bestDeg, bestUsed = v, sat, g.deg[v], used
			}
		}
		if bestSat >= k {
			return false // saturated vertex has no color left
		}
		for c := 0; c < k; c++ {
			if bestUsed.get(c) {
				continue
			}
			colors[best] = c
			if assign(left - 1) {
				return true
			}
			colors[best] = -1
		}
		return false
	}
	if !assign(uncolored) {
		return nil, false
	}
	return colors, true
}

// kColoring searches for a proper coloring with at most k colors using
// DSATUR-ordered backtracking with symmetry breaking (a vertex may use at
// most one brand-new color).
func (g *Graph) kColoring(k int) ([]int, bool) {
	colors := make([]int, g.n)
	for i := range colors {
		colors[i] = -1
	}
	var assign func(done, maxUsed int) bool
	assign = func(done, maxUsed int) bool {
		if done == g.n {
			return true
		}
		// DSATUR choice: most saturated uncolored vertex.
		best, bestSat, bestDeg := -1, -1, -1
		var bestUsed row
		for v := 0; v < g.n; v++ {
			if colors[v] >= 0 {
				continue
			}
			used := newRow(k)
			sat := 0
			for _, u := range g.Neighbors(v) {
				if colors[u] >= 0 && !used.get(colors[u]) {
					used.set(colors[u])
					sat++
				}
			}
			if sat > bestSat || (sat == bestSat && g.deg[v] > bestDeg) {
				best, bestSat, bestDeg, bestUsed = v, sat, g.deg[v], used
			}
		}
		limit := maxUsed + 1 // symmetry breaking: at most one new color
		if limit > k {
			limit = k
		}
		for c := 0; c < limit; c++ {
			if bestUsed.get(c) {
				continue
			}
			colors[best] = c
			nextMax := maxUsed
			if c == maxUsed {
				nextMax++
			}
			if assign(done+1, nextMax) {
				return true
			}
			colors[best] = -1
		}
		return false
	}
	if assign(0, 0) {
		return colors, true
	}
	return nil, false
}
