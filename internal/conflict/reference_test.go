package conflict

import "sort"

// This file retains the pre-optimization solver implementations verbatim
// (map-based candidate sets, slice-returning Neighbors, per-node palette
// allocation, no component sharding). They are deliberately slow and
// exist only as oracles for the randomized equivalence tests — the
// optimized solvers in color.go must agree with them on every instance.

// refGreedyColoring is the original first-fit coloring with an O(n) full
// reset of the feasibility scratch per vertex.
func (g *Graph) refGreedyColoring(order []int) []int {
	if order == nil {
		order = make([]int, g.n)
		for i := range order {
			order[i] = i
		}
	}
	colors := make([]int, g.n)
	for i := range colors {
		colors[i] = -1
	}
	used := make([]bool, g.n+1)
	for _, v := range order {
		for i := range used {
			used[i] = false
		}
		for _, u := range g.Neighbors(v) {
			if colors[u] >= 0 {
				used[colors[u]] = true
			}
		}
		c := 0
		for used[c] {
			c++
		}
		colors[v] = c
	}
	return colors
}

// refMaxClique is the original branch-and-bound with map-based greedy
// color bounds and slice candidate sets, run on the whole graph.
func (g *Graph) refMaxClique() []int {
	if g.n == 0 {
		return nil
	}
	order := make([]int, g.n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return g.deg[order[i]] > g.deg[order[j]] })

	best := []int{order[0]}
	var cur []int

	var expand func(cand []int)
	expand = func(cand []int) {
		if len(cand) == 0 {
			if len(cur) > len(best) {
				best = append(best[:0:0], cur...)
			}
			return
		}
		colorOf := make(map[int]int, len(cand))
		numColors := 0
		for _, v := range cand {
			used := map[int]bool{}
			for _, u := range cand {
				if u == v {
					break
				}
				if g.rows[v].get(u) {
					used[colorOf[u]] = true
				}
			}
			c := 0
			for used[c] {
				c++
			}
			colorOf[v] = c
			if c+1 > numColors {
				numColors = c + 1
			}
		}
		sorted := append([]int(nil), cand...)
		sort.Slice(sorted, func(i, j int) bool { return colorOf[sorted[i]] > colorOf[sorted[j]] })
		for i, v := range sorted {
			if len(cur)+colorOf[v]+1 <= len(best) {
				return
			}
			var next []int
			for _, u := range sorted[i+1:] {
				if g.rows[v].get(u) {
					next = append(next, u)
				}
			}
			cur = append(cur, v)
			expand(next)
			cur = cur[:len(cur)-1]
		}
	}
	expand(order)
	sort.Ints(best)
	return best
}

// refKColoring is the original DSATUR-ordered backtracking search with a
// fresh palette row allocated per candidate per node.
func (g *Graph) refKColoring(k int) ([]int, bool) {
	colors := make([]int, g.n)
	for i := range colors {
		colors[i] = -1
	}
	var assign func(done, maxUsed int) bool
	assign = func(done, maxUsed int) bool {
		if done == g.n {
			return true
		}
		best, bestSat, bestDeg := -1, -1, -1
		var bestUsed row
		for v := 0; v < g.n; v++ {
			if colors[v] >= 0 {
				continue
			}
			used := newRow(k)
			sat := 0
			for _, u := range g.Neighbors(v) {
				if colors[u] >= 0 && !used.get(colors[u]) {
					used.set(colors[u])
					sat++
				}
			}
			if sat > bestSat || (sat == bestSat && g.deg[v] > bestDeg) {
				best, bestSat, bestDeg, bestUsed = v, sat, g.deg[v], used
			}
		}
		limit := maxUsed + 1
		if limit > k {
			limit = k
		}
		for c := 0; c < limit; c++ {
			if bestUsed.get(c) {
				continue
			}
			colors[best] = c
			nextMax := maxUsed
			if c == maxUsed {
				nextMax++
			}
			if assign(done+1, nextMax) {
				return true
			}
			colors[best] = -1
		}
		return false
	}
	if assign(0, 0) {
		return colors, true
	}
	return nil, false
}

// refOptimalColoring is the original whole-graph (unsharded) exact
// coloring built on refMaxClique and refKColoring.
func (g *Graph) refOptimalColoring() []int {
	if g.n == 0 {
		return nil
	}
	lower := len(g.refMaxClique())
	upperColors := g.DSATURColoring()
	upper := CountColors(upperColors)
	if lower == upper {
		return upperColors
	}
	for k := lower; k < upper; k++ {
		if colors, ok := g.refKColoring(k); ok {
			return colors
		}
	}
	return upperColors
}

// refChromaticNumber is the original whole-graph exact χ.
func (g *Graph) refChromaticNumber() int {
	return CountColors(g.refOptimalColoring())
}
