package conflict

import (
	"fmt"
	"math/rand"
	"testing"
)

// disjointRandomUnion builds one Graph that is the disjoint union of
// comps random graphs of size k each (distinct seeds, so the per-call
// dedup and the component cache cannot collapse them).
func disjointRandomUnion(comps, k int, p float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := NewGraph(comps * k)
	for c := 0; c < comps; c++ {
		base := c * k
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if rng.Float64() < p {
					if err := g.AddEdge(base+i, base+j); err != nil {
						panic(err)
					}
				}
			}
			// Chain the component so it stays connected (one component per
			// block, sizes exactly k).
			if i+1 < k {
				if err := g.AddEdge(base+i, base+i+1); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

// BenchmarkPoolCalibration measures the component worker pool's
// dispatch overhead against per-component solve cost — the data behind
// the parallelThreshold constant. For each component size it runs the
// same DSATUR sharding (the cheapest solver the pool ever dispatches,
// so the measured crossover is conservative for the exact solvers)
// twice: workers=1 (inline) and workers=4 with the threshold forced to
// zero (every component dispatched through the pool). On a single-CPU
// box the difference is pure pool overhead; on a multi-core box the
// parallel column additionally shows the speedup the threshold gates.
// Compare ns/op between seq and forced-pool at equal k:
//
//	threshold ≈ smallest k where (seq cost)/components dominates
//	            (forced − seq)/components
func BenchmarkPoolCalibration(b *testing.B) {
	const comps = 32
	for _, k := range []int{8, 12, 16, 24, 32, 48} {
		g := disjointRandomUnion(comps, k, 0.3, int64(1000+k))
		for _, mode := range []string{"seq", "pool"} {
			b.Run(fmt.Sprintf("k=%d/%s", k, mode), func(b *testing.B) {
				defer func(w, th int) { parallelWorkers, parallelThreshold = w, th }(parallelWorkers, parallelThreshold)
				if mode == "seq" {
					parallelWorkers = 1
				} else {
					parallelWorkers = 4
					parallelThreshold = 0
				}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if w := CountColors(g.DSATURColoring()); w < 2 {
						b.Fatalf("w=%d", w)
					}
				}
			})
		}
	}
}
