package conflict

import (
	"encoding/binary"
	"sync"
)

// Component-level result cache for the exact solvers.
//
// Disjoint-union workloads (replicated instances, batched requests)
// decompose into many components that are frequently *identical* — the
// 64-component union benchmark solves the same subproblem 64 times.
// Identical components induce byte-identical subgraphs here, because
// componentSubgraph always numbers vertices in ascending original order;
// so the canonical key is simply the exact adjacency bitmap (the degree
// sequence is implied by it). Exact-key matching keeps the cache sound
// without any isomorphism reasoning: a cached coloring or clique is
// valid verbatim for every component with the same key.
//
// Results stored in the cache are shared across lookups and must never
// be mutated by callers (solveComponents' callers only copy them out).

// solverKind separates cache namespaces per algorithm.
type solverKind uint8

const (
	solveChi    solverKind = iota // optimalColoringConnected
	solveDSATUR                   // dsaturConnected
	solveOmega                    // maxCliqueConnected
)

const (
	// cacheMaxVertices gates which components are canonicalized: beyond
	// this the key itself (n²/8 bytes) costs more than it saves.
	cacheMaxVertices = 128
	// cacheMaxEntries bounds the global cache; on overflow a random
	// quarter of the entries is evicted (map iteration order), so the
	// expensive exact memos degrade gradually instead of being wiped.
	cacheMaxEntries = 4096
)

// cacheable reports whether a solver kind's results are worth keeping in
// the global memo. DSATUR is polynomial — roughly the cost of computing
// the canonical key itself — so caching it would only crowd out the
// exponential χ/ω results the cache exists for (it still benefits from
// the per-call duplicate sharing in solveComponents).
func (k solverKind) cacheable() bool { return k != solveDSATUR }

type cacheKey struct {
	kind solverKind
	n    int
	adj  string
}

var componentCache = struct {
	sync.RWMutex
	m map[cacheKey][]int
}{m: map[cacheKey][]int{}}

// canonKey serialises the adjacency bitmap of a (small) graph. Two
// graphs share a key iff they are equal vertex-for-vertex.
func canonKey(g *Graph) string {
	words := (g.n + 63) / 64
	buf := make([]byte, 0, g.n*words*8)
	var w [8]byte
	for _, r := range g.rows {
		for _, word := range r {
			binary.LittleEndian.PutUint64(w[:], word)
			buf = append(buf, w[:]...)
		}
	}
	return string(buf)
}

func cacheGet(kind solverKind, n int, key string) ([]int, bool) {
	componentCache.RLock()
	v, ok := componentCache.m[cacheKey{kind, n, key}]
	componentCache.RUnlock()
	return v, ok
}

func cachePut(kind solverKind, n int, key string, val []int) {
	componentCache.Lock()
	if len(componentCache.m) >= cacheMaxEntries {
		evict := cacheMaxEntries / 4
		for k := range componentCache.m {
			delete(componentCache.m, k)
			if evict--; evict == 0 {
				break
			}
		}
	}
	componentCache.m[cacheKey{kind, n, key}] = val
	componentCache.Unlock()
}

// cacheLen reports the number of cached results (for tests).
func cacheLen() int {
	componentCache.RLock()
	defer componentCache.RUnlock()
	return len(componentCache.m)
}

// cacheReset clears the cache (for tests and benchmarks that measure
// cold behaviour).
func cacheReset() {
	componentCache.Lock()
	componentCache.m = map[cacheKey][]int{}
	componentCache.Unlock()
}

// cachedSolve memoizes solve on sub's canonical key: the single-graph
// form of the cache protocol (solveComponents inlines the same protocol
// because its per-call dedup and worker-pool dispatch sit between the
// lookup and the store). The returned slice may be shared with other
// cache readers — callers must not mutate it.
func cachedSolve(kind solverKind, sub *Graph, solve func(*Graph) []int) []int {
	key := canonKey(sub)
	if v, ok := cacheGet(kind, sub.n, key); ok {
		return v
	}
	v := solve(sub)
	cachePut(kind, sub.n, key, v)
	return v
}
