package conflict

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
)

// cycleGraph returns C_n.
func cycleGraph(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		if err := g.AddEdge(i, (i+1)%n); err != nil {
			panic(err)
		}
	}
	return g
}

// completeGraph returns K_n.
func completeGraph(n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := g.AddEdge(i, j); err != nil {
				panic(err)
			}
		}
	}
	return g
}

func randomGraph(n int, p float64, rng *rand.Rand) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				if err := g.AddEdge(i, j); err != nil {
					panic(err)
				}
			}
		}
	}
	return g
}

func TestAddEdgeBasics(t *testing.T) {
	g := NewGraph(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge not symmetric")
	}
	if g.HasEdge(0, 2) || g.HasEdge(0, 0) {
		t.Fatal("phantom edge")
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Fatal("degree wrong")
	}
	if g.NumEdges() != 1 {
		t.Fatal("NumEdges wrong")
	}
	// Idempotent re-insertion.
	if err := g.AddEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 || g.Degree(0) != 1 {
		t.Fatal("re-insertion changed the graph")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := NewGraph(2)
	if err := g.AddEdge(0, 0); err == nil {
		t.Fatal("self-loop accepted")
	}
	if err := g.AddEdge(0, 5); err == nil {
		t.Fatal("out-of-range accepted")
	}
	if err := g.AddEdge(-1, 0); err == nil {
		t.Fatal("negative accepted")
	}
}

func TestNeighbors(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	ns := g.Neighbors(2)
	if len(ns) != 2 || ns[0] != 0 || ns[1] != 3 {
		t.Fatalf("Neighbors = %v", ns)
	}
}

func TestComplement(t *testing.T) {
	g := cycleGraph(5)
	c := g.Complement()
	if c.NumEdges() != 5*4/2-5 {
		t.Fatalf("complement edges = %d", c.NumEdges())
	}
	for u := 0; u < 5; u++ {
		for v := u + 1; v < 5; v++ {
			if g.HasEdge(u, v) == c.HasEdge(u, v) {
				t.Fatalf("complement wrong at (%d,%d)", u, v)
			}
		}
	}
}

func TestFromFamilyFigure3(t *testing.T) {
	// Figure 3: conflict graph of the 5 dipaths is C5.
	g := digraph.New(5) // a b c d e
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 2)
	g.MustAddArc(2, 3)
	g.MustAddArc(3, 4)
	g.MustAddArc(1, 3)
	f := dipath.Family{
		dipath.MustFromVertices(g, 0, 1, 2), // a b c
		dipath.MustFromVertices(g, 1, 2, 3), // b c d
		dipath.MustFromVertices(g, 2, 3, 4), // c d e
		dipath.MustFromVertices(g, 1, 3, 4), // b d e  (via chord)
		dipath.MustFromVertices(g, 0, 1, 3), // a b d  (via chord)
	}
	cg := FromFamily(g, f)
	if !cg.IsCycle() {
		t.Fatalf("Figure 3 conflict graph is not a cycle: %d edges", cg.NumEdges())
	}
	if cg.N() != 5 || cg.NumEdges() != 5 {
		t.Fatalf("conflict graph n=%d m=%d, want 5,5", cg.N(), cg.NumEdges())
	}
	if chi := cg.ChromaticNumber(); chi != 3 {
		t.Fatalf("χ(C5) = %d, want 3", chi)
	}
	if om := cg.CliqueNumber(); om != 2 {
		t.Fatalf("ω(C5) = %d, want 2", om)
	}
}

func TestIsCycleAndIsComplete(t *testing.T) {
	if !cycleGraph(5).IsCycle() || !cycleGraph(4).IsCycle() {
		t.Fatal("C_n not recognized")
	}
	if completeGraph(4).IsCycle() {
		t.Fatal("K4 recognized as a cycle")
	}
	if cycleGraph(3).IsComplete() != true { // C3 == K3
		t.Fatal("C3 is complete")
	}
	if !completeGraph(5).IsComplete() || completeGraph(5).IsCycle() {
		t.Fatal("K5 misclassified")
	}
	if NewGraph(2).IsCycle() {
		t.Fatal("tiny graph is not a cycle")
	}
	// Two disjoint triangles: 2-regular but disconnected.
	two := NewGraph(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		two.AddEdge(e[0], e[1])
	}
	if two.IsCycle() {
		t.Fatal("disjoint triangles recognized as one cycle")
	}
}

func TestGreedyColoring(t *testing.T) {
	g := cycleGraph(4)
	colors := g.GreedyColoring(nil)
	if err := g.ValidateColoring(colors); err != nil {
		t.Fatal(err)
	}
	if CountColors(colors) != 2 {
		t.Fatalf("greedy on C4 used %d colors", CountColors(colors))
	}
	// Custom order.
	colors = g.GreedyColoring([]int{3, 2, 1, 0})
	if err := g.ValidateColoring(colors); err != nil {
		t.Fatal(err)
	}
}

func TestDSATURColoring(t *testing.T) {
	for _, n := range []int{3, 5, 7, 9} {
		g := cycleGraph(n)
		colors := g.DSATURColoring()
		if err := g.ValidateColoring(colors); err != nil {
			t.Fatal(err)
		}
		if CountColors(colors) != 3 {
			t.Fatalf("DSATUR on odd C%d used %d colors", n, CountColors(colors))
		}
	}
	g := completeGraph(6)
	if CountColors(g.DSATURColoring()) != 6 {
		t.Fatal("DSATUR on K6 must use 6 colors")
	}
}

func TestValidateColoring(t *testing.T) {
	g := cycleGraph(3)
	if err := g.ValidateColoring([]int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := g.ValidateColoring([]int{0, 0, 1}); err == nil {
		t.Fatal("improper coloring validated")
	}
	if err := g.ValidateColoring([]int{0, 1}); err == nil {
		t.Fatal("short coloring validated")
	}
	if err := g.ValidateColoring([]int{0, 1, -1}); err == nil {
		t.Fatal("uncolored vertex validated")
	}
}

func TestMaxCliqueKnownGraphs(t *testing.T) {
	if got := completeGraph(6).CliqueNumber(); got != 6 {
		t.Fatalf("ω(K6) = %d", got)
	}
	if got := cycleGraph(6).CliqueNumber(); got != 2 {
		t.Fatalf("ω(C6) = %d", got)
	}
	if got := cycleGraph(3).CliqueNumber(); got != 3 {
		t.Fatalf("ω(C3) = %d", got)
	}
	if got := NewGraph(4).CliqueNumber(); got != 1 {
		t.Fatalf("ω(empty) = %d", got)
	}
	if NewGraph(0).MaxClique() != nil {
		t.Fatal("ω of null graph should be empty")
	}
	// Clique must actually be a clique.
	g := randomGraph(20, 0.5, rand.New(rand.NewSource(3)))
	clique := g.MaxClique()
	for i := 0; i < len(clique); i++ {
		for j := i + 1; j < len(clique); j++ {
			if !g.HasEdge(clique[i], clique[j]) {
				t.Fatal("MaxClique returned a non-clique")
			}
		}
	}
}

func TestIndependenceNumber(t *testing.T) {
	if got := cycleGraph(8).IndependenceNumber(); got != 4 {
		t.Fatalf("α(C8) = %d, want 4", got)
	}
	if got := completeGraph(5).IndependenceNumber(); got != 1 {
		t.Fatalf("α(K5) = %d, want 1", got)
	}
}

func TestChromaticNumberKnownGraphs(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
		name string
	}{
		{cycleGraph(4), 2, "C4"},
		{cycleGraph(5), 3, "C5"},
		{cycleGraph(7), 3, "C7"},
		{completeGraph(5), 5, "K5"},
		{NewGraph(4), 1, "empty4"},
	}
	for _, c := range cases {
		if got := c.g.ChromaticNumber(); got != c.want {
			t.Fatalf("χ(%s) = %d, want %d", c.name, got, c.want)
		}
		colors, err := c.g.OptimalColoring()
		if err != nil {
			t.Fatal(err)
		}
		if err := c.g.ValidateColoring(colors); err != nil {
			t.Fatalf("%s: optimal coloring invalid: %v", c.name, err)
		}
		if CountColors(colors) != c.want {
			t.Fatalf("%s: optimal coloring uses %d colors", c.name, CountColors(colors))
		}
	}
	if NewGraph(0).ChromaticNumber() != 0 {
		t.Fatal("χ(null) != 0")
	}
}

// Petersen graph: χ=3, ω=2, α=4 — a solid stress case for the exact solvers.
func petersen() *Graph {
	g := NewGraph(10)
	outer := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	inner := [][2]int{{5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5}}
	spokes := [][2]int{{0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}}
	for _, es := range [][][2]int{outer, inner, spokes} {
		for _, e := range es {
			g.AddEdge(e[0], e[1])
		}
	}
	return g
}

func TestPetersen(t *testing.T) {
	g := petersen()
	if got := g.ChromaticNumber(); got != 3 {
		t.Fatalf("χ(Petersen) = %d, want 3", got)
	}
	if got := g.CliqueNumber(); got != 2 {
		t.Fatalf("ω(Petersen) = %d, want 2", got)
	}
	if got := g.IndependenceNumber(); got != 4 {
		t.Fatalf("α(Petersen) = %d, want 4", got)
	}
}

func TestC8WithAntipodalChords(t *testing.T) {
	// The conflict graph of the Havet example (Figure 9): C8 plus chords
	// between antipodal vertices. α = 3, χ = 3.
	g := cycleGraph(8)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+4)
	}
	if got := g.IndependenceNumber(); got != 3 {
		t.Fatalf("α = %d, want 3", got)
	}
	if got := g.ChromaticNumber(); got != 3 {
		t.Fatalf("χ = %d, want 3", got)
	}
	if got := g.CliqueNumber(); got != 2 {
		t.Fatalf("ω = %d, want 2", got)
	}
}

func TestFindK23(t *testing.T) {
	// Build an explicit K_{2,3}.
	g := NewGraph(5)
	for _, u := range []int{0, 1} {
		for _, w := range []int{2, 3, 4} {
			g.AddEdge(u, w)
		}
	}
	us, ws, ok := g.FindK23()
	if !ok {
		t.Fatal("K23 not found in K23")
	}
	for _, u := range us {
		for _, w := range ws {
			if !g.HasEdge(u, w) {
				t.Fatal("returned witness is not a K23")
			}
		}
	}
	if _, _, ok := cycleGraph(8).FindK23(); ok {
		t.Fatal("K23 found in C8")
	}
	// Complete graphs contain no induced K23 (every pair is adjacent).
	if _, _, ok := completeGraph(5).FindK23(); ok {
		t.Fatal("induced K23 found in K5")
	}
	// K_{2,3} plus an edge on the 2-side is no longer induced K_{2,3}
	// through that pair, and there is no other witness.
	g2 := NewGraph(5)
	for _, u := range []int{0, 1} {
		for _, w := range []int{2, 3, 4} {
			g2.AddEdge(u, w)
		}
	}
	g2.AddEdge(0, 1)
	if _, _, ok := g2.FindK23(); ok {
		t.Fatal("non-induced K23 reported")
	}
	// K_{2,4} contains induced K_{2,3}.
	g3 := NewGraph(6)
	for _, u := range []int{0, 1} {
		for _, w := range []int{2, 3, 4, 5} {
			g3.AddEdge(u, w)
		}
	}
	if _, _, ok := g3.FindK23(); !ok {
		t.Fatal("induced K23 not found in K24")
	}
}

// Property: DSATUR and greedy always produce valid colorings, and the
// exact chromatic number is sandwiched by clique and DSATUR bounds.
func TestColoringProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(2+rng.Intn(14), rng.Float64(), rng)
		greedy := g.GreedyColoring(nil)
		dsat := g.DSATURColoring()
		if g.ValidateColoring(greedy) != nil || g.ValidateColoring(dsat) != nil {
			return false
		}
		chi := g.ChromaticNumber()
		om := g.CliqueNumber()
		if chi < om {
			return false
		}
		if chi > CountColors(dsat) {
			return false
		}
		opt, err := g.OptimalColoring()
		if err != nil || g.ValidateColoring(opt) != nil {
			return false
		}
		return CountColors(opt) == chi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
