package conflict

import (
	"runtime"
	"sync"
)

// Components returns the connected components of g as sorted vertex
// lists, ordered by their smallest vertex. Conflict graphs of disjoint
// workloads (multi-cycle unions, replicated instances, batched requests)
// decompose naturally, and χ and ω of a disjoint union are the maxima
// over components — so the exponential solvers of this package run
// per-component on much smaller subproblems (see OptimalColoring and
// MaxClique).
func (g *Graph) Components() [][]int {
	if g.n == 0 {
		return nil
	}
	label := make([]int, g.n)
	for i := range label {
		label[i] = -1
	}
	queue := make([]int, 0, g.n)
	ncomp := 0
	for s := 0; s < g.n; s++ {
		if label[s] >= 0 {
			continue
		}
		label[s] = ncomp
		queue = append(queue[:0], s)
		for head := 0; head < len(queue); head++ {
			g.rows[queue[head]].forEach(func(u int) {
				if label[u] < 0 {
					label[u] = ncomp
					queue = append(queue, u)
				}
			})
		}
		ncomp++
	}
	// Carve the per-component lists out of one backing array; filling by
	// ascending vertex id leaves every list sorted.
	sizes := make([]int, ncomp)
	for _, l := range label {
		sizes[l]++
	}
	backing := make([]int, g.n)
	comps := make([][]int, ncomp)
	offset := 0
	for c := 0; c < ncomp; c++ {
		comps[c] = backing[offset : offset : offset+sizes[c]]
		offset += sizes[c]
	}
	for v := 0; v < g.n; v++ {
		comps[label[v]] = append(comps[label[v]], v)
	}
	return comps
}

// Subgraph returns the subgraph induced by verts (which must be sorted
// and duplicate-free); vertex i of the result corresponds to verts[i].
func (g *Graph) Subgraph(verts []int) *Graph {
	pos := make([]int, g.n)
	for i := range pos {
		pos[i] = -1
	}
	return g.buildInduced(verts, pos)
}

// componentSubgraph extracts the induced subgraph of one connected
// component using a shared position array without re-initialising it
// (valid because adjacency never crosses components, so stale entries
// for other components are never read). This keeps the per-component
// extraction of solveComponents O(component), not O(n).
func (g *Graph) componentSubgraph(comp []int, pos []int) *Graph {
	return g.buildInduced(comp, pos)
}

// buildInduced fills the induced subgraph of verts. pos is the
// vertex-to-index map; the caller guarantees that for every vertex u
// adjacent to a member of verts, pos[u] is either u's index in verts or
// negative. Members' entries are (re)written here.
func (g *Graph) buildInduced(verts []int, pos []int) *Graph {
	for i, v := range verts {
		pos[v] = i
	}
	sub := NewGraph(len(verts))
	for i, v := range verts {
		g.rows[v].forEach(func(u int) {
			if j := pos[u]; j > i {
				sub.rows[i].set(j)
				sub.rows[j].set(i)
				sub.deg[i]++
				sub.deg[j]++
			}
		})
	}
	return sub
}

// parallelThreshold gates the worker pool: below this many vertices in
// the largest component the goroutine overhead outweighs the solve. It
// is a variable only so the calibration benchmark can force the pool on
// arbitrarily small components. BenchmarkPoolCalibration
// (calibration_bench_test.go) measured, on the 1-vCPU reference box
// (Xeon @ 2.10GHz, go1.24.0, 32 components per call), a dispatch cost
// of ~0.27–0.35µs per component (spawn + channel handoff, amortised)
// against per-component DSATUR solve times of ~1.1µs at 8 vertices,
// ~2.1µs at 12 and ~4.1µs at 16. At 12 vertices the cheapest solver the
// pool ever dispatches already outweighs its dispatch share ~6×, so two
// workers win even after paying the handoff; at 8 the ratio (~4×) is
// eaten by the fixed spawn cost on small calls. Hence 12 (down from the
// unmeasured initial guess of 16 — the pool engages earlier than the
// guess assumed it should).
var parallelThreshold = 12

// parallelWorkers bounds the component worker pool. It is a variable
// only so tests can force the concurrent path on single-CPU machines.
var parallelWorkers = runtime.NumCPU()

// Shared answers for trivial components: [0] / [0,1] is simultaneously
// the maximum clique, the optimal coloring and the DSATUR coloring of K1
// and K2 (a connected 2-vertex component is always an edge), in local
// vertex indices. Callers must not mutate the returned slices.
var (
	trivialK1 = []int{0}
	trivialK2 = []int{0, 1}
)

// solveComponents runs solve on the induced subgraph of every nontrivial
// component, in parallel on a runtime.NumCPU()-bounded worker pool when
// the work warrants it, and returns the per-component results in
// component order (so results are deterministic regardless of
// scheduling). Components of at most two vertices are answered inline —
// their clique and coloring are the identity — without building a
// subgraph. Small components are canonicalized and memoized in the
// kind-namespaced component cache, and duplicates within one call are
// solved once and shared, so a disjoint union of identical instances
// pays for a single solve. Results are in component-local vertex
// indices; cached (and deduplicated) result slices are shared, so
// callers must treat them as read-only.
func solveComponents(g *Graph, comps [][]int, kind solverKind, solve func(sub *Graph) []int) [][]int {
	results := make([][]int, len(comps))
	// Extraction is cheap and sequential (it shares one position array);
	// only the solves are dispatched to the pool.
	pos := make([]int, g.n)
	subs := make([]*Graph, len(comps))
	keys := make([]string, len(comps))
	firstOf := make(map[string]int, len(comps)) // key -> first ci with it
	alias := make([]int, len(comps))            // ci -> representative ci
	largest := 0
	for ci, comp := range comps {
		alias[ci] = ci
		switch len(comp) {
		case 1:
			results[ci] = trivialK1
		case 2:
			results[ci] = trivialK2
		default:
			sub := g.componentSubgraph(comp, pos)
			if len(comp) <= cacheMaxVertices {
				key := canonKey(sub)
				if kind.cacheable() {
					if cached, ok := cacheGet(kind, len(comp), key); ok {
						results[ci] = cached
						continue
					}
				}
				if rep, dup := firstOf[key]; dup {
					alias[ci] = rep // share the representative's solve
					continue
				}
				firstOf[key] = ci
				keys[ci] = key
			}
			subs[ci] = sub
			if len(comp) > largest {
				largest = len(comp)
			}
		}
	}
	workers := parallelWorkers
	if workers > len(comps) {
		workers = len(comps)
	}
	if workers <= 1 || largest < parallelThreshold {
		for ci := range comps {
			if subs[ci] != nil {
				results[ci] = solve(subs[ci])
			}
		}
	} else {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ci := range work {
					results[ci] = solve(subs[ci])
				}
			}()
		}
		for ci := range comps {
			if subs[ci] != nil {
				work <- ci
			}
		}
		close(work)
		wg.Wait()
	}
	if kind.cacheable() {
		for ci := range comps {
			if keys[ci] != "" && results[ci] != nil {
				cachePut(kind, len(comps[ci]), keys[ci], results[ci])
			}
		}
	}
	for ci, rep := range alias {
		if rep != ci {
			results[ci] = results[rep]
		}
	}
	return results
}
