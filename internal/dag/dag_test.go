package dag

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wavedag/internal/digraph"
)

// diamond returns the DAG 0->1, 0->2, 1->3, 2->3.
func diamond() *digraph.Digraph {
	g := digraph.New(4)
	g.MustAddArc(0, 1)
	g.MustAddArc(0, 2)
	g.MustAddArc(1, 3)
	g.MustAddArc(2, 3)
	return g
}

// randomDAG builds a DAG by only adding arcs forward in a fixed vertex order.
func randomDAG(n, m int, rng *rand.Rand) *digraph.Digraph {
	g := digraph.New(n)
	for i := 0; i < m; i++ {
		u := rng.Intn(n - 1)
		v := u + 1 + rng.Intn(n-u-1)
		g.MustAddArc(digraph.Vertex(u), digraph.Vertex(v))
	}
	return g
}

func TestTopoSortDiamond(t *testing.T) {
	order, err := TopoSort(diamond())
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	if len(order) != 4 || order[0] != 0 || order[3] != 3 {
		t.Fatalf("order = %v", order)
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	g := diamond()
	a, _ := TopoSort(g)
	b, _ := TopoSort(g)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic order: %v vs %v", a, b)
		}
	}
	// Smallest-id-first among ready vertices: 1 before 2 in the diamond.
	if a[1] != 1 || a[2] != 2 {
		t.Fatalf("order = %v, want [0 1 2 3]", a)
	}
}

func TestTopoSortDetectsCycle(t *testing.T) {
	g := digraph.New(3)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 2)
	g.MustAddArc(2, 0)
	if _, err := TopoSort(g); err != ErrCyclic {
		t.Fatalf("err = %v, want ErrCyclic", err)
	}
	if IsDAG(g) {
		t.Fatal("IsDAG true on a cycle")
	}
	if _, err := TopoIndex(g); err == nil {
		t.Fatal("TopoIndex accepted a cycle")
	}
	if _, err := Levels(g); err == nil {
		t.Fatal("Levels accepted a cycle")
	}
	if _, err := TransitiveClosure(g); err == nil {
		t.Fatal("TransitiveClosure accepted a cycle")
	}
	if _, err := ArcPeelingOrder(g); err == nil {
		t.Fatal("ArcPeelingOrder accepted a cycle")
	}
	if _, err := LongestPathLen(g); err == nil {
		t.Fatal("LongestPathLen accepted a cycle")
	}
}

func TestTopoIndexRespectsArcs(t *testing.T) {
	g := diamond()
	pos, err := TopoIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range g.Arcs() {
		if pos[a.Tail] >= pos[a.Head] {
			t.Fatalf("arc %v violates topo order %v", a, pos)
		}
	}
}

func TestLevels(t *testing.T) {
	g := digraph.New(5)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 2)
	g.MustAddArc(0, 2) // level(2) must be 2 via 0->1->2
	g.MustAddArc(2, 3)
	levels, err := Levels(g)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 3, 0}
	for v, w := range want {
		if levels[v] != w {
			t.Fatalf("level[%d] = %d, want %d (all %v)", v, levels[v], w, levels)
		}
	}
	lp, err := LongestPathLen(g)
	if err != nil || lp != 3 {
		t.Fatalf("LongestPathLen = %d,%v want 3", lp, err)
	}
}

func TestTransitiveClosureDiamond(t *testing.T) {
	reach, err := TransitiveClosure(diamond())
	if err != nil {
		t.Fatal(err)
	}
	if !reach[0].Get(3) || !reach[1].Get(3) || !reach[2].Get(3) {
		t.Fatal("missing reachability to 3")
	}
	if reach[1].Get(2) || reach[2].Get(1) {
		t.Fatal("spurious reachability between 1 and 2")
	}
	for v := 0; v < 4; v++ {
		if !reach[v].Get(v) {
			t.Fatalf("vertex %d does not reach itself", v)
		}
	}
}

func TestReachableAndCoReachable(t *testing.T) {
	g := diamond()
	fwd := ReachableFrom(g, 1)
	if !fwd.Get(1) || !fwd.Get(3) || fwd.Get(0) || fwd.Get(2) {
		t.Fatalf("ReachableFrom(1) wrong")
	}
	back := CoReachableTo(g, 1)
	if !back.Get(1) || !back.Get(0) || back.Get(2) || back.Get(3) {
		t.Fatalf("CoReachableTo(1) wrong")
	}
}

func TestBitSet(t *testing.T) {
	b := NewBitSet(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Fatal("Get/Set broken")
	}
	if b.Count() != 3 {
		t.Fatalf("Count = %d, want 3", b.Count())
	}
	c := NewBitSet(130)
	c.Set(2)
	c.Or(b)
	if c.Count() != 4 || !c.Get(129) {
		t.Fatal("Or broken")
	}
}

func TestIsArborescence(t *testing.T) {
	// A proper out-tree.
	tree := digraph.New(4)
	tree.MustAddArc(0, 1)
	tree.MustAddArc(0, 2)
	tree.MustAddArc(2, 3)
	if root, ok := IsArborescence(tree); !ok || root != 0 {
		t.Fatalf("IsArborescence(tree) = %d,%v", root, ok)
	}
	// The diamond is not: vertex 3 has in-degree 2.
	if _, ok := IsArborescence(diamond()); ok {
		t.Fatal("diamond accepted as arborescence")
	}
	// Two roots.
	forest := digraph.New(3)
	forest.MustAddArc(0, 2)
	if _, ok := IsArborescence(forest); ok {
		t.Fatal("forest with isolated root accepted")
	}
	// Directed cycle is rejected.
	cyc := digraph.New(2)
	cyc.MustAddArc(0, 1)
	cyc.MustAddArc(1, 0)
	if _, ok := IsArborescence(cyc); ok {
		t.Fatal("cycle accepted as arborescence")
	}
	// Unreachable vertex with in-degree 1.
	g := digraph.New(4)
	g.MustAddArc(0, 1)
	g.MustAddArc(2, 3)
	if _, ok := IsArborescence(g); ok {
		t.Fatal("disconnected graph accepted as arborescence")
	}
	// Empty graph has no root.
	if _, ok := IsArborescence(digraph.New(0)); ok {
		t.Fatal("empty graph accepted as arborescence")
	}
}

// TestArcPeelingOrderInvariant verifies the defining property: when arcs
// are deleted in peeling order, each deleted arc's tail is a source of the
// remaining graph at its turn.
func TestArcPeelingOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		g := randomDAG(2+rng.Intn(20), 1+rng.Intn(40), rng)
		order, err := ArcPeelingOrder(g)
		if err != nil {
			t.Fatal(err)
		}
		if len(order) != g.NumArcs() {
			t.Fatalf("order has %d arcs, want %d", len(order), g.NumArcs())
		}
		deleted := make([]bool, g.NumArcs())
		for _, id := range order {
			tail := g.Arc(id).Tail
			for _, in := range g.InArcs(tail) {
				if !deleted[in] {
					t.Fatalf("arc %d peeled while tail %d still has live in-arc %d", id, tail, in)
				}
			}
			deleted[id] = true
		}
	}
}

// Property: topological order is a permutation and respects every arc.
func TestTopoSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(2+rng.Intn(30), rng.Intn(60), rng)
		order, err := TopoSort(g)
		if err != nil {
			return false
		}
		pos := make([]int, g.NumVertices())
		seen := make([]bool, g.NumVertices())
		for i, v := range order {
			if seen[v] {
				return false
			}
			seen[v] = true
			pos[v] = i
		}
		for _, a := range g.Arcs() {
			if pos[a.Tail] >= pos[a.Head] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: TransitiveClosure agrees with BFS reachability.
func TestTransitiveClosureMatchesBFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomDAG(2+rng.Intn(15), rng.Intn(30), rng)
		reach, err := TransitiveClosure(g)
		if err != nil {
			return false
		}
		for v := 0; v < g.NumVertices(); v++ {
			bfs := ReachableFrom(g, digraph.Vertex(v))
			for u := 0; u < g.NumVertices(); u++ {
				if bfs.Get(u) != reach[v].Get(u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
