// Package dag provides acyclicity checking and standard DAG machinery
// (topological order, reachability, transitive closure, longest paths)
// on top of the digraph substrate.
package dag

import (
	"errors"
	"fmt"

	"wavedag/internal/digraph"
)

// ErrCyclic is returned when an operation requiring a DAG is applied to a
// digraph containing a directed cycle.
var ErrCyclic = errors.New("dag: digraph contains a directed cycle")

// TopoSort returns a topological order of the vertices of g (Kahn's
// algorithm). It returns ErrCyclic when g has a directed cycle.
// The order is deterministic: among ready vertices the smallest
// identifier is taken first.
func TopoSort(g *digraph.Digraph) ([]digraph.Vertex, error) {
	n := g.NumVertices()
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = g.InDegree(digraph.Vertex(v))
	}
	// Min-heap on vertex id for determinism; n is small enough that a
	// simple binary heap is ideal.
	heap := make([]digraph.Vertex, 0, n)
	push := func(v digraph.Vertex) {
		heap = append(heap, v)
		for i := len(heap) - 1; i > 0; {
			p := (i - 1) / 2
			if heap[p] <= heap[i] {
				break
			}
			heap[p], heap[i] = heap[i], heap[p]
			i = p
		}
	}
	pop := func() digraph.Vertex {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap = heap[:last]
		for i := 0; ; {
			l, r := 2*i+1, 2*i+2
			s := i
			if l < last && heap[l] < heap[s] {
				s = l
			}
			if r < last && heap[r] < heap[s] {
				s = r
			}
			if s == i {
				break
			}
			heap[i], heap[s] = heap[s], heap[i]
			i = s
		}
		return top
	}
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			push(digraph.Vertex(v))
		}
	}
	order := make([]digraph.Vertex, 0, n)
	for len(heap) > 0 {
		v := pop()
		order = append(order, v)
		for _, a := range g.OutArcs(v) {
			h := g.Arc(a).Head
			indeg[h]--
			if indeg[h] == 0 {
				push(h)
			}
		}
	}
	if len(order) != n {
		return nil, ErrCyclic
	}
	return order, nil
}

// IsDAG reports whether g has no directed cycle.
func IsDAG(g *digraph.Digraph) bool {
	_, err := TopoSort(g)
	return err == nil
}

// TopoIndex returns position[v] = rank of v in a topological order of g.
func TopoIndex(g *digraph.Digraph) ([]int, error) {
	order, err := TopoSort(g)
	if err != nil {
		return nil, err
	}
	pos := make([]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	return pos, nil
}

// Levels returns level[v] = length (in arcs) of the longest dipath ending
// at v. Sources have level 0.
func Levels(g *digraph.Digraph) ([]int, error) {
	order, err := TopoSort(g)
	if err != nil {
		return nil, err
	}
	level := make([]int, g.NumVertices())
	for _, v := range order {
		for _, a := range g.OutArcs(v) {
			h := g.Arc(a).Head
			if level[v]+1 > level[h] {
				level[h] = level[v] + 1
			}
		}
	}
	return level, nil
}

// LongestPathLen returns the number of arcs on a longest dipath of g.
func LongestPathLen(g *digraph.Digraph) (int, error) {
	levels, err := Levels(g)
	if err != nil {
		return 0, err
	}
	best := 0
	for _, l := range levels {
		if l > best {
			best = l
		}
	}
	return best, nil
}

// BitSet is a fixed-capacity bit set used for reachability rows.
type BitSet []uint64

// NewBitSet returns a bit set able to hold n bits.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

// Set sets bit i.
func (b BitSet) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Get reports bit i.
func (b BitSet) Get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// Or merges other into b (b |= other).
func (b BitSet) Or(other BitSet) {
	for i := range b {
		b[i] |= other[i]
	}
}

// Count returns the number of set bits.
func (b BitSet) Count() int {
	c := 0
	for _, w := range b {
		for ; w != 0; w &= w - 1 {
			c++
		}
	}
	return c
}

// TransitiveClosure returns reach, where reach[u].Get(v) reports whether
// there is a dipath (possibly empty) from u to v. Every vertex reaches
// itself.
func TransitiveClosure(g *digraph.Digraph) ([]BitSet, error) {
	order, err := TopoSort(g)
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()
	reach := make([]BitSet, n)
	for v := 0; v < n; v++ {
		reach[v] = NewBitSet(n)
		reach[v].Set(v)
	}
	// Process in reverse topological order so successors are complete.
	for i := n - 1; i >= 0; i-- {
		v := order[i]
		for _, a := range g.OutArcs(v) {
			reach[v].Or(reach[g.Arc(a).Head])
		}
	}
	return reach, nil
}

// ReachableFrom returns the set of vertices reachable from start
// (including start itself) by BFS.
func ReachableFrom(g *digraph.Digraph, start digraph.Vertex) BitSet {
	n := g.NumVertices()
	seen := NewBitSet(n)
	seen.Set(int(start))
	queue := []digraph.Vertex{start}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range g.OutArcs(v) {
			h := g.Arc(a).Head
			if !seen.Get(int(h)) {
				seen.Set(int(h))
				queue = append(queue, h)
			}
		}
	}
	return seen
}

// CoReachableTo returns the set of vertices from which end is reachable
// (including end itself).
func CoReachableTo(g *digraph.Digraph, end digraph.Vertex) BitSet {
	n := g.NumVertices()
	seen := NewBitSet(n)
	seen.Set(int(end))
	queue := []digraph.Vertex{end}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range g.InArcs(v) {
			t := g.Arc(a).Tail
			if !seen.Get(int(t)) {
				seen.Set(int(t))
				queue = append(queue, t)
			}
		}
	}
	return seen
}

// IsArborescence reports whether g is a rooted out-tree: a single root of
// in-degree 0, every other vertex of in-degree exactly 1, and all vertices
// reachable from the root. The root is returned when the check passes.
func IsArborescence(g *digraph.Digraph) (digraph.Vertex, bool) {
	if !IsDAG(g) {
		return -1, false
	}
	root := digraph.Vertex(-1)
	for v := 0; v < g.NumVertices(); v++ {
		switch g.InDegree(digraph.Vertex(v)) {
		case 0:
			if root >= 0 {
				return -1, false // two roots
			}
			root = digraph.Vertex(v)
		case 1:
			// interior or leaf
		default:
			return -1, false
		}
	}
	if root < 0 {
		return -1, false
	}
	if ReachableFrom(g, root).Count() != g.NumVertices() {
		return -1, false
	}
	return root, true
}

// ArcPeelingOrder returns the arcs of the DAG g ordered so that, for every
// k, the tail of the k-th arc is a source of the graph obtained from g by
// deleting the first k-1 arcs. This is the deletion order used by the
// inductive proof of Theorem 1 of Bermond & Cosnard: the arcs are sorted
// by the topological index of their tails, so when an arc is reached all
// arcs entering its tail (whose tails are strictly earlier) are already
// deleted.
func ArcPeelingOrder(g *digraph.Digraph) ([]digraph.ArcID, error) {
	pos, err := TopoIndex(g)
	if err != nil {
		return nil, err
	}
	m := g.NumArcs()
	arcs := make([]digraph.ArcID, m)
	for i := range arcs {
		arcs[i] = digraph.ArcID(i)
	}
	// Stable counting sort by topo index of tail.
	buckets := make([][]digraph.ArcID, g.NumVertices())
	for _, id := range arcs {
		t := pos[g.Arc(id).Tail]
		buckets[t] = append(buckets[t], id)
	}
	out := arcs[:0]
	for _, b := range buckets {
		out = append(out, b...)
	}
	if len(out) != m {
		return nil, fmt.Errorf("dag: internal error, peeling order lost arcs")
	}
	return out, nil
}
