package dipath

import (
	"testing"

	"wavedag/internal/digraph"
)

// line returns the path graph 0->1->2->3->4 and its 4 arcs.
func line() *digraph.Digraph {
	g := digraph.New(5)
	for i := 0; i < 4; i++ {
		g.MustAddArc(digraph.Vertex(i), digraph.Vertex(i+1))
	}
	return g
}

func TestFromVertices(t *testing.T) {
	g := line()
	p, err := FromVertices(g, 0, 1, 2)
	if err != nil {
		t.Fatalf("FromVertices: %v", err)
	}
	if p.First() != 0 || p.Last() != 2 || p.NumArcs() != 2 || p.NumVertices() != 3 {
		t.Fatalf("path shape wrong: %v", p)
	}
	if p.Arc(0) != 0 || p.Arc(1) != 1 {
		t.Fatalf("arcs = %v", p.Arcs())
	}
	if p.Vertex(1) != 1 {
		t.Fatalf("Vertex(1) = %d", p.Vertex(1))
	}
	if err := p.Validate(g); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestFromVerticesErrors(t *testing.T) {
	g := line()
	if _, err := FromVertices(g); err == nil {
		t.Fatal("empty sequence accepted")
	}
	if _, err := FromVertices(g, 0, 2); err == nil {
		t.Fatal("missing arc accepted")
	}
}

func TestSingleVertexPath(t *testing.T) {
	g := line()
	p, err := FromVertices(g, 3)
	if err != nil {
		t.Fatalf("single-vertex path rejected: %v", err)
	}
	if p.NumArcs() != 0 || p.First() != 3 || p.Last() != 3 {
		t.Fatalf("single-vertex path wrong: %v", p)
	}
	q := MustFromVertices(g, 2, 3)
	if p.SharesArc(q) || q.SharesArc(p) {
		t.Fatal("single-vertex path reported a conflict")
	}
}

func TestFromArcs(t *testing.T) {
	g := line()
	p, err := FromArcs(g, 1, 2)
	if err != nil {
		t.Fatalf("FromArcs: %v", err)
	}
	if p.First() != 1 || p.Last() != 3 {
		t.Fatalf("path = %v", p)
	}
	if _, err := FromArcs(g); err == nil {
		t.Fatal("empty arc list accepted")
	}
	if _, err := FromArcs(g, 0, 2); err == nil {
		t.Fatal("non-chaining arcs accepted")
	}
	if _, err := FromArcs(g, 99); err == nil {
		t.Fatal("out-of-range arc accepted")
	}
}

func TestMustFromVerticesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustFromVertices(line(), 0, 3)
}

func TestContainsAndIndex(t *testing.T) {
	g := line()
	p := MustFromVertices(g, 1, 2, 3)
	if !p.ContainsArc(1) || !p.ContainsArc(2) || p.ContainsArc(0) || p.ContainsArc(3) {
		t.Fatal("ContainsArc wrong")
	}
	if p.ArcIndex(2) != 1 || p.ArcIndex(0) != -1 {
		t.Fatal("ArcIndex wrong")
	}
	if !p.ContainsVertex(2) || p.ContainsVertex(0) {
		t.Fatal("ContainsVertex wrong")
	}
}

func TestSharesArcAndSharedArcs(t *testing.T) {
	g := line()
	p := MustFromVertices(g, 0, 1, 2)
	q := MustFromVertices(g, 1, 2, 3)
	r := MustFromVertices(g, 3, 4)
	if !p.SharesArc(q) || !q.SharesArc(p) {
		t.Fatal("overlapping paths not in conflict")
	}
	if p.SharesArc(r) {
		t.Fatal("disjoint paths in conflict")
	}
	shared := p.SharedArcs(q)
	if len(shared) != 1 || shared[0] != 1 {
		t.Fatalf("SharedArcs = %v, want [1]", shared)
	}
	// Paths sharing only a vertex are NOT in conflict (arc-disjointness is
	// the constraint in the WDM model).
	s := MustFromVertices(g, 2, 3)
	if p.SharesArc(s) {
		t.Fatal("vertex-sharing counted as conflict")
	}
}

func TestSubpath(t *testing.T) {
	g := line()
	p := MustFromVertices(g, 0, 1, 2, 3, 4)
	sub, err := p.Subpath(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sub.First() != 1 || sub.Last() != 3 || sub.NumArcs() != 2 {
		t.Fatalf("Subpath = %v", sub)
	}
	if err := sub.Validate(g); err != nil {
		t.Fatal(err)
	}
	one, err := p.Subpath(2, 2)
	if err != nil || one.NumArcs() != 0 || one.First() != 2 {
		t.Fatalf("Subpath(2,2) = %v, %v", one, err)
	}
	if _, err := p.Subpath(3, 1); err == nil {
		t.Fatal("inverted bounds accepted")
	}
	if _, err := p.Subpath(-1, 2); err == nil {
		t.Fatal("negative bound accepted")
	}
	if _, err := p.Subpath(0, 9); err == nil {
		t.Fatal("overflow bound accepted")
	}
}

func TestDropFirstArc(t *testing.T) {
	g := line()
	p := MustFromVertices(g, 0, 1, 2)
	q, err := p.DropFirstArc()
	if err != nil {
		t.Fatal(err)
	}
	if q.First() != 1 || q.Last() != 2 || q.NumArcs() != 1 {
		t.Fatalf("DropFirstArc = %v", q)
	}
	r, err := q.DropFirstArc()
	if err != nil || r.NumArcs() != 0 || r.First() != 2 {
		t.Fatalf("second shrink = %v, %v", r, err)
	}
	if _, err := r.DropFirstArc(); err == nil {
		t.Fatal("shrinking single-vertex path accepted")
	}
	// Original untouched.
	if p.NumArcs() != 2 {
		t.Fatal("DropFirstArc mutated the receiver")
	}
}

func TestConcat(t *testing.T) {
	g := line()
	p := MustFromVertices(g, 0, 1, 2)
	q := MustFromVertices(g, 2, 3)
	pq, err := p.Concat(q)
	if err != nil {
		t.Fatal(err)
	}
	if pq.First() != 0 || pq.Last() != 3 || pq.NumArcs() != 3 {
		t.Fatalf("Concat = %v", pq)
	}
	if err := pq.Validate(g); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Concat(p); err == nil {
		t.Fatal("mismatched concat accepted")
	}
}

func TestEqual(t *testing.T) {
	g := line()
	p := MustFromVertices(g, 0, 1, 2)
	q := MustFromVertices(g, 0, 1, 2)
	r := MustFromVertices(g, 0, 1)
	if !p.Equal(q) {
		t.Fatal("identical paths not Equal")
	}
	if p.Equal(r) {
		t.Fatal("different paths Equal")
	}
}

func TestStringRendering(t *testing.T) {
	g := line()
	p := MustFromVertices(g, 0, 1, 2)
	if p.String() != "0->1->2" {
		t.Fatalf("String = %q", p.String())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := line()
	p := MustFromVertices(g, 0, 1, 2)
	// Corrupt a copy through direct construction.
	bad := &Path{vertices: []digraph.Vertex{0, 2, 3}, arcs: []digraph.ArcID{0, 2}}
	if err := bad.Validate(g); err == nil {
		t.Fatal("corrupted path validated")
	}
	bad2 := &Path{vertices: []digraph.Vertex{0, 1}, arcs: nil}
	if err := bad2.Validate(g); err == nil {
		t.Fatal("arc/vertex count mismatch validated")
	}
	bad3 := &Path{vertices: []digraph.Vertex{0, 1}, arcs: []digraph.ArcID{77}}
	if err := bad3.Validate(g); err == nil {
		t.Fatal("out-of-range arc validated")
	}
	_ = p
}

func TestValidateRejectsRepeatedVertex(t *testing.T) {
	// Graph with a "cycle" through distinct arcs is impossible in a DAG,
	// but a hand-built Path could still repeat a vertex; Validate rejects.
	g := digraph.New(3)
	a01 := g.MustAddArc(0, 1)
	a10 := g.MustAddArc(1, 0)
	bad := &Path{vertices: []digraph.Vertex{0, 1, 0}, arcs: []digraph.ArcID{a01, a10}}
	if err := bad.Validate(g); err == nil {
		t.Fatal("vertex-repeating walk validated as dipath")
	}
}

func TestFamilyValidate(t *testing.T) {
	g := line()
	f := Family{MustFromVertices(g, 0, 1), MustFromVertices(g, 1, 2)}
	if err := f.Validate(g); err != nil {
		t.Fatal(err)
	}
	f = append(f, nil)
	if err := f.Validate(g); err == nil {
		t.Fatal("nil path validated")
	}
}

func TestFamilyReplicate(t *testing.T) {
	g := line()
	f := Family{MustFromVertices(g, 0, 1), MustFromVertices(g, 1, 2)}
	r := f.Replicate(3)
	if len(r) != 6 {
		t.Fatalf("Replicate(3) len = %d", len(r))
	}
	if !r[0].Equal(r[1]) || !r[0].Equal(r[2]) || r[2].Equal(r[3]) {
		t.Fatal("replication order wrong")
	}
	if f.Replicate(0) != nil {
		t.Fatal("Replicate(0) should be nil")
	}
}

func TestFamilyClone(t *testing.T) {
	g := line()
	f := Family{MustFromVertices(g, 0, 1)}
	c := f.Clone()
	c[0] = nil
	if f[0] == nil {
		t.Fatal("Clone aliases backing array")
	}
}

func TestArcIncidence(t *testing.T) {
	g := line()
	f := Family{
		MustFromVertices(g, 0, 1, 2), // arcs 0,1
		MustFromVertices(g, 1, 2, 3), // arcs 1,2
		MustFromVertices(g, 4),       // no arcs
	}
	inc := ArcIncidence(g, f)
	if len(inc) != g.NumArcs() {
		t.Fatalf("incidence rows = %d", len(inc))
	}
	if len(inc[0]) != 1 || inc[0][0] != 0 {
		t.Fatalf("inc[0] = %v", inc[0])
	}
	if len(inc[1]) != 2 || inc[1][0] != 0 || inc[1][1] != 1 {
		t.Fatalf("inc[1] = %v", inc[1])
	}
	if len(inc[3]) != 0 {
		t.Fatalf("inc[3] = %v", inc[3])
	}
}

func TestFromArcsTrustedMatchesFromArcs(t *testing.T) {
	g := line()
	for _, arcs := range [][]digraph.ArcID{{0}, {1, 2}, {0, 1, 2, 3}} {
		want, err := FromArcs(g, arcs...)
		if err != nil {
			t.Fatal(err)
		}
		got := FromArcsTrusted(g, append([]digraph.ArcID(nil), arcs...)...)
		if !got.Equal(want) {
			t.Fatalf("FromArcsTrusted(%v) = %v, want %v", arcs, got, want)
		}
		if err := got.Validate(g); err != nil {
			t.Fatalf("FromArcsTrusted(%v): %v", arcs, err)
		}
	}
}
