// Package dipath defines directed paths (dipaths) over a digraph and
// families of dipaths, the two objects the Bermond–Cosnard results are
// stated about. A dipath is stored both as its vertex sequence and as its
// arc-identifier sequence; the arc view is what load computation, conflict
// detection, and the coloring algorithms consume.
package dipath

import (
	"fmt"
	"strings"

	"wavedag/internal/digraph"
)

// Path is a dipath of a digraph: a sequence of at least one vertex where
// consecutive vertices are joined by the recorded arcs. A single-vertex
// path has no arcs, carries no load and conflicts with nothing; it is
// permitted because the Theorem 1 induction shrinks paths to (and past)
// single arcs.
type Path struct {
	vertices []digraph.Vertex
	arcs     []digraph.ArcID
}

// FromVertices builds a path through the given vertex sequence, resolving
// each consecutive pair to an arc of g (the first matching arc when
// parallels exist). It rejects empty sequences and missing arcs.
//wavedag:lockfree
//wavedag:allow-alloc (path construction)
func FromVertices(g *digraph.Digraph, vertices ...digraph.Vertex) (*Path, error) {
	if len(vertices) == 0 {
		return nil, fmt.Errorf("dipath: empty vertex sequence")
	}
	arcs := make([]digraph.ArcID, 0, len(vertices)-1)
	for i := 0; i+1 < len(vertices); i++ {
		id, ok := g.ArcBetween(vertices[i], vertices[i+1])
		if !ok {
			return nil, fmt.Errorf("dipath: no arc %d->%d in graph", vertices[i], vertices[i+1])
		}
		arcs = append(arcs, id)
	}
	return &Path{vertices: append([]digraph.Vertex(nil), vertices...), arcs: arcs}, nil
}

// FromArcs builds a path from a sequence of arc identifiers of g, checking
// that consecutive arcs share the intermediate vertex.
func FromArcs(g *digraph.Digraph, arcs ...digraph.ArcID) (*Path, error) {
	if len(arcs) == 0 {
		return nil, fmt.Errorf("dipath: empty arc sequence (use FromVertices for single-vertex paths)")
	}
	vertices := make([]digraph.Vertex, 0, len(arcs)+1)
	for i, id := range arcs {
		if id < 0 || int(id) >= g.NumArcs() {
			return nil, fmt.Errorf("dipath: arc %d out of range", id)
		}
		a := g.Arc(id)
		if i == 0 {
			vertices = append(vertices, a.Tail)
		} else if vertices[len(vertices)-1] != a.Tail {
			return nil, fmt.Errorf("dipath: arcs %d and %d do not chain (%d != %d)",
				arcs[i-1], id, vertices[len(vertices)-1], a.Tail)
		}
		vertices = append(vertices, a.Head)
	}
	return &Path{vertices: vertices, arcs: append([]digraph.ArcID(nil), arcs...)}, nil
}

// FromArcsTrusted builds a path from a non-empty sequence of arc
// identifiers of g without validating the chain: the vertex sequence is
// read straight off the arcs. It exists for identifier-translated paths
// whose validity is guaranteed by construction — the sharded engine's
// view-to-parent translations preserve chaining and simplicity exactly,
// so re-walking FromArcs' checks per merged path is pure overhead (see
// BenchmarkAblationTrustedTranslation for the measured delta). The arcs
// slice is retained by the path; callers must not mutate it. Feeding
// arcs that do not chain silently builds a corrupt path — use FromArcs
// for anything that did not come out of a trusted translation.
//wavedag:lockfree
//wavedag:allow-alloc (path construction)
func FromArcsTrusted(g *digraph.Digraph, arcs ...digraph.ArcID) *Path {
	vertices := make([]digraph.Vertex, 0, len(arcs)+1)
	vertices = append(vertices, g.Arc(arcs[0]).Tail)
	for _, id := range arcs {
		vertices = append(vertices, g.Arc(id).Head)
	}
	return &Path{vertices: vertices, arcs: arcs}
}

// MustFromVertices is FromVertices but panics on error; for constructions
// that are correct by construction.
func MustFromVertices(g *digraph.Digraph, vertices ...digraph.Vertex) *Path {
	p, err := FromVertices(g, vertices...)
	if err != nil {
		panic(err)
	}
	return p
}

// First returns the initial vertex.
//wavedag:lockfree
func (p *Path) First() digraph.Vertex { return p.vertices[0] }

// Last returns the terminal vertex.
//wavedag:lockfree
func (p *Path) Last() digraph.Vertex { return p.vertices[len(p.vertices)-1] }

// NumArcs returns the number of arcs (the length of the dipath).
//wavedag:lockfree
func (p *Path) NumArcs() int { return len(p.arcs) }

// NumVertices returns the number of vertices (NumArcs()+1).
//wavedag:lockfree
func (p *Path) NumVertices() int { return len(p.vertices) }

// Arcs returns the arc sequence. The slice is owned by the path and must
// not be mutated.
//wavedag:lockfree
func (p *Path) Arcs() []digraph.ArcID { return p.arcs }

// Vertices returns the vertex sequence. The slice is owned by the path
// and must not be mutated.
//wavedag:lockfree
func (p *Path) Vertices() []digraph.Vertex { return p.vertices }

// Arc returns the i-th arc of the path.
func (p *Path) Arc(i int) digraph.ArcID { return p.arcs[i] }

// Vertex returns the i-th vertex of the path.
func (p *Path) Vertex(i int) digraph.Vertex { return p.vertices[i] }

// ContainsArc reports whether the path traverses arc id.
func (p *Path) ContainsArc(id digraph.ArcID) bool {
	return p.ArcIndex(id) >= 0
}

// ArcIndex returns the position of arc id on the path, or -1.
func (p *Path) ArcIndex(id digraph.ArcID) int {
	for i, a := range p.arcs {
		if a == id {
			return i
		}
	}
	return -1
}

// ContainsVertex reports whether v lies on the path.
func (p *Path) ContainsVertex(v digraph.Vertex) bool {
	for _, u := range p.vertices {
		if u == v {
			return true
		}
	}
	return false
}

// SharesArc reports whether p and q have an arc in common — the conflict
// relation of the wavelength-assignment problem.
func (p *Path) SharesArc(q *Path) bool {
	if len(p.arcs) > len(q.arcs) {
		p, q = q, p
	}
	if len(p.arcs) == 0 {
		return false
	}
	set := make(map[digraph.ArcID]struct{}, len(p.arcs))
	for _, a := range p.arcs {
		set[a] = struct{}{}
	}
	for _, a := range q.arcs {
		if _, ok := set[a]; ok {
			return true
		}
	}
	return false
}

// SharedArcs returns the arcs common to p and q, in p's traversal order.
func (p *Path) SharedArcs(q *Path) []digraph.ArcID {
	set := make(map[digraph.ArcID]struct{}, len(q.arcs))
	for _, a := range q.arcs {
		set[a] = struct{}{}
	}
	var shared []digraph.ArcID
	for _, a := range p.arcs {
		if _, ok := set[a]; ok {
			shared = append(shared, a)
		}
	}
	return shared
}

// Subpath returns the subpath spanning vertex positions [i, j] (inclusive,
// 0-based). It requires 0 <= i <= j < NumVertices().
func (p *Path) Subpath(i, j int) (*Path, error) {
	if i < 0 || j >= len(p.vertices) || i > j {
		return nil, fmt.Errorf("dipath: bad subpath bounds [%d,%d] of %d vertices", i, j, len(p.vertices))
	}
	return &Path{
		vertices: append([]digraph.Vertex(nil), p.vertices[i:j+1]...),
		arcs:     append([]digraph.ArcID(nil), p.arcs[i:j]...),
	}, nil
}

// DropFirstArc returns the path with its first arc removed; it is the
// "shrink" operation of the Theorem 1 induction (the deleted arc is always
// the first arc of any path containing it, because its tail is a source).
// Shrinking a single-arc path yields a single-vertex path; shrinking a
// single-vertex path is an error.
func (p *Path) DropFirstArc() (*Path, error) {
	if len(p.arcs) == 0 {
		return nil, fmt.Errorf("dipath: cannot shrink a single-vertex path")
	}
	return &Path{
		vertices: append([]digraph.Vertex(nil), p.vertices[1:]...),
		arcs:     append([]digraph.ArcID(nil), p.arcs[1:]...),
	}, nil
}

// Concat returns the concatenation p·q; p's last vertex must equal q's
// first vertex.
func (p *Path) Concat(q *Path) (*Path, error) {
	if p.Last() != q.First() {
		return nil, fmt.Errorf("dipath: cannot concatenate, %d != %d", p.Last(), q.First())
	}
	return &Path{
		vertices: append(append([]digraph.Vertex(nil), p.vertices...), q.vertices[1:]...),
		arcs:     append(append([]digraph.ArcID(nil), p.arcs...), q.arcs...),
	}, nil
}

// Equal reports whether p and q traverse the same vertex sequence via the
// same arcs.
func (p *Path) Equal(q *Path) bool {
	if len(p.vertices) != len(q.vertices) {
		return false
	}
	for i := range p.vertices {
		if p.vertices[i] != q.vertices[i] {
			return false
		}
	}
	for i := range p.arcs {
		if p.arcs[i] != q.arcs[i] {
			return false
		}
	}
	return true
}

// String renders the vertex sequence, e.g. "0->1->3".
func (p *Path) String() string {
	var b strings.Builder
	for i, v := range p.vertices {
		if i > 0 {
			b.WriteString("->")
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// Validate checks that the path is consistent with g: every recorded arc
// exists and joins the recorded vertices.
func (p *Path) Validate(g *digraph.Digraph) error {
	if len(p.vertices) == 0 {
		return fmt.Errorf("dipath: empty path")
	}
	if len(p.arcs) != len(p.vertices)-1 {
		return fmt.Errorf("dipath: %d arcs for %d vertices", len(p.arcs), len(p.vertices))
	}
	for i, id := range p.arcs {
		if id < 0 || int(id) >= g.NumArcs() {
			return fmt.Errorf("dipath: arc %d out of range", id)
		}
		a := g.Arc(id)
		if a.Tail != p.vertices[i] || a.Head != p.vertices[i+1] {
			return fmt.Errorf("dipath: arc %d is %d->%d, path expects %d->%d",
				id, a.Tail, a.Head, p.vertices[i], p.vertices[i+1])
		}
	}
	// Simplicity check. Paths here are overwhelmingly short (routing
	// output is hop-bounded), where a quadratic scan beats a map by an
	// order of magnitude — no makemap/mapassign per call on the hot
	// Validate path; the map only backs genuinely long paths.
	if len(p.vertices) <= 64 {
		for i, v := range p.vertices {
			for _, u := range p.vertices[:i] {
				if u == v {
					return fmt.Errorf("dipath: vertex %d repeated (not a simple dipath)", v)
				}
			}
		}
		return nil
	}
	seen := make(map[digraph.Vertex]bool, len(p.vertices))
	for _, v := range p.vertices {
		if seen[v] {
			return fmt.Errorf("dipath: vertex %d repeated (not a simple dipath)", v)
		}
		seen[v] = true
	}
	return nil
}

// Family is an ordered collection of dipaths; order matters because
// colorings are reported as a slice parallel to the family.
type Family []*Path

// Validate checks every path of the family against g.
func (f Family) Validate(g *digraph.Digraph) error {
	for i, p := range f {
		if p == nil {
			return fmt.Errorf("dipath: family[%d] is nil", i)
		}
		if err := p.Validate(g); err != nil {
			return fmt.Errorf("dipath: family[%d]: %w", i, err)
		}
	}
	return nil
}

// Clone returns a family sharing the same (immutable) paths.
func (f Family) Clone() Family { return append(Family(nil), f...) }

// Replicate returns the family in which every path of f appears h times
// (the replication operator used by Theorems 6/7 tightness examples:
// replacing each dipath with h identical dipaths multiplies the load by h).
func (f Family) Replicate(h int) Family {
	if h < 1 {
		return nil
	}
	out := make(Family, 0, len(f)*h)
	for _, p := range f {
		for i := 0; i < h; i++ {
			out = append(out, p)
		}
	}
	return out
}

// ArcIncidence returns, for each arc of g, the indices of the family
// members traversing it. The per-arc lists share one exactly-sized
// backing array (built CSR-style in two passes), so the whole structure
// costs three allocations however large the family.
func ArcIncidence(g *digraph.Digraph, f Family) [][]int {
	counts := make([]int, g.NumArcs())
	total := 0
	for _, p := range f {
		for _, a := range p.Arcs() {
			counts[a]++
			total++
		}
	}
	backing := make([]int, total)
	inc := make([][]int, g.NumArcs())
	offset := 0
	for a := range inc {
		inc[a] = backing[offset : offset : offset+counts[a]]
		offset += counts[a]
	}
	for i, p := range f {
		for _, a := range p.Arcs() {
			inc[a] = append(inc[a], i)
		}
	}
	return inc
}
