package wdm

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"wavedag/internal/core"
	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/route"
)

// ErrEngineClosed is returned by mutating ShardedEngine methods after
// Close. Read-only queries (Len, Pi, NumLambda, Path, Provisioning,
// Verify, ...) keep working on the frozen state — the snapshot-backed
// ones lock-free, from the final published snapshot.
var ErrEngineClosed = errors.New("wdm: engine closed")

// DefaultSubshardThreshold is the component size (in vertices) at which
// NewShardedEngine decomposes a component into arc-disjoint regions and
// runs it two-level. WithSubshardThreshold overrides; 0 disables.
const DefaultSubshardThreshold = 64

// ShardedID identifies a live request inside a ShardedEngine: the
// executable shard that owns it (a whole component, one arc-disjoint
// region of a two-level component, or a component's overlay lane) plus
// its SessionID within that shard's session. Treat it as opaque.
type ShardedID struct {
	Shard int32
	ID    SessionID
}

// BatchKind selects the operation of a BatchOp.
type BatchKind uint8

// Batch operation kinds.
const (
	BatchAdd     BatchKind = iota // provision Req
	BatchRemove                   // tear down ID
	BatchReroute                  // re-route ID against current loads
)

// BatchOp is one churn event of an ApplyBatch call.
type BatchOp struct {
	Kind BatchKind
	Req  route.Request // BatchAdd
	ID   ShardedID     // BatchRemove, BatchReroute
}

// AddOp returns the batch event provisioning req.
func AddOp(req route.Request) BatchOp { return BatchOp{Kind: BatchAdd, Req: req} }

// RemoveOp returns the batch event tearing down id.
func RemoveOp(id ShardedID) BatchOp { return BatchOp{Kind: BatchRemove, ID: id} }

// RerouteOp returns the batch event re-routing id.
func RerouteOp(id ShardedID) BatchOp { return BatchOp{Kind: BatchReroute, ID: id} }

// BatchResult is the outcome of one BatchOp, at the same index in
// ApplyBatch's result slice as the op in its input. A failed op reports
// Err and leaves the engine's state for that request untouched; ID is
// only meaningful when Err is nil (for BatchAdd it carries the id the
// new request was assigned).
type BatchResult struct {
	ID      ShardedID
	Changed bool // BatchReroute: the route changed
	Err     error
}

// ShardedEngine is the concurrent counterpart of a Session. The
// topology is partitioned twice:
//
//  1. into weakly connected components (digraph.PartitionComponents) —
//     dipaths cannot cross components, so components are fully
//     independent;
//  2. components at or above the sub-shard threshold are further split
//     into arc-disjoint regions (digraph.PartitionRegions): the
//     biconnected blocks of the underlying undirected graph, which meet
//     only at cut vertices. Every simple path between two co-region
//     vertices stays inside the region, so region-confined requests
//     route, load and color on a compact region sub-session exactly as
//     they would globally, and paths in different regions never share
//     an arc. Requests whose endpoints share no region must cross
//     regions; they escalate to the component's serialized overlay
//     lane, a session over the whole component view.
//
// Each executable shard — a whole small component, one region, or one
// overlay lane — owns its router, load tracker, conflict graph and
// colorer outright, so the per-event hot path takes no locks or
// atomics. ApplyBatch groups a batch by owning shard and runs two
// phases on a persistent worker pool (started at construction, shut
// down by Close): phase 1 executes component shards and region lanes in
// parallel; phase 2 reconciles each touched two-level component —
// serialized per component, components in parallel — by folding the
// region lanes' path deltas into the overlay tracker, applying the
// component's overlay ops in input order, and scattering the overlay
// paths' per-arc loads back into the region trackers. The overlay
// session's tracker therefore holds the component's exact combined
// load view (π stays exact), and each region tracker holds the exact
// loads on its own arcs, which is all min-load routing inside a region
// can ever consult.
//
// Wavelength aggregation is banded: regions of one component are
// arc-disjoint, so their λ counts aggregate as a max, exactly like
// components; the overlay lane's classes are reported offset above the
// region maximum (overlay wavelength w maps to maxᵣλᵣ + w), so overlay
// paths — which do share arcs with region paths — can never collide
// with them, and a component's λ is maxᵣλᵣ + λ_overlay. Across
// components λ remains the max. π is the max over components; the
// merged Provisioning deduplicates ADMs globally.
//
// All methods are safe for concurrent use: one engine mutex serialises
// API entry, so batches never interleave. Per-shard event order is the
// input order; ops on one component split between region lanes and the
// overlay lane are reconciled at the batch boundary (the overlay lane
// applies after the region lanes, whatever the input interleaving).
// Close waits for the in-flight batch, stops the worker pool and
// freezes the engine: further mutations return ErrEngineClosed,
// queries keep answering, lock-free, from the final published snapshot.
//
// Reads never block writes: every mutation boundary publishes an
// immutable EngineSnapshot through one atomic pointer (see
// snapshot.go), and the read-only API answers from it without touching
// the engine mutex. The ...Strong variants take the mutex and read
// live state — the linearizable form.
type ShardedEngine struct {
	mu      sync.Mutex
	net     *Network
	comps   []*engineComponent
	shards  []*engineShard   // flattened executable units; ShardedID.Shard indexes this
	label   []int32          // global vertex -> owning component
	localV  []digraph.Vertex // global vertex -> vertex inside its component's view
	arcComp []int32          // global arc -> owning component
	arcLoc  []digraph.ArcID  // global arc -> arc inside its component's view
	workers int
	pool    *workerPool
	closed  bool

	// Engine-level failure counters (per-lane detail lives in the
	// sessions' FailureStats; see Stats).
	cuts       int
	restores   int
	stormNanos int64

	// Wavelength budget (0 = unlimited) and the per-component overlay
	// band it reserves on two-level components; see
	// WithEngineWavelengthBudget.
	budget       int
	overlaySlice int

	// Layout configuration retained for the adaptive plane (see
	// adaptive.go): the sub-shard threshold, the session options every
	// lane is opened with (re-layouts open new lanes), and the adaptive
	// switches with their tuning knobs and cumulative re-layout counters.
	subshard    int
	sessionOpts []SessionOption
	adaptive    bool
	resplit     bool
	acfg        AdaptiveConfig
	rebands     int
	resplits    int
	arcAdds     int

	// Batch-scoped scratch, reused across ApplyBatch calls.
	p1Scratch   []int32 // phase-1 shard indices
	p2Scratch   []int32 // phase-2 component indices
	compStamp   []uint64
	batchSerial uint64

	// Lock-free query plane (see snapshot.go): the currently published
	// snapshot, its sequence counter, whether λ is cheap enough to
	// materialise per publication (all coloring states incremental), the
	// per-publication component dirtiness scratch, and the buffer
	// recycling pools.
	snap          atomic.Pointer[EngineSnapshot]
	pubSeq        uint64
	lambdaEager   bool
	snapCompDirty []bool
	tablePool     sync.Pool // *snapTable
	vecPool       sync.Pool // *snapVec
}

// shardKind distinguishes the three executable shard flavours.
type shardKind uint8

const (
	shardPlain   shardKind = iota // one whole (small) component
	shardRegion                   // one arc-disjoint region of a two-level component
	shardOverlay                  // a two-level component's serialized cross-region lane
)

// engineShard is one executable unit of the engine. Everything below is
// owned exclusively by the shard; during ApplyBatch at most one worker
// touches it at a time (region lanes in phase 1, overlay lanes in their
// component's phase-2 task).
type engineShard struct {
	idx  int32
	kind shardKind
	comp *engineComponent
	sess *Session

	// Identifier translations from shard-local to the engine topology
	// (composed through the component for region shards).
	toGlobalVertex []digraph.Vertex
	toGlobalArc    []digraph.ArcID
	// Region shards also translate to component-local identifiers for
	// the batch-boundary reconciliation.
	toCompArc    []digraph.ArcID
	toCompVertex []digraph.Vertex

	ops    []shardOp    // scratch: this batch's ops
	deltas []shardDelta // batch-scoped path deltas (region/overlay only)

	// dirty marks the shard's session as mutated since the last snapshot
	// publication, so publishLocked rebuilds its entry table. Set by the
	// one worker executing the shard (or the failure dispatch, under
	// e.mu), cleared at publication.
	dirty bool

	// Re-layout state (see adaptive.go). A retired shard no longer
	// executes ops: its session is drained and its entries relocated;
	// forward maps every SessionID the shard ever handed out (and still
	// held a live or dark entry at retirement) to the relocated id.
	// forward is written once at retirement and immutable afterwards, so
	// published snapshots may reference it lock-free.
	retired bool
	forward map[SessionID]ShardedID

	// escal stashes region-lane adds that failed with ErrNoRoute on a
	// component marked escalate (a re-split or capacity add made some
	// co-region pairs region-unroutable): phase 2 re-runs them on the
	// overlay lane, merged with the overlay's own ops in input order.
	escal []shardOp

	// Adaptive pressure gauges (see adaptive.go), refreshed at batch
	// boundaries under e.mu: per-lane event counts and EWMAs of budget
	// occupancy, admission saturation, and the lane's share of its
	// component's events.
	events     uint64
	prevEvents uint64
	occEW      float64
	satEW      float64
	evShareEW  float64
	prevReq    int
	prevRej    int
}

// shardOp is one dispatched batch event: the index into the caller's
// op slice, the shard-local request (BatchAdd only), and the resolved
// shard-local session id (BatchRemove/BatchReroute only — dispatch
// chases retired shards' forward maps, so the executing lane never
// sees a stale handle).
type shardOp struct {
	idx int32
	req route.Request
	id  SessionID
}

// shardDelta records one shard-local path the lane added or removed
// during the current batch, for the phase-2 tracker reconciliation.
type shardDelta struct {
	add  bool
	path *dipath.Path
}

// engineComponent is one weakly connected component of the engine
// topology: either a single plain shard, or a two-level group of region
// shards plus an overlay lane.
type engineComponent struct {
	idx          int32
	view         digraph.ComponentView
	plain        *engineShard // single-level components; nil when two-level
	regions      *digraph.Regions
	regionShards []*engineShard
	overlay      *engineShard

	// Adaptive layout state (see adaptive.go): the component's current
	// overlay band (adaptive banding re-splits the engine budget per
	// component), the batch serial of its last re-layout (hysteresis
	// cooldown), the consecutive-batch pressure counters behind the
	// hysteresis gate, whether the component was dissolved by a
	// cross-component merge (dead components keep their slot so shard
	// and component indices stay stable), and whether region lanes must
	// escalate ErrNoRoute adds to the overlay (a re-split or capacity
	// add made region views pessimistic about routability).
	overlaySlice int
	lastLayout   uint64
	growPend     int
	shrinkPend   int
	dead         bool
	escalate     bool

	// liveLabel relabels the component's vertices by live connectivity
	// while any of its arcs is cut — the incremental re-shard a failure
	// induces: pairs the cut split are rejected in O(1) at dispatch, and
	// the label is dropped (nil) when the last cut heals. nil = intact.
	liveLabel []int32

	// Snapshot aggregate cache (see snapshot.go): λ (with the overlay
	// banding base), π, and live/dark counts as of the last publication
	// that found this component dirty. Maintained under e.mu.
	aggLambda        int
	aggLambdaErr     error
	aggRegionBase    int // region λ max — the overlay band's base
	aggOverlayLambda int
	aggPi            int
	aggLive          int
	aggDark          int
}

func (c *engineComponent) twoLevel() bool { return c.plain == nil }

// shardedConfig collects NewShardedEngine options.
type shardedConfig struct {
	workers      int
	subshard     int
	budget       int
	overlaySlice int
	sessionOpts  []SessionOption
	adaptive     bool
	resplit      bool
	acfg         AdaptiveConfig
	acfgSet      bool
}

// ShardedOption configures NewShardedEngine.
type ShardedOption func(*shardedConfig) error

// WithShardWorkers bounds the number of workers ApplyBatch fans shards
// out to (default: runtime.GOMAXPROCS(0)). The engine keeps a
// persistent pool of n-1 worker goroutines (the caller is the n-th), so
// small batches pay no spawn cost; Close stops the pool.
func WithShardWorkers(n int) ShardedOption {
	return func(c *shardedConfig) error {
		if n < 1 {
			return fmt.Errorf("wdm: shard workers must be >= 1, got %d", n)
		}
		c.workers = n
		return nil
	}
}

// WithShardSessionOptions forwards session options (routing/coloring
// strategy, slack, capacity hint) to every per-shard session, region
// and overlay lanes included.
func WithShardSessionOptions(opts ...SessionOption) ShardedOption {
	return func(c *shardedConfig) error {
		c.sessionOpts = append(c.sessionOpts, opts...)
		return nil
	}
}

// WithSubshardThreshold sets the component size (in vertices) at which
// a weakly connected component is decomposed into arc-disjoint regions
// and run two-level (default DefaultSubshardThreshold). 0 disables
// sub-sharding entirely — every component runs as one plain shard, the
// pre-two-level layout. Components whose decomposition yields a single
// region (fully biconnected) stay plain regardless.
func WithSubshardThreshold(n int) ShardedOption {
	return func(c *shardedConfig) error {
		if n < 0 {
			return fmt.Errorf("wdm: sub-shard threshold must be >= 0, got %d", n)
		}
		c.subshard = n
		return nil
	}
}

// WithEngineWavelengthBudget caps every lane of the engine at a global
// wavelength budget of w: because λ aggregates as a max over components
// (and over the arc-disjoint regions inside one), a global budget is
// exactly a per-shard budget, so admission stays on the lock-free
// per-shard hot path with no cross-shard coordination. Plain components
// admit against w outright; a two-level component splits w into a
// region band (w minus the overlay slice, see WithOverlayBudgetSlice)
// and an overlay band, so the banded aggregation can never exceed w.
// Over-budget requests fail their batch op with ErrBudgetExceeded (or
// go to the admission strategy configured via WithShardSessionOptions);
// per-lane counts aggregate into EngineStats. w <= 0 means unlimited.
func WithEngineWavelengthBudget(w int) ShardedOption {
	return func(c *shardedConfig) error {
		if w < 0 {
			return fmt.Errorf("wdm: wavelength budget must be >= 0, got %d", w)
		}
		c.budget = w
		return nil
	}
}

// WithOverlayBudgetSlice sets how many of a budgeted engine's w
// wavelengths each two-level component reserves for its overlay lane
// (cross-region traffic); region lanes admit against the remaining
// w - slice. The default is w/4, at least 1. The slice must leave the
// regions at least one wavelength; an engine whose layout has two-level
// components rejects budgets that cannot be split (use
// WithSubshardThreshold(0) to run such budgets single-level).
func WithOverlayBudgetSlice(k int) ShardedOption {
	return func(c *shardedConfig) error {
		if k < 1 {
			return fmt.Errorf("wdm: overlay budget slice must be >= 1, got %d", k)
		}
		c.overlaySlice = k
		return nil
	}
}

// NewShardedEngine partitions the network's topology into weakly
// connected components, decomposes giant components into arc-disjoint
// regions (see WithSubshardThreshold), opens one session per executable
// shard and starts the persistent worker pool. Callers should Close the
// engine when done with mutations to stop the pool.
func (n *Network) NewShardedEngine(opts ...ShardedOption) (*ShardedEngine, error) {
	cfg := shardedConfig{workers: runtime.GOMAXPROCS(0), subshard: DefaultSubshardThreshold}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	overlaySlice := cfg.overlaySlice
	if cfg.budget > 0 && overlaySlice == 0 {
		if overlaySlice = cfg.budget / 4; overlaySlice < 1 {
			overlaySlice = 1
		}
	}
	if cfg.adaptive && cfg.budget == 0 {
		return nil, fmt.Errorf("wdm: adaptive banding re-splits the wavelength budget between lanes; set WithEngineWavelengthBudget")
	}
	if !cfg.acfgSet {
		cfg.acfg = DefaultAdaptiveConfig()
	}
	views, label, localV := n.Topology.PartitionComponents()
	e := &ShardedEngine{
		net:          n,
		comps:        make([]*engineComponent, 0, len(views)),
		label:        label,
		localV:       localV,
		workers:      cfg.workers,
		budget:       cfg.budget,
		overlaySlice: overlaySlice,
		subshard:     cfg.subshard,
		sessionOpts:  cfg.sessionOpts,
		adaptive:     cfg.adaptive,
		resplit:      cfg.resplit,
		acfg:         cfg.acfg,
		compStamp:    make([]uint64, len(views)),
	}
	for ci, view := range views {
		comp := &engineComponent{idx: int32(ci), view: view, overlaySlice: overlaySlice}
		var regs *digraph.Regions
		if cfg.subshard > 0 && view.G.NumVertices() >= cfg.subshard {
			if r := view.G.PartitionRegions(); r.NumRegions() >= 2 {
				regs = r
			}
		}
		if regs == nil {
			sess, err := e.newLaneSession(view.G, cfg.budget, fmt.Sprintf("component %d", ci))
			if err != nil {
				return nil, err
			}
			comp.plain = e.addShard(&engineShard{
				kind: shardPlain, comp: comp, sess: sess,
				toGlobalVertex: view.ToGlobalVertex,
				toGlobalArc:    view.ToGlobalArc,
			})
		} else {
			if cfg.budget > 0 && cfg.budget-overlaySlice < 1 {
				return nil, fmt.Errorf(
					"wdm: wavelength budget %d cannot band a two-level component (overlay slice %d leaves no region budget); use WithOverlayBudgetSlice or WithSubshardThreshold(0)",
					cfg.budget, overlaySlice)
			}
			comp.regions = regs
			for ri, rv := range regs.Views {
				sess, err := e.newLaneSession(rv.G, cfg.budget-overlaySlice, fmt.Sprintf("component %d region %d", ci, ri))
				if err != nil {
					return nil, err
				}
				gv := make([]digraph.Vertex, len(rv.ToGlobalVertex))
				for i, cv := range rv.ToGlobalVertex {
					gv[i] = view.ToGlobalVertex[cv]
				}
				ga := make([]digraph.ArcID, len(rv.ToGlobalArc))
				for i, ca := range rv.ToGlobalArc {
					ga[i] = view.ToGlobalArc[ca]
				}
				comp.regionShards = append(comp.regionShards, e.addShard(&engineShard{
					kind: shardRegion, comp: comp, sess: sess,
					toGlobalVertex: gv,
					toGlobalArc:    ga,
					toCompArc:      rv.ToGlobalArc,
					toCompVertex:   rv.ToGlobalVertex,
				}))
			}
			sess, err := e.newLaneSession(view.G, overlaySlice, fmt.Sprintf("component %d overlay", ci))
			if err != nil {
				return nil, err
			}
			comp.overlay = e.addShard(&engineShard{
				kind: shardOverlay, comp: comp, sess: sess,
				toGlobalVertex: view.ToGlobalVertex,
				toGlobalArc:    view.ToGlobalArc,
			})
		}
		e.comps = append(e.comps, comp)
	}
	// Inverse arc maps for O(1) failure dispatch, and the path-delta
	// hooks through which region/overlay lanes log every tracker
	// mutation — batch ops and storm reroutes alike — for the two-level
	// reconciliation.
	e.arcComp = make([]int32, n.Topology.NumArcs())
	e.arcLoc = make([]digraph.ArcID, n.Topology.NumArcs())
	for _, c := range e.comps {
		for la, ga := range c.view.ToGlobalArc {
			e.arcComp[ga] = c.idx
			e.arcLoc[ga] = digraph.ArcID(la)
		}
	}
	for _, sh := range e.shards {
		if sh.kind != shardPlain {
			sh := sh
			sh.sess.setPathDeltaHook(func(add bool, p *dipath.Path) {
				sh.deltas = append(sh.deltas, shardDelta{add: add, path: p})
			})
		}
	}
	// λ is materialised into every snapshot only when all coloring
	// states answer NumLambda in O(1) (the incremental strategy, the
	// default); a deferred strategy would turn every publication into a
	// full solve, so those engines answer λ through the strong path.
	e.lambdaEager = true
	for _, sh := range e.shards {
		if _, ok := sh.sess.coloring.(*incrementalState); !ok {
			e.lambdaEager = false
			break
		}
	}
	e.snapCompDirty = make([]bool, len(e.comps))
	e.publishLocked() // seed the query plane with the empty snapshot
	// The pool starts last: constructor error paths leak no goroutines.
	if e.workers > 1 {
		e.pool = newWorkerPool(e.workers - 1)
	}
	return e, nil
}

// newLaneSession opens one lane session over g with the given lane
// budget (ignored when the engine is unbudgeted), applying the
// engine's forwarded session options. Used at construction and by
// every re-layout (re-split, capacity add, component merge).
func (e *ShardedEngine) newLaneSession(g *digraph.Digraph, budget int, what string) (*Session, error) {
	subnet := &Network{Topology: g, Wavelengths: e.net.Wavelengths}
	opts := e.sessionOpts
	if e.budget > 0 {
		// The lane budget rides after the caller's session options, so
		// the engine's banding always wins over a stray
		// WithWavelengthBudget forwarded through session options.
		opts = append(opts[:len(opts):len(opts)], WithWavelengthBudget(budget))
	}
	sess, err := subnet.NewSession(opts...)
	if err != nil {
		return nil, fmt.Errorf("wdm: %s: %w", what, err)
	}
	return sess, nil
}

// addShard appends a shard to the flattened layout, assigning its
// index. The shard is born dirty so the next publication builds its
// snapshot table.
func (e *ShardedEngine) addShard(sh *engineShard) *engineShard {
	sh.idx = int32(len(e.shards))
	sh.dirty = true
	e.shards = append(e.shards, sh)
	return sh
}

// Close waits for any in-flight batch, stops the persistent worker
// pool and freezes the engine: subsequent mutations return
// ErrEngineClosed, queries keep answering — lock-free — from the final
// published snapshot. Close is idempotent and safe to call
// concurrently with batches.
func (e *ShardedEngine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	if e.pool != nil {
		e.pool.close()
		e.pool = nil
	}
	// Publish the frozen state so lock-free readers see Closed() flip
	// and keep answering from the final snapshot.
	e.publishLocked()
	return nil
}

// NumShards returns the number of executable shards: plain components,
// regions and overlay lanes combined, retired shards included (the
// flattened layout only ever grows, so ShardedID.Shard stays a stable
// index).
func (e *ShardedEngine) NumShards() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.shards)
}

// NumComponents returns the number of weakly connected components of
// the engine topology.
func (e *ShardedEngine) NumComponents() int { return len(e.comps) }

// Workers returns the ApplyBatch worker bound.
func (e *ShardedEngine) Workers() int { return e.workers }

// LaneStats aggregates one lane flavour's traffic across the engine:
// cumulative admission outcomes (requests offered, accepted, rejected,
// and the accepted subdivisions) plus the current live occupancy.
// Sessions count every offer even without a budget, so the region-vs-
// overlay traffic split — the serialized-overlay pressure the two-level
// layout caps out on — is observable without a profiler.
type LaneStats struct {
	Requests   int
	Accepted   int
	Rejected   int
	BestEffort int
	Retried    int
	Live       int

	// Failure counters: cumulative storm outcomes and current parked
	// occupancy for this lane flavour.
	Affected int // live paths hit by fiber cuts
	Restored int // paths rerouted by restoration storms
	Parked   int // paths parked dark (unrestorable at cut time)
	Revived  int // dark entries brought back by re-admission sweeps
	Promoted int // best-effort entries upgraded to budgeted service
	Dark     int // entries currently parked dark

	// Adaptive pressure gauges (see adaptive.go): the maximum over this
	// flavour's live lanes of the budget-occupancy EWMA (lane λ over
	// lane budget; 0 when the engine is unbudgeted or λ is not eagerly
	// materialised) and of the admission-saturation EWMA (rejected
	// share of recent offers). These drive the adaptive banding gate.
	Occupancy  float64
	Saturation float64
}

func (l *LaneStats) add(s *Session) {
	st := s.AdmissionStats()
	l.Requests += st.Requests
	l.Accepted += st.Accepted
	l.Rejected += st.Rejected
	l.BestEffort += st.BestEffort
	l.Retried += st.Retried
	l.Live += s.Len()
	fs := s.FailureStats()
	l.Affected += fs.Affected
	l.Restored += fs.Restored
	l.Parked += fs.Parked
	l.Revived += fs.Revived
	l.Promoted += fs.Promoted
	l.Dark += s.DarkLive()
}

// EngineStats summarises the engine layout, the two-level lanes'
// occupancy, and the per-lane traffic shares with their admission
// outcomes (λ = max aggregation makes the engine budget a per-lane
// budget, so the lane counters add up to the engine's blocking
// behaviour exactly).
type EngineStats struct {
	Components   int // weakly connected components
	TwoLevel     int // components running the two-level region layout
	RegionShards int // region lanes across all two-level components
	OverlayLive  int // live requests across all overlay lanes

	Budget int // engine wavelength budget (0 = unlimited)

	Cuts       int   // fiber cuts injected via FailArc
	Restores   int   // repairs applied via RestoreArc
	FailedArcs int   // arcs currently cut
	StormNanos int64 // cumulative wall time spent inside restoration storms

	Rebands  int // adaptive budget re-bandings applied (see adaptive.go)
	Resplits int // hot-region re-splits applied
	ArcAdds  int // live capacity adds applied via AddArc

	Plain   LaneStats // whole-component shards
	Region  LaneStats // region lanes of two-level components
	Overlay LaneStats // serialized overlay lanes
}

// Requests returns the total offers across all lanes.
func (st EngineStats) Requests() int {
	return st.Plain.Requests + st.Region.Requests + st.Overlay.Requests
}

// Accepted returns the total accepted offers across all lanes.
func (st EngineStats) Accepted() int {
	return st.Plain.Accepted + st.Region.Accepted + st.Overlay.Accepted
}

// Rejected returns the total budget rejections across all lanes.
func (st EngineStats) Rejected() int {
	return st.Plain.Rejected + st.Region.Rejected + st.Overlay.Rejected
}

// Dark returns the entries currently parked dark across all lanes.
func (st EngineStats) Dark() int {
	return st.Plain.Dark + st.Region.Dark + st.Overlay.Dark
}

// Restored returns the total storm restorations across all lanes.
func (st EngineStats) Restored() int {
	return st.Plain.Restored + st.Region.Restored + st.Overlay.Restored
}

// StatsStrong reports the engine layout, overlay occupancy and
// per-lane traffic shares read under the engine mutex — the
// strongly-consistent twin of Stats, which answers from the published
// snapshot.
func (e *ShardedEngine) StatsStrong() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.statsLocked()
}

// statsLocked assembles EngineStats from the live sessions; the caller
// holds e.mu. Shared by StatsStrong and snapshot publication.
func (e *ShardedEngine) statsLocked() EngineStats {
	st := EngineStats{
		Components: len(e.comps),
		Budget:     e.budget,
		Cuts:       e.cuts,
		Restores:   e.restores,
		FailedArcs: e.net.Topology.NumFailedArcs(),
		StormNanos: e.stormNanos,
		Rebands:    e.rebands,
		Resplits:   e.resplits,
		ArcAdds:    e.arcAdds,
	}
	for _, c := range e.comps {
		if c.dead {
			continue
		}
		if c.twoLevel() {
			st.TwoLevel++
			st.RegionShards += len(c.regionShards)
			st.OverlayLive += c.overlay.sess.Len()
		}
	}
	for _, sh := range e.shards {
		var l *LaneStats
		switch sh.kind {
		case shardPlain:
			l = &st.Plain
		case shardRegion:
			l = &st.Region
		case shardOverlay:
			l = &st.Overlay
		default:
			continue
		}
		// Retired shards still contribute their cumulative admission and
		// failure counters (their drained sessions hold no live state);
		// only live lanes contribute pressure gauges.
		l.add(sh.sess)
		if !sh.retired {
			if sh.occEW > l.Occupancy {
				l.Occupancy = sh.occEW
			}
			if sh.satEW > l.Saturation {
				l.Saturation = sh.satEW
			}
		}
	}
	return st
}

// Budget returns the engine's wavelength budget (0 = unlimited).
func (e *ShardedEngine) Budget() int { return e.budget }

// OverlayBudgetSlice returns the overlay band a budgeted engine
// reserves per two-level component (0 when no budget is set).
func (e *ShardedEngine) OverlayBudgetSlice() int {
	if e.budget <= 0 {
		return 0
	}
	return e.overlaySlice
}

// OverlayLambdaStrong returns the maximum number of overlay wavelength
// classes across components — the band the two-level aggregation stacks
// above the region maximum (0 when no overlay lane holds a request) —
// read under the engine mutex (see OverlayLambda for the snapshot
// form).
func (e *ShardedEngine) OverlayLambdaStrong() (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	max := 0
	for _, c := range e.comps {
		if c.dead || !c.twoLevel() {
			continue
		}
		n, err := c.overlay.sess.NumLambda()
		if err != nil {
			return 0, fmt.Errorf("wdm: component %d overlay: %w", c.idx, err)
		}
		if n > max {
			max = n
		}
	}
	return max, nil
}

// ── Dispatch ───────────────────────────────────────────────────────────

// dispatchAdd resolves the executable shard of an add request and the
// request in that shard's local identifiers. Out-of-range endpoints and
// cross-component pairs (which no dipath can satisfy — the same answer
// a full search would reach) are rejected in O(1); two-level components
// route co-region pairs to the region lane and everything else to the
// overlay lane.
func (e *ShardedEngine) dispatchAdd(req route.Request) (*engineShard, route.Request, error) {
	n := len(e.label)
	if req.Src < 0 || req.Dst < 0 || int(req.Src) >= n || int(req.Dst) >= n {
		return nil, req, fmt.Errorf("wdm: vertex out of range")
	}
	ci := e.label[req.Src]
	if ci != e.label[req.Dst] {
		return nil, req, route.ErrNoRoute{Req: req}
	}
	c := e.comps[ci]
	lsrc, ldst := e.localV[req.Src], e.localV[req.Dst]
	if ll := c.liveLabel; ll != nil && ll[lsrc] != ll[ldst] {
		// A fiber cut split the component: the pair is unroutable until
		// the cut heals, and the O(1) answer here is what a full search
		// inside the component would exhaust itself reaching.
		return nil, req, route.ErrNoRoute{Req: req}
	}
	if !c.twoLevel() {
		return c.plain, route.Request{Src: lsrc, Dst: ldst}, nil
	}
	if r, ru, rv, ok := c.regions.CommonRegionNewest(lsrc, ldst); ok {
		return c.regionShards[r], route.Request{Src: ru, Dst: rv}, nil
	}
	return c.overlay, route.Request{Src: lsrc, Dst: ldst}, nil
}

// shardOf resolves a ShardedID's shard, rejecting ids the engine never
// issued.
func (e *ShardedEngine) shardOf(id ShardedID) (*engineShard, error) {
	if id.Shard < 0 || int(id.Shard) >= len(e.shards) {
		return nil, fmt.Errorf("wdm: unknown shard %d", id.Shard)
	}
	return e.shards[id.Shard], nil
}

// resolveID resolves a ShardedID to the live shard currently holding
// the entry and its session id there, chasing retired shards' forward
// maps — re-splits, capacity adds and component merges relocate
// entries, but callers keep using the handle they were issued. The hop
// count is bounded by the shard count (each hop lands on a
// strictly-newer shard), so a corrupted handle cannot loop.
func (e *ShardedEngine) resolveID(id ShardedID) (*engineShard, SessionID, error) {
	sh, err := e.shardOf(id)
	if err != nil {
		return nil, 0, err
	}
	lid := id.ID
	for hops := 0; sh.retired; hops++ {
		next, ok := sh.forward[lid]
		if !ok || hops >= len(e.shards) {
			return nil, 0, fmt.Errorf("wdm: unknown session id %d on retired shard %d", lid, sh.idx)
		}
		sh, lid = e.shards[next.Shard], next.ID
	}
	return sh, lid, nil
}

// globalizeErr rewrites shard-local vertex identifiers in a session
// error back to the engine topology, so callers never see ids from the
// compact shard view (which name different global vertices). prefix
// restores the operation context the rebuilt error would otherwise lose
// ("wdm: routing" / "wdm: rerouting").
func (sh *engineShard) globalizeErr(prefix string, err error) error {
	var nr route.ErrNoRoute
	if !errors.As(err, &nr) {
		return err
	}
	n := len(sh.toGlobalVertex)
	if nr.Req.Src < 0 || int(nr.Req.Src) >= n || nr.Req.Dst < 0 || int(nr.Req.Dst) >= n {
		return err
	}
	return fmt.Errorf("%s: %w", prefix, route.ErrNoRoute{Req: route.Request{
		Src: sh.toGlobalVertex[nr.Req.Src],
		Dst: sh.toGlobalVertex[nr.Req.Dst],
	}})
}

// apply executes one op against the shard. Called by at most one worker
// per shard at a time. so carries the shard-local request (BatchAdd)
// or the resolved shard-local session id (BatchRemove/BatchReroute —
// dispatch already chased forward maps, so so.id is live here even
// when op.ID names a retired shard; results keep reporting the
// caller's original handle). Region and overlay lanes log the path
// deltas for the phase-2 tracker reconciliation through their
// session's path-delta hook — every tracker mutation (op-driven or
// storm-driven) lands in sh.deltas, so apply itself no longer captures
// before/after paths.
func (sh *engineShard) apply(e *ShardedEngine, op BatchOp, so shardOp) BatchResult {
	sh.dirty = true // even a failed op may have mutated admission counters
	switch op.Kind {
	case BatchAdd:
		id, err := sh.sess.Add(so.req)
		if err != nil {
			return BatchResult{Err: sh.globalizeErr("wdm: routing", err)}
		}
		return BatchResult{ID: ShardedID{Shard: sh.idx, ID: id}}
	case BatchRemove:
		return BatchResult{ID: op.ID, Err: sh.sess.Remove(so.id)}
	case BatchReroute:
		changed, err := sh.sess.Reroute(so.id)
		if err != nil {
			err = sh.globalizeErr("wdm: rerouting", err)
		}
		return BatchResult{ID: op.ID, Changed: changed, Err: err}
	default:
		return BatchResult{Err: fmt.Errorf("wdm: unknown batch op kind %d", op.Kind)}
	}
}

// ── Batch execution ────────────────────────────────────────────────────

// ApplyBatch applies a slice of churn events, grouping them by owning
// shard and executing phase 1 (plain components and region lanes) in
// parallel on the persistent pool, then phase 2 (overlay lanes and the
// two-level tracker reconciliation) with one serialized task per
// touched component. Results are parallel to ops; per-shard event order
// is the input order. Ops that cannot be dispatched (out-of-range
// vertices, cross-component requests, unknown shards) fail
// individually without aborting the batch.
func (e *ShardedEngine) ApplyBatch(ops []BatchOp) []BatchResult {
	return e.ApplyBatchInto(ops, nil)
}

// ApplyBatchInto is ApplyBatch with a caller-owned results buffer:
// results is resized to len(ops) reusing its capacity (and cleared —
// stale entries never leak into the new batch), so a steady-state
// caller recycling the returned slice pays no per-batch allocation for
// it. Passing nil behaves exactly like ApplyBatch.
func (e *ShardedEngine) ApplyBatchInto(ops []BatchOp, results []BatchResult) []BatchResult {
	if cap(results) >= len(ops) {
		results = results[:len(ops)]
		clear(results)
	} else {
		results = make([]BatchResult, len(ops))
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		for i := range results {
			results[i].Err = ErrEngineClosed
		}
		return results
	}
	e.applyLocked(ops, results)
	return results
}

// serialBatchThreshold is the batch size (in events) below which
// ApplyBatch runs entirely inline: distributing ~1µs events across
// workers costs more in handoff and wake-up (~2µs) than it saves, so
// tiny batches skip the pool altogether — cheaper than both the pool
// handoff and the per-batch goroutine spawn it replaced (see the
// churn/sharded/.../batch=8 entries in BENCH_PR4.json).
const serialBatchThreshold = 16

func (e *ShardedEngine) applyLocked(ops []BatchOp, results []BatchResult) {
	p1, p2 := e.group(ops, results)
	serial := len(ops) <= serialBatchThreshold
	e.fanOut(serial, len(p1), func(i int) {
		sh := e.shards[p1[i]]
		escalating := sh.kind == shardRegion && sh.comp.escalate
		for _, so := range sh.ops {
			res := sh.apply(e, ops[so.idx], so)
			if escalating && res.Err != nil && ops[so.idx].Kind == BatchAdd {
				// On an escalating component a region ErrNoRoute no longer
				// proves the pair globally unroutable (a re-split or
				// capacity add made the region view pessimistic): stash the
				// add, translated to component vertices, for the overlay
				// lane's phase-2 pass.
				var nr route.ErrNoRoute
				if errors.As(res.Err, &nr) {
					sh.escal = append(sh.escal, shardOp{idx: so.idx, req: route.Request{
						Src: sh.toCompVertex[so.req.Src],
						Dst: sh.toCompVertex[so.req.Dst],
					}})
					continue
				}
			}
			results[so.idx] = res
		}
		sh.ops = sh.ops[:0]
	})
	e.fanOut(serial, len(p2), func(i int) {
		c := e.comps[p2[i]]
		c.overlay.dirty = true // fold/scatter move the combined load view
		c.overlayPhase(e, ops, results)
	})
	if e.adaptive || e.resplit {
		e.adaptLocked()
	}
	e.publishLocked()
}

// group routes each op to its shard's mailbox, failing undispatchable
// ops in place. It returns the phase-1 shards (plain and region, in
// first-touch order) and the two-level components that need a phase-2
// task (any region or overlay traffic this batch).
func (e *ShardedEngine) group(ops []BatchOp, results []BatchResult) (p1, p2 []int32) {
	p1, p2 = e.p1Scratch[:0], e.p2Scratch[:0]
	e.batchSerial++
	enqueue := func(sh *engineShard, i int, req route.Request, lid SessionID) {
		if sh.kind != shardPlain && e.compStamp[sh.comp.idx] != e.batchSerial {
			e.compStamp[sh.comp.idx] = e.batchSerial
			p2 = append(p2, sh.comp.idx)
		}
		if sh.kind != shardOverlay && len(sh.ops) == 0 {
			p1 = append(p1, sh.idx)
		}
		sh.events++
		sh.ops = append(sh.ops, shardOp{idx: int32(i), req: req, id: lid})
	}
	for i, op := range ops {
		switch op.Kind {
		case BatchAdd:
			sh, lreq, err := e.dispatchAdd(op.Req)
			if err != nil {
				results[i] = BatchResult{Err: err}
				continue
			}
			enqueue(sh, i, lreq, 0)
		default:
			sh, lid, err := e.resolveID(op.ID)
			if err != nil {
				results[i] = BatchResult{Err: err}
				continue
			}
			enqueue(sh, i, route.Request{}, lid)
		}
	}
	e.p1Scratch, e.p2Scratch = p1, p2
	return p1, p2
}

// overlayPhase is a two-level component's phase-2 task, serialized per
// component: (a) fold the region lanes' batch deltas into the overlay
// tracker — after which it is the component's exact combined load view
// again; (b) apply the overlay lane's ops in input order; (c) scatter
// the overlay deltas' per-arc loads into the region trackers, so each
// region lane keeps the exact loads on its own arcs for min-load
// routing and π.
func (c *engineComponent) overlayPhase(e *ShardedEngine, ops []BatchOp, results []BatchResult) {
	c.foldRegionDeltas()
	oops := c.overlay.ops
	if c.escalate {
		// Merge region-lane escalations (ErrNoRoute adds the re-layout
		// made region-unroutable) with the overlay's own ops, in input
		// order — the merged order is a function of the batch alone, so
		// outcomes stay deterministic across worker schedules.
		merged := false
		for _, rs := range c.regionShards {
			if len(rs.escal) > 0 {
				oops = append(oops, rs.escal...)
				rs.escal = rs.escal[:0]
				merged = true
			}
		}
		if merged {
			sort.Slice(oops, func(i, j int) bool { return oops[i].idx < oops[j].idx })
		}
	}
	for _, so := range oops {
		results[so.idx] = c.overlay.apply(e, ops[so.idx], so)
	}
	c.overlay.ops = oops[:0]
	c.scatterOverlayDeltas()
}

// foldRegionDeltas replays the region lanes' logged path deltas into
// the overlay tracker, restoring it to the component's exact combined
// load view. Shared by the batch phase-2 task and the failure dispatch
// (storms mutate region lanes through the same hook batch ops do).
func (c *engineComponent) foldRegionDeltas() {
	ot := c.overlay.sess.tracker
	for _, rs := range c.regionShards {
		for _, d := range rs.deltas {
			for _, a := range d.path.Arcs() {
				if d.add {
					ot.AddArc(rs.toCompArc[a])
				} else {
					ot.RemoveArc(rs.toCompArc[a])
				}
			}
		}
		rs.deltas = rs.deltas[:0]
	}
}

// scatterOverlayDeltas replays the overlay lane's logged path deltas
// into the region trackers, so every region lane keeps the exact loads
// on its own arcs.
func (c *engineComponent) scatterOverlayDeltas() {
	for _, d := range c.overlay.deltas {
		for _, a := range d.path.Arcs() {
			ri := c.regions.ArcRegion[a]
			if ri < 0 {
				// Overlay-owned arc (a capacity add that bridges regions
				// belongs to no region lane); its load lives only in the
				// overlay tracker.
				continue
			}
			rs := c.regionShards[ri]
			la := c.regions.LocalArc[a]
			if d.add {
				rs.sess.tracker.AddArc(la)
			} else {
				rs.sess.tracker.RemoveArc(la)
			}
		}
	}
	c.overlay.deltas = c.overlay.deltas[:0]
}

// Add provisions a single request (see ApplyBatch for the batched
// form).
func (e *ShardedEngine) Add(req route.Request) (ShardedID, error) {
	res, err := e.applyOne(AddOp(req))
	if err != nil {
		return ShardedID{}, err
	}
	return res.ID, res.Err
}

// Remove tears down the request with the given id.
func (e *ShardedEngine) Remove(id ShardedID) error {
	res, err := e.applyOne(RemoveOp(id))
	if err != nil {
		return err
	}
	return res.Err
}

// Reroute re-routes the request with the given id against the current
// loads of its shard; it reports whether the path changed.
func (e *ShardedEngine) Reroute(id ShardedID) (bool, error) {
	res, err := e.applyOne(RerouteOp(id))
	if err != nil {
		return false, err
	}
	return res.Changed, res.Err
}

// applyOne runs one op through the batch machinery (so two-level
// reconciliation happens exactly as in a batch of one).
func (e *ShardedEngine) applyOne(op BatchOp) (BatchResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return BatchResult{}, ErrEngineClosed
	}
	ops := [1]BatchOp{op}
	results := [1]BatchResult{}
	e.applyLocked(ops[:], results[:])
	return results[0], nil
}

// ── Worker pool ────────────────────────────────────────────────────────

// workerPool is a fixed set of goroutines started once per engine and
// fed closures over a channel buffered to the pool size — fanOut never
// submits more than n in-flight tasks, so submit never blocks (the
// serialBatchThreshold calibration assumes this). It replaces the
// per-batch goroutine spawn, so tiny batches stop paying startup cost.
type workerPool struct {
	tasks chan func()
	done  sync.WaitGroup
}

func newWorkerPool(n int) *workerPool {
	p := &workerPool{tasks: make(chan func(), n)}
	p.done.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.done.Done()
			for f := range p.tasks {
				f()
			}
		}()
	}
	return p
}

func (p *workerPool) submit(f func()) { p.tasks <- f }

func (p *workerPool) close() {
	close(p.tasks)
	p.done.Wait()
}

// fanOut runs f(0..n-1), each index exactly once, on up to Workers()
// goroutines: the caller is always one of them (a single-shard batch
// never pays a channel handoff) and the persistent pool supplies the
// rest. Indices are claimed through a shared atomic cursor, so workers
// load-balance uneven shards. serial forces the inline path (tiny
// batches, see serialBatchThreshold).
func (e *ShardedEngine) fanOut(serial bool, n int, f func(int)) {
	w := e.workers
	if w > n {
		w = n
	}
	if serial || w <= 1 || e.pool == nil {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int32
	drain := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			f(i)
		}
	}
	var wg sync.WaitGroup
	wg.Add(w - 1)
	for k := 0; k < w-1; k++ {
		e.pool.submit(func() {
			defer wg.Done()
			drain()
		})
	}
	drain()
	wg.Wait()
}

// ── Queries and aggregates ─────────────────────────────────────────────

// globalPath translates a shard-local dipath back to the engine's
// topology. The translation is structure-preserving by construction, so
// the arcs chain without revalidation (dipath.FromArcsTrusted).
//
//wavedag:lockfree
//wavedag:allow-alloc (builds the translated path; runs against immutable tables)
func (sh *engineShard) globalPath(e *ShardedEngine, p *dipath.Path) (*dipath.Path, error) {
	if p.NumArcs() == 0 {
		return dipath.FromVertices(e.net.Topology, sh.toGlobalVertex[p.First()])
	}
	arcs := make([]digraph.ArcID, p.NumArcs())
	for i, a := range p.Arcs() {
		arcs[i] = sh.toGlobalArc[a]
	}
	return dipath.FromArcsTrusted(e.net.Topology, arcs...), nil
}

// compLocalPath translates a shard-local dipath to its component's
// view (identity for plain and overlay shards).
func (sh *engineShard) compLocalPath(p *dipath.Path) (*dipath.Path, error) {
	if sh.kind != shardRegion {
		return p, nil
	}
	if p.NumArcs() == 0 {
		return dipath.FromVertices(sh.comp.view.G, sh.toCompVertex[p.First()])
	}
	arcs := make([]digraph.ArcID, p.NumArcs())
	for i, a := range p.Arcs() {
		arcs[i] = sh.toCompArc[a]
	}
	return dipath.FromArcsTrusted(sh.comp.view.G, arcs...), nil
}

// PathStrong returns the current route of a live request, in the
// engine topology's vertex and arc identifiers, read under the engine
// mutex (see Path for the snapshot form).
func (e *ShardedEngine) PathStrong(id ShardedID) (*dipath.Path, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	sh, lid, err := e.resolveID(id)
	if err != nil {
		return nil, err
	}
	p, err := sh.sess.Path(lid)
	if err != nil {
		return nil, err
	}
	return sh.globalPath(e, p)
}

// regionLambdaMax returns the maximum λ across a two-level component's
// region lanes — the base of the overlay lane's wavelength band.
func (c *engineComponent) regionLambdaMax() (int, error) {
	max := 0
	for _, rs := range c.regionShards {
		n, err := rs.sess.NumLambda()
		if err != nil {
			return 0, fmt.Errorf("wdm: component %d region: %w", c.idx, err)
		}
		if n > max {
			max = n
		}
	}
	return max, nil
}

// lambda returns a component's wavelength count: the per-shard λ for
// plain components, the region maximum plus the overlay band for
// two-level ones.
func (c *engineComponent) lambda() (int, error) {
	if !c.twoLevel() {
		return c.plain.sess.NumLambda()
	}
	base, err := c.regionLambdaMax()
	if err != nil {
		return 0, err
	}
	on, err := c.overlay.sess.NumLambda()
	if err != nil {
		return 0, fmt.Errorf("wdm: component %d overlay: %w", c.idx, err)
	}
	return base + on, nil
}

// WavelengthStrong returns the current wavelength of a live request,
// read under the engine mutex (see Wavelength for the snapshot form).
// Overlay lane wavelengths are reported in the component's effective
// band (region maximum + overlay class), so the answer may shift
// upward as region lanes grow; it is exact as of the call.
func (e *ShardedEngine) WavelengthStrong(id ShardedID) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	sh, lid, err := e.resolveID(id)
	if err != nil {
		return -1, err
	}
	w, err := sh.sess.Wavelength(lid)
	if err != nil || sh.kind != shardOverlay || w < 0 {
		return w, err
	}
	base, err := sh.comp.regionLambdaMax()
	if err != nil {
		return -1, err
	}
	return base + w, nil
}

// LenStrong returns the number of live requests across all shards,
// read under the engine mutex (see Len for the snapshot form).
func (e *ShardedEngine) LenStrong() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	total := 0
	for _, sh := range e.shards {
		total += sh.sess.Len()
	}
	return total
}

// PiStrong returns the load π of the live routing — the maximum over
// components — read under the engine mutex (see Pi for the snapshot
// form). A two-level component's overlay tracker holds the exact
// combined load view (region lanes reconcile into it at every batch
// boundary), so π stays exact under sub-sharding.
func (e *ShardedEngine) PiStrong() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	pi := 0
	for _, c := range e.comps {
		if c.dead {
			continue
		}
		var p int
		if c.twoLevel() {
			p = c.overlay.sess.tracker.Pi()
		} else {
			p = c.plain.sess.Pi()
		}
		if p > pi {
			pi = p
		}
	}
	return pi
}

// NumLambdaStrong returns the number of wavelengths in use: the
// maximum over components (offset-free union — wavelengths of
// independent components overlap rather than stack), where a two-level
// component counts its region maximum plus its overlay band. It reads
// under the engine mutex (see NumLambda for the snapshot form) and is
// the materialising path for deferred coloring strategies.
func (e *ShardedEngine) NumLambdaStrong() (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	num := 0
	for _, c := range e.comps {
		if c.dead {
			continue
		}
		n, err := c.lambda()
		if err != nil {
			return 0, err
		}
		if n > num {
			num = n
		}
	}
	return num, nil
}

// ArcLoadsStrong returns the per-arc load vector over the engine's
// topology, scattered from the shard-local trackers under the engine
// mutex (see ArcLoads/ArcLoadsInto for the snapshot forms).
func (e *ShardedEngine) ArcLoadsStrong() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	loads := make([]int, e.net.Topology.NumArcs())
	for _, c := range e.comps {
		if c.dead {
			continue
		}
		if c.twoLevel() {
			// The overlay tracker is the component's combined view.
			c.overlay.sess.tracker.ScatterLoads(loads, c.view.ToGlobalArc)
		} else {
			c.plain.sess.tracker.ScatterLoads(loads, c.view.ToGlobalArc)
		}
	}
	return loads
}

// verify checks one component's live assignment: a plain component
// defers to its session; a two-level component materialises every
// lane's paths in component identifiers with their effective (banded)
// wavelengths and checks the combined assignment against the conflict
// invariant — the strongest form, since it would catch a band collision
// between lanes, not just per-lane improprieties.
func (c *engineComponent) verify() error {
	if !c.twoLevel() {
		return c.plain.sess.Verify()
	}
	offset, err := c.regionLambdaMax()
	if err != nil {
		return err
	}
	var fam dipath.Family
	var colors []int
	numColors := 0
	collect := func(sh *engineShard, off int) error {
		slots, f := sh.sess.snapshot()
		cs, _, _, err := sh.sess.coloring.Assignment(slots, f)
		if err != nil {
			return err
		}
		for i, p := range f {
			cp, err := sh.compLocalPath(p)
			if err != nil {
				return err
			}
			fam = append(fam, cp)
			colors = append(colors, cs[i]+off)
			if cs[i]+off >= numColors {
				numColors = cs[i] + off + 1
			}
		}
		return nil
	}
	for _, rs := range c.regionShards {
		if err := collect(rs, 0); err != nil {
			return err
		}
	}
	if err := collect(c.overlay, offset); err != nil {
		return err
	}
	res := &core.Result{Colors: colors, NumColors: numColors, Pi: c.overlay.sess.tracker.Pi()}
	return core.Verify(c.view.G, fam, res)
}

// Verify checks every component's live assignment against the conflict
// invariant; components are checked concurrently and the first failure
// (in component order, deterministically) is reported.
func (e *ShardedEngine) Verify() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	errs := make([]error, len(e.comps))
	e.fanOut(false, len(e.comps), func(i int) {
		if e.comps[i].dead {
			return
		}
		errs[i] = e.comps[i].verify()
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("wdm: component %d: %w", i, err)
		}
	}
	return nil
}

// Provisioning materialises the engine's current state: shards
// materialise concurrently, then merge in component order — a two-level
// component lists its region lanes in index order, then its overlay
// lane, each in slot order — so the output is deterministic regardless
// of worker scheduling. Paths are translated to the engine topology
// through the trusted (no-revalidation) constructor; overlay
// wavelengths are lifted into their component's effective band, and
// ADMs are deduplicated globally (cut vertices can terminate lightpaths
// from several lanes).
func (e *ShardedEngine) Provisioning() (*Provisioning, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.shards) == 0 {
		return &Provisioning{Feasible: true}, nil
	}
	provs := make([]*Provisioning, len(e.shards))
	errs := make([]error, len(e.shards))
	e.fanOut(false, len(e.shards), func(i int) {
		provs[i], errs[i] = e.shards[i].sess.Provisioning()
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("wdm: shard %d: %w", i, err)
		}
	}
	total := 0
	for _, p := range provs {
		total += len(p.Paths)
	}
	merged := &Provisioning{
		Paths:       make(dipath.Family, 0, total),
		Wavelengths: make([]int, 0, total),
		Method:      provs[0].Method,
	}
	appendShard := func(sh *engineShard, offset int) error {
		prov := provs[sh.idx]
		for j, p := range prov.Paths {
			gp, err := sh.globalPath(e, p)
			if err != nil {
				return fmt.Errorf("wdm: shard %d: %w", sh.idx, err)
			}
			merged.Paths = append(merged.Paths, gp)
			merged.Wavelengths = append(merged.Wavelengths, prov.Wavelengths[j]+offset)
		}
		if prov.Pi > merged.Pi {
			merged.Pi = prov.Pi
		}
		return nil
	}
	for _, c := range e.comps {
		if c.dead {
			continue
		}
		var compLambda int
		var compMethod core.Method
		if !c.twoLevel() {
			if err := appendShard(c.plain, 0); err != nil {
				return nil, err
			}
			compLambda = provs[c.plain.idx].NumLambda
			compMethod = provs[c.plain.idx].Method
		} else {
			offset := 0
			for _, rs := range c.regionShards {
				if err := appendShard(rs, 0); err != nil {
					return nil, err
				}
				if p := provs[rs.idx]; p.NumLambda > offset {
					offset = p.NumLambda
					compMethod = p.Method
				}
			}
			if err := appendShard(c.overlay, offset); err != nil {
				return nil, err
			}
			if op := provs[c.overlay.idx]; op.NumLambda > 0 {
				compMethod = op.Method
			}
			compLambda = offset + provs[c.overlay.idx].NumLambda
		}
		if compLambda > merged.NumLambda {
			merged.NumLambda = compLambda
			merged.Method = compMethod // the binding component names the method
		}
	}
	merged.ADMs = countADMs(merged.Paths, merged.Wavelengths)
	merged.Feasible = e.net.Wavelengths == 0 || merged.NumLambda <= e.net.Wavelengths
	return merged, nil
}

// ShardRecolorStats reports a shard's incremental-colorer recolor
// counters — warm (drifts absorbed by the class-seeded repack) and cold
// (from-scratch pipeline runs) — when its coloring strategy maintains
// an incremental colorer; ok is false otherwise. Shards index the
// flattened layout (plain components, region lanes, overlay lanes; see
// NumShards). The counters are read under the engine lock, so the call
// is safe concurrently with batches (handing out the live colorer
// itself would not be).
func (e *ShardedEngine) ShardRecolorStats(shard int) (warm, cold int, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if shard < 0 || shard >= len(e.shards) {
		return 0, 0, false
	}
	st, ok := e.shards[shard].sess.coloring.(*incrementalState)
	if !ok {
		return 0, 0, false
	}
	ic := st.Incremental()
	return ic.WarmRecolors(), ic.FullRecolors(), true
}
