package wdm

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/route"
)

// ShardedID identifies a live request inside a ShardedEngine: the shard
// that owns it plus its SessionID within that shard's session. Treat it
// as opaque.
type ShardedID struct {
	Shard int32
	ID    SessionID
}

// BatchKind selects the operation of a BatchOp.
type BatchKind uint8

// Batch operation kinds.
const (
	BatchAdd     BatchKind = iota // provision Req
	BatchRemove                   // tear down ID
	BatchReroute                  // re-route ID against current loads
)

// BatchOp is one churn event of an ApplyBatch call.
type BatchOp struct {
	Kind BatchKind
	Req  route.Request // BatchAdd
	ID   ShardedID     // BatchRemove, BatchReroute
}

// AddOp returns the batch event provisioning req.
func AddOp(req route.Request) BatchOp { return BatchOp{Kind: BatchAdd, Req: req} }

// RemoveOp returns the batch event tearing down id.
func RemoveOp(id ShardedID) BatchOp { return BatchOp{Kind: BatchRemove, ID: id} }

// RerouteOp returns the batch event re-routing id.
func RerouteOp(id ShardedID) BatchOp { return BatchOp{Kind: BatchReroute, ID: id} }

// BatchResult is the outcome of one BatchOp, at the same index in
// ApplyBatch's result slice as the op in its input. A failed op reports
// Err and leaves the engine's state for that request untouched; ID is
// only meaningful when Err is nil (for BatchAdd it carries the id the
// new request was assigned).
type BatchResult struct {
	ID      ShardedID
	Changed bool // BatchReroute: the route changed
	Err     error
}

// ShardedEngine is the concurrent counterpart of a Session: the
// topology is partitioned into its weakly connected components and each
// component gets its own independent Session over a compact
// digraph.ComponentView. Since dipaths cannot cross components, the
// per-shard sessions share no mutable state whatsoever — each owns its
// router, load tracker, conflict graph and colorer outright — so a
// batch of churn events, grouped by shard, executes shards genuinely in
// parallel without a single lock or atomic on the per-event hot path.
//
// Aggregation is offset-free: components share no arcs, so every shard
// colors from wavelength 0 and the global λ count is the maximum (not
// the sum) over shards, exactly as a single session's first-fit would
// reuse colors across independent components. π is likewise the max;
// ADMs sum (endpoints are disjoint across shards). The merged
// Provisioning lists shards in index order and each shard's requests in
// its slot order, so the output is deterministic regardless of which
// worker finished first.
//
// All methods are safe for concurrent use: one engine mutex serialises
// API entry (batches never interleave), and concurrency happens inside
// ApplyBatch across shards. Events within one batch that target the
// same shard apply in input order; events on different shards commute,
// so the final state is the same as any sequential execution of the
// batch that preserves per-shard order.
type ShardedEngine struct {
	mu      sync.Mutex
	net     *Network
	shards  []*engineShard
	label   []int32          // global vertex -> owning shard
	localV  []digraph.Vertex // global vertex -> vertex inside its shard's view
	workers int
}

// engineShard is one component's slice of the engine. Everything below
// is owned exclusively by the shard; during ApplyBatch at most one
// worker touches it.
type engineShard struct {
	idx  int32
	sess *Session
	view digraph.ComponentView
	ops  []int32 // scratch: indices into the current batch
}

// shardedConfig collects NewShardedEngine options.
type shardedConfig struct {
	workers     int
	sessionOpts []SessionOption
}

// ShardedOption configures NewShardedEngine.
type ShardedOption func(*shardedConfig) error

// WithShardWorkers bounds the number of workers ApplyBatch fans shards
// out to (default: runtime.GOMAXPROCS(0)).
func WithShardWorkers(n int) ShardedOption {
	return func(c *shardedConfig) error {
		if n < 1 {
			return fmt.Errorf("wdm: shard workers must be >= 1, got %d", n)
		}
		c.workers = n
		return nil
	}
}

// WithShardSessionOptions forwards session options (routing/coloring
// strategy, slack, capacity hint) to every per-shard session.
func WithShardSessionOptions(opts ...SessionOption) ShardedOption {
	return func(c *shardedConfig) error {
		c.sessionOpts = append(c.sessionOpts, opts...)
		return nil
	}
}

// NewShardedEngine partitions the network's topology into weakly
// connected components and opens one session per component. The
// partition is built in one O(V+A) pass; each shard's session state is
// sized by its component, not the whole topology.
func (n *Network) NewShardedEngine(opts ...ShardedOption) (*ShardedEngine, error) {
	cfg := shardedConfig{workers: runtime.GOMAXPROCS(0)}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	views, label, localV := n.Topology.PartitionComponents()
	e := &ShardedEngine{
		net:     n,
		shards:  make([]*engineShard, len(views)),
		label:   label,
		localV:  localV,
		workers: cfg.workers,
	}
	for i, view := range views {
		subnet := &Network{Topology: view.G, Wavelengths: n.Wavelengths}
		sess, err := subnet.NewSession(cfg.sessionOpts...)
		if err != nil {
			return nil, fmt.Errorf("wdm: shard %d: %w", i, err)
		}
		e.shards[i] = &engineShard{idx: int32(i), sess: sess, view: view}
	}
	return e, nil
}

// NumShards returns the number of topology components the engine runs.
func (e *ShardedEngine) NumShards() int { return len(e.shards) }

// Workers returns the ApplyBatch worker bound.
func (e *ShardedEngine) Workers() int { return e.workers }

// shardFor resolves the owning shard of an add request, rejecting
// out-of-range endpoints and cross-component pairs (which no dipath can
// satisfy — the same answer a full search would reach, in O(1)).
func (e *ShardedEngine) shardFor(req route.Request) (int32, error) {
	n := len(e.label)
	if req.Src < 0 || req.Dst < 0 || int(req.Src) >= n || int(req.Dst) >= n {
		return -1, fmt.Errorf("wdm: vertex out of range")
	}
	s := e.label[req.Src]
	if s != e.label[req.Dst] {
		return -1, route.ErrNoRoute{Req: req}
	}
	return s, nil
}

// shardOf resolves a ShardedID's shard, rejecting ids the engine never
// issued.
func (e *ShardedEngine) shardOf(id ShardedID) (*engineShard, error) {
	if id.Shard < 0 || int(id.Shard) >= len(e.shards) {
		return nil, fmt.Errorf("wdm: unknown shard %d", id.Shard)
	}
	return e.shards[id.Shard], nil
}

// globalizeErr rewrites shard-local vertex identifiers in a session
// error back to the engine topology, so callers never see ids from the
// compact component view (which name different global vertices). prefix
// restores the operation context the rebuilt error would otherwise lose
// ("wdm: routing" / "wdm: rerouting").
func (sh *engineShard) globalizeErr(prefix string, err error) error {
	var nr route.ErrNoRoute
	if !errors.As(err, &nr) {
		return err
	}
	n := len(sh.view.ToGlobalVertex)
	if nr.Req.Src < 0 || int(nr.Req.Src) >= n || nr.Req.Dst < 0 || int(nr.Req.Dst) >= n {
		return err
	}
	return fmt.Errorf("%s: %w", prefix, route.ErrNoRoute{Req: route.Request{
		Src: sh.view.ToGlobalVertex[nr.Req.Src],
		Dst: sh.view.ToGlobalVertex[nr.Req.Dst],
	}})
}

// apply executes one op against the shard. Called by at most one worker
// per shard at a time.
func (sh *engineShard) apply(e *ShardedEngine, op BatchOp) BatchResult {
	switch op.Kind {
	case BatchAdd:
		lreq := route.Request{Src: e.localV[op.Req.Src], Dst: e.localV[op.Req.Dst]}
		id, err := sh.sess.Add(lreq)
		if err != nil {
			return BatchResult{Err: sh.globalizeErr("wdm: routing", err)}
		}
		return BatchResult{ID: ShardedID{Shard: sh.idx, ID: id}}
	case BatchRemove:
		return BatchResult{ID: op.ID, Err: sh.sess.Remove(op.ID.ID)}
	case BatchReroute:
		changed, err := sh.sess.Reroute(op.ID.ID)
		if err != nil {
			err = sh.globalizeErr("wdm: rerouting", err)
		}
		return BatchResult{ID: op.ID, Changed: changed, Err: err}
	default:
		return BatchResult{Err: fmt.Errorf("wdm: unknown batch op kind %d", op.Kind)}
	}
}

// ApplyBatch applies a slice of churn events, grouping them by owning
// shard and executing the shards concurrently on up to Workers()
// goroutines. Results are parallel to ops; per-shard event order is the
// input order. Ops that cannot be dispatched (out-of-range vertices,
// cross-component requests, unknown shards) fail individually without
// aborting the batch.
func (e *ShardedEngine) ApplyBatch(ops []BatchOp) []BatchResult {
	e.mu.Lock()
	defer e.mu.Unlock()
	results := make([]BatchResult, len(ops))
	active := e.group(ops, results)
	e.runShards(active, func(sh *engineShard) {
		for _, i := range sh.ops {
			results[i] = sh.apply(e, ops[i])
		}
	})
	for _, si := range active {
		e.shards[si].ops = e.shards[si].ops[:0]
	}
	return results
}

// group routes each op to its shard's mailbox, failing undispatchable
// ops in place, and returns the shards with work in index order.
func (e *ShardedEngine) group(ops []BatchOp, results []BatchResult) []int32 {
	var active []int32
	enqueue := func(si int32, i int) {
		sh := e.shards[si]
		if len(sh.ops) == 0 {
			active = append(active, si)
		}
		sh.ops = append(sh.ops, int32(i))
	}
	for i, op := range ops {
		switch op.Kind {
		case BatchAdd:
			si, err := e.shardFor(op.Req)
			if err != nil {
				results[i] = BatchResult{Err: err}
				continue
			}
			enqueue(si, i)
		default:
			sh, err := e.shardOf(op.ID)
			if err != nil {
				results[i] = BatchResult{Err: err}
				continue
			}
			enqueue(sh.idx, i)
		}
	}
	// Mailboxes fill in op order and active in first-touch order; sort
	// is unnecessary — workers may pick shards in any order anyway.
	return active
}

// runShards runs f once per listed shard, fanning out to the worker
// bound when more than one shard has work. Each shard is processed by
// exactly one worker, so f needs no synchronisation over shard state.
func (e *ShardedEngine) runShards(shards []int32, f func(*engineShard)) {
	w := e.workers
	if w > len(shards) {
		w = len(shards)
	}
	if w <= 1 {
		for _, si := range shards {
			f(e.shards[si])
		}
		return
	}
	var next atomic.Int32
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(shards) {
					return
				}
				f(e.shards[shards[i]])
			}
		}()
	}
	wg.Wait()
}

// allShards returns 0..len(shards)-1 for whole-engine sweeps.
func (e *ShardedEngine) allShards() []int32 {
	all := make([]int32, len(e.shards))
	for i := range all {
		all[i] = int32(i)
	}
	return all
}

// Add provisions a single request (see ApplyBatch for the batched
// form).
func (e *ShardedEngine) Add(req route.Request) (ShardedID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	si, err := e.shardFor(req)
	if err != nil {
		return ShardedID{}, err
	}
	res := e.shards[si].apply(e, AddOp(req))
	return res.ID, res.Err
}

// Remove tears down the request with the given id.
func (e *ShardedEngine) Remove(id ShardedID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	sh, err := e.shardOf(id)
	if err != nil {
		return err
	}
	return sh.sess.Remove(id.ID)
}

// Reroute re-routes the request with the given id against the current
// loads of its shard; it reports whether the path changed.
func (e *ShardedEngine) Reroute(id ShardedID) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	sh, err := e.shardOf(id)
	if err != nil {
		return false, err
	}
	return sh.sess.Reroute(id.ID)
}

// globalPath translates a shard-local dipath back to the engine's
// topology.
func (sh *engineShard) globalPath(e *ShardedEngine, p *dipath.Path) (*dipath.Path, error) {
	if p.NumArcs() == 0 {
		return dipath.FromVertices(e.net.Topology, sh.view.ToGlobalVertex[p.First()])
	}
	arcs := make([]digraph.ArcID, p.NumArcs())
	for i, a := range p.Arcs() {
		arcs[i] = sh.view.ToGlobalArc[a]
	}
	return dipath.FromArcs(e.net.Topology, arcs...)
}

// Path returns the current route of a live request, in the engine
// topology's vertex and arc identifiers.
func (e *ShardedEngine) Path(id ShardedID) (*dipath.Path, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	sh, err := e.shardOf(id)
	if err != nil {
		return nil, err
	}
	p, err := sh.sess.Path(id.ID)
	if err != nil {
		return nil, err
	}
	return sh.globalPath(e, p)
}

// Wavelength returns the current wavelength of a live request (see
// Session.Wavelength).
func (e *ShardedEngine) Wavelength(id ShardedID) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	sh, err := e.shardOf(id)
	if err != nil {
		return -1, err
	}
	return sh.sess.Wavelength(id.ID)
}

// Len returns the number of live requests across all shards.
func (e *ShardedEngine) Len() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	total := 0
	for _, sh := range e.shards {
		total += sh.sess.Len()
	}
	return total
}

// Pi returns the load π of the live routing — the maximum over shards,
// since components share no arcs.
func (e *ShardedEngine) Pi() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	pi := 0
	for _, sh := range e.shards {
		if p := sh.sess.Pi(); p > pi {
			pi = p
		}
	}
	return pi
}

// NumLambda returns the number of wavelengths in use: the maximum over
// shards (offset-free union — wavelengths of independent components
// overlap rather than stack).
func (e *ShardedEngine) NumLambda() (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	num := 0
	for _, sh := range e.shards {
		n, err := sh.sess.NumLambda()
		if err != nil {
			return 0, fmt.Errorf("wdm: shard %d: %w", sh.idx, err)
		}
		if n > num {
			num = n
		}
	}
	return num, nil
}

// ArcLoads returns the per-arc load vector over the engine's topology,
// scattered from the shard-local trackers without intermediate copies.
func (e *ShardedEngine) ArcLoads() []int {
	e.mu.Lock()
	defer e.mu.Unlock()
	loads := make([]int, e.net.Topology.NumArcs())
	for _, sh := range e.shards {
		sh.sess.tracker.ScatterLoads(loads, sh.view.ToGlobalArc)
	}
	return loads
}

// Verify checks every shard's live assignment against the conflict
// invariant; shards are checked concurrently and the first failure (in
// shard order, deterministically) is reported.
func (e *ShardedEngine) Verify() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	errs := make([]error, len(e.shards))
	e.runShards(e.allShards(), func(sh *engineShard) {
		errs[sh.idx] = sh.sess.Verify()
	})
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("wdm: shard %d: %w", i, err)
		}
	}
	return nil
}

// Provisioning materialises the engine's current state: shards
// materialise concurrently, then merge in shard index order (each
// shard's requests in its slot order), so the output is deterministic
// regardless of worker scheduling. Paths are translated to the engine
// topology; wavelengths are reported shard-local and offset-free —
// they remain proper globally because components share no arcs.
func (e *ShardedEngine) Provisioning() (*Provisioning, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.shards) == 0 {
		return &Provisioning{Feasible: true}, nil
	}
	provs := make([]*Provisioning, len(e.shards))
	errs := make([]error, len(e.shards))
	e.runShards(e.allShards(), func(sh *engineShard) {
		provs[sh.idx], errs[sh.idx] = sh.sess.Provisioning()
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("wdm: shard %d: %w", i, err)
		}
	}
	total := 0
	for _, p := range provs {
		total += len(p.Paths)
	}
	merged := &Provisioning{
		Paths:       make(dipath.Family, 0, total),
		Wavelengths: make([]int, 0, total),
		Method:      provs[0].Method,
	}
	for i, prov := range provs {
		sh := e.shards[i]
		for j, p := range prov.Paths {
			gp, err := sh.globalPath(e, p)
			if err != nil {
				return nil, fmt.Errorf("wdm: shard %d: %w", i, err)
			}
			merged.Paths = append(merged.Paths, gp)
			merged.Wavelengths = append(merged.Wavelengths, prov.Wavelengths[j])
		}
		if prov.NumLambda > merged.NumLambda {
			merged.NumLambda = prov.NumLambda
			merged.Method = prov.Method // the binding shard names the method
		}
		if prov.Pi > merged.Pi {
			merged.Pi = prov.Pi
		}
		merged.ADMs += prov.ADMs // endpoint sets are disjoint across shards
	}
	merged.Feasible = e.net.Wavelengths == 0 || merged.NumLambda <= e.net.Wavelengths
	return merged, nil
}

// ShardRecolorStats reports a shard's incremental-colorer recolor
// counters — warm (drifts absorbed by the class-seeded repack) and cold
// (from-scratch pipeline runs) — when its coloring strategy maintains
// an incremental colorer; ok is false otherwise. The counters are read
// under the engine lock, so the call is safe concurrently with batches
// (handing out the live colorer itself would not be).
func (e *ShardedEngine) ShardRecolorStats(shard int) (warm, cold int, ok bool) {
	if shard < 0 || shard >= len(e.shards) {
		return 0, 0, false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st, ok := e.shards[shard].sess.coloring.(*incrementalState)
	if !ok {
		return 0, 0, false
	}
	ic := st.Incremental()
	return ic.WarmRecolors(), ic.FullRecolors(), true
}
