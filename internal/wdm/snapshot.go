package wdm

import (
	"errors"
	"fmt"
	"sync/atomic"

	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
)

// This file is the engine's lock-free query plane. The mutating API
// (ApplyBatch, FailArc, RestoreArc, Revive, Close) rebuilds an
// immutable EngineSnapshot at every boundary and publishes it through
// an atomic pointer; the read-only API answers from the current
// snapshot without touching the engine mutex, so monitoring readers
// never stall the write path and a write never stalls a reader. The
// ...Strong variants (sharded.go) keep the mutex-serialised reads for
// tests and for callers that need the in-flight, not-yet-published
// state.
//
// Publication is incremental and double-buffered: only shards a batch
// actually touched rebuild their entry tables (untouched tables are
// shared by reference between consecutive snapshots), and the backing
// arrays of retired snapshots are recycled through pools once the last
// reference drops. Reference counts — one per referencing snapshot plus
// one per pinned reader — gate the recycling, so a reader that holds a
// snapshot across many batches reads stable data for as long as it
// wants; it only delays buffer reuse, never correctness.

// errLambdaDeferred is returned by snapshot λ queries on engines whose
// coloring strategy defers wavelength assignment: a deferred strategy
// materialises λ on demand (a full solve), which publication refuses to
// pay per batch. NumLambda and OverlayLambda on the engine fall back to
// the Strong path transparently; only direct snapshot reads see this.
var errLambdaDeferred = errors.New(
	"wdm: λ is not materialised in snapshots under a deferred coloring strategy; use NumLambdaStrong")

// Snapshot entry states.
const (
	snapFree uint8 = iota // slot unoccupied (or recycled under a newer generation)
	snapLit                // live, carrying a wavelength
	snapDark               // parked dark by a restoration storm
)

// snapRow is one request slot's row in a snapshot's per-shard entry
// table: what Path, Wavelength and IsDark need, frozen at publication.
// The path pointer aliases the session's path object, which is
// immutable once committed (reroutes and storms replace the pointer,
// never mutate the path), so sharing it across snapshots is safe.
type snapRow struct {
	gen        uint32
	state      uint8
	wavelength int32 // banded engine wavelength; -1 when dark or deferred
	path       *dipath.Path
}

// snapTable is one shard's entry table inside a snapshot. refs counts
// the snapshots currently referencing it — consecutive snapshots share
// the table of a shard no batch touched — and the last drop returns it
// to the engine's pool for the next rebuild.
//
// The table carries its own identifier translations (toGV/toGA) instead
// of reading them off the live shard: re-layouts (adaptive re-banding,
// re-splits, live AddArc) grow shard translation tables copy-on-write,
// so the slices frozen here stay immutable for the snapshot's lifetime
// while the live shard moves on. forward is the shard's relocation map
// when the shard was retired by a re-layout (nil otherwise): lookups
// chase it to the entry's new home, so ids issued before a re-layout
// keep resolving against snapshots published after it.
type snapTable struct {
	refs    atomic.Int32
	rows    []snapRow
	toGV    []digraph.Vertex
	toGA    []digraph.ArcID
	forward map[SessionID]ShardedID
}

// snapVec is a snapshot's global arc-load vector, pooled and
// reference-counted exactly like snapTable (snapshots published by
// batches that changed no load share the vector outright).
type snapVec struct {
	refs atomic.Int32
	arr  []int
}

// EngineSnapshot is an immutable view of a ShardedEngine frozen at a
// publication boundary: λ, π, live/dark counts, EngineStats with the
// per-lane LaneStats, the arc-load vector, and the entry tables backing
// Path/Wavelength lookups, all from the same boundary, stamped with the
// topology epoch and a monotonic sequence number.
//
// Obtain one with ShardedEngine.Snapshot, which pins it, and call
// Release when done — the pin keeps the backing buffers out of the
// recycling pools, so every accessor stays valid for as long as the
// snapshot is held (a forgotten Release leaks nothing; it only stops
// the buffers from being reused). All accessors are safe for
// concurrent use by any number of goroutines.
type EngineSnapshot struct {
	seq           uint64
	epoch         uint64
	lambda        int
	overlayLambda int
	lambdaErr     error
	pi            int
	live          int
	dark          int
	closed        bool
	stats         EngineStats

	refs   atomic.Int64
	loads  *snapVec
	tables []*snapTable
	topo   *digraph.Digraph // the engine topology at publication (see AddArc's copy-on-write)
	eng    *ShardedEngine
}

// Seq returns the snapshot's publication sequence number — strictly
// increasing across publications, so two snapshots with equal Seq are
// the same snapshot.
//wavedag:lockfree
func (s *EngineSnapshot) Seq() uint64 { return s.seq }

// TopologyEpoch returns the topology epoch at publication (see
// digraph.TopologyEpoch — FailArc and RestoreArc bump it).
//wavedag:lockfree
func (s *EngineSnapshot) TopologyEpoch() uint64 { return s.epoch }

// Closed reports whether the engine was closed at publication.
//wavedag:lockfree
func (s *EngineSnapshot) Closed() bool { return s.closed }

// Stats returns the engine stats frozen at publication.
//wavedag:lockfree
func (s *EngineSnapshot) Stats() EngineStats { return s.stats }

// Len returns the number of live (lit) requests at publication.
//wavedag:lockfree
func (s *EngineSnapshot) Len() int { return s.live }

// DarkLive returns the number of dark-parked entries at publication.
//wavedag:lockfree
func (s *EngineSnapshot) DarkLive() int { return s.dark }

// Pi returns the load π at publication.
//wavedag:lockfree
func (s *EngineSnapshot) Pi() int { return s.pi }

// NumLambda returns the wavelength count at publication. On engines
// running a deferred coloring strategy it returns an error (λ is only
// materialised on demand there — use ShardedEngine.NumLambdaStrong).
//wavedag:lockfree
func (s *EngineSnapshot) NumLambda() (int, error) { return s.lambda, s.lambdaErr }

// OverlayLambda returns the maximum overlay band across components at
// publication (see ShardedEngine.OverlayLambda); like NumLambda it
// errors under a deferred coloring strategy.
//wavedag:lockfree
func (s *EngineSnapshot) OverlayLambda() (int, error) { return s.overlayLambda, s.lambdaErr }

// NumArcs returns the length of the snapshot's arc-load vector.
//wavedag:lockfree
func (s *EngineSnapshot) NumArcs() int { return len(s.loads.arr) }

// ArcLoadsInto copies the snapshot's per-arc load vector into dst,
// reusing its capacity (growing only when too small), and returns the
// resized slice.
//wavedag:lockfree
//wavedag:allow-alloc (grow path when dst is too small)
func (s *EngineSnapshot) ArcLoadsInto(dst []int) []int {
	src := s.loads.arr
	if cap(dst) < len(src) {
		dst = make([]int, len(src))
	} else {
		dst = dst[:len(src)]
	}
	copy(dst, src)
	return dst
}

// ArcLoads returns a copy of the snapshot's per-arc load vector.
//wavedag:lockfree
//wavedag:allow-alloc (delegates to the growing ArcLoadsInto)
func (s *EngineSnapshot) ArcLoads() []int { return s.ArcLoadsInto(nil) }

// lookupRow resolves id against the snapshot's entry tables, with the
// same error shape as the live session lookup. When the id's shard was
// retired by a re-layout the table's forward map is chased (bounded by
// the table count — forward chains only ever point at younger shards).
//wavedag:lockfree
func (s *EngineSnapshot) lookupRow(id ShardedID) (snapRow, *snapTable, error) {
	for hops := 0; ; hops++ {
		if id.Shard < 0 || int(id.Shard) >= len(s.tables) {
			return snapRow{}, nil, fmt.Errorf("wdm: unknown shard %d", id.Shard)
		}
		t := s.tables[id.Shard]
		idx := int64(uint32(id.ID))
		gen := uint32(uint64(id.ID) >> 32)
		if idx < int64(len(t.rows)) {
			if r := t.rows[idx]; r.state != snapFree && r.gen == gen {
				return r, t, nil
			}
		}
		next, ok := t.forward[id.ID]
		if !ok || hops >= len(s.tables) {
			return snapRow{}, nil, fmt.Errorf("wdm: session id %d: %w", id.ID, ErrUnknownSession)
		}
		id = next
	}
}

// translatePath lifts a shard-local path into the topology the snapshot
// was published against, through the table's frozen identifier arrays.
//wavedag:lockfree
//wavedag:allow-alloc (the translated path is a fresh object by contract)
func (s *EngineSnapshot) translatePath(t *snapTable, p *dipath.Path) (*dipath.Path, error) {
	if p.NumArcs() == 0 {
		return dipath.FromVertices(s.topo, t.toGV[p.First()])
	}
	arcs := make([]digraph.ArcID, p.NumArcs())
	for i, a := range p.Arcs() {
		arcs[i] = t.toGA[a]
	}
	return dipath.FromArcsTrusted(s.topo, arcs...), nil
}

// Path returns the route the request held at publication, in the
// engine topology's identifiers (for a dark entry, the parked route).
//wavedag:lockfree
//wavedag:allow-alloc (the translated path is a fresh object by contract)
func (s *EngineSnapshot) Path(id ShardedID) (*dipath.Path, error) {
	r, t, err := s.lookupRow(id)
	if err != nil {
		return nil, err
	}
	return s.translatePath(t, r.path)
}

// Wavelength returns the banded engine wavelength the request held at
// publication, or -1 when it was parked dark or assignment is deferred.
//wavedag:lockfree
func (s *EngineSnapshot) Wavelength(id ShardedID) (int, error) {
	r, _, err := s.lookupRow(id)
	if err != nil {
		return -1, err
	}
	return int(r.wavelength), nil
}

// IsDark reports whether the request was parked dark at publication.
//wavedag:lockfree
func (s *EngineSnapshot) IsDark(id ShardedID) (bool, error) {
	r, _, err := s.lookupRow(id)
	if err != nil {
		return false, err
	}
	return r.state == snapDark, nil
}

// acquire pins s for reading. It fails only when the last reference has
// already dropped — which can only happen to a snapshot that is no
// longer the published one, so callers retry against the current
// pointer.
//wavedag:lockfree
//wavedag:refcount
func (s *EngineSnapshot) acquire() bool {
	for {
		n := s.refs.Load()
		if n <= 0 {
			return false
		}
		if s.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Release unpins a snapshot returned by ShardedEngine.Snapshot. The
// last drop (publisher reference included) sends the backing buffers
// back to the recycling pools. Releasing more often than acquired
// panics — the buffers would be recycled under a still-active reader.
//wavedag:lockfree
//wavedag:refcount
func (s *EngineSnapshot) Release() {
	n := s.refs.Add(-1)
	if n == 0 {
		s.reclaim()
	} else if n < 0 {
		panic("wdm: EngineSnapshot released more times than acquired")
	}
}

// reclaim recycles the snapshot's backing buffers once no reference is
// left; tables still shared with a newer snapshot stay out until their
// own count drops. Row path pointers are left in place — the pool is
// GC-backed and every rebuild overwrites the rows it hands out.
//wavedag:lockfree
//wavedag:refcount
func (s *EngineSnapshot) reclaim() {
	e := s.eng
	if s.loads != nil && s.loads.refs.Add(-1) == 0 {
		e.vecPool.Put(s.loads)
	}
	for _, t := range s.tables {
		if t.refs.Add(-1) == 0 {
			e.tablePool.Put(t)
		}
	}
}

// Snapshot pins and returns the engine's current published snapshot —
// one atomic load plus one atomic increment, no locks. Callers must
// Release it when done. Successive calls may return the same snapshot
// (nothing was published in between) but Seq never moves backwards.
//wavedag:lockfree
//wavedag:acquire Release
func (e *ShardedEngine) Snapshot() *EngineSnapshot {
	for {
		if s := e.snap.Load(); s.acquire() {
			return s
		}
	}
}

// ── Lock-free read API ─────────────────────────────────────────────────
//
// Scalar queries read the current snapshot struct directly: the struct
// itself is never recycled (only its arrays are), so a bare atomic
// pointer load suffices — zero locks, zero allocations, zero contention
// with writers. Array-touching queries (ArcLoads, Path, Wavelength,
// IsDark) pin the snapshot around the access. Every answer is exact as
// of the latest publication boundary, i.e. at most one batch stale.

// Stats reports the engine layout, overlay occupancy, per-lane traffic
// shares and failure counters, from the current snapshot.
//wavedag:lockfree
func (e *ShardedEngine) Stats() EngineStats { return e.snap.Load().stats }

// Len returns the number of live requests across all shards, from the
// current snapshot.
//wavedag:lockfree
func (e *ShardedEngine) Len() int { return e.snap.Load().live }

// Pi returns the load π of the live routing — the maximum over
// components, exact under sub-sharding (see PiStrong for the aggregation
// argument) — from the current snapshot.
//wavedag:lockfree
func (e *ShardedEngine) Pi() int { return e.snap.Load().pi }

// DarkLive returns the number of entries parked dark across all lanes,
// from the current snapshot.
//wavedag:lockfree
func (e *ShardedEngine) DarkLive() int { return e.snap.Load().dark }

// NumFailedArcs reports how many arcs of the engine topology are cut,
// from the current snapshot.
//wavedag:lockfree
func (e *ShardedEngine) NumFailedArcs() int { return e.snap.Load().stats.FailedArcs }

// NumLambda returns the number of wavelengths in use (max over
// components; a two-level component counts its region maximum plus its
// overlay band), from the current snapshot. Engines running a deferred
// coloring strategy fall back to the mutex-serialised strong read — a
// deferred λ is a full solve, which publication does not pay per batch.
//wavedag:lockfree
func (e *ShardedEngine) NumLambda() (int, error) {
	s := e.snap.Load()
	if errors.Is(s.lambdaErr, errLambdaDeferred) {
		return e.NumLambdaStrong() //wavedag:allow-blocking (documented deferred-λ fallback)
	}
	return s.lambda, s.lambdaErr
}

// OverlayLambda returns the maximum overlay band across components
// (see OverlayLambdaStrong), from the current snapshot; deferred
// coloring strategies fall back to the strong read like NumLambda.
//wavedag:lockfree
func (e *ShardedEngine) OverlayLambda() (int, error) {
	s := e.snap.Load()
	if errors.Is(s.lambdaErr, errLambdaDeferred) {
		return e.OverlayLambdaStrong() //wavedag:allow-blocking (documented deferred-λ fallback)
	}
	return s.overlayLambda, s.lambdaErr
}

// ArcLoads returns the per-arc load vector over the engine's topology,
// from the current snapshot. Use ArcLoadsInto to reuse a buffer.
//wavedag:lockfree
//wavedag:allow-alloc (fresh copy by contract; ArcLoadsInto is the 0-alloc form)
func (e *ShardedEngine) ArcLoads() []int { return e.ArcLoadsInto(nil) }

// ArcLoadsInto copies the current snapshot's per-arc load vector into
// dst, reusing its capacity — the allocation-free form of ArcLoads for
// polling readers.
//wavedag:lockfree
func (e *ShardedEngine) ArcLoadsInto(dst []int) []int {
	s := e.Snapshot()
	dst = s.ArcLoadsInto(dst)
	s.Release()
	return dst
}

// Path returns the route of a live request as of the current snapshot,
// in the engine topology's identifiers.
//wavedag:lockfree
//wavedag:allow-alloc (the translated path is a fresh object by contract)
func (e *ShardedEngine) Path(id ShardedID) (*dipath.Path, error) {
	s := e.Snapshot()
	// The pin is held through the translation: the table's identifier
	// arrays are frozen per publication, and releasing early would let
	// the pool recycle the table header under the read.
	p, err := s.Path(id)
	s.Release()
	return p, err
}

// Wavelength returns the wavelength of a live request as of the
// current snapshot. Overlay lane wavelengths are reported in the
// component's effective band (region maximum + overlay class) as of the
// same boundary; -1 when parked dark or assignment is deferred.
//wavedag:lockfree
func (e *ShardedEngine) Wavelength(id ShardedID) (int, error) {
	s := e.Snapshot()
	w, err := s.Wavelength(id)
	s.Release()
	return w, err
}

// IsDark reports whether the request is parked dark, as of the current
// snapshot.
//wavedag:lockfree
func (e *ShardedEngine) IsDark(id ShardedID) (bool, error) {
	s := e.Snapshot()
	dark, err := s.IsDark(id)
	s.Release()
	return dark, err
}

// ── Publication ────────────────────────────────────────────────────────

// getTable takes a table from the pool resized to n rows.
//wavedag:pool-handoff (ownership passes to the published snapshot; reclaim returns it)
func (e *ShardedEngine) getTable(n int) *snapTable {
	t, _ := e.tablePool.Get().(*snapTable)
	if t == nil {
		t = new(snapTable)
	}
	if cap(t.rows) < n {
		t.rows = make([]snapRow, n)
	} else {
		t.rows = t.rows[:n]
	}
	return t
}

// getVec takes an arc-load vector from the pool resized to n.
//wavedag:pool-handoff (ownership passes to the published snapshot; reclaim returns it)
func (e *ShardedEngine) getVec(n int) *snapVec {
	v, _ := e.vecPool.Get().(*snapVec)
	if v == nil {
		v = new(snapVec)
	}
	if cap(v.arr) < n {
		v.arr = make([]int, n)
	} else {
		v.arr = v.arr[:n]
	}
	return v
}

// snapDirty reports whether any of the component's shards mutated since
// the last publication. Dead components (absorbed by an AddArc merge)
// have no live lanes left; their retired shards are republished through
// the per-shard dirty flags, not component dirtiness.
func (c *engineComponent) snapDirty() bool {
	if c.dead {
		return false
	}
	if !c.twoLevel() {
		return c.plain.dirty
	}
	if c.overlay.dirty {
		return true
	}
	for _, rs := range c.regionShards {
		if rs.dirty {
			return true
		}
	}
	return false
}

// markAllDirty flags every shard of the component for a table rebuild
// at the next publication — the coarse mark the (rare) failure events,
// revival sweeps and re-layouts use, since they can touch any lane.
func (c *engineComponent) markAllDirty() {
	if c.dead {
		return
	}
	if !c.twoLevel() {
		c.plain.dirty = true
		return
	}
	for _, rs := range c.regionShards {
		rs.dirty = true
	}
	c.overlay.dirty = true
}

// refreshCompAggregates recomputes a component's cached snapshot
// aggregates (λ with its banding base, π, live and dark counts) from
// its live sessions. Called under e.mu for components the last interval
// dirtied; clean components keep their cache. Dead components aggregate
// as zero — their traffic lives on in the component that absorbed them.
func (e *ShardedEngine) refreshCompAggregates(c *engineComponent) {
	if c.dead {
		c.aggLambda, c.aggLambdaErr, c.aggRegionBase, c.aggOverlayLambda = 0, nil, 0, 0
		c.aggPi, c.aggLive, c.aggDark = 0, 0, 0
		return
	}
	if !c.twoLevel() {
		c.aggRegionBase = 0
		c.aggOverlayLambda = 0
		c.aggPi = c.plain.sess.Pi()
		c.aggLive = c.plain.sess.Len()
		c.aggDark = c.plain.sess.DarkLive()
		if !e.lambdaEager {
			c.aggLambda, c.aggLambdaErr = 0, errLambdaDeferred
			return
		}
		c.aggLambda, c.aggLambdaErr = c.plain.sess.NumLambda()
		return
	}
	c.aggPi = c.overlay.sess.tracker.Pi()
	c.aggLive, c.aggDark = 0, 0
	for _, rs := range c.regionShards {
		c.aggLive += rs.sess.Len()
		c.aggDark += rs.sess.DarkLive()
	}
	c.aggLive += c.overlay.sess.Len()
	c.aggDark += c.overlay.sess.DarkLive()
	if !e.lambdaEager {
		c.aggRegionBase, c.aggOverlayLambda = 0, 0
		c.aggLambda, c.aggLambdaErr = 0, errLambdaDeferred
		return
	}
	base, err := c.regionLambdaMax()
	if err != nil {
		c.aggRegionBase, c.aggLambda, c.aggLambdaErr = 0, 0, err
		return
	}
	on, err := c.overlay.sess.NumLambda()
	if err != nil {
		c.aggLambdaErr = fmt.Errorf("wdm: component %d overlay: %w", c.idx, err)
		return
	}
	c.aggRegionBase = base
	c.aggOverlayLambda = on
	c.aggLambda = base + on
	c.aggLambdaErr = nil
}

// publishLocked rebuilds the engine snapshot and publishes it. The
// caller holds e.mu (or, at construction, exclusive access). Only dirty
// shards rebuild their entry tables and only dirty components re-scatter
// their loads and refresh their aggregates; everything else carries
// over from the previous snapshot — tables by shared reference, the
// load vector by copy (or shared outright when nothing moved).
//wavedag:refcount
func (e *ShardedEngine) publishLocked() {
	prev := e.snap.Load()
	e.pubSeq++
	next := &EngineSnapshot{
		seq:    e.pubSeq,
		epoch:  e.net.Topology.TopologyEpoch(),
		closed: e.closed,
		topo:   e.net.Topology,
		eng:    e,
		tables: make([]*snapTable, len(e.shards)),
	}
	next.refs.Store(1)

	// Component dirtiness, resolved before the table loop clears the
	// per-shard flags. A dirty two-level component forces its overlay
	// table dirty: overlay rows carry banded wavelengths, and the band's
	// base (the region λ maximum) moves with region growth.
	anyDirty := false
	for i, c := range e.comps {
		dirty := prev == nil || c.snapDirty()
		e.snapCompDirty[i] = dirty
		if dirty {
			anyDirty = true
			e.refreshCompAggregates(c)
			if c.twoLevel() {
				c.overlay.dirty = true
			}
		}
	}

	// Arc-load vector: shared when nothing moved, otherwise copied from
	// the previous snapshot with dirty components re-scattered over it.
	// A live AddArc can grow the arc space between publications, so the
	// copy clears the tail beyond the previous vector (the growing
	// component is dirty and re-scatters over it anyway — the clear keeps
	// pooled garbage out of arcs no component claims yet).
	if !anyDirty && prev != nil {
		next.loads = prev.loads
		next.loads.refs.Add(1)
	} else {
		vec := e.getVec(e.net.Topology.NumArcs())
		if prev != nil {
			n := copy(vec.arr, prev.loads.arr)
			clear(vec.arr[n:])
		} else {
			clear(vec.arr)
		}
		for i, c := range e.comps {
			if c.dead {
				continue
			}
			if prev != nil && !e.snapCompDirty[i] {
				continue
			}
			if c.twoLevel() {
				// The overlay tracker is the component's combined view.
				c.overlay.sess.tracker.ScatterLoads(vec.arr, c.view.ToGlobalArc)
			} else {
				c.plain.sess.tracker.ScatterLoads(vec.arr, c.view.ToGlobalArc)
			}
		}
		vec.refs.Store(1)
		next.loads = vec
	}

	// Entry tables: rebuild dirty shards from their sessions, share the
	// rest with the previous snapshot. Shards born after the previous
	// publication (re-splits, AddArc merges) have no table to share and
	// are created dirty. A rebuild freezes the shard's current identifier
	// translations and forward map into the table: the engine only ever
	// replaces those fields copy-on-write, so the frozen slices stay
	// immutable for this snapshot's lifetime.
	for i, sh := range e.shards {
		if prev != nil && !sh.dirty && i < len(prev.tables) {
			t := prev.tables[i]
			t.refs.Add(1)
			next.tables[i] = t
			continue
		}
		t := e.getTable(len(sh.sess.entries))
		band := 0
		if sh.kind == shardOverlay {
			band = sh.comp.aggRegionBase
		}
		sh.sess.fillSnapshotRows(t.rows, band)
		t.toGV, t.toGA, t.forward = sh.toGlobalVertex, sh.toGlobalArc, sh.forward
		t.refs.Store(1)
		next.tables[i] = t
		sh.dirty = false
	}

	// Global aggregates from the per-component caches, and the stats
	// block (O(shards) of constant-time counter reads).
	for _, c := range e.comps {
		if c.aggLambdaErr != nil && next.lambdaErr == nil {
			next.lambdaErr = c.aggLambdaErr
		}
		if c.aggLambda > next.lambda {
			next.lambda = c.aggLambda
		}
		if c.aggOverlayLambda > next.overlayLambda {
			next.overlayLambda = c.aggOverlayLambda
		}
		if c.aggPi > next.pi {
			next.pi = c.aggPi
		}
		next.live += c.aggLive
		next.dark += c.aggDark
	}
	next.stats = e.statsLocked()

	e.snap.Store(next)
	if prev != nil {
		prev.Release() // drop the publisher reference
	}
}
