package wdm

import (
	"fmt"
	"sort"
	"sync"

	"wavedag/internal/core"
	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/load"
	"wavedag/internal/route"
	"wavedag/internal/upp"
)

// RoutingStrategy converts requests into dipaths. A strategy is a
// factory: NewState builds the per-session persistent routing state
// (reusable routers, precomputed tables), so repeated requests on one
// session never pay setup again. Strategies are looked up by name in a
// registry; the legacy RoutingPolicy constants resolve to the built-in
// entries ("shortest", "min-load", "upp").
type RoutingStrategy interface {
	// Name is the registry key; it must be non-empty and unique.
	Name() string
	// NewState builds routing state bound to g. It may fail when the
	// strategy's preconditions do not hold (e.g. UPP routing on a
	// non-UPP digraph).
	NewState(g *digraph.Digraph) (RoutingState, error)
}

// RoutingState is per-session routing state. Route picks a dipath for
// req; loads is the session's live load tracker, which load-aware
// strategies consult (and must NOT mutate — the session accounts the
// chosen path itself).
type RoutingState interface {
	Route(req route.Request, loads *load.Tracker) (*dipath.Path, error)
}

// ColoringStrategy maintains the wavelength assignment of a session's
// live dipaths. Like RoutingStrategy it is a registry-named factory;
// the built-ins are "incremental" (first-fit + bounded repair +
// slack-gated full recolor, the dynamic engine) and "full" (defer all
// coloring to one from-scratch ColorDAG run — what one-shot Provision
// uses).
type ColoringStrategy interface {
	// Name is the registry key; it must be non-empty and unique.
	Name() string
	// NewState builds coloring state bound to g. slack is the drift
	// allowance for incremental maintenance (<= 0 selects the default);
	// strategies that recompute from scratch may ignore it.
	NewState(g *digraph.Digraph, slack int) (ColoringState, error)
}

// ColoringState tracks the live dipaths in slots (dense ints assigned
// by Add and recycled by Remove) and answers wavelength queries.
type ColoringState interface {
	// Add inserts p and returns its slot.
	Add(p *dipath.Path) (int, error)
	// Remove deletes the dipath in slot s.
	Remove(s int) error
	// Wavelength returns the wavelength of slot s, or -1 when the
	// strategy defers assignment until Assignment is called.
	Wavelength(s int) int
	// NumLambda returns the number of wavelengths in use. Deferred
	// strategies may recompute from scratch here (document the cost).
	NumLambda() (int, error)
	// Assignment returns the final wavelengths for the given slots
	// (parallel to slots; fam holds the same slots' dipaths in the same
	// order), the wavelength count, and the method that produced them.
	Assignment(slots []int, fam dipath.Family) ([]int, int, core.Method, error)
}

// DenseFamilyState is an optional ColoringState extension: a state whose
// slot table currently has no holes (slots are exactly 0..n-1 in
// arrival order) can return it directly, letting one-shot consumers
// skip the per-materialisation snapshot copy. The returned family
// aliases the state — callers must not retain it past the next state
// mutation. A state advertising a dense family must accept nil slots in
// Assignment as the identity mapping.
type DenseFamilyState interface {
	DenseFamily() (dipath.Family, bool)
}

// ── Registries ─────────────────────────────────────────────────────────

var (
	registryMu         sync.RWMutex
	routingStrategies  = map[string]RoutingStrategy{}
	coloringStrategies = map[string]ColoringStrategy{}
)

// RegisterRoutingStrategy adds s to the routing registry; registering a
// nil strategy, an empty name, or a duplicate name fails.
func RegisterRoutingStrategy(s RoutingStrategy) error {
	if s == nil || s.Name() == "" {
		return fmt.Errorf("wdm: routing strategy must be non-nil with a non-empty name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := routingStrategies[s.Name()]; dup {
		return fmt.Errorf("wdm: routing strategy %q already registered", s.Name())
	}
	routingStrategies[s.Name()] = s
	return nil
}

// LookupRoutingStrategy returns the registered routing strategy named
// name.
func LookupRoutingStrategy(name string) (RoutingStrategy, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := routingStrategies[name]
	return s, ok
}

// RoutingStrategyNames returns the registered routing strategy names,
// sorted.
func RoutingStrategyNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(routingStrategies))
	for n := range routingStrategies {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RegisterColoringStrategy adds s to the coloring registry; registering
// a nil strategy, an empty name, or a duplicate name fails.
func RegisterColoringStrategy(s ColoringStrategy) error {
	if s == nil || s.Name() == "" {
		return fmt.Errorf("wdm: coloring strategy must be non-nil with a non-empty name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := coloringStrategies[s.Name()]; dup {
		return fmt.Errorf("wdm: coloring strategy %q already registered", s.Name())
	}
	coloringStrategies[s.Name()] = s
	return nil
}

// LookupColoringStrategy returns the registered coloring strategy named
// name.
func LookupColoringStrategy(name string) (ColoringStrategy, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := coloringStrategies[name]
	return s, ok
}

// ColoringStrategyNames returns the registered coloring strategy names,
// sorted.
func ColoringStrategyNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(coloringStrategies))
	for n := range coloringStrategies {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Strategy resolves the legacy policy constant to its registered
// strategy — the RoutingPolicy switch of earlier versions, turned into
// a registry lookup.
func (p RoutingPolicy) Strategy() (RoutingStrategy, error) {
	s, ok := LookupRoutingStrategy(p.String())
	if !ok {
		return nil, fmt.Errorf("wdm: unknown routing policy %v", p)
	}
	return s, nil
}

func init() {
	for _, s := range []RoutingStrategy{
		shortestStrategy{}, minLoadStrategy{}, uppStrategy{},
	} {
		if err := RegisterRoutingStrategy(s); err != nil {
			panic(err)
		}
	}
	for _, s := range []ColoringStrategy{
		incrementalColoring{}, fullColoring{},
	} {
		if err := RegisterColoringStrategy(s); err != nil {
			panic(err)
		}
	}
}

// ── Built-in routing strategies ────────────────────────────────────────

// shortestStrategy routes by BFS shortest dipath through a persistent
// route.Router.
type shortestStrategy struct{}

func (shortestStrategy) Name() string { return RouteShortestName }

func (shortestStrategy) NewState(g *digraph.Digraph) (RoutingState, error) {
	return shortestState{route.NewRouter(g)}, nil
}

type shortestState struct{ r *route.Router }

func (s shortestState) Route(req route.Request, _ *load.Tracker) (*dipath.Path, error) {
	return s.r.ShortestPath(req.Src, req.Dst)
}

// minLoadStrategy routes each request to minimise the resulting maximum
// arc load against the session's live tracker (then hop count).
type minLoadStrategy struct{}

func (minLoadStrategy) Name() string { return RouteMinLoadName }

func (minLoadStrategy) NewState(g *digraph.Digraph) (RoutingState, error) {
	return minLoadState{route.NewRouter(g)}, nil
}

type minLoadState struct{ r *route.Router }

func (s minLoadState) Route(req route.Request, loads *load.Tracker) (*dipath.Path, error) {
	return s.r.MinLoadPath(req, loads)
}

// uppStrategy routes on UPP-DAGs, where every request has at most one
// dipath; state construction fails on non-UPP digraphs.
type uppStrategy struct{}

func (uppStrategy) Name() string { return RouteUPPName }

func (uppStrategy) NewState(g *digraph.Digraph) (RoutingState, error) {
	r, err := upp.NewRouter(g)
	if err != nil {
		return nil, err
	}
	return uppState{r}, nil
}

type uppState struct{ r *upp.Router }

func (s uppState) Route(req route.Request, _ *load.Tracker) (*dipath.Path, error) {
	p, ok := s.r.Route(req.Src, req.Dst)
	if !ok {
		return nil, route.ErrNoRoute{Req: req}
	}
	return p, nil
}

// ── Built-in coloring strategies ───────────────────────────────────────

// ColoringIncremental and ColoringFull are the names of the built-in
// coloring strategies.
//
//wavedag:registry RegisterColoringStrategy
const (
	ColoringIncremental = "incremental"
	ColoringFull        = "full"
)

// incrementalColoring maintains wavelengths online via core.Incremental:
// every Add first-fit colors against the mutable conflict graph, every
// Remove runs a bounded local repair, and a full recolor happens only
// when the assignment drifts past the slack gate.
type incrementalColoring struct{}

func (incrementalColoring) Name() string { return ColoringIncremental }

func (incrementalColoring) NewState(g *digraph.Digraph, slack int) (ColoringState, error) {
	return &incrementalState{ic: core.NewIncremental(g, slack)}, nil
}

type incrementalState struct{ ic *core.Incremental }

func (s *incrementalState) Add(p *dipath.Path) (int, error) { return s.ic.Add(p) }
func (s *incrementalState) Remove(slot int) error           { return s.ic.Remove(slot) }
func (s *incrementalState) Wavelength(slot int) int         { return s.ic.Wavelength(slot) }
func (s *incrementalState) NumLambda() (int, error)         { return s.ic.NumLambda(), nil }

func (s *incrementalState) Assignment(slots []int, _ dipath.Family) ([]int, int, core.Method, error) {
	return s.ic.Colors(slots), s.ic.NumLambda(), core.MethodIncremental, nil
}

// Incremental exposes the underlying colorer (stats, lower bound).
func (s *incrementalState) Incremental() *core.Incremental { return s.ic }

// AddUnderLimit and EnsureAtMost implement BudgetedColoringState — the
// exact-rollback admission probe and the post-mutation λ enforcement
// the budgeted session drives.
func (s *incrementalState) AddUnderLimit(p *dipath.Path, limit int) (int, bool, error) {
	return s.ic.AddUnderLimit(p, limit)
}

func (s *incrementalState) EnsureAtMost(limit int) int { return s.ic.EnsureAtMost(limit) }

// ForEachSlotOnArc implements ArcIncidenceState through the conflict
// layer's per-arc incidence, so FailArc finds the paths hit by a cut in
// O(affected).
func (s *incrementalState) ForEachSlotOnArc(a digraph.ArcID, f func(slot int)) {
	s.ic.Dynamic().ForEachOnArc(a, f)
}

// GrowArcs implements the optional arc-growth hook a live AddArc drives
// through Session.growTopology: the conflict layer's arc incidence
// extends to the grown topology. States without per-arc structure (the
// deferred full strategy) simply lack the method.
func (s *incrementalState) GrowArcs(n int) { s.ic.GrowArcs(n) }

// fullColoring defers all wavelength assignment to a from-scratch
// ColorDAG run: Add and Remove only track the live set, and Assignment
// (or NumLambda) runs the strongest applicable theorem on the snapshot.
// It is the rebuild-from-scratch baseline the dynamic engine is
// measured against, and what one-shot Provision uses — making Provision
// a thin wrapper over a throwaway session.
type fullColoring struct{}

func (fullColoring) Name() string { return ColoringFull }

func (fullColoring) NewState(g *digraph.Digraph, _ int) (ColoringState, error) {
	return &fullState{g: g}, nil
}

type fullState struct {
	g         *digraph.Digraph
	paths     []*dipath.Path // slot -> path; nil = free
	free      []int
	live      int
	everFreed bool // a recycled slot breaks the arrival-order guarantee
}

func (s *fullState) Add(p *dipath.Path) (int, error) {
	if p == nil {
		return -1, fmt.Errorf("wdm: nil dipath")
	}
	// Validate on entry (exactly as the incremental strategy's conflict
	// layer does): every path the state holds is then a known-good dipath
	// of g, and Assignment can run the prevalidated coloring dispatch
	// instead of re-walking the whole family per call.
	if err := p.Validate(s.g); err != nil {
		return -1, err
	}
	var slot int
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
		s.paths[slot] = p
	} else {
		slot = len(s.paths)
		s.paths = append(s.paths, p)
	}
	s.live++
	return slot, nil
}

func (s *fullState) Remove(slot int) error {
	if slot < 0 || slot >= len(s.paths) || s.paths[slot] == nil {
		return fmt.Errorf("wdm: slot %d is not live", slot)
	}
	s.paths[slot] = nil
	s.free = append(s.free, slot)
	s.live--
	s.everFreed = true
	return nil
}

func (s *fullState) Wavelength(int) int { return -1 } // deferred

// NumLambda recomputes from scratch — O(full pipeline), which is
// exactly the cost profile the incremental strategy exists to avoid.
func (s *fullState) NumLambda() (int, error) {
	fam := make(dipath.Family, 0, s.live)
	for _, p := range s.paths {
		if p != nil {
			fam = append(fam, p)
		}
	}
	res, _, err := core.ColorDAGPrevalidated(s.g, fam)
	if err != nil {
		return 0, err
	}
	return res.NumColors, nil
}

func (s *fullState) Assignment(_ []int, fam dipath.Family) ([]int, int, core.Method, error) {
	res, method, err := core.ColorDAGPrevalidated(s.g, fam)
	if err != nil {
		return nil, 0, "", err
	}
	return res.Colors, res.NumColors, method, nil
}

// DenseFamily exposes the state's slot table directly as the live family
// when no slot was ever freed: slots are then exactly 0..n-1 in arrival
// order and the returned slice aliases the state. A Remove+Add cycle
// leaves the table hole-free but permutes it out of arrival order, so
// everFreed (not the current free list) is the guard. One-shot
// Provision — fill, materialise once, discard — reads it instead of
// paying a snapshot copy per Provisioning call.
func (s *fullState) DenseFamily() (dipath.Family, bool) {
	if s.everFreed || s.live != len(s.paths) {
		return nil, false
	}
	return dipath.Family(s.paths), true
}
