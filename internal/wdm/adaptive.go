package wdm

// The adaptive layout plane: the engine observes per-lane pressure at
// batch boundaries and reshapes its own layout — re-banding the
// wavelength budget between the region and overlay lanes, re-splitting
// a region that dominates its component's traffic, and growing the
// topology under live traffic (AddArc). All three re-layouts run under
// the engine mutex at a batch boundary, relocate entries through the
// session adoption primitives (see session.go), leave retired lanes
// behind with immutable forward maps so issued ShardedIDs keep
// resolving, and publish a fresh snapshot so lock-free readers never
// observe a half-moved layout.

import (
	"fmt"

	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/route"
)

// AdaptiveConfig tunes the adaptive layout plane (see
// WithAdaptiveBanding and WithRegionResplit). The zero value is not
// valid; start from DefaultAdaptiveConfig.
type AdaptiveConfig struct {
	// Alpha is the EWMA smoothing factor of the pressure gauges
	// (occupancy, saturation, event share), in (0, 1]. Higher reacts
	// faster; lower needs more consecutive batches of evidence.
	Alpha float64

	// HysteresisBatches gates every re-layout twice over: a band shift
	// needs this many consecutive batches of one-sided pressure, and no
	// component re-lays out twice within this many batches (the
	// cooldown window shared with re-splitting).
	HysteresisBatches int

	// BandStep is how many wavelengths one re-banding moves between the
	// region band and the overlay slice.
	BandStep int

	// HighWater and LowWater are the pressure thresholds of the banding
	// gate: the growing side must sustain pressure >= HighWater while
	// the shrinking side sits <= LowWater. 0 < LowWater < HighWater <= 1.
	HighWater float64
	LowWater  float64

	// ResplitShare is the event-share EWMA a single region lane must
	// sustain before it is re-split, in (0, 1].
	ResplitShare float64

	// MinRegionArcs is the smallest region (in arcs) re-splitting will
	// consider carving.
	MinRegionArcs int
}

// DefaultAdaptiveConfig returns the tuning the adaptive plane was
// calibrated with (see BENCH_PR10.json).
func DefaultAdaptiveConfig() AdaptiveConfig {
	return AdaptiveConfig{
		Alpha:             0.3,
		HysteresisBatches: 8,
		BandStep:          1,
		HighWater:         0.85,
		LowWater:          0.4,
		ResplitShare:      0.6,
		MinRegionArcs:     8,
	}
}

func (cfg AdaptiveConfig) validate() error {
	if cfg.Alpha <= 0 || cfg.Alpha > 1 {
		return fmt.Errorf("wdm: adaptive alpha must be in (0,1], got %g", cfg.Alpha)
	}
	if cfg.HysteresisBatches < 1 {
		return fmt.Errorf("wdm: adaptive hysteresis must be >= 1 batch, got %d", cfg.HysteresisBatches)
	}
	if cfg.BandStep < 1 {
		return fmt.Errorf("wdm: adaptive band step must be >= 1, got %d", cfg.BandStep)
	}
	if cfg.LowWater <= 0 || cfg.HighWater <= cfg.LowWater || cfg.HighWater > 1 {
		return fmt.Errorf("wdm: adaptive watermarks need 0 < low < high <= 1, got low=%g high=%g", cfg.LowWater, cfg.HighWater)
	}
	if cfg.ResplitShare <= 0 || cfg.ResplitShare > 1 {
		return fmt.Errorf("wdm: adaptive re-split share must be in (0,1], got %g", cfg.ResplitShare)
	}
	if cfg.MinRegionArcs < 2 {
		return fmt.Errorf("wdm: adaptive min region arcs must be >= 2, got %d", cfg.MinRegionArcs)
	}
	return nil
}

// WithAdaptiveBanding turns on adaptive budget banding: at batch
// boundaries the engine shifts wavelengths between a two-level
// component's region band and its overlay slice, following the lanes'
// pressure gauges behind a hysteresis gate (see AdaptiveConfig). The
// regions-max + overlay-offset aggregation is preserved through every
// shift — a component's λ can never exceed the engine budget — so the
// option requires WithEngineWavelengthBudget.
func WithAdaptiveBanding() ShardedOption {
	return func(c *shardedConfig) error {
		c.adaptive = true
		return nil
	}
}

// WithRegionResplit turns on hot-region re-splitting: when one region
// lane sustains more than AdaptiveConfig.ResplitShare of its
// component's events, the engine re-partitions that region at a batch
// boundary via a balanced arc cut, relocating its lightpaths into the
// two halves (paths the cut severs escalate to the overlay lane, parked
// dark if the overlay band cannot hold them). Works with or without a
// wavelength budget.
func WithRegionResplit() ShardedOption {
	return func(c *shardedConfig) error {
		c.resplit = true
		return nil
	}
}

// WithAdaptiveConfig overrides the adaptive plane's tuning knobs
// (default DefaultAdaptiveConfig). It configures but does not enable:
// combine with WithAdaptiveBanding and/or WithRegionResplit.
func WithAdaptiveConfig(cfg AdaptiveConfig) ShardedOption {
	return func(c *shardedConfig) error {
		if err := cfg.validate(); err != nil {
			return err
		}
		c.acfg = cfg
		c.acfgSet = true
		return nil
	}
}

// AdaptiveBanding reports whether adaptive budget banding is on.
func (e *ShardedEngine) AdaptiveBanding() bool { return e.adaptive }

// RegionResplit reports whether hot-region re-splitting is on.
func (e *ShardedEngine) RegionResplit() bool { return e.resplit }

// resplitSampleFloor dampens the event-share EWMA on small batches:
// an update from a batch of tot events is weighted tot/(tot+floor),
// so single-op batches (raw share 1.0 for whoever got the event) no
// longer masquerade as sustained pressure.
const resplitSampleFloor = 8

// laneGauge is the pressure of one lane: the worse of its budget
// occupancy and its admission saturation EWMAs.
func laneGauge(sh *engineShard) float64 {
	if sh.satEW > sh.occEW {
		return sh.satEW
	}
	return sh.occEW
}

// adaptLocked is the adaptive plane's batch-boundary tick, run inside
// applyLocked just before publication: refresh every live lane's
// pressure gauges from the batch's admission deltas, then give each
// two-level component its re-split and re-band decisions. The caller
// holds e.mu.
func (e *ShardedEngine) adaptLocked() {
	a := e.acfg.Alpha
	for _, sh := range e.shards {
		if sh.retired {
			continue
		}
		st := sh.sess.AdmissionStats()
		dreq := st.Requests - sh.prevReq
		drej := st.Rejected - sh.prevRej
		sh.prevReq, sh.prevRej = st.Requests, st.Rejected
		if dreq > 0 {
			sh.satEW += a * (float64(drej)/float64(dreq) - sh.satEW)
		} else {
			sh.satEW -= a * sh.satEW // idle lanes cool off
		}
		// Occupancy is λ over the lane budget; NumLambda is only O(1)
		// when every coloring state is incremental (lambdaEager), and
		// only meaningful under a budget.
		if b := sh.sess.Budget(); b > 0 && e.lambdaEager {
			if n, err := sh.sess.NumLambda(); err == nil {
				sh.occEW += a * (float64(n)/float64(b) - sh.occEW)
			}
		}
	}
	for _, c := range e.comps {
		if c.dead || !c.twoLevel() {
			continue
		}
		if e.resplit {
			e.maybeResplit(c)
		}
		if e.adaptive {
			e.maybeReband(c)
		}
	}
}

// maybeReband applies one adaptive band shift to a two-level component
// when the hysteresis gate opens: the growing side must have sustained
// pressure >= HighWater while the shrinking side sat <= LowWater for
// HysteresisBatches consecutive batches, outside the component's
// re-layout cooldown window. Shrinking a band is additionally gated on
// the current live λ of the shrinking lanes fitting the smaller band,
// so the λ <= budget invariant survives the shift without evictions.
func (e *ShardedEngine) maybeReband(c *engineComponent) {
	cfg := e.acfg
	regP := 0.0
	for _, rs := range c.regionShards {
		if p := laneGauge(rs); p > regP {
			regP = p
		}
	}
	ovP := laneGauge(c.overlay)
	if ovP >= cfg.HighWater && regP <= cfg.LowWater {
		c.growPend++
	} else {
		c.growPend = 0
	}
	if regP >= cfg.HighWater && ovP <= cfg.LowWater {
		c.shrinkPend++
	} else {
		c.shrinkPend = 0
	}
	if e.batchSerial-c.lastLayout < uint64(cfg.HysteresisBatches) {
		return
	}
	newSlice := c.overlaySlice
	switch {
	case c.growPend >= cfg.HysteresisBatches:
		newSlice += cfg.BandStep
	case c.shrinkPend >= cfg.HysteresisBatches:
		newSlice -= cfg.BandStep
	default:
		return
	}
	// The invariant bounds: the overlay keeps at least one wavelength,
	// the regions keep at least one.
	if newSlice < 1 {
		newSlice = 1
	}
	if newSlice > e.budget-1 {
		newSlice = e.budget - 1
	}
	if newSlice == c.overlaySlice {
		c.growPend, c.shrinkPend = 0, 0
		return
	}
	regionBudget := e.budget - newSlice
	if newSlice > c.overlaySlice {
		// Regions shrink: every region lane's live λ must fit the new
		// region band.
		for _, rs := range c.regionShards {
			if n, err := rs.sess.NumLambda(); err != nil || n > regionBudget {
				c.growPend = 0
				return
			}
		}
	} else {
		// Overlay shrinks: its live λ must fit the new slice.
		if n, err := c.overlay.sess.NumLambda(); err != nil || n > newSlice {
			c.shrinkPend = 0
			return
		}
	}
	for _, rs := range c.regionShards {
		rs.sess.setBudget(regionBudget)
		rs.dirty = true
	}
	c.overlay.sess.setBudget(newSlice)
	c.overlay.dirty = true
	c.overlaySlice = newSlice
	c.lastLayout = e.batchSerial
	c.growPend, c.shrinkPend = 0, 0
	e.rebands++
}

// maybeResplit updates a two-level component's per-lane event-share
// EWMAs from this batch's traffic and re-splits the hottest region when
// it has sustained more than ResplitShare of the component's events,
// subject to the size floor and the re-layout cooldown.
func (e *ShardedEngine) maybeResplit(c *engineComponent) {
	var tot uint64
	for _, rs := range c.regionShards {
		tot += rs.events - rs.prevEvents
	}
	tot += c.overlay.events - c.overlay.prevEvents
	// Weight the EWMA update by the batch's sample size: a lane that
	// received the only event of a 1-op batch has a raw share of 1.0,
	// which says nothing about sustained pressure. Scaling α by
	// tot/(tot+resplitSampleFloor) makes trickle batches move the
	// share estimate proportionally less, so only sustained batched
	// traffic can open the re-split gate.
	a := e.acfg.Alpha * float64(tot) / float64(tot+resplitSampleFloor)
	hot, hotShare := -1, 0.0
	for ri, rs := range c.regionShards {
		var shr float64
		if tot > 0 {
			shr = float64(rs.events-rs.prevEvents) / float64(tot)
		}
		rs.evShareEW += a * (shr - rs.evShareEW)
		rs.prevEvents = rs.events
		if rs.evShareEW > hotShare {
			hot, hotShare = ri, rs.evShareEW
		}
	}
	var ovShr float64
	if tot > 0 {
		ovShr = float64(c.overlay.events-c.overlay.prevEvents) / float64(tot)
	}
	c.overlay.evShareEW += a * (ovShr - c.overlay.evShareEW)
	c.overlay.prevEvents = c.overlay.events
	if tot == 0 || hot < 0 || hotShare < e.acfg.ResplitShare {
		return
	}
	if e.batchSerial-c.lastLayout < uint64(e.acfg.HysteresisBatches) {
		return
	}
	g := c.regions.Views[hot].G
	if g.NumVertices() < 4 || g.NumArcs() < e.acfg.MinRegionArcs {
		return
	}
	e.resplitComp(c, hot)
}

// resplitComp re-partitions region ri of a two-level component via a
// balanced arc cut and relocates its lightpaths: paths confined to one
// half are adopted by the half's new lane; paths the cut severs
// escalate to the overlay lane (their folded loads are first undone so
// the overlay tracker stays the exact combined view), parked dark when
// a band rejects them. The old lane retires with an immutable forward
// map; region lanes of the component escalate ErrNoRoute adds to the
// overlay from here on, because the synthetic halves are no longer
// biconnected blocks and region-confined routability is no longer
// guaranteed. The relocation runs with delta hooks disabled — adoption
// is accounted directly — and a mirror pass rebuilds the two new region
// trackers' view of overlay-owned loads.
func (e *ShardedEngine) resplitComp(c *engineComponent, ri int) {
	old := c.regionShards[ri]
	g := c.regions.Views[ri].G
	// Order the region for the cut. On an acyclic view use a
	// topological order: every vertex of a directed u→v path ranks
	// between u and v in any such order, so a prefix/suffix cut never
	// severs a path whose endpoints sit on one side — in-side pairs
	// stay in-side routable after the split instead of escalating to
	// the serialised overlay. Views with directed cycles fall back to
	// an undirected BFS order from local vertex 0, which keeps the
	// prefix connected and the cut small on mesh-like blocks.
	n := g.NumVertices()
	order := make([]digraph.Vertex, 0, n)
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(g.InArcs(digraph.Vertex(v)))
	}
	queue := make([]digraph.Vertex, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, digraph.Vertex(v))
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, aID := range g.OutArcs(v) {
			h := g.Arc(aID).Head
			if indeg[h]--; indeg[h] == 0 {
				queue = append(queue, h)
			}
		}
	}
	if len(order) < n {
		order, queue = order[:0], queue[:0]
		seen := make([]bool, n)
		queue = append(queue, 0)
		seen[0] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, aID := range g.OutArcs(v) {
				if w := g.Arc(aID).Head; !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
			for _, aID := range g.InArcs(v) {
				if w := g.Arc(aID).Tail; !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	// Sweep the order from the far end, growing side B until it holds
	// about half the region's arcs: an arc is B-internal once both its
	// endpoints are in B, so the sweep is the balanced arc cut the
	// re-split wants (vertex halving alone can leave B arcless when the
	// far half is all frontier vertices).
	sideB := make([]bool, n)
	total := g.NumArcs()
	arcsB, nB := 0, 0
	for i := len(order) - 1; i >= 1 && 2*arcsB < total && nB < n-1; i-- {
		v := order[i]
		sideB[v] = true
		nB++
		for _, aID := range g.OutArcs(v) {
			if h := g.Arc(aID).Head; h != v && sideB[h] {
				arcsB++
			}
		}
		for _, aID := range g.InArcs(v) {
			if w := g.Arc(aID).Tail; w != v && sideB[w] {
				arcsB++
			}
		}
	}
	if arcsB == 0 || arcsB == total {
		// No bipartition along this order separates the arcs (star-like
		// region): leave the layout alone until the cooldown expires.
		c.lastLayout = e.batchSerial
		return
	}
	newRegs, err := c.regions.SplitRegion(ri, sideB)
	if err != nil {
		c.lastLayout = e.batchSerial // cooldown: don't retry every batch
		return
	}
	newIdx := int32(newRegs.NumRegions() - 1)

	// Classify the old lane's paths against the new partition. A path
	// is severed when its arcs land on both sides; a zero-arc path
	// follows its vertex's membership (side A preferred for boundary
	// vertices — both halves hold them).
	sideOf := func(p *dipath.Path) (int32, bool) {
		if p.NumArcs() == 0 {
			cv := old.toCompVertex[p.First()]
			side := int32(ri)
			for _, m := range newRegs.RegionsOf(cv) {
				if m.Region == int32(ri) {
					return int32(ri), false
				}
				if m.Region == newIdx {
					side = newIdx
				}
			}
			return side, false
		}
		arcs := p.Arcs()
		first := newRegs.ArcRegion[old.toCompArc[arcs[0]]]
		for _, la := range arcs[1:] {
			if newRegs.ArcRegion[old.toCompArc[la]] != first {
				return first, true
			}
		}
		return first, false
	}
	lit, severed := 0, 0
	for idx := range old.sess.entries {
		en := &old.sess.entries[idx]
		if !en.alive || en.dark {
			continue
		}
		lit++
		if _, mixed := sideOf(en.path); mixed {
			severed++
		}
	}
	if 2*severed > lit {
		// The cut would push the majority of the region's traffic onto
		// the serialized overlay lane — worse than the hot region.
		c.lastLayout = e.batchSerial
		return
	}

	regionBudget := 0
	if e.budget > 0 {
		regionBudget = e.budget - c.overlaySlice
	}
	sessA, errA := e.newLaneSession(newRegs.Views[ri].G, regionBudget,
		fmt.Sprintf("component %d region %d (re-split)", c.idx, ri))
	sessB, errB := e.newLaneSession(newRegs.Views[newIdx].G, regionBudget,
		fmt.Sprintf("component %d region %d (re-split)", c.idx, newIdx))
	if errA != nil || errB != nil {
		c.lastLayout = e.batchSerial
		return
	}
	mk := func(rv digraph.ComponentView, sess *Session) *engineShard {
		gv := make([]digraph.Vertex, len(rv.ToGlobalVertex))
		for i, cv := range rv.ToGlobalVertex {
			gv[i] = c.view.ToGlobalVertex[cv]
		}
		ga := make([]digraph.ArcID, len(rv.ToGlobalArc))
		for i, ca := range rv.ToGlobalArc {
			ga[i] = c.view.ToGlobalArc[ca]
		}
		return e.addShard(&engineShard{
			kind: shardRegion, comp: c, sess: sess,
			toGlobalVertex: gv,
			toGlobalArc:    ga,
			toCompArc:      rv.ToGlobalArc,
			toCompVertex:   rv.ToGlobalVertex,
		})
	}
	shA := mk(newRegs.Views[ri], sessA)
	shB := mk(newRegs.Views[newIdx], sessB)

	// Relocate with every delta hook silent: adoption accounts trackers
	// directly, and the batch reconciliation must not see relocation as
	// traffic. The overlay tracker keeps its folded copy of confined
	// paths (they stay in the component, on the same component arcs);
	// severed paths are un-folded before re-admission against the
	// overlay band, and a confined path a new half's colorer cannot
	// seat parks dark (un-folded too — dark holds no load anywhere).
	c.overlay.sess.setPathDeltaHook(nil)
	ot := c.overlay.sess.tracker
	unfold := func(p *dipath.Path) {
		for _, la := range p.Arcs() {
			ot.RemoveArc(old.toCompArc[la])
		}
	}
	toLocal := func(t *engineShard, p *dipath.Path) *dipath.Path {
		if p.NumArcs() == 0 {
			cv := old.toCompVertex[p.First()]
			for _, m := range newRegs.RegionsOf(cv) {
				if (t == shA && m.Region == int32(ri)) || (t == shB && m.Region == newIdx) {
					np, verr := dipath.FromVertices(t.sess.net.Topology, m.Local)
					if verr == nil {
						return np
					}
				}
			}
			return nil
		}
		arcs := make([]digraph.ArcID, p.NumArcs())
		for i, la := range p.Arcs() {
			arcs[i] = newRegs.LocalArc[old.toCompArc[la]]
		}
		return dipath.FromArcsTrusted(t.sess.net.Topology, arcs...)
	}
	forward := make(map[SessionID]ShardedID, old.sess.Len()+old.sess.DarkLive())
	for idx := range old.sess.entries {
		en := &old.sess.entries[idx]
		if !en.alive {
			continue
		}
		oldID := packID(int32(idx), en.gen)
		if en.path == nil {
			// A parked entry without a route: keep it dark on the overlay
			// lane (component vertices are always addressable there).
			req := route.Request{Src: old.toCompVertex[en.req.Src], Dst: old.toCompVertex[en.req.Dst]}
			forward[oldID] = ShardedID{Shard: c.overlay.idx, ID: c.overlay.sess.adoptDark(req, nil)}
			continue
		}
		side, mixed := sideOf(en.path)
		if mixed {
			cp, cerr := old.compLocalPath(en.path)
			if en.dark {
				if cerr != nil {
					cp = nil
				}
				var req route.Request
				if cp != nil {
					req = route.Request{Src: cp.First(), Dst: cp.Last()}
				} else {
					req = route.Request{Src: old.toCompVertex[en.req.Src], Dst: old.toCompVertex[en.req.Dst]}
				}
				forward[oldID] = ShardedID{Shard: c.overlay.idx, ID: c.overlay.sess.adoptDark(req, cp)}
				continue
			}
			unfold(en.path)
			req := route.Request{Src: cp.First(), Dst: cp.Last()}
			if nid, ok, aerr := c.overlay.sess.adoptPath(req, cp, en.bestEffort); aerr == nil && ok {
				forward[oldID] = ShardedID{Shard: c.overlay.idx, ID: nid}
			} else {
				forward[oldID] = ShardedID{Shard: c.overlay.idx, ID: c.overlay.sess.adoptDark(req, cp)}
			}
			continue
		}
		t := shA
		if side == newIdx {
			t = shB
		}
		np := toLocal(t, en.path)
		if np == nil {
			req := route.Request{Src: old.toCompVertex[en.req.Src], Dst: old.toCompVertex[en.req.Dst]}
			forward[oldID] = ShardedID{Shard: c.overlay.idx, ID: c.overlay.sess.adoptDark(req, nil)}
			continue
		}
		req := route.Request{Src: np.First(), Dst: np.Last()}
		if en.dark {
			forward[oldID] = ShardedID{Shard: t.idx, ID: t.sess.adoptDark(req, np)}
			continue
		}
		if nid, ok, aerr := t.sess.adoptPath(req, np, en.bestEffort); aerr == nil && ok {
			forward[oldID] = ShardedID{Shard: t.idx, ID: nid}
		} else {
			unfold(en.path) // going dark: its folded loads leave the combined view
			forward[oldID] = ShardedID{Shard: t.idx, ID: t.sess.adoptDark(req, np)}
		}
	}
	old.sess.drainRetire()
	old.retired = true
	old.forward = forward
	old.dirty = true

	// Commit the new partition and lane layout.
	c.regions = newRegs
	c.regionShards[ri] = shA
	c.regionShards = append(c.regionShards, shB)

	// Mirror pass: the new halves' trackers must see the overlay-owned
	// loads on their arcs (min-load routing inside a region consults
	// them), exactly what scatterOverlayDeltas maintains from here on.
	for idx := range c.overlay.sess.entries {
		en := &c.overlay.sess.entries[idx]
		if !en.alive || en.dark || en.path == nil {
			continue
		}
		for _, ca := range en.path.Arcs() {
			switch newRegs.ArcRegion[ca] {
			case int32(ri):
				shA.sess.tracker.AddArc(newRegs.LocalArc[ca])
			case newIdx:
				shB.sess.tracker.AddArc(newRegs.LocalArc[ca])
			}
		}
	}

	// Re-arm the delta hooks: the new lanes log like any region lane,
	// the overlay resumes logging for scatter.
	for _, sh := range []*engineShard{shA, shB} {
		sh := sh
		sh.sess.setPathDeltaHook(func(add bool, p *dipath.Path) {
			sh.deltas = append(sh.deltas, shardDelta{add: add, path: p})
		})
	}
	ov := c.overlay
	ov.sess.setPathDeltaHook(func(add bool, p *dipath.Path) {
		ov.deltas = append(ov.deltas, shardDelta{add: add, path: p})
	})
	ov.dirty = true

	c.escalate = true
	c.lastLayout = e.batchSerial
	c.growPend, c.shrinkPend = 0, 0
	e.resplits++
}

// AddArc adds a directed arc to a running engine's topology and
// re-shards incrementally: an arc inside one region joins that region's
// lane; an arc between regions of one component becomes overlay-owned
// (no region lane knows it, and region lanes escalate ErrNoRoute adds
// to the overlay from then on, since the new arc may open cross-region
// routes); an arc between two components merges them into one plain
// component, relocating every lightpath of both into a fresh lane
// (handles issued for them keep resolving through forward maps).
//
// The engine operates on a private copy of the topology from the first
// AddArc on: the Network the engine was built from is never mutated,
// and snapshots published earlier keep their own captured topology, so
// pinned readers are unaffected. FailArc/RestoreArc keep operating on
// the engine's current (private) topology.
//
// If a lane's routing strategy refuses the grown graph (precomputed
// tables such as UPP's can become invalid), the new arc is added but
// immediately failed — the engine stays consistent on the old effective
// topology — and an error is returned; RestoreArc can bring the arc up
// later if the strategy permits. After Close, AddArc returns
// ErrEngineClosed.
func (e *ShardedEngine) AddArc(tail, head digraph.Vertex) (digraph.ArcID, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return -1, ErrEngineClosed
	}
	nv := len(e.label)
	if tail < 0 || head < 0 || int(tail) >= nv || int(head) >= nv {
		return -1, fmt.Errorf("wdm: add arc: vertex out of range")
	}
	// Clone-on-add: mutating a shared topology in place would corrupt
	// published snapshots (their path translation reads the captured
	// graph) and the caller's Network.
	topo := e.net.Topology.Clone()
	ga, err := topo.AddArc(tail, head)
	if err != nil {
		return -1, err
	}
	defer e.publishLocked()
	ci, cj := e.label[tail], e.label[head]
	if ci != cj {
		if err := e.mergeComps(topo, ga, ci, cj); err != nil {
			return -1, err // the clone is discarded; the engine is untouched
		}
		e.arcAdds++
		return ga, nil
	}

	// Same component: commit the topology swap, then grow the views in
	// place (appends never disturb published slice headers — snapshot
	// tables froze their own headers at publication).
	e.net = &Network{Topology: topo, Wavelengths: e.net.Wavelengths}
	c := e.comps[ci]
	lt, lh := e.localV[tail], e.localV[head]
	la, err := c.view.G.AddArc(lt, lh)
	if err != nil {
		return -1, err // unreachable: the global add validated the same pair
	}
	c.view.ToGlobalArc = append(c.view.ToGlobalArc, ga)
	e.arcComp = append(e.arcComp, c.idx)
	e.arcLoc = append(e.arcLoc, la)
	var gerr error
	if !c.twoLevel() {
		c.plain.toGlobalArc = c.view.ToGlobalArc
		gerr = c.plain.sess.growTopology()
		c.plain.dirty = true
	} else {
		c.overlay.toGlobalArc = c.view.ToGlobalArc
		if r, ru, rh, ok := c.regions.CommonRegionNewest(lt, lh); ok {
			// Both endpoints share a region: the arc joins its lane, and
			// region-confined routing may now use it.
			rv := &c.regions.Views[r]
			rla, rerr := rv.G.AddArc(ru, rh)
			if rerr != nil {
				return -1, rerr // unreachable, as above
			}
			rv.ToGlobalArc = append(rv.ToGlobalArc, la)
			rsh := c.regionShards[r]
			rsh.toCompArc = rv.ToGlobalArc
			rsh.toGlobalArc = append(rsh.toGlobalArc, ga)
			c.regions.ArcRegion = append(c.regions.ArcRegion, r)
			c.regions.LocalArc = append(c.regions.LocalArc, rla)
			gerr = rsh.sess.growTopology()
			rsh.dirty = true
		} else {
			// No common region: the arc bridges regions and is owned by the
			// overlay lane alone. It may merge blocks, so region views turn
			// pessimistic about routability — escalate their ErrNoRoute adds.
			c.regions.ArcRegion = append(c.regions.ArcRegion, -1)
			c.regions.LocalArc = append(c.regions.LocalArc, -1)
			c.escalate = true
		}
		if gerr == nil {
			gerr = c.overlay.sess.growTopology()
		}
		c.overlay.dirty = true
	}
	if gerr != nil {
		// Compensate: a lane cannot run on the grown graph. Fail the new
		// arc everywhere — every lane keeps working on the old effective
		// topology (routing scratch is per-vertex and no vertex was
		// added, so un-rebuilt routing states stay safe).
		_ = topo.FailArc(ga)
		_ = c.view.G.FailArc(la)
		if c.twoLevel() {
			if ri := c.regions.ArcRegion[la]; ri >= 0 {
				_ = c.regions.Views[ri].G.FailArc(c.regions.LocalArc[la])
			}
		}
		c.refreshLiveLabel()
		return -1, fmt.Errorf("wdm: add arc: %w", gerr)
	}
	c.refreshLiveLabel() // a new live arc can heal a cut-split component
	e.arcAdds++
	return ga, nil
}

// mergeComps joins two components into one plain component over the
// grown topology: the merged view lists lo's vertices and arcs, then
// hi's, then the bridge arc (failed flags replicated), a fresh plain
// lane is opened over it — the only fallible step, done before any
// engine state mutates — and every entry of both old components is
// relocated into it. The dissolved component keeps its slot, marked
// dead, so component and shard indexing stays stable.
func (e *ShardedEngine) mergeComps(topo *digraph.Digraph, ga digraph.ArcID, ci, cj int32) error {
	lo, hi := e.comps[ci], e.comps[cj]
	if hi.idx < lo.idx {
		lo, hi = hi, lo
	}
	g := &digraph.Digraph{}
	gvs := make([]digraph.Vertex, 0, lo.view.G.NumVertices()+hi.view.G.NumVertices())
	for _, src := range [2]*engineComponent{lo, hi} {
		for lv := 0; lv < src.view.G.NumVertices(); lv++ {
			g.AddVertex(src.view.G.Label(digraph.Vertex(lv)))
			gvs = append(gvs, src.view.ToGlobalVertex[lv])
		}
	}
	off := digraph.Vertex(lo.view.G.NumVertices())
	gas := make([]digraph.ArcID, 0, lo.view.G.NumArcs()+hi.view.G.NumArcs()+1)
	addAll := func(src *engineComponent, voff digraph.Vertex) {
		for _, a := range src.view.G.Arcs() {
			la := g.MustAddArc(a.Tail+voff, a.Head+voff)
			if src.view.G.ArcFailed(a.ID) {
				_ = g.FailArc(la)
			}
			gas = append(gas, src.view.ToGlobalArc[a.ID])
		}
	}
	addAll(lo, 0)
	addAll(hi, off)
	mloc := func(gv digraph.Vertex) digraph.Vertex {
		if e.comps[e.label[gv]] == lo {
			return e.localV[gv]
		}
		return off + e.localV[gv]
	}
	bridge := topo.Arc(ga)
	g.MustAddArc(mloc(bridge.Tail), mloc(bridge.Head))
	gas = append(gas, ga)
	sess, err := e.newLaneSession(g, e.budget, fmt.Sprintf("component %d (merge of %d+%d)", lo.idx, lo.idx, hi.idx))
	if err != nil {
		return err
	}

	// Commit: from here on nothing fails.
	e.net = &Network{Topology: topo, Wavelengths: e.net.Wavelengths}
	nc := &engineComponent{
		idx:          lo.idx,
		view:         digraph.ComponentView{G: g, ToGlobalVertex: gvs, ToGlobalArc: gas},
		overlaySlice: e.overlaySlice,
	}
	nc.plain = e.addShard(&engineShard{
		kind: shardPlain, comp: nc, sess: sess,
		toGlobalVertex: gvs,
		toGlobalArc:    gas,
	})
	e.comps[lo.idx] = nc
	hi.dead = true
	hi.aggLambda, hi.aggLambdaErr, hi.aggRegionBase, hi.aggOverlayLambda = 0, nil, 0, 0
	hi.aggPi, hi.aggLive, hi.aggDark = 0, 0, 0
	for lv, gv := range gvs {
		e.label[gv] = nc.idx
		e.localV[gv] = digraph.Vertex(lv)
	}
	e.arcComp = append(e.arcComp, nc.idx)
	e.arcLoc = append(e.arcLoc, 0)
	for la, gaa := range gas {
		e.arcComp[gaa] = nc.idx
		e.arcLoc[gaa] = digraph.ArcID(la)
	}
	for _, src := range [2]*engineComponent{lo, hi} {
		if src.twoLevel() {
			for _, rs := range src.regionShards {
				e.relocateShard(rs, nc.plain)
			}
			e.relocateShard(src.overlay, nc.plain)
		} else {
			e.relocateShard(src.plain, nc.plain)
		}
	}
	nc.refreshLiveLabel()
	return nil
}

// relocateShard moves every entry of sh into the target lane t and
// retires sh behind an immutable forward map. The translation goes
// through the engine's freshly remapped global tables, so it is only
// valid when t is a plain lane whose local identifiers are the engine's
// current component-local identifiers (the merge path). Lightpaths a
// band or colorer cannot seat in t park dark there instead of being
// dropped.
func (e *ShardedEngine) relocateShard(sh *engineShard, t *engineShard) {
	fwd := make(map[SessionID]ShardedID, sh.sess.Len()+sh.sess.DarkLive())
	for idx := range sh.sess.entries {
		en := &sh.sess.entries[idx]
		if !en.alive {
			continue
		}
		oldID := packID(int32(idx), en.gen)
		var np *dipath.Path
		if en.path != nil {
			if en.path.NumArcs() == 0 {
				np, _ = dipath.FromVertices(t.sess.net.Topology, e.localV[sh.toGlobalVertex[en.path.First()]])
			} else {
				arcs := make([]digraph.ArcID, en.path.NumArcs())
				for i, a := range en.path.Arcs() {
					arcs[i] = e.arcLoc[sh.toGlobalArc[a]]
				}
				np = dipath.FromArcsTrusted(t.sess.net.Topology, arcs...)
			}
		}
		var req route.Request
		if np != nil {
			req = route.Request{Src: np.First(), Dst: np.Last()}
		} else {
			req = route.Request{
				Src: e.localV[sh.toGlobalVertex[en.req.Src]],
				Dst: e.localV[sh.toGlobalVertex[en.req.Dst]],
			}
		}
		if en.dark || np == nil {
			fwd[oldID] = ShardedID{Shard: t.idx, ID: t.sess.adoptDark(req, np)}
			continue
		}
		if nid, ok, err := t.sess.adoptPath(req, np, en.bestEffort); err == nil && ok {
			fwd[oldID] = ShardedID{Shard: t.idx, ID: nid}
		} else {
			fwd[oldID] = ShardedID{Shard: t.idx, ID: t.sess.adoptDark(req, np)}
		}
	}
	sh.sess.drainRetire()
	sh.retired = true
	sh.forward = fwd
	sh.dirty = true
}
