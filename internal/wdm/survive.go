package wdm

import (
	"sort"

	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/route"
)

// This file is the session half of the survivability engine: live fiber
// cuts (FailArc), bounded restoration storms, dark parking for paths
// the storm cannot restore, and the re-admission sweeps that revive
// dark entries and re-promote best-effort traffic when headroom
// returns. The sharded engine builds its failure dispatch on top of
// these primitives (see sharded.go).

// FailureStats counts a session's cumulative survivability events.
type FailureStats struct {
	Cuts     int // fiber cuts applied (FailArc)
	Restores int // cuts repaired (RestoreArc)
	Affected int // live paths hit by cuts
	Restored int // affected paths rerouted by their storm
	Parked   int // affected paths parked dark
	Revived  int // dark entries brought back live by a sweep
	Promoted int // best-effort entries upgraded once λ fit the budget
	Retries  int // min-load detour attempts spent by storms
}

// StormReport is the outcome of one restoration storm: the paths the
// cut hit, how many the storm rerouted, how many it parked dark, and
// how many detour retries it spent. Affected = Restored + Parked.
type StormReport struct {
	Affected int
	Restored int
	Parked   int
	Retries  int
}

// ArcIncidenceState is an optional ColoringState extension: a state
// that maintains per-arc incidence (the incremental strategy's
// conflict.Dynamic does) can enumerate the live slots traversing an
// arc, letting FailArc find the paths hit by a cut in O(affected)
// instead of a linear scan over the live set.
type ArcIncidenceState interface {
	ForEachSlotOnArc(a digraph.ArcID, f func(slot int))
}

// ── Session bookkeeping shared with session.go ─────────────────────────

// trackAdd accounts p in the load tracker and notifies the engine's
// path-delta hook; every tracker mutation of the session goes through
// trackAdd/trackRemove so the sharded engine's two-level reconciliation
// sees storm-induced changes exactly like batch ops.
func (s *Session) trackAdd(p *dipath.Path) {
	s.tracker.Add(p)
	if s.pathDeltaHook != nil {
		s.pathDeltaHook(true, p)
	}
}

// trackRemove is the removal twin of trackAdd.
func (s *Session) trackRemove(p *dipath.Path) {
	s.tracker.Remove(p)
	if s.pathDeltaHook != nil {
		s.pathDeltaHook(false, p)
	}
}

// setPathDeltaHook installs the engine's delta observer (nil clears).
func (s *Session) setPathDeltaHook(f func(add bool, p *dipath.Path)) { s.pathDeltaHook = f }

// bindSlot records that coloring slot holds the entry at idx — the
// reverse index the arc-incidence affected lookup resolves slots
// through.
func (s *Session) bindSlot(slot int, idx int32) {
	for len(s.slotEntry) <= slot {
		s.slotEntry = append(s.slotEntry, -1)
	}
	s.slotEntry[slot] = idx
}

// unbindSlot clears the reverse index for a slot leaving the coloring.
func (s *Session) unbindSlot(slot int) {
	if slot >= 0 && slot < len(s.slotEntry) {
		s.slotEntry[slot] = -1
	}
}

// pathCrossesFailure reports whether p traverses a currently failed
// arc. The built-in routers skip failed arcs themselves; this is the
// defensive check that keeps failure-blind strategies (UPP's unique
// routing) from lighting a path over a cut fiber.
func (s *Session) pathCrossesFailure(p *dipath.Path) bool {
	g := s.net.Topology
	if g.NumFailedArcs() == 0 {
		return false
	}
	for _, a := range p.Arcs() {
		if g.ArcFailed(a) {
			return true
		}
	}
	return false
}

// ── Fiber cuts and restoration storms ──────────────────────────────────

// FailArc cuts an arc of the session's topology and runs the
// restoration storm over the live paths that crossed it: every affected
// path is torn down, then re-admitted shortest-first — the session's
// routing strategy proposes the primary detour, and a bounded number of
// min-load retries (WithStormRetryBudget) steer around saturation the
// way the retry-alt-route admission strategy does. Paths the storm
// cannot restore under the wavelength budget are parked dark: retained
// with their id, flagged, excluded from λ/π, and revived oldest-first
// by later RestoreArc/Remove sweeps. Cutting an unknown or already-cut
// arc is an error with no state change.
func (s *Session) FailArc(a digraph.ArcID) (StormReport, error) {
	if err := s.net.Topology.FailArc(a); err != nil {
		return StormReport{}, err
	}
	s.failStats.Cuts++
	rep := s.storm(s.affectedByArc(a))
	s.promoteBestEffort()
	s.reviveDark()
	return rep, nil
}

// RestoreArc repairs a cut arc and runs the re-admission sweep: dark
// entries are revived oldest-first under the wavelength budget, and
// best-effort traffic is re-promoted when λ fits again. It returns the
// number of entries revived.
func (s *Session) RestoreArc(a digraph.ArcID) (int, error) {
	if err := s.net.Topology.RestoreArc(a); err != nil {
		return 0, err
	}
	s.failStats.Restores++
	revived := s.reviveDark()
	s.promoteBestEffort()
	return revived, nil
}

// affectedByArc returns the entry indices of the live (lit) paths
// traversing a — through the coloring state's arc incidence when it
// maintains one, by linear scan otherwise.
func (s *Session) affectedByArc(a digraph.ArcID) []int32 {
	var idxs []int32
	if inc, ok := s.coloring.(ArcIncidenceState); ok {
		inc.ForEachSlotOnArc(a, func(slot int) {
			if slot >= 0 && slot < len(s.slotEntry) {
				if idx := s.slotEntry[slot]; idx >= 0 {
					idxs = append(idxs, idx)
				}
			}
		})
		return idxs
	}
	for idx := range s.entries {
		e := &s.entries[idx]
		if !e.alive || e.dark {
			continue
		}
		for _, pa := range e.path.Arcs() {
			if pa == a {
				idxs = append(idxs, int32(idx))
				break
			}
		}
	}
	return idxs
}

// storm tears down every affected path at once (the cut killed them
// all) and restores them shortest-first, so the cheap reroutes land
// before the storm's retry budget is spent on the hard ones.
func (s *Session) storm(idxs []int32) StormReport {
	rep := StormReport{Affected: len(idxs)}
	s.failStats.Affected += len(idxs)
	for _, idx := range idxs {
		e := &s.entries[idx]
		// The slot is live by construction (affectedByArc only reports
		// lit entries), so Remove cannot fail here.
		_ = s.coloring.Remove(e.slot)
		s.unbindSlot(e.slot)
		e.slot = -1
		s.trackRemove(e.path)
	}
	sort.Slice(idxs, func(i, j int) bool {
		pi, pj := s.entries[idxs[i]].path, s.entries[idxs[j]].path
		if pi.NumArcs() != pj.NumArcs() {
			return pi.NumArcs() < pj.NumArcs()
		}
		return idxs[i] < idxs[j]
	})
	retry := s.stormRetries
	if retry < 0 {
		retry = 2 * len(idxs) // default budget: two detours per affected path
	}
	budget := retry
	for _, idx := range idxs {
		e := &s.entries[idx]
		if s.restoreEntry(idx, e, &retry) {
			rep.Restored++
			s.failStats.Restored++
		} else {
			s.park(e)
			rep.Parked++
		}
	}
	rep.Retries = budget - retry
	s.enforceBudgetLambda()
	return rep
}

// restoreEntry tries to relight one storm-affected entry: primary route
// through the session's routing strategy, then — while the storm's
// retry budget lasts — one min-load detour around the saturation that
// rejected the primary (the retry-alt-route machinery).
func (s *Session) restoreEntry(idx int32, e *sessionEntry, retry *int) bool {
	var primary *dipath.Path
	if p, err := s.routing.Route(e.req, s.tracker); err == nil && !s.pathCrossesFailure(p) {
		primary = p
		if slot, ok, cerr := s.restoreCommit(p); cerr == nil && ok {
			s.relight(idx, e, p, slot)
			return true
		}
	}
	if *retry <= 0 {
		return false
	}
	*retry--
	s.failStats.Retries++
	alt, err := s.detourRouter().MinLoadPath(e.req, s.tracker)
	if err != nil || s.pathCrossesFailure(alt) || (primary != nil && alt.Equal(primary)) {
		return false
	}
	if slot, ok, cerr := s.restoreCommit(alt); cerr == nil && ok {
		s.relight(idx, e, alt, slot)
		return true
	}
	return false
}

// restoreCommit colors p under the session's budget rules and returns
// its slot; ok=false when the budget rejects it, with the coloring
// untouched — the same admission discipline as admitCommit, minus the
// entry allocation (storms and revivals reuse the existing entry).
func (s *Session) restoreCommit(p *dipath.Path) (slot int, ok bool, err error) {
	if s.budget <= 0 {
		slot, err = s.coloring.Add(p)
		return slot, err == nil, err
	}
	if s.cycleFree && !s.rollbackProbe {
		if !s.tracker.FitsAdditional(p, s.budget) {
			return -1, false, nil
		}
		slot, err = s.coloring.Add(p)
		return slot, err == nil, err
	}
	return s.colorUnderBudget(p)
}

// relight commits p as the entry's new route: tracker, slot binding,
// path swap. The entry's live/dark counters are the caller's business.
func (s *Session) relight(idx int32, e *sessionEntry, p *dipath.Path, slot int) {
	s.trackAdd(p)
	e.path = p
	e.slot = slot
	s.bindSlot(slot, idx)
}

// detourRouter lazily builds the session-owned min-load router storms
// and revival sweeps detour through.
func (s *Session) detourRouter() *route.Router {
	if s.stormRouter == nil {
		s.stormRouter = route.NewRouter(s.net.Topology)
	}
	return s.stormRouter
}

// park flags a storm-affected entry dark: it keeps its id and its last
// route for inspection, but leaves the live set (λ, π, IDs, snapshots)
// until a revival sweep brings it back.
func (s *Session) park(e *sessionEntry) {
	e.dark = true
	s.darkSeq++
	e.darkAt = s.darkSeq
	if e.bestEffort {
		e.bestEffort = false
		s.bestEffortLive--
	}
	s.live--
	s.dark++
	s.failStats.Parked++
}

// ── Revival and promotion sweeps ───────────────────────────────────────

// reviveDark attempts to re-admit every dark entry, oldest-first, and
// returns how many came back. An entry revives when a live route exists
// (primary strategy route or a min-load detour) and passes the budget
// check; the rest stay dark for the next sweep. Runs after RestoreArc,
// after every Remove (capacity frees may unblock a dark entry), and at
// the end of a storm (paths parked by the storm free capacity an older
// dark entry may fit in).
func (s *Session) reviveDark() int {
	if s.dark == 0 {
		return 0
	}
	refs := make([]int32, 0, s.dark)
	for idx := range s.entries {
		if e := &s.entries[idx]; e.alive && e.dark {
			refs = append(refs, int32(idx))
		}
	}
	sort.Slice(refs, func(i, j int) bool {
		return s.entries[refs[i]].darkAt < s.entries[refs[j]].darkAt
	})
	revived := 0
	for _, idx := range refs {
		if s.reviveOne(idx, &s.entries[idx]) {
			revived++
		}
	}
	if revived > 0 {
		s.enforceBudgetLambda()
	}
	return revived
}

// reviveOne attempts to relight one dark entry (primary route, then a
// min-load detour — revival sweeps are off the storm's critical path,
// so the detour is not charged to a retry budget).
func (s *Session) reviveOne(idx int32, e *sessionEntry) bool {
	var primary *dipath.Path
	if p, err := s.routing.Route(e.req, s.tracker); err == nil && !s.pathCrossesFailure(p) {
		primary = p
		if slot, ok, cerr := s.restoreCommit(p); cerr == nil && ok {
			s.unpark(idx, e, p, slot)
			return true
		}
	}
	alt, err := s.detourRouter().MinLoadPath(e.req, s.tracker)
	if err != nil || s.pathCrossesFailure(alt) || (primary != nil && alt.Equal(primary)) {
		return false
	}
	if slot, ok, cerr := s.restoreCommit(alt); cerr == nil && ok {
		s.unpark(idx, e, alt, slot)
		return true
	}
	return false
}

// unpark is park's inverse: the entry rejoins the live set on p.
func (s *Session) unpark(idx int32, e *sessionEntry, p *dipath.Path, slot int) {
	e.dark = false
	e.darkAt = 0
	s.dark--
	s.live++
	s.relight(idx, e, p, slot)
	s.failStats.Revived++
}

// promoteBestEffort upgrades the degrade strategy's best-effort entries
// to committed traffic once the live assignment fits the budget again:
// λ ≥ π always, so the sweep first gates on the O(1)-amortised π and
// only then asks the coloring layer to repack under the budget. All
// best-effort entries promote together — once λ ≤ budget the invariant
// holds for the whole live set, there is no per-entry distinction left.
func (s *Session) promoteBestEffort() {
	if s.budget <= 0 || s.bestEffortLive == 0 {
		return
	}
	if s.tracker.Pi() > s.budget {
		return // λ ≥ π > budget: promotion is impossible right now
	}
	var lambda int
	if bs, ok := s.coloring.(BudgetedColoringState); ok {
		lambda = bs.EnsureAtMost(s.budget)
	} else {
		n, err := s.coloring.NumLambda()
		if err != nil {
			return
		}
		lambda = n
	}
	if lambda > s.budget {
		return
	}
	for idx := range s.entries {
		if e := &s.entries[idx]; e.alive && e.bestEffort {
			e.bestEffort = false
			s.failStats.Promoted++
		}
	}
	s.bestEffortLive = 0
}

// ── Observability ──────────────────────────────────────────────────────

// FailureStats returns the session's cumulative survivability counters.
func (s *Session) FailureStats() FailureStats { return s.failStats }

// DarkLive returns how many entries are currently parked dark.
func (s *Session) DarkLive() int { return s.dark }

// IsDark reports whether the request id is currently parked dark.
func (s *Session) IsDark(id SessionID) (bool, error) {
	e, err := s.lookup(id)
	if err != nil {
		return false, err
	}
	return e.dark, nil
}

// DarkIDs returns the dark entries' ids, oldest park first — the order
// revival sweeps process them in.
func (s *Session) DarkIDs() []SessionID {
	if s.dark == 0 {
		return nil
	}
	refs := make([]int32, 0, s.dark)
	for idx := range s.entries {
		if e := &s.entries[idx]; e.alive && e.dark {
			refs = append(refs, int32(idx))
		}
	}
	sort.Slice(refs, func(i, j int) bool {
		return s.entries[refs[i]].darkAt < s.entries[refs[j]].darkAt
	})
	ids := make([]SessionID, len(refs))
	for i, idx := range refs {
		ids[i] = packID(idx, s.entries[idx].gen)
	}
	return ids
}
