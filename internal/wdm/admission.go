package wdm

import (
	"errors"
	"fmt"
	"sort"

	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/load"
	"wavedag/internal/route"
)

// ErrBudgetExceeded is the sentinel wrapped by Add (and surfaced in
// ApplyBatch results) when a request is rejected because provisioning
// it would exceed the session's wavelength budget. TryAdd reports the
// same outcome as a non-error Admission{Accepted: false}, which is the
// API blocking-probability workloads should drive.
var ErrBudgetExceeded = errors.New("wdm: wavelength budget exceeded")

// Admission is the outcome of one budgeted admission decision.
type Admission struct {
	Accepted   bool
	BestEffort bool // accepted past the budget by the degrade strategy
	Retried    bool // accepted on an alternate route, not the strategy's first choice
}

// AdmissionStats counts a session's admission outcomes. Requests counts
// the Add/TryAdd offers that reached admission — offers that failed
// routing (no route) error out earlier and are not counted; reroutes
// are not offers. Accepted + Rejected = Requests except for offers that
// errored during commit (counted in Requests with neither outcome).
// BestEffort and Retried subdivide Accepted.
type AdmissionStats struct {
	Requests   int
	Accepted   int
	Rejected   int
	BestEffort int
	Retried    int
}

// AdmissionStrategy decides the fate of requests whose routed path
// failed a session's wavelength-budget check. Like the routing and
// coloring strategies it is a registry-named factory: NewState builds
// per-session state (e.g. an alternate-route router) bound to the
// topology. The built-ins are "reject" (drop over-budget requests),
// "retry-alt-route" (re-ask a min-load router for a path around the
// saturated arcs) and "degrade" (accept past the budget as best-effort
// and report those separately).
type AdmissionStrategy interface {
	// Name is the registry key; it must be non-empty and unique.
	Name() string
	// NewState builds admission state bound to g.
	NewState(g *digraph.Digraph) (AdmissionState, error)
}

// AdmissionState is per-session admission state. Admit is called with a
// context wrapping the over-budget request; it may commit an alternate
// path (budget-checked) or the original one best-effort, and returns
// the decision. Returning Admission{} (not accepted) rejects.
type AdmissionState interface {
	Admit(c *AdmissionContext) (SessionID, Admission, error)
}

// AdmissionContext is the controlled session view an AdmissionState
// works through: the rejected request and its routed path, read access
// to the live loads, and the two commit doors (budget-checked and
// best-effort). The id returned by a successful commit is the one the
// strategy must hand back from Admit.
type AdmissionContext struct {
	s    *Session
	req  route.Request
	path *dipath.Path
}

// Request returns the request under admission.
func (c *AdmissionContext) Request() route.Request { return c.req }

// Path returns the routed path that failed the budget check.
func (c *AdmissionContext) Path() *dipath.Path { return c.path }

// Budget returns the session's wavelength budget.
func (c *AdmissionContext) Budget() int { return c.s.budget }

// Loads returns the session's live load tracker. Strategies must treat
// it as read-only — the session accounts committed paths itself.
func (c *AdmissionContext) Loads() *load.Tracker { return c.s.tracker }

// Commit runs the budget check on p (which must satisfy the request)
// and, when it passes, inserts p into the session. ok reports whether
// the path was admitted; on ok=false the session is untouched.
func (c *AdmissionContext) Commit(p *dipath.Path) (id SessionID, ok bool, err error) {
	return c.s.admitCommit(c.req, p)
}

// CommitBestEffort inserts p unconditionally, flagged best-effort: it
// occupies wavelengths and load like any other path but is reported
// separately, and the session's λ ≤ budget invariant is suspended while
// any best-effort request is live.
func (c *AdmissionContext) CommitBestEffort(p *dipath.Path) (SessionID, error) {
	return c.s.commitPath(c.req, p, true)
}

// ── Registry ───────────────────────────────────────────────────────────

// Names of the built-in admission strategies.
//
//wavedag:registry RegisterAdmissionStrategy
const (
	AdmissionReject        = "reject"
	AdmissionRetryAltRoute = "retry-alt-route"
	AdmissionDegrade       = "degrade"
)

var admissionStrategies = map[string]AdmissionStrategy{}

// RegisterAdmissionStrategy adds s to the admission registry;
// registering a nil strategy, an empty name, or a duplicate name fails.
func RegisterAdmissionStrategy(s AdmissionStrategy) error {
	if s == nil || s.Name() == "" {
		return fmt.Errorf("wdm: admission strategy must be non-nil with a non-empty name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := admissionStrategies[s.Name()]; dup {
		return fmt.Errorf("wdm: admission strategy %q already registered", s.Name())
	}
	admissionStrategies[s.Name()] = s
	return nil
}

// LookupAdmissionStrategy returns the registered admission strategy
// named name.
func LookupAdmissionStrategy(name string) (AdmissionStrategy, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := admissionStrategies[name]
	return s, ok
}

// AdmissionStrategyNames returns the registered admission strategy
// names, sorted.
func AdmissionStrategyNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(admissionStrategies))
	for n := range admissionStrategies {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	for _, s := range []AdmissionStrategy{
		rejectStrategy{}, retryAltRouteStrategy{}, degradeStrategy{},
	} {
		if err := RegisterAdmissionStrategy(s); err != nil {
			panic(err)
		}
	}
}

// ── Built-in admission strategies ──────────────────────────────────────

// rejectStrategy drops over-budget requests outright — the default, and
// the strategy blocking-probability experiments measure.
type rejectStrategy struct{}

func (rejectStrategy) Name() string { return AdmissionReject }

func (rejectStrategy) NewState(*digraph.Digraph) (AdmissionState, error) {
	return rejectState{}, nil
}

type rejectState struct{}

func (rejectState) Admit(*AdmissionContext) (SessionID, Admission, error) {
	return 0, Admission{}, nil
}

// retryAltRouteStrategy re-asks its own min-load router for a path that
// steers around the saturated arcs: when the strategy's first route is
// over budget but a longer detour still fits, the request is recovered
// instead of blocked. It owns a route.Router exactly like the min-load
// routing strategy does.
type retryAltRouteStrategy struct{}

func (retryAltRouteStrategy) Name() string { return AdmissionRetryAltRoute }

func (retryAltRouteStrategy) NewState(g *digraph.Digraph) (AdmissionState, error) {
	return &retryAltRouteState{r: route.NewRouter(g)}, nil
}

type retryAltRouteState struct{ r *route.Router }

func (st *retryAltRouteState) Admit(c *AdmissionContext) (SessionID, Admission, error) {
	alt, err := st.r.MinLoadPath(c.Request(), c.Loads())
	if err != nil {
		return 0, Admission{}, nil // no alternative exists: reject
	}
	if alt.Equal(c.Path()) {
		return 0, Admission{}, nil // the rejected path is already load-optimal
	}
	id, ok, err := c.Commit(alt)
	if err != nil {
		return 0, Admission{}, err
	}
	if !ok {
		return 0, Admission{}, nil
	}
	return id, Admission{Accepted: true, Retried: true}, nil
}

// degradeStrategy accepts over-budget requests as best-effort traffic:
// they are provisioned normally (wavelengths, load, conflicts) but
// counted separately, so a capacity planner can see exactly how much
// traffic rides past the budget. While best-effort requests are live
// the session's λ ≤ budget invariant is suspended.
type degradeStrategy struct{}

func (degradeStrategy) Name() string { return AdmissionDegrade }

func (degradeStrategy) NewState(*digraph.Digraph) (AdmissionState, error) {
	return degradeState{}, nil
}

type degradeState struct{}

func (degradeState) Admit(c *AdmissionContext) (SessionID, Admission, error) {
	id, err := c.CommitBestEffort(c.Path())
	if err != nil {
		return 0, Admission{}, err
	}
	return id, Admission{Accepted: true, BestEffort: true}, nil
}

// ── Coloring-layer budget hooks ────────────────────────────────────────

// BudgetedColoringState is the optional ColoringState extension the
// budget admission path uses. AddUnderLimit is the general-DAG
// color-then-rollback probe: insert p only if it can take a wavelength
// below limit (one palette repack allowed), leaving the admitted family
// untouched on rejection. EnsureAtMost restores λ ≤ limit after a
// Theorem-1-admitted mutation when the incremental assignment drifted
// above it. States that do not implement the interface get a generic
// add-measure-rollback probe and no drift enforcement (a deferred
// strategy recomputes from scratch at materialisation anyway).
type BudgetedColoringState interface {
	AddUnderLimit(p *dipath.Path, limit int) (slot int, ok bool, err error)
	EnsureAtMost(limit int) int
}
