package wdm

import (
	"testing"

	"wavedag/internal/check"
	"wavedag/internal/core"
	"wavedag/internal/digraph"
	"wavedag/internal/gen"
	"wavedag/internal/route"
)

func testNetwork() *Network {
	// An internal-cycle-free backbone: layered feeder into a spine.
	g, err := gen.RandomNoInternalCycleDAG(15, 4, 4, 0.3, 11)
	if err != nil {
		panic(err)
	}
	return &Network{Topology: g, Wavelengths: 16}
}

func someRequests(n *Network, count int) []route.Request {
	reqs := route.AllToAll(n.Topology)
	if len(reqs) > count {
		reqs = reqs[:count]
	}
	return reqs
}

func TestProvisionShortest(t *testing.T) {
	n := testNetwork()
	reqs := someRequests(n, 30)
	p, err := n.Provision(reqs, RouteShortest)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Paths) != len(reqs) || len(p.Wavelengths) != len(reqs) {
		t.Fatalf("sizes: %d paths, %d wavelengths", len(p.Paths), len(p.Wavelengths))
	}
	if err := check.Coloring(n.Topology, p.Paths, p.Wavelengths); err != nil {
		t.Fatal(err)
	}
	// The backbone is internal-cycle-free: Theorem 1 must apply and give
	// exactly π wavelengths.
	if p.Method != core.MethodTheorem1 {
		t.Fatalf("method = %s, want theorem1", p.Method)
	}
	if p.Pi >= 1 && p.NumLambda != p.Pi {
		t.Fatalf("λ = %d, π = %d", p.NumLambda, p.Pi)
	}
	// ADMs count distinct (endpoint, wavelength) terminations: never
	// more than two per lightpath, and at least one per wavelength in a
	// non-empty provisioning.
	if p.ADMs > 2*len(reqs) || p.ADMs < p.NumLambda {
		t.Fatalf("ADMs = %d out of range (%d requests, λ=%d)", p.ADMs, len(reqs), p.NumLambda)
	}
}

func TestProvisionMinLoadNeverWorse(t *testing.T) {
	n := testNetwork()
	reqs := someRequests(n, 40)
	short, err := n.Provision(reqs, RouteShortest)
	if err != nil {
		t.Fatal(err)
	}
	balanced, err := n.Provision(reqs, RouteMinLoad)
	if err != nil {
		t.Fatal(err)
	}
	if balanced.Pi > short.Pi {
		t.Fatalf("min-load routing increased the load: %d > %d", balanced.Pi, short.Pi)
	}
	if err := check.Coloring(n.Topology, balanced.Paths, balanced.Wavelengths); err != nil {
		t.Fatal(err)
	}
}

func TestProvisionUPP(t *testing.T) {
	g, _ := gen.Havet()
	n := &Network{Topology: g, Wavelengths: 8}
	reqs := []route.Request{{Src: 0, Dst: 3}, {Src: 0, Dst: 7}, {Src: 4, Dst: 3}}
	p, err := n.Provision(reqs, RouteUPP)
	if err != nil {
		t.Fatal(err)
	}
	if p.Method != core.MethodTheorem6 {
		t.Fatalf("method = %s, want theorem6", p.Method)
	}
	if err := check.WavelengthsWithinBound(g, p.Paths, p.Wavelengths, 4, 3); err != nil {
		t.Fatal(err)
	}
}

func TestProvisionFeasibility(t *testing.T) {
	g := digraph.New(3)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 2)
	n := &Network{Topology: g, Wavelengths: 2}
	reqs := []route.Request{{Src: 0, Dst: 2}, {Src: 0, Dst: 2}, {Src: 0, Dst: 2}}
	p, err := n.Provision(reqs, RouteShortest)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumLambda != 3 || p.Feasible {
		t.Fatalf("3 stacked lightpaths on W=2 must be infeasible: λ=%d feasible=%v", p.NumLambda, p.Feasible)
	}
	n.Wavelengths = 0 // unlimited
	p, err = n.Provision(reqs, RouteShortest)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Feasible {
		t.Fatal("unlimited capacity must be feasible")
	}
}

func TestProvisionErrors(t *testing.T) {
	n := testNetwork()
	if _, err := n.Provision([]route.Request{{Src: -1, Dst: 0}}, RouteShortest); err == nil {
		t.Fatal("bad request accepted")
	}
	if _, err := n.Provision(nil, RoutingPolicy(99)); err == nil {
		t.Fatal("unknown policy accepted")
	}
	if RoutingPolicy(99).String() == "" || RouteShortest.String() != "shortest" ||
		RouteMinLoad.String() != "min-load" || RouteUPP.String() != "upp" {
		t.Fatal("policy names wrong")
	}
}

func TestUtilization(t *testing.T) {
	g := digraph.New(3)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 2)
	n := &Network{Topology: g, Wavelengths: 4}
	p, err := n.Provision([]route.Request{{Src: 0, Dst: 2}, {Src: 0, Dst: 1}}, RouteShortest)
	if err != nil {
		t.Fatal(err)
	}
	util := n.Utilization(p)
	if util[0] != 0.5 || util[1] != 0.25 {
		t.Fatalf("utilization = %v", util)
	}
	// Unlimited capacity divides by λ used.
	n.Wavelengths = 0
	util = n.Utilization(p)
	if util[0] != 1.0 {
		t.Fatalf("utilization = %v", util)
	}
}

func TestLambdaPlanArcDisjoint(t *testing.T) {
	n := testNetwork()
	p, err := n.Provision(someRequests(n, 25), RouteShortest)
	if err != nil {
		t.Fatal(err)
	}
	for lambda := 0; lambda < p.NumLambda; lambda++ {
		plan := LambdaPlan(n.Topology, p, lambda)
		// Count total arc usages of this wavelength; any arc counted twice
		// would be a conflict.
		usage := 0
		for i, path := range p.Paths {
			if p.Wavelengths[i] == lambda {
				usage += path.NumArcs()
			}
		}
		if usage != len(plan) {
			t.Fatalf("λ%d: %d arc usages but %d distinct arcs — conflict", lambda, usage, len(plan))
		}
	}
}

// TestADMsSharedTerminations is the regression test for the ADM count:
// two lightpaths chaining through a node on the same wavelength share
// the ADM there, so the total is 3, not the flat 2·|family| = 4.
func TestADMsSharedTerminations(t *testing.T) {
	g := digraph.New(3)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 2)
	n := &Network{Topology: g}
	p, err := n.Provision([]route.Request{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}}, RouteShortest)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumLambda != 1 {
		t.Fatalf("arc-disjoint chain should fit one wavelength, got %d", p.NumLambda)
	}
	if p.ADMs != 3 {
		t.Fatalf("ADMs = %d, want 3 (shared termination at the chain vertex)", p.ADMs)
	}
	// The same two paths on different wavelengths would need 4 ADMs:
	// stack a third conflicting request to force a second wavelength and
	// recount. The conflicting copies of 0->1 use 2 wavelengths, so node
	// 0 and node 1 each carry 2 ADM terminations for them.
	p, err = n.Provision([]route.Request{{Src: 0, Dst: 1}, {Src: 0, Dst: 1}}, RouteShortest)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumLambda != 2 || p.ADMs != 4 {
		t.Fatalf("two stacked lightpaths: λ=%d ADMs=%d, want 2 and 4", p.NumLambda, p.ADMs)
	}
}

// TestStrategyRegistry checks the policy constants resolve through the
// registry and the registry rejects bad registrations.
func TestStrategyRegistry(t *testing.T) {
	for _, p := range []RoutingPolicy{RouteShortest, RouteMinLoad, RouteUPP} {
		s, err := p.Strategy()
		if err != nil {
			t.Fatalf("policy %v not registered: %v", p, err)
		}
		if s.Name() != p.String() {
			t.Fatalf("policy %v resolved to strategy %q", p, s.Name())
		}
	}
	if _, err := RoutingPolicy(99).Strategy(); err == nil {
		t.Fatal("unknown policy resolved")
	}
	if err := RegisterRoutingStrategy(nil); err == nil {
		t.Fatal("nil strategy registered")
	}
	if err := RegisterRoutingStrategy(shortestStrategy{}); err == nil {
		t.Fatal("duplicate strategy registered")
	}
	if err := RegisterColoringStrategy(fullColoring{}); err == nil {
		t.Fatal("duplicate coloring strategy registered")
	}
	for _, name := range []string{ColoringIncremental, ColoringFull} {
		if _, ok := LookupColoringStrategy(name); !ok {
			t.Fatalf("built-in coloring strategy %q missing", name)
		}
	}
	if names := RoutingStrategyNames(); len(names) < 3 {
		t.Fatalf("routing strategy names: %v", names)
	}
	if names := ColoringStrategyNames(); len(names) < 2 {
		t.Fatalf("coloring strategy names: %v", names)
	}
}
