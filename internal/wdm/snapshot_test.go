package wdm

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"wavedag/internal/digraph"
	"wavedag/internal/route"
)

// Tests for the lock-free query plane (snapshot.go): the consistency
// contract between snapshots and the ...Strong reads, sequence-number
// monotonicity, staleness bounds, pin-based buffer lifetime, the
// post-Close behaviour, the zero-allocation guarantees, and a reader
// storm racing a writer through batches, fiber cuts and Close.

// checkSnapshotAgainstStrong asserts, under quiescence, that the
// current snapshot agrees with every mutex-serialised strong read —
// scalars, stats, the load vector, and per-id Path/Wavelength/IsDark
// over ids (live, removed and stale ones alike).
func checkSnapshotAgainstStrong(t *testing.T, eng *ShardedEngine, ids []ShardedID) {
	t.Helper()
	s := eng.Snapshot()
	defer s.Release()
	if got, want := s.Len(), eng.LenStrong(); got != want {
		t.Fatalf("snapshot Len = %d, strong %d", got, want)
	}
	if got, want := s.Pi(), eng.PiStrong(); got != want {
		t.Fatalf("snapshot Pi = %d, strong %d", got, want)
	}
	if got, want := s.DarkLive(), eng.DarkLiveStrong(); got != want {
		t.Fatalf("snapshot DarkLive = %d, strong %d", got, want)
	}
	gl, gerr := s.NumLambda()
	wl, werr := eng.NumLambdaStrong()
	if (gerr == nil) != (werr == nil) || gl != wl {
		t.Fatalf("snapshot NumLambda = %d (%v), strong %d (%v)", gl, gerr, wl, werr)
	}
	go1, _ := s.OverlayLambda()
	wo1, _ := eng.OverlayLambdaStrong()
	if go1 != wo1 {
		t.Fatalf("snapshot OverlayLambda = %d, strong %d", go1, wo1)
	}
	if got, want := s.Stats(), eng.StatsStrong(); got != want {
		t.Fatalf("snapshot Stats = %+v, strong %+v", got, want)
	}
	gotLoads := s.ArcLoads()
	wantLoads := eng.ArcLoadsStrong()
	if len(gotLoads) != len(wantLoads) {
		t.Fatalf("snapshot ArcLoads len = %d, strong %d", len(gotLoads), len(wantLoads))
	}
	for a := range gotLoads {
		if gotLoads[a] != wantLoads[a] {
			t.Fatalf("snapshot ArcLoads[%d] = %d, strong %d", a, gotLoads[a], wantLoads[a])
		}
	}
	// Engine-level lock-free reads answer from the same snapshot.
	if eng.Len() != s.Len() || eng.Pi() != s.Pi() {
		t.Fatalf("engine lock-free reads disagree with pinned snapshot under quiescence")
	}
	for _, id := range ids {
		gp, gerr := s.Path(id)
		wp, werr := eng.PathStrong(id)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("id %v: snapshot Path err %v, strong err %v", id, gerr, werr)
		}
		if gerr != nil {
			if !errors.Is(gerr, ErrUnknownSession) {
				t.Fatalf("id %v: snapshot Path err %v, want ErrUnknownSession", id, gerr)
			}
			continue
		}
		if !gp.Equal(wp) {
			t.Fatalf("id %v: snapshot Path %v, strong %v", id, gp, wp)
		}
		gw, _ := s.Wavelength(id)
		ww, _ := eng.WavelengthStrong(id)
		if gw != ww {
			t.Fatalf("id %v: snapshot Wavelength %d, strong %d", id, gw, ww)
		}
		gd, _ := s.IsDark(id)
		wd, _ := eng.IsDarkStrong(id)
		if gd != wd {
			t.Fatalf("id %v: snapshot IsDark %v, strong %v", id, gd, wd)
		}
	}
}

// TestSnapshotConsistencyContract drives batches (and a fiber-cut /
// restore / revive cycle) through a plain multi-component engine and a
// two-level giant-component engine, asserting after every boundary that
// the published snapshot is internally consistent with the strong
// reads and that the sequence number strictly increases.
func TestSnapshotConsistencyContract(t *testing.T) {
	cases := []struct {
		name  string
		net   *Network
		build func(*Network) (*ShardedEngine, error)
	}{
		{
			name: "plain",
			net:  multiComponentNetwork(t, 4, 901),
			build: func(n *Network) (*ShardedEngine, error) {
				return n.NewShardedEngine(WithShardWorkers(4))
			},
		},
		{
			name: "two-level",
			net:  giantComponentNetwork(t, 4, 902),
			build: func(n *Network) (*ShardedEngine, error) {
				return n.NewShardedEngine(WithShardWorkers(4), WithSubshardThreshold(8))
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			eng, err := tc.build(tc.net)
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			pool := route.NewRouter(tc.net.Topology).AllToAll()
			rng := rand.New(rand.NewSource(11))
			var ids []ShardedID
			lastSeq := func() uint64 {
				s := eng.Snapshot()
				defer s.Release()
				return s.Seq()
			}()
			batches := 25
			if testing.Short() {
				batches = 8
			}
			for batch := 0; batch < batches; batch++ {
				ops := make([]BatchOp, 0, 24)
				for k := 0; k < 24; k++ {
					if len(ids) > 40 && rng.Intn(3) == 0 {
						ops = append(ops, RemoveOp(ids[rng.Intn(len(ids))]))
					} else {
						ops = append(ops, AddOp(pool[rng.Intn(len(pool))]))
					}
				}
				for _, res := range eng.ApplyBatch(ops) {
					if res.Err == nil && res.ID != (ShardedID{}) {
						ids = append(ids, res.ID)
					}
				}
				if seq := lastSeqOf(eng); seq <= lastSeq {
					t.Fatalf("batch %d: snapshot seq %d did not advance past %d", batch, seq, lastSeq)
				} else {
					lastSeq = seq
				}
				// Staleness ≤ one batch: everything ApplyBatch returned is
				// already visible, and the snapshot equals the strong reads.
				checkSnapshotAgainstStrong(t, eng, ids)

				if batch == batches/2 {
					cut := digraph.ArcID(rng.Intn(tc.net.Topology.NumArcs()))
					if _, err := eng.FailArc(cut); err != nil {
						t.Fatalf("FailArc: %v", err)
					}
					checkSnapshotAgainstStrong(t, eng, ids)
					if _, err := eng.RestoreArc(cut); err != nil {
						t.Fatalf("RestoreArc: %v", err)
					}
					if _, err := eng.Revive(); err != nil {
						t.Fatalf("Revive: %v", err)
					}
					if seq := lastSeqOf(eng); seq < lastSeq+3 {
						t.Fatalf("failure events did not publish (seq %d after %d)", seq, lastSeq)
					} else {
						lastSeq = seq
					}
					checkSnapshotAgainstStrong(t, eng, ids)
				}
			}
			if err := eng.Verify(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func lastSeqOf(eng *ShardedEngine) uint64 {
	s := eng.Snapshot()
	defer s.Release()
	return s.Seq()
}

// TestSnapshotPinnedAcrossChurn pins one snapshot, then churns the
// engine hard enough that its buffers would be recycled were it not
// pinned: the pinned view must keep answering with its original,
// boundary-consistent values, however stale.
func TestSnapshotPinnedAcrossChurn(t *testing.T) {
	net := giantComponentNetwork(t, 3, 331)
	eng, err := net.NewShardedEngine(WithShardWorkers(4), WithSubshardThreshold(8))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	pool := route.NewRouter(net.Topology).AllToAll()
	rng := rand.New(rand.NewSource(17))
	var ids []ShardedID
	for i := 0; i < 80; i++ {
		if id, err := eng.Add(pool[rng.Intn(len(pool))]); err == nil {
			ids = append(ids, id)
		}
	}
	pinned := eng.Snapshot()
	defer pinned.Release()
	wantSeq := pinned.Seq()
	wantLen := pinned.Len()
	wantLoads := pinned.ArcLoads()
	probe := ids[rng.Intn(len(ids))]
	wantPath, err := pinned.Path(probe)
	if err != nil {
		t.Fatal(err)
	}
	wantW, _ := pinned.Wavelength(probe)

	// Churn: removals (the probe id included), adds, cuts and restores.
	if err := eng.Remove(probe); err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 30; batch++ {
		ops := make([]BatchOp, 0, 20)
		for k := 0; k < 20; k++ {
			if len(ids) > 20 && rng.Intn(2) == 0 {
				j := rng.Intn(len(ids))
				ops = append(ops, RemoveOp(ids[j]))
			} else {
				ops = append(ops, AddOp(pool[rng.Intn(len(pool))]))
			}
		}
		for _, res := range eng.ApplyBatch(ops) {
			if res.Err == nil && res.ID != (ShardedID{}) {
				ids = append(ids, res.ID)
			}
		}
	}
	cut := digraph.ArcID(rng.Intn(net.Topology.NumArcs()))
	if _, err := eng.FailArc(cut); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RestoreArc(cut); err != nil {
		t.Fatal(err)
	}

	if pinned.Seq() != wantSeq || pinned.Len() != wantLen {
		t.Fatalf("pinned snapshot drifted: seq %d→%d, len %d→%d",
			wantSeq, pinned.Seq(), wantLen, pinned.Len())
	}
	gotLoads := pinned.ArcLoads()
	for a := range wantLoads {
		if gotLoads[a] != wantLoads[a] {
			t.Fatalf("pinned ArcLoads[%d] drifted %d→%d", a, wantLoads[a], gotLoads[a])
		}
	}
	gotPath, err := pinned.Path(probe)
	if err != nil {
		t.Fatalf("pinned Path(removed id): %v", err)
	}
	if !gotPath.Equal(wantPath) {
		t.Fatalf("pinned Path drifted: %v → %v", wantPath, gotPath)
	}
	if w, _ := pinned.Wavelength(probe); w != wantW {
		t.Fatalf("pinned Wavelength drifted %d→%d", wantW, w)
	}
	// The live engine, meanwhile, has moved on.
	if _, err := eng.Path(probe); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("live Path(removed id) = %v, want ErrUnknownSession", err)
	}
}

// TestSnapshotPostClose freezes an engine and checks the lock-free
// reads keep answering from the final published snapshot, with Closed
// reported and mutations rejected.
func TestSnapshotPostClose(t *testing.T) {
	net := multiComponentNetwork(t, 3, 71)
	eng, err := net.NewShardedEngine(WithShardWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	pool := route.NewRouter(net.Topology).AllToAll()
	var ids []ShardedID
	for i := 0; i < 20; i++ {
		if id, err := eng.Add(pool[i%len(pool)]); err == nil {
			ids = append(ids, id)
		}
	}
	wantLen := eng.Len()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	s := eng.Snapshot()
	defer s.Release()
	if !s.Closed() {
		t.Fatal("snapshot after Close does not report Closed")
	}
	if eng.Len() != wantLen || s.Len() != wantLen {
		t.Fatalf("post-Close Len = %d (snapshot %d), want %d", eng.Len(), s.Len(), wantLen)
	}
	if _, err := eng.Path(ids[0]); err != nil {
		t.Fatalf("post-Close Path: %v", err)
	}
	if loads := eng.ArcLoads(); len(loads) != net.Topology.NumArcs() {
		t.Fatalf("post-Close ArcLoads len = %d", len(loads))
	}
	seq := s.Seq()
	if _, err := eng.Add(pool[0]); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("Add after Close: %v", err)
	}
	if lastSeqOf(eng) != seq {
		t.Fatal("rejected mutation advanced the snapshot sequence")
	}
}

// TestSnapshotQueryAllocs pins the zero-allocation guarantee of the
// hot query path: scalar reads and buffer-reusing loads must not
// allocate at all, and ArcLoads at most once (the returned copy).
func TestSnapshotQueryAllocs(t *testing.T) {
	net := multiComponentNetwork(t, 4, 411)
	eng, err := net.NewShardedEngine(WithShardWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	pool := route.NewRouter(net.Topology).AllToAll()
	var ids []ShardedID
	for i := 0; i < 60; i++ {
		if id, err := eng.Add(pool[i%len(pool)]); err == nil {
			ids = append(ids, id)
		}
	}
	id := ids[len(ids)/2]
	buf := eng.ArcLoadsInto(nil)
	var sink int
	assertZero := func(name string, f func()) {
		t.Helper()
		if a := testing.AllocsPerRun(200, f); a > 0 {
			t.Errorf("%s allocates %.1f per op, want 0", name, a)
		}
	}
	assertZero("Stats", func() { sink += eng.Stats().Components })
	assertZero("Len", func() { sink += eng.Len() })
	assertZero("Pi", func() { sink += eng.Pi() })
	assertZero("NumLambda", func() { n, _ := eng.NumLambda(); sink += n })
	assertZero("DarkLive", func() { sink += eng.DarkLive() })
	assertZero("NumFailedArcs", func() { sink += eng.NumFailedArcs() })
	assertZero("Wavelength", func() { w, _ := eng.Wavelength(id); sink += w })
	assertZero("IsDark", func() { d, _ := eng.IsDark(id); _ = d })
	assertZero("ArcLoadsInto", func() { buf = eng.ArcLoadsInto(buf); sink += buf[0] })
	assertZero("Snapshot+Release", func() { s := eng.Snapshot(); sink += s.Len(); s.Release() })
	if a := testing.AllocsPerRun(200, func() { sink += len(eng.ArcLoads()) }); a > 1 {
		t.Errorf("ArcLoads allocates %.1f per op, want <= 1", a)
	}
	_ = sink
}

// TestSnapshotRaceStress storms the lock-free read API from four
// reader goroutines while one writer runs batches, fiber cuts,
// restores, a revive sweep, and finally Close. Run under -race (CI runs
// -cpu=1,4); readers additionally check per-goroutine sequence
// monotonicity and that post-Close reads answer from the last
// snapshot.
func TestSnapshotRaceStress(t *testing.T) {
	net := giantComponentNetwork(t, 3, 553)
	eng, err := net.NewShardedEngine(WithShardWorkers(4), WithSubshardThreshold(8))
	if err != nil {
		t.Fatal(err)
	}
	pool := route.NewRouter(net.Topology).AllToAll()
	rng := rand.New(rand.NewSource(29))

	// Pre-fill a shared, read-only id set the readers probe; the writer
	// removes and re-adds ids beyond it, so lookups hit live, removed
	// and stale generations alike.
	var probeIDs []ShardedID
	for i := 0; i < 60; i++ {
		if id, err := eng.Add(pool[rng.Intn(len(pool))]); err == nil {
			probeIDs = append(probeIDs, id)
		}
	}

	var closed atomic.Bool
	var wg sync.WaitGroup
	errc := make(chan error, 8)

	const readers = 4
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7000 + r)))
			var buf []int
			var lastSeq uint64
			readRound := func() bool {
				s := eng.Snapshot()
				if s.Seq() < lastSeq {
					errc <- errors.New("snapshot sequence went backwards")
					s.Release()
					return false
				}
				lastSeq = s.Seq()
				stats := s.Stats()
				if s.Len() < 0 || s.Pi() < 0 || stats.Components == 0 {
					errc <- errors.New("implausible snapshot scalars")
					s.Release()
					return false
				}
				buf = s.ArcLoadsInto(buf)
				s.Release()
				_ = eng.Stats()
				_ = eng.Pi()
				_ = eng.Len()
				_ = eng.DarkLive()
				_ = eng.NumFailedArcs()
				if _, err := eng.NumLambda(); err != nil {
					errc <- err
					return false
				}
				buf = eng.ArcLoadsInto(buf)
				id := probeIDs[rng.Intn(len(probeIDs))]
				if _, err := eng.Path(id); err != nil && !errors.Is(err, ErrUnknownSession) {
					errc <- err
					return false
				}
				if _, err := eng.Wavelength(id); err != nil && !errors.Is(err, ErrUnknownSession) {
					errc <- err
					return false
				}
				if _, err := eng.IsDark(id); err != nil && !errors.Is(err, ErrUnknownSession) {
					errc <- err
					return false
				}
				return true
			}
			for !closed.Load() {
				if !readRound() {
					return
				}
			}
			// Post-Close: the last published snapshot still answers.
			if !readRound() {
				return
			}
			s := eng.Snapshot()
			if !s.Closed() {
				errc <- errors.New("post-Close snapshot does not report Closed")
			}
			s.Release()
		}(r)
	}

	// Writer: batch churn with interleaved cuts/restores, then Close.
	iters := 40
	if testing.Short() {
		iters = 12
	}
	var mine []ShardedID
	var cut digraph.ArcID = -1
	for it := 0; it < iters; it++ {
		ops := make([]BatchOp, 0, 2*serialBatchThreshold)
		nRemove := 0
		for k := 0; k < cap(ops); k++ {
			if nRemove < len(mine) && rng.Intn(3) == 0 {
				ops = append(ops, RemoveOp(mine[nRemove]))
				nRemove++
			} else if len(probeIDs) > 0 && rng.Intn(8) == 0 {
				ops = append(ops, RemoveOp(probeIDs[rng.Intn(len(probeIDs))]))
			} else {
				ops = append(ops, AddOp(pool[rng.Intn(len(pool))]))
			}
		}
		mine = mine[nRemove:]
		for i, res := range eng.ApplyBatch(ops) {
			// Adds may legitimately fail while an arc is cut (no live
			// route); removals of probe ids may race earlier removals.
			if res.Err == nil && ops[i].Kind == BatchAdd {
				mine = append(mine, res.ID)
			}
		}
		switch {
		case it%5 == 2 && cut < 0:
			a := digraph.ArcID(rng.Intn(net.Topology.NumArcs()))
			if _, err := eng.FailArc(a); err == nil {
				cut = a
			}
		case it%5 == 4 && cut >= 0:
			if _, err := eng.RestoreArc(cut); err != nil {
				t.Errorf("RestoreArc: %v", err)
			}
			cut = -1
			if _, err := eng.Revive(); err != nil {
				t.Errorf("Revive: %v", err)
			}
		}
	}
	if err := eng.Close(); err != nil {
		t.Error(err)
	}
	closed.Store(true)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// BenchmarkSnapshotQuery measures the hot lock-free queries; run with
// -benchmem to see the ≤1 alloc/op guarantee (0 for everything but the
// copying ArcLoads).
func BenchmarkSnapshotQuery(b *testing.B) {
	net := multiComponentNetwork(b, 4, 411)
	eng, err := net.NewShardedEngine(WithShardWorkers(2))
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	pool := route.NewRouter(net.Topology).AllToAll()
	var ids []ShardedID
	for i := 0; i < 60; i++ {
		if id, err := eng.Add(pool[i%len(pool)]); err == nil {
			ids = append(ids, id)
		}
	}
	id := ids[len(ids)/2]
	b.Run("stats", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = eng.Stats()
		}
	})
	b.Run("arcloadsinto", func(b *testing.B) {
		b.ReportAllocs()
		buf := eng.ArcLoadsInto(nil)
		for i := 0; i < b.N; i++ {
			buf = eng.ArcLoadsInto(buf)
		}
	})
	b.Run("wavelength", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _ = eng.Wavelength(id)
		}
	})
	b.Run("stats-strong", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = eng.StatsStrong()
		}
	})
}

// BenchmarkSnapshotReaders is the in-package smoke version of the
// cmd/bench query-plane driver: four readers hammer the engine while
// the benchmark loop applies batches, in snapshot (lock-free) and
// mutex (...Strong) modes.
func BenchmarkSnapshotReaders(b *testing.B) {
	for _, mode := range []string{"snapshot", "mutex"} {
		b.Run(mode, func(b *testing.B) {
			net := multiComponentNetwork(b, 4, 411)
			eng, err := net.NewShardedEngine(WithShardWorkers(2))
			if err != nil {
				b.Fatal(err)
			}
			defer eng.Close()
			pool := route.NewRouter(net.Topology).AllToAll()
			var ids []ShardedID
			for i := 0; i < 60; i++ {
				if id, err := eng.Add(pool[i%len(pool)]); err == nil {
					ids = append(ids, id)
				}
			}
			done := make(chan struct{})
			var wg sync.WaitGroup
			var reads atomic.Int64
			for r := 0; r < 4; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					var buf []int
					n := int64(0)
					for i := 0; ; i++ {
						select {
						case <-done:
							reads.Add(n)
							return
						default:
						}
						id := ids[i%len(ids)]
						if mode == "snapshot" {
							_ = eng.Stats()
							buf = eng.ArcLoadsInto(buf)
							_, _ = eng.Wavelength(id)
						} else {
							_ = eng.StatsStrong()
							buf = eng.ArcLoadsStrong()
							_, _ = eng.WavelengthStrong(id)
						}
						n += 3
					}
				}(r)
			}
			ops := make([]BatchOp, 0, 32)
			results := make([]BatchResult, 0, 32)
			rng := rand.New(rand.NewSource(5))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ops = ops[:0]
				for k := 0; k < 32; k++ {
					ops = append(ops, AddOp(pool[rng.Intn(len(pool))]))
				}
				results = eng.ApplyBatchInto(ops, results)
				ops = ops[:0]
				for _, res := range results {
					if res.Err == nil {
						ops = append(ops, RemoveOp(res.ID))
					}
				}
				results = eng.ApplyBatchInto(ops, results)
			}
			b.StopTimer()
			close(done)
			wg.Wait()
			b.ReportMetric(float64(reads.Load())/b.Elapsed().Seconds(), "reads/s")
		})
	}
}
