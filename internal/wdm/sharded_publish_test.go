package wdm

import (
	"testing"

	"wavedag/internal/digraph"
)

// These tests pin the publish-on-every-path contract wavedaglint's
// publish analyzer enforces: a mutation of engine state under the mutex
// must reach publishLocked() before the method returns, even when a
// later step of the same operation errors out. The trigger is a
// component session desynchronized from the global topology — the
// global cut/repair succeeds, the component storm then fails — which
// historically returned without republishing, leaving lock-free readers
// on a snapshot that disagreed with the mutex-guarded strong reads.

// desyncArc returns a global arc owned by a plain component, with its
// component and local identifier.
func desyncArc(t *testing.T, eng *ShardedEngine) (digraph.ArcID, *engineComponent, digraph.ArcID) {
	t.Helper()
	for a := range eng.arcComp {
		c := eng.comps[eng.arcComp[a]]
		if !c.twoLevel() {
			return digraph.ArcID(a), c, eng.arcLoc[a]
		}
	}
	t.Skip("no plain component in this topology")
	return 0, nil, 0
}

func TestFailArcPublishesOnStormError(t *testing.T) {
	net := multiComponentNetwork(t, 2, 33)
	eng, err := net.NewShardedEngine()
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ga, c, la := desyncArc(t, eng)

	// Cut the arc in the component's private view only: the next engine
	// FailArc cuts the global topology, then errors in the storm.
	if _, err := c.plain.sess.FailArc(la); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.FailArc(ga); err == nil {
		t.Fatal("engine FailArc succeeded despite desynchronized component")
	}

	// The global cut happened, so it must have been published: the
	// lock-free snapshot read and the strong read must agree.
	if got, want := eng.NumFailedArcs(), eng.NumFailedArcsStrong(); got != want {
		t.Fatalf("snapshot NumFailedArcs=%d, strong=%d: FailArc error path did not publish", got, want)
	}
	if eng.NumFailedArcsStrong() != 1 {
		t.Fatalf("strong NumFailedArcs=%d, want 1", eng.NumFailedArcsStrong())
	}
	if eng.Stats().Cuts != 1 {
		t.Fatalf("Stats().Cuts=%d, want 1 (the cut did land)", eng.Stats().Cuts)
	}
}

func TestRestoreArcPublishesOnSweepError(t *testing.T) {
	net := multiComponentNetwork(t, 2, 34)
	eng, err := net.NewShardedEngine()
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ga, c, la := desyncArc(t, eng)

	// Cut globally (both views agree), then repair the component's
	// private view only: the next engine RestoreArc repairs the global
	// topology, then errors in the re-admission sweep.
	if _, err := eng.FailArc(ga); err != nil {
		t.Fatal(err)
	}
	if _, err := c.plain.sess.RestoreArc(la); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.RestoreArc(ga); err == nil {
		t.Fatal("engine RestoreArc succeeded despite desynchronized component")
	}

	// The global repair happened, so it must have been published.
	if got, want := eng.NumFailedArcs(), eng.NumFailedArcsStrong(); got != want {
		t.Fatalf("snapshot NumFailedArcs=%d, strong=%d: RestoreArc error path did not publish", got, want)
	}
	if eng.NumFailedArcsStrong() != 0 {
		t.Fatalf("strong NumFailedArcs=%d, want 0", eng.NumFailedArcsStrong())
	}
}

// TestStrategyNameConstants pins the registry contract wavedaglint's
// registry analyzer enforces: the exported name constants, the
// RoutingPolicy String form, and the registered strategy names must all
// be the same string.
func TestStrategyNameConstants(t *testing.T) {
	routing := map[string]RoutingPolicy{
		RouteShortestName: RouteShortest,
		RouteMinLoadName:  RouteMinLoad,
		RouteUPPName:      RouteUPP,
	}
	for name, policy := range routing {
		if policy.String() != name {
			t.Errorf("%v.String()=%q, want constant %q", int(policy), policy.String(), name)
		}
		if _, ok := routingStrategies[name]; !ok {
			t.Errorf("no routing strategy registered under constant %q", name)
		}
	}
	for _, name := range []string{ColoringIncremental, ColoringFull} {
		if _, ok := coloringStrategies[name]; !ok {
			t.Errorf("no coloring strategy registered under constant %q", name)
		}
	}
	for _, name := range []string{AdmissionReject, AdmissionRetryAltRoute, AdmissionDegrade} {
		if _, ok := admissionStrategies[name]; !ok {
			t.Errorf("no admission strategy registered under constant %q", name)
		}
	}
}
