package wdm

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"wavedag/internal/core"
	"wavedag/internal/digraph"
	"wavedag/internal/gen"
	"wavedag/internal/route"
)

// replayEquivalence pins the engine to a from-scratch session over the
// engine's current (possibly grown) topology: the engine's merged
// provisioning is re-admitted path-by-path into a fresh unbudgeted
// session — every path must seat, π must be exactly equal, the fresh
// session's λ must not exceed the engine's budget band structure's
// upper bound, and both sides must be Verify-clean. topo must be the
// test's own copy of the engine's final topology (the engine privatizes
// its copy on the first AddArc).
func replayEquivalence(t *testing.T, eng *ShardedEngine, topo *digraph.Digraph) {
	t.Helper()
	if err := eng.Verify(); err != nil {
		t.Fatalf("engine not Verify-clean: %v", err)
	}
	prov, err := eng.Provisioning()
	if err != nil {
		t.Fatal(err)
	}
	if len(prov.Paths) != eng.Len() {
		t.Fatalf("provisioning has %d paths for %d live requests", len(prov.Paths), eng.Len())
	}
	res := &core.Result{Colors: prov.Wavelengths, NumColors: prov.NumLambda, Pi: prov.Pi}
	if err := core.Verify(topo, prov.Paths, res); err != nil {
		t.Fatalf("merged provisioning not proper on the final topology: %v", err)
	}
	fresh, err := (&Network{Topology: topo}).NewSession()
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range prov.Paths {
		if _, adm, err := fresh.TryAddPath(p); err != nil || !adm.Accepted {
			t.Fatalf("path %d rejected by from-scratch session: adm=%+v err=%v", i, adm, err)
		}
	}
	if fresh.Pi() != eng.Pi() {
		t.Fatalf("from-scratch π = %d, engine π = %d", fresh.Pi(), eng.Pi())
	}
	if err := fresh.Verify(); err != nil {
		t.Fatalf("from-scratch session not Verify-clean: %v", err)
	}
	if w := eng.Budget(); w > 0 {
		n, err := eng.NumLambdaStrong()
		if err != nil {
			t.Fatal(err)
		}
		if n > w {
			t.Fatalf("engine λ = %d exceeds budget %d", n, w)
		}
	}
}

// adaptiveFixture glues several Theorem 1 DAGs into one giant component
// and returns the network plus the per-part vertex lists (the glue
// structure the drifting workloads target).
func adaptiveFixture(t testing.TB, parts int, seed int64) (*Network, [][]digraph.Vertex) {
	t.Helper()
	gs := make([]*digraph.Digraph, parts)
	for i := range gs {
		g, err := gen.RandomNoInternalCycleDAG(14, 3, 3, 0.25, seed+int64(i))
		if err != nil {
			t.Fatal(err)
		}
		gs[i] = g
	}
	g, pv, err := gen.GlueChain(gs...)
	if err != nil {
		t.Fatal(err)
	}
	return &Network{Topology: g}, pv
}

// regionPairs returns global (src, dst) pairs that dispatch to one
// region lane of the engine's first two-level component: the endpoints
// of that region's arcs. It also returns the lane so the test can watch
// it. Requires the internal layout (package wdm test).
func regionPairs(t *testing.T, eng *ShardedEngine) ([]route.Request, *engineShard, *engineComponent) {
	t.Helper()
	for _, c := range eng.comps {
		if c.dead || !c.twoLevel() {
			continue
		}
		// The largest region gives re-splitting the most room.
		best := -1
		for ri, rs := range c.regionShards {
			if best < 0 || rs.sess.net.Topology.NumArcs() > c.regionShards[best].sess.net.Topology.NumArcs() {
				best = ri
			}
		}
		rs := c.regionShards[best]
		var pairs []route.Request
		for _, a := range rs.sess.net.Topology.Arcs() {
			pairs = append(pairs, route.Request{
				Src: rs.toGlobalVertex[a.Tail],
				Dst: rs.toGlobalVertex[a.Head],
			})
		}
		if len(pairs) < 4 {
			continue
		}
		return pairs, rs, c
	}
	t.Fatal("fixture has no two-level component with a usable region")
	return nil, nil, nil
}

// TestAddArcPlainComponent covers live capacity adds on single-level
// components: an arc inside one component grows its lane in place, the
// new arc is immediately routable, survives a cut/repair cycle, and the
// engine stays equivalent to a from-scratch session on the grown
// topology. The engine's topology is private after the first add — the
// caller's Network must not change.
func TestAddArcPlainComponent(t *testing.T) {
	net := multiComponentNetwork(t, 3, 501)
	arcsBefore := net.Topology.NumArcs()
	topo := net.Topology.Clone() // the test's mirror of the engine's topology
	eng, err := net.NewShardedEngine(WithShardWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	pool := route.NewRouter(net.Topology).AllToAll()
	rng := rand.New(rand.NewSource(502))
	var ids []ShardedID
	for i := 0; i < 40; i++ {
		id, err := eng.Add(pool[rng.Intn(len(pool))])
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	// Add an arc between two vertices of one component, against the
	// grain: dst -> src of a routable pair keeps it inside the component
	// without duplicating an existing arc's endpoints ordering.
	req := pool[0]
	ga, err := eng.AddArc(req.Dst, req.Src)
	if err != nil {
		t.Fatalf("AddArc: %v", err)
	}
	if _, err := topo.AddArc(req.Dst, req.Src); err != nil {
		t.Fatal(err)
	}
	if net.Topology.NumArcs() != arcsBefore {
		t.Fatalf("AddArc mutated the caller's Network: %d arcs, want %d", net.Topology.NumArcs(), arcsBefore)
	}
	if st := eng.StatsStrong(); st.ArcAdds != 1 {
		t.Fatalf("ArcAdds = %d, want 1", st.ArcAdds)
	}
	// The reverse pair is now routable — over the new arc.
	back, err := eng.Add(route.Request{Src: req.Dst, Dst: req.Src})
	if err != nil {
		t.Fatalf("add over the new arc: %v", err)
	}
	p, err := eng.PathStrong(back)
	if err != nil {
		t.Fatal(err)
	}
	usesNew := false
	for _, a := range p.Arcs() {
		if a == ga {
			usesNew = true
		}
	}
	if !usesNew {
		t.Fatalf("path %v does not use the new arc %d", p, ga)
	}
	// The new arc participates in the survivability plane.
	if _, err := eng.FailArc(ga); err != nil {
		t.Fatalf("FailArc on added arc: %v", err)
	}
	if _, err := eng.RestoreArc(ga); err != nil {
		t.Fatalf("RestoreArc on added arc: %v", err)
	}
	for _, id := range ids {
		if _, err := eng.PathStrong(id); err != nil {
			t.Fatalf("pre-add id lost: %v", err)
		}
	}
	replayEquivalence(t, eng, topo)

	// Validation: out-of-range vertices and self-loops are rejected with
	// no state change.
	if _, err := eng.AddArc(-1, 0); err == nil {
		t.Fatal("AddArc(-1, 0) succeeded")
	}
	if _, err := eng.AddArc(0, 0); err == nil {
		t.Fatal("self-loop AddArc succeeded")
	}
	if err := eng.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestAddArcTwoLevel covers the two same-component shapes on a
// two-level layout: an arc whose endpoints share a region joins that
// region's lane (region-confined routing may use it), and an arc
// bridging regions becomes overlay-owned — no region lane knows it, the
// component turns escalating, and cutting it storms only the overlay.
func TestAddArcTwoLevel(t *testing.T) {
	net, _ := adaptiveFixture(t, 4, 511)
	topo := net.Topology.Clone()
	eng := twoLevelEngine(t, net, WithShardWorkers(2))
	defer eng.Close()

	pairs, rs, c := regionPairs(t, eng)
	rng := rand.New(rand.NewSource(512))
	for i := 0; i < 30; i++ {
		if _, err := eng.Add(pairs[rng.Intn(len(pairs))]); err != nil {
			t.Fatal(err)
		}
	}

	// Join-region: reverse one of the region's arcs.
	in := pairs[0]
	regionsBefore := len(c.regionShards)
	ga, err := eng.AddArc(in.Dst, in.Src)
	if err != nil {
		t.Fatalf("join-region AddArc: %v", err)
	}
	if _, err := topo.AddArc(in.Dst, in.Src); err != nil {
		t.Fatal(err)
	}
	if len(c.regionShards) != regionsBefore {
		t.Fatalf("join-region add changed the lane count: %d, want %d", len(c.regionShards), regionsBefore)
	}
	if ri := c.regions.ArcRegion[e_arcLoc(eng, ga)]; ri < 0 {
		t.Fatalf("join-region arc is overlay-owned (region %d)", ri)
	}
	if _, err := eng.Add(route.Request{Src: in.Dst, Dst: in.Src}); err != nil {
		t.Fatalf("add over the join-region arc: %v", err)
	}

	// Bridge: connect this region to a vertex with no common region —
	// scan for one.
	var bridgeSrc, bridgeDst digraph.Vertex = -1, -1
	lsrc := eng.localV[in.Src]
scan:
	for gv := range eng.label {
		v := digraph.Vertex(gv)
		if eng.label[v] != c.idx || v == in.Src {
			continue
		}
		if _, _, _, ok := c.regions.CommonRegion(lsrc, eng.localV[v]); !ok {
			bridgeSrc, bridgeDst = in.Src, v
			break scan
		}
	}
	if bridgeSrc < 0 {
		t.Fatal("fixture has no cross-region pair")
	}
	ga2, err := eng.AddArc(bridgeSrc, bridgeDst)
	if err != nil {
		t.Fatalf("bridge AddArc: %v", err)
	}
	if _, err := topo.AddArc(bridgeSrc, bridgeDst); err != nil {
		t.Fatal(err)
	}
	if ri := c.regions.ArcRegion[e_arcLoc(eng, ga2)]; ri >= 0 {
		t.Fatalf("bridge arc landed in region %d, want overlay-owned", ri)
	}
	if !c.escalate {
		t.Fatal("bridge add did not turn the component escalating")
	}
	// The bridge pair routes (overlay lane owns the arc), and cutting the
	// bridge storms cleanly: the path either reroutes around the cut or
	// parks dark, and the engine stays coherent either way.
	bid, err := eng.Add(route.Request{Src: bridgeSrc, Dst: bridgeDst})
	if err != nil {
		t.Fatalf("add over the bridge arc: %v", err)
	}
	if _, err := eng.FailArc(ga2); err != nil {
		t.Fatalf("FailArc on bridge arc: %v", err)
	}
	dark, err := eng.IsDarkStrong(bid)
	if err != nil {
		t.Fatalf("bridge id lost after the cut: %v", err)
	}
	if !dark {
		p, err := eng.PathStrong(bid)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range p.Arcs() {
			if a == ga2 {
				t.Fatalf("restored path %v still crosses the cut arc %d", p, ga2)
			}
		}
	}
	if _, err := eng.RestoreArc(ga2); err != nil {
		t.Fatalf("RestoreArc on bridge arc: %v", err)
	}
	_ = rs
	replayEquivalence(t, eng, topo)
}

// e_arcLoc reads the engine's component-local id of a global arc (test
// helper; the table is package-internal).
func e_arcLoc(eng *ShardedEngine, ga digraph.ArcID) digraph.ArcID { return eng.arcLoc[ga] }

// TestAddArcMerge covers the cross-component shape: an arc between two
// components merges them into one plain component. Every lightpath of
// both survives the merge — ids issued before keep resolving through
// the retired lanes' forward maps, strong and snapshot reads agree —
// and the merged pair becomes routable.
func TestAddArcMerge(t *testing.T) {
	net := multiComponentNetwork(t, 4, 521)
	topo := net.Topology.Clone()
	eng, err := net.NewShardedEngine(WithShardWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	pool := route.NewRouter(net.Topology).AllToAll()
	rng := rand.New(rand.NewSource(522))
	type held struct {
		id ShardedID
		p  string
	}
	var ids []held
	for i := 0; i < 60; i++ {
		id, err := eng.Add(pool[rng.Intn(len(pool))])
		if err != nil {
			t.Fatal(err)
		}
		p, err := eng.PathStrong(id)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, held{id, p.String()})
	}
	lenBefore := eng.Len()

	// Bridge two components: a source vertex of one to a source of
	// another (sources always exist in Theorem 1 DAGs).
	var u, v digraph.Vertex = -1, -1
	for gv := range eng.label {
		if eng.label[gv] == 0 && u < 0 {
			u = digraph.Vertex(gv)
		}
		if eng.label[gv] == 1 && v < 0 {
			v = digraph.Vertex(gv)
		}
	}
	compsBefore := eng.NumComponents()
	ga, err := eng.AddArc(u, v)
	if err != nil {
		t.Fatalf("merge AddArc: %v", err)
	}
	if _, err := topo.AddArc(u, v); err != nil {
		t.Fatal(err)
	}
	if eng.NumComponents() != compsBefore {
		t.Fatalf("merge changed the component slot count: %d, want %d (dead slots stay)", eng.NumComponents(), compsBefore)
	}
	if eng.Len() != lenBefore {
		t.Fatalf("merge lost traffic: Len %d, want %d", eng.Len(), lenBefore)
	}
	// Every pre-merge id resolves to its exact pre-merge route, through
	// both read planes.
	snap := eng.Snapshot()
	defer snap.Release()
	for _, h := range ids {
		p, err := eng.PathStrong(h.id)
		if err != nil {
			t.Fatalf("pre-merge id lost (strong): %v", err)
		}
		if p.String() != h.p {
			t.Fatalf("pre-merge route changed: %s, want %s", p, h.p)
		}
		sp, err := snap.Path(h.id)
		if err != nil {
			t.Fatalf("pre-merge id lost (snapshot): %v", err)
		}
		if sp.String() != h.p {
			t.Fatalf("pre-merge route changed in snapshot: %s, want %s", sp, h.p)
		}
	}
	// The merged pair is routable over the bridge.
	mid, err := eng.Add(route.Request{Src: u, Dst: v})
	if err != nil {
		t.Fatalf("add across the merged components: %v", err)
	}
	p, err := eng.PathStrong(mid)
	if err != nil {
		t.Fatal(err)
	}
	usesNew := false
	for _, a := range p.Arcs() {
		usesNew = usesNew || a == ga
	}
	if !usesNew {
		t.Fatalf("merged-pair path %v does not use the bridge arc %d", p, ga)
	}
	// Removes through forward maps work.
	if err := eng.Remove(ids[0].id); err != nil {
		t.Fatalf("Remove through forward map: %v", err)
	}
	replayEquivalence(t, eng, topo)
}

// TestAddArcClosed pins the lifecycle contract.
func TestAddArcClosed(t *testing.T) {
	net := multiComponentNetwork(t, 2, 531)
	eng, err := net.NewShardedEngine()
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AddArc(0, 1); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("AddArc after Close: %v, want ErrEngineClosed", err)
	}
}

// TestAdaptiveBandingRequiresBudget pins the option contract: banding
// re-splits the wavelength budget, so an unbudgeted engine rejects it,
// and a malformed AdaptiveConfig is rejected at construction.
func TestAdaptiveBandingRequiresBudget(t *testing.T) {
	net, _ := adaptiveFixture(t, 3, 541)
	if _, err := net.NewShardedEngine(WithAdaptiveBanding()); err == nil {
		t.Fatal("adaptive banding without a budget succeeded")
	}
	bad := DefaultAdaptiveConfig()
	bad.HighWater = 0.2 // below LowWater
	if _, err := net.NewShardedEngine(WithAdaptiveConfig(bad)); err == nil {
		t.Fatal("malformed AdaptiveConfig accepted")
	}
}

// TestRebandHysteresis is the oscillation property test: under a load
// that flips between overlay-heavy and idle every batch, the pressure
// gauges never sustain HysteresisBatches of one-sided evidence, so the
// engine must not re-band at all; under a sustained one-sided load it
// must re-band, and no more than once per hysteresis window.
func TestRebandHysteresis(t *testing.T) {
	const hys = 4
	build := func(t *testing.T) (*ShardedEngine, []route.Request, []route.Request) {
		cfg := DefaultAdaptiveConfig()
		cfg.HysteresisBatches = hys
		cfg.Alpha = 0.9 // react fast: the hysteresis gate alone must hold oscillation
		net, _ := adaptiveFixture(t, 4, 551)
		eng := twoLevelEngine(t, net,
			WithShardWorkers(2),
			WithEngineWavelengthBudget(6),
			WithOverlayBudgetSlice(1),
			WithAdaptiveBanding(),
			WithAdaptiveConfig(cfg),
		)
		// Overlay-heavy load: cross-region pairs (no common region) with a
		// 1-wavelength overlay slice saturate admission immediately.
		// Region load: in-region arc pairs.
		regional, _, c := regionPairs(t, eng)
		var cross []route.Request
		for gv := range eng.label {
			v := digraph.Vertex(gv)
			if eng.label[v] != c.idx {
				continue
			}
			for gw := range eng.label {
				w := digraph.Vertex(gw)
				if v == w || eng.label[w] != c.idx {
					continue
				}
				if _, _, _, ok := c.regions.CommonRegion(eng.localV[v], eng.localV[w]); ok {
					continue
				}
				if sh, _, err := eng.dispatchAdd(route.Request{Src: v, Dst: w}); err == nil && sh.kind == shardOverlay {
					cross = append(cross, route.Request{Src: v, Dst: w})
				}
				if len(cross) >= 40 {
					return eng, regional, cross
				}
			}
		}
		if len(cross) == 0 {
			t.Fatal("fixture has no overlay pairs")
		}
		return eng, regional, cross
	}
	// One burst = ONE batch mixing this round's adds with the teardown
	// of the previous round's accepted adds: every batch carries fresh
	// admission offers, so the saturation gauge sees a sustained load as
	// sustained (a remove-only batch would read as an idle tick and
	// decay it).
	var carry []ShardedID
	burst := func(eng *ShardedEngine, pool []route.Request, n int, rng *rand.Rand) {
		ops := make([]BatchOp, 0, n+len(carry))
		for i := 0; i < n; i++ {
			ops = append(ops, AddOp(pool[rng.Intn(len(pool))]))
		}
		for _, id := range carry {
			ops = append(ops, RemoveOp(id))
		}
		results := eng.ApplyBatch(ops)
		carry = carry[:0]
		for i, r := range results {
			if ops[i].Kind == BatchAdd && r.Err == nil {
				carry = append(carry, r.ID)
			}
		}
	}

	t.Run("oscillating", func(t *testing.T) {
		eng, regional, cross := build(t)
		defer eng.Close()
		carry = nil
		rng := rand.New(rand.NewSource(552))
		for batch := 0; batch < 8*hys; batch++ {
			if batch%2 == 0 {
				burst(eng, cross, 20, rng)
			} else {
				burst(eng, regional, 20, rng)
			}
		}
		if st := eng.StatsStrong(); st.Rebands != 0 {
			t.Fatalf("oscillating load re-banded %d times, want 0", st.Rebands)
		}
	})
	t.Run("sustained", func(t *testing.T) {
		eng, _, cross := build(t)
		defer eng.Close()
		carry = nil
		rng := rand.New(rand.NewSource(553))
		const batches = 8 * hys
		for batch := 0; batch < batches; batch++ {
			burst(eng, cross, 20, rng)
		}
		st := eng.StatsStrong()
		if st.Rebands < 1 {
			t.Fatal("sustained overlay pressure never re-banded")
		}
		// One burst is one batch, and a re-layout is gated on hys batches
		// of cooldown: at most one re-band per hys batches.
		if max := batches / hys; st.Rebands > max {
			t.Fatalf("re-banded %d times in %d batches, hysteresis allows at most %d", st.Rebands, batches, max)
		}
		if err := eng.Verify(); err != nil {
			t.Fatal(err)
		}
		if n, err := eng.NumLambdaStrong(); err != nil || n > eng.Budget() {
			t.Fatalf("λ = %d exceeds budget %d after re-banding (err=%v)", n, eng.Budget(), err)
		}
	})
}

// TestResplitHotRegion drives all traffic at one region lane until the
// engine re-splits it: the lane count grows, the event share rebalances
// the hot traffic across the two halves, ids issued before the re-split
// keep resolving to their exact routes, and the engine stays equivalent
// to a from-scratch session. Pinned snapshots taken before the re-split
// are immutable.
func TestResplitHotRegion(t *testing.T) {
	cfg := DefaultAdaptiveConfig()
	cfg.HysteresisBatches = 2
	cfg.Alpha = 0.8
	cfg.ResplitShare = 0.5
	cfg.MinRegionArcs = 4
	net, _ := adaptiveFixture(t, 4, 561)
	eng := twoLevelEngine(t, net,
		WithShardWorkers(2),
		WithRegionResplit(),
		WithAdaptiveConfig(cfg),
	)
	defer eng.Close()
	topo := net.Topology.Clone()

	pairs, rs, c := regionPairs(t, eng)
	rng := rand.New(rand.NewSource(562))
	lanesInitial := len(c.regionShards)

	// Seed standing traffic in the hot region and pin its routes,
	// snapshotting before the pressure can have triggered a re-split.
	type held struct {
		id ShardedID
		p  string
	}
	var ids []held
	var snap *EngineSnapshot
	for i := 0; i < 20; i++ {
		id, err := eng.Add(pairs[rng.Intn(len(pairs))])
		if err != nil {
			t.Fatal(err)
		}
		p, err := eng.PathStrong(id)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, held{id, p.String()})
		if i == 0 {
			snap = eng.Snapshot()
			defer snap.Release()
		}
	}
	snapLen := snap.Len()

	// Hammer the region until the engine re-splits it.
	var split bool
	for batch := 0; batch < 40 && !split; batch++ {
		ops := make([]BatchOp, 0, 16)
		for i := 0; i < 16; i++ {
			ops = append(ops, AddOp(pairs[rng.Intn(len(pairs))]))
		}
		results := eng.ApplyBatch(ops)
		ops = ops[:0]
		for _, r := range results {
			if r.Err == nil {
				ops = append(ops, RemoveOp(r.ID))
			}
		}
		eng.ApplyBatch(ops)
		split = eng.StatsStrong().Resplits > 0
	}
	if !split {
		t.Fatal("hot region was never re-split")
	}
	if len(c.regionShards) <= lanesInitial {
		t.Fatalf("re-splitting did not grow the lane count: %d, started at %d", len(c.regionShards), lanesInitial)
	}
	if !rs.retired {
		t.Fatal("hot lane was not retired")
	}
	// Once no lane dominates the component's event share any more, the
	// re-splitting settles: equilibrium, not thrash. Run the same load
	// on and require the layout to hold still.
	settled := eng.StatsStrong().Resplits
	lanesSettled := len(c.regionShards)
	for batch := 0; batch < 10; batch++ {
		ops := make([]BatchOp, 0, 16)
		for i := 0; i < 16; i++ {
			ops = append(ops, AddOp(pairs[rng.Intn(len(pairs))]))
		}
		results := eng.ApplyBatch(ops)
		ops = ops[:0]
		for _, r := range results {
			if r.Err == nil {
				ops = append(ops, RemoveOp(r.ID))
			}
		}
		eng.ApplyBatch(ops)
	}
	if st := eng.StatsStrong(); st.Resplits > settled+1 || len(c.regionShards) > lanesSettled+1 {
		t.Fatalf("re-splitting did not settle: %d re-splits (was %d), %d lanes (was %d)",
			st.Resplits, settled, len(c.regionShards), lanesSettled)
	}
	if !c.escalate {
		t.Fatal("re-split component is not escalating region no-routes")
	}
	// Old ids resolve to their exact routes through the forward map.
	for _, h := range ids {
		p, err := eng.PathStrong(h.id)
		if err != nil {
			t.Fatalf("pre-split id lost: %v", err)
		}
		if p.String() != h.p {
			t.Fatalf("pre-split route changed: %s, want %s", p, h.p)
		}
	}
	// The pinned snapshot still serves the pre-split world — exactly the
	// ids that existed when it was taken, with their exact routes.
	if snap.Len() != snapLen {
		t.Fatalf("pinned snapshot Len changed: %d, want %d", snap.Len(), snapLen)
	}
	for _, h := range ids[:snapLen] {
		p, err := snap.Path(h.id)
		if err != nil {
			t.Fatalf("pinned snapshot lost id: %v", err)
		}
		if p.String() != h.p {
			t.Fatalf("pinned snapshot route changed: %s, want %s", p, h.p)
		}
	}
	// The hot traffic keeps flowing after the re-split, and a removal
	// through the forward map works.
	if err := eng.Remove(ids[0].id); err != nil {
		t.Fatalf("Remove through forward map: %v", err)
	}
	for i := 0; i < 20; i++ {
		if _, err := eng.Add(pairs[rng.Intn(len(pairs))]); err != nil {
			t.Fatal(err)
		}
	}
	replayEquivalence(t, eng, topo)
}

// TestAdaptiveRandomizedEquivalence is the tentpole pin: a randomized
// churn of adds, removes, capacity adds and failure events on a fully
// adaptive engine (banding + re-splitting), checked after every phase
// against a from-scratch session over the engine's final topology — the
// engine's state must always be exactly representable from scratch (π
// exact, merged coloring proper, λ within the budget), no matter how
// many re-layouts it has been through.
func TestAdaptiveRandomizedEquivalence(t *testing.T) {
	cfg := DefaultAdaptiveConfig()
	cfg.HysteresisBatches = 3
	cfg.Alpha = 0.7
	cfg.ResplitShare = 0.5
	cfg.MinRegionArcs = 4
	net, _ := adaptiveFixture(t, 4, 571)
	eng := twoLevelEngine(t, net,
		WithShardWorkers(2),
		WithEngineWavelengthBudget(8),
		WithOverlayBudgetSlice(2),
		WithAdaptiveBanding(),
		WithRegionResplit(),
		WithAdaptiveConfig(cfg),
	)
	defer eng.Close()
	topo := net.Topology.Clone()

	pairs, _, _ := regionPairs(t, eng)
	pool := route.NewRouter(net.Topology).AllToAll()
	rng := rand.New(rand.NewSource(572))
	var live []ShardedID
	phases := 12
	if testing.Short() {
		phases = 4
	}
	for phase := 0; phase < phases; phase++ {
		// A few churn batches, hot-region biased so re-layouts happen.
		for batch := 0; batch < 4; batch++ {
			ops := make([]BatchOp, 0, 24)
			removed := map[int]bool{}
			for k := 0; k < 24; k++ {
				if len(live) > 0 && rng.Intn(3) == 0 && len(removed) < len(live) {
					j := rng.Intn(len(live))
					for removed[j] {
						j = (j + 1) % len(live)
					}
					removed[j] = true
					ops = append(ops, RemoveOp(live[j]))
				} else if rng.Intn(4) != 0 {
					ops = append(ops, AddOp(pairs[rng.Intn(len(pairs))]))
				} else {
					ops = append(ops, AddOp(pool[rng.Intn(len(pool))]))
				}
			}
			results := eng.ApplyBatch(ops)
			var next []ShardedID
			for i, id := range live {
				if !removed[i] {
					next = append(next, id)
				}
			}
			for i, r := range results {
				if ops[i].Kind == BatchAdd && r.Err == nil {
					next = append(next, r.ID)
				}
			}
			live = next
		}
		// A capacity add every few phases: reverse a random routable pair.
		if phase%3 == 1 {
			req := pool[rng.Intn(len(pool))]
			if ga, err := eng.AddArc(req.Dst, req.Src); err == nil {
				if _, err := topo.AddArc(req.Dst, req.Src); err != nil {
					t.Fatal(err)
				}
				_ = ga
			}
		}
		// A cut/repair cycle every few phases.
		if phase%4 == 3 {
			a := digraph.ArcID(rng.Intn(topo.NumArcs()))
			if _, err := eng.FailArc(a); err == nil {
				if _, err := eng.RestoreArc(a); err != nil {
					t.Fatal(err)
				}
			}
		}
		replayEquivalence(t, eng, topo)
	}
	st := eng.StatsStrong()
	if st.Resplits == 0 && st.Rebands == 0 {
		t.Log("randomized churn triggered no re-layouts (valid but weak run)")
	}
}

// TestAdaptiveConcurrentReaders races lock-free snapshot readers
// against the full adaptive write plane: churn batches, re-splits,
// re-bands and capacity adds. Run under -race; the invariant is simply
// that every pinned read is coherent (no torn state, ids resolve or
// report a clean error).
func TestAdaptiveConcurrentReaders(t *testing.T) {
	cfg := DefaultAdaptiveConfig()
	cfg.HysteresisBatches = 2
	cfg.Alpha = 0.8
	cfg.ResplitShare = 0.5
	cfg.MinRegionArcs = 4
	net, _ := adaptiveFixture(t, 3, 581)
	eng := twoLevelEngine(t, net,
		WithShardWorkers(2),
		WithEngineWavelengthBudget(8),
		WithOverlayBudgetSlice(2),
		WithAdaptiveBanding(),
		WithRegionResplit(),
		WithAdaptiveConfig(cfg),
	)
	defer eng.Close()

	pairs, _, _ := regionPairs(t, eng)
	pool := route.NewRouter(net.Topology).AllToAll()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := eng.Snapshot()
				n := snap.Len()
				if n < 0 {
					t.Error("negative snapshot Len")
				}
				_, _ = snap.NumLambda()
				_ = snap.ArcLoads()
				_ = snap.Stats()
				if rng.Intn(2) == 0 {
					_, _ = snap.Path(ShardedID{Shard: int32(rng.Intn(8)), ID: SessionID(rng.Intn(64))})
				}
				snap.Release()
			}
		}(int64(582 + r))
	}
	rng := rand.New(rand.NewSource(590))
	var live []ShardedID
	for batch := 0; batch < 60; batch++ {
		ops := make([]BatchOp, 0, 16)
		removed := map[int]bool{}
		for k := 0; k < 16; k++ {
			if len(live) > 0 && rng.Intn(3) == 0 && len(removed) < len(live) {
				j := rng.Intn(len(live))
				for removed[j] {
					j = (j + 1) % len(live)
				}
				removed[j] = true
				ops = append(ops, RemoveOp(live[j]))
			} else {
				ops = append(ops, AddOp(pairs[rng.Intn(len(pairs))]))
			}
		}
		results := eng.ApplyBatch(ops)
		var next []ShardedID
		for i, id := range live {
			if !removed[i] {
				next = append(next, id)
			}
		}
		for i, r := range results {
			if ops[i].Kind == BatchAdd && r.Err == nil {
				next = append(next, r.ID)
			}
		}
		live = next
		if batch%10 == 5 {
			req := pool[rng.Intn(len(pool))]
			_, _ = eng.AddArc(req.Dst, req.Src)
		}
	}
	close(stop)
	wg.Wait()
	if err := eng.Verify(); err != nil {
		t.Fatal(err)
	}
}
