package wdm

import (
	"errors"
	"math/rand"
	"testing"

	"wavedag/internal/core"
	"wavedag/internal/digraph"
	"wavedag/internal/dipath"
	"wavedag/internal/load"
	"wavedag/internal/route"
)

// TestSessionChurnEquivalence is the randomized pin of the dynamic
// engine to the one-shot pipeline: 1k random add/remove operations on a
// Theorem 1 topology, asserting after every operation that
//
//   - the session's live assignment is Verify-clean,
//   - the session's π equals load.Pi recomputed from scratch,
//   - the session's λ never exceeds the from-scratch Provision answer
//     by more than the configured slack.
func TestSessionChurnEquivalence(t *testing.T) {
	net := testNetwork()
	const slack = 2
	s, err := net.NewSession(WithSlack(slack))
	if err != nil {
		t.Fatal(err)
	}
	if s.RoutingStrategyName() != "shortest" || s.ColoringStrategyName() != ColoringIncremental {
		t.Fatalf("defaults: %s/%s", s.RoutingStrategyName(), s.ColoringStrategyName())
	}
	pool := route.AllToAll(net.Topology)
	rng := rand.New(rand.NewSource(17))

	type liveReq struct {
		id  SessionID
		req route.Request
	}
	var live []liveReq

	ops := 1000
	if testing.Short() {
		ops = 200
	}
	for op := 0; op < ops; op++ {
		if len(live) == 0 || (rng.Intn(5) != 0 && len(live) < 60) {
			req := pool[rng.Intn(len(pool))]
			id, err := s.Add(req)
			if err != nil {
				t.Fatalf("op %d: Add: %v", op, err)
			}
			live = append(live, liveReq{id, req})
		} else {
			k := rng.Intn(len(live))
			if err := s.Remove(live[k].id); err != nil {
				t.Fatalf("op %d: Remove: %v", op, err)
			}
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		}

		if err := s.Verify(); err != nil {
			t.Fatalf("op %d: session coloring invalid: %v", op, err)
		}
		prov, err := s.Provisioning()
		if err != nil {
			t.Fatalf("op %d: Provisioning: %v", op, err)
		}
		if scratch := load.Pi(net.Topology, prov.Paths); s.Pi() != scratch || prov.Pi != scratch {
			t.Fatalf("op %d: session π = %d/%d, from-scratch π = %d", op, s.Pi(), prov.Pi, scratch)
		}
		// Rebuild from scratch: identical requests in arrival order give
		// identical routes (the router is deterministic), so the one-shot
		// pipeline is the exact reference.
		reqs := make([]route.Request, len(live))
		ids := s.IDs()
		byID := map[SessionID]route.Request{}
		for _, lr := range live {
			byID[lr.id] = lr.req
		}
		for i, id := range ids {
			reqs[i] = byID[id]
		}
		ref, err := net.Provision(reqs, RouteShortest)
		if err != nil {
			t.Fatalf("op %d: reference Provision: %v", op, err)
		}
		lambda, err := s.NumLambda()
		if err != nil {
			t.Fatalf("op %d: NumLambda: %v", op, err)
		}
		if lambda != prov.NumLambda {
			t.Fatalf("op %d: NumLambda %d != Provisioning.NumLambda %d", op, lambda, prov.NumLambda)
		}
		if lambda > ref.NumLambda+slack {
			t.Fatalf("op %d: session λ = %d exceeds from-scratch λ = %d + slack %d",
				op, lambda, ref.NumLambda, slack)
		}
		if lambda < ref.NumLambda {
			// λ below the exact theorem-1 answer would mean an improper or
			// miscounted assignment (Provision is exact here: λ = π).
			t.Fatalf("op %d: session λ = %d below the exact answer %d", op, lambda, ref.NumLambda)
		}
	}
}

// TestSessionProvisionEquivalence checks the one-shot Provision and a
// session replaying the same requests agree on π and on λ within slack,
// for every routing policy applicable to the topology.
func TestSessionProvisionEquivalence(t *testing.T) {
	net := testNetwork()
	reqs := someRequests(net, 40)
	for _, policy := range []RoutingPolicy{RouteShortest, RouteMinLoad} {
		ref, err := net.Provision(reqs, policy)
		if err != nil {
			t.Fatal(err)
		}
		s, err := net.NewSession(WithRoutingPolicy(policy))
		if err != nil {
			t.Fatal(err)
		}
		for _, req := range reqs {
			if _, err := s.Add(req); err != nil {
				t.Fatal(err)
			}
		}
		prov, err := s.Provisioning()
		if err != nil {
			t.Fatal(err)
		}
		if prov.Pi != ref.Pi {
			t.Fatalf("%v: session π = %d, Provision π = %d", policy, prov.Pi, ref.Pi)
		}
		if prov.Method != core.MethodIncremental {
			t.Fatalf("%v: method = %s", policy, prov.Method)
		}
		if prov.NumLambda > ref.NumLambda+core.DefaultSlack {
			t.Fatalf("%v: session λ = %d, Provision λ = %d", policy, prov.NumLambda, ref.NumLambda)
		}
		// Routes must be identical path-for-path: both sides route the
		// same requests in the same order through the same router logic.
		for i := range reqs {
			if !prov.Paths[i].Equal(ref.Paths[i]) {
				t.Fatalf("%v: request %d routed differently: %s vs %s",
					policy, i, prov.Paths[i], ref.Paths[i])
			}
		}
		if err := s.Verify(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSessionReroute checks rerouting under the min-load strategy: a
// congested request is moved off the hot arc once alternatives free up,
// ids survive, and the assignment stays Verify-clean.
func TestSessionReroute(t *testing.T) {
	net := testNetwork()
	s, err := net.NewSession(WithRoutingPolicy(RouteMinLoad))
	if err != nil {
		t.Fatal(err)
	}
	reqs := someRequests(net, 30)
	ids := make([]SessionID, 0, len(reqs))
	for _, req := range reqs {
		id, err := s.Add(req)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	piBefore := s.Pi()
	// Tear down half the requests, then reroute the survivors: π must
	// never increase (a reroute only moves a path to a better-or-equal
	// alternative under the current loads).
	for i := 0; i < len(ids); i += 2 {
		if err := s.Remove(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < len(ids); i += 2 {
		if _, err := s.Reroute(ids[i]); err != nil {
			t.Fatal(err)
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("after reroute of %d: %v", ids[i], err)
		}
	}
	if s.Pi() > piBefore {
		t.Fatalf("π grew from %d to %d under teardown+reroute", piBefore, s.Pi())
	}
	if _, err := s.Reroute(ids[0]); err == nil {
		t.Fatal("reroute of a removed id accepted")
	}
	if _, err := s.Wavelength(ids[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Path(SessionID(1 << 40)); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestSessionFullStrategy exercises the deferred "full" coloring state
// through the session API directly (Provision already covers the happy
// path): wavelengths are deferred until Assignment.
func TestSessionFullStrategy(t *testing.T) {
	net := testNetwork()
	s, err := net.NewSession(WithColoringStrategyName(ColoringFull))
	if err != nil {
		t.Fatal(err)
	}
	reqs := someRequests(net, 20)
	var ids []SessionID
	for _, req := range reqs {
		id, err := s.Add(req)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if w, err := s.Wavelength(ids[0]); err != nil || w != -1 {
		t.Fatalf("full strategy should defer: w=%d err=%v", w, err)
	}
	if err := s.Remove(ids[3]); err != nil {
		t.Fatal(err)
	}
	prov, err := s.Provisioning()
	if err != nil {
		t.Fatal(err)
	}
	if prov.Method != core.MethodTheorem1 {
		t.Fatalf("method = %s, want theorem1", prov.Method)
	}
	if len(prov.Paths) != len(reqs)-1 {
		t.Fatalf("%d paths after one removal of %d", len(prov.Paths), len(reqs))
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if _, err := net.NewSession(WithColoringStrategyName("no-such-strategy")); err == nil {
		t.Fatal("unknown coloring strategy accepted")
	}
}

// flakyColoringState fails the next `*fail` Add calls before touching
// the wrapped state, simulating a coloring layer that rejects an
// insertion mid-Reroute.
type flakyColoringState struct {
	ColoringState
	fail *int
}

func (s *flakyColoringState) Add(p *dipath.Path) (int, error) {
	if *s.fail > 0 {
		*s.fail--
		return -1, errors.New("injected coloring failure")
	}
	return s.ColoringState.Add(p)
}

type flakyColoringStrategy struct {
	inner ColoringStrategy
	fail  *int
}

func (s flakyColoringStrategy) Name() string { return "flaky-" + s.inner.Name() }

func (s flakyColoringStrategy) NewState(g *digraph.Digraph, slack int) (ColoringState, error) {
	st, err := s.inner.NewState(g, slack)
	if err != nil {
		return nil, err
	}
	return &flakyColoringState{ColoringState: st, fail: s.fail}, nil
}

// rerouteFixture builds a min-load session on a diamond (0->1->3,
// 0->2->3) whose first request routes via 1, with extra traffic loading
// that branch so a Reroute of the first request must switch to the
// branch via 2 — forcing the coloring Remove+Add sequence whose failure
// paths the tests below inject into.
func rerouteFixture(t *testing.T) (*Session, SessionID, *int) {
	t.Helper()
	g := digraph.New(4)
	g.MustAddArc(0, 1)
	g.MustAddArc(1, 3)
	g.MustAddArc(0, 2)
	g.MustAddArc(2, 3)
	fail := new(int)
	inner, ok := LookupColoringStrategy(ColoringIncremental)
	if !ok {
		t.Fatal("incremental strategy not registered")
	}
	net := &Network{Topology: g}
	s, err := net.NewSession(
		WithRoutingPolicy(RouteMinLoad),
		WithColoringStrategy(flakyColoringStrategy{inner: inner, fail: fail}),
	)
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.Add(route.Request{Src: 0, Dst: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range []route.Request{{Src: 0, Dst: 1}, {Src: 1, Dst: 3}} {
		if _, err := s.Add(req); err != nil {
			t.Fatal(err)
		}
	}
	p, err := s.Path(id)
	if err != nil {
		t.Fatal(err)
	}
	if !p.ContainsVertex(1) {
		t.Fatalf("fixture: first request routed %v, want the branch via 1", p)
	}
	return s, id, fail
}

// TestSessionRerouteFailureRestore injects a coloring.Add failure after
// Reroute has already removed the old slot: the session must restore
// the old path, keep π and λ, and stay Verify-clean; the next
// (uninjected) Reroute must then succeed.
func TestSessionRerouteFailureRestore(t *testing.T) {
	s, id, fail := rerouteFixture(t)
	oldPath, _ := s.Path(id)
	piBefore, lenBefore := s.Pi(), s.Len()
	lambdaBefore, err := s.NumLambda()
	if err != nil {
		t.Fatal(err)
	}

	*fail = 1 // the reroute's Add fails; the restoring Add succeeds
	changed, rerr := s.Reroute(id)
	if rerr == nil || changed {
		t.Fatalf("Reroute = (%v, %v), want an error with no change", changed, rerr)
	}
	if *fail != 0 {
		t.Fatalf("injection not consumed (%d left)", *fail)
	}
	p, err := s.Path(id)
	if err != nil {
		t.Fatalf("request lost after restored failure: %v", err)
	}
	if !p.Equal(oldPath) {
		t.Fatalf("path changed across a failed reroute: %v -> %v", oldPath, p)
	}
	if s.Pi() != piBefore || s.Len() != lenBefore {
		t.Fatalf("π/len moved: π %d→%d len %d→%d", piBefore, s.Pi(), lenBefore, s.Len())
	}
	if lambda, err := s.NumLambda(); err != nil || lambda != lambdaBefore {
		t.Fatalf("λ moved across a restored failure: %d → %d (%v)", lambdaBefore, lambda, err)
	}
	if err := s.Verify(); err != nil {
		t.Fatalf("session not Verify-clean after restored failure: %v", err)
	}

	// The same reroute without injection must now go through.
	changed, err = s.Reroute(id)
	if err != nil || !changed {
		t.Fatalf("clean Reroute = (%v, %v), want a changed route", changed, err)
	}
	if p, _ := s.Path(id); !p.ContainsVertex(2) {
		t.Fatalf("rerouted path %v does not use the unloaded branch", p)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionRerouteFailureDrop injects failures into both the
// reroute's Add and the restoring Add: the session must drop the
// request cleanly — id dead, load released, Verify-clean — rather than
// leak a half-installed state.
func TestSessionRerouteFailureDrop(t *testing.T) {
	s, id, fail := rerouteFixture(t)
	lenBefore := s.Len()

	*fail = 2 // reroute's Add and the restoring Add both fail
	changed, rerr := s.Reroute(id)
	if rerr == nil || changed {
		t.Fatalf("Reroute = (%v, %v), want a drop error", changed, rerr)
	}
	if _, err := s.Path(id); err == nil {
		t.Fatal("dropped request still resolves")
	}
	if s.Len() != lenBefore-1 {
		t.Fatalf("Len = %d, want %d after the drop", s.Len(), lenBefore-1)
	}
	if err := s.Remove(id); err == nil {
		t.Fatal("Remove of a dropped id succeeded")
	}
	if err := s.Verify(); err != nil {
		t.Fatalf("session not Verify-clean after a drop: %v", err)
	}
	// The session keeps working: the dropped request can be re-added.
	if _, err := s.Add(route.Request{Src: 0, Dst: 3}); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
}
