package wdm

import (
	"math/rand"
	"testing"

	"wavedag/internal/core"
	"wavedag/internal/load"
	"wavedag/internal/route"
)

// TestSessionChurnEquivalence is the randomized pin of the dynamic
// engine to the one-shot pipeline: 1k random add/remove operations on a
// Theorem 1 topology, asserting after every operation that
//
//   - the session's live assignment is Verify-clean,
//   - the session's π equals load.Pi recomputed from scratch,
//   - the session's λ never exceeds the from-scratch Provision answer
//     by more than the configured slack.
func TestSessionChurnEquivalence(t *testing.T) {
	net := testNetwork()
	const slack = 2
	s, err := net.NewSession(WithSlack(slack))
	if err != nil {
		t.Fatal(err)
	}
	if s.RoutingStrategyName() != "shortest" || s.ColoringStrategyName() != ColoringIncremental {
		t.Fatalf("defaults: %s/%s", s.RoutingStrategyName(), s.ColoringStrategyName())
	}
	pool := route.AllToAll(net.Topology)
	rng := rand.New(rand.NewSource(17))

	type liveReq struct {
		id  SessionID
		req route.Request
	}
	var live []liveReq

	ops := 1000
	if testing.Short() {
		ops = 200
	}
	for op := 0; op < ops; op++ {
		if len(live) == 0 || (rng.Intn(5) != 0 && len(live) < 60) {
			req := pool[rng.Intn(len(pool))]
			id, err := s.Add(req)
			if err != nil {
				t.Fatalf("op %d: Add: %v", op, err)
			}
			live = append(live, liveReq{id, req})
		} else {
			k := rng.Intn(len(live))
			if err := s.Remove(live[k].id); err != nil {
				t.Fatalf("op %d: Remove: %v", op, err)
			}
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		}

		if err := s.Verify(); err != nil {
			t.Fatalf("op %d: session coloring invalid: %v", op, err)
		}
		prov, err := s.Provisioning()
		if err != nil {
			t.Fatalf("op %d: Provisioning: %v", op, err)
		}
		if scratch := load.Pi(net.Topology, prov.Paths); s.Pi() != scratch || prov.Pi != scratch {
			t.Fatalf("op %d: session π = %d/%d, from-scratch π = %d", op, s.Pi(), prov.Pi, scratch)
		}
		// Rebuild from scratch: identical requests in arrival order give
		// identical routes (the router is deterministic), so the one-shot
		// pipeline is the exact reference.
		reqs := make([]route.Request, len(live))
		ids := s.IDs()
		byID := map[SessionID]route.Request{}
		for _, lr := range live {
			byID[lr.id] = lr.req
		}
		for i, id := range ids {
			reqs[i] = byID[id]
		}
		ref, err := net.Provision(reqs, RouteShortest)
		if err != nil {
			t.Fatalf("op %d: reference Provision: %v", op, err)
		}
		lambda, err := s.NumLambda()
		if err != nil {
			t.Fatalf("op %d: NumLambda: %v", op, err)
		}
		if lambda != prov.NumLambda {
			t.Fatalf("op %d: NumLambda %d != Provisioning.NumLambda %d", op, lambda, prov.NumLambda)
		}
		if lambda > ref.NumLambda+slack {
			t.Fatalf("op %d: session λ = %d exceeds from-scratch λ = %d + slack %d",
				op, lambda, ref.NumLambda, slack)
		}
		if lambda < ref.NumLambda {
			// λ below the exact theorem-1 answer would mean an improper or
			// miscounted assignment (Provision is exact here: λ = π).
			t.Fatalf("op %d: session λ = %d below the exact answer %d", op, lambda, ref.NumLambda)
		}
	}
}

// TestSessionProvisionEquivalence checks the one-shot Provision and a
// session replaying the same requests agree on π and on λ within slack,
// for every routing policy applicable to the topology.
func TestSessionProvisionEquivalence(t *testing.T) {
	net := testNetwork()
	reqs := someRequests(net, 40)
	for _, policy := range []RoutingPolicy{RouteShortest, RouteMinLoad} {
		ref, err := net.Provision(reqs, policy)
		if err != nil {
			t.Fatal(err)
		}
		s, err := net.NewSession(WithRoutingPolicy(policy))
		if err != nil {
			t.Fatal(err)
		}
		for _, req := range reqs {
			if _, err := s.Add(req); err != nil {
				t.Fatal(err)
			}
		}
		prov, err := s.Provisioning()
		if err != nil {
			t.Fatal(err)
		}
		if prov.Pi != ref.Pi {
			t.Fatalf("%v: session π = %d, Provision π = %d", policy, prov.Pi, ref.Pi)
		}
		if prov.Method != core.MethodIncremental {
			t.Fatalf("%v: method = %s", policy, prov.Method)
		}
		if prov.NumLambda > ref.NumLambda+core.DefaultSlack {
			t.Fatalf("%v: session λ = %d, Provision λ = %d", policy, prov.NumLambda, ref.NumLambda)
		}
		// Routes must be identical path-for-path: both sides route the
		// same requests in the same order through the same router logic.
		for i := range reqs {
			if !prov.Paths[i].Equal(ref.Paths[i]) {
				t.Fatalf("%v: request %d routed differently: %s vs %s",
					policy, i, prov.Paths[i], ref.Paths[i])
			}
		}
		if err := s.Verify(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSessionReroute checks rerouting under the min-load strategy: a
// congested request is moved off the hot arc once alternatives free up,
// ids survive, and the assignment stays Verify-clean.
func TestSessionReroute(t *testing.T) {
	net := testNetwork()
	s, err := net.NewSession(WithRoutingPolicy(RouteMinLoad))
	if err != nil {
		t.Fatal(err)
	}
	reqs := someRequests(net, 30)
	ids := make([]SessionID, 0, len(reqs))
	for _, req := range reqs {
		id, err := s.Add(req)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	piBefore := s.Pi()
	// Tear down half the requests, then reroute the survivors: π must
	// never increase (a reroute only moves a path to a better-or-equal
	// alternative under the current loads).
	for i := 0; i < len(ids); i += 2 {
		if err := s.Remove(ids[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < len(ids); i += 2 {
		if _, err := s.Reroute(ids[i]); err != nil {
			t.Fatal(err)
		}
		if err := s.Verify(); err != nil {
			t.Fatalf("after reroute of %d: %v", ids[i], err)
		}
	}
	if s.Pi() > piBefore {
		t.Fatalf("π grew from %d to %d under teardown+reroute", piBefore, s.Pi())
	}
	if _, err := s.Reroute(ids[0]); err == nil {
		t.Fatal("reroute of a removed id accepted")
	}
	if _, err := s.Wavelength(ids[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Path(SessionID(1 << 40)); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestSessionFullStrategy exercises the deferred "full" coloring state
// through the session API directly (Provision already covers the happy
// path): wavelengths are deferred until Assignment.
func TestSessionFullStrategy(t *testing.T) {
	net := testNetwork()
	s, err := net.NewSession(WithColoringStrategyName(ColoringFull))
	if err != nil {
		t.Fatal(err)
	}
	reqs := someRequests(net, 20)
	var ids []SessionID
	for _, req := range reqs {
		id, err := s.Add(req)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if w, err := s.Wavelength(ids[0]); err != nil || w != -1 {
		t.Fatalf("full strategy should defer: w=%d err=%v", w, err)
	}
	if err := s.Remove(ids[3]); err != nil {
		t.Fatal(err)
	}
	prov, err := s.Provisioning()
	if err != nil {
		t.Fatal(err)
	}
	if prov.Method != core.MethodTheorem1 {
		t.Fatalf("method = %s, want theorem1", prov.Method)
	}
	if len(prov.Paths) != len(reqs)-1 {
		t.Fatalf("%d paths after one removal of %d", len(prov.Paths), len(reqs))
	}
	if err := s.Verify(); err != nil {
		t.Fatal(err)
	}
	if _, err := net.NewSession(WithColoringStrategyName("no-such-strategy")); err == nil {
		t.Fatal("unknown coloring strategy accepted")
	}
}
